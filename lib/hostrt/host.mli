(** The host runtime: models the CPU side of a CUDA program with the
    paper's mandatory instrumentation interposed (Section 3.1-(I)).

    Host drivers are OCaml functions calling this API: {!in_function}
    maintains the CPU shadow stack; {!malloc}, {!cuda_malloc},
    {!memcpy_h2d} and {!memcpy_d2h} record the allocation and transfer
    maps that the data-centric profiler correlates (Section 3.2.2);
    {!launch_kernel} wires the profiler's event sink into the simulator
    and closes the kernel instance at exit. *)

type t

(** Fresh host context over a simulated device.  When [profiler] is
    given, every allocation, transfer and launch is recorded.
    [bankmodel] opts every launch into charging shared-memory
    bank-conflict replays as issue cycles (see {!Gpusim.Gpu.launch}).
    [block_x_override] is the block-size tuning knob: every launch is
    forced to that CTA width, with grid.x rescaled (rounding up) so the
    total x-thread count never shrinks.  Raises [Invalid_argument] on a
    non-positive override. *)
val create :
  ?profiler:Profiler.Profile.t ->
  ?l1_enabled:bool ->
  ?bankmodel:bool ->
  ?block_x_override:int ->
  arch:Gpusim.Arch.t ->
  prog:Ptx.Isa.prog ->
  unit ->
  t

(** The flat host address space (for initializing input buffers). *)
val host_mem : t -> Gpusim.Devmem.t

(** The device's global memory. *)
val dev_mem : t -> Gpusim.Devmem.t

val arch : t -> Gpusim.Arch.t

(** Current CPU call path, outermost frame first. *)
val call_path : t -> Profiler.Records.host_frame list

(** Run [body] with a CPU shadow-stack frame pushed — the mandatory
    instrumentation of CPU calls and returns. *)
val in_function :
  t -> func:string -> file:string -> line:int -> (unit -> 'a) -> 'a

(** Host-side malloc; returns the host address. *)
val malloc : t -> label:string -> int -> int

(** cudaMalloc; returns the device address. *)
val cuda_malloc : t -> label:string -> int -> int

val memcpy_h2d : t -> dst:int -> src:int -> bytes:int -> unit
val memcpy_d2h : t -> dst:int -> src:int -> bytes:int -> unit

(** Launch a kernel on the simulated device.  [prog] overrides the
    context's program (used by the bypassing experiments). *)
val launch_kernel :
  ?prog:Ptx.Isa.prog ->
  t ->
  kernel:string ->
  grid:int * int ->
  block:int * int ->
  args:Gpusim.Value.t list ->
  Gpusim.Gpu.result

(** All launches so far, in order. *)
val launches : t -> (string * Gpusim.Gpu.result) list

(** Sum of kernel cycles over all launches. *)
val total_kernel_cycles : t -> int

(** Kernel-argument shorthands. *)
val iarg : int -> Gpusim.Value.t

val farg : float -> Gpusim.Value.t
