(* The host runtime: models the CPU side of a CUDA program with the
   paper's mandatory instrumentation interposed.  Host drivers are OCaml
   functions that call this API; [in_function] maintains the CPU shadow
   stack, and the malloc/cudaMalloc/cudaMemcpy entry points record the
   allocation and transfer maps the data-centric profiler correlates
   (Section 3.1-(I), Section 3.2.2). *)

type t = {
  device : Gpusim.Gpu.device;
  prog : Ptx.Isa.prog;
  profiler : Profiler.Profile.t option;
  hostmem : Gpusim.Devmem.t; (* flat host address space *)
  mutable shadow : Profiler.Records.host_frame list; (* top first *)
  mutable launches : (string * Gpusim.Gpu.result) list; (* reversed *)
  l1_enabled : bool;
  bankmodel : bool; (* charge shared-memory bank-conflict replays *)
  block_x_override : int option;
      (* tuning knob: force this CTA width on every launch, rescaling
         grid.x so the total x-thread count never shrinks *)
}

(* Host-side traffic totals: allocation and PCIe-transfer volume, the
   denominators of the data-centric views. *)
let m_host_allocs = Obs.Metrics.counter "host.mallocs"
let m_dev_allocs = Obs.Metrics.counter "host.cuda_mallocs"
let m_h2d_bytes = Obs.Metrics.counter "host.memcpy.h2d_bytes"
let m_d2h_bytes = Obs.Metrics.counter "host.memcpy.d2h_bytes"

let create ?profiler ?(l1_enabled = true) ?(bankmodel = false)
    ?block_x_override ~arch ~prog () =
  (match block_x_override with
  | Some bx when bx <= 0 -> invalid_arg "Host.create: block_x_override must be > 0"
  | _ -> ());
  {
    device = Gpusim.Gpu.create_device arch;
    prog;
    profiler;
    hostmem = Gpusim.Devmem.create ();
    shadow = [];
    launches = [];
    l1_enabled;
    bankmodel;
    block_x_override;
  }

let host_mem t = t.hostmem
let dev_mem t = t.device.Gpusim.Gpu.devmem
let arch t = t.device.Gpusim.Gpu.arch

(* Current CPU call path, outermost frame first. *)
let call_path t = List.rev t.shadow

(* Mandatory instrumentation of CPU calls and returns: brackets the body
   with a shadow-stack push/pop. *)
let in_function t ~func ~file ~line body =
  let frame =
    { Profiler.Records.frame_func = func; frame_file = file; frame_line = line }
  in
  t.shadow <- frame :: t.shadow;
  Fun.protect ~finally:(fun () ->
      match t.shadow with
      | _ :: rest -> t.shadow <- rest
      | [] -> ())
    body

let record_alloc t ~side ~base ~size ~label =
  match t.profiler with
  | Some p ->
    ignore
      (Profiler.Profile.record_alloc p ~side ~base ~size ~label ~path:(call_path t))
  | None -> ()

(* malloc on the host. *)
let malloc t ~label bytes =
  Obs.Metrics.incr m_host_allocs;
  let base = Gpusim.Devmem.malloc t.hostmem bytes in
  record_alloc t ~side:Profiler.Records.Host_side ~base ~size:bytes ~label;
  base

(* cudaMalloc on the device. *)
let cuda_malloc t ~label bytes =
  Obs.Metrics.incr m_dev_allocs;
  let base = Gpusim.Devmem.malloc (dev_mem t) bytes in
  record_alloc t ~side:Profiler.Records.Device_side ~base ~size:bytes ~label;
  base

let record_transfer t ~direction ~src ~dst ~bytes =
  match t.profiler with
  | Some p ->
    Profiler.Profile.record_transfer p ~direction ~src ~dst ~bytes
      ~path:(call_path t)
  | None -> ()

let memcpy_h2d t ~dst ~src ~bytes =
  Obs.Metrics.add m_h2d_bytes bytes;
  Gpusim.Devmem.blit ~src:t.hostmem ~src_addr:src ~dst:(dev_mem t) ~dst_addr:dst ~bytes;
  record_transfer t ~direction:Profiler.Records.Host_to_device ~src ~dst ~bytes

let memcpy_d2h t ~dst ~src ~bytes =
  Obs.Metrics.add m_d2h_bytes bytes;
  Gpusim.Devmem.blit ~src:(dev_mem t) ~src_addr:src ~dst:t.hostmem ~dst_addr:dst ~bytes;
  record_transfer t ~direction:Profiler.Records.Device_to_host ~src ~dst ~bytes

(* Kernel launch: wires the profiler's event sink into the simulator and
   closes the instance at kernel exit (the data-marshaling point). *)
let launch_kernel ?prog t ~kernel ~grid ~block ~args =
  let prog = Option.value prog ~default:t.prog in
  (* The block-x tuning knob: keep the driver's total x-thread count by
     rescaling grid.x around the forced CTA width (rounding up, so
     bounds-checked kernels stay correct at any width). *)
  let grid, block =
    match t.block_x_override with
    | Some bx when bx <> fst block ->
      let gx, gy = grid and ox, oy = block in
      let total_x = gx * ox in
      (((total_x + bx - 1) / bx, gy), (bx, oy))
    | _ -> (grid, block)
  in
  let result =
    match t.profiler with
    | Some p ->
      let instance, sink =
        Profiler.Profile.begin_instance p ~kernel ~host_path:(call_path t)
      in
      let r =
        Gpusim.Gpu.launch ~sink ~l1_enabled:t.l1_enabled
          ~bankmodel:t.bankmodel t.device ~prog ~kernel ~grid ~block ~args ()
      in
      Profiler.Profile.finish_instance instance r;
      r
    | None ->
      Gpusim.Gpu.launch ~l1_enabled:t.l1_enabled ~bankmodel:t.bankmodel
        t.device ~prog ~kernel ~grid ~block ~args ()
  in
  t.launches <- (kernel, result) :: t.launches;
  result

let launches t = List.rev t.launches

let total_kernel_cycles t =
  List.fold_left (fun acc (_, r) -> acc + r.Gpusim.Gpu.cycles) 0 t.launches

(* Shorthands for kernel argument values. *)
let iarg i = Gpusim.Value.I i
let farg f = Gpusim.Value.F f
