(* Static correctness checks over Bitc modules, the compile-time half of
   `advisor check`:

   - divergent-barrier: a __syncthreads that is reachable from a
     thread-divergent conditional branch without post-dominating it.
     Such a barrier is not executed by all threads of the CTA, which is
     undefined behaviour on real hardware (threads of the skipping path
     never arrive; CUDA deadlocks or silently desynchronizes).
   - oob-shared-gep / oob-local-gep: address computations into a
     __shared__ or local array with a constant index outside the
     declared bounds.

   The divergence analysis is a per-function forward taint: values are
   divergent when they (transitively) depend on a lane-varying special
   register (%tid.x, %tid.y, %warpid — CTA ids and launch dimensions are
   uniform across a CTA).  Taint flows through arithmetic, selects,
   address computations, calls (conservatively: any tainted argument
   taints the result) and through memory via per-thread allocas (a store
   of a tainted value into an alloca taints later loads from it).
   Control-dependence taint (a value assigned under a divergent branch)
   is NOT tracked; that is the checker's documented false-negative
   window.  Post-dominance comes from [Cfg.post_dominators]: a barrier
   block S is safe w.r.t. a divergent branch in block B iff S is on the
   immediate-post-dominator chain of B. *)

type finding = {
  rule : string; (* "divergent-barrier" | "oob-shared-gep" | "oob-local-gep" *)
  in_func : string;
  loc : Bitc.Loc.t; (* the offending barrier / GEP *)
  related : Bitc.Loc.t; (* divergent branch for barriers; [Loc.none] otherwise *)
  message : string;
}

(* ----- divergence taint ----- *)

let divergent_special (s : Bitc.Instr.special) =
  match s with
  | Tid_x | Tid_y | Warpid -> true
  | Ctaid_x | Ctaid_y | Ntid_x | Ntid_y | Nctaid_x | Nctaid_y -> false

(* Follow an address value back to its root register through GEP /
   pointer-cast chains, so stores through derived pointers taint the
   underlying alloca. *)
let rec root_reg (f : Bitc.Func.t) (defs : Bitc.Instr.t option array)
    (v : Bitc.Value.t) =
  match v with
  | Bitc.Value.Reg r -> (
    match defs.(r) with
    | Some { kind = Bitc.Instr.Gep { base; _ }; _ } -> root_reg f defs base
    | Some { kind = Bitc.Instr.Ptr_cast p; _ } -> root_reg f defs p
    | _ -> Some r)
  | _ -> None

(* Compute the set of divergent (lane-varying) registers of [f] as a
   boolean array indexed by register number. *)
let divergent_regs (f : Bitc.Func.t) =
  let n = f.Bitc.Func.next_reg in
  let tainted = Array.make n false in
  (* defining instruction of each register, for root tracing *)
  let defs = Array.make n None in
  List.iter
    (fun (b : Bitc.Block.t) ->
      List.iter
        (fun (i : Bitc.Instr.t) ->
          match i.result with
          | Some r when r < n -> defs.(r) <- Some i
          | _ -> ())
        b.instrs)
    f.blocks;
  let value_tainted (v : Bitc.Value.t) =
    match v with Bitc.Value.Reg r when r < n -> tainted.(r) | _ -> false
  in
  (* allocas whose contents are divergent *)
  let tainted_mem = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    let taint r =
      if r < n && not tainted.(r) then begin
        tainted.(r) <- true;
        changed := true
      end
    in
    List.iter
      (fun (b : Bitc.Block.t) ->
        List.iter
          (fun (i : Bitc.Instr.t) ->
            match i.kind, i.result with
            | Bitc.Instr.Special s, Some r when divergent_special s -> taint r
            | Bitc.Instr.Load ptr, Some r ->
              let from_mem =
                match root_reg f defs ptr with
                | Some root -> root < n && tainted_mem.(root)
                | None -> false
              in
              if from_mem || value_tainted ptr then taint r
            | Bitc.Instr.Store { ptr; value; _ }, _
              when value_tainted value || value_tainted ptr -> (
              match root_reg f defs ptr with
              | Some root when root < n && not tainted_mem.(root) ->
                tainted_mem.(root) <- true;
                changed := true
              | _ -> ())
            | Bitc.Instr.Atomic_add { ptr; value; _ }, res -> (
              (match res with
              | Some r -> taint r (* atomics return lane-varying old values *)
              | None -> ());
              if value_tainted value || value_tainted ptr then
                match root_reg f defs ptr with
                | Some root when root < n && not tainted_mem.(root) ->
                  tainted_mem.(root) <- true;
                  changed := true
                | _ -> ())
            | _, Some r when not tainted.(r) ->
              if List.exists value_tainted (Bitc.Instr.operands i) then taint r
            | _ -> ())
          b.instrs)
      f.blocks
  done;
  tainted

(* ----- divergent-barrier check ----- *)

(* Does block [s] post-dominate block [b]?  Walk the immediate
   post-dominator chain from [b]; [-1] terminates it at the virtual
   exit. *)
let postdominates ipdom ~s ~b =
  let rec walk i = i = s || (i >= 0 && i <> ipdom.(i) && walk ipdom.(i)) in
  walk b

(* Influence region of the branch ending block [b]: blocks reachable
   from its successors without passing through its immediate
   post-dominator [stop].  Once control reaches [stop] the branch has
   reconverged, so only barriers strictly inside the region execute
   under the branch's divergence ([stop] = -1 means the branch
   reconverges only at function exit: the whole reachable set is the
   region). *)
let influence_region (cfg : Bitc.Cfg.t) b ~stop =
  let n = Bitc.Cfg.size cfg in
  let seen = Array.make n false in
  let rec dfs i =
    if i <> stop && not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs cfg.succ.(i)
    end
  in
  List.iter dfs cfg.succ.(b);
  seen

let check_barriers (f : Bitc.Func.t) =
  let has_sync =
    List.exists
      (fun (b : Bitc.Block.t) ->
        List.exists
          (fun (i : Bitc.Instr.t) -> i.kind = Bitc.Instr.Sync)
          b.instrs)
      f.blocks
  in
  if not has_sync then []
  else begin
    let tainted = divergent_regs f in
    let cfg = Bitc.Cfg.build f in
    let ipdom = Bitc.Cfg.post_dominators cfg in
    let n = Bitc.Cfg.size cfg in
    (* blocks holding a Sync, with the location of the first one *)
    let sync_loc = Array.make n None in
    for i = 0 to n - 1 do
      let b = Bitc.Cfg.block cfg i in
      sync_loc.(i) <-
        List.find_map
          (fun (ins : Bitc.Instr.t) ->
            if ins.kind = Bitc.Instr.Sync then Some ins.loc else None)
          b.Bitc.Block.instrs
    done;
    let findings = ref [] in
    let flagged = Array.make n false in
    for b = 0 to n - 1 do
      let block = Bitc.Cfg.block cfg b in
      match block.Bitc.Block.term with
      | Some (Bitc.Instr.Cond_br (cond, _, _))
        when (match cond with
             | Bitc.Value.Reg r -> r < Array.length tainted && tainted.(r)
             | _ -> false) ->
        let reach = influence_region cfg b ~stop:ipdom.(b) in
        for s = 0 to n - 1 do
          match sync_loc.(s) with
          | Some loc
            when reach.(s) && (not (postdominates ipdom ~s ~b))
                 && not flagged.(s) ->
            flagged.(s) <- true;
            let branch_loc =
              match
                List.rev block.Bitc.Block.instrs
                |> List.find_opt (fun (i : Bitc.Instr.t) ->
                       not (Bitc.Loc.is_none i.loc))
              with
              | Some i -> i.loc
              | None -> Bitc.Loc.none
            in
            findings :=
              { rule = "divergent-barrier";
                in_func = f.Bitc.Func.name;
                loc;
                related = branch_loc;
                message =
                  Printf.sprintf
                    "__syncthreads may not be reached by all threads: it \
                     does not post-dominate the thread-dependent branch at \
                     %s"
                    (Bitc.Loc.to_string branch_loc) }
              :: !findings
          | _ -> ()
        done
      | _ -> ()
    done;
    List.rev !findings
  end

(* ----- constant out-of-bounds GEP check ----- *)

let align offset size = (offset + size - 1) / size * size

(* Segment byte offset of every __shared__ alloca of [f] (indexed by
   result register; -1 for non-shared registers) plus the function's
   total shared bytes, replicating Ptx.Codegen's sequential
   align-and-advance placement so static byte offsets agree with the
   simulator's actual layout. *)
let shared_layout (f : Bitc.Func.t) =
  let n = f.Bitc.Func.next_reg in
  let seg_off = Array.make n (-1) in
  let off = ref 0 in
  Bitc.Func.iter_instrs f (fun _ (i : Bitc.Instr.t) ->
      match i.kind, i.result with
      | Bitc.Instr.Shared_alloca (ty, elems), Some r when r < n ->
        let size = Bitc.Types.size_of ty in
        off := align !off size;
        seg_off.(r) <- !off;
        off := !off + (size * elems)
      | _ -> ());
  (seg_off, align !off 8)

(* Total shared bytes a launch maps: the codegen stacks every
   device/kernel function's 8-byte-aligned segment, and the simulator
   sizes the CTA's scratchpad to exactly this sum. *)
let total_shared_bytes (m : Bitc.Irmod.t) =
  List.fold_left
    (fun acc (f : Bitc.Func.t) ->
      match f.fkind with
      | Bitc.Func.Kernel | Bitc.Func.Device -> acc + snd (shared_layout f)
      | Bitc.Func.Host -> acc)
    0 m.funcs

(* Fold a pointer to (root register, constant byte offset) through
   chains of constant-index GEPs and pointer casts.  A symbolic index
   anywhere in the chain defeats the fold. *)
let fold_const_gep (defs : Bitc.Instr.t option array) (v : Bitc.Value.t) =
  let rec go v =
    match v with
    | Bitc.Value.Reg r when r < Array.length defs -> (
      match defs.(r) with
      | Some
          { Bitc.Instr.kind =
              Bitc.Instr.Gep { base; index = Bitc.Value.Int idx; elem };
            _
          } -> (
        match go base with
        | Some (root, off) -> Some (root, off + (idx * Bitc.Types.size_of elem))
        | None -> None)
      | Some { Bitc.Instr.kind = Bitc.Instr.Ptr_cast p; _ } -> go p
      | Some
          { Bitc.Instr.kind =
              Bitc.Instr.Alloca (_, _) | Bitc.Instr.Shared_alloca (_, _);
            _
          } ->
        Some (r, 0)
      | _ -> None)
    | _ -> None
  in
  go v

(* Constant-offset address computations folded to their root allocation
   and bounds-checked in bytes.  Folding whole GEP chains closes the
   old gap where [p = buf + k; p[c]] escaped because only the final GEP
   (whose base is another GEP, not the alloca) was inspected.  For
   __shared__ roots the launch's actual total shared size tells silent
   neighbor-allocation corruption (the address stays inside the mapped
   segment, so nothing traps) apart from an access past the whole
   segment (which the simulator's bounds check traps on). *)
let check_geps ~total_shared ~shared_base (f : Bitc.Func.t) =
  let n = f.Bitc.Func.next_reg in
  let defs = Array.make n None in
  Bitc.Func.iter_instrs f (fun _ (i : Bitc.Instr.t) ->
      match i.result with
      | Some r when r < n -> defs.(r) <- Some i
      | _ -> ());
  let alloc_bytes = Array.make n 0 in
  let is_shared = Array.make n false in
  Bitc.Func.iter_instrs f (fun _ (i : Bitc.Instr.t) ->
      match i.kind, i.result with
      | Bitc.Instr.Shared_alloca (ty, elems), Some r when r < n ->
        alloc_bytes.(r) <- Bitc.Types.size_of ty * elems;
        is_shared.(r) <- true
      | Bitc.Instr.Alloca (ty, elems), Some r when r < n ->
        alloc_bytes.(r) <- Bitc.Types.size_of ty * elems
      | _ -> ());
  let seg_off, _ = shared_layout f in
  let findings = ref [] in
  Bitc.Func.iter_instrs f (fun _ (i : Bitc.Instr.t) ->
      match i.kind, i.result with
      | Bitc.Instr.Gep _, Some res -> (
        match fold_const_gep defs (Bitc.Value.Reg res) with
        | Some (root, off)
          when root < n && alloc_bytes.(root) > 0
               && (off < 0 || off >= alloc_bytes.(root)) ->
          let bytes = alloc_bytes.(root) in
          let rule, message =
            if not is_shared.(root) then
              ( "oob-local-gep",
                Printf.sprintf
                  "constant offset %d B is out of bounds for a %d B local \
                   array"
                  off bytes )
            else
              let addr = shared_base + seg_off.(root) + off in
              if addr >= 0 && addr < total_shared then
                ( "oob-shared-gep",
                  Printf.sprintf
                    "constant offset %d B runs past the %d B __shared__ \
                     array into a neighboring shared allocation (the \
                     launch maps %d B of shared memory, so nothing traps)"
                    off bytes total_shared )
              else
                ( "oob-shared-gep",
                  Printf.sprintf
                    "constant offset %d B on a %d B __shared__ array is \
                     outside the launch's %d B shared segment (the \
                     simulator traps at this access)"
                    off bytes total_shared )
          in
          findings :=
            { rule;
              in_func = f.Bitc.Func.name;
              loc = i.loc;
              related = Bitc.Loc.none;
              message }
            :: !findings
        | _ -> ())
      | _ -> ());
  List.rev !findings

(* ----- entry point ----- *)

(* Check every kernel and device function of [m].  Run this on the
   pristine (uninstrumented) module: instrumentation inserts hook calls
   and casts that would only add noise. *)
let run (m : Bitc.Irmod.t) =
  let total_shared = total_shared_bytes m in
  let shared_base = ref 0 in
  List.concat_map
    (fun (f : Bitc.Func.t) ->
      match f.fkind with
      | Bitc.Func.Kernel | Bitc.Func.Device ->
        let base = !shared_base in
        shared_base := base + snd (shared_layout f);
        check_barriers f @ check_geps ~total_shared ~shared_base:base f
      | Bitc.Func.Host -> [])
    m.funcs
