(* IR-only profile estimation: predict the paper's profiling metrics —
   per-site coalescing (transactions per warp access), branch
   uniformity, and an approximate reuse-distance histogram — without
   running the simulator.

   The frontend emits -O0-style IR: every source variable is a
   1-element alloca, loops keep their [for.cond]/[for.body] shape, and
   every address is integer arithmetic over thread/block ids, kernel
   parameters and loop counters.  A small symbolic evaluator
   ({!Bitc.Affine}) recovers those expressions; {!Bitc.Loops} plus the
   loop-exit compare give symbolic trip counts; and per-warp lane
   enumeration turns an affine byte offset into a transaction count.

   Every prediction carries a confidence tier:
   - [Exact]     — fully determined by the IR (e.g. a warp-uniform
                   address is always one transaction, a constant-bound
                   loop trip count);
   - [Affine]    — derived from a recovered affine model plus a benign
                   assumption (line-aligned bases, full warps);
   - [Heuristic] — a modeling default stands in for an unknown
                   (symbolic trip counts, boundary-guard probabilities,
                   symbolic row pitches assumed larger than a line);
   - [Unknown]   — the IR defeated the model; the value is a coarse
                   prior.

   [Global]-space accesses feed the coalescing/reuse metrics: the
   dynamic profiler instruments exactly those (see
   {!Instrument.mem_hooks}), so this is what the simulator-measured
   metrics cover.  [Shared]-space accesses feed a separate bank-conflict
   prediction: the same affine lane model, but the per-lane byte offset
   is mapped to a bank ([offset / bank_width mod banks]) instead of a
   cache line, predicting the serialized pass count the simulator's
   bank model charges for. *)

module A = Bitc.Affine

type confidence = Exact | Affine | Heuristic | Unknown

let confidence_label = function
  | Exact -> "exact"
  | Affine -> "affine-model"
  | Heuristic -> "heuristic"
  | Unknown -> "unknown"

(* Exact is the strongest claim; a combined result is only as strong as
   its weakest input. *)
let rank = function Exact -> 3 | Affine -> 2 | Heuristic -> 1 | Unknown -> 0
let weakest a b = if rank a <= rank b then a else b

(* ----- reuse-distance buckets (Figure 4's x-axis) ----- *)

(* Kept structurally identical to [Analysis.Reuse_distance] (passes
   sits below analysis in the dependency order, so the labels are
   duplicated; the calibration test pins them against each other). *)
let bucket_labels = [ "0"; "1-2"; "3-8"; "9-32"; "33-128"; "129-512"; ">512"; "inf" ]

let bucket_of_distance d =
  if d <= 0 then "0"
  else if d <= 2 then "1-2"
  else if d <= 8 then "3-8"
  else if d <= 32 then "9-32"
  else if d <= 128 then "33-128"
  else if d <= 512 then "129-512"
  else ">512"

(* ----- results ----- *)

type site = {
  site_loc : Bitc.Loc.t;
  site_func : string;
  site_kind : string; (* "load" | "store" | "atomic" *)
  pattern : string; (* recovered byte-offset expression, or "unknown" *)
  lines : float; (* predicted unique cache lines per warp access *)
  lines_confidence : confidence;
  weight : float; (* estimated executions per thread *)
}

type shared_site = {
  sh_loc : Bitc.Loc.t;
  sh_func : string;
  sh_kind : string; (* "load" | "store" | "atomic" *)
  sh_pattern : string; (* recovered byte-offset expression, or "unknown" *)
  sh_degree : int; (* predicted conflict degree (serialized passes) *)
  sh_broadcast : bool; (* some lanes share a word (free on hardware) *)
  sh_confidence : confidence;
}

type loop_bound = {
  loop_func : string;
  loop_header : string; (* header block name *)
  trips : float;
  trips_confidence : confidence;
}

type t = {
  block : int * int;
  line_size : int;
  banks : int;
  bank_width : int;
  sites : site list; (* global-space memory sites, program order *)
  shared_sites : shared_site list; (* shared-space sites, program order *)
  bank_degree : int; (* worst predicted conflict degree; 1 = conflict-free *)
  bank_confidence : confidence;
  degree : float; (* predicted memory-divergence degree *)
  degree_confidence : confidence;
  branch_percent : float; (* predicted divergent dynamic blocks, % *)
  branch_confidence : confidence;
  reuse_histogram : (string * float) list; (* bucket label -> fraction *)
  no_reuse_fraction : float;
  reuse_confidence : confidence;
  loop_bounds : loop_bound list;
}

(* Trip count assumed for loops whose bound the IR leaves symbolic (a
   kernel parameter, a loaded value): the geometric middle of the
   registry's real bounds. *)
let default_trips = 64.

(* Fraction of warp-level block executions assumed divergent inside the
   influence region of a *boundary guard* (a thread-id-affine bound
   check like [if (i < n)]): only warps straddling the boundary
   diverge. *)
let boundary_divergence = 0.1

(* ----- per-function machinery ----- *)

type alloca_info =
  | Single of Bitc.Value.t (* stored exactly once with this value *)
  | Induction of { init : Bitc.Value.t; step : int; header : int }
  | Shortcircuit of { is_and : bool; lhs : Bitc.Value.t; rhs : Bitc.Value.t }
  | Opaque

type func_ctx = {
  f : Bitc.Func.t;
  defs : Bitc.Instr.t option array;
  cfg : Bitc.Cfg.t;
  loops : Bitc.Loops.loop list;
  allocas : alloca_info array; (* by alloca register *)
  memo : A.t option array; (* eval memo, by register *)
  visiting : bool array; (* recursion guard through alloca contents *)
}

let build_defs (f : Bitc.Func.t) =
  let defs = Array.make f.Bitc.Func.next_reg None in
  Bitc.Func.iter_instrs f (fun _ i ->
      match i.Bitc.Instr.result with
      | Some r when r < Array.length defs -> defs.(r) <- Some i
      | _ -> ());
  defs

(* Block index of every store instruction (used to place IV increments
   inside loops and to recognize the short-circuit lowering shape). *)
let block_index_of_stores (cfg : Bitc.Cfg.t) =
  let table : (Bitc.Instr.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun bi (b : Bitc.Block.t) ->
      List.iter
        (fun (i : Bitc.Instr.t) ->
          match i.kind with
          | Bitc.Instr.Store _ -> Hashtbl.replace table i bi
          | _ -> ())
        b.Bitc.Block.instrs)
    cfg.Bitc.Cfg.blocks;
  table

(* Classify every 1-element local alloca by its store set.  Stores
   through GEPs/casts (or into multi-element arrays) make the alloca
   [Opaque].  Two-store allocas are matched against the two shapes the
   frontend emits: the loop-counter increment and the short-circuit
   temporary of [a && b] / [a || b]. *)
let classify_allocas (f : Bitc.Func.t) defs (cfg : Bitc.Cfg.t) loops =
  let n = f.Bitc.Func.next_reg in
  let info = Array.make n Opaque in
  let stores : (int, (Bitc.Value.t * int) list) Hashtbl.t = Hashtbl.create 16 in
  let poisoned = Array.make n false in
  let store_blocks = block_index_of_stores cfg in
  let scalar_alloca r =
    match defs.(r) with
    | Some { Bitc.Instr.kind = Bitc.Instr.Alloca (_, 1); _ } -> true
    | _ -> false
  in
  Bitc.Func.iter_instrs f (fun _ i ->
      match i.Bitc.Instr.kind with
      | Bitc.Instr.Store { ptr = Bitc.Value.Reg r; value; _ } when scalar_alloca r
        ->
        let bi = Option.value (Hashtbl.find_opt store_blocks i) ~default:0 in
        Hashtbl.replace stores r
          ((value, bi) :: Option.value (Hashtbl.find_opt stores r) ~default:[])
      | Bitc.Instr.Store { ptr; _ } | Bitc.Instr.Atomic_add { ptr; _ } -> (
        (* store through a derived pointer: poison the root *)
        match Check_static.root_reg f defs ptr with
        | Some root when root < n -> poisoned.(root) <- true
        | _ -> ())
      | _ -> ());
  (* Is [v] a register holding [load alloca_r] (directly)? *)
  let is_self_load alloca_r v =
    match v with
    | Bitc.Value.Reg r -> (
      match defs.(r) with
      | Some { Bitc.Instr.kind = Bitc.Instr.Load (Bitc.Value.Reg p); _ } ->
        p = alloca_r
      | _ -> false)
    | _ -> false
  in
  (* [a := a + step] inside a loop: the frontend's counter update. *)
  let as_induction r ~init ~inc ~inc_block =
    let step =
      match inc with
      | Bitc.Value.Reg vr -> (
        match defs.(vr) with
        | Some { Bitc.Instr.kind = Bitc.Instr.Binop (Bitc.Instr.Add, _, x, y); _ }
          -> (
          if is_self_load r x then
            match y with Bitc.Value.Int c -> Some c | _ -> None
          else if is_self_load r y then
            match x with Bitc.Value.Int c -> Some c | _ -> None
          else None)
        | Some { Bitc.Instr.kind = Bitc.Instr.Binop (Bitc.Instr.Sub, _, x, y); _ }
          -> (
          if is_self_load r x then
            match y with Bitc.Value.Int c -> Some (-c) | _ -> None
          else None)
        | _ -> None)
      | _ -> None
    in
    match step with
    | Some step when step <> 0 -> (
      match Bitc.Loops.innermost loops inc_block with
      | Some l -> Some (Induction { init; step; header = l.Bitc.Loops.header })
      | None -> None)
    | _ -> None
  in
  (* The [a && b] / [a || b] lowering: store lhs, cond-branch on the
     lhs into the rhs block, which stores rhs and falls through. *)
  let as_shortcircuit ~lhs ~lhs_block ~rhs ~rhs_block =
    if lhs_block >= Bitc.Cfg.size cfg then None
    else
      match (Bitc.Cfg.block cfg lhs_block).Bitc.Block.term with
      | Some (Bitc.Instr.Cond_br (c, t, fl)) when c = lhs ->
        let ti = Bitc.Cfg.index_of cfg t
        and fi = Bitc.Cfg.index_of cfg fl in
        if ti = rhs_block then Some (Shortcircuit { is_and = true; lhs; rhs })
        else if fi = rhs_block then
          Some (Shortcircuit { is_and = false; lhs; rhs })
        else None
      | _ -> None
  in
  Hashtbl.iter
    (fun r store_list ->
      if not poisoned.(r) then
        match List.rev store_list with
        | [ (v, _) ] -> info.(r) <- Single v
        | [ (a, ba); (b, bb) ] -> (
          let attempt =
            match as_induction r ~init:a ~inc:b ~inc_block:bb with
            | Some x -> Some x
            | None -> (
              match as_induction r ~init:b ~inc:a ~inc_block:ba with
              | Some x -> Some x
              | None -> (
                match
                  as_shortcircuit ~lhs:a ~lhs_block:ba ~rhs:b ~rhs_block:bb
                with
                | Some x -> Some x
                | None ->
                  as_shortcircuit ~lhs:b ~lhs_block:bb ~rhs:a ~rhs_block:ba))
          in
          match attempt with Some x -> info.(r) <- x | None -> ())
        | _ -> ())
    stores;
  info

(* ----- the symbolic evaluator ----- *)

let sym_of_special (s : Bitc.Instr.special) =
  match s with
  | Bitc.Instr.Tid_x -> A.Tid_x
  | Bitc.Instr.Tid_y -> A.Tid_y
  | Bitc.Instr.Ctaid_x -> A.Ctaid_x
  | Bitc.Instr.Ctaid_y -> A.Ctaid_y
  | Bitc.Instr.Ntid_x -> A.Ntid_x
  | Bitc.Instr.Ntid_y -> A.Ntid_y
  | Bitc.Instr.Nctaid_x -> A.Nctaid_x
  | Bitc.Instr.Nctaid_y -> A.Nctaid_y
  | Bitc.Instr.Warpid -> A.Warpid

let rec eval ctx (v : Bitc.Value.t) : A.t =
  match v with
  | Bitc.Value.Int i -> A.const i
  | Bitc.Value.Bool b -> A.const (if b then 1 else 0)
  | Bitc.Value.Float _ | Bitc.Value.Null -> A.unknown
  | Bitc.Value.Reg r ->
    if r < Bitc.Func.arity ctx.f then A.sym (A.Param r)
    else if r >= Array.length ctx.memo then A.unknown
    else (
      match ctx.memo.(r) with
      | Some t -> t
      | None ->
        let t = eval_reg ctx r in
        ctx.memo.(r) <- Some t;
        t)

and eval_reg ctx r =
  match ctx.defs.(r) with
  | None -> A.unknown
  | Some i -> (
    match i.Bitc.Instr.kind with
    | Bitc.Instr.Special s -> A.sym (sym_of_special s)
    | Bitc.Instr.Binop (op, _, a, b) -> (
      let ea = eval ctx a and eb = eval ctx b in
      match op with
      | Bitc.Instr.Add -> A.add ea eb
      | Bitc.Instr.Sub -> A.sub ea eb
      | Bitc.Instr.Mul -> A.mul ea eb
      | Bitc.Instr.Shl -> (
        match A.to_const eb with
        | Some c when c >= 0 && c < 31 -> A.mul_const (1 lsl c) ea
        | _ -> A.unknown)
      | Bitc.Instr.Div -> (
        match A.to_const ea, A.to_const eb with
        | Some x, Some y when y <> 0 -> A.const (x / y)
        | _ -> A.unknown)
      | Bitc.Instr.Rem -> (
        match A.to_const ea, A.to_const eb with
        | Some x, Some y when y <> 0 -> A.const (x mod y)
        | _ -> A.unknown)
      | _ -> A.unknown)
    | Bitc.Instr.Unop (Bitc.Instr.Neg, a) -> A.neg (eval ctx a)
    | Bitc.Instr.Load (Bitc.Value.Reg p) when p < Array.length ctx.allocas -> (
      match ctx.allocas.(p) with
      | Single v ->
        if ctx.visiting.(p) then A.unknown
        else begin
          ctx.visiting.(p) <- true;
          let t = eval ctx v in
          ctx.visiting.(p) <- false;
          t
        end
      | Induction { init; step; header } ->
        if ctx.visiting.(p) then A.unknown
        else begin
          ctx.visiting.(p) <- true;
          let base = eval ctx init in
          ctx.visiting.(p) <- false;
          A.add base (A.mul_const step (A.sym (A.Loop header)))
        end
      | Shortcircuit _ | Opaque -> A.unknown)
    | _ -> A.unknown)

(* ----- condition analysis (guard probabilities) ----- *)

(* [cond_info ctx depth v] estimates (probability the condition holds,
   is it a recovered bounds check).  A bounds check is a comparison
   whose two sides are both affine-recovered — the shape of an
   [if (i < n)] launch guard: it only splits the lanes of warps at the
   boundary, unlike a data-dependent test. *)
let rec cond_info ctx depth (v : Bitc.Value.t) : float * bool =
  if depth > 4 then (0.5, false)
  else
    match v with
    | Bitc.Value.Bool b -> ((if b then 1. else 0.), true)
    | Bitc.Value.Reg c -> (
      match ctx.defs.(c) with
      | Some { Bitc.Instr.kind = Bitc.Instr.Cmp (op, _, a, b); _ } -> (
        let ea = eval ctx a and eb = eval ctx b in
        let known = A.is_known ea && A.is_known eb in
        let lane =
          A.mentions A.lane_varying_sym ea || A.mentions A.lane_varying_sym eb
        in
        match op with
        | Bitc.Instr.Eq when known && lane -> (1. /. 32., true)
        | Bitc.Instr.Ne when known && lane -> (31. /. 32., true)
        | (Bitc.Instr.Lt | Bitc.Instr.Le | Bitc.Instr.Gt | Bitc.Instr.Ge)
          when known && lane ->
          (0.9, true) (* launch guard: the in-bounds side dominates *)
        | _ -> (0.5, known))
      | Some { Bitc.Instr.kind = Bitc.Instr.Unop (Bitc.Instr.Not, x); _ } ->
        let p, bounds = cond_info ctx (depth + 1) x in
        (1. -. p, bounds)
      | Some { Bitc.Instr.kind = Bitc.Instr.Load (Bitc.Value.Reg p); _ }
        when p < Array.length ctx.allocas -> (
        match ctx.allocas.(p) with
        | Shortcircuit { is_and; lhs; rhs } ->
          let pl, bl = cond_info ctx (depth + 1) lhs in
          let pr, br = cond_info ctx (depth + 1) rhs in
          if is_and then (pl *. pr, bl && br)
          else (1. -. ((1. -. pl) *. (1. -. pr)), bl && br)
        | Single v when not ctx.visiting.(p) ->
          ctx.visiting.(p) <- true;
          let r = cond_info ctx (depth + 1) v in
          ctx.visiting.(p) <- false;
          r
        | _ -> (0.5, false))
      | _ -> (0.5, false))
    | _ -> (0.5, false)

(* ----- pointer resolution ----- *)

(* Resolve a pointer value to (root, byte-offset polynomial).  The root
   is either a pointer-typed parameter register, an alloca register, or
   unknown.  Derived pointers spilled into a scalar alloca (the -O0
   calling convention copies every parameter into one) are followed. *)
type root = Root_param of int | Root_alloca of int | Root_unknown

let rec resolve_ptr ctx (v : Bitc.Value.t) : root * A.t =
  match v with
  | Bitc.Value.Reg r when r < Bitc.Func.arity ctx.f -> (Root_param r, A.zero)
  | Bitc.Value.Reg r -> (
    match ctx.defs.(r) with
    | Some { Bitc.Instr.kind = Bitc.Instr.Gep { base; index; elem }; _ } ->
      let root, off = resolve_ptr ctx base in
      let width = Bitc.Types.size_of elem in
      (root, A.add off (A.mul_const width (eval ctx index)))
    | Some { Bitc.Instr.kind = Bitc.Instr.Ptr_cast p; _ } -> resolve_ptr ctx p
    | Some { Bitc.Instr.kind = Bitc.Instr.Alloca _; _ }
    | Some { Bitc.Instr.kind = Bitc.Instr.Shared_alloca _; _ } ->
      (Root_alloca r, A.zero)
    | Some { Bitc.Instr.kind = Bitc.Instr.Load (Bitc.Value.Reg p); _ }
      when p < Array.length ctx.allocas -> (
      match ctx.allocas.(p) with
      | Single stored when not ctx.visiting.(p) ->
        ctx.visiting.(p) <- true;
        let res = resolve_ptr ctx stored in
        ctx.visiting.(p) <- false;
        res
      | _ -> (Root_unknown, A.unknown))
    | _ -> (Root_unknown, A.unknown))
  | _ -> (Root_unknown, A.unknown)

(* ----- trip counts ----- *)

(* Estimated trip count of a loop from the compare that guards its
   exit edge: a block in the loop ends in [Cond_br cond t f] with
   exactly one successor outside the loop, and [cond] compares two
   polynomials mentioning the loop's own induction symbol linearly.
   Solving [init + step*k < bound] for the iteration count is exact
   when [bound - init] is constant; a symbolic-but-affine bound gets
   the default with [Heuristic] confidence. *)
let loop_trips ctx (l : Bitc.Loops.loop) =
  let h = l.Bitc.Loops.header in
  let n = Bitc.Cfg.size ctx.cfg in
  let exit_tests =
    List.filter
      (fun bi ->
        bi < n && l.Bitc.Loops.body.(bi)
        &&
        match (Bitc.Cfg.block ctx.cfg bi).Bitc.Block.term with
        | Some (Bitc.Instr.Cond_br _) ->
          List.exists
            (fun s -> not l.Bitc.Loops.body.(s))
            ctx.cfg.Bitc.Cfg.succ.(bi)
        | _ -> false)
      (List.init n Fun.id)
  in
  let solve cond_reg ~true_in_loop =
    match ctx.defs.(cond_reg) with
    | Some { Bitc.Instr.kind = Bitc.Instr.Cmp (op, _, a, b); _ } -> (
      let ea = eval ctx a and eb = eval ctx b in
      (* normalize to "continue while lhs < rhs" *)
      let continue_op =
        if true_in_loop then op
        else
          match op with
          | Bitc.Instr.Lt -> Bitc.Instr.Ge
          | Bitc.Instr.Le -> Bitc.Instr.Gt
          | Bitc.Instr.Gt -> Bitc.Instr.Le
          | Bitc.Instr.Ge -> Bitc.Instr.Lt
          | Bitc.Instr.Eq -> Bitc.Instr.Ne
          | Bitc.Instr.Ne -> Bitc.Instr.Eq
      in
      let lt lhs rhs extra =
        (* iterations satisfy lhs < rhs + extra *)
        let diff = A.sub (A.add rhs (A.const extra)) lhs in
        let iv_coeff = A.coeff_of diff (A.Loop h) in
        if iv_coeff >= 0 then None (* not decreasing towards exit *)
        else
          let rest = A.without_sym diff (A.Loop h) in
          if A.mentions_loop rest then None
          else
            match A.to_const rest with
            | Some c ->
              let steps =
                (* largest k with c + iv_coeff*k > 0 *)
                if c <= 0 then 0 else (c + -iv_coeff - 1) / -iv_coeff
              in
              Some (float_of_int steps, Exact)
            | None ->
              if A.is_known rest then Some (default_trips, Heuristic) else None
      in
      match continue_op with
      | Bitc.Instr.Lt -> lt ea eb 0
      | Bitc.Instr.Le -> lt ea eb 1
      | Bitc.Instr.Gt -> lt eb ea 0
      | Bitc.Instr.Ge -> lt eb ea 1
      | Bitc.Instr.Ne | Bitc.Instr.Eq -> None)
    | _ -> None
  in
  let result =
    List.find_map
      (fun bi ->
        match (Bitc.Cfg.block ctx.cfg bi).Bitc.Block.term with
        | Some (Bitc.Instr.Cond_br (Bitc.Value.Reg c, t, f)) ->
          let ti = Bitc.Cfg.index_of ctx.cfg t
          and fi = Bitc.Cfg.index_of ctx.cfg f in
          let true_in_loop = ti < n && l.Bitc.Loops.body.(ti) in
          let false_in_loop = fi < n && l.Bitc.Loops.body.(fi) in
          if true_in_loop = false_in_loop then None else solve c ~true_in_loop
        | _ -> None)
      exit_tests
  in
  match result with
  | Some (trips, conf) -> (Float.max 0. trips, conf)
  | None -> (default_trips, Unknown)

(* ----- per-block execution weights ----- *)

(* Expected executions of each block per thread: an acyclic propagation
   over the CFG with back edges removed gives per-entry probabilities;
   multiplying by the trip counts of the enclosing loops turns them
   into counts.  Loop-exit tests pass their full weight to both sides
   (the trip-count factor accounts for iteration, the exit side
   continues the straight-line flow); other conditions split by
   {!cond_info}'s probability. *)
let block_weights ctx trips_of =
  let n = Bitc.Cfg.size ctx.cfg in
  let prob = Array.make n 0. in
  if n > 0 then prob.(0) <- 1.;
  let order = Bitc.Cfg.reverse_postorder ctx.cfg in
  let edge_probs bi =
    match (Bitc.Cfg.block ctx.cfg bi).Bitc.Block.term with
    | Some (Bitc.Instr.Br _) -> [ (List.hd ctx.cfg.Bitc.Cfg.succ.(bi), 1.0) ]
    | Some (Bitc.Instr.Cond_br (cond, t, f)) ->
      let ti = Bitc.Cfg.index_of ctx.cfg t
      and fi = Bitc.Cfg.index_of ctx.cfg f in
      let in_loop i =
        List.exists
          (fun (l : Bitc.Loops.loop) -> i < Array.length l.body && l.body.(i))
          (Bitc.Loops.containing ctx.loops bi)
      in
      let loop_exit =
        Bitc.Loops.containing ctx.loops bi <> [] && in_loop ti <> in_loop fi
      in
      if loop_exit then [ (ti, 1.0); (fi, 1.0) ]
      else
        let p_then = fst (cond_info ctx 0 cond) in
        [ (ti, p_then); (fi, 1. -. p_then) ]
    | _ -> []
  in
  Array.iter
    (fun bi ->
      if prob.(bi) > 0. then
        List.iter
          (fun (s, p) ->
            if not (Bitc.Loops.is_back_edge ctx.loops ~u:bi ~v:s) then
              prob.(s) <- prob.(s) +. (prob.(bi) *. p))
          (edge_probs bi))
    order;
  let weight = Array.make n 0. in
  for bi = 0 to n - 1 do
    let mult =
      List.fold_left
        (fun acc (l : Bitc.Loops.loop) -> acc *. fst (trips_of l))
        1.
        (Bitc.Loops.containing ctx.loops bi)
    in
    weight.(bi) <- prob.(bi) *. mult
  done;
  weight

(* ----- per-site coalescing ----- *)

(* The intra-warp shape of a byte offset, refined beyond
   {!A.lane_pattern} with the launch geometry in hand:
   - when [bx] is a warp multiple, [tid.y] is constant within a warp
     and drops out of the lane analysis entirely;
   - [L_row_split]: [tid.x]'s stride is a known constant but [tid.y]'s
     is symbolic (a row-major array with a parameter pitch) — each of
     the warp's rows coalesces by [cx], and the rows are assumed to
     land on disjoint lines (any realistic pitch exceeds a line). *)
type lane_class =
  | L_uniform
  | L_strided of { cx : int; cy : int }
  | L_row_split of { cx : int }
  | L_symbolic

let classify_lane ~tid_y_uniform (off : A.t) =
  match off with
  | A.Unknown -> L_symbolic
  | A.Poly monos ->
    let x_mixed =
      List.exists
        (fun (m : A.mono) -> List.mem A.Tid_x m.A.syms && m.A.syms <> [ A.Tid_x ])
        monos
    in
    if x_mixed then L_symbolic
    else
      let y_mixed =
        (not tid_y_uniform)
        && List.exists
             (fun (m : A.mono) ->
               List.mem A.Tid_y m.A.syms && m.A.syms <> [ A.Tid_y ])
             monos
      in
      let cx = A.coeff_of off A.Tid_x in
      let cy = if tid_y_uniform then 0 else A.coeff_of off A.Tid_y in
      if y_mixed then L_row_split { cx }
      else if cx = 0 && cy = 0 then L_uniform
      else L_strided { cx; cy }

(* Unique cache lines (and distinct elements) the warp's lanes touch
   for a byte offset [cx*tid.x + cy*tid.y + uniform], assuming a
   line-aligned base and a full warp laid out row-major over a
   [bx * by] block. *)
let enumerate_strided ~bx ~by ~warp_size ~line_size ~cx ~cy =
  let lanes = min warp_size (max 1 (bx * max 1 by)) in
  let lines = Hashtbl.create 64 and elems = Hashtbl.create 64 in
  for l = 0 to lanes - 1 do
    let tx = l mod bx and ty = l / bx in
    let off = (cx * tx) + (cy * ty) in
    let line =
      if off >= 0 then off / line_size else ((off + 1) / line_size) - 1
    in
    Hashtbl.replace lines line ();
    Hashtbl.replace elems off ()
  done;
  (Hashtbl.length lines, Hashtbl.length elems)

(* Predicted bank-conflict shape of a shared access whose per-lane byte
   offset is [base + cx*tid.x + cy*tid.y]: the same dedup the simulator
   performs (lanes on one word broadcast; distinct words queue per
   bank).  Mirrors [Gpusim.Exec]'s conflict detection exactly, which is
   what the static-vs-dynamic calibration test pins. *)
let predict_bank_degree ~bx ~by ~warp_size ~banks ~bank_width ~cx ~cy ~base =
  let lanes = min warp_size (max 1 (bx * max 1 by)) in
  let words = Hashtbl.create 64 and bank_count = Hashtbl.create 64 in
  let degree = ref 1 and broadcast = ref false in
  for l = 0 to lanes - 1 do
    let tx = l mod bx and ty = l / bx in
    let off = base + (cx * tx) + (cy * ty) in
    let w =
      if off >= 0 then off / bank_width else ((off + 1) / bank_width) - 1
    in
    if Hashtbl.mem words w then broadcast := true
    else begin
      Hashtbl.replace words w ();
      let b = ((w mod banks) + banks) mod banks in
      let c = 1 + Option.value (Hashtbl.find_opt bank_count b) ~default:0 in
      Hashtbl.replace bank_count b c;
      if c > !degree then degree := c
    end
  done;
  (!degree, !broadcast)

type site_model = {
  sm_site : site;
  sm_block : int; (* CFG block index *)
  sm_root : root;
  sm_offset : A.t; (* byte offset with ntid substituted *)
  sm_is_load : bool;
  sm_is_store : bool;
  sm_lane : lane_class;
  sm_elems : int; (* distinct elements per warp access (>= 1) *)
}

(* ----- the estimator ----- *)

type acc = {
  mutable models : site_model list; (* reversed *)
  mutable shared : shared_site list; (* reversed *)
  mutable bounds : loop_bound list; (* reversed *)
  mutable branch_num : float;
  mutable branch_den : float;
  mutable branch_conf : confidence;
  mutable reuse_conf : confidence;
  mutable samples : float;
  hist : (string, float) Hashtbl.t;
}

let run ~block:(bx, by) ?(warp_size = 32) ?(banks = 32) ?(bank_width = 4)
    ~line_size (m : Bitc.Irmod.t) =
  let bx = max 1 bx and by = max 1 by in
  let warps_per_cta = max 1 (bx * by / max 1 warp_size) in
  let tid_y_uniform = bx mod warp_size = 0 in
  let acc =
    {
      models = [];
      shared = [];
      bounds = [];
      branch_num = 0.;
      branch_den = 0.;
      branch_conf = Exact;
      reuse_conf = Exact;
      samples = 0.;
      hist = Hashtbl.create 8;
    }
  in
  let bump label frac =
    Hashtbl.replace acc.hist label
      (frac +. Option.value (Hashtbl.find_opt acc.hist label) ~default:0.)
  in
  let funcs =
    List.filter
      (fun (f : Bitc.Func.t) ->
        match f.fkind with
        | Bitc.Func.Kernel | Bitc.Func.Device -> true
        | Bitc.Func.Host -> false)
      m.Bitc.Irmod.funcs
  in
  List.iter
    (fun (f : Bitc.Func.t) ->
      let defs = build_defs f in
      let cfg = Bitc.Cfg.build f in
      let loops = Bitc.Loops.find cfg in
      let allocas = classify_allocas f defs cfg loops in
      let ctx =
        {
          f;
          defs;
          cfg;
          loops;
          allocas;
          memo = Array.make f.Bitc.Func.next_reg None;
          visiting = Array.make f.Bitc.Func.next_reg false;
        }
      in
      let trips_table = Hashtbl.create 8 in
      let trips_of (l : Bitc.Loops.loop) =
        match Hashtbl.find_opt trips_table l.Bitc.Loops.header with
        | Some t -> t
        | None ->
          let t = loop_trips ctx l in
          Hashtbl.replace trips_table l.Bitc.Loops.header t;
          t
      in
      List.iter
        (fun (l : Bitc.Loops.loop) ->
          let trips, conf = trips_of l in
          acc.bounds <-
            {
              loop_func = f.Bitc.Func.name;
              loop_header =
                (Bitc.Cfg.block cfg l.Bitc.Loops.header).Bitc.Block.name;
              trips;
              trips_confidence = conf;
            }
            :: acc.bounds)
        loops;
      let weights = block_weights ctx trips_of in
      let tainted = Check_static.divergent_regs f in
      (* --- memory sites --- *)
      let subst_block t = A.subst A.Ntid_x bx (A.subst A.Ntid_y by t) in
      let f_models = ref [] in
      Array.iteri
        (fun bi (b : Bitc.Block.t) ->
          List.iter
            (fun (i : Bitc.Instr.t) ->
              let classify ptr kind ~is_load ~is_store =
                match Bitc.Func.value_ty f ptr with
                | Bitc.Types.Ptr (_, Bitc.Types.Global) ->
                  let root, off = resolve_ptr ctx ptr in
                  let off = subst_block off in
                  let lane = classify_lane ~tid_y_uniform off in
                  let divergent_addr =
                    match ptr with
                    | Bitc.Value.Reg r -> r < Array.length tainted && tainted.(r)
                    | _ -> false
                  in
                  let lines, conf, elems =
                    match lane with
                    | L_symbolic when not (A.is_known off) ->
                      (* nothing recovered: coarse prior keyed on the
                         taint analysis *)
                      if divergent_addr then
                        (float_of_int warp_size /. 2., Unknown, warp_size / 2)
                      else (1., Heuristic, 1)
                    | L_symbolic ->
                      (* affine but with a symbolic lane stride (e.g.
                         [tid.x * n]): any realistic row length exceeds
                         a cache line, so predict full divergence *)
                      (float_of_int warp_size, Heuristic, warp_size)
                    | L_uniform -> (1., Exact, 1)
                    | L_row_split { cx } ->
                      (* [rows] distinct tid.y values per warp, each row
                         coalescing by the constant tid.x stride *)
                      let lanes = min warp_size (max 1 (bx * max 1 by)) in
                      let rows = (lanes + bx - 1) / bx in
                      let row_lines, row_elems =
                        enumerate_strided ~bx ~by:1 ~warp_size:(min bx lanes)
                          ~line_size ~cx ~cy:0
                      in
                      ( float_of_int (rows * row_lines),
                        Heuristic,
                        rows * row_elems )
                    | L_strided { cx; cy } ->
                      let l, e =
                        enumerate_strided ~bx ~by ~warp_size ~line_size ~cx ~cy
                      in
                      (float_of_int l, Affine, e)
                  in
                  let weight =
                    if bi < Array.length weights then weights.(bi) else 1.
                  in
                  let site =
                    {
                      site_loc = i.Bitc.Instr.loc;
                      site_func = f.Bitc.Func.name;
                      site_kind = kind;
                      pattern = A.to_string off;
                      lines;
                      lines_confidence = conf;
                      weight;
                    }
                  in
                  f_models :=
                    {
                      sm_site = site;
                      sm_block = bi;
                      sm_root = root;
                      sm_offset = off;
                      sm_is_load = is_load;
                      sm_is_store = is_store;
                      sm_lane = lane;
                      sm_elems = max 1 elems;
                    }
                    :: !f_models
                | Bitc.Types.Ptr (_, Bitc.Types.Shared) ->
                  (* shared access: map the affine lane offsets to banks
                     instead of cache lines *)
                  let _, off = resolve_ptr ctx ptr in
                  let off = subst_block off in
                  let lane = classify_lane ~tid_y_uniform off in
                  let lanes = min warp_size (max 1 (bx * max 1 by)) in
                  let degree, broadcast, conf =
                    match lane with
                    | L_uniform -> (1, lanes > 1, Exact)
                    | L_strided { cx; cy } ->
                      (* the uniform residue only shifts every lane by
                         the same amount; a non-constant residue keeps
                         the stride pattern but weakens the claim *)
                      let residue =
                        A.without_sym (A.without_sym off A.Tid_x) A.Tid_y
                      in
                      let base, conf =
                        match A.to_const residue with
                        | Some c -> (c, Exact)
                        | None ->
                          (0, if A.is_known residue then Affine else Heuristic)
                      in
                      let d, b =
                        predict_bank_degree ~bx ~by ~warp_size ~banks
                          ~bank_width ~cx ~cy ~base
                      in
                      (d, b, conf)
                    | L_row_split { cx } ->
                      (* symbolic tid.y stride: model one row's tid.x
                         stride and assume the rows do not collide *)
                      let row = min bx warp_size in
                      let d, b =
                        predict_bank_degree ~bx:row ~by:1 ~warp_size:row
                          ~banks ~bank_width ~cx ~cy:0 ~base:0
                      in
                      (d, b, Heuristic)
                    | L_symbolic -> (1, false, Unknown)
                  in
                  acc.shared <-
                    {
                      sh_loc = i.Bitc.Instr.loc;
                      sh_func = f.Bitc.Func.name;
                      sh_kind = kind;
                      sh_pattern = A.to_string off;
                      sh_degree = degree;
                      sh_broadcast = broadcast;
                      sh_confidence = conf;
                    }
                    :: acc.shared
                | _ -> ()
              in
              match i.Bitc.Instr.kind with
              | Bitc.Instr.Load ptr ->
                classify ptr "load" ~is_load:true ~is_store:false
              | Bitc.Instr.Store { ptr; _ } ->
                classify ptr "store" ~is_load:false ~is_store:true
              | Bitc.Instr.Atomic_add { ptr; _ } ->
                classify ptr "atomic" ~is_load:true ~is_store:true
              | _ -> ())
            b.Bitc.Block.instrs)
        cfg.Bitc.Cfg.blocks;
      let f_models = List.rev !f_models in
      (* --- branch divergence --- *)
      let n = Bitc.Cfg.size cfg in
      let ipdom = lazy (Bitc.Cfg.post_dominators cfg) in
      let divergent_frac = Array.make n 0. in
      Array.iteri
        (fun bi (b : Bitc.Block.t) ->
          match b.Bitc.Block.term with
          | Some (Bitc.Instr.Cond_br ((Bitc.Value.Reg c as cond), _, _))
            when c < Array.length tainted && tainted.(c) ->
            let _, bounds = cond_info ctx 0 cond in
            let frac = if bounds then boundary_divergence else 0.5 in
            if acc.branch_conf <> Unknown then acc.branch_conf <- Heuristic;
            let region =
              Check_static.influence_region cfg bi ~stop:(Lazy.force ipdom).(bi)
            in
            for s = 0 to n - 1 do
              if region.(s) then
                divergent_frac.(s) <- Float.max divergent_frac.(s) frac
            done
          | _ -> ())
        cfg.Bitc.Cfg.blocks;
      for bi = 0 to n - 1 do
        acc.branch_den <- acc.branch_den +. weights.(bi);
        acc.branch_num <- acc.branch_num +. (weights.(bi) *. divergent_frac.(bi))
      done;
      (* --- reuse-distance samples --- *)
      (* One sample per dynamic load, resolved at the element's next
         access, exactly like the dynamic analysis.  Atomics produce no
         samples.  The per-site mass is its execution weight. *)
      (* Distinct elements the CTA's warps touch per iteration of a
         loop body: the stack distance a loop-invariant reload sees. *)
      let loop_footprint body =
        let per_warp =
          List.fold_left
            (fun a sm ->
              if sm.sm_block < Array.length body && body.(sm.sm_block) then
                a + sm.sm_elems
              else a)
            0 f_models
        in
        per_warp * warps_per_cta
      in
      (* A load whose element is also stored through an equal offset
         (a read-modify-write accumulator) resolves as write-evicted:
         the element's next access is the store, bucket "inf". *)
      let killed sm =
        A.is_known sm.sm_offset
        && List.exists
             (fun other ->
               other.sm_is_store
               && other.sm_root = sm.sm_root
               && A.equal other.sm_offset sm.sm_offset)
             f_models
      in
      List.iter
        (fun sm ->
          if sm.sm_is_load && not sm.sm_is_store then begin
            let samples = sm.sm_site.weight in
            if samples > 0. then begin
              acc.samples <- acc.samples +. samples;
              (* intra-warp: a broadcast's lanes reload one element, so
                 all but one lane's samples land at distance 0 *)
              let broadcast_frac =
                match sm.sm_lane with
                | L_uniform ->
                  float_of_int (warp_size - 1) /. float_of_int warp_size
                | _ -> 0.
              in
              if broadcast_frac > 0. then begin
                acc.reuse_conf <- weakest acc.reuse_conf Affine;
                bump "0" (samples *. broadcast_frac)
              end;
              let rest = samples *. (1. -. broadcast_frac) in
              (* cross-iteration behaviour of the remaining samples *)
              if not (A.is_known sm.sm_offset) then begin
                acc.reuse_conf <- weakest acc.reuse_conf Unknown;
                bump "inf" rest
              end
              else
                match Bitc.Loops.innermost loops sm.sm_block with
                | None ->
                  (* executed once: the element is never re-accessed *)
                  acc.reuse_conf <- weakest acc.reuse_conf Affine;
                  bump "inf" rest
                | Some l ->
                  if killed sm then begin
                    (* the next access is the store: write-evicted *)
                    acc.reuse_conf <- weakest acc.reuse_conf Affine;
                    bump "inf" rest
                  end
                  else if A.mentions_loop sm.sm_offset then begin
                    (* streaming: fresh elements every iteration *)
                    acc.reuse_conf <- weakest acc.reuse_conf Affine;
                    bump "inf" rest
                  end
                  else begin
                    (* loop-invariant reload: re-accessed next iteration
                       at the body's footprint distance *)
                    let d = loop_footprint l.Bitc.Loops.body in
                    let trips, _ = trips_of l in
                    let t = Float.max 1. trips in
                    let reused = (t -. 1.) /. t in
                    acc.reuse_conf <- weakest acc.reuse_conf Heuristic;
                    bump (bucket_of_distance d) (rest *. reused);
                    bump "inf" (rest *. (1. -. reused))
                  end
            end
          end)
        f_models;
      acc.models <- List.rev_append f_models acc.models)
    funcs;
  let models = List.rev acc.models in
  (* --- memory-divergence degree: execution-weighted mean --- *)
  let degree, degree_conf =
    let num, den, conf =
      List.fold_left
        (fun (num, den, conf) sm ->
          let w = sm.sm_site.weight in
          ( num +. (sm.sm_site.lines *. w),
            den +. w,
            if w > 0. then weakest conf sm.sm_site.lines_confidence else conf ))
        (0., 0., Exact) models
    in
    if den = 0. then (0., Exact) else (num /. den, conf)
  in
  let reuse_histogram =
    List.map
      (fun label ->
        let v = Option.value (Hashtbl.find_opt acc.hist label) ~default:0. in
        (label, if acc.samples = 0. then 0. else v /. acc.samples))
      bucket_labels
  in
  let no_reuse_fraction =
    match List.assoc_opt "inf" reuse_histogram with Some fr -> fr | None -> 0.
  in
  let branch_percent =
    if acc.branch_den = 0. then 0. else 100. *. acc.branch_num /. acc.branch_den
  in
  let shared_sites = List.rev acc.shared in
  let bank_degree, bank_confidence =
    List.fold_left
      (fun (d, conf) s -> (max d s.sh_degree, weakest conf s.sh_confidence))
      (1, Exact) shared_sites
  in
  {
    block = (bx, by);
    line_size;
    banks;
    bank_width;
    sites = List.map (fun sm -> sm.sm_site) models;
    shared_sites;
    bank_degree;
    bank_confidence;
    degree;
    degree_confidence = degree_conf;
    branch_percent;
    branch_confidence = (if acc.branch_num = 0. then Exact else acc.branch_conf);
    reuse_histogram;
    no_reuse_fraction;
    reuse_confidence = (if acc.samples = 0. then Exact else acc.reuse_conf);
    loop_bounds = List.rev acc.bounds;
  }
