(* The CUDAAdvisor instrumentation engine (Section 3.1 of the paper).

   Mandatory instrumentation maintains the shadow call stacks: every call
   to a device function is bracketed with [__ca_push_call]/[__ca_pop_call]
   carrying a call-site id (resolved through the manifest to caller,
   callee and source location).

   Optional instrumentation covers the three categories of Section 3.1:
   - memory operations: every global-memory load/store/atomic gets a
     [Record] call with the effective address (bitcast to i8*, as in
     Listing 2), access width in bits, and source line/column;
   - control flow: every basic block entry gets a [passBasicBlock] call
     (Listing 3/4) carrying the block id and source location;
   - arithmetic operations: every binop/unop/compare gets a hook with the
     opcode and the dynamic operand values. *)

type options = {
  memory : bool;
  control_flow : bool;
  arithmetic : bool;
  sharing : bool;
}

(* [sharing] is the correctness-checking category (shared-memory accesses
   + barrier epochs for `advisor check`); it is off in every preset so
   the profiling hook mix — and therefore the golden metrics — is
   unchanged unless a client asks for it. *)
let all = { memory = true; control_flow = true; arithmetic = true; sharing = false }

let memory_only =
  { memory = true; control_flow = false; arithmetic = false; sharing = false }

let control_flow_only =
  { memory = false; control_flow = true; arithmetic = false; sharing = false }

let nothing =
  { memory = false; control_flow = false; arithmetic = false; sharing = false }

let sharing_only =
  { memory = false; control_flow = false; arithmetic = false; sharing = true }

type result = { manifest : Manifest.t }

let hook_call ~callee ~args ~loc =
  { Bitc.Instr.result = None;
    ty = Bitc.Types.Void;
    kind = Bitc.Instr.Call { callee; args };
    loc }

(* Effective-address instrumentation for one memory instruction: returns
   the hook sequence to place before it (Listing 1: bitcast + Record). *)
let mem_hooks (f : Bitc.Func.t) (i : Bitc.Instr.t) =
  let instrument ptr ~value_ty ~kind =
    match Bitc.Func.value_ty f ptr with
    | Bitc.Types.Ptr (_, Bitc.Types.Global) ->
      let cast_reg = Bitc.Func.fresh_reg f Bitc.Builder.byte_ptr_ty in
      let cast =
        { Bitc.Instr.result = Some cast_reg;
          ty = Bitc.Builder.byte_ptr_ty;
          kind = Bitc.Instr.Ptr_cast ptr;
          loc = i.loc }
      in
      let bits = 8 * Bitc.Types.size_of value_ty in
      let call =
        hook_call ~callee:Hooks.record_mem
          ~args:
            [ Bitc.Value.Reg cast_reg;
              Bitc.Value.Int bits;
              Bitc.Value.Int i.loc.Bitc.Loc.line;
              Bitc.Value.Int i.loc.Bitc.Loc.col;
              Bitc.Value.Int kind ]
          ~loc:i.loc
      in
      [ cast; call ]
    | _ -> [] (* local/shared accesses are not global-memory traffic *)
  in
  match i.kind with
  | Bitc.Instr.Load ptr -> instrument ptr ~value_ty:i.ty ~kind:Hooks.mem_kind_load
  | Bitc.Instr.Store { ptr; value_ty; _ } ->
    instrument ptr ~value_ty ~kind:Hooks.mem_kind_store
  | Bitc.Instr.Atomic_add { ptr; value_ty; _ } ->
    instrument ptr ~value_ty ~kind:Hooks.mem_kind_atomic
  | _ -> []

(* Arithmetic instrumentation: opcode + operand values.  Integer and
   float operands go to separate hooks so the IR stays well-typed. *)
let arith_hooks (f : Bitc.Func.t) (i : Bitc.Instr.t) =
  let line = Bitc.Value.Int i.loc.Bitc.Loc.line in
  let col = Bitc.Value.Int i.loc.Bitc.Loc.col in
  let emit code a b ty =
    let callee, args =
      if Bitc.Types.is_float ty then
        (Hooks.record_arith_f, [ Bitc.Value.Int code; a; b; line; col ])
      else (Hooks.record_arith_i, [ Bitc.Value.Int code; a; b; line; col ])
    in
    [ hook_call ~callee ~args ~loc:i.loc ]
  in
  (* Only i32/f32 arithmetic is instrumented: boolean and pointer
     operations carry no numeric operand values for the hook. *)
  let numeric = function Bitc.Types.I32 | Bitc.Types.F32 -> true | _ -> false in
  match i.kind with
  | Bitc.Instr.Binop (op, ty, a, b) when numeric ty ->
    emit (Hooks.arith_code_of_binop op) a b ty
  | Bitc.Instr.Cmp (op, ty, a, b) when numeric ty ->
    emit (Hooks.arith_code_of_cmp op) a b ty
  | Bitc.Instr.Unop (op, a) ->
    let ty = Bitc.Func.value_ty f a in
    if not (numeric ty) then []
    else
      let zero =
        if Bitc.Types.is_float ty then Bitc.Value.Float 0. else Bitc.Value.Int 0
      in
      emit (Hooks.arith_code_of_unop op) a zero ty
  | _ -> []

(* Shared-memory instrumentation for the correctness checker: every
   shared-space load/store/atomic gets a [record_shared] hook mirroring
   the global-memory [Record] shape (address, width, location, kind). *)
let shared_hooks (f : Bitc.Func.t) (i : Bitc.Instr.t) =
  let instrument ptr ~value_ty ~kind =
    match Bitc.Func.value_ty f ptr with
    | Bitc.Types.Ptr (_, Bitc.Types.Shared) ->
      let cast_reg = Bitc.Func.fresh_reg f Bitc.Builder.byte_ptr_ty in
      let cast =
        { Bitc.Instr.result = Some cast_reg;
          ty = Bitc.Builder.byte_ptr_ty;
          kind = Bitc.Instr.Ptr_cast ptr;
          loc = i.loc }
      in
      let bits = 8 * Bitc.Types.size_of value_ty in
      let call =
        hook_call ~callee:Hooks.record_shared
          ~args:
            [ Bitc.Value.Reg cast_reg;
              Bitc.Value.Int bits;
              Bitc.Value.Int i.loc.Bitc.Loc.line;
              Bitc.Value.Int i.loc.Bitc.Loc.col;
              Bitc.Value.Int kind ]
          ~loc:i.loc
      in
      [ cast; call ]
    | _ -> []
  in
  match i.kind with
  | Bitc.Instr.Load ptr -> instrument ptr ~value_ty:i.ty ~kind:Hooks.mem_kind_load
  | Bitc.Instr.Store { ptr; value_ty; _ } ->
    instrument ptr ~value_ty ~kind:Hooks.mem_kind_store
  | Bitc.Instr.Atomic_add { ptr; value_ty; _ } ->
    instrument ptr ~value_ty ~kind:Hooks.mem_kind_atomic
  | _ -> []

(* Barrier-epoch instrumentation: a [record_bar] hook after each
   __syncthreads so the checker can advance the per-warp epoch once the
   barrier has released. *)
let barrier_hooks manifest (f : Bitc.Func.t) (i : Bitc.Instr.t) =
  match i.kind with
  | Bitc.Instr.Sync ->
    let id = Manifest.add_barrier manifest ~in_func:f.Bitc.Func.name ~loc:i.loc in
    [ hook_call ~callee:Hooks.record_bar
        ~args:
          [ Bitc.Value.Int id;
            Bitc.Value.Int i.loc.Bitc.Loc.line;
            Bitc.Value.Int i.loc.Bitc.Loc.col ]
        ~loc:i.loc ]
  | _ -> []

(* Mandatory call-path instrumentation around calls to functions defined
   in this module (device functions; hooks themselves are skipped). *)
let call_hooks (m : Bitc.Irmod.t) manifest (f : Bitc.Func.t) (i : Bitc.Instr.t) =
  match i.kind with
  | Bitc.Instr.Call { callee; _ }
    when (not (Hooks.is_hook callee)) && Bitc.Irmod.find_func m callee <> None ->
    let id =
      Manifest.add_callsite manifest ~caller:f.Bitc.Func.name ~callee ~loc:i.loc
    in
    let push =
      hook_call ~callee:Hooks.push_call ~args:[ Bitc.Value.Int id ] ~loc:i.loc
    in
    let pop =
      hook_call ~callee:Hooks.pop_call ~args:[ Bitc.Value.Int id ] ~loc:i.loc
    in
    ([ push ], [ pop ])
  | _ -> ([], [])

let block_loc (b : Bitc.Block.t) =
  let from_instr =
    List.find_map
      (fun (i : Bitc.Instr.t) ->
        if Bitc.Loc.is_none i.loc then None else Some i.loc)
      b.instrs
  in
  Option.value from_instr ~default:Bitc.Loc.none

let instrument_func (m : Bitc.Irmod.t) options manifest (f : Bitc.Func.t) =
  List.iter
    (fun (b : Bitc.Block.t) ->
      let body =
        List.concat_map
          (fun (i : Bitc.Instr.t) ->
            let skip =
              match i.kind with
              | Bitc.Instr.Call { callee; _ } -> Hooks.is_hook callee
              | _ -> false
            in
            if skip then [ i ]
            else
              let mem = if options.memory then mem_hooks f i else [] in
              let shared = if options.sharing then shared_hooks f i else [] in
              let bar =
                if options.sharing then barrier_hooks manifest f i else []
              in
              let arith = if options.arithmetic then arith_hooks f i else [] in
              let push, pop = call_hooks m manifest f i in
              mem @ shared @ arith @ push @ [ i ] @ bar @ pop)
          b.instrs
      in
      let body =
        if options.control_flow then begin
          let id =
            Manifest.add_block manifest ~in_func:f.Bitc.Func.name
              ~block_name:b.name ~loc:(block_loc b)
          in
          let loc = block_loc b in
          hook_call ~callee:Hooks.record_bb
            ~args:
              [ Bitc.Value.Int id;
                Bitc.Value.Int loc.Bitc.Loc.line;
                Bitc.Value.Int loc.Bitc.Loc.col ]
            ~loc
          :: body
        end
        else body
      in
      b.instrs <- body)
    f.blocks

(* Instrument all kernels and device functions of [m] in place and
   return the manifest.  Run once per module; re-instrumenting an
   already-instrumented module would double-count events, so hook calls
   are skipped defensively. *)
let run ?(options = all) (m : Bitc.Irmod.t) : result =
  Hooks.declare_all m;
  let manifest = Manifest.create () in
  List.iter
    (fun (f : Bitc.Func.t) ->
      match f.fkind with
      | Bitc.Func.Kernel | Bitc.Func.Device -> instrument_func m options manifest f
      | Bitc.Func.Host -> ())
    m.funcs;
  (match Bitc.Verify.check m with
  | Ok () -> ()
  | Error msg -> raise (Pass.Pass_error { pass = "instrument"; msg }));
  { manifest }

let as_pass ?(options = all) ~into () =
  Pass.make ~name:"instrument" (fun m -> into := Some (run ~options m))
