(* Side tables emitted by the instrumentation engine.  The paper stores
   basic-block names as global strings in the binary (Listing 4); we
   register them in a manifest keyed by small integer ids, which the
   hooks carry at run time and the analyzer resolves back to names and
   source locations. *)

type callsite = {
  callsite_id : int;
  caller : string;
  callee : string;
  call_loc : Bitc.Loc.t;
}

type block_info = {
  block_id : int;
  in_func : string;
  block_name : string;
  block_loc : Bitc.Loc.t;
}

type barrier_info = {
  barrier_id : int;
  bar_func : string;
  bar_loc : Bitc.Loc.t;
}

type t = {
  mutable callsites : callsite list; (* reverse order during build *)
  mutable blocks : block_info list;
  mutable barriers : barrier_info list;
  mutable next_callsite : int;
  mutable next_block : int;
  mutable next_barrier : int;
}

let create () =
  { callsites = [];
    blocks = [];
    barriers = [];
    next_callsite = 0;
    next_block = 0;
    next_barrier = 0 }

let add_callsite t ~caller ~callee ~loc =
  let id = t.next_callsite in
  t.next_callsite <- id + 1;
  t.callsites <- { callsite_id = id; caller; callee; call_loc = loc } :: t.callsites;
  id

let add_block t ~in_func ~block_name ~loc =
  let id = t.next_block in
  t.next_block <- id + 1;
  t.blocks <- { block_id = id; in_func; block_name; block_loc = loc } :: t.blocks;
  id

let add_barrier t ~in_func ~loc =
  let id = t.next_barrier in
  t.next_barrier <- id + 1;
  t.barriers <- { barrier_id = id; bar_func = in_func; bar_loc = loc } :: t.barriers;
  id

let callsite t id =
  match List.find_opt (fun c -> c.callsite_id = id) t.callsites with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Manifest.callsite: unknown id %d" id)

let block t id =
  match List.find_opt (fun b -> b.block_id = id) t.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Manifest.block: unknown id %d" id)

let barrier t id =
  match List.find_opt (fun b -> b.barrier_id = id) t.barriers with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Manifest.barrier: unknown id %d" id)

let num_blocks t = t.next_block
let num_callsites t = t.next_callsite
let num_barriers t = t.next_barrier
