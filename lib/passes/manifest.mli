(** Side tables emitted by the instrumentation engine: the hooks carry
    small integer ids at run time; the analyzer resolves them back to
    call sites and basic blocks (the paper stores block names as global
    strings in the binary — Listing 4 — with the same effect). *)

type callsite = {
  callsite_id : int;
  caller : string;
  callee : string;
  call_loc : Bitc.Loc.t;
}

type block_info = {
  block_id : int;
  in_func : string;
  block_name : string;
  block_loc : Bitc.Loc.t;
}

type barrier_info = {
  barrier_id : int;
  bar_func : string;
  bar_loc : Bitc.Loc.t;
}

type t

val create : unit -> t

(** Register a call site / block; returns its id. *)
val add_callsite : t -> caller:string -> callee:string -> loc:Bitc.Loc.t -> int

val add_block : t -> in_func:string -> block_name:string -> loc:Bitc.Loc.t -> int
val add_barrier : t -> in_func:string -> loc:Bitc.Loc.t -> int

(** Resolve an id; raises [Invalid_argument] on unknown ids. *)
val callsite : t -> int -> callsite

val block : t -> int -> block_info
val barrier : t -> int -> barrier_info
val num_blocks : t -> int
val num_callsites : t -> int
val num_barriers : t -> int
