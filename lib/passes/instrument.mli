(** The CUDAAdvisor instrumentation engine (paper Section 3.1).

    Mandatory instrumentation brackets device-function calls with shadow
    stack push/pop hooks; optional instrumentation covers the three
    categories of the paper — memory operations (effective address,
    width, source location: Listings 1/2), control flow (basic-block
    entries: Listings 3/4) and arithmetic operations (opcode + dynamic
    operand values). *)

(** Which optional instrumentation categories to insert.  [sharing]
    inserts the correctness-checking hooks (shared-memory accesses and
    barrier epochs for [advisor check]); it is off in every preset so the
    profiling hook mix and its golden metrics are unchanged. *)
type options = {
  memory : bool;
  control_flow : bool;
  arithmetic : bool;
  sharing : bool;
}

val all : options
val memory_only : options
val control_flow_only : options

(** No optional instrumentation — only the mandatory call hooks. *)
val nothing : options

(** Only the correctness-checking hooks (plus the mandatory call hooks). *)
val sharing_only : options

type result = { manifest : Manifest.t }

(** Instrument all kernels and device functions of the module in place;
    returns the manifest mapping hook ids back to source entities.  The
    instrumented module is re-verified.  Run at most once per module. *)
val run : ?options:options -> Bitc.Irmod.t -> result

(** The engine packaged as a pass for {!Pass.run_all}; the result is
    delivered through [into]. *)
val as_pass : ?options:options -> into:result option ref -> unit -> Pass.t
