(* Device-side analysis functions inserted by the instrumentation engine.
   In the paper these are CUDA device functions (e.g. [Record],
   [passBasicBlock]) compiled separately and merged with the kernel
   bitcode by llvm-link; here they are declarations the PTX backend turns
   into profiler hook instructions the simulator dispatches. *)

let record_mem = "__ca_record_mem"
let record_bb = "__ca_record_bb"
let record_arith_i = "__ca_record_arith_i"
let record_arith_f = "__ca_record_arith_f"
let push_call = "__ca_push_call"
let pop_call = "__ca_pop_call"
let record_shared = "__ca_record_shared"
let record_bar = "__ca_record_bar"

let is_hook name = String.length name >= 5 && String.sub name 0 5 = "__ca_"

(* Memory-operation kind codes passed as [Record]'s last argument
   (Listing 2 passes "operation type"). *)
let mem_kind_load = 1
let mem_kind_store = 2
let mem_kind_atomic = 3

let i32 = Bitc.Types.I32
let f32 = Bitc.Types.F32
let byte_ptr = Bitc.Builder.byte_ptr_ty

(* Declare every hook into [m] so calls to them verify. *)
let declare_all (m : Bitc.Irmod.t) =
  Bitc.Irmod.declare m record_mem
    ~params:[ byte_ptr; i32; i32; i32; i32 ]
    ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m record_bb ~params:[ i32; i32; i32 ] ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m record_arith_i
    ~params:[ i32; i32; i32; i32; i32 ]
    ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m record_arith_f
    ~params:[ i32; f32; f32; i32; i32 ]
    ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m push_call ~params:[ i32 ] ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m pop_call ~params:[ i32 ] ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m record_shared
    ~params:[ byte_ptr; i32; i32; i32; i32 ]
    ~ret:Bitc.Types.Void;
  Bitc.Irmod.declare m record_bar ~params:[ i32; i32; i32 ]
    ~ret:Bitc.Types.Void

(* Numeric opcodes for the arithmetic-operation hook. *)
let arith_code_of_binop (op : Bitc.Instr.binop) =
  match op with
  | Add -> 1
  | Sub -> 2
  | Mul -> 3
  | Div -> 4
  | Rem -> 5
  | And -> 6
  | Or -> 7
  | Xor -> 8
  | Shl -> 9
  | Lshr -> 10
  | Min -> 11
  | Max -> 12

let arith_code_of_unop (op : Bitc.Instr.unop) =
  match op with
  | Neg -> 20
  | Not -> 21
  | Int_to_float -> 22
  | Float_to_int -> 23
  | Sqrt -> 24
  | Exp -> 25
  | Log -> 26
  | Fabs -> 27

let arith_code_of_cmp (op : Bitc.Instr.cmp) =
  match op with Eq -> 30 | Ne -> 31 | Lt -> 32 | Le -> 33 | Gt -> 34 | Ge -> 35

let arith_code_to_string code =
  match code with
  | 1 -> "add"
  | 2 -> "sub"
  | 3 -> "mul"
  | 4 -> "div"
  | 5 -> "rem"
  | 6 -> "and"
  | 7 -> "or"
  | 8 -> "xor"
  | 9 -> "shl"
  | 10 -> "lshr"
  | 11 -> "min"
  | 12 -> "max"
  | 20 -> "neg"
  | 21 -> "not"
  | 22 -> "sitofp"
  | 23 -> "fptosi"
  | 24 -> "sqrt"
  | 25 -> "exp"
  | 26 -> "log"
  | 27 -> "fabs"
  | 30 -> "eq"
  | 31 -> "ne"
  | 32 -> "lt"
  | 33 -> "le"
  | 34 -> "gt"
  | 35 -> "ge"
  | _ -> Printf.sprintf "op%d" code
