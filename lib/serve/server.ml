(* The `advisor serve` daemon.

   One select loop on the calling domain owns all I/O: it accepts
   Unix-domain-socket connections, reads newline-delimited JSON
   requests from them and from stdin, validates cheaply, and enqueues
   jobs on a bounded queue ({!Jobq}).  A group of worker domains
   (accounted against the {!Pool} budget, so simulations *inside* a
   request still fan out safely) drains the queue and writes each
   response directly to its connection under a per-connection write
   lock — responses may interleave across requests, which is why the
   protocol echoes ids.

   Backpressure: a full queue answers "overloaded" immediately instead
   of buffering an unbounded backlog of seconds-long simulations.

   Timeouts: each job installs a wall-clock deadline as the worker
   domain's {!Gpusim.Gpu} cancellation check before dispatching, so a
   runaway simulation unwinds with a "timeout" error while the daemon
   (and every other request) keeps running.  This layers on the
   instruction-count runaway guard, which remains the backstop for
   infinite loops when no deadline is configured.

   Shutdown: SIGINT/SIGTERM (wired by the CLI to {!request_shutdown})
   stops accepting and reading, drains every accepted job, flushes the
   responses, closes the socket and returns — the CLI then runs its
   usual finalizer (trace export, metrics dump) and exits 0. *)

module Json = Analysis.Json

type config = {
  socket_path : string option;
  stdio : bool;
  workers : int;
  queue_cap : int;
  default_timeout_ms : int option; (* None/0 = no per-request deadline *)
  cache : Rescache.config option; (* None = result caching off *)
}

let default_config =
  {
    socket_path = None;
    stdio = true;
    workers = min 4 (Domain.recommended_domain_count ());
    queue_cap = 64;
    default_timeout_ms = Some 300_000;
    cache = Some Rescache.default_config;
  }

(* ----- metrics ----- *)

let m_depth = Obs.Metrics.gauge "serve.queue.depth"
let m_wait = Obs.Metrics.histogram "serve.request.wait_ns"
let m_run = Obs.Metrics.histogram "serve.request.run_ns"
let m_requests = Obs.Metrics.counter "serve.requests"
let m_ok = Obs.Metrics.counter "serve.requests.ok"
let m_failed = Obs.Metrics.counter "serve.requests.failed"
let m_timeout = Obs.Metrics.counter "serve.requests.timeout"
let m_overloaded = Obs.Metrics.counter "serve.requests.overloaded"
let m_rejected = Obs.Metrics.counter "serve.requests.rejected"
let m_connections = Obs.Metrics.counter "serve.connections"

(* The static fast path: requests answered by the IR-only estimator on
   the intake domain (hits), requests that fell back to the worker
   queue because the estimator raised (fallbacks), and how long each
   inline estimate took. *)
let m_static_hits = Obs.Metrics.counter "serve.static.hits"
let m_static_fallbacks = Obs.Metrics.counter "serve.static.fallbacks"
let m_estimate_ms = Obs.Metrics.histogram "serve.static.estimate.ms"

(* ----- connections and jobs ----- *)

type conn = {
  in_fd : Unix.file_descr;
  out_fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable pending : string; (* partial line carried between reads *)
  mutable reading : bool; (* false after EOF / read error *)
  mutable writable : bool; (* false after a write error *)
  inflight : int Atomic.t; (* enqueued jobs not yet replied to *)
  kind : [ `Stdio | `Socket ];
}

type job = {
  req : Protocol.request;
  conn : conn;
  enq_ns : int;
  cache_key : string option; (* store the result here after a miss *)
}

type t = {
  cfg : config;
  queue : job Jobq.t;
  cache : Rescache.t option;
  stop : bool Atomic.t;
  mutable inline : bool; (* no worker domains: run jobs on the I/O domain *)
}

let create cfg =
  {
    cfg;
    queue = Jobq.create ~cap:cfg.queue_cap;
    cache = Option.map Rescache.create cfg.cache;
    stop = Atomic.make false;
    inline = false;
  }

(* Domain- and signal-safe: flips one atomic the select loop polls. *)
let request_shutdown t = Atomic.set t.stop true

(* ----- writing ----- *)

let write_line conn line =
  let data = Bytes.of_string (line ^ "\n") in
  Mutex.protect conn.wlock (fun () ->
      if conn.writable then
        try
          let len = Bytes.length data in
          let off = ref 0 in
          while !off < len do
            off := !off + Unix.write conn.out_fd data !off (len - !off)
          done
        with Unix.Unix_error (e, _, _) ->
          conn.writable <- false;
          Obs.Log.debug "serve" "dropping reply: %s" (Unix.error_message e))

let reply conn line =
  write_line conn line;
  ignore (Atomic.fetch_and_add conn.inflight (-1))

(* ----- job execution (worker domains) ----- *)

let run_job t job =
  Obs.Metrics.set_gauge m_depth (float_of_int (Jobq.length t.queue));
  let started = Obs.Clock.now_ns () in
  Obs.Metrics.observe m_wait (started - job.enq_ns);
  let timeout_ms =
    match job.req.Protocol.timeout_ms with
    | Some ms -> Some ms
    | None -> t.cfg.default_timeout_ms
  in
  (match timeout_ms with
  | Some ms when ms > 0 ->
    let deadline = started + (ms * 1_000_000) in
    Gpusim.Gpu.set_cancel_check (fun () ->
        if Obs.Clock.now_ns () > deadline then
          Some (Printf.sprintf "request exceeded its %d ms timeout" ms)
        else None)
  | _ -> ());
  Fun.protect ~finally:Gpusim.Gpu.clear_cancel_check @@ fun () ->
  let id = job.req.Protocol.id and op = job.req.Protocol.op in
  let line =
    Obs.Trace.with_span ~cat:"serve" ("serve:" ^ op) (fun () ->
        match Router.dispatch job.req with
        | Ok result ->
          Obs.Metrics.incr m_ok;
          (* serialize once; the same bytes answer this request and, via
             the cache, every identical request after it *)
          let raw = Analysis.Json.to_string result in
          (match (t.cache, job.cache_key) with
          | Some cache, Some key -> Rescache.store cache key raw
          | _ -> ());
          Protocol.ok_line_raw ~id ~op raw
        | Error (code, msg) ->
          Obs.Metrics.incr m_failed;
          Protocol.to_line (Protocol.error_response ~id ~op ~code msg)
        | exception Gpusim.Gpu.Cancelled reason ->
          Obs.Metrics.incr m_timeout;
          Protocol.to_line (Protocol.error_response ~id ~op ~code:"timeout" reason)
        | exception Gpusim.Gpu.Launch_error msg ->
          Obs.Metrics.incr m_failed;
          Protocol.to_line
            (Protocol.error_response ~id ~op ~code:"failed"
               ("launch aborted: " ^ msg))
        | exception e ->
          Obs.Metrics.incr m_failed;
          Protocol.to_line
            (Protocol.error_response ~id ~op ~code:"failed"
               (Printexc.to_string e)))
  in
  Obs.Metrics.observe m_run (Obs.Clock.now_ns () - started);
  reply job.conn line

let worker_loop t =
  let rec go () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some job ->
      run_job t job;
      go ()
  in
  go ()

(* ----- request intake (I/O domain) ----- *)

(* Hand a validated request to the worker queue (the caller has already
   bumped [inflight]); a full or closing queue answers immediately. *)
let enqueue t conn req cache_key =
  let id = req.Protocol.id and op = req.Protocol.op in
  match
    Jobq.try_push t.queue { req; conn; enq_ns = Obs.Clock.now_ns (); cache_key }
  with
  | `Ok ->
    Obs.Metrics.set_gauge m_depth (float_of_int (Jobq.length t.queue));
    if t.inline then
      (* no worker domains: serve the job right here, sequentially *)
      (match Jobq.pop t.queue with
      | Some job -> run_job t job
      | None -> ())
  | `Full ->
    ignore (Atomic.fetch_and_add conn.inflight (-1));
    Obs.Metrics.incr m_overloaded;
    write_line conn
      (Protocol.to_line
         (Protocol.error_response ~id ~op ~code:"overloaded"
            (Printf.sprintf
               "job queue is full (%d queued); retry later or raise --queue"
               (Jobq.capacity t.queue))))
  | `Closed ->
    ignore (Atomic.fetch_and_add conn.inflight (-1));
    Obs.Metrics.incr m_rejected;
    write_line conn
      (Protocol.to_line
         (Protocol.error_response ~id ~op ~code:"shutting_down"
            "daemon is shutting down"))

let handle_line t conn line =
  let line = String.trim line in
  if line <> "" then begin
    Obs.Metrics.incr m_requests;
    match Protocol.parse_request line with
    | Error (id, code, msg) ->
      Obs.Metrics.incr m_rejected;
      write_line conn (Protocol.to_line (Protocol.error_response ~id ~op:"?" ~code msg))
    | Ok req -> (
      let id = req.Protocol.id and op = req.Protocol.op in
      match Router.validate req with
      | Error (code, msg) ->
        Obs.Metrics.incr m_rejected;
        write_line conn (Protocol.to_line (Protocol.error_response ~id ~op ~code msg))
      | Ok () ->
      (* The fast path: a content-addressed hit answers right here on
         the I/O domain — no queue slot, no worker, no simulation. *)
      let cache_key =
        match t.cache with None -> None | Some _ -> Cachekey.of_request req
      in
      let cached =
        match (t.cache, cache_key) with
        | Some cache, Some key -> Rescache.find cache key
        | _ -> None
      in
      match cached with
      | Some raw ->
        Obs.Metrics.incr m_ok;
        write_line conn (Protocol.ok_line_raw ~id ~op raw)
      | None when Router.is_static req -> (
        (* The static tier never touches the simulator: answer right
           here on the intake domain, zero queue slots, zero launches.
           If the estimator itself raises, fall back to the worker
           queue so the request still gets a proper error envelope. *)
        let started = Obs.Clock.now_ns () in
        match Router.dispatch req with
        | Ok result ->
          let raw = Analysis.Json.to_string result in
          (match (t.cache, cache_key) with
          | Some cache, Some key -> Rescache.store cache key raw
          | _ -> ());
          Obs.Metrics.incr m_static_hits;
          Obs.Metrics.observe m_estimate_ms
            ((Obs.Clock.now_ns () - started) / 1_000_000);
          Obs.Metrics.incr m_ok;
          write_line conn (Protocol.ok_line_raw ~id ~op raw)
        | Error (code, msg) ->
          Obs.Metrics.incr m_failed;
          write_line conn
            (Protocol.to_line (Protocol.error_response ~id ~op ~code msg))
        | exception _ ->
          Obs.Metrics.incr m_static_fallbacks;
          ignore (Atomic.fetch_and_add conn.inflight 1);
          enqueue t conn req cache_key)
      | None ->
        ignore (Atomic.fetch_and_add conn.inflight 1);
        enqueue t conn req cache_key)
  end

let read_conn t conn =
  let buf = Bytes.create 4096 in
  let n =
    try Unix.read conn.in_fd buf 0 (Bytes.length buf)
    with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  if n = 0 then begin
    (* EOF: a final unterminated line still counts as a request *)
    conn.reading <- false;
    if String.trim conn.pending <> "" then handle_line t conn conn.pending;
    conn.pending <- ""
  end
  else begin
    let data = conn.pending ^ Bytes.sub_string buf 0 n in
    let rec go = function
      | [ last ] -> conn.pending <- last
      | line :: rest ->
        handle_line t conn line;
        go rest
      | [] -> conn.pending <- ""
    in
    go (String.split_on_char '\n' data)
  end

(* ----- the daemon loop ----- *)

let make_conn ~kind ~in_fd ~out_fd =
  {
    in_fd;
    out_fd;
    wlock = Mutex.create ();
    pending = "";
    reading = true;
    writable = true;
    inflight = Atomic.make 0;
    kind;
  }

(* A socket file left behind by a killed daemon used to make startup
   fail (EADDRINUSE after an unguarded bind, or an unconditional unlink
   that could silently steal the path from a *live* daemon).  Probe
   before touching anything: a successful connect means a live daemon
   owns the path — starting a second one is an error worth a clear
   message; connection-refused means nobody is accepting — the file is
   stale and safe to remove.  A path that exists but is not a socket is
   never unlinked. *)
let setup_listener path =
  (match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind; _ } when st_kind <> Unix.S_SOCK ->
    failwith
      (Printf.sprintf "--socket %s: path exists and is not a socket; refusing \
                       to replace it" path)
  | _ ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "--socket %s: a live daemon is already serving on \
                         this path" path)
    else begin
      Obs.Log.warn "serve" "removing stale socket file %s" path;
      try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    end);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let run t =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listen_fd = Option.map setup_listener t.cfg.socket_path in
  let conns = ref [] in
  if t.cfg.stdio then
    conns := [ make_conn ~kind:`Stdio ~in_fd:Unix.stdin ~out_fd:Unix.stdout ];
  let group =
    if t.cfg.workers <= 0 then None
    else Some (Pool.spawn_group ~want:t.cfg.workers (fun () -> worker_loop t))
  in
  let worker_count = match group with None -> 0 | Some g -> Pool.group_size g in
  if worker_count = 0 then begin
    t.inline <- true;
    if t.cfg.workers > 0 then
      Obs.Log.warn "serve"
        "no worker domains available; serving requests sequentially"
  end;
  Obs.Log.info "serve" "serving%s%s: %d workers, queue %d, timeout %s"
    (if t.cfg.stdio then " stdio" else "")
    (match t.cfg.socket_path with
    | Some p -> Printf.sprintf " socket %s" p
    | None -> "")
    worker_count t.cfg.queue_cap
    (match t.cfg.default_timeout_ms with
    | Some ms when ms > 0 -> Printf.sprintf "%dms" ms
    | _ -> "none");
  let reading_conns () = List.filter (fun c -> c.reading) !conns in
  (* Drop closed socket connections once their replies are out; stdio
     fds are never closed (the parent owns them). *)
  let sweep_closed () =
    conns :=
      List.filter
        (fun c ->
          if c.reading || Atomic.get c.inflight > 0 then true
          else
            match c.kind with
            | `Stdio -> true (* keep: EOF on stdin is remembered via [reading] *)
            | `Socket ->
              (try Unix.close c.in_fd with Unix.Unix_error _ -> ());
              false)
        !conns
  in
  (try
     let running = ref true in
     while !running && not (Atomic.get t.stop) do
       sweep_closed ();
       let watch =
         (match listen_fd with Some fd -> [ fd ] | None -> [])
         @ List.map (fun c -> c.in_fd) (reading_conns ())
       in
       if watch = [] then
         (* nothing will ever produce another request: batch mode done *)
         running := false
       else begin
         match Unix.select watch [] [] 0.25 with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | ready, _, _ ->
           List.iter
             (fun fd ->
               if listen_fd = Some fd then begin
                 let cfd, _ = Unix.accept fd in
                 Obs.Metrics.incr m_connections;
                 conns := make_conn ~kind:`Socket ~in_fd:cfd ~out_fd:cfd :: !conns
               end
               else
                 match List.find_opt (fun c -> c.in_fd = fd) !conns with
                 | Some conn when conn.reading -> read_conn t conn
                 | _ -> ())
             ready
       end
     done
   with e ->
     (* an I/O-loop failure still drains accepted work below *)
     Obs.Log.error "serve" "I/O loop failed: %s" (Printexc.to_string e));
  (* ----- graceful shutdown: refuse new work, drain accepted work ----- *)
  let drained = Jobq.length t.queue in
  Jobq.close t.queue;
  (match group with Some g -> Pool.join_group g | None -> ());
  (match listen_fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
      t.cfg.socket_path
  | None -> ());
  List.iter
    (fun c ->
      match c.kind with
      | `Stdio -> ()
      | `Socket -> ( try Unix.close c.in_fd with Unix.Unix_error _ -> ()))
    !conns;
  Obs.Log.info "serve" "shut down cleanly (drained %d queued job%s)" drained
    (if drained = 1 then "" else "s")
