(* The `advisor serve` daemon.

   One select loop on the calling domain owns all I/O: it accepts
   Unix-domain-socket connections, reads newline-delimited JSON
   requests from them and from stdin, validates cheaply, and enqueues
   jobs on a bounded queue ({!Jobq}).  A group of worker domains
   (accounted against the {!Pool} budget, so simulations *inside* a
   request still fan out safely) drains the queue and writes each
   response directly to its connection under a per-connection write
   lock — responses may interleave across requests, which is why the
   protocol echoes ids.

   Backpressure: a full queue answers "overloaded" immediately instead
   of buffering an unbounded backlog of seconds-long simulations.

   Timeouts: each job installs a wall-clock deadline as the worker
   domain's {!Gpusim.Gpu} cancellation check before dispatching, so a
   runaway simulation unwinds with a "timeout" error while the daemon
   (and every other request) keeps running.  This layers on the
   instruction-count runaway guard, which remains the backstop for
   infinite loops when no deadline is configured.

   Shutdown: SIGINT/SIGTERM (wired by the CLI to {!request_shutdown})
   stops accepting and reading, drains every accepted job, flushes the
   responses, closes the socket and returns — the CLI then runs its
   usual finalizer (trace export, metrics dump) and exits 0. *)

module Json = Analysis.Json

type config = {
  socket_path : string option;
  stdio : bool;
  workers : int;
  queue_cap : int;
  default_timeout_ms : int option; (* None/0 = no per-request deadline *)
  cache : Rescache.config option; (* None = result caching off *)
  label : string; (* logical process label in span records / access logs *)
  trace_dir : string option; (* write per-request span records here *)
  metrics_addr : string option; (* host:port for Prometheus exposition *)
  access_log : string option; (* NDJSON access log path *)
  access_log_sample : int; (* write every n-th access-log entry *)
}

let default_config =
  {
    socket_path = None;
    stdio = true;
    workers = min 4 (Domain.recommended_domain_count ());
    queue_cap = 64;
    default_timeout_ms = Some 300_000;
    cache = Some Rescache.default_config;
    label = "serve";
    trace_dir = None;
    metrics_addr = None;
    access_log = None;
    access_log_sample = 1;
  }

(* ----- metrics ----- *)

let m_depth = Obs.Metrics.gauge "serve.queue.depth"
let m_wait = Obs.Metrics.histogram "serve.request.wait_ns"
let m_run = Obs.Metrics.histogram "serve.request.run_ns"
let m_requests = Obs.Metrics.counter "serve.requests"
let m_ok = Obs.Metrics.counter "serve.requests.ok"
let m_failed = Obs.Metrics.counter "serve.requests.failed"
let m_timeout = Obs.Metrics.counter "serve.requests.timeout"
let m_overloaded = Obs.Metrics.counter "serve.requests.overloaded"
let m_rejected = Obs.Metrics.counter "serve.requests.rejected"
let m_connections = Obs.Metrics.counter "serve.connections"

(* The static fast path: requests answered by the IR-only estimator on
   the intake domain (hits), requests that fell back to the worker
   queue because the estimator raised (fallbacks), and how long each
   inline estimate took. *)
let m_static_hits = Obs.Metrics.counter "serve.static.hits"
let m_static_fallbacks = Obs.Metrics.counter "serve.static.fallbacks"
let m_estimate_ms = Obs.Metrics.histogram "serve.static.estimate.ms"

(* ----- connections and jobs ----- *)

type conn = {
  in_fd : Unix.file_descr;
  out_fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable pending : string; (* partial line carried between reads *)
  mutable reading : bool; (* false after EOF / read error *)
  mutable writable : bool; (* false after a write error *)
  inflight : int Atomic.t; (* enqueued jobs not yet replied to *)
  kind : [ `Stdio | `Socket ];
}

type job = {
  req : Protocol.request;
  conn : conn;
  enq_ns : int;
  cache_key : string option; (* store the result here after a miss *)
  trace : string option; (* distributed-trace id when a sink is active *)
}

type t = {
  cfg : config;
  queue : job Jobq.t;
  cache : Rescache.t option;
  access : Accesslog.t option;
  stop : bool Atomic.t;
  mutable inline : bool; (* no worker domains: run jobs on the I/O domain *)
}

let create cfg =
  {
    cfg;
    queue = Jobq.create ~cap:cfg.queue_cap;
    cache = Option.map Rescache.create cfg.cache;
    access =
      Option.map
        (fun path -> Accesslog.create ~path ~sample:cfg.access_log_sample)
        cfg.access_log;
    stop = Atomic.make false;
    inline = false;
  }

(* Trace ids minted at intake when the client did not send one;
   pid-qualified so ids from different fleet processes never collide. *)
let trace_seq = Atomic.make 0

let gen_trace_id () =
  Printf.sprintf "t-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add trace_seq 1)

(* Domain- and signal-safe: flips one atomic the select loop polls. *)
let request_shutdown t = Atomic.set t.stop true

(* ----- writing ----- *)

let write_line conn line =
  let data = Bytes.of_string (line ^ "\n") in
  Mutex.protect conn.wlock (fun () ->
      if conn.writable then
        try
          let len = Bytes.length data in
          let off = ref 0 in
          while !off < len do
            off := !off + Unix.write conn.out_fd data !off (len - !off)
          done
        with Unix.Unix_error (e, _, _) ->
          conn.writable <- false;
          Obs.Log.debug "serve" "dropping reply: %s" (Unix.error_message e))

let reply conn line =
  write_line conn line;
  ignore (Atomic.fetch_and_add conn.inflight (-1))

(* ----- per-request accounting (latency histograms, SLOs, access log) ----- *)

let request_tier (req : Protocol.request) =
  match req.Protocol.op with
  | "profile" | "profile_fast" ->
    if Router.is_static req then "static" else "exact"
  | _ -> ""

(* One terminal accounting point for every *validated* answer: total
   latency lands in the op class's histogram, the SLO check runs, and
   an access-log line is written.  Rejected requests (parse/validate
   failures, backpressure) go through [reject_entry] instead so the
   latency histograms only describe work the daemon actually did. *)
let account t ~(req : Protocol.request) ~outcome ~cache ~wait_ns ~run_ns
    ~trace_id =
  let cls = Router.op_class req in
  let total_ns = wait_ns + run_ns in
  Obs.Metrics.observe (Obs.Metrics.histogram ("serve.op." ^ cls ^ ".ns")) total_ns;
  Slo.observe ~op:cls ~total_ns;
  match t.access with
  | None -> ()
  | Some al ->
    Accesslog.log al ~proc:t.cfg.label ~id:req.Protocol.id ~op:req.Protocol.op
      ~app:(Option.value req.Protocol.app ~default:"")
      ~arch:req.Protocol.arch_name ~tier:(request_tier req) ~cache ~outcome
      ~wait_ns ~run_ns ?trace_id ()

let reject_entry t ~id ~op ~outcome =
  match t.access with
  | None -> ()
  | Some al ->
    Accesslog.log al ~proc:t.cfg.label ~id ~op ~app:"" ~arch:"" ~tier:""
      ~cache:"" ~outcome ~wait_ns:0 ~run_ns:0 ()

(* ----- job execution (worker domains) ----- *)

let run_job t job =
  Obs.Metrics.set_gauge m_depth (float_of_int (Jobq.length t.queue));
  let started = Obs.Clock.now_ns () in
  let wait_ns = started - job.enq_ns in
  Obs.Metrics.observe m_wait wait_ns;
  (match job.trace with
  | Some tid ->
    Obs.Trace.record_span ~trace_id:tid ~parent:"serve:intake" ~cat:"serve"
      ~name:"serve:queue" ~start_ns:job.enq_ns ~dur_ns:wait_ns ()
  | None -> ());
  let timeout_ms =
    match job.req.Protocol.timeout_ms with
    | Some ms -> Some ms
    | None -> t.cfg.default_timeout_ms
  in
  (match timeout_ms with
  | Some ms when ms > 0 ->
    let deadline = started + (ms * 1_000_000) in
    Gpusim.Gpu.set_cancel_check (fun () ->
        if Obs.Clock.now_ns () > deadline then
          Some (Printf.sprintf "request exceeded its %d ms timeout" ms)
        else None)
  | _ -> ());
  Fun.protect ~finally:Gpusim.Gpu.clear_cancel_check @@ fun () ->
  let id = job.req.Protocol.id and op = job.req.Protocol.op in
  let dispatch () =
    match Router.dispatch ?cache:t.cache job.req with
    | Ok result ->
      Obs.Metrics.incr m_ok;
      (* serialize once; the same bytes answer this request and, via
         the cache, every identical request after it *)
      let raw = Analysis.Json.to_string result in
      (match (t.cache, job.cache_key) with
      | Some cache, Some key -> Rescache.store cache key raw
      | _ -> ());
      (Protocol.ok_line_raw ~id ~op raw, "ok")
    | Error (code, msg) ->
      Obs.Metrics.incr m_failed;
      (Protocol.to_line (Protocol.error_response ~id ~op ~code msg), code)
    | exception Gpusim.Gpu.Cancelled reason ->
      Obs.Metrics.incr m_timeout;
      ( Protocol.to_line (Protocol.error_response ~id ~op ~code:"timeout" reason),
        "timeout" )
    | exception Gpusim.Gpu.Launch_error msg ->
      Obs.Metrics.incr m_failed;
      ( Protocol.to_line
          (Protocol.error_response ~id ~op ~code:"failed"
             ("launch aborted: " ^ msg)),
        "failed" )
    | exception e ->
      Obs.Metrics.incr m_failed;
      ( Protocol.to_line
          (Protocol.error_response ~id ~op ~code:"failed"
             (Printexc.to_string e)),
        "failed" )
  in
  let traced () =
    Obs.Trace.with_span ~cat:"serve" ("serve:" ^ op) dispatch
  in
  let line, outcome =
    match job.trace with
    | Some tid ->
      (* workers run on their own domains; reinstall the request's
         context so spans recorded inside keep the trace id *)
      Obs.Trace.with_context ~trace_id:tid ~parent:"serve:queue" traced
    | None -> traced ()
  in
  let run_ns = Obs.Clock.now_ns () - started in
  Obs.Metrics.observe m_run run_ns;
  account t ~req:job.req ~outcome
    ~cache:(if job.cache_key <> None then "miss" else "")
    ~wait_ns ~run_ns ~trace_id:job.trace;
  reply job.conn line

let worker_loop t =
  Obs.Trace.set_domain_label (t.cfg.label ^ "/worker");
  let rec go () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some job ->
      run_job t job;
      go ()
  in
  go ()

(* ----- request intake (I/O domain) ----- *)

(* Hand a validated request to the worker queue (the caller has already
   bumped [inflight]); a full or closing queue answers immediately. *)
let enqueue t conn req cache_key trace =
  let id = req.Protocol.id and op = req.Protocol.op in
  match
    Jobq.try_push t.queue
      { req; conn; enq_ns = Obs.Clock.now_ns (); cache_key; trace }
  with
  | `Ok ->
    Obs.Metrics.set_gauge m_depth (float_of_int (Jobq.length t.queue));
    if t.inline then
      (* no worker domains: serve the job right here, sequentially *)
      (match Jobq.pop t.queue with
      | Some job -> run_job t job
      | None -> ())
  | `Full ->
    ignore (Atomic.fetch_and_add conn.inflight (-1));
    Obs.Metrics.incr m_overloaded;
    reject_entry t ~id ~op ~outcome:"overloaded";
    write_line conn
      (Protocol.to_line
         (Protocol.error_response ~id ~op ~code:"overloaded"
            (Printf.sprintf
               "job queue is full (%d queued); retry later or raise --queue"
               (Jobq.capacity t.queue))))
  | `Closed ->
    ignore (Atomic.fetch_and_add conn.inflight (-1));
    Obs.Metrics.incr m_rejected;
    reject_entry t ~id ~op ~outcome:"shutting_down";
    write_line conn
      (Protocol.to_line
         (Protocol.error_response ~id ~op ~code:"shutting_down"
            "daemon is shutting down"))

let handle_line t conn line =
  let line = String.trim line in
  if line <> "" then begin
    Obs.Metrics.incr m_requests;
    match Protocol.parse_request line with
    | Error (id, code, msg) ->
      Obs.Metrics.incr m_rejected;
      reject_entry t ~id ~op:"?" ~outcome:code;
      write_line conn (Protocol.to_line (Protocol.error_response ~id ~op:"?" ~code msg))
    | Ok req ->
      let id = req.Protocol.id and op = req.Protocol.op in
      (* Distributed tracing: only when a span sink is installed
         (--trace-dir).  The client's id is honored, otherwise one is
         minted here; the context makes every span recorded while
         handling this request carry it. *)
      let trace =
        if not (Obs.Trace.sink_active ()) then None
        else
          Some
            (match req.Protocol.trace_id with
            | Some tid -> tid
            | None -> gen_trace_id ())
      in
      let process () =
        match Router.validate req with
        | Error (code, msg) ->
          Obs.Metrics.incr m_rejected;
          reject_entry t ~id ~op ~outcome:code;
          write_line conn (Protocol.to_line (Protocol.error_response ~id ~op ~code msg))
        | Ok () -> (
        (* The fast path: a content-addressed hit answers right here on
           the I/O domain — no queue slot, no worker, no simulation. *)
        let cache_key =
          match t.cache with None -> None | Some _ -> Cachekey.of_request req
        in
        let probe_start = Obs.Clock.now_ns () in
        let cached =
          match (t.cache, cache_key) with
          | Some cache, Some key -> Rescache.find cache key
          | _ -> None
        in
        (match (trace, cache_key) with
        | Some tid, Some _ ->
          Obs.Trace.record_span ~trace_id:tid ~parent:"serve:intake"
            ~cat:"serve"
            ~name:
              (if cached = None then "serve:cache:miss" else "serve:cache:hit")
            ~start_ns:probe_start
            ~dur_ns:(Obs.Clock.now_ns () - probe_start)
            ()
        | _ -> ());
        match cached with
        | Some raw ->
          Obs.Metrics.incr m_ok;
          account t ~req ~outcome:"ok" ~cache:"hit" ~wait_ns:0
            ~run_ns:(Obs.Clock.now_ns () - probe_start)
            ~trace_id:trace;
          write_line conn (Protocol.ok_line_raw ~id ~op raw)
        | None when Router.is_static req -> (
          (* The static tier never touches the simulator: answer right
             here on the intake domain, zero queue slots, zero launches.
             If the estimator itself raises, fall back to the worker
             queue so the request still gets a proper error envelope. *)
          let started = Obs.Clock.now_ns () in
          match
            Obs.Trace.with_span ~cat:"serve" "serve:static" (fun () ->
                Router.dispatch req)
          with
          | Ok result ->
            let raw = Analysis.Json.to_string result in
            (match (t.cache, cache_key) with
            | Some cache, Some key -> Rescache.store cache key raw
            | _ -> ());
            Obs.Metrics.incr m_static_hits;
            Obs.Metrics.observe m_estimate_ms
              ((Obs.Clock.now_ns () - started) / 1_000_000);
            Obs.Metrics.incr m_ok;
            account t ~req ~outcome:"ok"
              ~cache:(if cache_key <> None then "miss" else "")
              ~wait_ns:0
              ~run_ns:(Obs.Clock.now_ns () - started)
              ~trace_id:trace;
            write_line conn (Protocol.ok_line_raw ~id ~op raw)
          | Error (code, msg) ->
            Obs.Metrics.incr m_failed;
            account t ~req ~outcome:code
              ~cache:(if cache_key <> None then "miss" else "")
              ~wait_ns:0
              ~run_ns:(Obs.Clock.now_ns () - started)
              ~trace_id:trace;
            write_line conn
              (Protocol.to_line (Protocol.error_response ~id ~op ~code msg))
          | exception _ ->
            Obs.Metrics.incr m_static_fallbacks;
            ignore (Atomic.fetch_and_add conn.inflight 1);
            enqueue t conn req cache_key trace)
        | None ->
          ignore (Atomic.fetch_and_add conn.inflight 1);
          enqueue t conn req cache_key trace)
      in
      (match trace with
      | Some tid ->
        Obs.Trace.with_context ~trace_id:tid
          ~parent:(Option.value req.Protocol.parent_span ~default:"")
          (fun () -> Obs.Trace.with_span ~cat:"serve" "serve:intake" process)
      | None -> process ())
  end

let read_conn t conn =
  let buf = Bytes.create 4096 in
  let n =
    try Unix.read conn.in_fd buf 0 (Bytes.length buf)
    with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  if n = 0 then begin
    (* EOF: a final unterminated line still counts as a request *)
    conn.reading <- false;
    if String.trim conn.pending <> "" then handle_line t conn conn.pending;
    conn.pending <- ""
  end
  else begin
    let data = conn.pending ^ Bytes.sub_string buf 0 n in
    let rec go = function
      | [ last ] -> conn.pending <- last
      | line :: rest ->
        handle_line t conn line;
        go rest
      | [] -> conn.pending <- ""
    in
    go (String.split_on_char '\n' data)
  end

(* ----- the daemon loop ----- *)

let make_conn ~kind ~in_fd ~out_fd =
  {
    in_fd;
    out_fd;
    wlock = Mutex.create ();
    pending = "";
    reading = true;
    writable = true;
    inflight = Atomic.make 0;
    kind;
  }

(* A socket file left behind by a killed daemon used to make startup
   fail (EADDRINUSE after an unguarded bind, or an unconditional unlink
   that could silently steal the path from a *live* daemon).  Probe
   before touching anything: a successful connect means a live daemon
   owns the path — starting a second one is an error worth a clear
   message; connection-refused means nobody is accepting — the file is
   stale and safe to remove.  A path that exists but is not a socket is
   never unlinked. *)
let setup_listener path =
  (match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind; _ } when st_kind <> Unix.S_SOCK ->
    failwith
      (Printf.sprintf "--socket %s: path exists and is not a socket; refusing \
                       to replace it" path)
  | _ ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "--socket %s: a live daemon is already serving on \
                         this path" path)
    else begin
      Obs.Log.warn "serve" "removing stale socket file %s" path;
      try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    end);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

(* ----- Prometheus exposition listener (--metrics-addr) ----- *)

(* "host:port" or bare "port" (loopback).  Numeric host only: the
   single-threaded select loop must not block in a resolver. *)
let parse_metrics_addr addr =
  let host, port_s =
    match String.rindex_opt addr ':' with
    | Some i ->
      (String.sub addr 0 i, String.sub addr (i + 1) (String.length addr - i - 1))
    | None -> ("127.0.0.1", addr)
  in
  let host = if host = "" then "127.0.0.1" else host in
  match
    ( (try Some (Unix.inet_addr_of_string host) with Failure _ -> None),
      int_of_string_opt port_s )
  with
  | Some ip, Some port when port > 0 && port < 65536 -> (ip, port)
  | _ ->
    failwith
      (Printf.sprintf
         "--metrics-addr %s: expected [numeric-host:]port, e.g. 127.0.0.1:9464"
         addr)

let setup_metrics_listener addr =
  let ip, port = parse_metrics_addr addr in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (ip, port));
  Unix.listen fd 16;
  fd

let http_text_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
     charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    (String.length body) body

(* Answer one scrape: accept, write the whole response, close.  The
   request line is never parsed — scrapes are GETs whose response does
   not depend on the path, and the select loop must not wait on a slow
   client.  The response is a few KB, well inside the socket buffer.
   Any request bytes that already arrived are drained (nonblocking)
   before the close: closing with unread data in the receive buffer
   makes the kernel send RST instead of FIN, and the reset can discard
   response bytes the client has not read yet. *)
let answer_scrape listen_fd body =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error _ -> ()
  | cfd, _ -> (
    let data = Bytes.of_string (http_text_response body) in
    (try
       let len = Bytes.length data in
       let off = ref 0 in
       while !off < len do
         off := !off + Unix.write cfd data !off (len - !off)
       done
     with Unix.Unix_error _ -> ());
    (try
       Unix.set_nonblock cfd;
       let junk = Bytes.create 1024 in
       while Unix.read cfd junk 0 (Bytes.length junk) > 0 do () done
     with Unix.Unix_error _ -> ());
    try Unix.close cfd with Unix.Unix_error _ -> ())

let run t =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if t.cfg.label <> "" then Obs.Trace.set_proc_label t.cfg.label;
  Option.iter Obs.Trace.open_dir_sink t.cfg.trace_dir;
  let listen_fd = Option.map setup_listener t.cfg.socket_path in
  let metrics_fd = Option.map setup_metrics_listener t.cfg.metrics_addr in
  let conns = ref [] in
  if t.cfg.stdio then
    conns := [ make_conn ~kind:`Stdio ~in_fd:Unix.stdin ~out_fd:Unix.stdout ];
  let group =
    if t.cfg.workers <= 0 then None
    else Some (Pool.spawn_group ~want:t.cfg.workers (fun () -> worker_loop t))
  in
  let worker_count = match group with None -> 0 | Some g -> Pool.group_size g in
  if worker_count = 0 then begin
    t.inline <- true;
    if t.cfg.workers > 0 then
      Obs.Log.warn "serve"
        "no worker domains available; serving requests sequentially"
  end;
  Obs.Log.info "serve" "serving%s%s: %d workers, queue %d, timeout %s"
    (if t.cfg.stdio then " stdio" else "")
    (match t.cfg.socket_path with
    | Some p -> Printf.sprintf " socket %s" p
    | None -> "")
    worker_count t.cfg.queue_cap
    (match t.cfg.default_timeout_ms with
    | Some ms when ms > 0 -> Printf.sprintf "%dms" ms
    | _ -> "none");
  let reading_conns () = List.filter (fun c -> c.reading) !conns in
  (* Drop closed socket connections once their replies are out; stdio
     fds are never closed (the parent owns them). *)
  let sweep_closed () =
    conns :=
      List.filter
        (fun c ->
          if c.reading || Atomic.get c.inflight > 0 then true
          else
            match c.kind with
            | `Stdio -> true (* keep: EOF on stdin is remembered via [reading] *)
            | `Socket ->
              (try Unix.close c.in_fd with Unix.Unix_error _ -> ());
              false)
        !conns
  in
  (try
     let running = ref true in
     while !running && not (Atomic.get t.stop) do
       sweep_closed ();
       let watch =
         (match listen_fd with Some fd -> [ fd ] | None -> [])
         @ (match metrics_fd with Some fd -> [ fd ] | None -> [])
         @ List.map (fun c -> c.in_fd) (reading_conns ())
       in
       if watch = [] then
         (* nothing will ever produce another request: batch mode done *)
         running := false
       else begin
         match Unix.select watch [] [] 0.25 with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | ready, _, _ ->
           List.iter
             (fun fd ->
               if listen_fd = Some fd then begin
                 let cfd, _ = Unix.accept fd in
                 Obs.Metrics.incr m_connections;
                 conns := make_conn ~kind:`Socket ~in_fd:cfd ~out_fd:cfd :: !conns
               end
               else if metrics_fd = Some fd then
                 answer_scrape fd (Obs.Metrics.to_prometheus ())
               else
                 match List.find_opt (fun c -> c.in_fd = fd) !conns with
                 | Some conn when conn.reading -> read_conn t conn
                 | _ -> ())
             ready
       end
     done
   with e ->
     (* an I/O-loop failure still drains accepted work below *)
     Obs.Log.error "serve" "I/O loop failed: %s" (Printexc.to_string e));
  (* ----- graceful shutdown: refuse new work, drain accepted work ----- *)
  let drained = Jobq.length t.queue in
  Jobq.close t.queue;
  (match group with Some g -> Pool.join_group g | None -> ());
  (match listen_fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
      t.cfg.socket_path
  | None -> ());
  (match metrics_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter
    (fun c ->
      match c.kind with
      | `Stdio -> ()
      | `Socket -> ( try Unix.close c.in_fd with Unix.Unix_error _ -> ()))
    !conns;
  Option.iter Accesslog.close t.access;
  if t.cfg.trace_dir <> None then Obs.Trace.close_dir_sink ();
  Obs.Log.info "serve" "shut down cleanly (drained %d queued job%s)" drained
    (if drained = 1 then "" else "s")
