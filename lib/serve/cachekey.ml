(* Request -> content-addressed result key.

   A request is cacheable when its result is a pure function of the
   request content: [profile], [check] and [bypass] — their reports
   are deterministic (pinned by the golden-metric tests) and every
   input that can change the bytes is folded into the key.  The other
   ops read mutable process state (uptime, the metrics registry, the
   span buffers, the compile-cache counters) or exist for their side
   effects, so they are never cached.

   Canonicalization before hashing:
   - field defaults are filled in exactly as the router would
     (arch "kepler", per-app default scale), so {"op":"profile",
     "app":"nn"} and the same request with the defaults spelled out
     share one entry;
   - the arch name is resolved to the architecture's canonical short
     name, collapsing aliases ("kepler" = "kepler-16k");
   - the app name is replaced by (name, canonicalized source), so a
     key identifies the *content* profiled, not just its label;
   - [Advisor.result_key] sorts the field list, so key construction
     is independent of request-field order by construction;
   - the answer tier is part of the key: a profile request is keyed as
     op "profile" with an explicit tier field ("exact" by default,
     "static" for [profile_fast] / ["tier":"static"]), so a cached
     static estimate can never answer an exact profile request — nor
     the reverse — while [profile_fast] and its spelled-out form share
     one entry;
   - fields that cannot change the result bytes are excluded:
     [id] (echoed around the cached payload), [timeout_ms] (a hit is
     faster than any deadline) and [domains] (bypass results are
     documented domain-count-independent).

   [evaluate] is deliberately NOT whole-batch cacheable: its response
   bytes depend on the variant mix, names and baseline of one
   submission.  Caching happens one level down instead — the router
   threads the result cache into [Tune.Evaluate.run_batch], which keys
   each variant's result object by [Tune.Evaluate.variant_key]
   ("evaluate.variant" | app | arch | scale | variant source | knobs),
   so any batch containing a previously evaluated variant hits, no
   matter how the surrounding batch is shaped.  For the fleet this
   means a batch routes by the [routing_key] fallback
   ("evaluate|app|arch"): every batch for one app lands on one shard,
   which therefore accumulates all of that app's per-variant entries. *)

let cacheable_ops = [ "profile"; "profile_fast"; "check"; "bypass" ]

(* Canonical (op-for-key, extra fields) of a request: the two spellings
   of a static profile collapse to one identity, and the tier tag keeps
   static and exact results apart. *)
let canonical_op (r : Protocol.request) =
  match r.op with
  | "profile" | "profile_fast" ->
    let tier = if Router.is_static r then "static" else "exact" in
    (* bankmodel changes the result bytes (cycle totals + report
       section), so opting in forks the key; the default spelling and
       an explicit false share the pre-existing entry. *)
    let extra =
      if (not (Router.is_static r))
         && Option.value r.Protocol.bankmodel ~default:false
      then [ ("bankmodel", "on"); ("tier", tier) ]
      else [ ("tier", tier) ]
    in
    ("profile", extra)
  | op -> (op, [])

(* [None] = this request must not be served from (or stored into) the
   cache.  Unresolvable app/arch names also return [None]: validation
   rejects them before any cache interaction. *)
let of_request (r : Protocol.request) : string option =
  if not (List.mem r.op cacheable_ops) then None
  else
    match r.app with
    | None -> None
    | Some name -> (
      match
        (Workloads.Registry.find_opt name, Gpusim.Arch.of_name r.arch_name)
      with
      | Some w, Some arch ->
        let scale =
          Option.value r.scale ~default:w.Workloads.Common.default_scale
        in
        let op, extra = canonical_op r in
        Some
          (Advisor.result_key ~op ~app:w.Workloads.Common.name
             ~arch_name:arch.Gpusim.Arch.short_name ~scale ~extra
             ~source:w.Workloads.Common.source ())
      | _ -> None)

(* Routing identity for the shard fleet: the cache key when there is
   one (so repeats land on the shard that holds the entry), else a
   stable hash of the op/app/arch triple (so e.g. repeated [compile]
   requests reuse one shard's warm compile cache). *)
let routing_key (r : Protocol.request) : string =
  match of_request r with
  | Some key -> key
  | None ->
    String.concat "|"
      [ r.op; Option.value r.app ~default:""; r.arch_name ]
