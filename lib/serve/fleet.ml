(* The shard fleet: `advisor serve --shards N`.

   One supervisor process owns the public Unix socket and forks N shard
   processes, each a completely ordinary {!Server} daemon on a private
   socket ([<public>.shard-<i>]).  The supervisor is a pure relay: it
   never parses a response beyond extracting the id, and it forwards
   request lines verbatim, so a response through the fleet is
   byte-identical to one from a single daemon.

   Routing: every request maps to its {!Cachekey.routing_key} (the
   content-addressed result key when the op is cacheable) and rides a
   consistent-hash ring ({!Chash}) over the healthy shards.  Identical
   requests therefore always land on the same shard, whose result
   cache, compile memo and decode cache stay hot; when a shard leaves
   the ring (draining or unhealthy) only the keys it owned move.

   Health: the supervisor pings every shard on a dedicated connection
   (interval {!health_interval}).  Any traffic from the shard — a ping
   reply or an ordinary response line — counts as proof of liveness; a
   shard is killed and respawned only after {!max_health_failures}
   consecutive probe failures AND {!stall_kill_timeout} seconds of
   total silence, so a compute-saturated shard that is slow to answer
   pings is left alone.
   Shards that exit on their own are reaped ([waitpid WNOHANG]) and
   respawned.  A shard crash mid-request is answered with an error
   response for every id that was in flight to it — requests are never
   silently dropped.

   Rolling restart (SIGHUP, or {!request_rolling_restart}): one shard
   at a time — take it off the ring, wait for its in-flight requests to
   drain, SIGTERM it (the shard's own graceful drain handles the rest),
   respawn, wait until a health probe confirms it is up, move on.  The
   rest of the fleet keeps serving throughout, so a well-behaved client
   observes zero dropped requests.

   Concurrency note: the supervisor deliberately runs on a single
   domain and spawns none — [Unix.fork] is only well-defined in a
   single-domain OCaml process, and all the heavy lifting happens in
   the children anyway. *)

module Json = Analysis.Json

type config = {
  socket_path : string; (* the public socket clients connect to *)
  shards : int;
  shard_base : Server.config;
      (* per-shard template; socket_path/stdio are overridden, and a
         cache [dir] gets a shard-<i> subdirectory so tiers never mix *)
}

let health_interval = 2.0 (* seconds between pings of an Up shard *)
let starting_probe_interval = 0.1 (* probe cadence while coming up *)
let probe_timeout = 5.0
let max_health_failures = 3

(* A compute-saturated shard can be slow to answer pings without being
   hung: on a small host the worker domains starve the intake domain
   for seconds at a time.  Any traffic from the shard (a response line
   as much as a ping reply) proves liveness, so a shard is only killed
   when probes keep failing AND it has been completely silent this
   long. *)
let stall_kill_timeout = 60.0
let phase_timeout = 30.0 (* force progress in the rolling state machine *)

(* ----- metrics ----- *)

let m_requests = Obs.Metrics.counter "serve.fleet.requests"
let m_forwarded = Obs.Metrics.counter "serve.fleet.forwarded"
let m_replies = Obs.Metrics.counter "serve.fleet.replies"
let m_local = Obs.Metrics.counter "serve.fleet.answered_locally"
let m_shard_failures = Obs.Metrics.counter "serve.fleet.shard_failures"
let m_restarts = Obs.Metrics.counter "serve.fleet.restarts"

(* Errors the supervisor manufactures for requests that were in flight
   to a shard when it died.  Counted separately from [m_shard_failures]
   (one shard death can synthesize many errors) so dashboards can tell
   "a shard bounced" from "requests were hurt by it". *)
let m_synth = Obs.Metrics.counter "serve.fleet.synthesized_errors"

(* ----- state ----- *)

type shard_state = Starting | Up | Draining | Dead

type probe = {
  pfd : Unix.file_descr;
  mutable pbuf : string;
  psent : float;
}

type shard = {
  sid : int;
  spath : string;
  mutable pid : int; (* -1 = not running *)
  mutable state : shard_state;
  mutable outstanding : int; (* forwarded minus answered *)
  mutable restarts : int;
  mutable failures : int; (* consecutive health failures *)
  mutable last_heard : float; (* last probe reply or response line *)
  mutable next_probe : float;
  mutable probe : probe option;
}

(* One upstream connection per (client, shard) pair actually used: the
   shard writes each response on the connection its request came in on,
   so responses route back to the right client with no id rewriting. *)
type upstream = {
  u_shard : int;
  ufd : Unix.file_descr;
  mutable upending : string; (* partial response line *)
  (* (id, op, forward time ns, trace id) awaiting replies *)
  mutable uids : (Json.t * string * int * string option) list;
}

type client = {
  cfd : Unix.file_descr;
  mutable cpending : string;
  mutable creading : bool;
  mutable cwritable : bool;
  mutable ups : upstream list;
}

type t = {
  cfg : config;
  stop : bool Atomic.t;
  restart_req : bool Atomic.t;
  shards : shard array;
  ring : Chash.t;
  mutable clients : client list;
  mutable rolling : int list; (* shard ids still to restart *)
  mutable phase :
    [ `Idle | `Drain of int | `AwaitExit of int | `AwaitUp of int ];
  mutable phase_since : float;
  (* last cross-shard metrics merge, reused by `fleet` status so a
     tight status-polling loop does not re-poll every shard each time *)
  mutable merged_cache : (float * (string * Obs.Metrics.value) list) option;
}

let shard_socket base i = Printf.sprintf "%s.shard-%d" base i

let create (cfg : config) =
  if cfg.shards < 1 then invalid_arg "Fleet.create: shards must be >= 1";
  {
    cfg;
    stop = Atomic.make false;
    restart_req = Atomic.make false;
    shards =
      Array.init cfg.shards (fun i ->
          {
            sid = i;
            spath = shard_socket cfg.socket_path i;
            pid = -1;
            state = Dead;
            outstanding = 0;
            restarts = 0;
            failures = 0;
            last_heard = 0.;
            next_probe = 0.;
            probe = None;
          });
    ring = Chash.make (List.init cfg.shards Fun.id);
    clients = [];
    rolling = [];
    phase = `Idle;
    phase_since = 0.;
    merged_cache = None;
  }

(* Signal-safe: both just flip an atomic the supervisor loop polls. *)
let request_shutdown t = Atomic.set t.stop true
let request_rolling_restart t = Atomic.set t.restart_req true

let set_phase t p =
  t.phase <- p;
  t.phase_since <- Unix.gettimeofday ()

(* ----- small I/O helpers (single-domain: no locks needed) ----- *)

let write_all fd s =
  let data = Bytes.of_string s in
  let len = Bytes.length data in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write fd data !off (len - !off)
    done;
    true
  with Unix.Unix_error _ -> false

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Eof
  | n -> `Data (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Data ""
  | exception Unix.Unix_error _ -> `Eof

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reply_client client line =
  if client.cwritable then
    if not (write_all client.cfd (line ^ "\n")) then client.cwritable <- false

(* ----- shard processes ----- *)

(* Every supervisor-owned fd a freshly-forked shard must not inherit.
   [listen_fd] is the list of listening sockets (public + exposition). *)
let inherited_fds t ~listen_fd =
  let acc = ref listen_fd in
  List.iter
    (fun c ->
      acc := c.cfd :: List.map (fun u -> u.ufd) c.ups @ !acc)
    t.clients;
  Array.iter
    (fun s -> match s.probe with Some p -> acc := p.pfd :: !acc | None -> ())
    t.shards;
  !acc

let shard_config t (s : shard) =
  let cache =
    Option.map
      (fun (c : Rescache.config) ->
        match c.Rescache.dir with
        | None -> c
        | Some d ->
          { c with
            Rescache.dir =
              Some (Filename.concat d (Printf.sprintf "shard-%d" s.sid)) })
      t.cfg.shard_base.Server.cache
  in
  { t.cfg.shard_base with
    Server.socket_path = Some s.spath;
    stdio = false;
    cache;
    (* spans and access-log lines from this shard carry its role *)
    label = Printf.sprintf "shard-%d" s.sid;
    (* the supervisor owns the exposition endpoint; shards must not
       fight over the port *)
    metrics_addr = None;
    access_log =
      Option.map
        (fun p -> Printf.sprintf "%s.shard-%d" p s.sid)
        t.cfg.shard_base.Server.access_log }

let spawn t ~listen_fd (s : shard) =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* the child: a fresh single-domain process that simply runs an
       ordinary daemon on the shard's private socket *)
    List.iter close_quietly (inherited_fds t ~listen_fd);
    (* drop the supervisor's span-sink channel inherited across the
       fork; the shard's own Server.run reopens a per-pid file *)
    Obs.Trace.close_dir_sink ();
    Sys.set_signal Sys.sighup Sys.Signal_ignore;
    let code =
      try
        let srv = Server.create (shard_config t s) in
        let stop_ _ = Server.request_shutdown srv in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop_);
        Server.run srv;
        0
      with e ->
        Obs.Log.error "fleet" "shard %d died: %s" s.sid (Printexc.to_string e);
        1
    in
    exit code
  | pid ->
    s.pid <- pid;
    s.state <- Starting;
    s.failures <- 0;
    s.last_heard <- Unix.gettimeofday ();
    (match s.probe with
    | Some p ->
      close_quietly p.pfd;
      s.probe <- None
    | None -> ());
    s.next_probe <- Unix.gettimeofday () +. starting_probe_interval;
    Obs.Log.info "fleet" "shard %d: pid %d on %s" s.sid pid s.spath

(* ----- cross-shard metrics aggregation ----- *)

(* Poll one shard's typed metrics over a fresh, briefly-blocking
   connection.  The supervisor is single-domain so the read blocks the
   loop — bounded by a 2s receive timeout; metrics requests are rare
   (a scrape or an explicit `metrics` op), and a dead shard fails the
   connect immediately.  Any failure shape returns None: aggregation
   degrades to the shards that answered. *)
let poll_shard_metrics (s : shard) =
  if s.pid <= 0 || s.state = Dead then None
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX s.spath) with
    | exception Unix.Unix_error _ ->
      close_quietly fd;
      None
    | () ->
      Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      if not (write_all fd "{\"id\":\"__metrics\",\"op\":\"metrics_raw\"}\n")
      then None
      else begin
        let buf = Buffer.create 8192 in
        let chunk = Bytes.create 65536 in
        let rec read_line () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            let s = Buffer.contents buf in
            (match String.index_opt s '\n' with
            | Some i -> Some (String.sub s 0 i)
            | None -> read_line ())
          | exception Unix.Unix_error _ -> None
        in
        match read_line () with
        | None -> None
        | Some resp -> (
          match Obs.Jsonv.parse resp with
          | Ok v
            when (match Obs.Jsonv.member "ok" v with
                 | Some (Obs.Jsonv.Bool true) -> true
                 | _ -> false) -> (
            match Obs.Jsonv.member "result" v with
            | Some res -> Some (Metricsenc.of_raw res)
            | None -> None)
          | _ -> None)
      end
  end

(* The fleet-wide snapshot: the supervisor's own registry (fleet.*
   counters) merged with every reachable shard's.  Counters sum and
   histograms add bucket-wise across processes; for gauges the last
   shard polled wins (they describe "a current value somewhere", not a
   fleet total). *)
let merged_snapshot t =
  let shard_snaps =
    Array.to_list t.shards |> List.filter_map poll_shard_metrics
  in
  let snap = Obs.Metrics.merge_snapshots (Obs.Metrics.snapshot () :: shard_snaps) in
  t.merged_cache <- Some (Unix.gettimeofday (), snap);
  snap

(* A recent merge for `fleet` status: tight status-polling loops (the
   tests poll every 20-50ms) must not re-poll every shard each time. *)
let merged_cache_max_age = 5.0

let merged_for_status t =
  match t.merged_cache with
  | Some (ts, snap) when Unix.gettimeofday () -. ts < merged_cache_max_age ->
    snap
  | _ -> merged_snapshot t

(* ----- the fleet op (answered by the supervisor itself) ----- *)

let state_name = function
  | Starting -> "starting"
  | Up -> "up"
  | Draining -> "draining"
  | Dead -> "dead"

(* Per-op SLO status from a merged snapshot: for every op with traffic,
   its request count (the per-op latency histogram's count), target,
   breach count and error-budget burn. *)
let slo_json snap =
  Json.Obj
    (List.filter_map
       (fun (op, target_ms) ->
         match List.assoc_opt ("serve.op." ^ op ^ ".ns") snap with
         | Some (Obs.Metrics.Histogram h) when h.Obs.Metrics.count > 0 ->
           let breaches =
             match List.assoc_opt ("serve.slo." ^ op ^ ".breach") snap with
             | Some (Obs.Metrics.Counter c) -> c
             | _ -> 0
           in
           Some
             ( op,
               Json.Obj
                 [ ("requests", Json.Int h.Obs.Metrics.count);
                   ("target_ms", Json.Int target_ms);
                   ("breaches", Json.Int breaches);
                   ("p99_ns", Json.Int (Obs.Metrics.percentile h 0.99));
                   ( "burn",
                     Json.Float (Slo.burn ~breaches ~requests:h.Obs.Metrics.count)
                   ) ] )
         | _ -> None)
       Slo.default_targets_ms)

let fleet_result t =
  Json.Obj
    [ ("supervisor_pid", Json.Int (Unix.getpid ()));
      ("rolling_restart_in_progress", Json.Bool (t.phase <> `Idle));
      ( "shards",
        Json.List
          (Array.to_list
             (Array.map
                (fun s ->
                  Json.Obj
                    [ ("id", Json.Int s.sid); ("pid", Json.Int s.pid);
                      ("state", Json.String (state_name s.state));
                      ("socket", Json.String s.spath);
                      ("outstanding", Json.Int s.outstanding);
                      ("restarts", Json.Int s.restarts) ])
                t.shards)) );
      ("slo_objective", Json.Float Slo.objective);
      ("slo", slo_json (merged_for_status t)) ]

(* ----- request intake and forwarding ----- *)

let upstream_for t client sid =
  match List.find_opt (fun u -> u.u_shard = sid) client.ups with
  | Some u -> Some u
  | None -> (
    let s = t.shards.(sid) in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX s.spath) with
    | () ->
      let u = { u_shard = sid; ufd = fd; upending = ""; uids = [] } in
      client.ups <- u :: client.ups;
      Some u
    | exception Unix.Unix_error _ ->
      close_quietly fd;
      s.failures <- s.failures + 1;
      None)

(* When a span sink is active (--trace-dir), stamp a trace id on the
   forwarded line: the client's own id rides verbatim; otherwise one is
   minted and spliced into the request envelope (with the supervisor's
   span as [parent_span]) so the shard's spans link back here.  With no
   sink the line is always forwarded untouched — byte-identity with a
   single daemon is load-bearing and string-equality tested. *)
let trace_for_forward (req : Protocol.request) line =
  if not (Obs.Trace.sink_active ()) then (line, None)
  else
    match req.Protocol.trace_id with
    | Some tid -> (line, Some tid)
    | None -> (
      let tid = Server.gen_trace_id () in
      match String.index_opt line '{' with
      | Some i ->
        ( String.sub line 0 (i + 1)
          ^ Printf.sprintf
              "\"trace_id\":\"%s\",\"parent_span\":\"fleet:forward\"," tid
          ^ String.sub line (i + 1) (String.length line - i - 1),
          Some tid )
      | None -> (line, Some tid))

let forward t client (req : Protocol.request) line =
  let alive i = t.shards.(i).state = Up in
  match Chash.route t.ring ~alive (Cachekey.routing_key req) with
  | None ->
    Obs.Metrics.incr m_local;
    reply_client client
      (Protocol.to_line
         (Protocol.error_response ~id:req.Protocol.id ~op:req.Protocol.op
            ~code:"overloaded" "no healthy shard available; retry later"))
  | Some sid -> (
    let fwd_ns = Obs.Clock.now_ns () in
    let line, trace = trace_for_forward req line in
    match upstream_for t client sid with
    | Some u when write_all u.ufd (line ^ "\n") ->
      u.uids <- (req.Protocol.id, req.Protocol.op, fwd_ns, trace) :: u.uids;
      t.shards.(sid).outstanding <- t.shards.(sid).outstanding + 1;
      Obs.Metrics.incr m_forwarded;
      (match trace with
      | Some tid ->
        Obs.Trace.record_span ~trace_id:tid ~cat:"fleet" ~name:"fleet:forward"
          ~start_ns:fwd_ns
          ~dur_ns:(Obs.Clock.now_ns () - fwd_ns)
          ()
      | None -> ())
    | _ ->
      Obs.Metrics.incr m_shard_failures;
      reply_client client
        (Protocol.to_line
           (Protocol.error_response ~id:req.Protocol.id ~op:req.Protocol.op
              ~code:"failed" "shard unavailable; retry later")))

let handle_client_line t client line =
  let line = String.trim line in
  if line <> "" then begin
    Obs.Metrics.incr m_requests;
    match Protocol.parse_request line with
    | Error (id, code, msg) ->
      Obs.Metrics.incr m_local;
      reply_client client
        (Protocol.to_line (Protocol.error_response ~id ~op:"?" ~code msg))
    | Ok req when req.Protocol.op = "fleet" ->
      Obs.Metrics.incr m_local;
      reply_client client
        (Protocol.to_line
           (Protocol.ok_response ~id:req.Protocol.id ~op:"fleet"
              (fleet_result t)))
    | Ok req
      when List.mem req.Protocol.op [ "metrics"; "metrics_raw"; "metrics_text" ]
      ->
      (* metrics ops answer fleet-wide: a fresh merge over every
         reachable shard plus the supervisor's own registry *)
      Obs.Metrics.incr m_local;
      let snap = merged_snapshot t in
      let result =
        match req.Protocol.op with
        | "metrics" -> Metricsenc.snapshot_json snap
        | "metrics_raw" -> Metricsenc.raw_json snap
        | _ -> Metricsenc.text_json snap
      in
      reply_client client
        (Protocol.to_line
           (Protocol.ok_response ~id:req.Protocol.id ~op:req.Protocol.op result))
    | Ok req -> forward t client req line
  end

let read_client t client =
  match read_chunk client.cfd with
  | `Eof ->
    client.creading <- false;
    if String.trim client.cpending <> "" then
      handle_client_line t client client.cpending;
    client.cpending <- ""
  | `Data d ->
    let data = client.cpending ^ d in
    let rec go = function
      | [ last ] -> client.cpending <- last
      | line :: rest ->
        handle_client_line t client line;
        go rest
      | [] -> client.cpending <- ""
    in
    go (String.split_on_char '\n' data)

(* ----- response pumping ----- *)

let response_id line =
  match Obs.Jsonv.parse line with
  | Ok v -> (
    match Obs.Jsonv.member "id" v with
    | Some j -> Protocol.json_of_jsonv j
    | None -> Json.Null)
  | Error _ -> Json.Null

let remove_id u id =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | ((i, _, _, _) as entry) :: rest when i = id ->
      (List.rev_append acc rest, Some entry)
    | x :: rest -> go (x :: acc) rest
  in
  let uids', found = go [] u.uids in
  u.uids <- uids';
  found

(* The shard died with requests in flight on this connection: answer
   each of them with an error so no request is ever silently dropped.
   The death counts against [serve.fleet.shard_failures] and each
   manufactured error against [serve.fleet.synthesized_errors] — these
   errors never pass through a shard's own serve.* counters, so without
   this they would be invisible in the fleet's metrics. *)
let fail_pending t client u =
  if u.uids <> [] then Obs.Metrics.incr m_shard_failures;
  List.iter
    (fun (id, op, _, _) ->
      Obs.Metrics.incr m_local;
      Obs.Metrics.incr m_synth;
      reply_client client
        (Protocol.to_line
           (Protocol.error_response ~id ~op ~code:"failed"
              "shard exited before answering; retry")))
    u.uids;
  let s = t.shards.(u.u_shard) in
  s.outstanding <- max 0 (s.outstanding - List.length u.uids);
  u.uids <- []

let close_upstream t client u =
  fail_pending t client u;
  close_quietly u.ufd;
  client.ups <- List.filter (fun x -> x != u) client.ups

let handle_upstream t client u =
  match read_chunk u.ufd with
  | `Eof -> close_upstream t client u
  | `Data d ->
    let s = t.shards.(u.u_shard) in
    s.failures <- 0;
    s.last_heard <- Unix.gettimeofday ();
    let data = u.upending ^ d in
    let rec go = function
      | [ last ] -> u.upending <- last
      | line :: rest ->
        if String.trim line <> "" then begin
          reply_client client line;
          (match remove_id u (response_id line) with
          | Some (_, _, fwd_ns, trace) ->
            s.outstanding <- max 0 (s.outstanding - 1);
            (match trace with
            | Some tid ->
              Obs.Trace.record_span ~trace_id:tid ~parent:"fleet:forward"
                ~cat:"fleet" ~name:"fleet:await" ~start_ns:fwd_ns
                ~dur_ns:(Obs.Clock.now_ns () - fwd_ns)
                ()
            | None -> ())
          | None -> ());
          Obs.Metrics.incr m_replies
        end;
        go rest
      | [] -> u.upending <- ""
    in
    go (String.split_on_char '\n' data)

(* ----- health checks ----- *)

let probe_failed t s now =
  ignore t;
  (match s.probe with
  | Some p ->
    close_quietly p.pfd;
    s.probe <- None
  | None -> ());
  s.failures <- s.failures + 1;
  s.next_probe <-
    now +. (if s.state = Starting then starting_probe_interval else 1.0);
  if s.state = Up && s.failures >= max_health_failures then
    if now -. s.last_heard >= stall_kill_timeout then begin
      Obs.Log.error "fleet" "shard %d failed %d health checks; restarting"
        s.sid s.failures;
      Obs.Metrics.incr m_shard_failures;
      s.state <- Dead;
      if s.pid > 0 then
        try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ()
    end
    else
      Obs.Log.warn "fleet"
        "shard %d slow to answer pings (%d misses) but heard %.0fs ago; \
         assuming busy"
        s.sid s.failures (now -. s.last_heard)

let start_probe t s now =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX s.spath) with
  | () ->
    if write_all fd "{\"id\":\"__health\",\"op\":\"ping\"}\n" then
      s.probe <- Some { pfd = fd; pbuf = ""; psent = now }
    else begin
      close_quietly fd;
      probe_failed t s now
    end
  | exception Unix.Unix_error _ ->
    close_quietly fd;
    probe_failed t s now

let handle_probe t s now =
  match s.probe with
  | None -> ()
  | Some p -> (
    match read_chunk p.pfd with
    | `Eof -> probe_failed t s now
    | `Data d ->
      p.pbuf <- p.pbuf ^ d;
      if String.contains p.pbuf '\n' then begin
        close_quietly p.pfd;
        s.probe <- None;
        s.failures <- 0;
        s.last_heard <- now;
        s.next_probe <- now +. health_interval;
        if s.state = Starting then begin
          s.state <- Up;
          Obs.Log.info "fleet" "shard %d is up" s.sid
        end
      end)

let step_health t now =
  Array.iter
    (fun s ->
      match s.state with
      | Dead | Draining -> ()
      | Starting | Up -> (
        match s.probe with
        | Some p when now -. p.psent > probe_timeout -> probe_failed t s now
        | Some _ -> ()
        | None -> if now >= s.next_probe && s.pid > 0 then start_probe t s now))
    t.shards

(* ----- child reaping ----- *)

let reap t ~listen_fd =
  Array.iter
    (fun s ->
      if s.pid > 0 then
        match Unix.waitpid [ Unix.WNOHANG ] s.pid with
        | 0, _ -> ()
        | _, _status ->
          s.pid <- -1;
          (match s.probe with
          | Some p ->
            close_quietly p.pfd;
            s.probe <- None
          | None -> ());
          let expected =
            match t.phase with `AwaitExit i -> i = s.sid | _ -> false
          in
          if not expected then begin
            Obs.Log.warn "fleet" "shard %d exited unexpectedly; restarting"
              s.sid;
            s.restarts <- s.restarts + 1;
            Obs.Metrics.incr m_restarts;
            spawn t ~listen_fd s
          end
        | exception Unix.Unix_error _ -> s.pid <- -1)
    t.shards

(* ----- rolling restart state machine ----- *)

let step_rolling t ~listen_fd now =
  let stuck () = now -. t.phase_since > phase_timeout in
  match t.phase with
  | `Idle -> (
    if Atomic.exchange t.restart_req false then
      if t.rolling = [] then begin
        t.rolling <- Array.to_list (Array.map (fun s -> s.sid) t.shards);
        Obs.Log.info "fleet" "rolling restart: %d shard(s)"
          (List.length t.rolling)
      end
      else Obs.Log.warn "fleet" "rolling restart already in progress";
    match t.rolling with
    | [] -> ()
    | sid :: rest -> (
      let s = t.shards.(sid) in
      match s.state with
      | Up | Starting ->
        s.state <- Draining;
        Obs.Log.info "fleet" "rolling restart: draining shard %d (%d in flight)"
          sid s.outstanding;
        set_phase t (`Drain sid)
      | Dead ->
        (* already down; the reaper/respawner owns it *)
        t.rolling <- rest
      | Draining -> set_phase t (`Drain sid)))
  | `Drain sid ->
    let s = t.shards.(sid) in
    if s.pid <= 0 then set_phase t (`AwaitExit sid)
    else if s.outstanding <= 0 || stuck () then begin
      (try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ());
      set_phase t (`AwaitExit sid)
    end
  | `AwaitExit sid ->
    let s = t.shards.(sid) in
    if s.pid <= 0 then begin
      s.restarts <- s.restarts + 1;
      Obs.Metrics.incr m_restarts;
      spawn t ~listen_fd s;
      set_phase t (`AwaitUp sid)
    end
    else if stuck () then
      (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ())
  | `AwaitUp sid ->
    if t.shards.(sid).state = Up then begin
      Obs.Log.info "fleet" "rolling restart: shard %d back up" sid;
      t.rolling <- List.tl t.rolling;
      set_phase t `Idle
    end
    else if stuck () then begin
      (* the replacement never came up; give up on the rolling pass so
         the fleet is not wedged — health/reaping keep trying *)
      Obs.Log.error "fleet" "rolling restart: shard %d did not come back; \
                             aborting the rolling pass" sid;
      t.rolling <- [];
      set_phase t `Idle
    end

(* ----- client lifecycle ----- *)

let drop_client t c =
  List.iter
    (fun u ->
      let s = t.shards.(u.u_shard) in
      s.outstanding <- max 0 (s.outstanding - List.length u.uids);
      close_quietly u.ufd)
    c.ups;
  c.ups <- [];
  close_quietly c.cfd

let sweep_clients t =
  t.clients <-
    List.filter
      (fun c ->
        let finished =
          (not c.creading) && List.for_all (fun u -> u.uids = []) c.ups
        in
        if finished || not c.cwritable then begin
          drop_client t c;
          false
        end
        else true)
      t.clients

(* ----- the supervisor loop ----- *)

let find_upstream t fd =
  let rec go = function
    | [] -> None
    | c :: rest -> (
      match List.find_opt (fun u -> u.ufd = fd) c.ups with
      | Some u -> Some (c, u)
      | None -> go rest)
  in
  go t.clients

let run t =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  (* the supervisor's own spans (fleet:forward / fleet:await) carry its
     role; shards label themselves in Server.run after the fork *)
  Obs.Trace.set_proc_label "supervisor";
  Option.iter Obs.Trace.open_dir_sink t.cfg.shard_base.Server.trace_dir;
  let public_fd = Server.setup_listener t.cfg.socket_path in
  let metrics_fd =
    Option.map Server.setup_metrics_listener
      t.cfg.shard_base.Server.metrics_addr
  in
  let listen_fd =
    public_fd :: (match metrics_fd with Some fd -> [ fd ] | None -> [])
  in
  Array.iter (fun s -> spawn t ~listen_fd s) t.shards;
  Obs.Log.info "fleet" "supervising %d shard(s) behind %s" t.cfg.shards
    t.cfg.socket_path;
  (try
     while not (Atomic.get t.stop) do
       let now = Unix.gettimeofday () in
       reap t ~listen_fd;
       step_health t now;
       step_rolling t ~listen_fd now;
       sweep_clients t;
       let probe_fds =
         Array.fold_left
           (fun acc s ->
             match s.probe with Some p -> p.pfd :: acc | None -> acc)
           [] t.shards
       in
       let client_fds =
         List.concat_map
           (fun c ->
             (if c.creading then [ c.cfd ] else [])
             @ List.map (fun u -> u.ufd) c.ups)
           t.clients
       in
       let watch = listen_fd @ client_fds @ probe_fds in
       match Unix.select watch [] [] 0.1 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | ready, _, _ ->
         List.iter
           (fun fd ->
             if fd = public_fd then begin
               match Unix.accept public_fd with
               | cfd, _ ->
                 t.clients <-
                   {
                     cfd;
                     cpending = "";
                     creading = true;
                     cwritable = true;
                     ups = [];
                   }
                   :: t.clients
               | exception Unix.Unix_error _ -> ()
             end
             else if metrics_fd = Some fd then
               (* a Prometheus scrape: answer with a fresh fleet-wide
                  merge (scrapes are seconds apart; the merge is ms) *)
               Server.answer_scrape fd
                 (Obs.Metrics.to_prometheus ~snap:(merged_snapshot t) ())
             else
               match
                 Array.find_opt
                   (fun s ->
                     match s.probe with
                     | Some p -> p.pfd = fd
                     | None -> false)
                   t.shards
               with
               | Some s -> handle_probe t s (Unix.gettimeofday ())
               | None -> (
                 match List.find_opt (fun c -> c.cfd = fd) t.clients with
                 | Some c when c.creading -> read_client t c
                 | Some _ -> ()
                 | None -> (
                   match find_upstream t fd with
                   | Some (c, u) -> handle_upstream t c u
                   | None -> ())))
           ready
     done
   with e ->
     Obs.Log.error "fleet" "supervisor loop failed: %s" (Printexc.to_string e));
  (* ----- shutdown: stop intake, pump out in-flight replies, stop shards ----- *)
  List.iter close_quietly listen_fd;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  let outstanding () =
    Array.fold_left (fun acc s -> acc + s.outstanding) 0 t.shards
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let continue_ = ref true in
  while !continue_ && outstanding () > 0 && Unix.gettimeofday () < deadline do
    let fds =
      List.concat_map (fun c -> List.map (fun u -> u.ufd) c.ups) t.clients
    in
    if fds = [] then continue_ := false
    else
      match Unix.select fds [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            match find_upstream t fd with
            | Some (c, u) -> handle_upstream t c u
            | None -> ())
          ready
  done;
  Array.iter
    (fun s ->
      if s.pid > 0 then
        try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.shards;
  Array.iter
    (fun s ->
      if s.pid > 0 then begin
        (try ignore (Unix.waitpid [] s.pid) with Unix.Unix_error _ -> ());
        s.pid <- -1
      end;
      match s.probe with
      | Some p ->
        close_quietly p.pfd;
        s.probe <- None
      | None -> ())
    t.shards;
  List.iter (fun c -> drop_client t c) t.clients;
  t.clients <- [];
  if t.cfg.shard_base.Server.trace_dir <> None then Obs.Trace.close_dir_sink ();
  Obs.Log.info "fleet" "fleet shut down cleanly"
