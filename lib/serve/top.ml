(* `advisor top`: a live terminal dashboard over a serve daemon or
   fleet supervisor.

   Polls the socket's `metrics_raw` op (the typed, lossless snapshot
   encoding) at a fixed interval and renders request throughput, cache
   behaviour, queue pressure, fleet health counters and a per-op
   latency table with SLO burn.  Rates come from counter deltas between
   consecutive samples, so the first frame shows totals only.

   Rendering is a pure function of two samples ([render]) so tests can
   pin the dashboard without a terminal or a live daemon. *)

module Json = Analysis.Json
module Jsonv = Obs.Jsonv
module Metrics = Obs.Metrics

type sample = { ts : float; snap : (string * Metrics.value) list }

let counter snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Counter i) -> i
  | _ -> 0

let gauge snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Gauge f) -> Some f
  | _ -> None

let histogram snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Histogram h) -> Some h
  | _ -> None

(* Events per second for counter [name] between two samples; 0 without
   a previous sample (or a non-advancing clock). *)
let rate ~prev ~cur name =
  match prev with
  | None -> 0.
  | Some p ->
    let dt = cur.ts -. p.ts in
    if dt <= 0. then 0.
    else float_of_int (counter cur.snap name - counter p.snap name) /. dt

let pct num den = if den <= 0 then 0. else 100. *. float_of_int num /. float_of_int den

(* Ops present in the snapshot, discovered from their latency
   histograms ([serve.op.<op>.ns]) so `top` needs no op list of its
   own. *)
let ops_of snap =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Histogram _ ->
        let pre = "serve.op." and suf = ".ns" in
        let pl = String.length pre and sl = String.length suf in
        let n = String.length name in
        if n > pl + sl && String.sub name 0 pl = pre
           && String.sub name (n - sl) sl = suf
        then Some (String.sub name pl (n - pl - sl))
        else None
      | _ -> None)
    snap

let render ~prev ~cur =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let c name = counter cur.snap name in
  let requests = c "serve.requests" in
  line "advisor top — %d metric(s), sampled %.1fs apart"
    (List.length cur.snap)
    (match prev with None -> 0. | Some p -> cur.ts -. p.ts);
  line "";
  line "requests   total %-8d %6.1f req/s   ok %d  failed %d  timeout %d  overloaded %d"
    requests
    (rate ~prev ~cur "serve.requests")
    (c "serve.requests.ok") (c "serve.requests.failed")
    (c "serve.requests.timeout") (c "serve.requests.overloaded");
  let hits = c "serve.cache.hits" and misses = c "serve.cache.misses" in
  line "cache      hits %-6d misses %-6d hit %5.1f%%   entries %.0f  bytes %.0f"
    hits misses
    (pct hits (hits + misses))
    (Option.value (gauge cur.snap "serve.cache.entries") ~default:0.)
    (Option.value (gauge cur.snap "serve.cache.bytes") ~default:0.);
  let depth = Option.value (gauge cur.snap "serve.queue.depth") ~default:0. in
  (match histogram cur.snap "serve.request.wait_ns" with
  | Some w ->
    line "queue      depth %-5.0f wait p50 %s  p99 %s  max %s" depth
      (Obs.Trace.pp_duration (Metrics.percentile w 0.50))
      (Obs.Trace.pp_duration (Metrics.percentile w 0.99))
      (Obs.Trace.pp_duration w.Metrics.max_value)
  | None -> line "queue      depth %-5.0f" depth);
  let fwd = c "serve.fleet.forwarded" in
  if fwd > 0 || c "serve.fleet.requests" > 0 then
    line "fleet      forwarded %-6d replies %-6d shard failures %d  synthesized %d  restarts %d"
      fwd
      (c "serve.fleet.replies")
      (c "serve.fleet.shard_failures")
      (c "serve.fleet.synthesized_errors")
      (c "serve.fleet.restarts");
  let ops = ops_of cur.snap in
  if ops <> [] then begin
    line "";
    line "%-14s %8s %8s %10s %10s %10s %8s %6s" "op" "reqs" "req/s"
      "p50" "p95" "p99" "breach" "burn";
    List.iter
      (fun op ->
        match histogram cur.snap ("serve.op." ^ op ^ ".ns") with
        | None -> ()
        | Some h ->
          let breaches = c ("serve.slo." ^ op ^ ".breach") in
          line "%-14s %8d %8.1f %10s %10s %10s %8d %6.2f" op h.Metrics.count
            (rate ~prev ~cur ("serve.op." ^ op ^ ".ns" ^ ""))
            (Obs.Trace.pp_duration (Metrics.percentile h 0.50))
            (Obs.Trace.pp_duration (Metrics.percentile h 0.95))
            (Obs.Trace.pp_duration (Metrics.percentile h 0.99))
            breaches
            (Slo.burn ~breaches ~requests:h.Metrics.count))
      ops
  end;
  Buffer.contents b

(* ----- polling client ----- *)

(* One round trip on a fresh connection per poll: fleets route by
   connection, and a stuck daemon then costs one interval, not the
   whole session. *)
let fetch socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let req = "{\"id\":\"top\",\"op\":\"metrics_raw\"}\n" in
      let n = String.length req in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd req !written (n - !written)
      done;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read_line () =
        let got = Unix.read fd chunk 0 (Bytes.length chunk) in
        if got = 0 then ()
        else begin
          Buffer.add_subbytes buf chunk 0 got;
          if not (Bytes.exists (fun ch -> ch = '\n') (Bytes.sub chunk 0 got))
          then read_line ()
        end
      in
      read_line ();
      let lines = String.split_on_char '\n' (Buffer.contents buf) in
      match lines with
      | line :: _ -> (
        match Jsonv.parse line with
        | Error e -> Error ("bad response: " ^ e)
        | Ok v -> (
          match Jsonv.member "result" v with
          | Some result ->
            Ok { ts = Unix.gettimeofday (); snap = Metricsenc.of_raw result }
          | None -> Error "response carried no result"))
      | [] -> Error "empty response")

let clear_screen = "\027[H\027[2J"

(* Run the dashboard: poll every [interval_ms], draw [frames] frames
   (None = until interrupted).  With a single frame the screen is not
   cleared, so `advisor top --once` composes with pipes. *)
let run ~socket_path ~interval_ms ~frames =
  let interval = float_of_int (max 50 interval_ms) /. 1000. in
  let prev = ref None in
  let n = ref 0 in
  let continue_ () = match frames with None -> true | Some k -> !n < k in
  while continue_ () do
    (match fetch socket_path with
    | Ok cur ->
      if frames <> Some 1 then print_string clear_screen;
      print_string (render ~prev:!prev ~cur);
      flush stdout;
      prev := Some cur
    | Error msg ->
      Printf.eprintf "top: %s (%s)\n%!" msg socket_path
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "top: %s (%s)\n%!" (Unix.error_message e) socket_path);
    incr n;
    if continue_ () then Unix.sleepf interval
  done
