(* A bounded, closeable multi-producer/multi-consumer job queue.

   The bound is the daemon's backpressure: [try_push] never blocks and
   never grows the queue past [cap] — a full queue is reported to the
   caller, which replies "overloaded" instead of queueing unboundedly
   (the reader would otherwise buffer an arbitrary backlog of
   seconds-long simulations and look alive while being hours behind).

   [pop] blocks on a condition variable until an item or [close];
   closing wakes every consumer, and consumers drain items enqueued
   before the close, so graceful shutdown finishes accepted work. *)

type 'a t = {
  cap : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~cap =
  if cap < 1 then invalid_arg "Jobq.create: cap must be >= 1";
  {
    cap;
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let capacity t = t.cap

let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.cap then `Full
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

(* Blocks until an item is available or the queue is closed *and*
   drained; [None] means "no more work ever" — the consumer exits. *)
let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  let item = if Queue.is_empty t.items then None else Some (Queue.pop t.items) in
  Mutex.unlock t.lock;
  item

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = Mutex.protect t.lock (fun () -> t.closed)
