(* Consistent-hash ring for shard routing.

   Each shard owns [vnodes] pseudo-random points on a hash circle; a
   key routes to the first point clockwise from its own hash.  The
   property that matters for the fleet: when one shard is excluded
   (draining for a rolling restart, or unhealthy), only the keys that
   shard owned move — every other key keeps its shard and therefore
   its warm result/compile caches.  Plain modulo hashing would reshuffle
   nearly every key on any membership change. *)

let vnodes = 64

(* A stable, platform-independent hash: the first 8 bytes of the MD5
   digest, masked positive.  [Hashtbl.hash] would work but its value is
   not pinned across OCaml versions; routing stability across the
   supervisor and tests is worth the explicit construction. *)
let hash_string s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

type t = { points : (int * int) array (* (point hash, shard id), sorted *) }

let make shard_ids =
  let points =
    List.concat_map
      (fun id ->
        List.init vnodes (fun v ->
            (hash_string (Printf.sprintf "shard-%d#%d" id v), id)))
      shard_ids
  in
  { points = Array.of_list (List.sort compare points) }

(* First point at or clockwise-after [key]'s hash whose shard satisfies
   [alive]; [None] only when no live shard remains. *)
let route t ~alive key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let h = hash_string key in
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if fst t.points.(mid) < h then bs (mid + 1) hi else bs lo mid
    in
    let start = match bs 0 n with i when i = n -> 0 | i -> i in
    let rec scan i remaining =
      if remaining = 0 then None
      else
        let _, id = t.points.(i) in
        if alive id then Some id else scan ((i + 1) mod n) (remaining - 1)
    in
    scan start n
  end
