(* The serve wire protocol: newline-delimited JSON, one request object
   per line in, one response object per line out.

   Request:  {"id": <any>, "op": "profile", "app": "nn",
              "arch": "kepler", "scale": 2, "timeout_ms": 60000}
   Response: {"id": <echoed>, "ok": true,  "op": "profile", "result": {...}}
         or  {"id": <echoed>, "ok": false, "op": "profile",
              "error": {"code": "timeout", "message": "..."}}

   The [id] is opaque to the daemon and echoed verbatim (clients
   correlate by it — responses may come back out of order, since
   requests run concurrently).  Unknown request fields are ignored for
   forward compatibility; wrongly-typed known fields are a
   ["bad_request"].

   Error codes: "bad_request", "unknown_op", "unknown_app",
   "unknown_arch", "overloaded" (bounded queue full — retry later),
   "timeout" (the per-request wall-clock deadline fired),
   "failed" (the operation itself raised), "shutting_down". *)

module Json = Analysis.Json
module Jsonv = Obs.Jsonv

(* One kernel variant of an evaluate batch: an optional source
   replacement plus the two non-source knobs.  All fields optional —
   an empty object is the app's pristine kernel. *)
type variant = {
  v_name : string option; (* stable id; defaults to "v<index>" *)
  v_source : string option;
  v_block_x : int option;
  v_bypass_warps : int option;
}

type request = {
  id : Json.t; (* echoed verbatim; [Json.Null] when absent *)
  op : string;
  app : string option;
  arch_name : string; (* default "kepler" *)
  scale : int option;
  timeout_ms : int option; (* overrides the server default *)
  domains : int option; (* fan-out inside one request (bypass/evaluate) *)
  instrument : string option; (* compile op: none|profile|check|all *)
  tier : string option; (* profile op: exact|static answer tier *)
  bankmodel : bool option; (* profile op: charge bank-conflict replays *)
  out : string option; (* trace op: Chrome-trace output path *)
  ms : int option; (* sleep op *)
  variants : variant list option; (* evaluate op: the batch *)
  baseline : string option; (* evaluate op: baseline variant name *)
  trace_id : string option; (* distributed-trace id, propagated downstream *)
  parent_span : string option; (* caller's span name, for cross-process links *)
}

(* Parsed values echo back through the response encoder, so convert the
   validator's representation to the emitter's; integral numbers become
   [Int] (ids are typically sequence numbers). *)
let rec json_of_jsonv : Jsonv.t -> Json.t = function
  | Jsonv.Null -> Json.Null
  | Jsonv.Bool b -> Json.Bool b
  | Jsonv.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Json.Int (int_of_float f)
    else Json.Float f
  | Jsonv.Str s -> Json.String s
  | Jsonv.Arr l -> Json.List (List.map json_of_jsonv l)
  | Jsonv.Obj fields ->
    Json.Obj (List.map (fun (k, v) -> (k, json_of_jsonv v)) fields)

(* ----- request parsing ----- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_field obj name =
  match Jsonv.member name obj with
  | None | Some Jsonv.Null -> Ok None
  | Some (Jsonv.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let int_field obj name =
  match Jsonv.member name obj with
  | None | Some Jsonv.Null -> Ok None
  | Some (Jsonv.Num f) when Float.is_integer f -> Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let bool_field obj name =
  match Jsonv.member name obj with
  | None | Some Jsonv.Null -> Ok None
  | Some (Jsonv.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

(* "variants": an array of objects, each with optional name / source /
   block_x / bypass_warps.  Parsing stays purely structural here;
   semantic limits (batch size, unique names, baseline membership) are
   the router's validation. *)
let variants_field obj =
  let variant_at i v =
    match v with
    | Jsonv.Obj _ ->
      let* v_name = str_field v "name" in
      let* v_source = str_field v "source" in
      let* v_block_x = int_field v "block_x" in
      let* v_bypass_warps = int_field v "bypass_warps" in
      Ok { v_name; v_source; v_block_x; v_bypass_warps }
    | _ -> Error (Printf.sprintf "variants[%d] must be a JSON object" i)
  in
  match Jsonv.member "variants" obj with
  | None | Some Jsonv.Null -> Ok None
  | Some (Jsonv.Arr items) ->
    let* parsed =
      List.fold_left
        (fun acc (i, v) ->
          let* acc = acc in
          let* one = variant_at i v in
          Ok (one :: acc))
        (Ok [])
        (List.mapi (fun i v -> (i, v)) items)
    in
    Ok (Some (List.rev parsed))
  | Some _ -> Error "field \"variants\" must be an array"

(* Parse one request line.  Errors carry (id, code, message) so the
   reply can still correlate when the envelope parsed but a field was
   bad; an unparseable line gets [id = Null]. *)
let parse_request line : (request, Json.t * string * string) result =
  match Jsonv.parse line with
  | Error msg -> Error (Json.Null, "bad_request", "invalid JSON: " ^ msg)
  | Ok (Jsonv.Obj _ as obj) -> (
    let id =
      match Jsonv.member "id" obj with
      | None -> Json.Null
      | Some v -> json_of_jsonv v
    in
    let fields =
      let* op =
        match Jsonv.member "op" obj with
        | Some (Jsonv.Str s) -> Ok s
        | Some _ -> Error "field \"op\" must be a string"
        | None -> Error "missing required field \"op\""
      in
      let* app = str_field obj "app" in
      let* arch = str_field obj "arch" in
      let* scale = int_field obj "scale" in
      let* timeout_ms = int_field obj "timeout_ms" in
      let* domains = int_field obj "domains" in
      let* instrument = str_field obj "instrument" in
      let* tier = str_field obj "tier" in
      let* bankmodel = bool_field obj "bankmodel" in
      let* out = str_field obj "out" in
      let* ms = int_field obj "ms" in
      let* variants = variants_field obj in
      let* baseline = str_field obj "baseline" in
      let* trace_id = str_field obj "trace_id" in
      let* parent_span = str_field obj "parent_span" in
      Ok
        {
          id;
          op;
          app;
          arch_name = Option.value arch ~default:"kepler";
          scale;
          timeout_ms;
          domains;
          instrument;
          tier;
          bankmodel;
          out;
          ms;
          variants;
          baseline;
          trace_id;
          parent_span;
        }
    in
    match fields with
    | Ok req -> Ok req
    | Error msg -> Error (id, "bad_request", msg))
  | Ok _ -> Error (Json.Null, "bad_request", "request must be a JSON object")

(* ----- response encoding ----- *)

let ok_response ~id ~op result =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool true); ("op", Json.String op);
      ("result", result) ]

let error_response ~id ~op ~code message =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool false); ("op", Json.String op);
      ( "error",
        Json.Obj
          [ ("code", Json.String code); ("message", Json.String message) ] ) ]

(* One response per line: the emitter never produces raw newlines
   (strings are escaped), so [to_string] output is line-safe. *)
let to_line json = Json.to_string json

(* A success line spliced around an already-serialized [result] (the
   result cache stores serialized bytes).  Byte-identical to
   [to_line (ok_response ...)] because the emitter writes object fields
   in order with no whitespace. *)
let ok_line_raw ~id ~op raw_result =
  Printf.sprintf "{\"id\":%s,\"ok\":true,\"op\":%s,\"result\":%s}"
    (Json.to_string id)
    (Json.to_string (Json.String op))
    raw_result
