(* Metrics snapshot <-> JSON encodings shared by the `metrics`,
   `metrics_raw` and `metrics_text` ops and the fleet supervisor's
   cross-shard aggregation.

   Two shapes:
   - [snapshot_json]: the flat, human-oriented `metrics` result —
     counters as ints, gauges as floats, histograms as objects with
     count/sum/max/mean plus derived p50/p95/p99 and the raw log2
     buckets.
   - [raw_json]/[of_raw]: a typed, lossless round-trip used by the
     supervisor to poll shards.  The flat shape cannot be decoded
     back (ints and floats are indistinguishable to the validator), so
     aggregation exchanges this explicit form instead. *)

module Json = Analysis.Json
module Jsonv = Obs.Jsonv
module Metrics = Obs.Metrics

let histogram_json (h : Metrics.histogram_snapshot) =
  Json.Obj
    [ ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ("max", Json.Int h.max_value);
      ("mean", Json.Float h.mean);
      ("p50", Json.Int (Metrics.percentile h 0.50));
      ("p95", Json.Int (Metrics.percentile h 0.95));
      ("p99", Json.Int (Metrics.percentile h 0.99));
      ( "buckets",
        Json.Obj
          (List.map
             (fun (b, c) -> (Metrics.bucket_label b, Json.Int c))
             h.filled) ) ]

(* The flat `metrics` result: one field per instrument, sorted by name
   (snapshots are pre-sorted). *)
let snapshot_json snap =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let value =
           match v with
           | Metrics.Counter i -> Json.Int i
           | Metrics.Gauge f -> Json.Float f
           | Metrics.Histogram h -> histogram_json h
         in
         (name, value))
       snap)

(* Typed shape: {"counters":{..}, "gauges":{..}, "histograms":{name:
   {"count":..,"sum":..,"max":..,"buckets":{"<bucket index>":count}}}} *)
let raw_json snap =
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, v) ->
        match v with
        | Metrics.Counter i -> ((name, Json.Int i) :: cs, gs, hs)
        | Metrics.Gauge f -> (cs, (name, Json.Float f) :: gs, hs)
        | Metrics.Histogram h ->
          let hj =
            Json.Obj
              [ ("count", Json.Int h.count);
                ("sum", Json.Int h.sum);
                ("max", Json.Int h.max_value);
                ( "buckets",
                  Json.Obj
                    (List.map
                       (fun (b, c) -> (string_of_int b, Json.Int c))
                       h.filled) ) ]
          in
          (cs, gs, (name, hj) :: hs))
      ([], [], []) snap
  in
  Json.Obj
    [ ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev hists)) ]

(* Decode a [raw_json] result back into a snapshot.  Lenient: missing
   sections or malformed entries are skipped (a shard mid-upgrade must
   not sink the supervisor), so the result holds whatever decoded. *)
let of_raw (v : Jsonv.t) : (string * Metrics.value) list =
  let obj_fields k =
    match Jsonv.member k v with Some (Jsonv.Obj fs) -> fs | _ -> []
  in
  let int_of = function
    | Jsonv.Num f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None
  in
  let counters =
    List.filter_map
      (fun (name, x) ->
        match int_of x with
        | Some i -> Some (name, Metrics.Counter i)
        | None -> None)
      (obj_fields "counters")
  in
  let gauges =
    List.filter_map
      (fun (name, x) ->
        match Jsonv.to_float_opt x with
        | Some f -> Some (name, Metrics.Gauge f)
        | None -> None)
      (obj_fields "gauges")
  in
  let hists =
    List.filter_map
      (fun (name, x) ->
        let mem k = Option.bind (Jsonv.member k x) int_of in
        match (mem "count", mem "sum", mem "max") with
        | Some count, Some sum, Some max_value ->
          let filled =
            (match Jsonv.member "buckets" x with
            | Some (Jsonv.Obj bs) ->
              List.filter_map
                (fun (bk, bc) ->
                  match (int_of_string_opt bk, int_of bc) with
                  | Some b, Some c
                    when b >= 0 && b < Metrics.num_buckets && c > 0 ->
                    Some (b, c)
                  | _ -> None)
                bs
            | _ -> [])
            |> List.sort compare
          in
          Some
            ( name,
              Metrics.Histogram
                {
                  Metrics.count;
                  sum;
                  max_value;
                  mean =
                    (if count = 0 then 0.
                     else float_of_int sum /. float_of_int count);
                  filled;
                } )
        | _ -> None)
      (obj_fields "histograms")
  in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (counters @ gauges @ hists)

(* The `metrics_text` result: Prometheus exposition wrapped in JSON so
   it still fits the one-line NDJSON envelope. *)
let text_json snap =
  Json.Obj
    [ ("format", Json.String "prometheus-0.0.4");
      ("text", Json.String (Metrics.to_prometheus ~snap ())) ]
