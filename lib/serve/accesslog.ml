(* Per-request NDJSON access log.

   One JSON object per finished request — op, answer tier, serving
   process, cache disposition, queue wait, run time, total latency and
   outcome — appended to a file and flushed per line so logs survive a
   killed shard.  A sampling divisor keeps hot fleets affordable: with
   [sample = n] every n-th request is written (the first of each n);
   skipped lines are counted so the log's coverage is computable. *)

module Json = Analysis.Json

type t = {
  oc : out_channel;
  mutex : Mutex.t;
  sample : int; (* write every [sample]-th entry; >= 1 *)
  seq : int Atomic.t;
}

let m_lines = Obs.Metrics.counter "serve.access_log.lines"
let m_sampled_out = Obs.Metrics.counter "serve.access_log.sampled_out"

let create ~path ~sample =
  {
    oc = open_out_gen [ Open_append; Open_creat ] 0o644 path;
    mutex = Mutex.create ();
    sample = max 1 sample;
    seq = Atomic.make 0;
  }

let close t = Mutex.protect t.mutex (fun () -> close_out_noerr t.oc)

(* [outcome] is the response disposition ("ok", "failed", "timeout",
   "overloaded", ...); [cache] is "hit", "miss" or "" for uncacheable
   ops; [tier] is "static"/"exact" for profile-class ops, else "". *)
let log t ~proc ~id ~op ~app ~arch ~tier ~cache ~outcome ~wait_ns ~run_ns
    ?trace_id () =
  let n = Atomic.fetch_and_add t.seq 1 in
  if n mod t.sample <> 0 then Obs.Metrics.incr m_sampled_out
  else begin
    Obs.Metrics.incr m_lines;
    let opt k v = match v with "" -> [] | s -> [ (k, Json.String s) ] in
    let line =
      Json.to_string
        (Json.Obj
           ([ ("ts", Json.Float (Unix.gettimeofday ()));
              ("proc", Json.String proc);
              ("id", id);
              ("op", Json.String op) ]
           @ opt "app" app @ opt "arch" arch @ opt "tier" tier
           @ opt "cache" cache
           @ [ ("outcome", Json.String outcome);
               ("wait_ns", Json.Int wait_ns);
               ("run_ns", Json.Int run_ns);
               ("total_ns", Json.Int (wait_ns + run_ns)) ]
           @ opt "trace_id" (Option.value trace_id ~default:"")))
    in
    Mutex.protect t.mutex (fun () ->
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc)
  end
