(* Two-tier content-addressed result cache.

   Tier 1 is an in-memory LRU mapping a result key (a hex digest from
   {!Advisor.result_key}) to the already-serialized JSON of a response
   [result] field, bounded by entry count and total payload bytes.
   Tier 2 is an optional on-disk store (one file per entry) that
   survives daemon restarts: stores write through to disk, startup
   reloads the most recent entries up to the memory bounds, and a
   memory miss falls back to a disk read before being declared a miss.

   Serving cached bytes instead of re-simulating is correct because
   every cacheable result is deterministic (the golden-metric tests pin
   this) and the key covers everything that can change the bytes — see
   [Advisor.result_key].

   Corruption tolerance: cache files are validated by a header carrying
   the payload digest and length.  Truncated or garbage files are
   skipped with a logged warning and counted, never raised — a damaged
   cache directory must not take the daemon down.

   Domain safety: one mutex guards the table, the LRU list and the
   disk I/O; entries are immutable strings, so hits escape the lock by
   value. *)

type config = {
  max_entries : int;
  max_bytes : int; (* sum of payload bytes held in memory *)
  dir : string option; (* disk tier root; None = memory only *)
}

let default_config =
  { max_entries = 512; max_bytes = 64 * 1024 * 1024; dir = None }

(* ----- metrics ----- *)

let m_hits = Obs.Metrics.counter "serve.cache.hits"
let m_misses = Obs.Metrics.counter "serve.cache.misses"
let m_evictions = Obs.Metrics.counter "serve.cache.evictions"
let m_stores = Obs.Metrics.counter "serve.cache.stores"
let m_loads = Obs.Metrics.counter "serve.cache.loads"
let m_corrupt = Obs.Metrics.counter "serve.cache.corrupt"
let m_entries = Obs.Metrics.gauge "serve.cache.entries"
let m_bytes = Obs.Metrics.gauge "serve.cache.bytes"

(* ----- the LRU list (intrusive, most-recent at head) ----- *)

type node = {
  key : string;
  data : string;
  mutable prev : node option; (* towards the head / most recent *)
  mutable next : node option; (* towards the tail / eviction end *)
}

type t = {
  cfg : config;
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable bytes : int;
}

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let publish_gauges t =
  Obs.Metrics.set_gauge m_entries (float_of_int (Hashtbl.length t.table));
  Obs.Metrics.set_gauge m_bytes (float_of_int t.bytes)

(* Drop least-recently-used entries until both bounds hold.  Disk files
   are kept: the persistence tier intentionally outlives the memory
   bound, so evicted entries come back as disk hits (or on restart). *)
let evict_to_bounds t =
  let over () =
    Hashtbl.length t.table > t.cfg.max_entries || t.bytes > t.cfg.max_bytes
  in
  while over () && t.tail <> None do
    match t.tail with
    | None -> ()
    | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.bytes <- t.bytes - String.length n.data;
      Obs.Metrics.incr m_evictions
  done

(* Callers hold the lock. *)
let insert t key data =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
    unlink t old;
    Hashtbl.remove t.table key;
    t.bytes <- t.bytes - String.length old.data
  | None -> ());
  let n = { key; data; prev = None; next = None } in
  Hashtbl.replace t.table key n;
  push_front t n;
  t.bytes <- t.bytes + String.length data;
  evict_to_bounds t;
  publish_gauges t

(* ----- the disk tier ----- *)

(* One file per entry under [dir], named by a digest of the key (keys
   are already hex digests, but the indirection keeps any key
   filesystem-safe).  Format:

     cudaadvisor-rescache 1 <payload-md5-hex> <payload-length>\n
     <key>\n
     <payload bytes>

   Validation checks the magic, the stored key, the length and the
   digest, so truncation and bit rot are both caught. *)

let magic = "cudaadvisor-rescache 1"

let file_of_key dir key =
  Filename.concat dir (Digest.to_hex (Digest.string key))

let encode_entry ~key data =
  Printf.sprintf "%s %s %d\n%s\n%s" magic
    (Digest.to_hex (Digest.string data))
    (String.length data) key data

(* [Ok (key, payload)] or [Error reason]; never raises. *)
let decode_entry content =
  match String.index_opt content '\n' with
  | None -> Error "no header line"
  | Some hdr_end -> (
    let header = String.sub content 0 hdr_end in
    match String.split_on_char ' ' header with
    | [ m1; m2; digest; len_s ] when m1 ^ " " ^ m2 = magic -> (
      match int_of_string_opt len_s with
      | None -> Error "bad length field"
      | Some len -> (
        match String.index_from_opt content (hdr_end + 1) '\n' with
        | None -> Error "no key line"
        | Some key_end ->
          let key = String.sub content (hdr_end + 1) (key_end - hdr_end - 1) in
          if String.length content - key_end - 1 <> len then
            Error "payload length mismatch (truncated?)"
          else
            let payload = String.sub content (key_end + 1) len in
            if Digest.to_hex (Digest.string payload) <> digest then
              Error "payload digest mismatch"
            else Ok (key, payload)))
    | _ -> Error "bad header")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publication: a crash mid-write leaves a .tmp file the loader
   ignores, never a half-written entry under a valid name. *)
let write_entry dir key data =
  let final = file_of_key dir key in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (encode_entry ~key data);
     close_out oc;
     Sys.rename tmp final
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let load_file ~expect_key path =
  match read_file path with
  | exception Sys_error msg -> Error ("unreadable: " ^ msg)
  | exception End_of_file -> Error "unreadable: truncated"
  | content -> (
    match decode_entry content with
    | Ok (key, payload)
      when (match expect_key with Some k -> k = key | None -> true) ->
      Ok (key, payload)
    | Ok _ -> Error "key mismatch"
    | Error reason -> Error reason)

(* Reload the newest entries into memory, up to the memory bounds.
   Files are visited newest-first so the survivors are the most
   recently stored, then inserted oldest-first so LRU order matches
   store order. *)
let load_dir t dir =
  let files =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | names ->
      names
      |> Array.to_list
      |> List.filter (fun n -> not (Filename.check_suffix n ".tmp"))
      |> List.filter_map (fun n ->
             let p = Filename.concat dir n in
             match Unix.stat p with
             | { Unix.st_kind = Unix.S_REG; st_mtime; _ } -> Some (st_mtime, p)
             | _ -> None
             | exception Unix.Unix_error _ -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> List.map snd
      |> Array.of_list
  in
  let kept = ref [] in
  let kept_bytes = ref 0 in
  Array.iter
    (fun path ->
      if
        List.length !kept < t.cfg.max_entries
        && !kept_bytes <= t.cfg.max_bytes
      then
        match load_file ~expect_key:None path with
        | Ok (key, payload) ->
          kept := (key, payload) :: !kept;
          kept_bytes := !kept_bytes + String.length payload
        | Error reason ->
          Obs.Metrics.incr m_corrupt;
          Obs.Log.warn "rescache" "skipping cache file %s: %s" path reason)
    files;
  (* !kept is newest..oldest reversed by consing: it is oldest-first *)
  List.iter
    (fun (key, payload) ->
      insert t key payload;
      Obs.Metrics.incr m_loads)
    !kept

let create cfg =
  let t =
    {
      cfg;
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      head = None;
      tail = None;
      bytes = 0;
    }
  in
  (match cfg.dir with
  | None -> ()
  | Some dir ->
    (* mkdir -p: a fleet shard's tier lives at <cache-dir>/shard-<i>,
       so the parent may not exist yet either *)
    let rec mkdir_p d =
      if not (Sys.file_exists d) then begin
        let parent = Filename.dirname d in
        if parent <> d then mkdir_p parent;
        try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    mkdir_p dir;
    Mutex.protect t.lock (fun () -> load_dir t dir));
  t

(* ----- lookups and stores ----- *)

let find t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
        unlink t n;
        push_front t n;
        Obs.Metrics.incr m_hits;
        Some n.data
      | None -> (
        (* memory miss: the disk tier may still have it (evicted, or
           written by a previous incarnation past the startup bounds) *)
        match t.cfg.dir with
        | None ->
          Obs.Metrics.incr m_misses;
          None
        | Some dir -> (
          let path = file_of_key dir key in
          if not (Sys.file_exists path) then begin
            Obs.Metrics.incr m_misses;
            None
          end
          else
            match load_file ~expect_key:(Some key) path with
            | Ok (_, payload) ->
              insert t key payload;
              Obs.Metrics.incr m_loads;
              Obs.Metrics.incr m_hits;
              Some payload
            | Error reason ->
              Obs.Metrics.incr m_corrupt;
              Obs.Log.warn "rescache" "skipping cache file %s: %s" path reason;
              Obs.Metrics.incr m_misses;
              None)))

let store t key data =
  Mutex.protect t.lock (fun () ->
      insert t key data;
      Obs.Metrics.incr m_stores;
      match t.cfg.dir with
      | None -> ()
      | Some dir -> (
        try write_entry dir key data
        with e ->
          (* a full or read-only disk degrades the tier, not the daemon *)
          Obs.Log.warn "rescache" "failed to persist cache entry: %s"
            (Printexc.to_string e)))

let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let bytes t = Mutex.protect t.lock (fun () -> t.bytes)
