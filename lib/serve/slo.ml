(* Per-op latency SLOs with error-budget burn accounting.

   Each op gets a fixed total-latency target (queue wait included) and
   a 99% objective: up to 1% of requests may miss the target before the
   error budget is spent.  Every finished request is checked against
   its op's target; misses bump a [serve.slo.<op>.breach] counter, and
   the fleet `fleet` status derives the burn ratio from that counter
   and the per-op request histogram — burn < 1 means within budget,
   burn >= 1 means the budget is spent over the daemon's lifetime.

   Targets are deliberately loose (they bound tail pain on a loaded
   1-core container, not the hot-cache fast path); ops with unbounded
   legitimate latency (sleep is client-chosen) have no target. *)

module Metrics = Obs.Metrics

(* Fraction of requests allowed to miss the target. *)
let objective = 0.99
let budget_fraction = 1. -. objective

let default_targets_ms =
  [ ("ping", 50);
    ("list", 50);
    ("metrics", 500);
    ("metrics_raw", 500);
    ("metrics_text", 500);
    ("fleet", 500);
    ("profile_fast", 250);
    ("compile", 60_000);
    ("profile", 120_000);
    ("check", 180_000);
    ("bypass", 300_000);
    ("trace", 300_000) ]

let target_ms op = List.assoc_opt op default_targets_ms

let breaches op = Metrics.counter ("serve.slo." ^ op ^ ".breach")

(* Record one finished request: bump the breach counter when the
   total latency missed the op's target.  No-op for untargeted ops. *)
let observe ~op ~total_ns =
  match target_ms op with
  | None -> ()
  | Some t -> if total_ns > t * 1_000_000 then Metrics.incr (breaches op)

(* Burn ratio over [requests] finished requests: breaches spent against
   the allowed (1 - objective) fraction.  1.0 = budget exactly spent. *)
let burn ~breaches ~requests =
  if requests <= 0 then 0.
  else float_of_int breaches /. (budget_fraction *. float_of_int requests)
