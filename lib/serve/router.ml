(* Request routing: one function per op, all reusing the Advisor front
   door and the `--json` report encoders, so a served response is
   byte-identical to the one-shot CLI's machine-readable output.

   Ops needing an application are validated *before* they are enqueued
   ([validate]), so a typo'd app name answers immediately instead of
   occupying a queue slot behind seconds-long simulations. *)

module Json = Analysis.Json

type outcome = (Json.t, string * string) result (* error = (code, message) *)

let known_ops =
  [ "ping"; "list"; "metrics"; "metrics_raw"; "metrics_text"; "sleep";
    "compile"; "profile"; "profile_fast"; "check"; "bypass"; "evaluate";
    "trace" ]

let needs_app op =
  List.mem op
    [ "compile"; "profile"; "profile_fast"; "check"; "bypass"; "evaluate";
      "trace" ]

(* Static-tier requests are answered by the IR-only estimator — no
   simulator launch, cheap enough for the intake domain.  [profile_fast]
   is sugar for [profile] with ["tier":"static"]. *)
let is_static (r : Protocol.request) =
  match r.op, r.tier with
  | "profile_fast", _ -> true
  | "profile", Some "static" -> true
  | _ -> false

(* The op name used for per-op latency histograms and SLO accounting:
   both spellings of a static-tier profile class as "profile_fast" (they
   share a latency profile and an answer cache), everything else as its
   own op. *)
let op_class (r : Protocol.request) = if is_static r then "profile_fast" else r.op

let resolve_app (r : Protocol.request) =
  match r.app with
  | None -> Error ("bad_request", Printf.sprintf "op %S needs an \"app\" field" r.op)
  | Some name -> (
    match Workloads.Registry.find_opt name with
    | Some w -> Ok w
    | None ->
      Error
        ( "unknown_app",
          Printf.sprintf "unknown application %S (op \"list\" enumerates them)"
            name ))

let resolve_arch (r : Protocol.request) =
  match Gpusim.Arch.of_name r.arch_name with
  | Some arch -> Ok arch
  | None ->
    Error
      ( "unknown_arch",
        Printf.sprintf "unknown architecture %S (expected one of %s)" r.arch_name
          (String.concat ", " Gpusim.Arch.known_names) )

(* The answer tiers a request may name.  [profile] accepts both
   ("exact" is the default); [profile_fast] is already the static tier,
   so naming "exact" on it contradicts the op; no other op is tiered. *)
let validate_tier (r : Protocol.request) : (unit, string * string) result =
  match r.op, r.tier with
  | _, None -> Ok ()
  | "profile", Some ("exact" | "static") -> Ok ()
  | "profile", Some other ->
    Error
      ( "bad_request",
        Printf.sprintf "field \"tier\" must be exact or static (got %S)" other )
  | "profile_fast", Some "static" -> Ok ()
  | "profile_fast", Some other ->
    Error
      ( "bad_request",
        Printf.sprintf "op \"profile_fast\" is the static tier (got tier %S)"
          other )
  | op, Some _ ->
    Error
      ("bad_request", Printf.sprintf "op %S does not take a \"tier\" field" op)

(* [bankmodel] charges simulated cycles, so it only means something on
   an exact-tier profile; an explicit [false] anywhere is a no-op. *)
let validate_bankmodel (r : Protocol.request) : (unit, string * string) result =
  match r.bankmodel with
  | None | Some false -> Ok ()
  | Some true ->
    if r.op = "profile" && not (is_static r) then Ok ()
    else
      Error
        ( "bad_request",
          "field \"bankmodel\" only applies to the exact profile tier" )

(* An evaluate batch resolved to the tournament engine's variant
   specs: names defaulted positionally ("v<index>") so every variant
   has a stable id, baseline defaulted to the first variant.  Shared
   by validation and dispatch so they cannot disagree. *)
let max_batch_variants = 64

let evaluate_plan (r : Protocol.request) :
    (Tune.Evaluate.spec list * string, string * string) result =
  let bad msg = Error ("bad_request", msg) in
  match r.variants with
  | None | Some [] ->
    bad "op \"evaluate\" needs a non-empty \"variants\" array"
  | Some vs when List.length vs > max_batch_variants ->
    bad
      (Printf.sprintf "too many variants (%d, max %d)" (List.length vs)
         max_batch_variants)
  | Some vs -> (
    let specs =
      List.mapi
        (fun i (v : Protocol.variant) ->
          { Tune.Evaluate.sp_name =
              Option.value v.Protocol.v_name ~default:(Printf.sprintf "v%d" i);
            sp_source = v.Protocol.v_source;
            sp_block_x = v.Protocol.v_block_x;
            sp_bypass_warps = v.Protocol.v_bypass_warps })
        vs
    in
    let bad_knob =
      List.find_map
        (fun (s : Tune.Evaluate.spec) ->
          match (s.sp_block_x, s.sp_bypass_warps) with
          | Some bx, _ when bx <= 0 ->
            Some
              (Printf.sprintf "variant %S: \"block_x\" must be positive"
                 s.sp_name)
          | _, Some bw when bw < 0 ->
            Some
              (Printf.sprintf "variant %S: \"bypass_warps\" must be >= 0"
                 s.sp_name)
          | _ -> None)
        specs
    in
    match bad_knob with
    | Some msg -> bad msg
    | None -> (
      let names = List.map (fun (s : Tune.Evaluate.spec) -> s.sp_name) specs in
      let dup =
        List.find_map
          (fun n ->
            if List.length (List.filter (String.equal n) names) > 1 then Some n
            else None)
          names
      in
      match dup with
      | Some n -> bad (Printf.sprintf "duplicate variant name %S" n)
      | None -> (
        let baseline = Option.value r.baseline ~default:(List.hd names) in
        if List.mem baseline names then Ok (specs, baseline)
        else
          bad
            (Printf.sprintf "baseline %S does not name a submitted variant"
               baseline))))

(* Cheap pre-enqueue validation: op known, tier sensible, app/arch
   resolvable.  The expensive work happens later on a worker domain. *)
let validate (r : Protocol.request) : (unit, string * string) result =
  if not (List.mem r.op known_ops) then
    Error
      ( "unknown_op",
        Printf.sprintf "unknown op %S (expected one of %s)" r.op
          (String.concat ", " known_ops) )
  else
    match validate_tier r with
    | Error _ as e -> e
    | Ok () ->
    match validate_bankmodel r with
    | Error _ as e -> e
    | Ok () -> (
      match resolve_arch r with
      | Error _ as e -> e
      | Ok _ -> (
        let app_ok =
          if needs_app r.op then
            match resolve_app r with Error e -> Error e | Ok _ -> Ok ()
          else Ok ()
        in
        match app_ok with
        | Error _ as e -> e
        | Ok () ->
          if r.op = "evaluate" then
            match evaluate_plan r with Error e -> Error e | Ok _ -> Ok ()
          else Ok ()))

(* ----- the ops ----- *)

let ping () =
  Ok
    (Json.Obj
       [ ("pong", Json.Bool true);
         ("uptime_ns", Json.Int (Obs.Clock.elapsed_ns ())) ])

let list_apps () =
  let names l = Json.List (List.map (fun (w : Workloads.Common.t) -> Json.String w.name) l) in
  Ok
    (Json.Obj
       [ ("apps", names Workloads.Registry.all);
         ("seeded", names Workloads.Registry.seeded);
         ("stress", names Workloads.Registry.stress);
         ("archs", Json.List (List.map (fun a -> Json.String a) Gpusim.Arch.known_names)) ])

let metrics () = Ok (Metricsenc.snapshot_json (Obs.Metrics.snapshot ()))
let metrics_raw () = Ok (Metricsenc.raw_json (Obs.Metrics.snapshot ()))
let metrics_text () = Ok (Metricsenc.text_json (Obs.Metrics.snapshot ()))

(* Diagnostic op: busy-wait politely for [ms], polling the same
   cancellation check the simulator does — exercising queueing,
   backpressure and timeouts without burning simulation cycles. *)
let sleep (r : Protocol.request) =
  match r.ms with
  | None -> Error ("bad_request", "op \"sleep\" needs an integer \"ms\" field")
  | Some ms ->
    let until = Obs.Clock.now_ns () + (max 0 ms * 1_000_000) in
    let rec wait () =
      Gpusim.Gpu.poll_cancel ();
      let left_ns = until - Obs.Clock.now_ns () in
      if left_ns > 0 then begin
        Unix.sleepf (Float.min 0.005 (float_of_int left_ns /. 1e9));
        wait ()
      end
    in
    wait ();
    Ok (Json.Obj [ ("slept_ms", Json.Int ms) ])

let compile (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* instrument =
    match Option.value r.instrument ~default:"none" with
    | "none" -> Ok None
    | "profile" -> Ok (Some Advisor.default_options)
    | "check" -> Ok (Some Advisor.check_options)
    | "all" -> Ok (Some Passes.Instrument.all)
    | other ->
      Error
        ( "bad_request",
          Printf.sprintf
            "field \"instrument\" must be none, profile, check or all (got %S)"
            other )
  in
  let compiled =
    Advisor.compile_source ?instrument ~file:w.Workloads.Common.source_file
      w.Workloads.Common.source
  in
  let kernels =
    List.filter_map
      (fun (name, f) -> if f.Ptx.Isa.is_kernel then Some (Json.String name) else None)
      compiled.Advisor.prog.Ptx.Isa.funcs
  in
  let hits, misses = Advisor.compile_cache_stats () in
  Ok
    (Json.Obj
       [ ("app", Json.String w.Workloads.Common.name);
         ("functions", Json.Int (List.length compiled.Advisor.prog.Ptx.Isa.funcs));
         ("kernels", Json.List kernels);
         ("instrumented", Json.Bool (compiled.Advisor.manifest <> None));
         ( "compile_cache",
           Json.Obj [ ("hits", Json.Int hits); ("misses", Json.Int misses) ] ) ])

let profile (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* arch = resolve_arch r in
  let bankmodel = Option.value r.bankmodel ~default:false in
  let session = Advisor.profile ~bankmodel ~arch ?scale:r.scale w in
  (* The bank-conflict section rides only on bank-model requests, so
     default-profile response bytes are unchanged by the feature. *)
  let bank_conflict =
    if bankmodel then Some (Advisor.bank_conflict session) else None
  in
  Ok
    (Analysis.Report.of_profile ?bank_conflict ~app:w.Workloads.Common.name
       ~arch_name:arch.Gpusim.Arch.name ~line_size:arch.Gpusim.Arch.line_size
       session.Advisor.profiler)

(* The static tier: an IR-only estimate with zero simulator launches.
   Serialization-stable like every other op, so it caches the same
   way. *)
let profile_static (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* arch = resolve_arch r in
  Ok (Advisor.estimate_json ~arch w)

let check (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* arch = resolve_arch r in
  let report = Advisor.check ~arch ?scale:r.scale w in
  Ok (Advisor.check_report_json report)

let bypass (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* arch = resolve_arch r in
  (* default to no intra-request fan-out: the whole sweep then runs on
     the worker's own domain, where the request deadline is polled *)
  let domains = Option.value r.domains ~default:1 in
  let b = Advisor.bypass_study ?scale:r.scale ~domains ~arch w in
  Ok
    (Analysis.Report.bypass_json ~app:b.Advisor.app ~arch_name:b.Advisor.arch_name
       ~warps_per_cta:b.Advisor.warps_per_cta
       ~baseline_cycles:b.Advisor.baseline_cycles ~sweep:b.Advisor.sweep
       ~oracle_warps:b.Advisor.oracle_warps ~oracle_cycles:b.Advisor.oracle_cycles
       ~predicted_warps:b.Advisor.predicted_warps
       ~predicted_cycles:b.Advisor.predicted_cycles)

(* The tournament op: evaluate an N-variant batch through the tuning
   engine.  The batch itself is never cached (its bytes depend on the
   variant mix), but each variant's result is, under its own
   content-addressed sub-key — [cache] is the server's result cache,
   threaded down so resubmitted variants cost zero simulator
   launches.  Stress on the variants list, not this process: like
   [bypass], the batch defaults to the worker's own domain so the
   request deadline keeps being polled between variants. *)
let evaluate ?cache (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* arch = resolve_arch r in
  let* specs, baseline = evaluate_plan r in
  let domains = Option.value r.domains ~default:1 in
  let lookup = Option.map (fun c key -> Rescache.find c key) cache in
  let store = Option.map (fun c key raw -> Rescache.store c key raw) cache in
  Ok
    (Tune.Evaluate.run_batch ~domains ?lookup ?store ?scale:r.scale ~baseline
       ~arch w specs)

(* Self-profiling run: turn tracing on (process-wide — spans from
   concurrent requests share the buffers), profile the app with the
   standard analyses, optionally export the accumulated Chrome trace. *)
let trace (r : Protocol.request) =
  let ( let* ) = Result.bind in
  let* w = resolve_app r in
  let* arch = resolve_arch r in
  Obs.Trace.enable ();
  let session = Advisor.profile ~arch ?scale:r.scale w in
  ignore (Advisor.reuse_distance session);
  ignore (Advisor.mem_divergence session);
  ignore (Advisor.branch_divergence session);
  let out_field =
    match r.out with
    | None -> []
    | Some file ->
      Obs.Trace.export_chrome_to_file file;
      [ ("out", Json.String file) ]
  in
  Ok
    (Json.Obj
       ([ ("app", Json.String w.Workloads.Common.name);
          ("span_events", Json.Int (Obs.Trace.event_count ()));
          ("dropped", Json.Int (Obs.Trace.dropped_count ())) ]
       @ out_field))

(* [cache] is the server's result cache, used only by ops that manage
   sub-entries themselves (evaluate); whole-result caching of the other
   ops stays in the server's intake/completion path. *)
let dispatch ?cache (r : Protocol.request) : outcome =
  if is_static r then profile_static r
  else
    match r.op with
    | "ping" -> ping ()
    | "list" -> list_apps ()
    | "metrics" -> metrics ()
    | "metrics_raw" -> metrics_raw ()
    | "metrics_text" -> metrics_text ()
    | "sleep" -> sleep r
    | "compile" -> compile r
    | "profile" -> profile r
    | "check" -> check r
    | "bypass" -> bypass r
    | "evaluate" -> evaluate ?cache r
    | "trace" -> trace r
    | op -> Error ("unknown_op", Printf.sprintf "unknown op %S" op)
