(** Binary min-heap keyed by integer priority: the simulator's event
    queue of ready warps. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> int -> 'a -> unit

(** Pop the minimum-key element. *)
val pop : 'a t -> (int * 'a) option

(** Minimum key currently in the heap; [max_int] when empty. *)
val min_key : 'a t -> int

(** [run_ahead_ok t k] is [true] iff [push t k v] immediately followed
    by [pop t] would return [(k, v)] and leave the heap's internal
    arrangement bit-identical to its current state.  Read-only and
    O(log n): callers may then skip the push/pop pair without
    perturbing any future pop order, including ties. *)
val run_ahead_ok : 'a t -> int -> bool
