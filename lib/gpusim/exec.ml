(* Functional + timing execution of warp instructions over the
   predecoded program form ([Ptx.Isa.dinst]).  Lanes of a warp execute
   in lock-step under the active mask of the top SIMT-stack entry;
   memory instructions are coalesced into cache-line transactions and
   timed through the L1/MSHR/L2/DRAM hierarchy.

   This is the innermost loop of every experiment, so the hot arms
   avoid per-lane closures and boxing: masks are iterated inline,
   operands are the pre-split [dop] form, and register-file accesses
   use the flat unchecked accessors ([Decode] validated the indices). *)

open Machine

exception Trap of { kernel : string; pc : int; loc : Bitc.Loc.t; msg : string }

type ctx = {
  arch : Arch.t;
  prog : Ptx.Isa.prog;
  dec : Ptx.Isa.decoded; (* predecoded program, for call targets *)
  kernel : string;
  devmem : Devmem.t;
  l2 : Cache.t;
  sink : Hookev.sink;
  stats : Stats.t;
  grid : int * int;
  block : int * int;
  l1_enabled : bool;
  (* shared bandwidth queues: next cycle at which the L2 / DRAM can
     accept another transaction.  Thrashing saturates these, which is
     what makes L1 hits (and bypassing) worth anything. *)
  l2_free : int ref;
  dram_free : int ref;
  (* trace-buffer cursor: instrumentation hooks serialize on a global
     atomic, the paper's first overhead source (Section 5) *)
  hook_free : int ref;
  (* per-launch scratch for the coalescing unit: active-lane addresses
     and the unique lines they touch.  Reused every memory instruction
     so the inner loop allocates nothing. *)
  addr_scratch : int array; (* 32 lanes *)
  line_scratch : int array; (* each access may straddle 2 lines *)
  (* shared-memory bank model: [bankcount] turns conflict detection on
     (instrumented runs and [~bankmodel] runs); [bankmodel] additionally
     charges the replays as issue cycles.  Native un-instrumented runs
     skip the whole path, keeping golden timings bit-identical. *)
  bankmodel : bool;
  bankcount : bool;
  bank_scratch : int array; (* active lanes' word indices, 32 lanes *)
  bank_count : int array; (* per-bank distinct-word counts *)
}

let make_scratch () = (Array.make 32 0, Array.make 64 0)

let trap ctx ~pc ~loc fmt =
  Printf.ksprintf (fun msg -> raise (Trap { kernel = ctx.kernel; pc; loc; msg })) fmt

(* Same-module copies of the {!Machine} register-file accessors.  The
   classic (non-flambda) inliner will not fold the cross-module
   originals into the interpreter arms — each register read was a real
   call — but it reliably inlines small same-module bodies.  The
   float-tagged paths are kept out of line so the hot bodies stay under
   the inlining budget; they are rare (a float register read as an int
   is a trap, an int register read as a float only happens for
   implicit coercions). *)

let ntz_table =
  let t = Bytes.make 37 '\000' in
  for i = 0 to 31 do
    Bytes.unsafe_set t ((1 lsl i) mod 37) (Char.chr i)
  done;
  t

(* Bit index of the isolated low bit [b] (a power of two); same scheme
   as {!Machine.ntz}. *)
let[@inline] ntz b = Char.code (Bytes.unsafe_get ntz_table (b mod 37))

let[@inline] popcount mask =
  let c = ref 0 in
  let m = ref mask in
  while !m <> 0 do
    incr c;
    m := !m land (!m - 1)
  done;
  !c

let fget_int_float frame i = Value.to_int (Value.F (Array.unsafe_get frame.regs_f i))

let[@inline] fget_int frame i =
  if Bytes.unsafe_get frame.regs_tag i = '\000' then Array.unsafe_get frame.regs_i i
  else fget_int_float frame i

let[@inline] fget_float frame i =
  if Bytes.unsafe_get frame.regs_tag i = '\001' then Array.unsafe_get frame.regs_f i
  else float_of_int (Array.unsafe_get frame.regs_i i)

let[@inline] fset_int frame i v =
  Bytes.unsafe_set frame.regs_tag i '\000';
  Array.unsafe_set frame.regs_i i v

let[@inline] fset_float frame i v =
  Bytes.unsafe_set frame.regs_tag i '\001';
  Array.unsafe_set frame.regs_f i v

(* ----- per-lane operand evaluation -----

   [base] is the lane index: register [r] of lane [l] lives at flat
   index [(r lsl 5) + l] (see the layout note on {!Machine.frame}).  The typed
   reads mirror [Value.to_int]/[Value.to_float] on the old boxed
   representation: a float immediate (or float register) read as an int
   traps, ints coerce to float implicitly. *)

let[@inline] dev_int (df : Ptx.Isa.dfunc) frame base (o : Ptx.Isa.dop) =
  if o.okind = 0 then fget_int frame ((o.onum lsl 5) + base)
  else if o.okind = 1 then o.onum
  else Value.to_int (Value.F (Array.unsafe_get df.fimms o.onum))

let[@inline] dev_float (df : Ptx.Isa.dfunc) frame base (o : Ptx.Isa.dop) =
  if o.okind = 0 then fget_float frame ((o.onum lsl 5) + base)
  else if o.okind = 1 then float_of_int o.onum
  else Array.unsafe_get df.fimms o.onum

let dev_value (df : Ptx.Isa.dfunc) frame base (o : Ptx.Isa.dop) : Value.t =
  if o.okind = 0 then
    let i = (o.onum lsl 5) + base in
    if Bytes.unsafe_get frame.regs_tag i = '\001' then
      Value.F (Array.unsafe_get frame.regs_f i)
    else Value.I (Array.unsafe_get frame.regs_i i)
  else if o.okind = 1 then Value.I o.onum
  else Value.F (Array.unsafe_get df.fimms o.onum)

(* Copy an operand into a destination register preserving its int/float
   identity (Mov, Selp, call arguments). *)
let[@inline] dstore (df : Ptx.Isa.dfunc) sframe sbase (o : Ptx.Isa.dop) dframe dbase
    dst =
  if o.okind = 0 then begin
    let si = (o.onum lsl 5) + sbase in
    if Bytes.unsafe_get sframe.regs_tag si = '\001' then
      fset_float dframe ((dst lsl 5) + dbase) (Array.unsafe_get sframe.regs_f si)
    else fset_int dframe ((dst lsl 5) + dbase) (Array.unsafe_get sframe.regs_i si)
  end
  else if o.okind = 1 then fset_int dframe ((dst lsl 5) + dbase) o.onum
  else fset_float dframe ((dst lsl 5) + dbase) (Array.unsafe_get df.fimms o.onum)

let first_lane mask =
  let rec go i = if i = 32 then invalid_arg "first_lane: empty mask" else if mask land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

(* Comparison identical to the polymorphic [compare] the interpreter
   historically used: total order with nan below everything. *)
let[@inline] int_cmp (x : int) y = if x < y then -1 else if x > y then 1 else 0

let[@inline] compare_vals (op : Bitc.Instr.cmp) c =
  match op with Eq -> c = 0 | Ne -> c <> 0 | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0

(* ----- local / shared byte buffers ----- *)

(* Load from a byte buffer straight into a register (no intermediate
   [Value.t]); store a value into a byte buffer likewise.  [di] is the
   destination's flat register index. *)

let[@inline] bytes_read_reg (buf : Bytes.t) ~addr ~width ~fl frame di =
  match width, fl with
  | 1, false -> fset_int frame di (Char.code (Bytes.get buf addr))
  | 4, false -> fset_int frame di (Int32.to_int (Bytes.get_int32_le buf addr))
  | 4, true -> fset_float frame di (Int32.float_of_bits (Bytes.get_int32_le buf addr))
  | 8, false -> fset_int frame di (Int64.to_int (Bytes.get_int64_le buf addr))
  | _ -> invalid_arg "bytes_read: unsupported width"

let[@inline] bytes_write_op df (buf : Bytes.t) ~addr ~width ~fl frame base src =
  match width, fl with
  | 1, false -> Bytes.set buf addr (Char.chr (dev_int df frame base src land 0xff))
  | 4, false -> Bytes.set_int32_le buf addr (Int32.of_int (dev_int df frame base src))
  | 4, true -> Bytes.set_int32_le buf addr (Int32.bits_of_float (dev_float df frame base src))
  | 8, false -> Bytes.set_int64_le buf addr (Int64.of_int (dev_int df frame base src))
  | _ -> invalid_arg "bytes_write: unsupported width"

(* ----- shared-memory bank conflicts ----- *)

(* Conflict shape of one shared access: [words.(0..n-1)] hold the active
   lanes' word indices (address / bank width).  A bank serializes one
   pass per *distinct* word mapped to it; lanes reading the same word
   are a broadcast and cost nothing.  Returns
   [(degree lsl 8) lor broadcast_lanes] — degree is the worst bank's
   pass count, broadcast_lanes the number of lanes whose word another
   lane also touches.  O(n^2) over n <= 32 lanes, allocation-free. *)
let conflict_shape ~banks (words : int array) n (bank_count : int array) =
  Array.fill bank_count 0 banks 0;
  let degree = ref 1 in
  let broadcast = ref 0 in
  for i = 0 to n - 1 do
    let w = Array.unsafe_get words i in
    let seen_before = ref false in
    let shares_word = ref false in
    for j = 0 to n - 1 do
      if j <> i && Array.unsafe_get words j = w then begin
        shares_word := true;
        if j < i then seen_before := true
      end
    done;
    if !shares_word then incr broadcast;
    if not !seen_before then begin
      let b = w mod banks in
      let c = Array.unsafe_get bank_count b + 1 in
      Array.unsafe_set bank_count b c;
      if c > !degree then degree := c
    end
  done;
  (!degree lsl 8) lor !broadcast

(* Count one shared access's conflicts (word indices already collected
   into [ctx.bank_scratch]), emit the per-site record to the profiler
   sink, and return the extra issue cycles — zero unless the opt-in
   [bankmodel] charges [replays * shared_replay]. *)
let shared_conflicts ctx (warp : warp) ~loc ~kind ~n ~active =
  if n < 2 then 0
  else begin
    let arch = ctx.arch in
    let packed =
      conflict_shape ~banks:arch.shared_banks ctx.bank_scratch n ctx.bank_count
    in
    let degree = packed lsr 8 in
    let broadcast = packed land 0xff in
    if broadcast > 0 then
      ctx.stats.shared_broadcasts <- ctx.stats.shared_broadcasts + 1;
    if degree <= 1 then 0
    else begin
      let replays = degree - 1 in
      ctx.stats.shared_conflict_accesses <-
        ctx.stats.shared_conflict_accesses + 1;
      ctx.stats.shared_conflict_replays <-
        ctx.stats.shared_conflict_replays + replays;
      ctx.sink
        (Hookev.Conflict
           { kernel = ctx.kernel; cta = warp.cta.cta_linear;
             warp = warp.warp_id; loc; kind; degree; replays;
             broadcast_lanes = broadcast; active_lanes = popcount active });
      if ctx.bankmodel then replays * arch.shared_replay else 0
    end
  end

(* ----- timing of global transactions ----- *)

(* Time one fill from the L2/DRAM side issued at [now]: accounts for the
   shared bandwidth queues and returns the added latency beyond the
   L1-miss base path. *)
let l2_side_fill ctx ?(sector = false) ~scale ~now line_addr =
  let arch = ctx.arch in
  (* 32 B sector requests ride the wide L2 crossbar for free; full-line
     fills consume an L2 queue slot *)
  let start =
    if sector then now
    else begin
      let s = max now !(ctx.l2_free) in
      ctx.l2_free := s + arch.l2_service;
      s
    end
  in
  if Cache.access_read ctx.l2 line_addr then start - now
  else begin
    let dram_start = max start !(ctx.dram_free) in
    ctx.dram_free := dram_start + max 1 (arch.dram_service / scale);
    dram_start - now + (arch.dram_latency - arch.l2_latency)
  end

(* Time one read transaction on line [line_addr] issued at [now];
   returns data-arrival time.  [granularity] is the transaction size in
   bytes: full L1 lines for caching loads, 32 B sectors for bypassed
   ones, which scales the bandwidth they consume.  [cache_l1] selects
   the L1 path (a caching load with L1 enabled). *)
let time_read_txn ctx (sm : sm) ~cache_l1 ~granularity ~now line_addr =
  let arch = ctx.arch in
  if cache_l1 then begin
    (* serial tag-port lookup: divergent accesses queue here *)
    let at = max now sm.l1_port_free in
    sm.l1_port_free <- at + 1;
    if Cache.access_read sm.l1 line_addr then at + arch.l1_latency
    else
      let latency start =
        arch.l1_latency + Arch.l1_miss_to_l2_latency arch
        + l2_side_fill ctx ~scale:1 ~now:start line_addr
      in
      Mshr.acquire sm.mshr ~line:(line_addr / arch.line_size) ~now:at ~latency
  end
  else begin
    (* bypass L1: straight to L2/DRAM through the TPC-level sector path,
       which has ample bandwidth for 32 B sectors *)
    let scale = max 1 (arch.line_size / max 1 granularity) in
    now + Arch.l1_miss_to_l2_latency arch
    + l2_side_fill ctx ~scale ~sector:(scale > 1) ~now line_addr
  end

(* Stores are write-through fire-and-forget: they do not stall the warp
   but they evict L1/L2 copies and consume shared bandwidth. *)
let time_write_txn ctx (sm : sm) ~now line_addr =
  if ctx.l1_enabled then begin
    (* write-evict probe occupies the tag port too *)
    sm.l1_port_free <- max now sm.l1_port_free + 1;
    Cache.access_write sm.l1 line_addr
  end;
  Cache.access_write ctx.l2 line_addr;
  let start = max now !(ctx.l2_free) in
  ctx.l2_free := start + ctx.arch.l2_service;
  let dram_start = max start !(ctx.dram_free) in
  ctx.dram_free := dram_start + ctx.arch.dram_service

(* ----- special registers ----- *)

let sreg_value ctx (warp : warp) lane (which : Bitc.Instr.special) =
  let bx, by = ctx.block in
  let gx, gy = ctx.grid in
  ignore by;
  let lin = (warp.warp_id * 32) + lane in
  match which with
  | Tid_x -> lin mod bx
  | Tid_y -> lin / bx
  | Ctaid_x -> warp.cta.cta_x
  | Ctaid_y -> warp.cta.cta_y
  | Ntid_x -> fst ctx.block
  | Ntid_y -> snd ctx.block
  | Nctaid_x -> gx
  | Nctaid_y -> gy
  | Warpid -> warp.warp_id

(* ----- SIMT stack maintenance ----- *)

(* Pop reconverged entries and completed frames until the warp is ready
   to execute, finished, or at a barrier. *)
let rec normalize (warp : warp) =
  match warp.frames with
  | [] -> ()
  | frame :: rest -> (
    match frame.stack with
    | [] ->
      (* every lane returned: pop the frame, deliver return values *)
      warp.frames <- rest;
      (match rest, frame.ret_dst with
      | caller :: _, Some dst ->
        iter_lanes frame.init_mask (fun lane ->
            set_reg_value caller lane dst frame.retvals.(lane))
      | _, _ -> ());
      (* no reference to the popped frame survives this point *)
      release_frame frame;
      if rest = [] then begin
        warp.status <- Finished;
        warp.cta.finished_warps <- warp.cta.finished_warps + 1
      end
      else normalize warp
    | entry :: below ->
      if entry.pc = entry.rpc then begin
        frame.stack <- below;
        normalize warp
      end)

(* ----- hook dispatch ----- *)

let dispatch_hook ctx (warp : warp) (frame : frame) ~pc ~mask ~issue
    ~(hook : Ptx.Isa.dhook) =
  let df = frame.dfunc in
  let loc = df.fsrc.locs.(pc) in
  let fl = first_lane mask in
  let fbase = fl in
  let evi op = dev_int df frame fbase op in
  let cta = warp.cta.cta_linear in
  let event =
    match hook with
    | Ptx.Isa.DH_mem { addr; bits; kind } ->
      let accesses = Array.make (popcount mask) (0, 0) in
      let k = ref 0 in
      iter_lanes mask (fun lane ->
          accesses.(!k) <- (lane, dev_int df frame lane addr);
          incr k);
      Some
        (Hookev.Mem
           { kernel = ctx.kernel; cta; warp = warp.warp_id; loc; bits = evi bits;
             kind = evi kind; accesses })
    | Ptx.Isa.DH_bb { bb_id } ->
      Some
        (Hookev.Bb
           { kernel = ctx.kernel; cta; warp = warp.warp_id; bb_id = evi bb_id; loc;
             active_mask = mask; live_mask = warp.live_mask })
    | Ptx.Isa.DH_arith { code; a; b } ->
      let operands = Array.make (popcount mask) (0, 0., 0.) in
      let k = ref 0 in
      iter_lanes mask (fun lane ->
          let base = lane in
          operands.(!k) <- (lane, dev_float df frame base a, dev_float df frame base b);
          incr k);
      Some
        (Hookev.Arith
           { kernel = ctx.kernel; cta; warp = warp.warp_id; code = evi code; loc;
             operands })
    | Ptx.Isa.DH_call { callsite; push } ->
      Some
        (Hookev.Call
           { kernel = ctx.kernel; cta; warp = warp.warp_id;
             callsite = evi callsite; mask; push })
    | Ptx.Isa.DH_shared { addr; bits; kind } ->
      let accesses = Array.make (popcount mask) (0, 0) in
      let k = ref 0 in
      iter_lanes mask (fun lane ->
          accesses.(!k) <- (lane, dev_int df frame lane addr);
          incr k);
      Some
        (Hookev.Shared
           { kernel = ctx.kernel; cta; warp = warp.warp_id; loc; bits = evi bits;
             kind = evi kind; accesses })
    | Ptx.Isa.DH_bar { bar_id } ->
      Some
        (Hookev.Barrier
           { kernel = ctx.kernel; cta; warp = warp.warp_id; bar_id = evi bar_id;
             loc; mask })
    | Ptx.Isa.DH_bad { hname } ->
      trap ctx ~pc ~loc "unknown or malformed hook %s" hname
  in
  Option.iter ctx.sink event;
  ctx.stats.hook_calls <- ctx.stats.hook_calls + 1;
  (* overhead model (Section 5): the inserted analysis function performs
     one atomic trace-buffer append per active thread — serialized
     globally — plus the entry's global-memory traffic *)
  let h = ctx.arch.hook in
  let busy = h.hook_base + (h.hook_per_lane * popcount mask) in
  let start = max issue !(ctx.hook_free) in
  ctx.hook_free := start + busy;
  start - issue + busy + h.hook_mem_txn

(* ----- one warp instruction ----- *)

(* Execute the next instruction of [warp] on [sm].

   Timing model: instructions issue in program order once their source
   registers are ready (scoreboard).  ALU results become ready after the
   unit latency while the warp keeps issuing (pipelined); global loads
   mark their destination ready when the fill arrives, so independent
   work — including further loads — overlaps outstanding misses
   (memory-level parallelism).  Local/shared accesses and control flow
   serialize the warp. *)
let step ctx (sm : sm) (warp : warp) =
  normalize warp;
  match warp.frames with
  | [] -> ()
  | frame :: _ -> (
    let entry = List.hd frame.stack in
    let pc = entry.pc in
    let mask = entry.mask in
    let df = frame.dfunc in
    let inst = Array.unsafe_get df.dbody pc in
    (* scoreboard: cycle at which every source register is ready *)
    let srcs_ready =
      let srcs = Array.unsafe_get df.dsrcs pc in
      let rr = frame.reg_ready in
      let acc = ref 0 in
      for j = 0 to Array.length srcs - 1 do
        let t = Array.unsafe_get rr (Array.unsafe_get srcs j) in
        if t > !acc then acc := t
      done;
      !acc
    in
    let base_t = max warp.ready_at sm.next_issue in
    if srcs_ready > base_t then
      (* operands still in flight: requeue without consuming an issue
         slot so other warps fill the latency *)
      warp.ready_at <- srcs_ready
    else begin
    let issue = base_t in
    sm.next_issue <- issue + ctx.arch.issue_gap;
    warp.insts <- warp.insts + 1;
    ctx.stats.warp_insts <- ctx.stats.warp_insts + 1;
    ctx.stats.thread_insts <- ctx.stats.thread_insts + popcount mask;
    let arch = ctx.arch in
    let rr = frame.reg_ready in
    (* apply a predicate register to the active mask *)
    let masked pr pexpect =
      if pr < 0 then mask
      else begin
        let acc = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let bit = !m land (- !m) in
          m := !m lxor bit;
          if (fget_int frame ((pr lsl 5) + ntz bit) <> 0) = pexpect then
            acc := !acc lor bit
        done;
        !acc
      end
    in
    match inst with
    | Ptx.Isa.DMov { dst; src } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        dstore df frame base src frame base dst
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + 1);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DIop { op; dst; a; b } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let x = dev_int df frame base a and y = dev_int df frame base b in
        let v =
          match op with
          | Bitc.Instr.Add -> x + y
          | Sub -> x - y
          | Mul -> x * y
          | Div ->
            if y = 0 then trap ctx ~pc ~loc:df.fsrc.locs.(pc) "integer division by zero"
            else x / y
          | Rem ->
            if y = 0 then trap ctx ~pc ~loc:df.fsrc.locs.(pc) "integer remainder by zero"
            else x mod y
          | And -> x land y
          | Or -> x lor y
          | Xor -> x lxor y
          | Shl -> x lsl (y land 31)
          | Lshr -> x lsr (y land 31)
          | Min -> min x y
          | Max -> max x y
        in
        fset_int frame ((dst lsl 5) + base) v
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + arch.alu_latency);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DFop { op; dst; a; b } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let x = dev_float df frame base a and y = dev_float df frame base b in
        let v =
          match op with
          | Bitc.Instr.Add -> x +. y
          | Sub -> x -. y
          | Mul -> x *. y
          | Div -> x /. y
          | Min -> Float.min x y
          | Max -> Float.max x y
          | Rem | And | Or | Xor | Shl | Lshr ->
            trap ctx ~pc ~loc:df.fsrc.locs.(pc) "bitwise operator on float operands"
        in
        fset_float frame ((dst lsl 5) + base) v
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + arch.alu_latency);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DUnop { op; dst; a; fl; sfu } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        (match op with
        | Bitc.Instr.Neg ->
          if fl then fset_float frame ((dst lsl 5) + base) (-.dev_float df frame base a)
          else fset_int frame ((dst lsl 5) + base) (-dev_int df frame base a)
        | Bitc.Instr.Not ->
          fset_int frame ((dst lsl 5) + base) (if dev_int df frame base a = 0 then 1 else 0)
        | Bitc.Instr.Int_to_float ->
          fset_float frame ((dst lsl 5) + base) (float_of_int (dev_int df frame base a))
        | Bitc.Instr.Float_to_int ->
          fset_int frame ((dst lsl 5) + base) (int_of_float (dev_float df frame base a))
        | Bitc.Instr.Sqrt -> fset_float frame ((dst lsl 5) + base) (sqrt (dev_float df frame base a))
        | Bitc.Instr.Exp -> fset_float frame ((dst lsl 5) + base) (exp (dev_float df frame base a))
        | Bitc.Instr.Log -> fset_float frame ((dst lsl 5) + base) (log (dev_float df frame base a))
        | Bitc.Instr.Fabs ->
          fset_float frame ((dst lsl 5) + base) (Float.abs (dev_float df frame base a)));
        ()
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + if sfu then arch.sfu_latency else arch.alu_latency);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DSetp { op; dst; a; b; fl } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let c =
          if fl then Float.compare (dev_float df frame base a) (dev_float df frame base b)
          else int_cmp (dev_int df frame base a) (dev_int df frame base b)
        in
        fset_int frame ((dst lsl 5) + base) (if compare_vals op c then 1 else 0)
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + arch.alu_latency);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DSelp { dst; cond; a; b } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let c = dev_int df frame base cond <> 0 in
        dstore df frame base (if c then a else b) frame base dst
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + arch.alu_latency);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DLd_local { dst; addr; width; fl; pr; pexpect } ->
      let active = masked pr pexpect in
      entry.pc <- pc + 1;
      let m = ref active in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let l = ntz bit in
        let base = l in
        let a = dev_int df frame base addr in
        bytes_read_reg frame.local.(l) ~addr:a ~width ~fl frame ((dst lsl 5) + base)
      done;
      Array.unsafe_set rr dst (issue + arch.alu_latency);
      warp.ready_at <- issue + arch.alu_latency
    | Ptx.Isa.DLd_shared { dst; addr; width; fl; pr; pexpect } ->
      let active = masked pr pexpect in
      entry.pc <- pc + 1;
      let shared = warp.cta.shared in
      let slen = Bytes.length shared in
      let counting = ctx.bankcount in
      let words = ctx.bank_scratch in
      let n = ref 0 in
      let m = ref active in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let a = dev_int df frame base addr in
        if a < 0 || a + width > slen then
          trap ctx ~pc ~loc:df.fsrc.locs.(pc)
            "shared load out of bounds: CTA %d warp %d lane %d reads [%d, \
             %d) of %d shared bytes"
            warp.cta.cta_linear warp.warp_id base a (a + width) slen;
        bytes_read_reg shared ~addr:a ~width ~fl frame ((dst lsl 5) + base);
        if counting then begin
          Array.unsafe_set words !n (a / arch.shared_bank_width);
          incr n
        end
      done;
      ctx.stats.shared_accesses <- ctx.stats.shared_accesses + 1;
      let extra =
        if counting then
          shared_conflicts ctx warp ~loc:df.fsrc.locs.(pc) ~kind:1 ~n:!n
            ~active
        else 0
      in
      Array.unsafe_set rr dst (issue + arch.shared_latency + extra);
      warp.ready_at <- issue + arch.shared_latency + extra
    | Ptx.Isa.DLd_global { dst; cg; addr; width; fl; pr; pexpect } ->
      let active = masked pr pexpect in
      entry.pc <- pc + 1;
      (* a fully predicated-off load must not touch the scoreboard:
         its twin with the complementary predicate owns [dst] *)
      if active = 0 then warp.ready_at <- issue + 1
      else begin
        let devmem = ctx.devmem in
        let scratch = ctx.addr_scratch in
        let n = ref 0 in
        (match width, fl with
        | 4, true ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            fset_float frame ((dst lsl 5) + base) (Devmem.read_f32 devmem a);
            scratch.(!n) <- a;
            incr n
          done
        | 1, false ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            fset_int frame ((dst lsl 5) + base) (Devmem.read_u8 devmem a);
            scratch.(!n) <- a;
            incr n
          done
        | 4, false ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            fset_int frame ((dst lsl 5) + base) (Devmem.read_i32 devmem a);
            scratch.(!n) <- a;
            incr n
          done
        | 8, false ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            fset_int frame ((dst lsl 5) + base) (Devmem.read_i64 devmem a);
            scratch.(!n) <- a;
            incr n
          done
        | _ ->
          let a = dev_int df frame (first_lane active) addr in
          raise (Devmem.Fault { addr = a; size = width; msg = "unsupported access width" }));
        let cache_l1 = (not cg) && ctx.l1_enabled in
        (* bypassed loads move 32 B sectors, not full L1 lines *)
        let granularity = if cache_l1 then arch.line_size else min 32 arch.line_size in
        let nlines =
          Coalesce.collect_unique_lines ~line_size:granularity ~width ~src:scratch
            ~off:0 ~n:!n ctx.line_scratch
        in
        ctx.stats.global_loads <- ctx.stats.global_loads + 1;
        ctx.stats.load_transactions <- ctx.stats.load_transactions + nlines;
        let arrival = ref issue in
        for k = 0 to nlines - 1 do
          arrival :=
            max !arrival
              (time_read_txn ctx sm ~cache_l1 ~granularity ~now:issue
                 (ctx.line_scratch.(k) * granularity))
        done;
        Array.unsafe_set rr dst !arrival;
        warp.ready_at <- issue + arch.alu_latency + ((nlines - 1) * arch.txn_issue)
      end
    | Ptx.Isa.DSt_local { addr; src; width; fl; pr; pexpect } ->
      let active = masked pr pexpect in
      entry.pc <- pc + 1;
      let m = ref active in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let l = ntz bit in
        let base = l in
        let a = dev_int df frame base addr in
        bytes_write_op df frame.local.(l) ~addr:a ~width ~fl frame base src
      done;
      warp.ready_at <- issue + arch.alu_latency
    | Ptx.Isa.DSt_shared { addr; src; width; fl; pr; pexpect } ->
      let active = masked pr pexpect in
      entry.pc <- pc + 1;
      let shared = warp.cta.shared in
      let slen = Bytes.length shared in
      let counting = ctx.bankcount in
      let words = ctx.bank_scratch in
      let n = ref 0 in
      let m = ref active in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let a = dev_int df frame base addr in
        if a < 0 || a + width > slen then
          trap ctx ~pc ~loc:df.fsrc.locs.(pc)
            "shared store out of bounds: CTA %d warp %d lane %d writes [%d, \
             %d) of %d shared bytes"
            warp.cta.cta_linear warp.warp_id base a (a + width) slen;
        bytes_write_op df shared ~addr:a ~width ~fl frame base src;
        if counting then begin
          Array.unsafe_set words !n (a / arch.shared_bank_width);
          incr n
        end
      done;
      ctx.stats.shared_accesses <- ctx.stats.shared_accesses + 1;
      let extra =
        if counting then
          shared_conflicts ctx warp ~loc:df.fsrc.locs.(pc) ~kind:2 ~n:!n
            ~active
        else 0
      in
      warp.ready_at <- issue + arch.shared_latency + extra
    | Ptx.Isa.DSt_global { addr; src; width; fl; pr; pexpect } ->
      let active = masked pr pexpect in
      entry.pc <- pc + 1;
      if active = 0 then warp.ready_at <- issue + 1
      else begin
        let devmem = ctx.devmem in
        let scratch = ctx.addr_scratch in
        let n = ref 0 in
        (match width, fl with
        | 1, false ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            Devmem.write_u8 devmem a (dev_int df frame base src land 0xff);
            scratch.(!n) <- a;
            incr n
          done
        | 4, false ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            Devmem.write_i32 devmem a (dev_int df frame base src);
            scratch.(!n) <- a;
            incr n
          done
        | 4, true ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            Devmem.write_f32 devmem a (dev_float df frame base src);
            scratch.(!n) <- a;
            incr n
          done
        | 8, false ->
          let m = ref active in
          while !m <> 0 do
            let bit = !m land (- !m) in
            m := !m lxor bit;
            let base = ntz bit in
            let a = dev_int df frame base addr in
            Devmem.write_i64 devmem a (dev_int df frame base src);
            scratch.(!n) <- a;
            incr n
          done
        | _ ->
          let a = dev_int df frame (first_lane active) addr in
          raise (Devmem.Fault { addr = a; size = width; msg = "unsupported access width" }));
        let nlines =
          Coalesce.collect_unique_lines ~line_size:arch.line_size ~width ~src:scratch
            ~off:0 ~n:!n ctx.line_scratch
        in
        for k = 0 to nlines - 1 do
          time_write_txn ctx sm ~now:issue (ctx.line_scratch.(k) * arch.line_size)
        done;
        ctx.stats.global_stores <- ctx.stats.global_stores + 1;
        ctx.stats.store_transactions <- ctx.stats.store_transactions + nlines;
        warp.ready_at <- issue + arch.alu_latency + ((nlines - 1) * arch.txn_issue)
      end
    | Ptx.Isa.DAtom { dst; addr; src; width; fl } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let base = ntz bit in
        let a = dev_int df frame base addr in
        (match width, fl with
        | 4, true ->
          let old = Devmem.read_f32 ctx.devmem a in
          Devmem.write_f32 ctx.devmem a (old +. dev_float df frame base src);
          fset_float frame ((dst lsl 5) + base) old
        | 1, false ->
          let old = Devmem.read_u8 ctx.devmem a in
          Devmem.write_u8 ctx.devmem a ((old + dev_int df frame base src) land 0xff);
          fset_int frame ((dst lsl 5) + base) old
        | 4, false ->
          let old = Devmem.read_i32 ctx.devmem a in
          Devmem.write_i32 ctx.devmem a (old + dev_int df frame base src);
          fset_int frame ((dst lsl 5) + base) old
        | 8, false ->
          let old = Devmem.read_i64 ctx.devmem a in
          Devmem.write_i64 ctx.devmem a (old + dev_int df frame base src);
          fset_int frame ((dst lsl 5) + base) old
        | _ ->
          raise (Devmem.Fault { addr = a; size = width; msg = "unsupported access width" }));
        time_write_txn ctx sm ~now:issue (a / arch.line_size * arch.line_size)
      done;
      ctx.stats.global_atomics <- ctx.stats.global_atomics + 1;
      entry.pc <- pc + 1;
      let cost = arch.atom_latency + (6 * (popcount mask - 1)) in
      Array.unsafe_set rr dst (issue + cost);
      warp.ready_at <- issue + cost
    | Ptx.Isa.DBra { target } ->
      entry.pc <- target;
      warp.ready_at <- issue + arch.branch_latency
    | Ptx.Isa.DCond_bra { pr; if_true; if_false; rpc } ->
      ctx.stats.branches <- ctx.stats.branches + 1;
      let mt = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        if fget_int frame ((pr lsl 5) + ntz bit) <> 0 then mt := !mt lor bit
      done;
      let mt = !mt in
      let mf = mask land lnot mt in
      if mf = 0 then entry.pc <- if_true
      else if mt = 0 then entry.pc <- if_false
      else begin
        ctx.stats.divergent_branches <- ctx.stats.divergent_branches + 1;
        entry.pc <- rpc;
        frame.stack <-
          { pc = if_true; mask = mt; rpc }
          :: { pc = if_false; mask = mf; rpc }
          :: frame.stack
      end;
      warp.ready_at <- issue + arch.branch_latency
    | Ptx.Isa.DCall { callee; args; ret_dst } ->
      let cdf = Array.unsafe_get ctx.dec.dfuncs callee in
      entry.pc <- pc + 1;
      let new_frame = make_frame cdf ~init_mask:mask ~ret_dst in
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let l = ntz bit in
        let base = l and cbase = l in
        for i = 0 to Array.length args - 1 do
          dstore df frame base (Array.unsafe_get args i) new_frame cbase i
        done
      done;
      Array.fill new_frame.reg_ready 0 (Array.length new_frame.reg_ready)
        (issue + arch.call_latency);
      warp.frames <- new_frame :: warp.frames;
      warp.ready_at <- issue + arch.call_latency
    | Ptx.Isa.DRet { v } ->
      iter_lanes mask (fun l ->
          frame.retvals.(l) <-
            (match v with
            | Some op -> dev_value df frame l op
            | None -> Value.zero));
      (match warp.frames with
      | _ :: caller :: _ -> (
        match frame.ret_dst with
        | Some dst -> caller.reg_ready.(dst) <- issue + arch.call_latency
        | None -> ())
      | _ -> ());
      frame.stack <- List.tl frame.stack;
      normalize warp;
      warp.ready_at <- issue + arch.call_latency
    | Ptx.Isa.DBar ->
      entry.pc <- pc + 1;
      ctx.stats.barriers <- ctx.stats.barriers + 1;
      warp.status <- At_barrier;
      warp.barrier_arrival <- issue + 1;
      warp.cta.at_barrier <- warp.cta.at_barrier + 1;
      warp.ready_at <- issue + 1
    | Ptx.Isa.DSreg { dst; which } ->
      let m = ref mask in
      while !m <> 0 do
        let bit = !m land (- !m) in
        m := !m lxor bit;
        let l = ntz bit in
        fset_int frame ((dst lsl 5) + l) (sreg_value ctx warp l which)
      done;
      entry.pc <- pc + 1;
      Array.unsafe_set rr dst (issue + 1);
      warp.ready_at <- issue + 1
    | Ptx.Isa.DHook { hook } ->
      (* instrumentation cost serializes the warp: the inserted analysis
         call performs atomics and trace-buffer writes inline *)
      let cost = dispatch_hook ctx warp frame ~pc ~mask ~issue ~hook in
      entry.pc <- pc + 1;
      warp.ready_at <- issue + cost
    end)
