(* Functional + timing execution of one warp instruction.  Lanes of a
   warp execute in lock-step under the active mask of the top SIMT-stack
   entry; memory instructions are coalesced into cache-line transactions
   and timed through the L1/MSHR/L2/DRAM hierarchy. *)

open Machine

exception Trap of { kernel : string; pc : int; loc : Bitc.Loc.t; msg : string }

type ctx = {
  arch : Arch.t;
  prog : Ptx.Isa.prog;
  kernel : string;
  devmem : Devmem.t;
  l2 : Cache.t;
  sink : Hookev.sink;
  stats : Stats.t;
  grid : int * int;
  block : int * int;
  l1_enabled : bool;
  (* shared bandwidth queues: next cycle at which the L2 / DRAM can
     accept another transaction.  Thrashing saturates these, which is
     what makes L1 hits (and bypassing) worth anything. *)
  l2_free : int ref;
  dram_free : int ref;
  (* trace-buffer cursor: instrumentation hooks serialize on a global
     atomic, the paper's first overhead source (Section 5) *)
  hook_free : int ref;
  (* per-launch scratch for the coalescing unit: active-lane addresses
     and the unique lines they touch.  Reused every memory instruction
     so the inner loop allocates nothing. *)
  addr_scratch : int array; (* 32 lanes *)
  line_scratch : int array; (* each access may straddle 2 lines *)
}

let make_scratch () = (Array.make 32 0, Array.make 64 0)

let trap ctx ~pc ~loc fmt =
  Printf.ksprintf (fun msg -> raise (Trap { kernel = ctx.kernel; pc; loc; msg })) fmt

(* ----- per-lane helpers ----- *)

(* Operand evaluation, typed so the hot loop never boxes a [Value.t].
   [ev_int]/[ev_float] mirror [Value.to_int]/[Value.to_float] on the old
   boxed representation (float-as-int traps, int-to-float coerces);
   [store_operand] copies an operand into a destination register
   preserving its int/float identity (Mov, Selp, call arguments). *)

let[@inline] ev_int (frame : frame) lane (op : Ptx.Isa.operand) =
  match op with
  | Ptx.Isa.R r -> reg_int frame lane r
  | Ptx.Isa.I i -> i
  | Ptx.Isa.F f -> Value.to_int (Value.F f)

let[@inline] ev_float (frame : frame) lane (op : Ptx.Isa.operand) =
  match op with
  | Ptx.Isa.R r -> reg_float frame lane r
  | Ptx.Isa.I i -> float_of_int i
  | Ptx.Isa.F f -> f

let ev_value (frame : frame) lane (op : Ptx.Isa.operand) : Value.t =
  match op with
  | Ptx.Isa.R r -> reg_value frame lane r
  | Ptx.Isa.I i -> Value.I i
  | Ptx.Isa.F f -> Value.F f

let[@inline] store_operand (frame : frame) lane (op : Ptx.Isa.operand) dframe dlane dst =
  match op with
  | Ptx.Isa.R r -> copy_reg ~src:frame ~src_lane:lane ~src_r:r ~dst:dframe ~dst_lane:dlane ~dst_r:dst
  | Ptx.Isa.I i -> set_reg_int dframe dlane dst i
  | Ptx.Isa.F f -> set_reg_float dframe dlane dst f

let first_lane mask =
  let rec go i = if i = 32 then invalid_arg "first_lane: empty mask" else if mask land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let int_binop ctx ~pc ~loc (op : Bitc.Instr.binop) a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then trap ctx ~pc ~loc "integer division by zero" else a / b
  | Rem -> if b = 0 then trap ctx ~pc ~loc "integer remainder by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 31)
  | Lshr -> a lsr (b land 31)
  | Min -> min a b
  | Max -> max a b

let float_binop ctx ~pc ~loc (op : Bitc.Instr.binop) a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b
  | Rem | And | Or | Xor | Shl | Lshr ->
    trap ctx ~pc ~loc "bitwise operator on float operands"

let compare_vals (op : Bitc.Instr.cmp) c =
  match op with Eq -> c = 0 | Ne -> c <> 0 | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0

(* ----- local / shared byte buffers ----- *)

(* Load from a byte buffer straight into a register (no intermediate
   [Value.t]); store an operand's value into a byte buffer likewise. *)

let[@inline] bytes_read_reg (buf : Bytes.t) ~addr ~width ~fl frame lane dst =
  match width, fl with
  | 1, false -> set_reg_int frame lane dst (Char.code (Bytes.get buf addr))
  | 4, false -> set_reg_int frame lane dst (Int32.to_int (Bytes.get_int32_le buf addr))
  | 4, true -> set_reg_float frame lane dst (Int32.float_of_bits (Bytes.get_int32_le buf addr))
  | 8, false -> set_reg_int frame lane dst (Int64.to_int (Bytes.get_int64_le buf addr))
  | _ -> invalid_arg "bytes_read: unsupported width"

let[@inline] bytes_write_op (buf : Bytes.t) ~addr ~width ~fl frame lane src =
  match width, fl with
  | 1, false -> Bytes.set buf addr (Char.chr (ev_int frame lane src land 0xff))
  | 4, false -> Bytes.set_int32_le buf addr (Int32.of_int (ev_int frame lane src))
  | 4, true -> Bytes.set_int32_le buf addr (Int32.bits_of_float (ev_float frame lane src))
  | 8, false -> Bytes.set_int64_le buf addr (Int64.of_int (ev_int frame lane src))
  | _ -> invalid_arg "bytes_write: unsupported width"

(* ----- timing of global transactions ----- *)

(* Time one fill from the L2/DRAM side issued at [now]: accounts for the
   shared bandwidth queues and returns the added latency beyond the
   L1-miss base path. *)
let l2_side_fill ctx ?(sector = false) ~scale ~now line_addr =
  let arch = ctx.arch in
  (* 32 B sector requests ride the wide L2 crossbar for free; full-line
     fills consume an L2 queue slot *)
  let start =
    if sector then now
    else begin
      let s = max now !(ctx.l2_free) in
      ctx.l2_free := s + arch.l2_service;
      s
    end
  in
  if Cache.access_read ctx.l2 line_addr then start - now
  else begin
    let dram_start = max start !(ctx.dram_free) in
    ctx.dram_free := dram_start + max 1 (arch.dram_service / scale);
    dram_start - now + (arch.dram_latency - arch.l2_latency)
  end

(* Time one read transaction on line [line_addr] issued at [now];
   returns data-arrival time.  [granularity] is the transaction size in
   bytes: full L1 lines for caching loads, 32 B sectors for bypassed
   ones, which scales the bandwidth they consume. *)
let time_read_txn ctx (sm : sm) ~cop ~granularity ~now line_addr =
  let arch = ctx.arch in
  let scale = max 1 (arch.line_size / max 1 granularity) in
  match cop with
  | Ptx.Isa.Ca when ctx.l1_enabled ->
    (* serial tag-port lookup: divergent accesses queue here *)
    let at = max now sm.l1_port_free in
    sm.l1_port_free <- at + 1;
    if Cache.access_read sm.l1 line_addr then at + arch.l1_latency
    else
      let latency start =
        arch.l1_latency + Arch.l1_miss_to_l2_latency arch
        + l2_side_fill ctx ~scale:1 ~now:start line_addr
      in
      Mshr.acquire sm.mshr ~line:(line_addr / arch.line_size) ~now:at ~latency
  | Ptx.Isa.Ca | Ptx.Isa.Cg ->
    (* bypass L1: straight to L2/DRAM through the TPC-level sector path,
       which has ample bandwidth for 32 B sectors *)
    now + Arch.l1_miss_to_l2_latency arch
    + l2_side_fill ctx ~scale ~sector:(scale > 1) ~now line_addr

(* Stores are write-through fire-and-forget: they do not stall the warp
   but they evict L1/L2 copies and consume shared bandwidth. *)
let time_write_txn ctx (sm : sm) ~now line_addr =
  if ctx.l1_enabled then begin
    (* write-evict probe occupies the tag port too *)
    sm.l1_port_free <- max now sm.l1_port_free + 1;
    Cache.access_write sm.l1 line_addr
  end;
  Cache.access_write ctx.l2 line_addr;
  let start = max now !(ctx.l2_free) in
  ctx.l2_free := start + ctx.arch.l2_service;
  let dram_start = max start !(ctx.dram_free) in
  ctx.dram_free := dram_start + ctx.arch.dram_service

(* ----- special registers ----- *)

let sreg_value ctx (warp : warp) lane (which : Bitc.Instr.special) =
  let bx, by = ctx.block in
  let gx, gy = ctx.grid in
  ignore by;
  let lin = (warp.warp_id * 32) + lane in
  match which with
  | Tid_x -> lin mod bx
  | Tid_y -> lin / bx
  | Ctaid_x -> warp.cta.cta_x
  | Ctaid_y -> warp.cta.cta_y
  | Ntid_x -> fst ctx.block
  | Ntid_y -> snd ctx.block
  | Nctaid_x -> gx
  | Nctaid_y -> gy
  | Warpid -> warp.warp_id

(* ----- SIMT stack maintenance ----- *)

(* Pop reconverged entries and completed frames until the warp is ready
   to execute, finished, or at a barrier. *)
let rec normalize (warp : warp) =
  match warp.frames with
  | [] -> ()
  | frame :: rest -> (
    match frame.stack with
    | [] ->
      (* every lane returned: pop the frame, deliver return values *)
      warp.frames <- rest;
      (match rest, frame.ret_dst with
      | caller :: _, Some dst ->
        iter_lanes frame.init_mask (fun lane ->
            set_reg_value caller lane dst frame.retvals.(lane))
      | _, _ -> ());
      if rest = [] then begin
        warp.status <- Finished;
        warp.cta.finished_warps <- warp.cta.finished_warps + 1
      end
      else normalize warp
    | entry :: below ->
      if entry.pc = entry.rpc then begin
        frame.stack <- below;
        normalize warp
      end)

(* ----- hook dispatch ----- *)

let dispatch_hook ctx (warp : warp) (frame : frame) ~pc ~mask ~issue ~name ~args =
  let loc = frame.func.locs.(pc) in
  let fl = first_lane mask in
  let evi op = ev_int frame fl op in
  let cta = warp.cta.cta_linear in
  let event =
    match name, (args : Ptx.Isa.operand list) with
    | "__ca_record_mem", [ addr; bits; _line; _col; kind ] ->
      let accesses = Array.make (popcount mask) (0, 0) in
      let k = ref 0 in
      iter_lanes mask (fun lane ->
          accesses.(!k) <- (lane, ev_int frame lane addr);
          incr k);
      Some
        (Hookev.Mem
           { kernel = ctx.kernel; cta; warp = warp.warp_id; loc; bits = evi bits;
             kind = evi kind; accesses })
    | "__ca_record_bb", [ bb_id; _line; _col ] ->
      Some
        (Hookev.Bb
           { kernel = ctx.kernel; cta; warp = warp.warp_id; bb_id = evi bb_id; loc;
             active_mask = mask; live_mask = warp.live_mask })
    | ("__ca_record_arith_i" | "__ca_record_arith_f"), [ code; a; b; _line; _col ] ->
      let operands = Array.make (popcount mask) (0, 0., 0.) in
      let k = ref 0 in
      iter_lanes mask (fun lane ->
          operands.(!k) <- (lane, ev_float frame lane a, ev_float frame lane b);
          incr k);
      Some
        (Hookev.Arith
           { kernel = ctx.kernel; cta; warp = warp.warp_id; code = evi code; loc;
             operands })
    | "__ca_push_call", [ callsite ] ->
      Some
        (Hookev.Call
           { kernel = ctx.kernel; cta; warp = warp.warp_id; callsite = evi callsite;
             mask; push = true })
    | "__ca_pop_call", [ callsite ] ->
      Some
        (Hookev.Call
           { kernel = ctx.kernel; cta; warp = warp.warp_id; callsite = evi callsite;
             mask; push = false })
    | _ -> trap ctx ~pc ~loc "unknown or malformed hook %s" name
  in
  Option.iter ctx.sink event;
  ctx.stats.hook_calls <- ctx.stats.hook_calls + 1;
  (* overhead model (Section 5): the inserted analysis function performs
     one atomic trace-buffer append per active thread — serialized
     globally — plus the entry's global-memory traffic *)
  let h = ctx.arch.hook in
  let busy = h.hook_base + (h.hook_per_lane * popcount mask) in
  let start = max issue !(ctx.hook_free) in
  ctx.hook_free := start + busy;
  start - issue + busy + h.hook_mem_txn

(* ----- one warp instruction ----- *)


(* Cycle at which every source register an instruction reads is ready
   (scoreboard), computed without materializing a source list. *)
let srcs_ready_at (frame : frame) (inst : Ptx.Isa.inst) =
  let rr = frame.reg_ready in
  let of_op acc (op : Ptx.Isa.operand) =
    match op with Ptx.Isa.R r -> max acc rr.(r) | Ptx.Isa.I _ | Ptx.Isa.F _ -> acc
  in
  let of_pred acc = function Some (r, _) -> max acc rr.(r) | None -> acc in
  match inst with
  | Ptx.Isa.Mov { src; _ } -> of_op 0 src
  | Ptx.Isa.Iop { a; b; _ } | Ptx.Isa.Fop { a; b; _ } -> of_op (of_op 0 a) b
  | Ptx.Isa.Unop { a; _ } -> of_op 0 a
  | Ptx.Isa.Setp { a; b; _ } -> of_op (of_op 0 a) b
  | Ptx.Isa.Selp { cond; a; b; _ } -> of_op (of_op (of_op 0 cond) a) b
  | Ptx.Isa.Ld { addr; pred; _ } -> of_pred (of_op 0 addr) pred
  | Ptx.Isa.St { addr; src; pred; _ } -> of_pred (of_op (of_op 0 addr) src) pred
  | Ptx.Isa.Atom { addr; src; _ } -> of_op (of_op 0 addr) src
  | Ptx.Isa.Bra _ -> 0
  | Ptx.Isa.Cond_bra { pr; _ } -> rr.(pr)
  | Ptx.Isa.Call { args; _ } -> List.fold_left of_op 0 args
  | Ptx.Isa.Ret (Some op) -> of_op 0 op
  | Ptx.Isa.Ret None -> 0
  | Ptx.Isa.Bar -> 0
  | Ptx.Isa.Sreg _ -> 0
  | Ptx.Isa.Hook { args; _ } -> List.fold_left of_op 0 args

(* Execute the next instruction of [warp] on [sm].

   Timing model: instructions issue in program order once their source
   registers are ready (scoreboard).  ALU results become ready after the
   unit latency while the warp keeps issuing (pipelined); global loads
   mark their destination ready when the fill arrives, so independent
   work — including further loads — overlaps outstanding misses
   (memory-level parallelism).  Local/shared accesses and control flow
   serialize the warp. *)
let step ctx (sm : sm) (warp : warp) =
  normalize warp;
  match warp.frames with
  | [] -> ()
  | frame :: _ -> (
    let entry = List.hd frame.stack in
    let pc = entry.pc in
    let mask = entry.mask in
    let body = frame.func.body in
    let inst = body.(pc) in
    let loc () = frame.func.locs.(pc) in
    let srcs_ready = srcs_ready_at frame inst in
    let base = max warp.ready_at sm.next_issue in
    if srcs_ready > base then
      (* operands still in flight: requeue without consuming an issue
         slot so other warps fill the latency *)
      warp.ready_at <- srcs_ready
    else begin
    let issue = base in
    sm.next_issue <- issue + ctx.arch.issue_gap;
    warp.insts <- warp.insts + 1;
    ctx.stats.warp_insts <- ctx.stats.warp_insts + 1;
    ctx.stats.thread_insts <- ctx.stats.thread_insts + popcount mask;
    let arch = ctx.arch in
    let advance () = entry.pc <- pc + 1 in
    (* pipelined completion: the warp issues on, the consumer waits *)
    let pipeline ~dst ~latency =
      frame.reg_ready.(dst) <- issue + latency;
      warp.ready_at <- issue + 1
    in
    (* serializing completion: the warp itself stalls *)
    let serialize ?dst cost =
      (match dst with Some d -> frame.reg_ready.(d) <- issue + cost | None -> ());
      warp.ready_at <- issue + cost
    in
    (* apply a predicate to the active mask *)
    let masked pred =
      match pred with
      | None -> mask
      | Some (r, expect) ->
        let acc = ref 0 in
        iter_lanes mask (fun lane ->
            let v = reg_int frame lane r <> 0 in
            if v = expect then acc := !acc lor (1 lsl lane));
        !acc
    in
    match inst with
    | Ptx.Isa.Mov { dst; src } ->
      iter_lanes mask (fun l -> store_operand frame l src frame l dst);
      advance ();
      pipeline ~dst ~latency:1
    | Ptx.Isa.Iop { op; dst; a; b } ->
      iter_lanes mask (fun l ->
          let x = ev_int frame l a and y = ev_int frame l b in
          set_reg_int frame l dst (int_binop ctx ~pc ~loc:(loc ()) op x y));
      advance ();
      pipeline ~dst ~latency:arch.alu_latency
    | Ptx.Isa.Fop { op; dst; a; b } ->
      iter_lanes mask (fun l ->
          let x = ev_float frame l a and y = ev_float frame l b in
          set_reg_float frame l dst (float_binop ctx ~pc ~loc:(loc ()) op x y));
      advance ();
      pipeline ~dst ~latency:arch.alu_latency
    | Ptx.Isa.Unop { op; dst; a; fl } ->
      let apply l =
        match op with
        | Bitc.Instr.Neg ->
          if fl then set_reg_float frame l dst (-.ev_float frame l a)
          else set_reg_int frame l dst (-ev_int frame l a)
        | Bitc.Instr.Not -> set_reg_int frame l dst (if ev_int frame l a = 0 then 1 else 0)
        | Bitc.Instr.Int_to_float -> set_reg_float frame l dst (float_of_int (ev_int frame l a))
        | Bitc.Instr.Float_to_int -> set_reg_int frame l dst (int_of_float (ev_float frame l a))
        | Bitc.Instr.Sqrt -> set_reg_float frame l dst (sqrt (ev_float frame l a))
        | Bitc.Instr.Exp -> set_reg_float frame l dst (exp (ev_float frame l a))
        | Bitc.Instr.Log -> set_reg_float frame l dst (log (ev_float frame l a))
        | Bitc.Instr.Fabs -> set_reg_float frame l dst (Float.abs (ev_float frame l a))
      in
      iter_lanes mask apply;
      advance ();
      let sfu =
        match op with
        | Bitc.Instr.Sqrt | Bitc.Instr.Exp | Bitc.Instr.Log -> true
        | _ -> false
      in
      pipeline ~dst ~latency:(if sfu then arch.sfu_latency else arch.alu_latency)
    | Ptx.Isa.Setp { op; dst; a; b; fl } ->
      iter_lanes mask (fun l ->
          let c =
            if fl then compare (ev_float frame l a) (ev_float frame l b)
            else compare (ev_int frame l a) (ev_int frame l b)
          in
          set_reg_int frame l dst (if compare_vals op c then 1 else 0));
      advance ();
      pipeline ~dst ~latency:arch.alu_latency
    | Ptx.Isa.Selp { dst; cond; a; b } ->
      iter_lanes mask (fun l ->
          let c = ev_int frame l cond <> 0 in
          store_operand frame l (if c then a else b) frame l dst);
      advance ();
      pipeline ~dst ~latency:arch.alu_latency
    | Ptx.Isa.Ld { dst; space; cop; addr; width; fl; pred } -> (
      let active = masked pred in
      advance ();
      match space with
      | Ptx.Isa.Local ->
        iter_lanes active (fun l ->
            let a = ev_int frame l addr in
            bytes_read_reg frame.local.(l) ~addr:a ~width ~fl frame l dst);
        serialize ~dst arch.alu_latency
      | Ptx.Isa.Shared ->
        iter_lanes active (fun l ->
            let a = ev_int frame l addr in
            bytes_read_reg warp.cta.shared ~addr:a ~width ~fl frame l dst);
        ctx.stats.shared_accesses <- ctx.stats.shared_accesses + 1;
        serialize ~dst arch.shared_latency
      | Ptx.Isa.Global ->
        (* a fully predicated-off load must not touch the scoreboard:
           its twin with the complementary predicate owns [dst] *)
        if active = 0 then serialize 1
        else begin
          let n = ref 0 in
          iter_lanes active (fun l ->
              let a = ev_int frame l addr in
              (match width, fl with
              | 4, true -> set_reg_float frame l dst (Devmem.read_f32 ctx.devmem a)
              | 1, false -> set_reg_int frame l dst (Devmem.read_u8 ctx.devmem a)
              | 4, false -> set_reg_int frame l dst (Devmem.read_i32 ctx.devmem a)
              | 8, false -> set_reg_int frame l dst (Devmem.read_i64 ctx.devmem a)
              | _ ->
                raise
                  (Devmem.Fault { addr = a; size = width; msg = "unsupported access width" }));
              ctx.addr_scratch.(!n) <- a;
              incr n);
          (* bypassed loads move 32 B sectors, not full L1 lines *)
          let granularity =
            match cop with
            | Ptx.Isa.Ca when ctx.l1_enabled -> arch.line_size
            | Ptx.Isa.Ca | Ptx.Isa.Cg -> min 32 arch.line_size
          in
          let nlines =
            Coalesce.collect_unique_lines ~line_size:granularity ~width
              ~src:ctx.addr_scratch ~off:0 ~n:!n ctx.line_scratch
          in
          ctx.stats.global_loads <- ctx.stats.global_loads + 1;
          ctx.stats.load_transactions <- ctx.stats.load_transactions + nlines;
          let arrival = ref issue in
          for k = 0 to nlines - 1 do
            arrival :=
              max !arrival
                (time_read_txn ctx sm ~cop ~granularity ~now:issue
                   (ctx.line_scratch.(k) * granularity))
          done;
          frame.reg_ready.(dst) <- !arrival;
          warp.ready_at <- issue + arch.alu_latency + ((nlines - 1) * arch.txn_issue)
        end)
    | Ptx.Isa.St { space; addr; src; width; fl; pred; cop = _ } -> (
      let active = masked pred in
      advance ();
      match space with
      | Ptx.Isa.Local ->
        iter_lanes active (fun l ->
            let a = ev_int frame l addr in
            bytes_write_op frame.local.(l) ~addr:a ~width ~fl frame l src);
        serialize arch.alu_latency
      | Ptx.Isa.Shared ->
        iter_lanes active (fun l ->
            let a = ev_int frame l addr in
            bytes_write_op warp.cta.shared ~addr:a ~width ~fl frame l src);
        ctx.stats.shared_accesses <- ctx.stats.shared_accesses + 1;
        serialize arch.shared_latency
      | Ptx.Isa.Global ->
        if active = 0 then serialize 1
        else begin
          let n = ref 0 in
          iter_lanes active (fun l ->
              let a = ev_int frame l addr in
              (match width, fl with
              | 1, false -> Devmem.write_u8 ctx.devmem a (ev_int frame l src land 0xff)
              | 4, false -> Devmem.write_i32 ctx.devmem a (ev_int frame l src)
              | 4, true -> Devmem.write_f32 ctx.devmem a (ev_float frame l src)
              | 8, false -> Devmem.write_i64 ctx.devmem a (ev_int frame l src)
              | _ ->
                raise
                  (Devmem.Fault { addr = a; size = width; msg = "unsupported access width" }));
              ctx.addr_scratch.(!n) <- a;
              incr n);
          let nlines =
            Coalesce.collect_unique_lines ~line_size:arch.line_size ~width
              ~src:ctx.addr_scratch ~off:0 ~n:!n ctx.line_scratch
          in
          for k = 0 to nlines - 1 do
            time_write_txn ctx sm ~now:issue (ctx.line_scratch.(k) * arch.line_size)
          done;
          ctx.stats.global_stores <- ctx.stats.global_stores + 1;
          ctx.stats.store_transactions <- ctx.stats.store_transactions + nlines;
          serialize (arch.alu_latency + ((nlines - 1) * arch.txn_issue))
        end)
    | Ptx.Isa.Atom { dst; addr; src; width; fl } ->
      iter_lanes mask (fun l ->
          let a = ev_int frame l addr in
          (match width, fl with
          | 4, true ->
            let old = Devmem.read_f32 ctx.devmem a in
            Devmem.write_f32 ctx.devmem a (old +. ev_float frame l src);
            set_reg_float frame l dst old
          | 1, false ->
            let old = Devmem.read_u8 ctx.devmem a in
            Devmem.write_u8 ctx.devmem a ((old + ev_int frame l src) land 0xff);
            set_reg_int frame l dst old
          | 4, false ->
            let old = Devmem.read_i32 ctx.devmem a in
            Devmem.write_i32 ctx.devmem a (old + ev_int frame l src);
            set_reg_int frame l dst old
          | 8, false ->
            let old = Devmem.read_i64 ctx.devmem a in
            Devmem.write_i64 ctx.devmem a (old + ev_int frame l src);
            set_reg_int frame l dst old
          | _ ->
            raise (Devmem.Fault { addr = a; size = width; msg = "unsupported access width" }));
          time_write_txn ctx sm ~now:issue (a / arch.line_size * arch.line_size));
      ctx.stats.global_atomics <- ctx.stats.global_atomics + 1;
      advance ();
      serialize ~dst (arch.atom_latency + (6 * (popcount mask - 1)))
    | Ptx.Isa.Bra { target } ->
      entry.pc <- target;
      serialize arch.branch_latency
    | Ptx.Isa.Cond_bra { pr; if_true; if_false; reconv } ->
      ctx.stats.branches <- ctx.stats.branches + 1;
      let mt = ref 0 in
      iter_lanes mask (fun l ->
          if reg_int frame l pr <> 0 then mt := !mt lor (1 lsl l));
      let mt = !mt in
      let mf = mask land lnot mt in
      if mf = 0 then entry.pc <- if_true
      else if mt = 0 then entry.pc <- if_false
      else begin
        ctx.stats.divergent_branches <- ctx.stats.divergent_branches + 1;
        let rpc = match reconv with Some r -> r | None -> exit_pc frame.func in
        entry.pc <- rpc;
        frame.stack <-
          { pc = if_true; mask = mt; rpc }
          :: { pc = if_false; mask = mf; rpc }
          :: frame.stack
      end;
      serialize arch.branch_latency
    | Ptx.Isa.Call { callee; args; dst } ->
      let cf = Ptx.Isa.find_func ctx.prog callee in
      advance ();
      let new_frame = make_frame cf ~init_mask:mask ~ret_dst:dst in
      iter_lanes mask (fun l ->
          List.iteri (fun i a -> store_operand frame l a new_frame l i) args);
      Array.fill new_frame.reg_ready 0 (Array.length new_frame.reg_ready)
        (issue + arch.call_latency);
      warp.frames <- new_frame :: warp.frames;
      serialize arch.call_latency
    | Ptx.Isa.Ret v ->
      iter_lanes mask (fun l ->
          frame.retvals.(l) <-
            (match v with Some op -> ev_value frame l op | None -> Value.zero));
      (match warp.frames with
      | _ :: caller :: _ -> (
        match frame.ret_dst with
        | Some dst -> caller.reg_ready.(dst) <- issue + arch.call_latency
        | None -> ())
      | _ -> ());
      frame.stack <- List.tl frame.stack;
      normalize warp;
      serialize arch.call_latency
    | Ptx.Isa.Bar ->
      advance ();
      ctx.stats.barriers <- ctx.stats.barriers + 1;
      warp.status <- At_barrier;
      warp.barrier_arrival <- issue + 1;
      warp.cta.at_barrier <- warp.cta.at_barrier + 1;
      serialize 1
    | Ptx.Isa.Sreg { dst; which } ->
      iter_lanes mask (fun l ->
          set_reg_int frame l dst (sreg_value ctx warp l which));
      advance ();
      pipeline ~dst ~latency:1
    | Ptx.Isa.Hook { name; args } ->
      (* instrumentation cost serializes the warp: the inserted analysis
         call performs atomics and trace-buffer writes inline *)
      let cost = dispatch_hook ctx warp frame ~pc ~mask ~issue ~name ~args in
      advance ();
      serialize cost
    end)
