(* The memory coalescing unit: combines the per-lane addresses of one
   warp memory instruction into transactions of cache-line granularity
   (128 B on Kepler, 32 B sectors on Pascal).  The number of unique
   lines touched is exactly the paper's per-instruction memory
   divergence measure (Figure 5). *)

(* Unique cache lines touched by [addrs] (each access [width] bytes
   wide, so an access may straddle two lines).  Returns the sorted list
   of line ids. *)
let unique_lines ~line_size ~width addrs =
  let lines =
    List.concat_map
      (fun addr ->
        let first = addr / line_size in
        let last = (addr + width - 1) / line_size in
        if first = last then [ first ] else [ first; last ])
      addrs
  in
  List.sort_uniq compare lines

let transactions ~line_size ~width addrs =
  List.length (unique_lines ~line_size ~width addrs)

(* Allocation-free variant for the interpreter's inner loop and the
   packed-trace analyzers: collect the unique lines touched by the [n]
   addresses at [src.(off) .. src.(off+n-1)] into [scratch] (sorted
   ascending) and return their count.  [scratch] must hold at least
   [2*n] slots — each access may straddle two lines. *)
let collect_unique_lines ~line_size ~width ~src ~off ~n scratch =
  let cnt = ref 0 in
  let add line =
    (* insertion into the sorted prefix, skipping duplicates; warp
       accesses touch at most 64 lines so this stays tiny *)
    let lo = ref 0 in
    while !lo < !cnt && scratch.(!lo) < line do
      incr lo
    done;
    if !lo = !cnt || scratch.(!lo) <> line then begin
      for k = !cnt downto !lo + 1 do
        scratch.(k) <- scratch.(k - 1)
      done;
      scratch.(!lo) <- line;
      incr cnt
    end
  in
  for k = off to off + n - 1 do
    let addr = src.(k) in
    let first = addr / line_size in
    let last = (addr + width - 1) / line_size in
    add first;
    if last <> first then add last
  done;
  !cnt
