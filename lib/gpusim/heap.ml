(* Binary min-heap keyed by integer priority, used by the simulator's
   event loop to pick the next ready warp. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a option array;
  mutable size : int;
}

let create () = { keys = Array.make 64 max_int; vals = Array.make 64 None; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) max_int in
  let vals = Array.make (2 * n) None in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- Some v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    t.keys.(0) <- t.keys.(t.size);
    t.vals.(0) <- t.vals.(t.size);
    t.vals.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    match v with Some v -> Some (key, v) | None -> assert false
  end

let min_key t = if t.size = 0 then max_int else t.keys.(0)

(* Would [push t k v; pop t] return [k] and leave the arrays arranged
   exactly as they are now?  The event loop uses this to keep stepping
   the warp it just popped without touching the heap; because it only
   skips *identity* push/pop pairs, every later pop sees the very same
   arrangement — and hence the very same tie-breaks among equal keys —
   as the unskipped schedule, keeping cycle counts bit-identical.

   Why these conditions: [push k] sifts [k] up the ancestor path of
   slot [n] (all the way, since [k] is below the root), shifting each
   ancestor one step down the path and parking [w = keys.((n-1)/2)] in
   slot [n].  [pop] then takes [k] from the root, moves [w] back to the
   root and sifts it down.  The net effect is the identity iff that
   sift-down retraces the same path, which at each path node [par ->
   cur] requires the displaced key [keys.(par)] to win the 3-way
   minimum: it must beat [w] strictly, and — when [cur] is a right
   child — also beat the left sibling if that sibling beats [w].  (When
   [cur] is a left child the right sibling can never win: the heap
   invariant puts it at >= keys.(par), and sift-down prefers the left
   child on ties.)  The walk terminates by itself: if [n] is even, slot
   [n-1] >= [w] by the invariant, so [w] stops at [(n-1)/2]. *)
let run_ahead_ok t k =
  let n = t.size in
  n = 0
  || k < t.keys.(0)
     &&
     let keys = t.keys in
     let w = keys.((n - 1) / 2) in
     let ok = ref true in
     let cur = ref ((n - 1) / 2) in
     while !ok && !cur > 0 do
       let par = (!cur - 1) / 2 in
       let kp = keys.(par) in
       if kp >= w then ok := false
       else if !cur land 1 = 0 then begin
         let ks = keys.(!cur - 1) in
         if ks < w && kp >= ks then ok := false
       end;
       cur := par
     done;
     !ok
