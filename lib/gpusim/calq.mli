(** Calendar queue: per-timestamp FIFO buckets over a sliding window
    with a heap fallback for out-of-window keys.  O(1) amortized
    push/pop for the event loop's near-monotonic timestamps.  Pops are
    in exact key order, but ties break FIFO rather than matching
    {!Heap}'s arrangement-dependent order — see DESIGN.md for why that
    makes it an opt-in scheduler. *)

type 'a t

(** [create ?window ()] builds an empty queue whose ring covers
    [window] consecutive timestamps (rounded up to a power of two,
    default 2048). *)
val create : ?window:int -> unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> int -> 'a -> unit

(** Pop an element with the minimum key. *)
val pop : 'a t -> (int * 'a) option

(** Minimum key currently queued; [max_int] when empty.  May advance
    the internal cursor over empty buckets (not observable through
    [pop] ordering). *)
val min_key : 'a t -> int

(** [run_ahead_ok t k] is [true] iff [push t k v] immediately followed
    by [pop t] would return [(k, v)] and change nothing observable:
    true exactly when [k] is strictly below every queued key. *)
val run_ahead_ok : 'a t -> int -> bool
