(* Events delivered from instrumented device code to the profiler.

   The paper's [Record]/[passBasicBlock] device functions append one
   entry per thread to a device-side trace buffer which is copied to the
   host at kernel exit; the analyzer then regroups entries by CTA and
   warp.  We deliver the already-grouped warp-level event (the grouping
   key — CTA id, warp id, lane — is carried explicitly), which is the
   same information without materializing the raw buffer. *)

type mem = {
  kernel : string;
  cta : int; (* linear CTA id *)
  warp : int; (* warp id within the CTA *)
  loc : Bitc.Loc.t;
  bits : int; (* access width in bits *)
  kind : int; (* Hooks.mem_kind_load / _store / _atomic *)
  (* (lane, effective byte address) for each active lane *)
  accesses : (int * int) array;
}

type bb = {
  kernel : string;
  cta : int;
  warp : int;
  bb_id : int;
  loc : Bitc.Loc.t;
  active_mask : int; (* lanes executing this block entry *)
  live_mask : int; (* lanes that exist in this warp *)
}

type arith = {
  kernel : string;
  cta : int;
  warp : int;
  code : int; (* Hooks.arith_code_* *)
  loc : Bitc.Loc.t;
  (* (lane, a, b) operand values, floats covering both int and float ops *)
  operands : (int * float * float) array;
}

type call = {
  kernel : string;
  cta : int;
  warp : int;
  callsite : int;
  mask : int;
  push : bool; (* push = call, pop = return *)
}

type barrier = {
  kernel : string;
  cta : int;
  warp : int;
  bar_id : int; (* manifest barrier id *)
  loc : Bitc.Loc.t;
  mask : int; (* lanes that passed the barrier *)
}

type conflict = {
  kernel : string;
  cta : int;
  warp : int;
  loc : Bitc.Loc.t;
  kind : int; (* Hooks.mem_kind_load / _store *)
  degree : int; (* serialized passes through the worst bank (>= 2) *)
  replays : int; (* degree - 1 extra issues *)
  broadcast_lanes : int; (* active lanes that shared a word with another *)
  active_lanes : int;
}

type t =
  | Mem of mem
  | Bb of bb
  | Arith of arith
  | Call of call
  | Shared of mem (* shared-memory access; addresses are CTA-local *)
  | Barrier of barrier
  | Conflict of conflict (* shared-memory bank conflict at one access *)

type sink = t -> unit

let null_sink : sink = fun _ -> ()
