(* Mutable machine state of a kernel launch: warps with their SIMT
   divergence stacks and call frames, CTAs with their shared memory and
   barrier state, and SMs with their L1 caches and MSHRs. *)

(* One entry of the post-dominator SIMT reconvergence stack (Fung et
   al.; the scheme GPGPU-Sim and real hardware implement).  [rpc] is the
   pc at which this entry's lanes rejoin their parent; the function exit
   is represented by [rpc = Array.length body]. *)
type simt_entry = {
  mutable pc : int;
  mutable mask : int;
  rpc : int;
}

type frame = {
  func : Ptx.Isa.func;
  nregs : int;
  (* Unboxed register file, flattened lane-major: register [r] of lane
     [l] lives at index [l * nregs + r].  Registers hold either an int
     or a float; a boxed [Value.t] per write would be promoted into
     these long-lived arrays and dominate GC time, so the two payloads
     live in parallel flat arrays with a tag byte selecting which one is
     current ('\001' = float). *)
  regs_i : int array;
  regs_f : float array;
  regs_tag : Bytes.t;
  (* scoreboard: cycle at which each register's value arrives.  Loads
     write their functional value immediately but mark the destination
     ready only when the fill lands, so independent instructions issue
     in the shadow of outstanding misses (memory-level parallelism). *)
  reg_ready : int array;
  (* per-lane local frame for allocas *)
  local : Bytes.t array;
  mutable stack : simt_entry list; (* top first *)
  init_mask : int; (* lanes that entered this call *)
  ret_dst : int option; (* caller register receiving the return value *)
  retvals : Value.t array; (* per lane *)
}

type warp_status = Ready | At_barrier | Finished

type warp = {
  warp_id : int; (* within its CTA *)
  live_mask : int; (* lanes backed by real threads *)
  cta : cta;
  mutable frames : frame list; (* top first *)
  mutable ready_at : int;
  mutable status : warp_status;
  mutable barrier_arrival : int; (* time it reached the current barrier *)
  mutable insts : int; (* warp-level instructions issued *)
}

and cta = {
  cta_x : int;
  cta_y : int;
  cta_linear : int;
  shared : Bytes.t;
  mutable warps : warp array;
  mutable at_barrier : int;
  mutable finished_warps : int;
  sm_id : int;
}

type sm = {
  sm_id' : int;
  l1 : Cache.t;
  mshr : Mshr.t;
  mutable next_issue : int;
  (* single L1 tag port: each L1 transaction (lookup or write-probe)
     occupies it for one cycle, so divergent accesses contend *)
  mutable l1_port_free : int;
  mutable resident_ctas : int;
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* Bit index of an isolated power of two below 2^32: [b mod 37] is
   injective over {2^0 .. 2^31}, so a 37-entry table decodes it without
   a loop. *)
let ntz_table =
  let t = Array.make 37 0 in
  for i = 0 to 31 do
    t.((1 lsl i) mod 37) <- i
  done;
  t

(* Apply [f] to each set lane of [mask] in ascending order, without
   materializing a lane list — this runs once per simulated
   instruction, the innermost loop of every experiment. *)
let[@inline] iter_lanes mask f =
  let m = ref mask in
  while !m <> 0 do
    let b = !m land (- !m) in
    f ntz_table.(b mod 37);
    m := !m lxor b
  done

(* Lane list of a mask, ascending.  Cold-path convenience (frame pops,
   call events); the interpreter's hot paths use [iter_lanes]. *)
let lanes_of_mask mask =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 31 []

let full_mask n = if n >= 63 then invalid_arg "full_mask" else (1 lsl n) - 1

let exit_pc (f : Ptx.Isa.func) = Array.length f.body

let make_frame (func : Ptx.Isa.func) ~init_mask ~ret_dst =
  let nregs = max func.nregs 1 in
  {
    func;
    nregs;
    regs_i = Array.make (32 * nregs) 0;
    regs_f = Array.make (32 * nregs) 0.;
    regs_tag = Bytes.make (32 * nregs) '\000';
    reg_ready = Array.make nregs 0;
    local = Array.init 32 (fun _ -> Bytes.make (max func.local_bytes 1) '\000');
    stack = [ { pc = 0; mask = init_mask; rpc = exit_pc func } ];
    init_mask;
    ret_dst;
    retvals = Array.make 32 Value.zero;
  }

(* ----- register accessors ----- *)

let[@inline] reg_idx frame lane r = (lane * frame.nregs) + r

let[@inline] reg_is_float frame lane r =
  Bytes.get frame.regs_tag (reg_idx frame lane r) = '\001'

let[@inline] set_reg_int frame lane r v =
  let i = reg_idx frame lane r in
  Bytes.set frame.regs_tag i '\000';
  frame.regs_i.(i) <- v

let[@inline] set_reg_float frame lane r v =
  let i = reg_idx frame lane r in
  Bytes.set frame.regs_tag i '\001';
  frame.regs_f.(i) <- v

(* Typed reads keep the boxed-era semantics: reading a float register as
   an int is the same error [Value.to_int] raised; ints coerce to float
   implicitly like [Value.to_float] did. *)
let[@inline] reg_int frame lane r =
  let i = reg_idx frame lane r in
  if Bytes.get frame.regs_tag i = '\001' then Value.to_int (Value.F frame.regs_f.(i))
  else frame.regs_i.(i)

let[@inline] reg_float frame lane r =
  let i = reg_idx frame lane r in
  if Bytes.get frame.regs_tag i = '\001' then frame.regs_f.(i)
  else float_of_int frame.regs_i.(i)

(* Boxed views, for the cold paths (argument setup, call returns). *)
let reg_value frame lane r : Value.t =
  let i = reg_idx frame lane r in
  if Bytes.get frame.regs_tag i = '\001' then Value.F frame.regs_f.(i)
  else Value.I frame.regs_i.(i)

let set_reg_value frame lane r (v : Value.t) =
  match v with
  | Value.I i -> set_reg_int frame lane r i
  | Value.F f -> set_reg_float frame lane r f

(* Tag-preserving register-to-register copy (Mov, call argument and
   return-value plumbing) without boxing. *)
let[@inline] copy_reg ~src ~src_lane ~src_r ~dst ~dst_lane ~dst_r =
  if reg_is_float src src_lane src_r then
    set_reg_float dst dst_lane dst_r src.regs_f.(reg_idx src src_lane src_r)
  else set_reg_int dst dst_lane dst_r src.regs_i.(reg_idx src src_lane src_r)
