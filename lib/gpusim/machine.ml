(* Mutable machine state of a kernel launch: warps with their SIMT
   divergence stacks and call frames, CTAs with their shared memory and
   barrier state, and SMs with their L1 caches and MSHRs. *)

(* One entry of the post-dominator SIMT reconvergence stack (Fung et
   al.; the scheme GPGPU-Sim and real hardware implement).  [rpc] is the
   pc at which this entry's lanes rejoin their parent; the function exit
   is represented by [rpc = Array.length body]. *)
type simt_entry = {
  mutable pc : int;
  mutable mask : int;
  rpc : int;
}

type frame = {
  mutable dfunc : Ptx.Isa.dfunc;
      (* predecoded body; source func at [dfunc.fsrc].  Mutable only so
         recycled frames (see the frame pool below) can be rebound to a
         different function of the same register/local shape. *)
  nregs : int;
  (* Unboxed register file, flattened register-major: register [r] of
     lane [l] lives at index [(r lsl 5) + l].  A warp instruction reads
     and writes the *same* register for every active lane, so keeping
     the 32 lanes of one register contiguous turns each operand into a
     handful of adjacent cache lines instead of one line per lane
     (lane-major strides by [nregs * 8] bytes and thrashes L2 once
     frames outgrow it).  Registers hold either an int or a float; a
     boxed [Value.t] per write would be promoted into these long-lived
     arrays and dominate GC time, so the two payloads live in parallel
     flat arrays with a tag byte selecting which one is current
     ('\001' = float). *)
  regs_i : int array;
  regs_f : float array;
  regs_tag : Bytes.t;
  (* scoreboard: cycle at which each register's value arrives.  Loads
     write their functional value immediately but mark the destination
     ready only when the fill lands, so independent instructions issue
     in the shadow of outstanding misses (memory-level parallelism). *)
  reg_ready : int array;
  (* per-lane local frame for allocas *)
  local : Bytes.t array;
  mutable stack : simt_entry list; (* top first *)
  mutable init_mask : int; (* lanes that entered this call *)
  mutable ret_dst : int option; (* caller register receiving the return value *)
  retvals : Value.t array; (* per lane *)
}

type warp_status = Ready | At_barrier | Finished

type warp = {
  warp_id : int; (* within its CTA *)
  live_mask : int; (* lanes backed by real threads *)
  cta : cta;
  mutable frames : frame list; (* top first *)
  mutable ready_at : int;
  mutable status : warp_status;
  mutable barrier_arrival : int; (* time it reached the current barrier *)
  mutable insts : int; (* warp-level instructions issued *)
}

and cta = {
  cta_x : int;
  cta_y : int;
  cta_linear : int;
  shared : Bytes.t;
  mutable warps : warp array;
  mutable at_barrier : int;
  mutable finished_warps : int;
  sm_id : int;
}

type sm = {
  sm_id' : int;
  l1 : Cache.t;
  mshr : Mshr.t;
  mutable next_issue : int;
  (* single L1 tag port: each L1 transaction (lookup or write-probe)
     occupies it for one cycle, so divergent accesses contend *)
  mutable l1_port_free : int;
  mutable resident_ctas : int;
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* Bit index of an isolated power of two below 2^32: [b mod 37] is
   injective over {2^0 .. 2^31}, so a 37-entry table decodes it without
   a loop. *)
let ntz_table =
  let t = Array.make 37 0 in
  for i = 0 to 31 do
    t.((1 lsl i) mod 37) <- i
  done;
  t

(* Bit index of the isolated low bit [b] (a power of two). *)
let[@inline] ntz b = Array.unsafe_get ntz_table (b mod 37)

(* Apply [f] to each set lane of [mask] in ascending order, without
   materializing a lane list.  Cold and warm paths only: the
   interpreter's hottest loops in [Exec.step] iterate the mask inline
   so no closure is allocated per instruction. *)
let[@inline] iter_lanes mask f =
  let m = ref mask in
  while !m <> 0 do
    let b = !m land (- !m) in
    f ntz_table.(b mod 37);
    m := !m lxor b
  done

(* Lane list of a mask, ascending.  Cold-path convenience (frame pops,
   call events); the interpreter's hot paths use [iter_lanes]. *)
let lanes_of_mask mask =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 31 []

let full_mask n = if n >= 63 then invalid_arg "full_mask" else (1 lsl n) - 1

let exit_pc (f : Ptx.Isa.func) = Array.length f.body

(* ----- frame pool -----

   A launch allocates hundreds of frames (one per warp plus one per
   device-function call), each ~100s of KB of flat register file, and
   drops them all on the floor when warps retire.  Those arrays go
   straight to the major heap, and the resulting churn (allocation +
   marking + sweeping) is a measurable slice of simulation time.  Since
   frames of equal shape — same register count and local-memory size —
   are interchangeable once zeroed, retired frames are recycled through
   a pool instead.

   The pool is domain-local ([Domain.DLS]): experiment sweeps launch
   kernels from parallel domains and the pool must not become a point
   of cross-domain sharing.  A recycled frame is reset to exactly the
   freshly-allocated state (all-zero registers, int tags, zero
   scoreboard, zeroed locals), so observable behaviour — including
   reads of never-written registers — is bit-identical to fresh
   allocation. *)

type frame_pool = { mutable pool_n : int; mutable pool_free : frame list }

let frame_pools : (int * int, frame_pool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* Per-shape cap: bounds pool memory at [cap] x frame size per shape per
   domain.  512 covers full occupancy of every architecture we model. *)
let frame_pool_cap = 512

let local_len (dfunc : Ptx.Isa.dfunc) = max dfunc.fsrc.local_bytes 1

let release_frame (f : frame) =
  let tbl = Domain.DLS.get frame_pools in
  let key = (f.nregs, Bytes.length f.local.(0)) in
  match Hashtbl.find_opt tbl key with
  | Some p -> if p.pool_n < frame_pool_cap then begin
      p.pool_n <- p.pool_n + 1;
      p.pool_free <- f :: p.pool_free
    end
  | None -> Hashtbl.add tbl key { pool_n = 1; pool_free = [ f ] }

let fresh_frame (dfunc : Ptx.Isa.dfunc) ~init_mask ~ret_dst =
  let nregs = dfunc.dnregs in
  {
    dfunc;
    nregs;
    regs_i = Array.make (32 * nregs) 0;
    regs_f = Array.make (32 * nregs) 0.;
    regs_tag = Bytes.make (32 * nregs) '\000';
    reg_ready = Array.make nregs 0;
    local = Array.init 32 (fun _ -> Bytes.make (local_len dfunc) '\000');
    stack = [ { pc = 0; mask = init_mask; rpc = Array.length dfunc.dbody } ];
    init_mask;
    ret_dst;
    retvals = Array.make 32 Value.zero;
  }

let reset_frame (f : frame) (dfunc : Ptx.Isa.dfunc) ~init_mask ~ret_dst =
  let nregs = f.nregs in
  f.dfunc <- dfunc;
  Array.fill f.regs_i 0 (32 * nregs) 0;
  Array.fill f.regs_f 0 (32 * nregs) 0.;
  Bytes.fill f.regs_tag 0 (32 * nregs) '\000';
  Array.fill f.reg_ready 0 nregs 0;
  let ll = Bytes.length f.local.(0) in
  Array.iter (fun b -> Bytes.fill b 0 ll '\000') f.local;
  Array.fill f.retvals 0 32 Value.zero;
  f.stack <- [ { pc = 0; mask = init_mask; rpc = Array.length dfunc.dbody } ];
  f.init_mask <- init_mask;
  f.ret_dst <- ret_dst;
  f

let make_frame (dfunc : Ptx.Isa.dfunc) ~init_mask ~ret_dst =
  let tbl = Domain.DLS.get frame_pools in
  match Hashtbl.find_opt tbl (dfunc.dnregs, local_len dfunc) with
  | Some ({ pool_free = f :: tl; _ } as p) ->
    p.pool_n <- p.pool_n - 1;
    p.pool_free <- tl;
    reset_frame f dfunc ~init_mask ~ret_dst
  | _ -> fresh_frame dfunc ~init_mask ~ret_dst

(* ----- register accessors ----- *)

let[@inline] reg_idx _frame lane r = (r lsl 5) lor lane

let[@inline] reg_is_float frame lane r =
  Bytes.get frame.regs_tag (reg_idx frame lane r) = '\001'

let[@inline] set_reg_int frame lane r v =
  let i = reg_idx frame lane r in
  Bytes.set frame.regs_tag i '\000';
  frame.regs_i.(i) <- v

let[@inline] set_reg_float frame lane r v =
  let i = reg_idx frame lane r in
  Bytes.set frame.regs_tag i '\001';
  frame.regs_f.(i) <- v

(* Typed reads keep the boxed-era semantics: reading a float register as
   an int is the same error [Value.to_int] raised; ints coerce to float
   implicitly like [Value.to_float] did. *)
let[@inline] reg_int frame lane r =
  let i = reg_idx frame lane r in
  if Bytes.get frame.regs_tag i = '\001' then Value.to_int (Value.F frame.regs_f.(i))
  else frame.regs_i.(i)

let[@inline] reg_float frame lane r =
  let i = reg_idx frame lane r in
  if Bytes.get frame.regs_tag i = '\001' then frame.regs_f.(i)
  else float_of_int frame.regs_i.(i)

(* Boxed views, for the cold paths (argument setup, call returns). *)
let reg_value frame lane r : Value.t =
  let i = reg_idx frame lane r in
  if Bytes.get frame.regs_tag i = '\001' then Value.F frame.regs_f.(i)
  else Value.I frame.regs_i.(i)

let set_reg_value frame lane r (v : Value.t) =
  match v with
  | Value.I i -> set_reg_int frame lane r i
  | Value.F f -> set_reg_float frame lane r f

(* Tag-preserving register-to-register copy (Mov, call argument and
   return-value plumbing) without boxing. *)
let[@inline] copy_reg ~src ~src_lane ~src_r ~dst ~dst_lane ~dst_r =
  if reg_is_float src src_lane src_r then
    set_reg_float dst dst_lane dst_r src.regs_f.(reg_idx src src_lane src_r)
  else set_reg_int dst dst_lane dst_r src.regs_i.(reg_idx src src_lane src_r)

(* ----- flat register accessors (the interpreter's hot path) -----

   These take the precomputed flat index [lane * nregs + r] directly
   and skip bounds checks: [Decode] validates every register index of
   every instruction against the function's register count, and lanes
   are < 32 by construction, so the index is always in range. *)

let[@inline] fget_int frame i =
  if Bytes.unsafe_get frame.regs_tag i = '\001' then
    Value.to_int (Value.F (Array.unsafe_get frame.regs_f i))
  else Array.unsafe_get frame.regs_i i

let[@inline] fget_float frame i =
  if Bytes.unsafe_get frame.regs_tag i = '\001' then Array.unsafe_get frame.regs_f i
  else float_of_int (Array.unsafe_get frame.regs_i i)

let[@inline] fset_int frame i v =
  Bytes.unsafe_set frame.regs_tag i '\000';
  Array.unsafe_set frame.regs_i i v

let[@inline] fset_float frame i v =
  Bytes.unsafe_set frame.regs_tag i '\001';
  Array.unsafe_set frame.regs_f i v
