(** Kernel launch engine: CTA scheduling across SMs, per-SM warp
    scheduling driven by an event heap, barrier handling and statistics
    collection.  This is the "real GPU hardware" of the paper's Figure
    1, in simulated form. *)

exception Launch_error of string

(** A simulated GPU: architecture, global memory and shared L2.  Device
    state (memory contents, L2) persists across launches, like a real
    CUDA context. *)
type device = {
  arch : Arch.t;
  devmem : Devmem.t;
  l2 : Cache.t;
}

val create_device : Arch.t -> device

(** Result of one kernel launch. *)
type result = {
  cycles : int;  (** launch duration including launch overhead *)
  stats : Stats.t;
  l1_stats : Cache.stats;  (** aggregated over SMs *)
  l2_stats : Cache.stats;  (** delta for this launch *)
  mshr_stalls : int;
  mshr_merges : int;
  ctas : int;
  warps_per_cta : int;
}

(** Event-queue driving a launch.  [Exact_heap] (the default) is
    authoritative: golden metrics depend on its pop order down to
    arrangement-dependent tie-breaks among equal timestamps.
    [Calendar] uses the bucketed calendar queue ({!Calq}): same key
    order, FIFO ties, so cycle counts may differ slightly while
    functional results are identical. *)
type sched = Exact_heap | Calendar

val launch_overhead : int

(** {2 Per-warp runaway guard}

    A launch aborts (with {!Launch_error}, after logging through
    [Obs.Log]) when any single warp executes more than the limit.  The
    effective limit, sampled once per launch, is the programmatic
    override if set, else the [CUDAADVISOR_MAX_WARP_INSTRS] environment
    variable (ignored unless a positive integer), else
    {!default_max_warp_insts}. *)

val default_max_warp_insts : int

(** Raises [Invalid_argument] on non-positive limits. *)
val set_max_warp_insts : int -> unit

val clear_max_warp_insts : unit -> unit

(** The limit the next launch will use. *)
val max_warp_insts : unit -> int

(** {2 Per-domain cancellation}

    Wall-clock request timeouts for long-lived embedders (the serve
    daemon), layered on the runaway guard: the embedder installs a
    check on its own domain, and any launch issued from that domain
    polls it at launch entry and then every few thousand executed
    instructions, raising {!Cancelled} when it fires.  Only the cancelled launch unwinds;
    the device, the process and other domains are untouched. *)

exception Cancelled of string

(** Install a check on the calling domain: return [Some reason] to
    abort in-flight and future launches of this domain. *)
val set_cancel_check : (unit -> string option) -> unit

val clear_cancel_check : unit -> unit

(** The check currently installed on the calling domain (the default
    never fires).  Lets an embedder capture one request's deadline and
    re-install it on worker domains it fans out to, since DLS state
    does not inherit across [Domain.spawn]. *)
val current_cancel_check : unit -> unit -> string option

(** Poll the calling domain's check now, raising {!Cancelled} if it
    fired.  For long non-simulation operations that want the same
    deadline behaviour. *)
val poll_cancel : unit -> unit

(** Maximum CTAs resident per SM for a kernel with the given shape.
    Shared allocations round up to
    [Arch.shared_alloc_granularity] before dividing into the SM's
    array.  Raises {!Launch_error} when the CTA cannot fit on an SM at
    all (more warps than [max_warps_per_sm], or a rounded shared
    allocation larger than the SM's array). *)
val occupancy_limit : Arch.t -> warps_per_cta:int -> shared_bytes:int -> int

(** Launch [kernel] from [prog] over [grid] x [block] threads.  [sink]
    receives instrumentation hook events; [l1_enabled:false] disables
    L1 caching of global loads (Kepler's default for real hardware).
    [bankmodel:true] opts into charging shared-memory bank-conflict
    replays as issue cycles (conflict *counting* runs whenever a sink
    is attached; with the model off, timing is bit-identical to the
    pre-bank-model simulator).
    Raises {!Launch_error} on malformed launches and {!Exec.Trap} on
    runtime faults inside the kernel. *)
val launch :
  ?sink:Hookev.sink ->
  ?l1_enabled:bool ->
  ?sched:sched ->
  ?bankmodel:bool ->
  device ->
  prog:Ptx.Isa.prog ->
  kernel:string ->
  grid:int * int ->
  block:int * int ->
  args:Value.t list ->
  unit ->
  result
