(** The memory coalescing unit: combines the per-lane addresses of one
    warp memory instruction into cache-line-granularity transactions.
    The number of unique lines touched is exactly the paper's
    per-instruction memory divergence measure (Figure 5). *)

(** Sorted unique line ids touched by the accesses ([width] bytes each;
    an access may straddle two lines). *)
val unique_lines : line_size:int -> width:int -> int list -> int list

val transactions : line_size:int -> width:int -> int list -> int

(** Allocation-free variant for the interpreter's inner loop and the
    packed-trace analyzers: collect the unique lines touched by the
    addresses [src.(off) .. src.(off+n-1)] into [scratch] (sorted
    ascending) and return their count.  [scratch] must hold at least
    [2*n] slots. *)
val collect_unique_lines :
  line_size:int ->
  width:int ->
  src:int array ->
  off:int ->
  n:int ->
  int array ->
  int
