(* GPU architecture configurations (Table 1 of the paper) and the timing
   parameters of the simulator.  Latencies follow published
   microbenchmark numbers for Kepler/Pascal in rough proportion; the
   experiments depend on their relative magnitudes (L1 << L2 << DRAM),
   not their absolute values. *)

type hook_cost = {
  hook_base : int; (* call overhead of the inserted analysis function *)
  hook_per_lane : int; (* atomic serialization of trace-buffer appends *)
  hook_mem_txn : int; (* extra global-memory traffic per trace entry *)
}

type t = {
  name : string;
  short_name : string;
  compute_capability : string;
  num_sms : int;
  warp_size : int;
  max_warps_per_sm : int;
  max_ctas_per_sm : int;
  max_threads_per_cta : int;
  shared_mem_per_sm : int;
  (* L1 data cache *)
  l1_size : int;
  l1_assoc : int;
  line_size : int; (* L1 line == coalescing granularity *)
  l1_latency : int;
  mshr_entries : int;
  (* shared L2 *)
  l2_size : int;
  l2_assoc : int;
  l2_latency : int;
  l2_service : int; (* cycles of shared L2 bandwidth per transaction *)
  dram_latency : int;
  dram_service : int; (* cycles of shared DRAM bandwidth per transaction *)
  (* instruction costs *)
  alu_latency : int;
  sfu_latency : int; (* sqrt/exp/log *)
  branch_latency : int;
  shared_latency : int;
  call_latency : int;
  atom_latency : int;
  txn_issue : int; (* extra cycles per additional coalesced transaction *)
  issue_gap : int; (* SM issue slot width *)
  (* shared-memory banking: a warp's shared access is conflict-free only
     when every active lane hits a distinct bank (or the same 4 B word —
     broadcast).  [degree - 1] replays each cost [shared_replay]. *)
  shared_banks : int;
  shared_bank_width : int; (* bytes per bank slice of an address *)
  shared_replay : int; (* issue cycles per conflict replay *)
  shared_alloc_granularity : int; (* per-CTA shared allocation rounding *)
  (* where the L1/tex cache sits: Pascal's unified cache lives in the TPC
     between SM and NoC, which shortens the L1-miss path (Section 4.2-(D)) *)
  l1_in_tpc : bool;
  hook : hook_cost;
}

let default_hook_cost = { hook_base = 12; hook_per_lane = 3; hook_mem_txn = 50 }

(* NVIDIA Tesla K40c (Kepler, CC 3.5).  The L1 and shared memory share
   on-chip storage: 16/48, 32/32 or 48/16 KB splits. *)
let kepler_k40c ?(num_sms = 15) ?(l1_kb = 16) () =
  if l1_kb <> 16 && l1_kb <> 32 && l1_kb <> 48 then
    invalid_arg "Arch.kepler_k40c: L1 split must be 16, 32 or 48 KB";
  {
    name = Printf.sprintf "NVIDIA Tesla K40c (Kepler, %dKB L1)" l1_kb;
    short_name = Printf.sprintf "kepler-%dk" l1_kb;
    compute_capability = "3.5";
    num_sms;
    warp_size = 32;
    max_warps_per_sm = 64;
    max_ctas_per_sm = 16;
    max_threads_per_cta = 1024;
    shared_mem_per_sm = (64 - l1_kb) * 1024;
    l1_size = l1_kb * 1024;
    l1_assoc = 4;
    line_size = 128;
    l1_latency = 32;
    mshr_entries = 64;
    l2_size = 1536 * 1024;
    l2_assoc = 16;
    l2_latency = 190;
    l2_service = 1;
    dram_latency = 350;
    dram_service = 4;
    alu_latency = 4;
    sfu_latency = 10;
    branch_latency = 2;
    shared_latency = 26;
    call_latency = 10;
    atom_latency = 120;
    txn_issue = 6;
    issue_gap = 1;
    shared_banks = 32;
    shared_bank_width = 4;
    shared_replay = 2;
    shared_alloc_granularity = 256;
    l1_in_tpc = false;
    hook = default_hook_cost;
  }

(* NVIDIA Tesla P100 (Pascal, CC 6.0): 24 KB unified L1/texture cache
   with 32 B sectors; shared memory is a dedicated 64 KB array. *)
let pascal_p100 ?(num_sms = 56) () =
  {
    name = "NVIDIA Tesla P100 (Pascal, 24KB unified L1)";
    short_name = "pascal-24k";
    compute_capability = "6.0";
    num_sms;
    warp_size = 32;
    max_warps_per_sm = 64;
    max_ctas_per_sm = 32;
    max_threads_per_cta = 1024;
    shared_mem_per_sm = 64 * 1024;
    l1_size = 24 * 1024;
    l1_assoc = 4;
    line_size = 32;
    l1_latency = 28;
    mshr_entries = 64;
    l2_size = 4096 * 1024;
    l2_assoc = 16;
    l2_latency = 160;
    l2_service = 1;
    dram_latency = 300;
    dram_service = 1;
    alu_latency = 4;
    sfu_latency = 8;
    branch_latency = 2;
    shared_latency = 24;
    call_latency = 10;
    atom_latency = 100;
    txn_issue = 4;
    issue_gap = 1;
    shared_banks = 32;
    shared_bank_width = 4;
    shared_replay = 2;
    shared_alloc_granularity = 256;
    l1_in_tpc = true;
    hook = default_hook_cost;
  }

(* Effective L1-miss penalty: on Pascal the unified cache sits in the
   TPC, in front of the NoC, so the miss path to L2 is shorter. *)
let l1_miss_to_l2_latency t = if t.l1_in_tpc then t.l2_latency - 30 else t.l2_latency

(* Architectures by user-facing name, shared by the CLI's --arch flag
   and the serve protocol's "arch" field. *)
let of_name = function
  | "kepler" | "kepler-16k" -> Some (kepler_k40c ~l1_kb:16 ())
  | "kepler-32k" -> Some (kepler_k40c ~l1_kb:32 ())
  | "kepler-48k" -> Some (kepler_k40c ~l1_kb:48 ())
  | "pascal" | "pascal-24k" -> Some (pascal_p100 ())
  | _ -> None

let known_names = [ "kepler"; "kepler-32k"; "kepler-48k"; "pascal" ]
