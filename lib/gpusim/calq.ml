(* Calendar queue (Brown 1988) tuned for the event loop's near-monotonic
   timestamps: a ring of per-timestamp FIFO buckets covering the window
   [cur, cur + window), with a binary heap as fallback for keys outside
   the window.  Push and pop are O(1) amortized when keys cluster just
   ahead of the current time — the common case for warp wakeups, whose
   deltas are bounded by the memory latencies.

   Invariants:
   - [cur] only advances; every queued key is >= [cur] once popped past.
   - Ring keys lie in [cur, cur + window), so each slot holds at most
     one distinct key at a time (its unique representative mod window).
   - Keys pushed below [cur] or at/above [cur + window] go to the
     fallback heap; pop compares the ring's next timestamp against the
     heap minimum, so ordering by key is exact either way.

   Note this structure is NOT pop-order-identical to [Heap] when keys
   tie: [Heap]'s tie order depends on its internal arrangement, while
   buckets here are FIFO.  The simulator's golden metrics are sensitive
   to tie order (see DESIGN.md), so [Gpu.launch] uses the heap by
   default and this queue only when explicitly selected. *)

type 'a slot = {
  mutable skey : int;
  mutable front : 'a list; (* next to pop, in order *)
  mutable back : 'a list; (* most recent push first *)
}

type 'a t = {
  mask : int; (* window - 1; window is a power of two *)
  slots : 'a slot array;
  mutable cur : int; (* lower bound for every ring key *)
  mutable ring_size : int;
  overflow : 'a Heap.t;
  mutable size : int;
  (* memoized key of the next pop; [max_int] = unknown/empty *)
  mutable next_key : int;
}

let create ?(window = 2048) () =
  if window <= 0 then invalid_arg "Calq.create: window must be positive";
  let w = ref 1 in
  while !w < window do
    w := !w * 2
  done;
  {
    mask = !w - 1;
    slots = Array.init !w (fun _ -> { skey = 0; front = []; back = [] });
    cur = 0;
    ring_size = 0;
    overflow = Heap.create ();
    size = 0;
    next_key = max_int;
  }

let is_empty t = t.size = 0
let size t = t.size

let[@inline] slot_empty (s : 'a slot) = s.front == [] && s.back == []

let push t key v =
  t.size <- t.size + 1;
  if key >= t.cur && key - t.cur <= t.mask then begin
    let s = t.slots.(key land t.mask) in
    s.skey <- key;
    s.back <- v :: s.back;
    t.ring_size <- t.ring_size + 1
  end
  else Heap.push t.overflow key v;
  (* [max_int] means "unknown", not "infinity": only lower a *known*
     memo.  (With an unknown memo a smaller key may already be queued,
     so the pushed key is merely an upper bound.) *)
  if t.next_key <> max_int && key < t.next_key then t.next_key <- key

(* Key of the next pop.  Advances [cur] over empty slots as a side
   effect (invisible to ordering: nothing is queued below the first
   nonempty timestamp), memoizing the result so back-to-back peeks
   after a run of pushes stay O(1). *)
let min_key t =
  if t.size = 0 then max_int
  else if t.next_key <> max_int then t.next_key
  else begin
    let hk = Heap.min_key t.overflow in
    if t.ring_size = 0 then t.next_key <- hk
    else begin
      (* scan the ring from [cur]; the heap minimum bounds the scan *)
      let ts = ref t.cur in
      let stop = min hk (t.cur + t.mask) in
      while
        slot_empty t.slots.(!ts land t.mask) && !ts < stop
      do
        incr ts
      done;
      let s = t.slots.(!ts land t.mask) in
      if (not (slot_empty s)) && s.skey = !ts && !ts <= hk then begin
        t.cur <- !ts;
        t.next_key <- !ts
      end
      else begin
        (* ring's next timestamp is past the heap minimum *)
        t.cur <- max t.cur (min !ts hk);
        t.next_key <- hk
      end
    end;
    t.next_key
  end

let pop t =
  if t.size = 0 then None
  else begin
    let k = min_key t in
    t.next_key <- max_int;
    t.size <- t.size - 1;
    if k >= t.cur && k - t.cur <= t.mask && not (slot_empty t.slots.(k land t.mask))
       && t.slots.(k land t.mask).skey = k
    then begin
      let s = t.slots.(k land t.mask) in
      let v =
        match s.front with
        | x :: tl ->
          s.front <- tl;
          x
        | [] -> (
          match List.rev s.back with
          | x :: tl ->
            s.front <- tl;
            s.back <- [];
            x
          | [] -> assert false)
      in
      t.ring_size <- t.ring_size - 1;
      t.cur <- k;
      Some (k, v)
    end
    else
      match Heap.pop t.overflow with
      | Some (hk, v) ->
        if t.ring_size = 0 then t.cur <- max t.cur hk;
        Some (hk, v)
      | None -> assert false
  end

(* [run_ahead_ok t k]: would [push t k v; pop t] return [(k, v)] and
   leave the queue's observable ordering unchanged?  True exactly when
   [k] beats every queued key strictly — a tie loses to the already
   queued item (bucket FIFO / heap arrangement), so ties never skip. *)
let run_ahead_ok t k = t.size = 0 || k < min_key t
