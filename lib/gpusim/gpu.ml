(* Kernel launch engine: CTA scheduling across SMs, per-SM greedy
   warp scheduling driven by an event heap, barrier handling, and
   result/statistics collection. *)

exception Launch_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

type device = {
  arch : Arch.t;
  devmem : Devmem.t;
  l2 : Cache.t;
}

let create_device arch =
  {
    arch;
    devmem = Devmem.create ();
    l2 = Cache.create ~size:arch.Arch.l2_size ~assoc:arch.Arch.l2_assoc ~line:arch.Arch.line_size;
  }

type result = {
  cycles : int;
  stats : Stats.t;
  l1_stats : Cache.stats;
  l2_stats : Cache.stats; (* delta for this launch *)
  mshr_stalls : int;
  mshr_merges : int;
  ctas : int;
  warps_per_cta : int;
}

let launch_overhead = 2_000
let max_warp_insts = 400_000_000

let occupancy_limit (arch : Arch.t) ~warps_per_cta ~shared_bytes =
  let by_warps = arch.max_warps_per_sm / warps_per_cta in
  let by_shared =
    if shared_bytes = 0 then max_int else arch.shared_mem_per_sm / shared_bytes
  in
  max 1 (min arch.max_ctas_per_sm (min by_warps by_shared))

let launch ?(sink = Hookev.null_sink) ?(l1_enabled = true) device ~prog ~kernel
    ~grid:(gx, gy) ~block:(bx, by) ~args () : result =
  let arch = device.arch in
  let kf = Ptx.Isa.find_func prog kernel in
  if not kf.is_kernel then fail "%s is not a kernel" kernel;
  if List.length args <> kf.arity then
    fail "%s expects %d arguments, got %d" kernel kf.arity (List.length args);
  let threads_per_cta = bx * by in
  if threads_per_cta <= 0 || threads_per_cta > arch.max_threads_per_cta then
    fail "block size %dx%d out of range" bx by;
  if gx <= 0 || gy <= 0 then fail "empty grid %dx%d" gx gy;
  let warps_per_cta = (threads_per_cta + 31) / 32 in
  let shared_bytes = Ptx.Isa.shared_bytes_for_launch prog kernel in
  if shared_bytes > arch.shared_mem_per_sm then
    fail "kernel needs %d B shared memory, SM has %d" shared_bytes
      arch.shared_mem_per_sm;
  let stats = Stats.create () in
  let addr_scratch, line_scratch = Exec.make_scratch () in
  let ctx =
    {
      Exec.arch;
      prog;
      kernel;
      devmem = device.devmem;
      l2 = device.l2;
      sink;
      stats;
      grid = (gx, gy);
      block = (bx, by);
      l1_enabled;
      l2_free = ref 0;
      dram_free = ref 0;
      hook_free = ref 0;
      addr_scratch;
      line_scratch;
    }
  in
  let sms =
    Array.init arch.num_sms (fun i ->
        {
          Machine.sm_id' = i;
          l1 = Cache.create ~size:arch.l1_size ~assoc:arch.l1_assoc ~line:arch.line_size;
          mshr = Mshr.create arch.mshr_entries;
          next_issue = 0;
          l1_port_free = 0;
          resident_ctas = 0;
        })
  in
  let l2_before =
    { device.l2.Cache.stats with Cache.reads = device.l2.Cache.stats.Cache.reads }
  in
  let heap : (Machine.sm * Machine.warp) Heap.t = Heap.create () in
  let total_ctas = gx * gy in
  let next_cta = ref 0 in
  let end_time = ref 0 in
  let args = Array.of_list args in
  let make_cta ~linear ~(sm : Machine.sm) ~start_time =
    let cx = linear mod gx and cy = linear / gx in
    let rec cta =
      {
        Machine.cta_x = cx;
        cta_y = cy;
        cta_linear = linear;
        shared = Bytes.make (max shared_bytes 1) '\000';
        warps = [||];
        at_barrier = 0;
        finished_warps = 0;
        sm_id = sm.Machine.sm_id';
      }
    and warps =
      lazy
        (Array.init warps_per_cta (fun w ->
             let first_thread = w * 32 in
             let live =
               min 32 (threads_per_cta - first_thread) |> fun n ->
               if n <= 0 then 0 else Machine.full_mask n
             in
             let frame = Machine.make_frame kf ~init_mask:live ~ret_dst:None in
             Array.iteri
               (fun i v ->
                 Machine.iter_lanes live (fun lane ->
                     Machine.set_reg_value frame lane i v))
               args;
             {
               Machine.warp_id = w;
               live_mask = live;
               cta;
               frames = [ frame ];
               ready_at = start_time;
               status = Machine.Ready;
               barrier_arrival = 0;
               insts = 0;
             }))
    in
    cta.Machine.warps <- Lazy.force warps;
    sm.Machine.resident_ctas <- sm.Machine.resident_ctas + 1;
    Array.iter (fun w -> Heap.push heap w.Machine.ready_at (sm, w)) cta.Machine.warps;
    cta
  in
  (* Initial CTA placement: fill SMs round-robin up to the occupancy
     limit. *)
  let limit = occupancy_limit arch ~warps_per_cta ~shared_bytes in
  (try
     for _round = 1 to limit do
       Array.iter
         (fun sm ->
           if !next_cta < total_ctas then begin
             ignore (make_cta ~linear:!next_cta ~sm ~start_time:0);
             incr next_cta
           end
           else raise Exit)
         sms
     done
   with Exit -> ());
  (* Barrier release: when every non-finished warp of the CTA arrived. *)
  let try_release_barrier (cta : Machine.cta) =
    let active = Array.length cta.warps - cta.finished_warps in
    if active > 0 && cta.at_barrier >= active then begin
      let release_time =
        Array.fold_left
          (fun acc (w : Machine.warp) ->
            if w.status = Machine.At_barrier then max acc w.barrier_arrival else acc)
          0 cta.warps
      in
      cta.at_barrier <- 0;
      Array.iter
        (fun (w : Machine.warp) ->
          if w.status = Machine.At_barrier then begin
            w.status <- Machine.Ready;
            w.ready_at <- release_time;
            let sm = sms.(cta.sm_id) in
            Heap.push heap w.ready_at (sm, w)
          end)
        cta.warps
    end
    else if active = 0 && cta.at_barrier > 0 then cta.at_barrier <- 0
  in
  (* Main event loop. *)
  while not (Heap.is_empty heap) do
    match Heap.pop heap with
    | None -> ()
    | Some (_, (sm, warp)) -> (
      match warp.Machine.status with
      | Machine.Finished | Machine.At_barrier -> ()
      | Machine.Ready ->
        Exec.step ctx sm warp;
        if stats.Stats.warp_insts > max_warp_insts then
          fail "kernel %s exceeded %d warp instructions (runaway loop?)" kernel
            max_warp_insts;
        end_time := max !end_time warp.Machine.ready_at;
        let cta = warp.Machine.cta in
        (match warp.Machine.status with
        | Machine.Ready -> Heap.push heap warp.Machine.ready_at (sm, warp)
        | Machine.At_barrier -> try_release_barrier cta
        | Machine.Finished ->
          try_release_barrier cta;
          if cta.Machine.finished_warps = Array.length cta.Machine.warps then begin
            sm.Machine.resident_ctas <- sm.Machine.resident_ctas - 1;
            if !next_cta < total_ctas then begin
              ignore
                (make_cta ~linear:!next_cta ~sm ~start_time:warp.Machine.ready_at);
              incr next_cta
            end
          end))
  done;
  if !next_cta < total_ctas then
    fail "launch of %s ended with %d/%d CTAs unscheduled" kernel !next_cta total_ctas;
  let l1_stats =
    Array.fold_left
      (fun acc (sm : Machine.sm) -> Cache.add_stats acc sm.l1.Cache.stats)
      (Cache.empty_stats ()) sms
  in
  let l2_stats =
    {
      Cache.reads = device.l2.Cache.stats.Cache.reads - l2_before.Cache.reads;
      read_hits = device.l2.Cache.stats.Cache.read_hits - l2_before.Cache.read_hits;
      read_misses = device.l2.Cache.stats.Cache.read_misses - l2_before.Cache.read_misses;
      writes = device.l2.Cache.stats.Cache.writes - l2_before.Cache.writes;
      write_evictions =
        device.l2.Cache.stats.Cache.write_evictions - l2_before.Cache.write_evictions;
    }
  in
  let mshr_stalls =
    Array.fold_left (fun acc (sm : Machine.sm) -> acc + sm.mshr.Mshr.stall_cycles) 0 sms
  in
  let mshr_merges =
    Array.fold_left (fun acc (sm : Machine.sm) -> acc + sm.mshr.Mshr.merges) 0 sms
  in
  {
    cycles = !end_time + launch_overhead;
    stats;
    l1_stats;
    l2_stats;
    mshr_stalls;
    mshr_merges;
    ctas = total_ctas;
    warps_per_cta;
  }
