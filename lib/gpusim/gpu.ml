(* Kernel launch engine: CTA scheduling across SMs, per-SM greedy
   warp scheduling driven by an event queue, barrier handling, and
   result/statistics collection. *)

exception Launch_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

type device = {
  arch : Arch.t;
  devmem : Devmem.t;
  l2 : Cache.t;
}

let create_device arch =
  {
    arch;
    devmem = Devmem.create ();
    l2 = Cache.create ~size:arch.Arch.l2_size ~assoc:arch.Arch.l2_assoc ~line:arch.Arch.line_size;
  }

type result = {
  cycles : int;
  stats : Stats.t;
  l1_stats : Cache.stats;
  l2_stats : Cache.stats; (* delta for this launch *)
  mshr_stalls : int;
  mshr_merges : int;
  ctas : int;
  warps_per_cta : int;
}

(* Event-queue implementation driving the launch.  [Exact_heap] is the
   authoritative scheduler: golden metrics depend on its pop order down
   to arrangement-dependent tie-breaks (see DESIGN.md).  [Calendar]
   swaps in the bucketed calendar queue, which pops in the same *key*
   order but breaks ties FIFO, so per-launch cycle counts can differ in
   the last few digits; functional results are unaffected. *)
type sched = Exact_heap | Calendar

let launch_overhead = 2_000

(* Runaway guard, per warp: a single warp spinning without progress is
   the failure mode this catches (the old launch-global counter tripped
   on the *sum* over warps, so big-enough grids could trip it without
   any warp misbehaving).  The limit is configurable — programmatically
   (CLI `--max-warp-instrs`) or through the CUDAADVISOR_MAX_WARP_INSTRS
   environment variable — and sampled once per launch. *)
let default_max_warp_insts = 50_000_000

let max_warp_insts_override : int option ref = ref None

let set_max_warp_insts limit =
  if limit <= 0 then invalid_arg "Gpu.set_max_warp_insts: limit must be positive";
  max_warp_insts_override := Some limit

let clear_max_warp_insts () = max_warp_insts_override := None

let max_warp_insts () =
  match !max_warp_insts_override with
  | Some n -> n
  | None ->
    (* malformed values warn (once per launch) and fall back — they must
       never abort a long-lived daemon *)
    Obs.Env.positive_int "CUDAADVISOR_MAX_WARP_INSTRS"
      ~default:(fun () -> default_max_warp_insts)

(* ----- per-domain cancellation (wall-clock timeouts) -----

   A long-lived embedder (`advisor serve`) needs to abort one runaway
   *request* without killing the process or waiting for the
   instruction-count runaway guard, which is calibrated for honest
   workloads, not deadlines.  The embedder installs a check on its own
   domain (typically "past the request deadline?"); the launch loop
   polls it on entry and then every [cancel_poll_mask + 1] executed
   instructions — layered on the guard, which stays the backstop for
   infinite loops when no deadline is set.  Raising {!Cancelled}
   unwinds this launch only; the device and all other domains are
   untouched. *)

exception Cancelled of string

let cancel_key : (unit -> string option) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun () -> None)

let set_cancel_check f = Domain.DLS.set cancel_key f
let clear_cancel_check () = Domain.DLS.set cancel_key (fun () -> None)

(* The calling domain's installed check, for propagating one request's
   deadline into worker domains it fans work out to (DLS does not
   inherit across [Domain.spawn]). *)
let current_cancel_check () = Domain.DLS.get cancel_key

(* Poll the calling domain's check and raise if it fired.  Exposed for
   non-simulation long operations (the serve daemon's diagnostic ops). *)
let poll_cancel () =
  match (Domain.DLS.get cancel_key) () with
  | Some reason -> raise (Cancelled reason)
  | None -> ()

let cancel_poll_mask = 0xFFF (* poll every 4096 executed instructions *)

(* Resident-CTA limit per SM.  Shared allocations round up to the
   hardware allocation granularity before dividing into the SM's array,
   and a CTA that cannot fit on an SM at all is a launch error — the
   old [max 1] silently scheduled a CTA whose warps exceeded
   [max_warps_per_sm]. *)
let occupancy_limit (arch : Arch.t) ~warps_per_cta ~shared_bytes =
  if warps_per_cta > arch.max_warps_per_sm then
    fail "CTA of %d warps exceeds the SM limit of %d warps" warps_per_cta
      arch.max_warps_per_sm;
  let by_warps = arch.max_warps_per_sm / warps_per_cta in
  let g = arch.shared_alloc_granularity in
  let rounded = (shared_bytes + g - 1) / g * g in
  let by_shared =
    if rounded = 0 then max_int else arch.shared_mem_per_sm / rounded
  in
  if by_shared = 0 then
    fail
      "CTA shared allocation of %d B (%d B after %d B-granularity rounding) \
       exceeds the SM's %d B"
      shared_bytes rounded g arch.shared_mem_per_sm;
  min arch.max_ctas_per_sm (min by_warps by_shared)

(* The event loop is written against this record so the scheduler is
   swappable; one indirect call per queue operation is noise next to
   the instruction run each pop now triggers. *)
type 'a queue = {
  qpush : int -> 'a -> unit;
  qpop : unit -> (int * 'a) option;
  qempty : unit -> bool;
  (* [qrun_ahead k]: popping right after pushing key [k] would return
     that same element and leave the queue bit-identical — so the
     caller may keep hold of the element and skip both operations. *)
  qrun_ahead : int -> bool;
  qsize : unit -> int; (* queue-depth sampling (Obs), read-only *)
}

let heap_queue () : 'a queue =
  let h = Heap.create () in
  {
    qpush = (fun k v -> Heap.push h k v);
    qpop = (fun () -> Heap.pop h);
    qempty = (fun () -> Heap.is_empty h);
    qrun_ahead = (fun k -> Heap.run_ahead_ok h k);
    qsize = (fun () -> Heap.size h);
  }

let calendar_queue () : 'a queue =
  let q = Calq.create () in
  {
    qpush = (fun k v -> Calq.push q k v);
    qpop = (fun () -> Calq.pop q);
    qempty = (fun () -> Calq.is_empty q);
    qrun_ahead = (fun k -> Calq.run_ahead_ok q k);
    qsize = (fun () -> Calq.size q);
  }

(* ----- self-profiling (Obs) -----

   Always-on registry instruments are updated once per launch / per SM
   — noise next to the event loop.  In-loop sampling (scheduler queue
   depth, MSHR occupancy) reads the tracing flag once per launch and
   fires every [sample_period] pops only when tracing is enabled, so
   the disabled hot path pays one hoisted bool and a land/branch per
   pop. *)

let m_launches = Obs.Metrics.counter "sim.launches"
let m_cycles = Obs.Metrics.counter "sim.cycles"
let m_warp_insts = Obs.Metrics.counter "sim.warp_insts"
let m_l1_hit_rate = Obs.Metrics.histogram "sim.l1.hit_rate_pct"
let m_mshr_occupancy = Obs.Metrics.histogram "sim.mshr.occupancy"
let m_queue_depth = Obs.Metrics.histogram "sim.queue.depth"

let sample_period_mask = 255 (* sample every 256 pops *)

(* Per-SM cycle gauges, interned once per SM index. *)
let sm_cycle_gauges : (int, Obs.Metrics.gauge) Hashtbl.t = Hashtbl.create 64
let sm_gauges_lock = Mutex.create ()

let sm_cycle_gauge i =
  Mutex.protect sm_gauges_lock (fun () ->
      match Hashtbl.find_opt sm_cycle_gauges i with
      | Some g -> g
      | None ->
        let g = Obs.Metrics.gauge (Printf.sprintf "sim.sm%d.cycles" i) in
        Hashtbl.replace sm_cycle_gauges i g;
        g)

let launch ?(sink = Hookev.null_sink) ?(l1_enabled = true) ?(sched = Exact_heap)
    ?(bankmodel = false) device ~prog ~kernel ~grid:(gx, gy) ~block:(bx, by)
    ~args () : result =
  Obs.Trace.with_span ~cat:"sim" ("launch:" ^ kernel) @@ fun () ->
  let obs_on = Obs.Trace.enabled () in
  let arch = device.arch in
  let kf = Ptx.Isa.find_func prog kernel in
  if not kf.is_kernel then fail "%s is not a kernel" kernel;
  if List.length args <> kf.arity then
    fail "%s expects %d arguments, got %d" kernel kf.arity (List.length args);
  let threads_per_cta = bx * by in
  if threads_per_cta <= 0 || threads_per_cta > arch.max_threads_per_cta then
    fail "block size %dx%d out of range" bx by;
  if gx <= 0 || gy <= 0 then fail "empty grid %dx%d" gx gy;
  let max_warp_insts = max_warp_insts () in
  (* sampled once per launch: the cancellation check of the domain that
     issued this launch (a constant [fun () -> None] unless an embedder
     installed one) *)
  let cancel_check = Domain.DLS.get cancel_key in
  (* cheap launches may execute fewer instructions than a poll period,
     so an expired deadline must also cancel at launch entry *)
  (match cancel_check () with
  | Some reason ->
    Obs.Log.warn "gpusim" "kernel %s: launch cancelled: %s" kernel reason;
    raise (Cancelled reason)
  | None -> ());
  let warps_per_cta = (threads_per_cta + 31) / 32 in
  let shared_bytes = Ptx.Isa.shared_bytes_for_launch prog kernel in
  if shared_bytes > arch.shared_mem_per_sm then
    fail "kernel needs %d B shared memory, SM has %d" shared_bytes
      arch.shared_mem_per_sm;
  (* decode once per program; cached across launches and sweeps *)
  let dec = Ptx.Decode.of_prog prog in
  let kdf = dec.Ptx.Isa.dfuncs.(Ptx.Decode.func_index dec kernel) in
  let stats = Stats.create () in
  let addr_scratch, line_scratch = Exec.make_scratch () in
  let ctx =
    {
      Exec.arch;
      prog;
      dec;
      kernel;
      devmem = device.devmem;
      l2 = device.l2;
      sink;
      stats;
      grid = (gx, gy);
      block = (bx, by);
      l1_enabled;
      l2_free = ref 0;
      dram_free = ref 0;
      hook_free = ref 0;
      addr_scratch;
      line_scratch;
      bankmodel;
      (* conflict detection runs whenever a profiler is listening or the
         bank model charges cycles; bare native runs skip it entirely *)
      bankcount = bankmodel || sink != Hookev.null_sink;
      bank_scratch = Array.make 32 0;
      bank_count = Array.make arch.shared_banks 0;
    }
  in
  let sms =
    Array.init arch.num_sms (fun i ->
        {
          Machine.sm_id' = i;
          l1 = Cache.create ~size:arch.l1_size ~assoc:arch.l1_assoc ~line:arch.line_size;
          mshr = Mshr.create arch.mshr_entries;
          next_issue = 0;
          l1_port_free = 0;
          resident_ctas = 0;
        })
  in
  let l2_before =
    { device.l2.Cache.stats with Cache.reads = device.l2.Cache.stats.Cache.reads }
  in
  let q : (Machine.sm * Machine.warp) queue =
    match sched with Exact_heap -> heap_queue () | Calendar -> calendar_queue ()
  in
  let total_ctas = gx * gy in
  let next_cta = ref 0 in
  let end_time = ref 0 in
  let args = Array.of_list args in
  let make_cta ~linear ~(sm : Machine.sm) ~start_time =
    let cx = linear mod gx and cy = linear / gx in
    let rec cta =
      {
        Machine.cta_x = cx;
        cta_y = cy;
        cta_linear = linear;
        (* sized exactly: Exec bounds-checks every shared access, so a
           0-byte kernel gets no silent padding byte to land in *)
        shared = Bytes.make shared_bytes '\000';
        warps = [||];
        at_barrier = 0;
        finished_warps = 0;
        sm_id = sm.Machine.sm_id';
      }
    and warps =
      lazy
        (Array.init warps_per_cta (fun w ->
             let first_thread = w * 32 in
             let live =
               min 32 (threads_per_cta - first_thread) |> fun n ->
               if n <= 0 then 0 else Machine.full_mask n
             in
             let frame = Machine.make_frame kdf ~init_mask:live ~ret_dst:None in
             Array.iteri
               (fun i v ->
                 Machine.iter_lanes live (fun lane ->
                     Machine.set_reg_value frame lane i v))
               args;
             {
               Machine.warp_id = w;
               live_mask = live;
               cta;
               frames = [ frame ];
               ready_at = start_time;
               status = Machine.Ready;
               barrier_arrival = 0;
               insts = 0;
             }))
    in
    cta.Machine.warps <- Lazy.force warps;
    sm.Machine.resident_ctas <- sm.Machine.resident_ctas + 1;
    Array.iter (fun w -> q.qpush w.Machine.ready_at (sm, w)) cta.Machine.warps;
    cta
  in
  (* Initial CTA placement: fill SMs round-robin up to the occupancy
     limit. *)
  let limit = occupancy_limit arch ~warps_per_cta ~shared_bytes in
  (try
     for _round = 1 to limit do
       Array.iter
         (fun sm ->
           if !next_cta < total_ctas then begin
             ignore (make_cta ~linear:!next_cta ~sm ~start_time:0);
             incr next_cta
           end
           else raise Exit)
         sms
     done
   with Exit -> ());
  (* Barrier release: when every non-finished warp of the CTA arrived. *)
  let try_release_barrier (cta : Machine.cta) =
    let active = Array.length cta.warps - cta.finished_warps in
    if active > 0 && cta.at_barrier >= active then begin
      let release_time =
        Array.fold_left
          (fun acc (w : Machine.warp) ->
            if w.status = Machine.At_barrier then max acc w.barrier_arrival else acc)
          0 cta.warps
      in
      cta.at_barrier <- 0;
      Array.iter
        (fun (w : Machine.warp) ->
          if w.status = Machine.At_barrier then begin
            w.status <- Machine.Ready;
            w.ready_at <- release_time;
            let sm = sms.(cta.sm_id) in
            q.qpush w.ready_at (sm, w)
          end)
        cta.warps
    end
    else if active = 0 && cta.at_barrier > 0 then cta.at_barrier <- 0
  in
  (* Main event loop.  Each pop steps its warp in a *superstep*: as long
     as the warp stays ready and requeueing it would pop it right back
     (the [qrun_ahead] identity check), keep stepping it without
     touching the queue.  The skipped push/pop pairs are exact no-ops
     on the queue's internal arrangement, so event ordering — including
     tie-breaks — and therefore cycle counts are bit-identical to the
     one-instruction-per-pop loop. *)
  let pops = ref 0 in
  let steps = ref 0 in
  while not (q.qempty ()) do
    match q.qpop () with
    | None -> ()
    | Some (_, (sm, warp)) -> (
      (* scheduler/memory-system sampling: only when tracing is on, and
         only every [sample_period_mask + 1] pops *)
      if obs_on then begin
        incr pops;
        if !pops land sample_period_mask = 0 then begin
          Obs.Metrics.observe m_queue_depth (q.qsize ());
          Obs.Metrics.observe m_mshr_occupancy (Mshr.in_flight sm.Machine.mshr)
        end
      end;
      match warp.Machine.status with
      | Machine.Finished | Machine.At_barrier -> ()
      | Machine.Ready ->
        let running = ref true in
        while !running do
          Exec.step ctx sm warp;
          incr steps;
          (if !steps land cancel_poll_mask = 0 then
             match cancel_check () with
             | Some reason ->
               Obs.Log.warn "gpusim" "kernel %s: launch cancelled: %s" kernel reason;
               raise (Cancelled reason)
             | None -> ());
          if warp.Machine.insts > max_warp_insts then begin
            Obs.Log.error "gpusim"
              "kernel %s: warp %d of CTA %d exceeded %d instructions (runaway \
               loop?); aborting launch"
              kernel warp.Machine.warp_id warp.Machine.cta.Machine.cta_linear
              max_warp_insts;
            fail "kernel %s: warp exceeded %d instructions (runaway loop?)" kernel
              max_warp_insts
          end;
          if warp.Machine.ready_at > !end_time then end_time := warp.Machine.ready_at;
          match warp.Machine.status with
          | Machine.Ready ->
            if not (q.qrun_ahead warp.Machine.ready_at) then begin
              q.qpush warp.Machine.ready_at (sm, warp);
              running := false
            end
          | Machine.At_barrier ->
            running := false;
            try_release_barrier warp.Machine.cta
          | Machine.Finished ->
            running := false;
            let cta = warp.Machine.cta in
            try_release_barrier cta;
            if cta.Machine.finished_warps = Array.length cta.Machine.warps then begin
              sm.Machine.resident_ctas <- sm.Machine.resident_ctas - 1;
              if !next_cta < total_ctas then begin
                ignore
                  (make_cta ~linear:!next_cta ~sm ~start_time:warp.Machine.ready_at);
                incr next_cta
              end
            end
        done)
  done;
  if !next_cta < total_ctas then
    fail "launch of %s ended with %d/%d CTAs unscheduled" kernel !next_cta total_ctas;
  let l1_stats =
    Array.fold_left
      (fun acc (sm : Machine.sm) -> Cache.add_stats acc sm.l1.Cache.stats)
      (Cache.empty_stats ()) sms
  in
  let l2_stats =
    {
      Cache.reads = device.l2.Cache.stats.Cache.reads - l2_before.Cache.reads;
      read_hits = device.l2.Cache.stats.Cache.read_hits - l2_before.Cache.read_hits;
      read_misses = device.l2.Cache.stats.Cache.read_misses - l2_before.Cache.read_misses;
      writes = device.l2.Cache.stats.Cache.writes - l2_before.Cache.writes;
      write_evictions =
        device.l2.Cache.stats.Cache.write_evictions - l2_before.Cache.write_evictions;
    }
  in
  let mshr_stalls =
    Array.fold_left (fun acc (sm : Machine.sm) -> acc + sm.mshr.Mshr.stall_cycles) 0 sms
  in
  let mshr_merges =
    Array.fold_left (fun acc (sm : Machine.sm) -> acc + sm.mshr.Mshr.merges) 0 sms
  in
  (* per-launch self-profiling: registry counters/histograms always,
     per-SM gauges and trace counter tracks only when tracing *)
  Obs.Metrics.incr m_launches;
  Obs.Metrics.add m_cycles (!end_time + launch_overhead);
  Obs.Metrics.add m_warp_insts stats.Stats.warp_insts;
  Array.iter
    (fun (sm : Machine.sm) ->
      let s = sm.l1.Cache.stats in
      if s.Cache.reads > 0 then
        Obs.Metrics.observe m_l1_hit_rate
          (int_of_float (100. *. Cache.hit_rate s)))
    sms;
  if obs_on then begin
    Array.iter
      (fun (sm : Machine.sm) ->
        Obs.Metrics.set_gauge (sm_cycle_gauge sm.Machine.sm_id')
          (float_of_int sm.Machine.next_issue))
      sms;
    (if l1_stats.Cache.reads > 0 then
       Obs.Trace.counter ~cat:"sim" "l1.hit_rate_pct"
         (100. *. Cache.hit_rate l1_stats));
    if device.l2.Cache.stats.Cache.reads > 0 then
      Obs.Trace.counter ~cat:"sim" "l2.hit_rate_pct"
        (100. *. Cache.hit_rate device.l2.Cache.stats)
  end;
  {
    cycles = !end_time + launch_overhead;
    stats;
    l1_stats;
    l2_stats;
    mshr_stalls;
    mshr_merges;
    ctas = total_ctas;
    warps_per_cta;
  }
