(* Aggregate counters of one kernel launch. *)

type t = {
  mutable warp_insts : int;
  mutable thread_insts : int;
  mutable global_loads : int; (* warp-level *)
  mutable global_stores : int;
  mutable global_atomics : int;
  mutable load_transactions : int;
  mutable store_transactions : int;
  mutable shared_accesses : int;
  mutable branches : int;
  mutable divergent_branches : int;
  mutable hook_calls : int;
  mutable barriers : int;
  (* shared-memory bank model (counted whenever conflict detection runs;
     replays are charged as cycles only under [~bankmodel]) *)
  mutable shared_conflict_accesses : int; (* accesses with degree > 1 *)
  mutable shared_conflict_replays : int; (* sum of (degree - 1) *)
  mutable shared_broadcasts : int; (* accesses where >1 lane shared a word *)
}

let create () =
  {
    warp_insts = 0;
    thread_insts = 0;
    global_loads = 0;
    global_stores = 0;
    global_atomics = 0;
    load_transactions = 0;
    store_transactions = 0;
    shared_accesses = 0;
    branches = 0;
    divergent_branches = 0;
    hook_calls = 0;
    barriers = 0;
    shared_conflict_accesses = 0;
    shared_conflict_replays = 0;
    shared_broadcasts = 0;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>warp insts: %d@ thread insts: %d@ global loads: %d (%d txns)@ global \
     stores: %d (%d txns)@ atomics: %d@ shared accesses: %d@ branches: %d (%d \
     divergent)@ hook calls: %d@ barriers: %d@ bank conflicts: %d (%d replays, \
     %d broadcasts)@]"
    t.warp_insts t.thread_insts t.global_loads t.load_transactions t.global_stores
    t.store_transactions t.global_atomics t.shared_accesses t.branches
    t.divergent_branches t.hook_calls t.barriers t.shared_conflict_accesses
    t.shared_conflict_replays t.shared_broadcasts
