(* NW — Needleman-Wunsch sequence alignment (Rodinia).  Tiles are
   processed along anti-diagonals; inside a tile, a 16-thread block
   sweeps a wavefront guarded by `tx <= m`, so almost every dynamic
   block executes under a partial mask — the worst branch-divergence
   case of Table 3 (69.43%). *)

let source =
  {|
__device__ int maximum(int a, int b, int c) {
  int k;
  if (a <= b) {
    k = b;
  } else {
    k = a;
  }
  if (k <= c) {
    k = c;
  }
  return k;
}

__global__ void needle_cuda_shared_1(int* referrence, int* matrix_cuda,
                                     int cols, int penalty, int i) {
  __shared__ int temp[289];
  __shared__ int ref_sh[256];
  int bx = blockIdx.x;
  int tx = threadIdx.x;
  int b_index_x = bx;
  int b_index_y = i - 1 - bx;
  int index_nw = cols * 16 * b_index_y + 16 * b_index_x;
  if (tx == 0) {
    temp[0] = matrix_cuda[index_nw];
  }
  for (int ty = 0; ty < 16; ty = ty + 1) {
    ref_sh[ty * 16 + tx] = referrence[index_nw + cols * (ty + 1) + (tx + 1)];
  }
  temp[(tx + 1) * 17] = matrix_cuda[index_nw + cols * (tx + 1)];
  temp[tx + 1] = matrix_cuda[index_nw + (tx + 1)];
  __syncthreads();
  for (int m = 0; m < 16; m = m + 1) {
    if (tx <= m) {
      int t_x = tx + 1;
      int t_y = m - tx + 1;
      temp[t_y * 17 + t_x] =
        maximum(temp[(t_y - 1) * 17 + t_x - 1] + ref_sh[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty);
    }
    __syncthreads();
  }
  for (int m = 14; m >= 0; m = m - 1) {
    if (tx <= m) {
      int t_x = tx + 16 - m;
      int t_y = 16 - tx;
      temp[t_y * 17 + t_x] =
        maximum(temp[(t_y - 1) * 17 + t_x - 1] + ref_sh[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty);
    }
    __syncthreads();
  }
  for (int ty = 0; ty < 16; ty = ty + 1) {
    matrix_cuda[index_nw + cols * (ty + 1) + tx + 1] = temp[(ty + 1) * 17 + tx + 1];
  }
}

__global__ void needle_cuda_shared_2(int* referrence, int* matrix_cuda,
                                     int cols, int penalty, int i, int block_width) {
  __shared__ int temp[289];
  __shared__ int ref_sh[256];
  int bx = blockIdx.x;
  int tx = threadIdx.x;
  int b_index_x = bx + block_width - i;
  int b_index_y = block_width - 1 - bx;
  int index_nw = cols * 16 * b_index_y + 16 * b_index_x;
  if (tx == 0) {
    temp[0] = matrix_cuda[index_nw];
  }
  for (int ty = 0; ty < 16; ty = ty + 1) {
    ref_sh[ty * 16 + tx] = referrence[index_nw + cols * (ty + 1) + (tx + 1)];
  }
  temp[(tx + 1) * 17] = matrix_cuda[index_nw + cols * (tx + 1)];
  temp[tx + 1] = matrix_cuda[index_nw + (tx + 1)];
  __syncthreads();
  for (int m = 0; m < 16; m = m + 1) {
    if (tx <= m) {
      int t_x = tx + 1;
      int t_y = m - tx + 1;
      temp[t_y * 17 + t_x] =
        maximum(temp[(t_y - 1) * 17 + t_x - 1] + ref_sh[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty);
    }
    __syncthreads();
  }
  for (int m = 14; m >= 0; m = m - 1) {
    if (tx <= m) {
      int t_x = tx + 16 - m;
      int t_y = 16 - tx;
      temp[t_y * 17 + t_x] =
        maximum(temp[(t_y - 1) * 17 + t_x - 1] + ref_sh[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty);
    }
    __syncthreads();
  }
  for (int ty = 0; ty < 16; ty = ty + 1) {
    matrix_cuda[index_nw + cols * (ty + 1) + tx + 1] = temp[(ty + 1) * 17 + tx + 1];
  }
}
|}

let penalty = 10

let run host ~scale =
  let open Hostrt.Host in
  let n = 256 * scale in
  let cols = n + 1 in
  in_function host ~func:"main" ~file:"needle.cu" ~line:70 (fun () ->
      let rng = Rng.create ~seed:21 () in
      let hm = host_mem host in
      let cells = cols * cols in
      let h_ref = malloc host ~label:"referrence" (4 * cells) in
      let h_matrix = malloc host ~label:"input_itemsets" (4 * cells) in
      let reference = Array.init cells (fun _ -> Rng.int rng 10) in
      let matrix =
        Array.init cells (fun idx ->
            let r = idx / cols and c = idx mod cols in
            if r = 0 then -c * penalty else if c = 0 then -r * penalty else 0)
      in
      Gpusim.Devmem.write_i32_array hm h_ref reference;
      Gpusim.Devmem.write_i32_array hm h_matrix matrix;
      let d_ref = cuda_malloc host ~label:"referrence_cuda" (4 * cells) in
      let d_matrix = cuda_malloc host ~label:"matrix_cuda" (4 * cells) in
      memcpy_h2d host ~dst:d_ref ~src:h_ref ~bytes:(4 * cells);
      memcpy_h2d host ~dst:d_matrix ~src:h_matrix ~bytes:(4 * cells);
      in_function host ~func:"runTest" ~file:"needle.cu" ~line:120 (fun () ->
          let block_width = n / 16 in
          for i = 1 to block_width do
            ignore
              (launch_kernel host ~kernel:"needle_cuda_shared_1" ~grid:(i, 1)
                 ~block:(16, 1)
                 ~args:[ iarg d_ref; iarg d_matrix; iarg cols; iarg penalty; iarg i ])
          done;
          for i = block_width - 1 downto 1 do
            ignore
              (launch_kernel host ~kernel:"needle_cuda_shared_2" ~grid:(i, 1)
                 ~block:(16, 1)
                 ~args:
                   [ iarg d_ref; iarg d_matrix; iarg cols; iarg penalty; iarg i;
                     iarg block_width ])
          done);
      memcpy_d2h host ~dst:h_matrix ~src:d_matrix ~bytes:(4 * cells))

let workload =
  {
    Common.name = "nw";
    description = "Needleman-Wunsch";
    source_file = "needle.cu";
    source;
    warps_per_cta = 1;
    block_dims = (16, 1);
    input_desc = "(256*scale)x(256*scale) alignment, penalty 10 (paper: 2048-10)";
    kernels = [ "needle_cuda_shared_1"; "needle_cuda_shared_2" ];
    run;
    default_scale = 1;
  }
