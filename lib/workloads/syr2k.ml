(* SYR2K — symmetric rank-2K update C = alpha*(A*B^T + B*A^T) + beta*C
   (Polybench).  Same access structure as SYRK with twice the streams;
   the paper notes its profiles resemble SYRK's. *)

let source =
  {|
__global__ void syr2k_kernel(float* A, float* B, float* C, float alpha,
                             float beta, int n, int m) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < n && j < n) {
    C[i * n + j] = C[i * n + j] * beta;
    for (int k = 0; k < m; k = k + 1) {
      C[i * n + j] = C[i * n + j]
        + alpha * A[i * m + k] * B[j * m + k]
        + alpha * B[i * m + k] * A[j * m + k];
    }
  }
}
|}

let block = (32, 8) (* 8 warps/CTA; warp spans 32 columns like Polybench GPU *)

let run host ~scale =
  let open Hostrt.Host in
  let n = 96 * scale in
  let m = 96 * scale in
  in_function host ~func:"main" ~file:"syr2k.cu" ~line:150 (fun () ->
      let rng = Rng.create ~seed:13 () in
      let hm = host_mem host in
      let h_a = malloc host ~label:"A" (4 * n * m) in
      let h_b = malloc host ~label:"B" (4 * n * m) in
      let h_c = malloc host ~label:"C" (4 * n * n) in
      Gpusim.Devmem.write_f32_array hm h_a (Array.init (n * m) (fun _ -> Rng.float rng));
      Gpusim.Devmem.write_f32_array hm h_b (Array.init (n * m) (fun _ -> Rng.float rng));
      Gpusim.Devmem.write_f32_array hm h_c (Array.init (n * n) (fun _ -> Rng.float rng));
      let d_a = cuda_malloc host ~label:"A_gpu" (4 * n * m) in
      let d_b = cuda_malloc host ~label:"B_gpu" (4 * n * m) in
      let d_c = cuda_malloc host ~label:"C_gpu" (4 * n * n) in
      memcpy_h2d host ~dst:d_a ~src:h_a ~bytes:(4 * n * m);
      memcpy_h2d host ~dst:d_b ~src:h_b ~bytes:(4 * n * m);
      memcpy_h2d host ~dst:d_c ~src:h_c ~bytes:(4 * n * n);
      in_function host ~func:"syr2kCuda" ~file:"syr2k.cu" ~line:120 (fun () ->
          let bx, by = block in
          let grid = ((n + bx - 1) / bx, (n + by - 1) / by) in
          ignore
            (launch_kernel host ~kernel:"syr2k_kernel" ~grid ~block
               ~args:
                 [ iarg d_a; iarg d_b; iarg d_c; farg 1.5; farg 2.5; iarg n; iarg m ]));
      memcpy_d2h host ~dst:h_c ~src:d_c ~bytes:(4 * n * n))

let workload =
  {
    Common.name = "syr2k";
    description = "Symmetric Rank-2K Operations";
    source_file = "syr2k.cu";
    source;
    warps_per_cta = 8;
    block_dims = (32, 8);
    input_desc = "(96*scale)^2 matrices";
    kernels = [ "syr2k_kernel" ];
    run;
    default_scale = 1;
  }
