(* NN — Nearest Neighbor (Rodinia).  One thread computes the Euclidean
   distance of one record to the query point: a purely streaming kernel
   with almost no data reuse (the paper excludes it from Figure 4 for
   >99% no-reuse) and almost no branch divergence (Table 3: 4.05%). *)

let source =
  {|
__device__ float euclid_dist(float lat1, float lng1, float lat2, float lng2) {
  float dlat = lat1 - lat2;
  float dlng = lng1 - lng2;
  return sqrtf(dlat * dlat + dlng * dlng);
}

__global__ void euclid(float* d_lat, float* d_lng, float* d_distances,
                       int numRecords, float lat, float lng) {
  int globalId = blockDim.x * (gridDim.x * blockIdx.y + blockIdx.x) + threadIdx.x;
  if (globalId < numRecords) {
    float lat_d = d_lat[globalId];
    float lng_d = d_lng[globalId];
    d_distances[globalId] = euclid_dist(lat, lng, lat_d, lng_d);
  }
}
|}

let block = 256 (* 8 warps/CTA, Table 2 *)

let run host ~scale =
  let open Hostrt.Host in
  (* not a multiple of the block size, like Rodinia's 42764-record input:
     the tail block diverges on the bounds check *)
  let n = (8192 * scale) - 37 in
  in_function host ~func:"main" ~file:"nn.cu" ~line:109 (fun () ->
      let rng = Rng.create ~seed:42 () in
      let h_lat = malloc host ~label:"h_locations_lat" (4 * n) in
      let h_lng = malloc host ~label:"h_locations_lng" (4 * n) in
      let h_dist = malloc host ~label:"h_distances" (4 * n) in
      let hm = host_mem host in
      Gpusim.Devmem.write_f32_array hm h_lat
        (Array.init n (fun _ -> Rng.float_range rng 0. 90.));
      Gpusim.Devmem.write_f32_array hm h_lng
        (Array.init n (fun _ -> Rng.float_range rng (-180.) 180.));
      let d_lat = cuda_malloc host ~label:"d_locations_lat" (4 * n) in
      let d_lng = cuda_malloc host ~label:"d_locations_lng" (4 * n) in
      let d_dist = cuda_malloc host ~label:"d_distances" (4 * n) in
      memcpy_h2d host ~dst:d_lat ~src:h_lat ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_lng ~src:h_lng ~bytes:(4 * n);
      in_function host ~func:"findLowest" ~file:"nn.cu" ~line:133 (fun () ->
          let grid = (n + block - 1) / block in
          ignore
            (launch_kernel host ~kernel:"euclid" ~grid:(grid, 1) ~block:(block, 1)
               ~args:[ iarg d_lat; iarg d_lng; iarg d_dist; iarg n; farg 30.; farg 90. ]));
      memcpy_d2h host ~dst:h_dist ~src:d_dist ~bytes:(4 * n);
      (* host-side reduction to the nearest record, as in Rodinia *)
      let dist = Gpusim.Devmem.read_f32_array hm h_dist n in
      let best = ref 0 in
      Array.iteri (fun i d -> if d < dist.(!best) then best := i) dist;
      ignore !best)

let workload =
  {
    Common.name = "nn";
    description = "Nearest Neighbor";
    source_file = "nn.cu";
    source;
    warps_per_cta = 8;
    block_dims = (256, 1);
    input_desc = "filelist_4 -r 5 -lat 30 -lng 90 (8192*scale records)";
    kernels = [ "euclid" ];
    run;
    default_scale = 1;
  }
