(** Workload descriptor: one Table-2 application — its MiniCUDA device
    source and its (instrumented) host driver. *)

type t = {
  name : string;
  description : string;  (** Table 2's "Description" column *)
  source_file : string;
  source : string;  (** MiniCUDA device code *)
  warps_per_cta : int;  (** Table 2 *)
  block_dims : int * int;
      (** (x, y) CTA shape the driver launches with — the thread-layout
          input of the static estimator *)
  input_desc : string;
  kernels : string list;  (** kernel names, for bypass rewriting *)
  run : Hostrt.Host.t -> scale:int -> unit;
      (** host driver: allocate, transfer, launch.  [scale] grows the
          input linearly (1 = default benchmark size). *)
  default_scale : int;
}

(** Compile the device source to a verified Bitc module. *)
val compile : t -> Bitc.Irmod.t

(** Find a workload by name in a list; raises [Invalid_argument] if
    absent. *)
val find : t list -> string -> t
