(* Backprop — neural-network training layer (Rodinia).  The forward
   kernel stages inputs and weights in shared memory and tree-reduces
   partial products (the `ty % power_two` conditionals are the source of
   its ~28% divergent blocks in Table 3); the weight-adjust kernel is a
   fully coalesced read-modify-write sweep. *)

let source =
  {|
__global__ void bpnn_layerforward_CUDA(float* input_cuda, float* input_hidden_cuda,
                                       float* hidden_partial_sum, int in, int hid) {
  __shared__ float input_node[16];
  __shared__ float weight_matrix[256];
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = 16 * by + ty;
  if (tx == 0) {
    input_node[ty] = input_cuda[row];
  }
  __syncthreads();
  weight_matrix[ty * 16 + tx] = input_hidden_cuda[row * hid + tx];
  __syncthreads();
  weight_matrix[ty * 16 + tx] = weight_matrix[ty * 16 + tx] * input_node[ty];
  __syncthreads();
  for (int i = 1; i <= 4; i = i + 1) {
    int power_two = 1 << i;
    if (ty % power_two == 0) {
      weight_matrix[ty * 16 + tx] =
        weight_matrix[ty * 16 + tx] + weight_matrix[(ty + power_two / 2) * 16 + tx];
    }
    __syncthreads();
  }
  if (ty == 0) {
    hidden_partial_sum[by * hid + tx] = weight_matrix[tx];
  }
}

__global__ void bpnn_adjust_weights_cuda(float* delta, int hid, float* ly, int in,
                                         float* w, float* oldw) {
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int index_y = 16 * by + ty;
  int index_x = tx;
  int index = index_y * hid + index_x;
  float adjust = 0.3f * delta[index_x] * ly[index_y] + 0.3f * oldw[index];
  w[index] = w[index] + adjust;
  oldw[index] = adjust;
  __syncthreads();
  if (ty == 0 && by == 0) {
    // bias row, updated once per column as in Rodinia
    float adjust0 = 0.3f * delta[index_x] + 0.3f * oldw[index_x];
    w[index_x] = w[index_x] + adjust0;
    oldw[index_x] = adjust0;
  }
}
|}

let hid = 16
let block = (16, 16) (* 8 warps/CTA *)

let run host ~scale =
  let open Hostrt.Host in
  let in_size = 4096 * scale in
  let num_blocks = in_size / 16 in
  in_function host ~func:"main" ~file:"backprop.cu" ~line:42 (fun () ->
      let rng = Rng.create ~seed:3 () in
      let hm = host_mem host in
      let h_input = malloc host ~label:"net->input_units" (4 * in_size) in
      let h_weights = malloc host ~label:"net->input_weights" (4 * in_size * hid) in
      let h_partial = malloc host ~label:"partial_sum" (4 * num_blocks * hid) in
      let h_delta = malloc host ~label:"net->hidden_delta" (4 * hid) in
      let h_oldw = malloc host ~label:"net->input_prev_weights" (4 * in_size * hid) in
      Gpusim.Devmem.write_f32_array hm h_input
        (Array.init in_size (fun _ -> Rng.float rng));
      Gpusim.Devmem.write_f32_array hm h_weights
        (Array.init (in_size * hid) (fun _ -> Rng.float rng -. 0.5));
      Gpusim.Devmem.write_f32_array hm h_delta
        (Array.init hid (fun _ -> Rng.float rng -. 0.5));
      Gpusim.Devmem.write_f32_array hm h_oldw
        (Array.make (in_size * hid) 0.);
      let d_input = cuda_malloc host ~label:"input_cuda" (4 * in_size) in
      let d_weights = cuda_malloc host ~label:"input_hidden_cuda" (4 * in_size * hid) in
      let d_partial = cuda_malloc host ~label:"hidden_partial_sum" (4 * num_blocks * hid) in
      let d_delta = cuda_malloc host ~label:"hidden_delta_cuda" (4 * hid) in
      let d_oldw = cuda_malloc host ~label:"input_prev_weights_cuda" (4 * in_size * hid) in
      memcpy_h2d host ~dst:d_input ~src:h_input ~bytes:(4 * in_size);
      memcpy_h2d host ~dst:d_weights ~src:h_weights ~bytes:(4 * in_size * hid);
      memcpy_h2d host ~dst:d_delta ~src:h_delta ~bytes:(4 * hid);
      memcpy_h2d host ~dst:d_oldw ~src:h_oldw ~bytes:(4 * in_size * hid);
      in_function host ~func:"bpnn_train_cuda" ~file:"backprop_cuda.cu" ~line:240
        (fun () ->
          ignore
            (launch_kernel host ~kernel:"bpnn_layerforward_CUDA" ~grid:(1, num_blocks)
               ~block
               ~args:
                 [ iarg d_input; iarg d_weights; iarg d_partial; iarg in_size;
                   iarg hid ]);
          memcpy_d2h host ~dst:h_partial ~src:d_partial
            ~bytes:(4 * num_blocks * hid);
          (* host-side accumulation of the partial sums, as in Rodinia *)
          let partial = Gpusim.Devmem.read_f32_array hm h_partial (num_blocks * hid) in
          let sums = Array.make hid 0. in
          Array.iteri (fun i v -> sums.(i mod hid) <- sums.(i mod hid) +. v) partial;
          ignore sums;
          ignore
            (launch_kernel host ~kernel:"bpnn_adjust_weights_cuda" ~grid:(1, num_blocks)
               ~block
               ~args:
                 [ iarg d_delta; iarg hid; iarg d_input; iarg in_size; iarg d_weights;
                   iarg d_oldw ]));
      memcpy_d2h host ~dst:h_weights ~src:d_weights ~bytes:(4 * in_size * hid))

let workload =
  {
    Common.name = "backprop";
    description = "Back Propagation";
    source_file = "backprop.cu";
    source;
    warps_per_cta = 8;
    block_dims = (16, 16);
    input_desc = "4096*scale input units (paper: 65536)";
    kernels = [ "bpnn_layerforward_CUDA"; "bpnn_adjust_weights_cuda" ];
    run;
    default_scale = 1;
  }
