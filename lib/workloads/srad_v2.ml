(* SRAD v2 — speckle-reducing anisotropic diffusion (Rodinia).  Two
   stencil kernels per iteration reading 4-neighborhoods straight from
   global memory with boundary clamping: mostly coalesced (Figure 5)
   with a mix of short-distance reuse (neighbor rows within a CTA) and
   no-reuse (Figure 4). *)

let source =
  {|
__global__ void srad_cuda_1(float* E_C, float* W_C, float* N_C, float* S_C,
                            float* J_cuda, float* C_cuda,
                            int cols, int rows, float q0sqr) {
  int bx = blockIdx.x;
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = by * 16 + ty;
  int col = bx * 16 + tx;
  if (row < rows && col < cols) {
    int index = row * cols + col;
    int index_n = (row == 0 ? row : row - 1) * cols + col;
    int index_s = (row == rows - 1 ? row : row + 1) * cols + col;
    int index_w = row * cols + (col == 0 ? col : col - 1);
    int index_e = row * cols + (col == cols - 1 ? col : col + 1);
    float jc = J_cuda[index];
    float dn = J_cuda[index_n] - jc;
    float ds = J_cuda[index_s] - jc;
    float dw = J_cuda[index_w] - jc;
    float de = J_cuda[index_e] - jc;
    float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
    float l = (dn + ds + dw + de) / jc;
    float num = (0.5f * g2) - ((1.0f / 16.0f) * (l * l));
    float den = 1.0f + 0.25f * l;
    float qsqr = num / (den * den);
    float c;
    // diffusion coefficient: the comparison against q0sqr is per-pixel
    // (speckle) data, so warps straddle the threshold and diverge
    if (qsqr > q0sqr) {
      den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
      c = 1.0f / (1.0f + den);
      if (c < 0.0f) {
        c = 0.0f;
      }
    } else {
      c = 1.0f;
    }
    N_C[index] = dn;
    S_C[index] = ds;
    W_C[index] = dw;
    E_C[index] = de;
    C_cuda[index] = c;
  }
}

__global__ void srad_cuda_2(float* E_C, float* W_C, float* N_C, float* S_C,
                            float* J_cuda, float* C_cuda,
                            int cols, int rows, float lambda) {
  int bx = blockIdx.x;
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = by * 16 + ty;
  int col = bx * 16 + tx;
  if (row < rows && col < cols) {
    int index = row * cols + col;
    int index_s = (row == rows - 1 ? row : row + 1) * cols + col;
    int index_e = row * cols + (col == cols - 1 ? col : col + 1);
    float cc = C_cuda[index];
    float cs = C_cuda[index_s];
    float ce = C_cuda[index_e];
    float d_sum = cc * N_C[index] + cs * S_C[index]
                + cc * W_C[index] + ce * E_C[index];
    J_cuda[index] = J_cuda[index] + 0.25f * lambda * d_sum;
  }
}
|}

let block = (16, 16) (* 8 warps/CTA *)

let run host ~scale =
  let open Hostrt.Host in
  let rows = 128 * scale in
  let cols = rows in
  let iterations = 2 in
  in_function host ~func:"main" ~file:"srad.cu" ~line:120 (fun () ->
      let rng = Rng.create ~seed:9 () in
      let hm = host_mem host in
      let cells = rows * cols in
      let h_j = malloc host ~label:"J" (4 * cells) in
      Gpusim.Devmem.write_f32_array hm h_j
        (Array.init cells (fun _ -> exp (Rng.float_range rng 0. 1.)));
      let d_j = cuda_malloc host ~label:"J_cuda" (4 * cells) in
      let d_c = cuda_malloc host ~label:"C_cuda" (4 * cells) in
      let d_e = cuda_malloc host ~label:"E_C" (4 * cells) in
      let d_w = cuda_malloc host ~label:"W_C" (4 * cells) in
      let d_n = cuda_malloc host ~label:"N_C" (4 * cells) in
      let d_s = cuda_malloc host ~label:"S_C" (4 * cells) in
      memcpy_h2d host ~dst:d_j ~src:h_j ~bytes:(4 * cells);
      in_function host ~func:"srad_main_loop" ~file:"srad.cu" ~line:160 (fun () ->
          let tiles = (rows + 15) / 16 in
          for _iter = 1 to iterations do
            ignore
              (launch_kernel host ~kernel:"srad_cuda_1" ~grid:(tiles, tiles) ~block
                 ~args:
                   [ iarg d_e; iarg d_w; iarg d_n; iarg d_s; iarg d_j; iarg d_c;
                     iarg cols; iarg rows; farg 0.35 ]);
            ignore
              (launch_kernel host ~kernel:"srad_cuda_2" ~grid:(tiles, tiles) ~block
                 ~args:
                   [ iarg d_e; iarg d_w; iarg d_n; iarg d_s; iarg d_j; iarg d_c;
                     iarg cols; iarg rows; farg 0.5 ])
          done);
      memcpy_d2h host ~dst:h_j ~src:d_j ~bytes:(4 * cells))

let workload =
  {
    Common.name = "srad_v2";
    description = "Speckle Reducing Anisotropic Diffusion";
    source_file = "srad.cu";
    source;
    warps_per_cta = 8;
    block_dims = (16, 16);
    input_desc = "(128*scale)^2 image, 2 iterations (paper: 2048x2048)";
    kernels = [ "srad_cuda_1"; "srad_cuda_2" ];
    run;
    default_scale = 1;
  }
