(* Seeded-bug workload variants for validating `advisor check`.  Each is
   a small kernel with one deliberately planted synchronization or
   bounds defect; none of them is part of {!Registry.all} (the Table-2
   set stays the paper's ten clean applications) — the registry exposes
   them through a separate [seeded] list.

   The four variants cover the checker's two halves:
   - [hotspot_racy] and [reduce_missing_sync] are *dynamic* bugs: the
     barrier separating a shared-memory producer from its cross-warp
     consumers is missing, so the race detector must report same-epoch
     conflicts (the static pass sees nothing wrong);
   - [stencil_divergent_sync] is a *static* bug: a __syncthreads under a
     thread-dependent branch.  Dynamically the warp epochs diverge and
     no same-epoch conflict exists — exactly the detector's documented
     blind spot, which the static barrier check covers;
   - [shared_oob] is a *static* bounds bug: a constant index past the
     end of a __shared__ array, kept behind a never-taken guard so the
     simulated run stays well-defined. *)

(* ----- hotspot with its tile barrier removed ----- *)

let hotspot_racy_source =
  {|
__global__ void calculate_temp_racy(float* power, float* temp_src,
                                    float* temp_dst, int grid_cols,
                                    int grid_rows, float Cap, float Rx,
                                    float Ry, float Rz, float step,
                                    float amb_temp) {
  __shared__ float temp_on_cuda[256];
  __shared__ float power_on_cuda[256];
  int bx = blockIdx.x;
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = bx * 14 + tx - 1;
  int row = by * 14 + ty - 1;
  int index = row * grid_cols + col;
  bool valid = row >= 0 && row < grid_rows && col >= 0 && col < grid_cols;
  if (valid) {
    temp_on_cuda[ty * 16 + tx] = temp_src[index];
    power_on_cuda[ty * 16 + tx] = power[index];
  } else {
    temp_on_cuda[ty * 16 + tx] = amb_temp;
    power_on_cuda[ty * 16 + tx] = 0.0f;
  }
  bool interior = tx >= 1 && tx <= 14 && ty >= 1 && ty <= 14;
  if (interior && valid) {
    float t = temp_on_cuda[ty * 16 + tx];
    float delta = (step / Cap)
      * (power_on_cuda[ty * 16 + tx]
         + (temp_on_cuda[(ty + 1) * 16 + tx] + temp_on_cuda[(ty - 1) * 16 + tx]
            - 2.0f * t) / Ry
         + (temp_on_cuda[ty * 16 + tx + 1] + temp_on_cuda[ty * 16 + tx - 1]
            - 2.0f * t) / Rx
         + (amb_temp - t) / Rz);
    temp_dst[index] = t + delta;
  }
}
|}

let hotspot_racy_run host ~scale =
  let open Hostrt.Host in
  let rows = 32 * scale in
  let cols = rows in
  in_function host ~func:"main" ~file:"hotspot_racy.cu" ~line:300 (fun () ->
      let rng = Rng.create ~seed:5 () in
      let hm = host_mem host in
      let cells = rows * cols in
      let h_temp = malloc host ~label:"FilesavingTemp" (4 * cells) in
      let h_power = malloc host ~label:"FilesavingPower" (4 * cells) in
      Gpusim.Devmem.write_f32_array hm h_temp
        (Array.init cells (fun _ -> 320. +. Rng.float_range rng 0. 20.));
      Gpusim.Devmem.write_f32_array hm h_power
        (Array.init cells (fun _ -> Rng.float_range rng 0. 0.01));
      let d_power = cuda_malloc host ~label:"MatrixPower" (4 * cells) in
      let d_temp0 = cuda_malloc host ~label:"MatrixTemp[0]" (4 * cells) in
      let d_temp1 = cuda_malloc host ~label:"MatrixTemp[1]" (4 * cells) in
      memcpy_h2d host ~dst:d_power ~src:h_power ~bytes:(4 * cells);
      memcpy_h2d host ~dst:d_temp0 ~src:h_temp ~bytes:(4 * cells);
      memcpy_h2d host ~dst:d_temp1 ~src:h_temp ~bytes:(4 * cells);
      let tiles = (rows + 13) / 14 in
      ignore
        (launch_kernel host ~kernel:"calculate_temp_racy" ~grid:(tiles, tiles)
           ~block:(16, 16)
           ~args:
             [ iarg d_power; iarg d_temp0; iarg d_temp1; iarg cols; iarg rows;
               farg 0.5; farg 1.0; farg 1.0; farg 0.0005; farg 0.001; farg 80.0
             ]);
      memcpy_d2h host ~dst:h_temp ~src:d_temp1 ~bytes:(4 * cells))

let hotspot_racy =
  {
    Common.name = "hotspot_racy";
    description = "hotspot variant: tile-staging __syncthreads removed";
    source_file = "hotspot_racy.cu";
    source = hotspot_racy_source;
    warps_per_cta = 8;
    block_dims = (16, 16);
    input_desc = "temp/power (32*scale)^2 grids, 1 iteration";
    kernels = [ "calculate_temp_racy" ];
    run = hotspot_racy_run;
    default_scale = 1;
  }

(* ----- tree reduction missing the in-loop barrier ----- *)

let reduce_missing_sync_source =
  {|
__global__ void reduce_sum(float* in, float* out, int n) {
  __shared__ float buf[256];
  int tx = threadIdx.x;
  int i = blockIdx.x * 256 + tx;
  if (i < n) {
    buf[tx] = in[i];
  } else {
    buf[tx] = 0.0f;
  }
  __syncthreads();
  for (int s = 128; s > 0; s = s / 2) {
    if (tx < s) {
      buf[tx] = buf[tx] + buf[tx + s];
    }
  }
  if (tx == 0) {
    out[blockIdx.x] = buf[0];
  }
}
|}

let reduce_missing_sync_run host ~scale =
  let open Hostrt.Host in
  let blocks = 4 * scale in
  let n = 256 * blocks in
  in_function host ~func:"main" ~file:"reduce_missing_sync.cu" ~line:100
    (fun () ->
      let rng = Rng.create ~seed:11 () in
      let hm = host_mem host in
      let h_in = malloc host ~label:"h_in" (4 * n) in
      Gpusim.Devmem.write_f32_array hm h_in
        (Array.init n (fun _ -> Rng.float_range rng 0. 1.));
      let d_in = cuda_malloc host ~label:"d_in" (4 * n) in
      let d_out = cuda_malloc host ~label:"d_out" (4 * blocks) in
      memcpy_h2d host ~dst:d_in ~src:h_in ~bytes:(4 * n);
      ignore
        (launch_kernel host ~kernel:"reduce_sum" ~grid:(blocks, 1)
           ~block:(256, 1)
           ~args:[ iarg d_in; iarg d_out; iarg n ]);
      let h_out = malloc host ~label:"h_out" (4 * blocks) in
      memcpy_d2h host ~dst:h_out ~src:d_out ~bytes:(4 * blocks))

let reduce_missing_sync =
  {
    Common.name = "reduce_missing_sync";
    description = "tree reduction: __syncthreads missing inside the loop";
    source_file = "reduce_missing_sync.cu";
    source = reduce_missing_sync_source;
    warps_per_cta = 8;
    block_dims = (256, 1);
    input_desc = "1024*scale floats, 4*scale blocks";
    kernels = [ "reduce_sum" ];
    run = reduce_missing_sync_run;
    default_scale = 1;
  }

(* ----- barrier under a thread-dependent branch ----- *)

let stencil_divergent_sync_source =
  {|
__global__ void stencil_shift(float* in, float* out, int n) {
  __shared__ float tile[64];
  int tx = threadIdx.x;
  int i = blockIdx.x * 64 + tx;
  tile[tx] = in[i];
  if (tx < 32) {
    __syncthreads();
    out[i] = tile[tx] + tile[tx + 32];
  } else {
    out[i] = tile[tx];
  }
}
|}

let stencil_divergent_sync_run host ~scale =
  let open Hostrt.Host in
  let blocks = 4 * scale in
  let n = 64 * blocks in
  in_function host ~func:"main" ~file:"stencil_divergent_sync.cu" ~line:100
    (fun () ->
      let rng = Rng.create ~seed:13 () in
      let hm = host_mem host in
      let h_in = malloc host ~label:"h_in" (4 * n) in
      Gpusim.Devmem.write_f32_array hm h_in
        (Array.init n (fun _ -> Rng.float_range rng 0. 1.));
      let d_in = cuda_malloc host ~label:"d_in" (4 * n) in
      let d_out = cuda_malloc host ~label:"d_out" (4 * n) in
      memcpy_h2d host ~dst:d_in ~src:h_in ~bytes:(4 * n);
      ignore
        (launch_kernel host ~kernel:"stencil_shift" ~grid:(blocks, 1)
           ~block:(64, 1)
           ~args:[ iarg d_in; iarg d_out; iarg n ]);
      let h_out = malloc host ~label:"h_out" (4 * n) in
      memcpy_d2h host ~dst:h_out ~src:d_out ~bytes:(4 * n))

let stencil_divergent_sync =
  {
    Common.name = "stencil_divergent_sync";
    description = "stencil variant: __syncthreads under a divergent branch";
    source_file = "stencil_divergent_sync.cu";
    source = stencil_divergent_sync_source;
    warps_per_cta = 2;
    block_dims = (64, 1);
    input_desc = "256*scale floats";
    kernels = [ "stencil_shift" ];
    run = stencil_divergent_sync_run;
    default_scale = 1;
  }

(* ----- constant out-of-bounds shared index ----- *)

let shared_oob_source =
  {|
__global__ void oob_copy(float* in, float* out, int n, int debug) {
  __shared__ float buf[32];
  int tx = threadIdx.x;
  int i = blockIdx.x * 32 + tx;
  if (i < n) {
    buf[tx] = in[i];
  } else {
    buf[tx] = 0.0f;
  }
  __syncthreads();
  if (debug == 123456789) {
    out[0] = buf[32];
  }
  if (i < n) {
    out[i] = buf[tx];
  }
}
|}

let shared_oob_run host ~scale =
  let open Hostrt.Host in
  let blocks = 4 * scale in
  let n = 32 * blocks in
  in_function host ~func:"main" ~file:"shared_oob.cu" ~line:100 (fun () ->
      let rng = Rng.create ~seed:17 () in
      let hm = host_mem host in
      let h_in = malloc host ~label:"h_in" (4 * n) in
      Gpusim.Devmem.write_f32_array hm h_in
        (Array.init n (fun _ -> Rng.float_range rng 0. 1.));
      let d_in = cuda_malloc host ~label:"d_in" (4 * n) in
      let d_out = cuda_malloc host ~label:"d_out" (4 * n) in
      memcpy_h2d host ~dst:d_in ~src:h_in ~bytes:(4 * n);
      ignore
        (launch_kernel host ~kernel:"oob_copy" ~grid:(blocks, 1) ~block:(32, 1)
           ~args:[ iarg d_in; iarg d_out; iarg n; iarg 0 ]);
      let h_out = malloc host ~label:"h_out" (4 * n) in
      memcpy_d2h host ~dst:h_out ~src:d_out ~bytes:(4 * n))

let shared_oob =
  {
    Common.name = "shared_oob";
    description = "copy kernel: constant index past a __shared__ array";
    source_file = "shared_oob.cu";
    source = shared_oob_source;
    warps_per_cta = 1;
    block_dims = (32, 1);
    input_desc = "128*scale floats";
    kernels = [ "oob_copy" ];
    run = shared_oob_run;
    default_scale = 1;
  }

let all = [ hotspot_racy; reduce_missing_sync; stencil_divergent_sync; shared_oob ]
