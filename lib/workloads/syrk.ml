(* SYRK — symmetric rank-K update C = alpha*A*A^T + beta*C (Polybench).
   Thread (i,j) accumulates over k: the A[i*m+k] stream is warp-uniform
   per row while A[j*m+k] strides by the row length across lanes —
   Figure 5's ~50/50 split between 1 and 32 touched lines, and Figure
   4's mix of distance-0 reuse with a long >512 tail. *)

let source =
  {|
__global__ void syrk_kernel(float* A, float* C, float alpha, float beta,
                            int n, int m) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < n && j < n) {
    C[i * n + j] = C[i * n + j] * beta;
    for (int k = 0; k < m; k = k + 1) {
      C[i * n + j] = C[i * n + j] + alpha * A[i * m + k] * A[j * m + k];
    }
  }
}
|}

let block = (32, 8) (* 8 warps/CTA; warp spans 32 columns like Polybench GPU *)

let run host ~scale =
  let open Hostrt.Host in
  let n = 96 * scale in
  let m = 96 * scale in
  in_function host ~func:"main" ~file:"syrk.cu" ~line:140 (fun () ->
      let rng = Rng.create ~seed:11 () in
      let hm = host_mem host in
      let h_a = malloc host ~label:"A" (4 * n * m) in
      let h_c = malloc host ~label:"C" (4 * n * n) in
      Gpusim.Devmem.write_f32_array hm h_a
        (Array.init (n * m) (fun _ -> Rng.float rng));
      Gpusim.Devmem.write_f32_array hm h_c
        (Array.init (n * n) (fun _ -> Rng.float rng));
      let d_a = cuda_malloc host ~label:"A_gpu" (4 * n * m) in
      let d_c = cuda_malloc host ~label:"C_gpu" (4 * n * n) in
      memcpy_h2d host ~dst:d_a ~src:h_a ~bytes:(4 * n * m);
      memcpy_h2d host ~dst:d_c ~src:h_c ~bytes:(4 * n * n);
      in_function host ~func:"syrkCuda" ~file:"syrk.cu" ~line:110 (fun () ->
          let bx, by = block in
          let grid = ((n + bx - 1) / bx, (n + by - 1) / by) in
          ignore
            (launch_kernel host ~kernel:"syrk_kernel" ~grid ~block
               ~args:[ iarg d_a; iarg d_c; farg 1.5; farg 2.5; iarg n; iarg m ]));
      memcpy_d2h host ~dst:h_c ~src:d_c ~bytes:(4 * n * n))

let workload =
  {
    Common.name = "syrk";
    description = "Symmetric Rank-K Operations";
    source_file = "syrk.cu";
    source;
    warps_per_cta = 8;
    block_dims = (32, 8);
    input_desc = "(96*scale)^2 matrices";
    kernels = [ "syrk_kernel" ];
    run;
    default_scale = 1;
  }
