(* Shared-memory bank-conflict microbenchmarks: two tiny kernels whose
   conflict degree is known *exactly* from the access stride, used to
   pin the simulator's 32-bank model and calibrate the static
   estimator's prediction against it.

   With 32 banks of 4-byte words, a warp of 32 lanes reading
   [buf[tid * S]] (4-byte elements) touches words [S * lane]: stride 1
   maps every lane to its own bank (conflict-free), stride 32 maps all
   32 lanes to bank 0 on 32 distinct words (a 32-way conflict — 31
   replays per warp access).  Each kernel does one shared store and one
   shared load per thread at the same stride, so every launch produces
   exactly [2 * warps] conflicting warp accesses at stride 32 and none
   at stride 1.

   Like the seeded set, these stay out of {!Registry.all}: the Table-2
   experiments and golden metrics iterate only the paper's clean
   applications. *)

(* One CTA of one warp: the degrees stay exact (no partial warps, no
   multi-warp scheduling effects), and [scale] repeats the launch to
   grow the record count linearly. *)
let block = 32

let stride1_source =
  {|
__global__ void bank_stride1(float* out, int n) {
  __shared__ float buf[1024];
  int tx = threadIdx.x;
  buf[tx] = 1.0f + tx;
  __syncthreads();
  float v = buf[tx];
  if (tx < n) {
    out[tx] = v;
  }
}
|}

let stride32_source =
  {|
__global__ void bank_stride32(float* out, int n) {
  __shared__ float buf[1024];
  int tx = threadIdx.x;
  buf[tx * 32] = 1.0f + tx;
  __syncthreads();
  float v = buf[tx * 32];
  if (tx < n) {
    out[tx] = v;
  }
}
|}

let run ~kernel host ~scale =
  let open Hostrt.Host in
  in_function host ~func:"main" ~file:(kernel ^ ".cu") ~line:1 (fun () ->
      let n = block in
      let d_out = cuda_malloc host ~label:"d_out" (4 * n) in
      for _ = 1 to max 1 scale do
        ignore
          (launch_kernel host ~kernel ~grid:(1, 1) ~block:(block, 1)
             ~args:[ iarg d_out; iarg n ])
      done)

let stride1 =
  {
    Common.name = "bank_stride1";
    description = "bank-conflict microbenchmark, stride 1 (conflict-free)";
    source_file = "bank_stride1.cu";
    source = stride1_source;
    warps_per_cta = 1;
    block_dims = (block, 1);
    input_desc = "one 32-thread CTA, scale launches";
    kernels = [ "bank_stride1" ];
    run = run ~kernel:"bank_stride1";
    default_scale = 1;
  }

let stride32 =
  {
    Common.name = "bank_stride32";
    description = "bank-conflict microbenchmark, stride 32 (32-way conflicts)";
    source_file = "bank_stride32.cu";
    source = stride32_source;
    warps_per_cta = 1;
    block_dims = (block, 1);
    input_desc = "one 32-thread CTA, scale launches";
    kernels = [ "bank_stride32" ];
    run = run ~kernel:"bank_stride32";
    default_scale = 1;
  }

let all = [ stride1; stride32 ]
