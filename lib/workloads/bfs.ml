(* BFS — frontier-based breadth-first search (Rodinia).  Branch-heavy
   with data-dependent neighbor accesses through byte-sized mask arrays:
   the paper's example of a low-reuse, high-divergence application
   (Section 4.2-(E) builds its Figures 8/9 around this code). *)

let source =
  {|
__global__ void Kernel(int* g_nodes_start, int* g_nodes_edges, int* g_edges,
                       bool* g_graph_mask, bool* g_updating_graph_mask,
                       bool* g_graph_visited, int* g_cost, int no_of_nodes) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < no_of_nodes && g_graph_mask[tid]) {
    g_graph_mask[tid] = false;
    int start = g_nodes_start[tid];
    int num_edges = g_nodes_edges[tid];
    for (int i = start; i < start + num_edges; i = i + 1) {
      int id = g_edges[i];
      if (!g_graph_visited[id]) {
        g_cost[id] = g_cost[tid] + 1;
        g_updating_graph_mask[id] = true;
      }
    }
  }
}

__global__ void Kernel2(bool* g_graph_mask, bool* g_updating_graph_mask,
                        bool* g_graph_visited, bool* g_over, int no_of_nodes) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < no_of_nodes && g_updating_graph_mask[tid]) {
    g_graph_mask[tid] = true;
    g_graph_visited[tid] = true;
    g_over[0] = true;
    g_updating_graph_mask[tid] = false;
  }
}
|}

let block = 512 (* 16 warps/CTA, Table 2 *)

(* Random graph in CSR form with exactly [degree] edges per node, like
   the paper's graph1MW_6.txt input (1M nodes, 6 edges each) at small
   scale.  Edge targets are locality-biased (mostly near the source id,
   occasionally far), which graph generators of that era produce; it
   makes BFS frontiers partially id-contiguous. *)
let generate_graph rng ~nodes ~degree =
  let starts = Array.init nodes (fun i -> i * degree) in
  let counts = Array.make nodes degree in
  let window = max 64 (nodes / 16) in
  let edges =
    Array.init (nodes * degree) (fun e ->
        let src = e / degree in
        if Rng.int rng 8 = 0 then Rng.int rng nodes
        else
          let off = Rng.int rng (2 * window) - window in
          ((src + off) mod nodes + nodes) mod nodes)
  in
  (starts, counts, edges)

let run host ~scale =
  let open Hostrt.Host in
  let no_of_nodes = 10_000 * scale in
  in_function host ~func:"main" ~file:"bfs.cu" ~line:57 (fun () ->
      let rng = Rng.create ~seed:6 () in
      let starts, counts, edges = generate_graph rng ~nodes:no_of_nodes ~degree:6 in
      let edge_count = Array.length edges in
      in_function host ~func:"BFSGraph" ~file:"bfs.cu" ~line:63 (fun () ->
          let hm = host_mem host in
          let h_mask = malloc host ~label:"h_graph_mask" no_of_nodes in
          let h_updating = malloc host ~label:"h_updating_graph_mask" no_of_nodes in
          let h_visited = malloc host ~label:"h_graph_visited" no_of_nodes in
          let h_cost = malloc host ~label:"h_cost" (4 * no_of_nodes) in
          let h_over = malloc host ~label:"h_over" 1 in
          let h_starts = malloc host ~label:"h_nodes_start" (4 * no_of_nodes) in
          let h_counts = malloc host ~label:"h_nodes_edges" (4 * no_of_nodes) in
          let h_edges = malloc host ~label:"h_edges" (4 * edge_count) in
          let source_node = 0 in
          Gpusim.Devmem.write_bool_array hm h_mask
            (Array.init no_of_nodes (fun i -> i = source_node));
          Gpusim.Devmem.write_bool_array hm h_updating
            (Array.make no_of_nodes false);
          Gpusim.Devmem.write_bool_array hm h_visited
            (Array.init no_of_nodes (fun i -> i = source_node));
          Gpusim.Devmem.write_i32_array hm h_cost
            (Array.init no_of_nodes (fun i -> if i = source_node then 0 else -1));
          Gpusim.Devmem.write_i32_array hm h_starts starts;
          Gpusim.Devmem.write_i32_array hm h_counts counts;
          Gpusim.Devmem.write_i32_array hm h_edges edges;
          let d_starts = cuda_malloc host ~label:"d_graph_nodes_start" (4 * no_of_nodes) in
          let d_counts = cuda_malloc host ~label:"d_graph_nodes_edges" (4 * no_of_nodes) in
          let d_edges = cuda_malloc host ~label:"d_graph_edges" (4 * edge_count) in
          let d_mask = cuda_malloc host ~label:"d_graph_mask" no_of_nodes in
          let d_updating = cuda_malloc host ~label:"d_updating_graph_mask" no_of_nodes in
          let d_visited = cuda_malloc host ~label:"d_graph_visited" no_of_nodes in
          let d_cost = cuda_malloc host ~label:"d_cost" (4 * no_of_nodes) in
          let d_over = cuda_malloc host ~label:"d_over" 1 in
          memcpy_h2d host ~dst:d_starts ~src:h_starts ~bytes:(4 * no_of_nodes);
          memcpy_h2d host ~dst:d_counts ~src:h_counts ~bytes:(4 * no_of_nodes);
          memcpy_h2d host ~dst:d_edges ~src:h_edges ~bytes:(4 * edge_count);
          memcpy_h2d host ~dst:d_mask ~src:h_mask ~bytes:no_of_nodes;
          memcpy_h2d host ~dst:d_updating ~src:h_updating ~bytes:no_of_nodes;
          memcpy_h2d host ~dst:d_visited ~src:h_visited ~bytes:no_of_nodes;
          memcpy_h2d host ~dst:d_cost ~src:h_cost ~bytes:(4 * no_of_nodes);
          let grid = (no_of_nodes + block - 1) / block in
          let continue_search = ref true in
          let iterations = ref 0 in
          while !continue_search && !iterations < 50 do
            Gpusim.Devmem.write_bool_array hm h_over [| false |];
            memcpy_h2d host ~dst:d_over ~src:h_over ~bytes:1;
            ignore
              (launch_kernel host ~kernel:"Kernel" ~grid:(grid, 1) ~block:(block, 1)
                 ~args:
                   [ iarg d_starts; iarg d_counts; iarg d_edges; iarg d_mask;
                     iarg d_updating; iarg d_visited; iarg d_cost; iarg no_of_nodes ]);
            ignore
              (launch_kernel host ~kernel:"Kernel2" ~grid:(grid, 1) ~block:(block, 1)
                 ~args:
                   [ iarg d_mask; iarg d_updating; iarg d_visited; iarg d_over;
                     iarg no_of_nodes ]);
            memcpy_d2h host ~dst:h_over ~src:d_over ~bytes:1;
            continue_search := (Gpusim.Devmem.read_bool_array hm h_over 1).(0);
            incr iterations
          done;
          memcpy_d2h host ~dst:h_cost ~src:d_cost ~bytes:(4 * no_of_nodes)))

let workload =
  {
    Common.name = "bfs";
    description = "Breadth First Search";
    source_file = "bfs.cu";
    source;
    warps_per_cta = 16;
    block_dims = (512, 1);
    input_desc = "random graph, 10000*scale nodes, 6 edges/node (graph1MW_6 analog)";
    kernels = [ "Kernel"; "Kernel2" ];
    run;
    default_scale = 1;
  }
