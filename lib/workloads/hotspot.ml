(* Hotspot — thermal simulation stencil (Rodinia).  Each block stages a
   16x16 tile (with one-cell halo) in shared memory, synchronizes and
   computes the interior 14x14 cells.  Global traffic is one streaming
   sweep per iteration: the paper's Figure 4 shows hotspot dominated by
   no-reuse and long distances, making it insensitive to L1
   optimizations. *)

let source =
  {|
__global__ void calculate_temp(float* power, float* temp_src, float* temp_dst,
                               int grid_cols, int grid_rows,
                               float Cap, float Rx, float Ry, float Rz,
                               float step, float amb_temp) {
  __shared__ float temp_on_cuda[256];
  __shared__ float power_on_cuda[256];
  int bx = blockIdx.x;
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = bx * 14 + tx - 1;
  int row = by * 14 + ty - 1;
  int index = row * grid_cols + col;
  bool valid = row >= 0 && row < grid_rows && col >= 0 && col < grid_cols;
  if (valid) {
    temp_on_cuda[ty * 16 + tx] = temp_src[index];
    power_on_cuda[ty * 16 + tx] = power[index];
  } else {
    temp_on_cuda[ty * 16 + tx] = amb_temp;
    power_on_cuda[ty * 16 + tx] = 0.0f;
  }
  __syncthreads();
  bool interior = tx >= 1 && tx <= 14 && ty >= 1 && ty <= 14;
  if (interior && valid) {
    float t = temp_on_cuda[ty * 16 + tx];
    float delta = (step / Cap)
      * (power_on_cuda[ty * 16 + tx]
         + (temp_on_cuda[(ty + 1) * 16 + tx] + temp_on_cuda[(ty - 1) * 16 + tx]
            - 2.0f * t) / Ry
         + (temp_on_cuda[ty * 16 + tx + 1] + temp_on_cuda[ty * 16 + tx - 1]
            - 2.0f * t) / Rx
         + (amb_temp - t) / Rz);
    temp_dst[index] = t + delta;
  }
}
|}

let block = (16, 16) (* 8 warps/CTA *)

let run host ~scale =
  let open Hostrt.Host in
  let rows = 128 * scale in
  let cols = rows in
  let iterations = 4 in
  in_function host ~func:"main" ~file:"hotspot.cu" ~line:300 (fun () ->
      let rng = Rng.create ~seed:5 () in
      let hm = host_mem host in
      let cells = rows * cols in
      let h_temp = malloc host ~label:"FilesavingTemp" (4 * cells) in
      let h_power = malloc host ~label:"FilesavingPower" (4 * cells) in
      Gpusim.Devmem.write_f32_array hm h_temp
        (Array.init cells (fun _ -> 320. +. Rng.float_range rng 0. 20.));
      Gpusim.Devmem.write_f32_array hm h_power
        (Array.init cells (fun _ -> Rng.float_range rng 0. 0.01));
      let d_power = cuda_malloc host ~label:"MatrixPower" (4 * cells) in
      let d_temp0 = cuda_malloc host ~label:"MatrixTemp[0]" (4 * cells) in
      let d_temp1 = cuda_malloc host ~label:"MatrixTemp[1]" (4 * cells) in
      memcpy_h2d host ~dst:d_power ~src:h_power ~bytes:(4 * cells);
      memcpy_h2d host ~dst:d_temp0 ~src:h_temp ~bytes:(4 * cells);
      memcpy_h2d host ~dst:d_temp1 ~src:h_temp ~bytes:(4 * cells);
      in_function host ~func:"compute_tran_temp" ~file:"hotspot.cu" ~line:260
        (fun () ->
          let tiles = (rows + 13) / 14 in
          let src = ref d_temp0 and dst = ref d_temp1 in
          for _iter = 1 to iterations do
            ignore
              (launch_kernel host ~kernel:"calculate_temp" ~grid:(tiles, tiles)
                 ~block
                 ~args:
                   [ iarg d_power; iarg !src; iarg !dst; iarg cols; iarg rows;
                     farg 0.5; farg 1.0; farg 1.0; farg 0.0005; farg 0.001;
                     farg 80.0 ]);
            let tmp = !src in
            src := !dst;
            dst := tmp
          done);
      memcpy_d2h host ~dst:h_temp ~src:d_temp0 ~bytes:(4 * cells))

let workload =
  {
    Common.name = "hotspot";
    description = "Temperature Simulation";
    source_file = "hotspot.cu";
    source;
    warps_per_cta = 8;
    block_dims = (16, 16);
    input_desc = "temp/power (128*scale)^2 grids, 4 iterations";
    kernels = [ "calculate_temp" ];
    run;
    default_scale = 1;
  }
