(* The benchmark registry: the ten applications of Table 2, plus the
   seeded-bug variants that validate `advisor check` (kept out of [all]
   so every profiling experiment and test still iterates exactly the
   paper's clean set). *)

let all : Common.t list =
  [
    Backprop.workload;
    Bfs.workload;
    Hotspot.workload;
    Lavamd.workload;
    Nn.workload;
    Nw.workload;
    Srad_v2.workload;
    Bicg.workload;
    Syrk.workload;
    Syr2k.workload;
  ]

let seeded : Common.t list = Seeded.all
let names = List.map (fun (w : Common.t) -> w.name) all
let seeded_names = List.map (fun (w : Common.t) -> w.name) seeded
let find name = Common.find (all @ seeded) name

let find_opt name =
  List.find_opt (fun (w : Common.t) -> w.name = name) (all @ seeded)
