(* The benchmark registry: the ten applications of Table 2, plus the
   seeded-bug variants that validate `advisor check` (kept out of [all]
   so every profiling experiment and test still iterates exactly the
   paper's clean set). *)

let all : Common.t list =
  [
    Backprop.workload;
    Bfs.workload;
    Hotspot.workload;
    Lavamd.workload;
    Nn.workload;
    Nw.workload;
    Srad_v2.workload;
    Bicg.workload;
    Syrk.workload;
    Syr2k.workload;
  ]

let seeded : Common.t list = Seeded.all

(* Bank-conflict microbenchmarks with exactly known conflict degrees;
   findable by name (for `bench bankconflict`, serve requests and the
   calibration tests) but, like the seeded set, not part of [all]. *)
let micro : Common.t list = Bankmarks.all

(* Stress variants: every Table-2 app whose source contains an
   unrollable innermost loop, 4x unrolled (the tuning sweeps' unroll
   knob).  Same inputs and drivers, bigger kernel bodies — larger
   traces and register pressure without new golden metrics, so they
   stay out of [all] like the seeded set. *)
let stress : Common.t list =
  List.filter_map
    (fun (w : Common.t) ->
      match Minicuda.Unroll.unroll ~factor:4 w.source with
      | _, 0 -> None
      | src, loops ->
        Some
          { w with
            name = w.name ^ "-unroll4";
            source = src;
            description =
              Printf.sprintf "%s (%d innermost loop%s 4x unrolled)"
                w.description loops
                (if loops = 1 then "" else "s");
          })
    all

let names = List.map (fun (w : Common.t) -> w.name) all
let seeded_names = List.map (fun (w : Common.t) -> w.name) seeded
let stress_names = List.map (fun (w : Common.t) -> w.name) stress
let micro_names = List.map (fun (w : Common.t) -> w.name) micro
let find name = Common.find (all @ seeded @ stress @ micro) name

let find_opt name =
  List.find_opt
    (fun (w : Common.t) -> w.name = name)
    (all @ seeded @ stress @ micro)
