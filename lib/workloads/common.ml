(* Workload descriptor: one Table-2 application — its MiniCUDA device
   source and its (instrumented) host driver. *)

type t = {
  name : string;
  description : string; (* Table 2's "Description" column *)
  source_file : string; (* e.g. "bfs.cu" *)
  source : string; (* MiniCUDA device code *)
  warps_per_cta : int; (* Table 2 *)
  block_dims : int * int; (* (x, y) CTA shape the driver launches with *)
  input_desc : string; (* Table 2's input dataset, scaled *)
  kernels : string list;
  (* Host driver: allocate, transfer, launch; [scale] grows the input
     linearly (1 = default benchmark size). *)
  run : Hostrt.Host.t -> scale:int -> unit;
  default_scale : int;
}

(* Compile a workload's device source to a verified Bitc module. *)
let compile w = Minicuda.Frontend.compile ~file:w.source_file w.source

let find all name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Workloads: unknown application %s" name)
