(* BICG — BiCGStab linear solver sub-kernels (Polybench).  Kernel 1
   walks the matrix column-wise (coalesced); kernel 2 walks it row-wise,
   so a warp touches 32 distinct cache lines per access — the bimodal
   1-or-32 divergence the paper reports for BICG in Figure 5. *)

let source =
  {|
__global__ void bicg_kernel1(float* A, float* r, float* s, int nx, int ny) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < ny) {
    s[j] = 0.0f;
    for (int i = 0; i < nx; i = i + 1) {
      s[j] = s[j] + A[i * ny + j] * r[i];
    }
  }
}

__global__ void bicg_kernel2(float* A, float* p, float* q, int nx, int ny) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < nx) {
    q[i] = 0.0f;
    for (int j = 0; j < ny; j = j + 1) {
      q[i] = q[i] + A[i * ny + j] * p[j];
    }
  }
}
|}

let block = 256 (* 8 warps/CTA *)

let run host ~scale =
  let open Hostrt.Host in
  let n = 256 * scale in
  in_function host ~func:"main" ~file:"bicg.cu" ~line:180 (fun () ->
      let rng = Rng.create ~seed:7 () in
      let hm = host_mem host in
      let h_a = malloc host ~label:"A" (4 * n * n) in
      let h_r = malloc host ~label:"r" (4 * n) in
      let h_p = malloc host ~label:"p" (4 * n) in
      let h_s = malloc host ~label:"s" (4 * n) in
      let h_q = malloc host ~label:"q" (4 * n) in
      Gpusim.Devmem.write_f32_array hm h_a
        (Array.init (n * n) (fun _ -> Rng.float rng));
      Gpusim.Devmem.write_f32_array hm h_r (Array.init n (fun i -> float_of_int i /. float_of_int n));
      Gpusim.Devmem.write_f32_array hm h_p (Array.init n (fun i -> float_of_int (i mod 7)));
      let d_a = cuda_malloc host ~label:"A_gpu" (4 * n * n) in
      let d_r = cuda_malloc host ~label:"r_gpu" (4 * n) in
      let d_p = cuda_malloc host ~label:"p_gpu" (4 * n) in
      let d_s = cuda_malloc host ~label:"s_gpu" (4 * n) in
      let d_q = cuda_malloc host ~label:"q_gpu" (4 * n) in
      memcpy_h2d host ~dst:d_a ~src:h_a ~bytes:(4 * n * n);
      memcpy_h2d host ~dst:d_r ~src:h_r ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_p ~src:h_p ~bytes:(4 * n);
      in_function host ~func:"bicgCuda" ~file:"bicg.cu" ~line:150 (fun () ->
          let grid = (n + block - 1) / block in
          ignore
            (launch_kernel host ~kernel:"bicg_kernel1" ~grid:(grid, 1)
               ~block:(block, 1)
               ~args:[ iarg d_a; iarg d_r; iarg d_s; iarg n; iarg n ]);
          ignore
            (launch_kernel host ~kernel:"bicg_kernel2" ~grid:(grid, 1)
               ~block:(block, 1)
               ~args:[ iarg d_a; iarg d_p; iarg d_q; iarg n; iarg n ]));
      memcpy_d2h host ~dst:h_s ~src:d_s ~bytes:(4 * n);
      memcpy_d2h host ~dst:h_q ~src:d_q ~bytes:(4 * n))

let workload =
  {
    Common.name = "bicg";
    description = "BiCGStab Linear Solver";
    source_file = "bicg.cu";
    source;
    warps_per_cta = 8;
    block_dims = (256, 1);
    input_desc = "(256*scale)^2 matrix";
    kernels = [ "bicg_kernel1"; "bicg_kernel2" ];
    run;
    default_scale = 1;
  }
