(* LavaMD — particle interactions within a 3D box grid (Rodinia).  One
   CTA per home box; the neighbor-box particle lists are staged in
   shared memory cooperatively while each thread re-reads its own
   particle from global memory per neighbor iteration — giving the mix
   of short-distance reuse and no-reuse the paper reports, plus the
   tail-warp divergence of the `tid < par_per_box` guard (Table 3:
   13.84%). *)

let source =
  {|
__global__ void kernel_gpu_cuda(float* rv_x, float* rv_y, float* rv_z, float* qv,
                                float* fv_x, float* fv_y, float* fv_z,
                                int* nn_list, int* nn_count,
                                int par_per_box, float a2) {
  __shared__ float rA_x[128];
  __shared__ float rA_y[128];
  __shared__ float rA_z[128];
  __shared__ float qB[128];
  int bx = blockIdx.x;
  int tx = threadIdx.x;
  int wtx = tx;
  int neighbors = nn_count[bx];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int k = 0; k < neighbors; k = k + 1) {
    int nb = nn_list[bx * 27 + k];
    int first_j = nb * par_per_box;
    if (wtx < par_per_box) {
      rA_x[wtx] = rv_x[first_j + wtx];
      rA_y[wtx] = rv_y[first_j + wtx];
      rA_z[wtx] = rv_z[first_j + wtx];
      qB[wtx] = qv[first_j + wtx];
    }
    __syncthreads();
    if (wtx < par_per_box) {
      int i = bx * par_per_box + wtx;
      float xi = rv_x[i];
      float yi = rv_y[i];
      float zi = rv_z[i];
      for (int j = 0; j < par_per_box; j = j + 1) {
        float dx = xi - rA_x[j];
        float dy = yi - rA_y[j];
        float dz = zi - rA_z[j];
        float r2 = dx * dx + dy * dy + dz * dz;
        float u2 = a2 * r2;
        float vij = expf(0.0f - u2);
        float fs = 2.0f * vij * qB[j];
        fx = fx + fs * dx;
        fy = fy + fs * dy;
        fz = fz + fs * dz;
      }
    }
    __syncthreads();
  }
  if (wtx < par_per_box) {
    int i = bx * par_per_box + wtx;
    fv_x[i] = fx;
    fv_y[i] = fy;
    fv_z[i] = fz;
  }
}
|}

let block = 128 (* 4 warps/CTA, Table 2 *)
let par_per_box = 100 (* as in Rodinia; leaves a divergent tail warp *)

(* Neighbor lists of a boxes1d^3 grid: all boxes within distance 1. *)
let neighbor_lists boxes1d =
  let nboxes = boxes1d * boxes1d * boxes1d in
  let id x y z = ((z * boxes1d) + y) * boxes1d + x in
  let nn_list = Array.make (nboxes * 27) 0 in
  let nn_count = Array.make nboxes 0 in
  for z = 0 to boxes1d - 1 do
    for y = 0 to boxes1d - 1 do
      for x = 0 to boxes1d - 1 do
        let b = id x y z in
        let count = ref 0 in
        for dz = -1 to 1 do
          for dy = -1 to 1 do
            for dx = -1 to 1 do
              let nx = x + dx and ny = y + dy and nz = z + dz in
              if nx >= 0 && nx < boxes1d && ny >= 0 && ny < boxes1d && nz >= 0
                 && nz < boxes1d
              then begin
                nn_list.((b * 27) + !count) <- id nx ny nz;
                incr count
              end
            done
          done
        done;
        nn_count.(b) <- !count
      done
    done
  done;
  (nn_list, nn_count, nboxes)

let run host ~scale =
  let open Hostrt.Host in
  let boxes1d = 3 * scale in
  in_function host ~func:"main" ~file:"lavaMD.cu" ~line:80 (fun () ->
      let rng = Rng.create ~seed:17 () in
      let hm = host_mem host in
      let nn_list, nn_count, nboxes = neighbor_lists boxes1d in
      let n = nboxes * par_per_box in
      let coords label =
        let h = malloc host ~label (4 * n) in
        Gpusim.Devmem.write_f32_array hm h
          (Array.init n (fun _ -> Rng.float_range rng 0. 1.));
        h
      in
      let h_rvx = coords "rv.x" and h_rvy = coords "rv.y" and h_rvz = coords "rv.z" in
      let h_qv = coords "qv" in
      let h_fv = malloc host ~label:"fv" (4 * n) in
      let h_nn_list = malloc host ~label:"nn_list" (4 * nboxes * 27) in
      let h_nn_count = malloc host ~label:"nn_count" (4 * nboxes) in
      Gpusim.Devmem.write_i32_array hm h_nn_list nn_list;
      Gpusim.Devmem.write_i32_array hm h_nn_count nn_count;
      let d_rvx = cuda_malloc host ~label:"d_rv_x" (4 * n) in
      let d_rvy = cuda_malloc host ~label:"d_rv_y" (4 * n) in
      let d_rvz = cuda_malloc host ~label:"d_rv_z" (4 * n) in
      let d_qv = cuda_malloc host ~label:"d_qv" (4 * n) in
      let d_fvx = cuda_malloc host ~label:"d_fv_x" (4 * n) in
      let d_fvy = cuda_malloc host ~label:"d_fv_y" (4 * n) in
      let d_fvz = cuda_malloc host ~label:"d_fv_z" (4 * n) in
      let d_nn_list = cuda_malloc host ~label:"d_nn_list" (4 * nboxes * 27) in
      let d_nn_count = cuda_malloc host ~label:"d_nn_count" (4 * nboxes) in
      memcpy_h2d host ~dst:d_rvx ~src:h_rvx ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_rvy ~src:h_rvy ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_rvz ~src:h_rvz ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_qv ~src:h_qv ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_nn_list ~src:h_nn_list ~bytes:(4 * nboxes * 27);
      memcpy_h2d host ~dst:d_nn_count ~src:h_nn_count ~bytes:(4 * nboxes);
      in_function host ~func:"kernel_gpu_cuda_wrapper" ~file:"kernel_gpu_cuda_wrapper.cu"
        ~line:40 (fun () ->
          ignore
            (launch_kernel host ~kernel:"kernel_gpu_cuda" ~grid:(nboxes, 1)
               ~block:(block, 1)
               ~args:
                 [ iarg d_rvx; iarg d_rvy; iarg d_rvz; iarg d_qv; iarg d_fvx;
                   iarg d_fvy; iarg d_fvz; iarg d_nn_list; iarg d_nn_count;
                   iarg par_per_box; farg 0.5 ]));
      memcpy_d2h host ~dst:h_fv ~src:d_fvx ~bytes:(4 * n))

let workload =
  {
    Common.name = "lavaMD";
    description = "Molecular Dynamics";
    source_file = "lavaMD.cu";
    source;
    warps_per_cta = 4;
    block_dims = (128, 1);
    input_desc = "-boxes1d (3*scale) (paper: 10), 100 particles/box";
    kernels = [ "kernel_gpu_cuda" ];
    run;
    default_scale = 1;
  }
