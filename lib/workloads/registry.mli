(** The benchmark registry: the ten applications of the paper's
    Table 2, plus the seeded-bug variants used to validate
    [advisor check]. *)

(** The ten clean Table-2 applications (only these feed the profiling
    experiments and golden metrics). *)
val all : Common.t list

(** Workload variants with one deliberately planted bug each. *)
val seeded : Common.t list

val names : string list
val seeded_names : string list

(** Find by name across [all] and [seeded]; raises [Invalid_argument]
    on unknown names. *)
val find : string -> Common.t

val find_opt : string -> Common.t option
