(* Code- and data-centric debugging views (Section 4.2-(E), Figures 8
   and 9): render the host+device calling context of divergent memory
   accesses and the provenance of the data objects they touch. *)

(* Figure 8: concatenated CPU + GPU calling context ending at one
   monitored instruction. *)
let code_centric_path (p : Profiler.Profile.t) (instance : Profiler.Profile.instance)
    ~node ~(loc : Bitc.Loc.t) =
  let buf = Buffer.create 256 in
  let index = ref 0 in
  let line prefix text =
    Buffer.add_string buf (Printf.sprintf "%-4s %d: %s\n" prefix !index text);
    incr index
  in
  List.iteri
    (fun i frame ->
      line (if i = 0 then "CPU" else "") (Profiler.Records.frame_to_string frame))
    instance.host_path;
  let device_frames = Profiler.Profile.device_path p instance node in
  List.iteri
    (fun i (func, floc) ->
      let where =
        if Bitc.Loc.is_none floc then Bitc.Loc.to_string loc
        else Printf.sprintf "%s: %d" floc.Bitc.Loc.file floc.Bitc.Loc.line
      in
      line (if i = 0 then "GPU" else "") (Printf.sprintf "%s():: %s" func where))
    device_frames;
  (* the monitored instruction itself *)
  Buffer.add_string buf
    (Printf.sprintf "     -> access at %s\n" (Bitc.Loc.to_string loc));
  Buffer.contents buf

(* The most memory-divergent sites of an instance with their full
   calling contexts — what a programmer reads to find Figure 8's
   "Line 33 of Kernel.cu has significant memory divergence". *)
let divergent_sites_report (p : Profiler.Profile.t)
    (instance : Profiler.Profile.instance) ~line_size ~top =
  let sites = Mem_divergence.sites_of_trace ~line_size instance.trace in
  let sites = List.filteri (fun i _ -> i < top) sites in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Top divergent memory accesses of kernel %s:\n" instance.kernel);
  List.iter
    (fun (s : Mem_divergence.site) ->
      Buffer.add_string buf
        (Printf.sprintf "\n%s: avg %.2f unique lines over %d warp accesses\n"
           (Bitc.Loc.to_string s.site_loc) s.site_avg_lines s.site_count);
      Buffer.add_string buf
        (code_centric_path p instance ~node:s.site_node ~loc:s.site_loc))
    sites;
  Buffer.contents buf

let path_to_string frames =
  String.concat " -> "
    (List.map (fun f -> f.Profiler.Records.frame_func) frames)

(* Figure 9: the data object a divergent access belongs to, where it was
   allocated on device and host, and how it was transferred. *)
let data_centric_report (p : Profiler.Profile.t)
    (instance : Profiler.Profile.instance) ~line_size ~top =
  let tr = instance.trace in
  let sites = Mem_divergence.sites_of_trace ~line_size tr in
  let sites = List.filteri (fun i _ -> i < top) sites in
  let buf = Buffer.create 1024 in
  (* representative address per site: first event matching the loc *)
  let addr_of_site (s : Mem_divergence.site) =
    let n = Profiler.Tracebuf.length tr in
    let rec find i =
      if i >= n then None
      else if
        Bitc.Loc.equal (Profiler.Tracebuf.loc tr i) s.site_loc
        && Profiler.Tracebuf.node tr i = s.site_node
        && Profiler.Tracebuf.acc_len tr i > 0
      then Some (Profiler.Tracebuf.addr tr i 0)
      else find (i + 1)
    in
    find 0
  in
  List.iter
    (fun (s : Mem_divergence.site) ->
      match addr_of_site s with
      | None -> ()
      | Some addr -> (
        match Profiler.Data_centric.find_device_alloc p addr with
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "access at %s: address %d not in any data object\n"
               (Bitc.Loc.to_string s.site_loc) addr)
        | Some dev_alloc ->
          let flow = Profiler.Data_centric.flow_of p dev_alloc in
          Buffer.add_string buf
            (Printf.sprintf
               "Data object '%s' (%d bytes on device) suffers memory divergence at \
                %s (avg %.2f lines)\n"
               dev_alloc.label dev_alloc.size
               (Bitc.Loc.to_string s.site_loc)
               s.site_avg_lines);
          Buffer.add_string buf
            (Printf.sprintf "  cudaMalloc at: %s\n"
               (path_to_string dev_alloc.alloc_path));
          (match flow.host_object with
          | Some h ->
            Buffer.add_string buf
              (Printf.sprintf "  host counterpart '%s' allocated at: %s\n" h.label
                 (path_to_string h.alloc_path))
          | None ->
            Buffer.add_string buf "  no host counterpart (device-initialized)\n");
          List.iter
            (fun (t : Profiler.Records.transfer) ->
              Buffer.add_string buf
                (Printf.sprintf "  %s of %d bytes at: %s\n"
                   (Profiler.Records.direction_to_string t.direction)
                   t.bytes
                   (path_to_string t.transfer_path)))
            flow.inbound;
          Buffer.add_char buf '\n'))
    sites;
  Buffer.contents buf
