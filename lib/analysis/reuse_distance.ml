(* Reuse-distance analysis (Section 4.2-(A)).

   Definitions follow the paper: the trace is regrouped by CTA; within a
   CTA, the reuse distance of a use is the number of distinct elements
   accessed between it and the previous use of the same element.
   Because the GPU L1 is write-evict / write-no-allocate, a write to an
   address restarts its counting: the pending forward reuse of the old
   value is recorded as infinite, mirroring the paper's definition of
   the infinity bucket ("never reused during execution or before the
   next write to the address").

   Two models are offered: memory-element based (granularity = access
   width) and cache-line based. *)

type granularity = Element | Cache_line of int

(* Histogram buckets of Figure 4. *)
type bucket = B0 | B1_2 | B3_8 | B9_32 | B33_128 | B129_512 | B_gt512 | B_inf

let buckets = [ B0; B1_2; B3_8; B9_32; B33_128; B129_512; B_gt512; B_inf ]

let bucket_of_distance = function
  | 0 -> B0
  | d when d <= 2 -> B1_2
  | d when d <= 8 -> B3_8
  | d when d <= 32 -> B9_32
  | d when d <= 128 -> B33_128
  | d when d <= 512 -> B129_512
  | _ -> B_gt512

let bucket_label = function
  | B0 -> "0"
  | B1_2 -> "1-2"
  | B3_8 -> "3-8"
  | B9_32 -> "9-32"
  | B33_128 -> "33-128"
  | B129_512 -> "129-512"
  | B_gt512 -> ">512"
  | B_inf -> "inf"

type result = {
  granularity : granularity;
  samples : int; (* total use samples (finite + infinite) *)
  histogram : (bucket * int) list;
  finite_reuses : int;
  infinite_reuses : int; (* streaming / no-reuse accesses *)
  mean_finite_distance : float; (* R.D. input of the bypass model, Eq. 1 *)
  max_finite_distance : int;
}

let fraction result bucket =
  if result.samples = 0 then 0.
  else
    float_of_int (List.assoc bucket result.histogram) /. float_of_int result.samples

let no_reuse_fraction result =
  if result.samples = 0 then 0.
  else float_of_int result.infinite_reuses /. float_of_int result.samples

(* One CTA's access stream, packed as [elem * 2 lor is_write] per lane
   access in execution order (no tuple per access). *)
let analyze_stream (accesses : Profiler.Intvec.t) =
  let n = Profiler.Intvec.length accesses in
  let bit = Fenwick.create (max n 1) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let hist = Hashtbl.create 8 in
  let bump bucket = Hashtbl.replace hist bucket (1 + Option.value (Hashtbl.find_opt hist bucket) ~default:0) in
  let finite = ref 0 and infinite = ref 0 in
  let sum = ref 0 and maxd = ref 0 in
  for i = 0 to n - 1 do
    let packed = Profiler.Intvec.get accesses i in
    let elem = packed lsr 1 and is_write = packed land 1 = 1 in
    let pos = i + 1 in
    if is_write then (
      (* write-evict: pending forward reuse of the old value dies *)
      match Hashtbl.find_opt last elem with
      | Some q ->
        bump B_inf;
        incr infinite;
        Fenwick.add bit q (-1);
        Hashtbl.remove last elem
      | None -> ())
    else begin
      (match Hashtbl.find_opt last elem with
      | Some q ->
        let d = Fenwick.between bit ~lo:q ~hi:pos in
        bump (bucket_of_distance d);
        incr finite;
        sum := !sum + d;
        if d > !maxd then maxd := d;
        Fenwick.add bit q (-1)
      | None -> ());
      Hashtbl.replace last elem pos;
      Fenwick.add bit pos 1
    end
  done;
  (* accesses still pending at the end were never reused *)
  Hashtbl.iter
    (fun _ _ ->
      bump B_inf;
      incr infinite)
    last;
  (hist, !finite, !infinite, !sum, !maxd)

(* Element id of one lane access under the chosen granularity. *)
let element_of ~granularity ~bits addr =
  match granularity with
  | Element -> addr / max 1 (bits / 8)
  | Cache_line line -> addr / line

(* Analyze the packed trace of one kernel instance (in execution
   order), regrouped per CTA as in the paper.  One pass over the
   columns builds packed per-CTA streams; no per-event record is
   decoded. *)
let of_trace ?(granularity = Element) (tr : Profiler.Tracebuf.t) =
  let per_cta : (int, Profiler.Intvec.t) Hashtbl.t = Hashtbl.create 64 in
  let arena = Profiler.Tracebuf.addr_arena tr in
  Profiler.Tracebuf.iter tr (fun i ->
      let n = Profiler.Tracebuf.acc_len tr i in
      if n > 0 then begin
        let stream =
          let cta = Profiler.Tracebuf.cta tr i in
          match Hashtbl.find_opt per_cta cta with
          | Some v -> v
          | None ->
            let v = Profiler.Intvec.create () in
            Hashtbl.replace per_cta cta v;
            v
        in
        let is_write =
          if Profiler.Tracebuf.kind tr i = Passes.Hooks.mem_kind_store then 1 else 0
        in
        let bits = Profiler.Tracebuf.bits tr i in
        let off = Profiler.Tracebuf.acc_off tr i in
        for j = off to off + n - 1 do
          let elem = element_of ~granularity ~bits arena.(j) in
          Profiler.Intvec.push stream ((elem lsl 1) lor is_write)
        done
      end);
  let hist_total = Hashtbl.create 8 in
  let finite = ref 0 and infinite = ref 0 and sum = ref 0 and maxd = ref 0 in
  Hashtbl.iter
    (fun _cta stream ->
      let hist, f, inf, s, m = analyze_stream stream in
      Hashtbl.iter
        (fun b c ->
          Hashtbl.replace hist_total b
            (c + Option.value (Hashtbl.find_opt hist_total b) ~default:0))
        hist;
      finite := !finite + f;
      infinite := !infinite + inf;
      sum := !sum + s;
      maxd := max !maxd m)
    per_cta;
  let histogram =
    List.map
      (fun b -> (b, Option.value (Hashtbl.find_opt hist_total b) ~default:0))
      buckets
  in
  {
    granularity;
    samples = !finite + !infinite;
    histogram;
    finite_reuses = !finite;
    infinite_reuses = !infinite;
    mean_finite_distance =
      (if !finite = 0 then 0. else float_of_int !sum /. float_of_int !finite);
    max_finite_distance = !maxd;
  }

let of_events ?granularity events =
  of_trace ?granularity (Profiler.Tracebuf.of_events events)

let of_instance ?granularity (instance : Profiler.Profile.instance) =
  of_trace ?granularity instance.trace

(* Merge results of independent kernel instances into the whole-
   application view of Figure 4 (reuse is per CTA per instance, so
   merging is summing histograms and weighting the means). *)
let merge = function
  | [] -> invalid_arg "Reuse_distance.merge: empty"
  | first :: _ as results ->
    let histogram =
      List.map
        (fun b ->
          (b, List.fold_left (fun acc r -> acc + List.assoc b r.histogram) 0 results))
        buckets
    in
    let finite = List.fold_left (fun acc r -> acc + r.finite_reuses) 0 results in
    let infinite = List.fold_left (fun acc r -> acc + r.infinite_reuses) 0 results in
    let weighted_sum =
      List.fold_left
        (fun acc r -> acc +. (r.mean_finite_distance *. float_of_int r.finite_reuses))
        0. results
    in
    {
      granularity = first.granularity;
      samples = finite + infinite;
      histogram;
      finite_reuses = finite;
      infinite_reuses = infinite;
      mean_finite_distance =
        (if finite = 0 then 0. else weighted_sum /. float_of_int finite);
      max_finite_distance =
        List.fold_left (fun acc r -> max acc r.max_finite_distance) 0 results;
    }

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (b, c) ->
      Format.fprintf fmt "%-8s %6.2f%% (%d)@ " (bucket_label b)
        (100. *. fraction r b) c)
    r.histogram;
  Format.fprintf fmt "mean finite RD: %.2f, samples: %d@]" r.mean_finite_distance
    r.samples
