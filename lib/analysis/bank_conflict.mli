(** Shared-memory bank-conflict analysis: aggregates the simulator's
    per-access conflict records by source location and CCT device path.
    A bank serializes one pass per distinct word mapped to it within a
    warp access; lanes reading the same word broadcast for free.  The
    records exist whenever the run was instrumented; the cycle charge
    ([wasted_cycles]) is only realized in simulated time when the
    launch opted into the bank model. *)

type site = {
  site_loc : Bitc.Loc.t;
  site_path : (string * Bitc.Loc.t) list;
      (** kernel entry + device call frames *)
  site_kind : string;  (** "load", "store" or "mixed" *)
  site_conflicts : int;  (** warp accesses that serialized *)
  site_replays : int;
  site_max_degree : int;
  site_avg_degree : float;
  site_broadcast_lanes : int;
  site_wasted_cycles : int;
}

type result = {
  banks : int;
  bank_width : int;
  replay_cost : int;  (** issue cycles per replay under the bank model *)
  shared_accesses : int;  (** all warp-level shared accesses *)
  conflict_accesses : int;  (** accesses with degree > 1 *)
  broadcast_accesses : int;  (** accesses where >1 lane shared a word *)
  replays : int;  (** sum of (degree - 1) *)
  wasted_cycles : int;  (** replays * replay_cost *)
  sites : site list;  (** sorted by replays, worst first *)
}

val of_profile : arch:Gpusim.Arch.t -> Profiler.Profile.t -> result

(** Worst serialized pass count anywhere in the run; 1 when
    conflict-free. *)
val max_degree : result -> int

val pp : Format.formatter -> result -> unit
