(** Memory-divergence analysis (paper Section 4.2-(B), Figure 5): for
    every warp-level global memory instruction, the number of unique
    cache lines its active lanes touch (1..32).  The "memory divergence
    degree" is the weighted average — the M.D. input of Eq. (1). *)

type result = {
  line_size : int;
  total_instructions : int;  (** warp-level memory instructions *)
  distribution : int array;  (** index 1..32: instruction counts *)
  degree : float;  (** weighted average of unique lines *)
}

val max_lines : int

(** Single pass over a packed trace: coalescing runs on the trace's
    address arena, allocating nothing per event. *)
val of_trace : line_size:int -> Profiler.Tracebuf.t -> result

val of_events : line_size:int -> (Gpusim.Hookev.mem * int) list -> result
val of_instance : line_size:int -> Profiler.Profile.instance -> result

(** Merge per-instance results into the whole-application distribution. *)
val merge : result list -> result

(** Fraction of instructions touching exactly [lines] lines, in [0,1]. *)
val fraction : result -> int -> float

(** Per-source-location divergence, used by the code-centric view
    (Figure 8): average unique lines per warp access at each
    (location, calling context) pair, worst first. *)
type site = {
  site_loc : Bitc.Loc.t;
  site_node : int;  (** CCT node of the call path *)
  site_count : int;
  site_avg_lines : float;
}

val sites_of_trace : line_size:int -> Profiler.Tracebuf.t -> site list
val sites : line_size:int -> (Gpusim.Hookev.mem * int) list -> site list
val pp : Format.formatter -> result -> unit
