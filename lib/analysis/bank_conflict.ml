(* Shared-memory bank-conflict analysis: aggregates the simulator's
   per-access conflict records (Profiler.Tracebuf.Conflict) by source
   location and CCT device path, the same code-centric attribution the
   paper applies to global-memory metrics.  Each site reports how many
   of its warp accesses serialized, the worst and average conflict
   degree, the replay count, the cycles those replays cost under the
   bank model, and how many lanes were broadcasts (same-word reads,
   free on hardware) rather than true conflicts. *)

type site = {
  site_loc : Bitc.Loc.t;
  site_path : (string * Bitc.Loc.t) list; (* kernel entry + device frames *)
  site_kind : string; (* "load" / "store" / "mixed" *)
  site_conflicts : int; (* warp accesses that serialized *)
  site_replays : int;
  site_max_degree : int;
  site_avg_degree : float;
  site_broadcast_lanes : int;
  site_wasted_cycles : int;
}

type result = {
  banks : int;
  bank_width : int;
  replay_cost : int; (* issue cycles per replay under the bank model *)
  shared_accesses : int; (* all warp-level shared accesses *)
  conflict_accesses : int; (* accesses with degree > 1 *)
  broadcast_accesses : int; (* accesses where >1 lane shared a word *)
  replays : int; (* sum of (degree - 1) *)
  wasted_cycles : int; (* replays * replay_cost *)
  sites : site list; (* sorted by replays, worst first *)
}

type acc = {
  mutable a_conflicts : int;
  mutable a_replays : int;
  mutable a_max_degree : int;
  mutable a_degree_sum : int;
  mutable a_broadcast : int;
  mutable a_loads : int;
  mutable a_stores : int;
}

let of_profile ~(arch : Gpusim.Arch.t) (p : Profiler.Profile.t) =
  let module C = Profiler.Tracebuf.Conflict in
  let table : (Bitc.Loc.t * (string * Bitc.Loc.t) list, acc) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in (* first-seen order, for deterministic ties *)
  let shared_accesses = ref 0 in
  let broadcast_accesses = ref 0 in
  let conflict_accesses = ref 0 in
  let replays = ref 0 in
  List.iter
    (fun (inst : Profiler.Profile.instance) ->
      (match inst.result with
      | Some r ->
        let s = r.Gpusim.Gpu.stats in
        shared_accesses := !shared_accesses + s.Gpusim.Stats.shared_accesses;
        broadcast_accesses :=
          !broadcast_accesses + s.Gpusim.Stats.shared_broadcasts
      | None -> ());
      (* node -> device path, resolved once per node per instance *)
      let paths : (int, (string * Bitc.Loc.t) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let path_of node =
        match Hashtbl.find_opt paths node with
        | Some path -> path
        | None ->
          let path = Profiler.Profile.device_path p inst node in
          Hashtbl.replace paths node path;
          path
      in
      let c = inst.conflicts in
      C.iter c (fun i ->
          incr conflict_accesses;
          let r = C.replays c i in
          let d = C.degree c i in
          replays := !replays + r;
          let key = (C.loc c i, path_of (C.node c i)) in
          let a =
            match Hashtbl.find_opt table key with
            | Some a -> a
            | None ->
              let a =
                { a_conflicts = 0; a_replays = 0; a_max_degree = 0;
                  a_degree_sum = 0; a_broadcast = 0; a_loads = 0; a_stores = 0 }
              in
              Hashtbl.replace table key a;
              order := key :: !order;
              a
          in
          a.a_conflicts <- a.a_conflicts + 1;
          a.a_replays <- a.a_replays + r;
          a.a_degree_sum <- a.a_degree_sum + d;
          if d > a.a_max_degree then a.a_max_degree <- d;
          a.a_broadcast <- a.a_broadcast + C.broadcast c i;
          if C.kind c i = Passes.Hooks.mem_kind_store then
            a.a_stores <- a.a_stores + 1
          else a.a_loads <- a.a_loads + 1))
    (Profiler.Profile.instances p);
  let replay_cost = arch.Gpusim.Arch.shared_replay in
  let sites =
    List.rev_map
      (fun ((loc, path) as key) ->
        let a = Hashtbl.find table key in
        {
          site_loc = loc;
          site_path = path;
          site_kind =
            (if a.a_loads = 0 then "store"
             else if a.a_stores = 0 then "load"
             else "mixed");
          site_conflicts = a.a_conflicts;
          site_replays = a.a_replays;
          site_max_degree = a.a_max_degree;
          site_avg_degree =
            float_of_int a.a_degree_sum /. float_of_int a.a_conflicts;
          site_broadcast_lanes = a.a_broadcast;
          site_wasted_cycles = a.a_replays * replay_cost;
        })
      !order
    |> List.stable_sort (fun a b -> compare b.site_replays a.site_replays)
  in
  {
    banks = arch.Gpusim.Arch.shared_banks;
    bank_width = arch.Gpusim.Arch.shared_bank_width;
    replay_cost;
    shared_accesses = !shared_accesses;
    conflict_accesses = !conflict_accesses;
    broadcast_accesses = !broadcast_accesses;
    replays = !replays;
    wasted_cycles = !replays * replay_cost;
    sites;
  }

(* Worst serialized pass count over the whole run: 1 when conflict-free. *)
let max_degree r =
  List.fold_left (fun acc s -> max acc s.site_max_degree) 1 r.sites

let pp fmt r =
  Format.fprintf fmt
    "@[<v>%d-bank model (%d B banks, %d cycles/replay)@ shared accesses: %d@ \
     conflicting: %d@ broadcasts: %d@ replays: %d (%d wasted cycles)@ "
    r.banks r.bank_width r.replay_cost r.shared_accesses r.conflict_accesses
    r.broadcast_accesses r.replays r.wasted_cycles;
  (match r.sites with
  | [] -> Format.fprintf fmt "no conflicting sites"
  | sites ->
    Format.fprintf fmt "@[<v 2>per-site (worst first):";
    List.iter
      (fun s ->
        Format.fprintf fmt
          "@ %s:%d [%s] degree avg %.1f max %d, %d accesses, %d replays (%d \
           cycles), %d broadcast lanes"
          s.site_loc.Bitc.Loc.file s.site_loc.Bitc.Loc.line s.site_kind
          s.site_avg_degree s.site_max_degree s.site_conflicts s.site_replays
          s.site_wasted_cycles s.site_broadcast_lanes)
      sites;
    Format.fprintf fmt "@]");
  Format.fprintf fmt "@]"
