(** Reuse-distance analysis (paper Section 4.2-(A), Figure 4).

    The memory trace is regrouped by CTA; within a CTA, the reuse
    distance of a use is the number of distinct elements accessed
    between it and the previous use of the same element.  Because the
    GPU L1 is write-evict / write-no-allocate, a write to an address
    restarts its counting: the pending reuse of the old value is
    recorded as infinite ("never reused during execution or before the
    next write", the paper's infinity bucket). *)

(** Element granularity: the access width itself, or whole cache lines
    of the given size (the model fed to the bypassing equation). *)
type granularity = Element | Cache_line of int

(** Histogram buckets of Figure 4's x-axis. *)
type bucket = B0 | B1_2 | B3_8 | B9_32 | B33_128 | B129_512 | B_gt512 | B_inf

val buckets : bucket list
val bucket_of_distance : int -> bucket
val bucket_label : bucket -> string

type result = {
  granularity : granularity;
  samples : int;  (** total use samples (finite + infinite) *)
  histogram : (bucket * int) list;
  finite_reuses : int;
  infinite_reuses : int;  (** streaming / no-reuse accesses *)
  mean_finite_distance : float;  (** the R.D. input of Eq. (1) *)
  max_finite_distance : int;
}

(** Fraction of samples in a bucket, in [0,1]. *)
val fraction : result -> bucket -> float

(** Fraction of no-reuse samples, in [0,1]. *)
val no_reuse_fraction : result -> float

(** Analyze a packed trace in one pass over its columns: per-CTA
    streams are built without decoding any event record. *)
val of_trace : ?granularity:granularity -> Profiler.Tracebuf.t -> result

(** Convenience wrapper over {!of_trace} for unpacked event lists
    (tests, synthetic traces). *)
val of_events :
  ?granularity:granularity -> (Gpusim.Hookev.mem * int) list -> result

(** Analyze one kernel instance's trace. *)
val of_instance :
  ?granularity:granularity -> Profiler.Profile.instance -> result

(** Merge per-instance results into the whole-application view. *)
val merge : result list -> result

val pp : Format.formatter -> result -> unit
