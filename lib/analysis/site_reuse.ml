(* Per-instruction (source-site) reuse statistics: the input of
   *vertical* cache bypassing (Xie et al. [55], discussed in Section
   4.2-(D) of the paper), which bypasses individual load instructions
   with little reuse for every warp.

   For each load site we measure how often the data it touches is
   reused by a later access of the same CTA before being written: sites
   that are almost pure streaming gain nothing from the L1 and are
   bypass candidates. *)

type site_stat = {
  loc : Bitc.Loc.t;
  accesses : int; (* thread-level accesses issued by the site *)
  reused_later : int; (* of those, how many were reused afterwards *)
}

let reuse_fraction s =
  if s.accesses = 0 then 0. else float_of_int s.reused_later /. float_of_int s.accesses

(* Streams of (line, is_write, site-loc, event id) per CTA, at
   cache-line granularity (the reuse that matters to the L1).  The
   event id distinguishes lanes of one warp instruction: lanes sharing a
   line within a single access are one coalesced transaction, not an L1
   reuse.

   The whole-application view feeds every kernel instance's trace in
   launch order with a running event id, so CTA streams span instances
   (CTA ids persist across launches).  Each per-CTA stream is packed
   into a flat int vector, three slots per lane access; source
   locations are interned across traces so the pass stays on ints. *)
let of_traces ~line_size (traces : Profiler.Tracebuf.t list) =
  let per_cta : (int, Profiler.Intvec.t) Hashtbl.t = Hashtbl.create 64 in
  (* global location interning across traces *)
  let loc_ids : (Bitc.Loc.t, int) Hashtbl.t = Hashtbl.create 64 in
  let locs : Bitc.Loc.t list ref = ref [] in
  let nlocs = ref 0 in
  let next_event = ref 0 in
  List.iter
    (fun tr ->
      (* per-trace cache: global id of each of the trace's interned locs *)
      let local = Array.make (max 1 (Profiler.Tracebuf.num_locs tr)) (-1) in
      let arena = Profiler.Tracebuf.addr_arena tr in
      Profiler.Tracebuf.iter tr (fun i ->
          let event_id = !next_event in
          incr next_event;
          let n = Profiler.Tracebuf.acc_len tr i in
          if n > 0 then begin
            let stream =
              let cta = Profiler.Tracebuf.cta tr i in
              match Hashtbl.find_opt per_cta cta with
              | Some v -> v
              | None ->
                let v = Profiler.Intvec.create () in
                Hashtbl.replace per_cta cta v;
                v
            in
            let lid = Profiler.Tracebuf.loc_id tr i in
            let gloc =
              if local.(lid) >= 0 then local.(lid)
              else begin
                let loc = Profiler.Tracebuf.loc_of_id tr lid in
                let g =
                  match Hashtbl.find_opt loc_ids loc with
                  | Some g -> g
                  | None ->
                    let g = !nlocs in
                    incr nlocs;
                    Hashtbl.add loc_ids loc g;
                    locs := loc :: !locs;
                    g
                in
                local.(lid) <- g;
                g
              end
            in
            let is_write =
              if Profiler.Tracebuf.kind tr i = Passes.Hooks.mem_kind_store then 1
              else 0
            in
            let off = Profiler.Tracebuf.acc_off tr i in
            for j = off to off + n - 1 do
              Profiler.Intvec.push stream ((arena.(j) / line_size * 2) lor is_write);
              Profiler.Intvec.push stream gloc;
              Profiler.Intvec.push stream event_id
            done
          end))
    traces;
  let loc_of_gloc = Array.make (max 1 !nlocs) Bitc.Loc.none in
  List.iteri (fun i loc -> loc_of_gloc.(!nlocs - 1 - i) <- loc) !locs;
  let counts = Array.make (max 1 !nlocs) 0 in
  let reused = Array.make (max 1 !nlocs) 0 in
  Hashtbl.iter
    (fun _cta stream ->
      (* for each load, was its line touched again by a *later* warp
         instruction before a write? *)
      let pending : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 256 in
      let credit line event_id =
        match Hashtbl.find_opt pending line with
        | Some sites ->
          let later, same =
            List.partition (fun (_, ev) -> ev <> event_id) !sites
          in
          List.iter (fun (gloc, _) -> reused.(gloc) <- reused.(gloc) + 1) later;
          sites := same
        | None -> ()
      in
      let len = Profiler.Intvec.length stream in
      let k = ref 0 in
      while !k < len do
        let packed = Profiler.Intvec.get stream !k in
        let gloc = Profiler.Intvec.get stream (!k + 1) in
        let event_id = Profiler.Intvec.get stream (!k + 2) in
        k := !k + 3;
        let line = packed lsr 1 and is_write = packed land 1 = 1 in
        if is_write then (
          (* write-evict: outstanding loads of this line are never
             L1-reused *)
          match Hashtbl.find_opt pending line with
          | Some sites -> sites := []
          | None -> ())
        else begin
          (* this access is a reuse for pendings from earlier events *)
          credit line event_id;
          counts.(gloc) <- counts.(gloc) + 1;
          let sites =
            match Hashtbl.find_opt pending line with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.replace pending line s;
              s
          in
          sites := (gloc, event_id) :: !sites
        end
      done)
    per_cta;
  let acc = ref [] in
  for g = !nlocs - 1 downto 0 do
    if counts.(g) > 0 then
      acc :=
        { loc = loc_of_gloc.(g); accesses = counts.(g); reused_later = reused.(g) }
        :: !acc
  done;
  List.sort (fun a b -> Bitc.Loc.compare a.loc b.loc) !acc

let of_events ~line_size events =
  of_traces ~line_size [ Profiler.Tracebuf.of_events events ]

(* Load sites whose reuse fraction falls below [threshold]: the
   candidates vertical bypassing sends straight to the L2. *)
let candidates_of_sites ?(threshold = 0.15) sites =
  sites
  |> List.filter (fun s -> reuse_fraction s < threshold && s.accesses > 0)
  |> List.map (fun s -> s.loc)

let bypass_candidates ?threshold ~line_size events =
  candidates_of_sites ?threshold (of_events ~line_size events)
