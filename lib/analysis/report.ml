(* Structured, machine-readable profile reports: everything the
   analyzer derives for one application run, as a JSON document, so the
   tool's output can feed scripts and dashboards. *)

let loc_json (loc : Bitc.Loc.t) =
  Json.Obj
    [ ("file", Json.String loc.file); ("line", Json.Int loc.line);
      ("col", Json.Int loc.col) ]

let reuse_distance_json (rd : Reuse_distance.result) =
  Json.Obj
    [ ("samples", Json.Int rd.samples);
      ("finite_reuses", Json.Int rd.finite_reuses);
      ("no_reuse", Json.Int rd.infinite_reuses);
      ("no_reuse_fraction", Json.Float (Reuse_distance.no_reuse_fraction rd));
      ("mean_finite_distance", Json.Float rd.mean_finite_distance);
      ("max_finite_distance", Json.Int rd.max_finite_distance);
      ( "histogram",
        Json.Obj
          (List.map
             (fun (b, c) -> (Reuse_distance.bucket_label b, Json.Int c))
             rd.histogram) ) ]

let mem_divergence_json (md : Mem_divergence.result) =
  let dist =
    List.filter_map
      (fun lines ->
        if md.distribution.(lines) = 0 then None
        else Some (string_of_int lines, Json.Int md.distribution.(lines)))
      (List.init Mem_divergence.max_lines (fun i -> i + 1))
  in
  Json.Obj
    [ ("line_size", Json.Int md.line_size);
      ("instructions", Json.Int md.total_instructions);
      ("degree", Json.Float md.degree); ("distribution", Json.Obj dist) ]

let branch_divergence_json (bd : Branch_divergence.result) =
  Json.Obj
    [ ("divergent_blocks", Json.Int bd.divergent_blocks);
      ("total_blocks", Json.Int bd.total_blocks);
      ("percent", Json.Float (Branch_divergence.percent bd)) ]

let summary_json (s : Statistics.summary) =
  Json.Obj
    [ ("count", Json.Int s.count); ("mean", Json.Float s.mean);
      ("min", Json.Float s.min); ("max", Json.Float s.max);
      ("stddev", Json.Float s.stddev) ]

let sites_json ~line_size events ~top =
  let sites = Mem_divergence.sites ~line_size events in
  let sites = List.filteri (fun i _ -> i < top) sites in
  Json.List
    (List.map
       (fun (s : Mem_divergence.site) ->
         Json.Obj
           [ ("loc", loc_json s.site_loc);
             ("warp_accesses", Json.Int s.site_count);
             ("avg_unique_lines", Json.Float s.site_avg_lines) ])
       sites)

(* Launch-level hardware counters summed over every kernel instance:
   the [Gpusim.Stats.t] aggregates (barriers, hook calls, transactions,
   ...) that the per-metric sections above do not carry. *)
let launch_stats_json (instances : Profiler.Profile.instance list) =
  let results =
    List.filter_map (fun (i : Profiler.Profile.instance) -> i.result) instances
  in
  let sum f = Json.Int (List.fold_left (fun acc r -> acc + f r) 0 results) in
  let stat f = sum (fun (r : Gpusim.Gpu.result) -> f r.stats) in
  Json.Obj
    [ ("launches", Json.Int (List.length results));
      ("cycles", sum (fun r -> r.Gpusim.Gpu.cycles));
      ("ctas", sum (fun r -> r.Gpusim.Gpu.ctas));
      ("warp_insts", stat (fun s -> s.Gpusim.Stats.warp_insts));
      ("thread_insts", stat (fun s -> s.Gpusim.Stats.thread_insts));
      ("global_loads", stat (fun s -> s.Gpusim.Stats.global_loads));
      ("global_stores", stat (fun s -> s.Gpusim.Stats.global_stores));
      ("global_atomics", stat (fun s -> s.Gpusim.Stats.global_atomics));
      ("load_transactions", stat (fun s -> s.Gpusim.Stats.load_transactions));
      ("store_transactions", stat (fun s -> s.Gpusim.Stats.store_transactions));
      ("shared_accesses", stat (fun s -> s.Gpusim.Stats.shared_accesses));
      ("branches", stat (fun s -> s.Gpusim.Stats.branches));
      ("divergent_branches", stat (fun s -> s.Gpusim.Stats.divergent_branches));
      ("hook_calls", stat (fun s -> s.Gpusim.Stats.hook_calls));
      ("barriers", stat (fun s -> s.Gpusim.Stats.barriers)) ]

(* Bank-conflict section: only emitted when the profile ran under the
   bank model, so reports from default runs stay byte-identical. *)
let bank_conflict_json (bc : Bank_conflict.result) =
  Json.Obj
    [ ("banks", Json.Int bc.Bank_conflict.banks);
      ("bank_width", Json.Int bc.bank_width);
      ("replay_cost", Json.Int bc.replay_cost);
      ("shared_accesses", Json.Int bc.shared_accesses);
      ("conflict_accesses", Json.Int bc.conflict_accesses);
      ("broadcast_accesses", Json.Int bc.broadcast_accesses);
      ("replays", Json.Int bc.replays);
      ("wasted_cycles", Json.Int bc.wasted_cycles);
      ( "sites",
        Json.List
          (List.map
             (fun (s : Bank_conflict.site) ->
               Json.Obj
                 [ ("loc", loc_json s.site_loc);
                   ("kind", Json.String s.site_kind);
                   ("conflicts", Json.Int s.site_conflicts);
                   ("replays", Json.Int s.site_replays);
                   ("max_degree", Json.Int s.site_max_degree);
                   ("avg_degree", Json.Float s.site_avg_degree);
                   ("broadcast_lanes", Json.Int s.site_broadcast_lanes);
                   ("wasted_cycles", Json.Int s.site_wasted_cycles) ])
             bc.sites) ) ]

(* The full report of one profiled application run.  [bank_conflict]
   appends the bank-model section (present only for [--bankmodel]
   runs). *)
let of_profile ?(top_sites = 5) ?bank_conflict ~app ~arch_name ~line_size
    (profiler : Profiler.Profile.t) =
  let instances = Profiler.Profile.instances profiler in
  let events = List.concat_map Profiler.Profile.mem_events instances in
  (* an application that launched nothing still gets a valid report *)
  let rd =
    match instances with
    | [] -> Reuse_distance.of_events []
    | _ -> Reuse_distance.merge (List.map Reuse_distance.of_instance instances)
  in
  let md =
    match instances with
    | [] -> Mem_divergence.of_events ~line_size []
    | _ ->
      Mem_divergence.merge
        (List.map (Mem_divergence.of_instance ~line_size) instances)
  in
  let bd = Branch_divergence.of_instances instances in
  let contexts =
    Statistics.by_context instances ~metric:Statistics.cycles
    |> List.map (fun (ctx, s) ->
           Json.Obj [ ("context", Json.String ctx); ("cycles", summary_json s) ])
  in
  Json.Obj
    ([ ("application", Json.String app);
       ("architecture", Json.String arch_name);
       ("kernel_launches", Json.Int (List.length instances));
       ("launch_stats", launch_stats_json instances);
       ("reuse_distance", reuse_distance_json rd);
       ("memory_divergence", mem_divergence_json md);
       ("branch_divergence", branch_divergence_json bd);
       ("divergent_sites", sites_json ~line_size events ~top:top_sites);
       ("contexts", Json.List contexts) ]
    @
    match bank_conflict with
    | None -> []
    | Some bc -> [ ("bank_conflict", bank_conflict_json bc) ])

(* ----- the bypassing-study report ----- *)

(* Machine-readable Figures 6/7 row (used by the serve daemon's
   `bypass` op).  Takes scalars rather than [Advisor.bypass_experiment]
   so this encoder stays below the core library in the dependency
   order. *)
let bypass_json ~app ~arch_name ~warps_per_cta ~baseline_cycles ~sweep
    ~oracle_warps ~oracle_cycles ~predicted_warps ~predicted_cycles =
  Json.Obj
    [ ("application", Json.String app);
      ("architecture", Json.String arch_name);
      ("warps_per_cta", Json.Int warps_per_cta);
      ("baseline_cycles", Json.Int baseline_cycles);
      ( "sweep",
        Json.List
          (List.map
             (fun (n, c) ->
               Json.Obj
                 [ ("caching_warps", Json.Int n); ("cycles", Json.Int c) ])
             sweep) );
      ( "oracle",
        Json.Obj
          [ ("warps", Json.Int oracle_warps); ("cycles", Json.Int oracle_cycles) ]
      );
      ( "predicted",
        Json.Obj
          [ ("warps", Json.Int predicted_warps);
            ("cycles", Json.Int predicted_cycles) ] ) ]

(* ----- the static-estimate report (`profile --tier static`) ----- *)

let confidence_json c = Json.String (Passes.Estimate.confidence_label c)

(* The IR-only counterpart of [of_profile]: same top-level metric
   sections, each value paired with its confidence tier, plus the
   per-site access patterns and loop bounds the estimator recovered.
   A "tier" field distinguishes it from a simulated profile at a
   glance. *)
let estimate_json ~app ~arch_name (e : Passes.Estimate.t) =
  let bx, by = e.Passes.Estimate.block in
  Json.Obj
    ([ ("application", Json.String app);
      ("architecture", Json.String arch_name);
      ("tier", Json.String "static");
      ( "block",
        Json.Obj [ ("x", Json.Int bx); ("y", Json.Int by) ] );
      ("line_size", Json.Int e.line_size);
      ( "memory_divergence",
        Json.Obj
          [ ("degree", Json.Float e.degree);
            ("confidence", confidence_json e.degree_confidence) ] );
      ( "branch_divergence",
        Json.Obj
          [ ("percent", Json.Float e.branch_percent);
            ("confidence", confidence_json e.branch_confidence) ] );
      ( "reuse_distance",
        Json.Obj
          [ ("no_reuse_fraction", Json.Float e.no_reuse_fraction);
            ("confidence", confidence_json e.reuse_confidence);
            ( "histogram",
              Json.Obj
                (List.map
                   (fun (label, frac) -> (label, Json.Float frac))
                   e.reuse_histogram) ) ] );
      ( "sites",
        Json.List
          (List.map
             (fun (s : Passes.Estimate.site) ->
               Json.Obj
                 [ ("loc", loc_json s.site_loc);
                   ("function", Json.String s.site_func);
                   ("kind", Json.String s.site_kind);
                   ("pattern", Json.String s.pattern);
                   ("lines", Json.Float s.lines);
                   ("confidence", confidence_json s.lines_confidence);
                   ("weight", Json.Float s.weight) ])
             e.sites) );
      ( "loop_bounds",
        Json.List
          (List.map
             (fun (l : Passes.Estimate.loop_bound) ->
               Json.Obj
                 [ ("function", Json.String l.loop_func);
                   ("header", Json.String l.loop_header);
                   ("trips", Json.Float l.trips);
                   ("confidence", confidence_json l.trips_confidence) ])
             e.loop_bounds) ) ]
    @
    (* Only apps touching shared memory get the section, so estimate
       reports for the (shared-free) golden apps keep their exact
       pre-bank-model bytes. *)
    (match e.shared_sites with
    | [] -> []
    | shared ->
      [ ( "bank_conflict",
          Json.Obj
            [ ("banks", Json.Int e.banks);
              ("bank_width", Json.Int e.bank_width);
              ("predicted_degree", Json.Int e.bank_degree);
              ("confidence", confidence_json e.bank_confidence);
              ( "sites",
                Json.List
                  (List.map
                     (fun (s : Passes.Estimate.shared_site) ->
                       Json.Obj
                         [ ("loc", loc_json s.sh_loc);
                           ("function", Json.String s.sh_func);
                           ("kind", Json.String s.sh_kind);
                           ("pattern", Json.String s.sh_pattern);
                           ("degree", Json.Int s.sh_degree);
                           ("broadcast", Json.Bool s.sh_broadcast);
                           ("confidence", confidence_json s.sh_confidence) ])
                     shared) ) ] ) ]))

(* ----- the `advisor check` report ----- *)

let path_json path =
  Json.List
    (List.map
       (fun (fn, loc) ->
         Json.Obj [ ("function", Json.String fn); ("loc", loc_json loc) ])
       path)

let static_finding_json (f : Passes.Check_static.finding) =
  Json.Obj
    [ ("kind", Json.String "static"); ("rule", Json.String f.rule);
      ("function", Json.String f.in_func); ("loc", loc_json f.loc);
      ("related", loc_json f.related); ("message", Json.String f.message) ]

let race_json (r : Race.race) =
  Json.Obj
    [ ("kind", Json.String "shared-race");
      ("rule", Json.String r.race_kind);
      ( "sites",
        Json.List
          [ Json.Obj [ ("loc", loc_json r.a_loc); ("path", path_json r.a_path) ];
            Json.Obj [ ("loc", loc_json r.b_loc); ("path", path_json r.b_path) ]
          ] );
      ("conflicting_cells", Json.Int r.conflicts);
      ( "sample",
        Json.Obj
          [ ("cta", Json.Int r.sample_cta); ("epoch", Json.Int r.sample_epoch);
            ("shared_byte", Json.Int r.sample_addr) ] ) ]

let barrier_advice_json (a : Race.barrier_advice) =
  Json.Obj
    [ ("kind", Json.String "redundant-barrier");
      ("function", Json.String a.advice_func); ("loc", loc_json a.advice_loc);
      ("dynamic_boundaries", Json.Int a.boundaries);
      ( "message",
        Json.String
          "no cross-warp sharing spans this barrier in any observed epoch; \
           it may be removable" ) ]

(* The combined static + dynamic correctness report.  [errors] are
   definite findings (`advisor check` fails on any); [advice] is
   non-failing guidance. *)
let check_json ~app ~(static : Passes.Check_static.finding list)
    (races : Race.result) =
  let errors =
    List.map static_finding_json static @ List.map race_json races.Race.races
  in
  Json.Obj
    [ ("application", Json.String app);
      ("error_count", Json.Int (List.length errors));
      ("errors", Json.List errors);
      ( "advice",
        Json.List (List.map barrier_advice_json races.Race.redundant_barriers)
      ) ]

let to_string = Json.to_string
