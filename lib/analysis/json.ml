(* A minimal JSON emitter (no external dependency) for machine-readable
   tool output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (* pre-serialized JSON spliced verbatim: lets an assembler reuse
         cached result bytes while guaranteeing the surrounding document
         is byte-identical to one built from structured values *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Raw s -> Buffer.add_string buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (String k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  write buf t;
  Buffer.contents buf
