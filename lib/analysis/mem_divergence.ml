(* Memory-divergence analysis (Section 4.2-(B)): for every warp-level
   global memory instruction, the number of unique cache lines its
   active lanes touch (1..32); Figure 5 is the distribution over the
   whole application, and the "memory divergence degree" is the weighted
   average — the M.D. input of the bypass model (Eq. 1). *)

type result = {
  line_size : int;
  total_instructions : int; (* warp-level memory instructions *)
  distribution : int array; (* index 1..32: count of instructions *)
  degree : float; (* weighted average of unique lines *)
}

let max_lines = 32

(* Single pass over the packed columns: coalescing runs straight on the
   trace's address arena through a reused scratch array, so no per-event
   address list is materialized. *)
let of_trace ~line_size (tr : Profiler.Tracebuf.t) =
  let distribution = Array.make (max_lines + 1) 0 in
  let total = ref 0 in
  let weighted = ref 0 in
  let scratch = Array.make 64 0 in
  let arena = Profiler.Tracebuf.addr_arena tr in
  Profiler.Tracebuf.iter tr (fun i ->
      let n = Profiler.Tracebuf.acc_len tr i in
      if n > 0 then begin
        let width = max 1 (Profiler.Tracebuf.bits tr i / 8) in
        let lines =
          Gpusim.Coalesce.collect_unique_lines ~line_size ~width ~src:arena
            ~off:(Profiler.Tracebuf.acc_off tr i) ~n scratch
        in
        let lines = min lines max_lines in
        distribution.(lines) <- distribution.(lines) + 1;
        weighted := !weighted + lines;
        incr total
      end);
  {
    line_size;
    total_instructions = !total;
    distribution;
    degree = (if !total = 0 then 1. else float_of_int !weighted /. float_of_int !total);
  }

let of_events ~line_size events =
  of_trace ~line_size (Profiler.Tracebuf.of_events events)

let of_instance ~line_size (instance : Profiler.Profile.instance) =
  of_trace ~line_size instance.trace

(* Merge results of independent kernel instances into the whole-
   application distribution of Figure 5. *)
let merge = function
  | [] -> invalid_arg "Mem_divergence.merge: empty"
  | first :: _ as results ->
    let distribution = Array.make (max_lines + 1) 0 in
    let total = ref 0 and weighted = ref 0. in
    List.iter
      (fun r ->
        Array.iteri (fun i c -> distribution.(i) <- distribution.(i) + c) r.distribution;
        total := !total + r.total_instructions;
        weighted := !weighted +. (r.degree *. float_of_int r.total_instructions))
      results;
    {
      line_size = first.line_size;
      total_instructions = !total;
      distribution;
      degree = (if !total = 0 then 1. else !weighted /. float_of_int !total);
    }

let fraction r lines =
  if r.total_instructions = 0 then 0.
  else float_of_int r.distribution.(lines) /. float_of_int r.total_instructions

(* Per-source-location divergence: average unique lines per warp access,
   used by the code-centric debugging view (Figure 8). *)
type site = {
  site_loc : Bitc.Loc.t;
  site_node : int; (* CCT node of the call path *)
  site_count : int;
  site_avg_lines : float;
}

let sites_of_trace ~line_size (tr : Profiler.Tracebuf.t) =
  (* keyed by (interned location id, CCT node) so the pass stays on flat
     ints; ids decode to locations only in the final fold *)
  let table : (int * int, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Array.make 64 0 in
  let arena = Profiler.Tracebuf.addr_arena tr in
  Profiler.Tracebuf.iter tr (fun i ->
      let n = Profiler.Tracebuf.acc_len tr i in
      if n > 0 then begin
        let width = max 1 (Profiler.Tracebuf.bits tr i / 8) in
        let lines =
          min max_lines
            (Gpusim.Coalesce.collect_unique_lines ~line_size ~width ~src:arena
               ~off:(Profiler.Tracebuf.acc_off tr i) ~n scratch)
        in
        let key = (Profiler.Tracebuf.loc_id tr i, Profiler.Tracebuf.node tr i) in
        match Hashtbl.find_opt table key with
        | Some (count, sum) ->
          incr count;
          sum := !sum + lines
        | None -> Hashtbl.replace table key (ref 1, ref lines)
      end);
  Hashtbl.fold
    (fun (loc_id, node) (count, sum) acc ->
      {
        site_loc = Profiler.Tracebuf.loc_of_id tr loc_id;
        site_node = node;
        site_count = !count;
        site_avg_lines = float_of_int !sum /. float_of_int !count;
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare b.site_avg_lines a.site_avg_lines)

let sites ~line_size events = sites_of_trace ~line_size (Profiler.Tracebuf.of_events events)

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  for i = 1 to max_lines do
    if r.distribution.(i) > 0 then
      Format.fprintf fmt "%2d lines: %6.2f%% (%d)@ " i (100. *. fraction r i)
        r.distribution.(i)
  done;
  Format.fprintf fmt "degree: %.3f over %d instructions@]" r.degree
    r.total_instructions
