(** Per-instruction (source-site) reuse statistics: the input of
    *vertical* cache bypassing (Xie et al., contrasted in Section
    4.2-(D) of the paper), which bypasses individual load sites with
    little reuse for every warp. *)

type site_stat = {
  loc : Bitc.Loc.t;
  accesses : int;  (** thread-level accesses issued by the site *)
  reused_later : int;
      (** of those, how many had their cache line touched again by a
          later instruction of the same CTA before a write *)
}

val reuse_fraction : site_stat -> float

(** Per-site statistics over the packed traces of the application's
    kernel instances (in launch order), at cache-line granularity (the
    reuse that matters to the L1).  A single pass over the columns
    builds packed per-CTA streams spanning instances. *)
val of_traces : line_size:int -> Profiler.Tracebuf.t list -> site_stat list

(** Wrapper over {!of_traces} for one unpacked event list. *)
val of_events :
  line_size:int -> (Gpusim.Hookev.mem * int) list -> site_stat list

(** Filter a precomputed site list down to bypass candidates. *)
val candidates_of_sites : ?threshold:float -> site_stat list -> Bitc.Loc.t list

(** Load sites whose reuse fraction is below [threshold] (default
    0.15): the candidates vertical bypassing flips to [ld.cg]. *)
val bypass_candidates :
  ?threshold:float ->
  line_size:int ->
  (Gpusim.Hookev.mem * int) list ->
  Bitc.Loc.t list
