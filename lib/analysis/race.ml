(* Dynamic shared-memory race detection over the checker's packed trace
   channel ([Profiler.Tracebuf.Shared]), the runtime half of
   `advisor check`.

   Model: a barrier epoch is the number of __syncthreads a warp has
   passed.  Within one CTA, accesses made in the same epoch by
   *different warps* have no ordering — __syncthreads is the only
   inter-warp ordering primitive the programming model gives inside a
   CTA — so two same-epoch accesses to the same byte from different
   warps conflict whenever at least one of them writes (atomics conflict
   with plain reads and writes but commute with each other).  The
   detector is warp-granular: lanes of one warp execute in lockstep on
   this simulator, so intra-warp ordering is defined and intra-warp
   conflicts are out of scope (a documented false-negative window, like
   CUDA's warp-synchronous programming idioms).

   The same per-byte access histories also yield redundant-barrier
   advice: the barrier ending epoch [k] of a CTA is individually
   removable iff merging epochs [k] and [k+1] creates no new conflict —
   i.e. no byte sees a conflicting cross-warp pair with one access in
   epoch [k] and the other in epoch [k+1].  (Pairs spanning more than
   one boundary stay protected by the other barriers.)  A barrier *site*
   is advised redundant when every one of its dynamic boundary instances
   is removable.  Advice is reported separately from race findings: a
   redundant barrier is a performance hint, not a bug. *)

module Shared = Profiler.Tracebuf.Shared

type race = {
  race_kind : string; (* "write-write" | "read-write" | "atomic-conflict" *)
  a_loc : Bitc.Loc.t;
  a_tag : int; (* Shared.tag_* of the first site *)
  a_path : (string * Bitc.Loc.t) list; (* device call path (kernel first) *)
  b_loc : Bitc.Loc.t;
  b_tag : int;
  b_path : (string * Bitc.Loc.t) list;
  conflicts : int; (* distinct (cta, epoch, byte) cells in conflict *)
  sample_cta : int;
  sample_epoch : int;
  sample_addr : int; (* CTA-local byte address of one conflicting cell *)
}

type barrier_advice = {
  advice_loc : Bitc.Loc.t;
  advice_func : string;
  boundaries : int; (* dynamic boundary instances observed for the site *)
}

type result = {
  races : race list;
  redundant_barriers : barrier_advice list;
}

(* One recorded access to a byte: epoch, warp, tag and attribution. *)
type access = {
  acc_epoch : int;
  acc_warp : int;
  acc_tag : int;
  acc_loc : Bitc.Loc.t;
  acc_node : int;
}

let conflicting a b =
  if a.acc_warp = b.acc_warp then false
  else
    let writes t = t = Shared.tag_write in
    let atomic t = t = Shared.tag_atomic in
    if atomic a.acc_tag && atomic b.acc_tag then false
    else writes a.acc_tag || writes b.acc_tag || atomic a.acc_tag
         || atomic b.acc_tag

let race_kind a b =
  let t1, t2 = (a.acc_tag, b.acc_tag) in
  if t1 = Shared.tag_atomic || t2 = Shared.tag_atomic then "atomic-conflict"
  else if t1 = Shared.tag_write && t2 = Shared.tag_write then "write-write"
  else "read-write"

(* Canonical ordering of a site pair so (A, B) and (B, A) aggregate
   into one finding. *)
let pair_key a b =
  let ka = (a.acc_loc, a.acc_tag) and kb = (b.acc_loc, b.acc_tag) in
  let cmp =
    let c = Bitc.Loc.compare a.acc_loc b.acc_loc in
    if c <> 0 then c else compare a.acc_tag b.acc_tag
  in
  if cmp <= 0 then (ka, kb) else (kb, ka)

let of_instance (profile : Profiler.Profile.t)
    (instance : Profiler.Profile.instance) =
  let t = instance.shared in
  (* per (cta, byte) access history, deduplicated on
     (epoch, warp, tag, loc) *)
  let bytes : (int * int, access list ref) Hashtbl.t = Hashtbl.create 1024 in
  (* barrier boundary (cta, epoch-it-ends) -> manifest barrier id *)
  let boundaries : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Shared.iter t (fun i ->
      let cta = Shared.cta t i in
      let tag = Shared.tag t i in
      if tag = Shared.tag_barrier then
        Hashtbl.replace boundaries (cta, Shared.epoch t i) (Shared.bar_id t i)
      else begin
        let acc =
          {
            acc_epoch = Shared.epoch t i;
            acc_warp = Shared.warp t i;
            acc_tag = tag;
            acc_loc = Shared.loc t i;
            acc_node = Shared.node t i;
          }
        in
        let width = max 1 (Shared.bits t i / 8) in
        Shared.iter_addrs t i (fun addr ->
            for byte = addr to addr + width - 1 do
              let key = (cta, byte) in
              let cell =
                match Hashtbl.find_opt bytes key with
                | Some c -> c
                | None ->
                  let c = ref [] in
                  Hashtbl.add bytes key c;
                  c
              in
              let seen =
                List.exists
                  (fun o ->
                    o.acc_epoch = acc.acc_epoch && o.acc_warp = acc.acc_warp
                    && o.acc_tag = acc.acc_tag
                    && Bitc.Loc.equal o.acc_loc acc.acc_loc)
                  !cell
              in
              if not seen then cell := acc :: !cell
            done)
      end);
  (* aggregate same-epoch conflicts by site pair *)
  let agg :
      ( (Bitc.Loc.t * int) * (Bitc.Loc.t * int),
        race ref )
      Hashtbl.t =
    Hashtbl.create 64
  in
  (* boundaries that must stay: merging their two epochs would conflict *)
  let needed : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (cta, byte) cell ->
      let accs = !cell in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              if conflicting a b then begin
                if a.acc_epoch = b.acc_epoch then begin
                  let key = pair_key a b in
                  match Hashtbl.find_opt agg key with
                  | Some r -> r := { !r with conflicts = !r.conflicts + 1 }
                  | None ->
                    let first, second =
                      if fst key = (a.acc_loc, a.acc_tag) then (a, b) else (b, a)
                    in
                    Hashtbl.add agg key
                      (ref
                         {
                           race_kind = race_kind a b;
                           a_loc = first.acc_loc;
                           a_tag = first.acc_tag;
                           a_path =
                             Profiler.Profile.device_path profile instance
                               first.acc_node;
                           b_loc = second.acc_loc;
                           b_tag = second.acc_tag;
                           b_path =
                             Profiler.Profile.device_path profile instance
                               second.acc_node;
                           conflicts = 1;
                           sample_cta = cta;
                           sample_epoch = a.acc_epoch;
                           sample_addr = byte;
                         })
                end
                else begin
                  let lo = min a.acc_epoch b.acc_epoch
                  and hi = max a.acc_epoch b.acc_epoch in
                  if hi = lo + 1 then Hashtbl.replace needed (cta, lo) ()
                end
              end)
            rest;
          pairs rest
      in
      pairs accs)
    bytes;
  let races = Hashtbl.fold (fun _ r acc -> !r :: acc) agg [] in
  (* fold dynamic boundaries into per-site advice *)
  let site_stats : (int, int * bool) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (cta, epoch) bar_id ->
      let count, all_removable =
        Option.value (Hashtbl.find_opt site_stats bar_id) ~default:(0, true)
      in
      let removable = not (Hashtbl.mem needed (cta, epoch)) in
      Hashtbl.replace site_stats bar_id (count + 1, all_removable && removable))
    boundaries;
  let advice =
    Hashtbl.fold
      (fun bar_id (count, all_removable) acc ->
        if not all_removable then acc
        else
          let b = Passes.Manifest.barrier profile.manifest bar_id in
          { advice_loc = b.Passes.Manifest.bar_loc;
            advice_func = b.Passes.Manifest.bar_func;
            boundaries = count }
          :: acc)
      site_stats []
  in
  (races, advice)

(* Merge advice across instances: a site is redundant only if it is
   redundant in every instance where it appeared. *)
let of_profile (profile : Profiler.Profile.t) =
  let per_instance =
    List.map (of_instance profile) (Profiler.Profile.instances profile)
  in
  let race_tbl :
      (Bitc.Loc.t * int * Bitc.Loc.t * int, race) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun r ->
      let key = (r.a_loc, r.a_tag, r.b_loc, r.b_tag) in
      match Hashtbl.find_opt race_tbl key with
      | Some prev ->
        Hashtbl.replace race_tbl key
          { prev with conflicts = prev.conflicts + r.conflicts }
      | None -> Hashtbl.add race_tbl key r)
    (List.concat_map fst per_instance);
  let races = Hashtbl.fold (fun _ r acc -> r :: acc) race_tbl [] in
  (* all sites that produced advice, and all sites observed at all *)
  let advice_tbl : (Bitc.Loc.t * string, barrier_advice) Hashtbl.t =
    Hashtbl.create 16
  in
  let instances_with = Hashtbl.create 16 and instances_adviced = Hashtbl.create 16 in
  List.iteri
    (fun _idx (_, advice) ->
      List.iter
        (fun a ->
          let key = (a.advice_loc, a.advice_func) in
          Hashtbl.replace instances_adviced key
            (Option.value (Hashtbl.find_opt instances_adviced key) ~default:0 + 1);
          match Hashtbl.find_opt advice_tbl key with
          | Some prev ->
            Hashtbl.replace advice_tbl key
              { prev with boundaries = prev.boundaries + a.boundaries }
          | None -> Hashtbl.add advice_tbl key a)
        advice)
    per_instance;
  (* count the instances in which each site executed at least once: a
     site redundant in one launch but needed in another is not advice *)
  List.iter
    (fun (instance : Profiler.Profile.instance) ->
      let t = instance.shared in
      let seen = Hashtbl.create 8 in
      Shared.iter t (fun i ->
          if Shared.tag t i = Shared.tag_barrier then begin
            let b =
              Passes.Manifest.barrier profile.manifest (Shared.bar_id t i)
            in
            Hashtbl.replace seen
              (b.Passes.Manifest.bar_loc, b.Passes.Manifest.bar_func)
              ()
          end);
      Hashtbl.iter
        (fun key () ->
          Hashtbl.replace instances_with key
            (Option.value (Hashtbl.find_opt instances_with key) ~default:0 + 1))
        seen)
    (Profiler.Profile.instances profile);
  let redundant_barriers =
    Hashtbl.fold
      (fun key a acc ->
        let appeared =
          Option.value (Hashtbl.find_opt instances_with key) ~default:0
        in
        let adviced =
          Option.value (Hashtbl.find_opt instances_adviced key) ~default:0
        in
        if appeared > 0 && adviced = appeared then a :: acc else acc)
      advice_tbl []
    |> List.sort (fun a b -> Bitc.Loc.compare a.advice_loc b.advice_loc)
  in
  let races =
    List.sort
      (fun a b ->
        let c = Bitc.Loc.compare a.a_loc b.a_loc in
        if c <> 0 then c else Bitc.Loc.compare b.b_loc a.b_loc)
      races
  in
  { races; redundant_barriers }
