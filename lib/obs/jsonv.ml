(* A minimal JSON parser, used to *validate* the tool's own JSON output
   (Chrome trace export, machine-readable reports) in tests and the
   smoke alias — the emitting paths live elsewhere and must never be
   trusted to produce well-formed output unchecked.

   Accepts strict JSON (RFC 8259-ish): no comments, no trailing
   commas.  Numbers are parsed as floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int (* message, position *)

let bad pos msg = raise (Bad (msg, pos))

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> bad !pos (Printf.sprintf "expected %C, found %C" c c')
    | None -> bad !pos (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else bad !pos (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then bad !pos "truncated \\u escape";
    let h = String.sub s !pos 4 in
    (match int_of_string_opt ("0x" ^ h) with
    | Some _ -> ()
    | None -> bad !pos (Printf.sprintf "invalid \\u escape %S" h));
    pos := !pos + 4
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then bad !pos "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           parse_hex4 ();
           Buffer.add_char buf '?'
         | e -> bad !pos (Printf.sprintf "invalid escape \\%c" e));
        go ()
      end
      else if Char.code c < 0x20 then bad !pos "raw control character in string"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let consume p =
      while !pos < n && p s.[!pos] do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume (function '0' .. '9' -> true | _ -> false);
    if peek () = Some '.' then begin
      advance ();
      consume (function '0' .. '9' -> true | _ -> false)
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      consume (function '0' .. '9' -> true | _ -> false)
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> bad start (Printf.sprintf "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad !pos "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> bad !pos "expected ',' or '}' in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> bad !pos "expected ',' or ']' in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> bad !pos (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad !pos "trailing garbage after JSON value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad (msg, pos) -> Error (Printf.sprintf "at byte %d: %s" pos msg)

(* Field accessors for validation code. *)
let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None
