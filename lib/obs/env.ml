(* Lenient numeric environment-variable parsing.

   Configuration knobs read from the environment (POOL_DOMAINS,
   CUDAADVISOR_MAX_WARP_INSTRS, the serve daemon's sizing variables)
   must never be able to kill the process: a typo that aborts a one-shot
   CLI run is an annoyance, but the same typo aborting a long-lived
   `advisor serve` daemon takes every queued request down with it.
   Malformed values are reported once through the logger and replaced by
   the caller's default — consistently, for every variable. *)

(* [positive_int name ~default] reads [name] as a strictly positive
   integer.  Unset yields [default ()]; set-but-malformed (including
   zero and negatives) warns through {!Log} and also yields
   [default ()].  The default is a thunk so callers whose fallback is
   itself a computation (e.g. [Domain.recommended_domain_count]) only
   pay for it when needed. *)
let positive_int name ~default =
  match Sys.getenv_opt name with
  | None -> default ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None ->
      let d = default () in
      Log.warn "env" "ignoring %s=%S: not a positive integer; using default %d"
        name s d;
      d)
