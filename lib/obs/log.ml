(* Leveled structured logger.  Every layer of the pipeline routes its
   diagnostics here instead of bare [Printf] (or staying silent): the
   level is set from the [OBS_LOG] environment variable or the CLI's
   [--log], lines carry a relative timestamp, level and component, and
   per-level counters land in the metrics registry so a quiet run can
   still report how many warnings it swallowed.

   Writes serialize on a mutex (log lines are rare and must not
   interleave between domains). *)

type level = Debug | Info | Warn | Error | Quiet

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3 | Quiet -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | "quiet" | "none" -> Ok Quiet
  | other -> Error (Printf.sprintf "unknown log level %S" other)

let default_level () =
  match Sys.getenv_opt "OBS_LOG" with
  | None -> Warn
  | Some s -> (
    match level_of_string s with
    | Ok l -> l
    | Error _ ->
      Printf.eprintf "obs: ignoring invalid OBS_LOG=%S\n%!" s;
      Warn)

let current = Atomic.make (default_level ())

let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = level_rank l >= level_rank (Atomic.get current)

(* ----- output format ----- *)

(* Text (the default, human-oriented) or one JSON object per line for
   machine-parseable daemon logs; selected by OBS_LOG_FORMAT=json or
   [set_format]. *)
type format = Text | Json

let format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "json" -> Ok Json
  | "text" -> Ok Text
  | other -> Error (Printf.sprintf "unknown log format %S" other)

let default_format () =
  match Sys.getenv_opt "OBS_LOG_FORMAT" with
  | None -> Text
  | Some s -> (
    match format_of_string s with
    | Ok f -> f
    | Error _ ->
      Printf.eprintf "obs: ignoring invalid OBS_LOG_FORMAT=%S\n%!" s;
      Text)

let current_format = Atomic.make (default_format ())

let set_format f = Atomic.set current_format f
let format () = Atomic.get current_format

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One formatted line, without the trailing newline; pure so the
   formats are unit-testable without capturing stderr. *)
let render ~format ~t ~lvl ~component ~msg ~kv =
  match format with
  | Text ->
    let suffix =
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) kv)
    in
    Printf.sprintf "[%8.3fs] %-5s %s: %s%s" t (level_name lvl) component msg
      suffix
  | Json ->
    let buf = Buffer.create 128 in
    Printf.bprintf buf "{\"ts\":%.3f,\"level\":\"%s\",\"component\":\"%s\",\"msg\":\"%s\""
      t (level_name lvl) (json_escape component) (json_escape msg);
    List.iter
      (fun (k, v) ->
        Printf.bprintf buf ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
      kv;
    Buffer.add_char buf '}';
    Buffer.contents buf

let messages_debug = Metrics.counter "log.messages.debug"
let messages_info = Metrics.counter "log.messages.info"
let messages_warn = Metrics.counter "log.messages.warn"
let messages_error = Metrics.counter "log.messages.error"

let message_counter = function
  | Debug -> messages_debug
  | Info -> messages_info
  | Warn -> messages_warn
  | Error -> messages_error
  | Quiet -> messages_error (* unreachable: Quiet is never emitted *)

let out_mutex = Mutex.create ()

let emit ?(kv = []) lvl component msg =
  Metrics.incr (message_counter lvl);
  if enabled lvl then begin
    let t = float_of_int (Clock.elapsed_ns ()) /. 1e9 in
    let line =
      render ~format:(Atomic.get current_format) ~t ~lvl ~component ~msg ~kv
    in
    Mutex.protect out_mutex (fun () -> Printf.eprintf "%s\n%!" line)
  end

(* [warn "gpusim" "x = %d" 3] — the message is formatted eagerly (the
   call sites are all off the hot path) and dropped in [emit] when the
   level is filtered. *)
let logf lvl component fmt = Printf.ksprintf (emit lvl component) fmt
let debug component fmt = logf Debug component fmt
let info component fmt = logf Info component fmt
let warn component fmt = logf Warn component fmt
let error component fmt = logf Error component fmt

(* Key/value variants for structured daemon logs: the pairs render as
   [k=v] suffixes in text and as extra string fields in JSON. *)
let logf_kv lvl component ~kv fmt = Printf.ksprintf (emit ~kv lvl component) fmt
let debug_kv component ~kv fmt = logf_kv Debug component ~kv fmt
let info_kv component ~kv fmt = logf_kv Info component ~kv fmt
let warn_kv component ~kv fmt = logf_kv Warn component ~kv fmt
let error_kv component ~kv fmt = logf_kv Error component ~kv fmt
