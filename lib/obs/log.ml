(* Leveled structured logger.  Every layer of the pipeline routes its
   diagnostics here instead of bare [Printf] (or staying silent): the
   level is set from the [OBS_LOG] environment variable or the CLI's
   [--log], lines carry a relative timestamp, level and component, and
   per-level counters land in the metrics registry so a quiet run can
   still report how many warnings it swallowed.

   Writes serialize on a mutex (log lines are rare and must not
   interleave between domains). *)

type level = Debug | Info | Warn | Error | Quiet

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3 | Quiet -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | "quiet" | "none" -> Ok Quiet
  | other -> Error (Printf.sprintf "unknown log level %S" other)

let default_level () =
  match Sys.getenv_opt "OBS_LOG" with
  | None -> Warn
  | Some s -> (
    match level_of_string s with
    | Ok l -> l
    | Error _ ->
      Printf.eprintf "obs: ignoring invalid OBS_LOG=%S\n%!" s;
      Warn)

let current = Atomic.make (default_level ())

let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = level_rank l >= level_rank (Atomic.get current)

let messages_debug = Metrics.counter "log.messages.debug"
let messages_info = Metrics.counter "log.messages.info"
let messages_warn = Metrics.counter "log.messages.warn"
let messages_error = Metrics.counter "log.messages.error"

let message_counter = function
  | Debug -> messages_debug
  | Info -> messages_info
  | Warn -> messages_warn
  | Error -> messages_error
  | Quiet -> messages_error (* unreachable: Quiet is never emitted *)

let out_mutex = Mutex.create ()

let emit lvl component msg =
  Metrics.incr (message_counter lvl);
  if enabled lvl then begin
    let t = float_of_int (Clock.elapsed_ns ()) /. 1e9 in
    Mutex.protect out_mutex (fun () ->
        Printf.eprintf "[%8.3fs] %-5s %s: %s\n%!" t (level_name lvl) component msg)
  end

(* [warn "gpusim" "x = %d" 3] — the message is formatted eagerly (the
   call sites are all off the hot path) and dropped in [emit] when the
   level is filtered. *)
let logf lvl component fmt = Printf.ksprintf (emit lvl component) fmt
let debug component fmt = logf Debug component fmt
let info component fmt = logf Info component fmt
let warn component fmt = logf Warn component fmt
let error component fmt = logf Error component fmt
