(* Global metrics registry: counters, gauges and log-bucketed
   histograms, registered by name and snapshotted for `--metrics`
   dumps and the bench `--json` metrics section.

   Domain safety: instruments are interned under a mutex (registration
   is rare), and the instruments themselves update lock-free —
   counters and histogram cells are [Atomic.t], so [Core.Pool] workers
   report concurrently without coordination.  Gauges are last-write-
   wins by design.

   Histograms are log2-bucketed: bucket [b >= 1] holds values in
   [2^(b-1), 2^b - 1] and bucket 0 holds values <= 0, so 63 buckets
   cover the whole non-negative int range with ~2x resolution — enough
   for latency distributions without per-histogram configuration. *)

type counter = int Atomic.t

type gauge = float Atomic.t

let num_buckets = 63

type histogram = {
  buckets : int Atomic.t array; (* num_buckets cells *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t; (* monotonic max; meaningless when count = 0 *)
}

(* ----- bucket arithmetic (property-tested in test_obs.ml) ----- *)

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (num_buckets - 1) (bits v 0)
  end

(* Inclusive bounds of bucket [b]: [bucket_lo b <= v <= bucket_hi b]
   iff [bucket_index v = b]. *)
let bucket_lo b =
  if b <= 0 then min_int else 1 lsl (b - 1)

let bucket_hi b =
  if b <= 0 then 0
  else if b >= num_buckets - 1 then max_int
  else (1 lsl b) - 1

let bucket_label b =
  if b <= 0 then "le_0" else Printf.sprintf "le_%d" (bucket_hi b)

(* ----- the registry ----- *)

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram
  | Probe_i of (unit -> float)

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let kind_name = function
  | Counter_i _ -> "counter"
  | Gauge_i _ -> "gauge"
  | Histogram_i _ -> "histogram"
  | Probe_i _ -> "probe"

(* Intern [name]: return the existing instrument or create one with
   [make].  Re-registering a name as a different kind is a bug. *)
let intern name make extract =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some inst -> (
        match extract inst with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_name inst)))
      | None ->
        let inst = make () in
        Hashtbl.replace registry name inst;
        match extract inst with Some v -> v | None -> assert false)

let counter name =
  intern name
    (fun () -> Counter_i (Atomic.make 0))
    (function Counter_i c -> Some c | _ -> None)

let add c n = ignore (Atomic.fetch_and_add c n)
let incr c = add c 1
let counter_value c = Atomic.get c

let gauge name =
  intern name
    (fun () -> Gauge_i (Atomic.make 0.))
    (function Gauge_i g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram name =
  intern name
    (fun () ->
      Histogram_i
        {
          buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_max = Atomic.make min_int;
        })
    (function Histogram_i h -> Some h | _ -> None)

let observe h v =
  Atomic.incr h.buckets.(bucket_index v);
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v);
  let rec bump () =
    let m = Atomic.get h.h_max in
    if v <= m then () else if Atomic.compare_and_set h.h_max m v then () else bump ()
  in
  bump ()

(* A probe is an externally-owned statistic polled at snapshot time:
   pre-existing counters (compile memo table, decode cache) register a
   reader instead of migrating their storage. *)
let register_probe name f =
  Mutex.protect lock (fun () -> Hashtbl.replace registry name (Probe_i f))

(* ----- snapshots ----- *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int; (* 0 when count = 0 *)
  mean : float;
  (* (bucket index, count) for every non-empty bucket, ascending *)
  filled : (int * int) list;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot

let snapshot_histogram h =
  let count = Atomic.get h.h_count in
  let sum = Atomic.get h.h_sum in
  let filled = ref [] in
  for b = num_buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(b) in
    if c > 0 then filled := (b, c) :: !filled
  done;
  {
    count;
    sum;
    max_value = (if count = 0 then 0 else Atomic.get h.h_max);
    mean = (if count = 0 then 0. else float_of_int sum /. float_of_int count);
    filled = !filled;
  }

(* Every registered metric with its current value, sorted by name. *)
let snapshot () =
  let items =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) registry [])
  in
  items
  |> List.map (fun (name, inst) ->
         let v =
           match inst with
           | Counter_i c -> Counter (Atomic.get c)
           | Gauge_i g -> Gauge (Atomic.get g)
           | Histogram_i h -> Histogram (snapshot_histogram h)
           | Probe_i f -> Gauge (f ())
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ----- snapshot merging (fleet aggregation) ----- *)

(* Log2 buckets need no per-histogram configuration, so histograms from
   different processes merge bucket-wise; counts and sums add, the max
   is the max of maxes.  Property-tested in test_obs.ml: merge is
   associative and commutative, and merging equals snapshotting the
   concatenated observations. *)
let merge_histogram_snapshots a b =
  let rec merge_filled xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (bx, cx) :: xt, (by, cy) :: yt ->
      if bx < by then (bx, cx) :: merge_filled xt ys
      else if by < bx then (by, cy) :: merge_filled xs yt
      else (bx, cx + cy) :: merge_filled xt yt
  in
  let count = a.count + b.count in
  let sum = a.sum + b.sum in
  {
    count;
    sum;
    max_value = max a.max_value b.max_value;
    mean = (if count = 0 then 0. else float_of_int sum /. float_of_int count);
    filled = merge_filled a.filled b.filled;
  }

(* Counters sum, gauges are last-write-wins (the later snapshot in
   argument order), histograms add bucket-wise.  A name registered as
   different kinds in different processes is a bug; the later value
   wins rather than aborting a supervisor over one bad shard. *)
let merge_values a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Histogram x, Histogram y -> Histogram (merge_histogram_snapshots x y)
  | _, y -> y

(* Merge snapshots left to right into one, sorted by name. *)
let merge_snapshots snaps =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt tbl name with
          | None -> Hashtbl.replace tbl name v
          | Some prev -> Hashtbl.replace tbl name (merge_values prev v))
        snap)
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Upper-bound percentile estimate from the log2 buckets: the value is
   the inclusive upper bound of the smallest bucket whose cumulative
   count reaches q of the total, clamped to the observed max.  Monotone
   in q by construction (the cumulative threshold only grows), with at
   most 2x overestimate from the bucket width. *)
let percentile h q =
  if h.count = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let need = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
    let rec find cum = function
      | [] -> h.max_value
      | (b, c) :: rest ->
        let cum = cum + c in
        if cum >= need then min (bucket_hi b) h.max_value else find cum rest
    in
    find 0 h.filled
  end

(* ----- Prometheus text exposition (version 0.0.4) ----- *)

(* Metric names sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
   become underscore-separated (serve.cache.hits -> serve_cache_hits).
   Histograms render as cumulative le-buckets with _sum/_count; probes
   render as gauges.  Line-by-line parseability is asserted in CI. *)
let prometheus_name s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9' && i > 0)
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prometheus_float f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus ?snap () =
  let snap = match snap with Some s -> s | None -> snapshot () in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = prometheus_name name in
      match v with
      | Counter i ->
        Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n i
      | Gauge f ->
        Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n (prometheus_float f)
      | Histogram h ->
        Printf.bprintf buf "# TYPE %s histogram\n" n;
        let cum = ref 0 in
        List.iter
          (fun (b, c) ->
            cum := !cum + c;
            (* the top bucket's bound is max_int; +Inf below covers it *)
            if b < num_buckets - 1 then
              Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" n (bucket_hi b)
                !cum)
          h.filled;
        Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" n h.count;
        Printf.bprintf buf "%s_sum %d\n%s_count %d\n" n h.sum n h.count)
    snap;
  Buffer.contents buf

(* Human-readable dump for `--metrics`. *)
let to_text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== metrics ==\n";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter i -> Printf.bprintf buf "%-36s %d\n" name i
      | Gauge f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.bprintf buf "%-36s %.0f\n" name f
        else Printf.bprintf buf "%-36s %g\n" name f
      | Histogram h ->
        Printf.bprintf buf "%-36s count=%d sum=%d max=%d mean=%.1f\n" name h.count
          h.sum h.max_value h.mean;
        List.iter
          (fun (b, c) -> Printf.bprintf buf "  %-34s %d\n" (bucket_label b) c)
          h.filled)
    (snapshot ());
  Buffer.contents buf
