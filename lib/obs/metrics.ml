(* Global metrics registry: counters, gauges and log-bucketed
   histograms, registered by name and snapshotted for `--metrics`
   dumps and the bench `--json` metrics section.

   Domain safety: instruments are interned under a mutex (registration
   is rare), and the instruments themselves update lock-free —
   counters and histogram cells are [Atomic.t], so [Core.Pool] workers
   report concurrently without coordination.  Gauges are last-write-
   wins by design.

   Histograms are log2-bucketed: bucket [b >= 1] holds values in
   [2^(b-1), 2^b - 1] and bucket 0 holds values <= 0, so 63 buckets
   cover the whole non-negative int range with ~2x resolution — enough
   for latency distributions without per-histogram configuration. *)

type counter = int Atomic.t

type gauge = float Atomic.t

let num_buckets = 63

type histogram = {
  buckets : int Atomic.t array; (* num_buckets cells *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t; (* monotonic max; meaningless when count = 0 *)
}

(* ----- bucket arithmetic (property-tested in test_obs.ml) ----- *)

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (num_buckets - 1) (bits v 0)
  end

(* Inclusive bounds of bucket [b]: [bucket_lo b <= v <= bucket_hi b]
   iff [bucket_index v = b]. *)
let bucket_lo b =
  if b <= 0 then min_int else 1 lsl (b - 1)

let bucket_hi b =
  if b <= 0 then 0
  else if b >= num_buckets - 1 then max_int
  else (1 lsl b) - 1

let bucket_label b =
  if b <= 0 then "le_0" else Printf.sprintf "le_%d" (bucket_hi b)

(* ----- the registry ----- *)

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram
  | Probe_i of (unit -> float)

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let kind_name = function
  | Counter_i _ -> "counter"
  | Gauge_i _ -> "gauge"
  | Histogram_i _ -> "histogram"
  | Probe_i _ -> "probe"

(* Intern [name]: return the existing instrument or create one with
   [make].  Re-registering a name as a different kind is a bug. *)
let intern name make extract =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some inst -> (
        match extract inst with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_name inst)))
      | None ->
        let inst = make () in
        Hashtbl.replace registry name inst;
        match extract inst with Some v -> v | None -> assert false)

let counter name =
  intern name
    (fun () -> Counter_i (Atomic.make 0))
    (function Counter_i c -> Some c | _ -> None)

let add c n = ignore (Atomic.fetch_and_add c n)
let incr c = add c 1
let counter_value c = Atomic.get c

let gauge name =
  intern name
    (fun () -> Gauge_i (Atomic.make 0.))
    (function Gauge_i g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram name =
  intern name
    (fun () ->
      Histogram_i
        {
          buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_max = Atomic.make min_int;
        })
    (function Histogram_i h -> Some h | _ -> None)

let observe h v =
  Atomic.incr h.buckets.(bucket_index v);
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v);
  let rec bump () =
    let m = Atomic.get h.h_max in
    if v <= m then () else if Atomic.compare_and_set h.h_max m v then () else bump ()
  in
  bump ()

(* A probe is an externally-owned statistic polled at snapshot time:
   pre-existing counters (compile memo table, decode cache) register a
   reader instead of migrating their storage. *)
let register_probe name f =
  Mutex.protect lock (fun () -> Hashtbl.replace registry name (Probe_i f))

(* ----- snapshots ----- *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int; (* 0 when count = 0 *)
  mean : float;
  (* (bucket index, count) for every non-empty bucket, ascending *)
  filled : (int * int) list;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot

let snapshot_histogram h =
  let count = Atomic.get h.h_count in
  let sum = Atomic.get h.h_sum in
  let filled = ref [] in
  for b = num_buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(b) in
    if c > 0 then filled := (b, c) :: !filled
  done;
  {
    count;
    sum;
    max_value = (if count = 0 then 0 else Atomic.get h.h_max);
    mean = (if count = 0 then 0. else float_of_int sum /. float_of_int count);
    filled = !filled;
  }

(* Every registered metric with its current value, sorted by name. *)
let snapshot () =
  let items =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) registry [])
  in
  items
  |> List.map (fun (name, inst) ->
         let v =
           match inst with
           | Counter_i c -> Counter (Atomic.get c)
           | Gauge_i g -> Gauge (Atomic.get g)
           | Histogram_i h -> Histogram (snapshot_histogram h)
           | Probe_i f -> Gauge (f ())
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Human-readable dump for `--metrics`. *)
let to_text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== metrics ==\n";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter i -> Printf.bprintf buf "%-36s %d\n" name i
      | Gauge f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.bprintf buf "%-36s %.0f\n" name f
        else Printf.bprintf buf "%-36s %g\n" name f
      | Histogram h ->
        Printf.bprintf buf "%-36s count=%d sum=%d max=%d mean=%.1f\n" name h.count
          h.sum h.max_value h.mean;
        List.iter
          (fun (b, c) -> Printf.bprintf buf "  %-34s %d\n" (bucket_label b) c)
          h.filled)
    (snapshot ());
  Buffer.contents buf
