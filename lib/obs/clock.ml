(* Monotonic nanosecond clock for spans and latency metrics.

   The stdlib exposes no monotonic clock, so this wraps
   [Unix.gettimeofday] and clamps it against a process-global
   high-water mark: a wall-clock step backwards (NTP, VM migration)
   yields repeated timestamps instead of negative span durations.
   The clamp is an atomic max, so timestamps are monotonic across
   domains too — an event recorded after another (in real time, on any
   domain) never carries a smaller stamp. *)

let high_water = Atomic.make 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let hw = Atomic.get high_water in
    if t <= hw then hw
    else if Atomic.compare_and_set high_water hw t then t
    else clamp ()
  in
  clamp ()

(* Process start, for human-readable relative timestamps in log lines. *)
let start_ns = now_ns ()

let elapsed_ns () = now_ns () - start_ns
