(* Merge per-process span-record files (written by [Trace.open_dir_sink]
   in every process of a serve fleet) into one Chrome trace-event JSON.

   Each input line is one completed span stamped with a trace id, its
   parent span's name, the OS pid and a logical process label
   ("supervisor", "shard-0", "shard-0/worker").  The merged view groups
   spans by (pid, label) — one Chrome "process" per role, named with
   "ph":"M" metadata — so about:tracing shows one timeline per
   supervisor/shard/worker with the request linked across them by
   trace_id in the span args.  Malformed lines are counted and skipped,
   never fatal: a shard killed mid-write must not sink the merge. *)

type record = {
  r_trace : string;
  r_parent : string;
  r_name : string;
  r_cat : string;
  r_ts : int; (* ns *)
  r_dur : int; (* ns *)
  r_pid : int;
  r_dom : int;
  r_proc : string;
}

type merged = {
  json : string;
  files : int;
  records : int;
  skipped : int; (* malformed or filtered-out lines *)
  procs : string list; (* distinct logical process labels, sorted *)
}

let record_of_line line =
  match Jsonv.parse line with
  | Error _ -> None
  | Ok v ->
    let str k = Option.bind (Jsonv.member k v) Jsonv.to_string_opt in
    let num k =
      match Option.bind (Jsonv.member k v) Jsonv.to_float_opt with
      | Some f -> Some (int_of_float f)
      | None -> None
    in
    (match (str "trace", str "name", num "ts", num "dur", num "pid") with
    | Some r_trace, Some r_name, Some r_ts, Some r_dur, Some r_pid ->
      Some
        {
          r_trace;
          r_parent = Option.value (str "parent") ~default:"";
          r_name;
          r_cat = Option.value (str "cat") ~default:"";
          r_ts;
          r_dur;
          r_pid;
          r_dom = Option.value (num "dom") ~default:0;
          r_proc =
            (match str "proc" with
            | Some p when p <> "" -> p
            | _ -> Printf.sprintf "pid-%d" r_pid);
        }
    | _ -> None)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let records = ref [] in
      let skipped = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match record_of_line line with
             | Some r -> records := r :: !records
             | None -> incr skipped
         done
       with End_of_file -> ());
      (List.rev !records, !skipped))

let span_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ndjson")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

(* [merge ~dir ()] joins every spans-*.ndjson under [dir]; pass
   [~trace_id] to keep only one request's spans. *)
let merge ?trace_id ~dir () =
  let files = span_files dir in
  let all, skipped_parse =
    List.fold_left
      (fun (acc, sk) f ->
        let rs, s = read_file f in
        (acc @ rs, sk + s))
      ([], 0) files
  in
  let keep, filtered =
    match trace_id with
    | None -> (all, 0)
    | Some id ->
      let keep = List.filter (fun r -> r.r_trace = id) all in
      (keep, List.length all - List.length keep)
  in
  let keep = List.stable_sort (fun a b -> compare a.r_ts b.r_ts) keep in
  (* One Chrome pid per distinct (os pid, logical label); labels sort
     first so supervisor/shard-0/shard-0-worker group predictably. *)
  let groups = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = (r.r_proc, r.r_pid) in
      if not (Hashtbl.mem groups k) then Hashtbl.add groups k ())
    keep;
  let ordered =
    Hashtbl.fold (fun k () acc -> k :: acc) groups [] |> List.sort compare
  in
  let chrome_pid = Hashtbl.create 8 in
  List.iteri (fun i k -> Hashtbl.replace chrome_pid k (i + 1)) ordered;
  let esc = Trace.escape in
  let out = Buffer.create 65536 in
  Buffer.add_char out '[';
  let first = ref true in
  let emit f =
    if !first then first := false else Buffer.add_string out ",\n";
    f ()
  in
  List.iter
    (fun ((proc, ospid) as k) ->
      let cp = Hashtbl.find chrome_pid k in
      emit (fun () ->
          Printf.bprintf out
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
            cp (esc proc));
      emit (fun () ->
          Printf.bprintf out
            "{\"name\":\"process_labels\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"labels\":\"os pid %d\"}}"
            cp ospid);
      let doms = Hashtbl.create 4 in
      List.iter
        (fun r ->
          if (r.r_proc, r.r_pid) = k && not (Hashtbl.mem doms r.r_dom) then
            Hashtbl.replace doms r.r_dom ())
        keep;
      Hashtbl.fold (fun d () acc -> d :: acc) doms []
      |> List.sort compare
      |> List.iter (fun d ->
             emit (fun () ->
                 Printf.bprintf out
                   "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
                   cp d d)))
    ordered;
  List.iter
    (fun r ->
      let cp = Hashtbl.find chrome_pid (r.r_proc, r.r_pid) in
      emit (fun () ->
          Printf.bprintf out
            "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
            (esc r.r_name) cp r.r_dom
            (float_of_int r.r_ts /. 1e3)
            (float_of_int r.r_dur /. 1e3);
          if r.r_cat <> "" then
            Printf.bprintf out ",\"cat\":\"%s\"" (esc r.r_cat);
          Printf.bprintf out ",\"args\":{\"trace_id\":\"%s\"" (esc r.r_trace);
          if r.r_parent <> "" then
            Printf.bprintf out ",\"parent\":\"%s\"" (esc r.r_parent);
          Buffer.add_string out "}}"))
    keep;
  Buffer.add_string out "]\n";
  {
    json = Buffer.contents out;
    files = List.length files;
    records = List.length keep;
    skipped = skipped_parse + filtered;
    procs = List.map fst ordered |> List.sort_uniq String.compare;
  }
