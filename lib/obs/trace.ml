(* Nestable spans and counter samples recorded into per-domain buffers,
   exported as Chrome trace-event JSON (loadable in chrome://tracing or
   https://ui.perfetto.dev) or as a pretty text tree.

   Tracing is globally off by default and every recording entry point
   first reads one atomic flag, so the disabled path costs a load and a
   branch — nothing is allocated and no clock is read.  Hot loops that
   cannot afford even that (the simulator event loop) hoist the flag
   read out of the loop.

   Each domain appends to its own buffer (struct-of-arrays, grown
   geometrically up to [set_capacity]), so recording never takes a
   lock; the buffer is registered in a global list on the domain's
   first event, and the exporter snapshots that list under a mutex.
   Span begin/end pairs are produced only by [with_span], whose
   [Fun.protect] guarantees every recorded "B" event gets its "E" even
   on exceptions — matched pairs are structural, not best-effort.  When
   a buffer hits capacity new spans are dropped (and counted), but
   close events of already-recorded spans are still appended so the
   B/E matching survives truncation. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* ----- logical process / domain labels ----- *)

(* A serve fleet is several OS processes (supervisor, shards) each with
   several domains (intake, workers).  Span records written to the sink
   below carry a logical process label so a merged trace can group work
   by role rather than by bare pid.  The process-wide label is set once
   at daemon startup ([set_proc_label]); a long-lived worker domain can
   override it for itself ([set_domain_label]).  The default is
   computed lazily from the pid because shard processes fork after this
   module is initialised. *)
let proc_label = Atomic.make ""
let set_proc_label s = Atomic.set proc_label s

let domain_label_key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_domain_label s = Domain.DLS.set domain_label_key (Some s)

let effective_label () =
  match Domain.DLS.get domain_label_key with
  | Some s -> s
  | None -> (
    match Atomic.get proc_label with
    | "" -> Printf.sprintf "pid-%d" (Unix.getpid ())
    | s -> s)

(* ----- distributed trace context ----- *)

(* A per-domain trace context carries the request's [trace_id] and the
   name of the innermost open span (the parent of the next span).  It
   is installed by [with_context] around request handling and read by
   [with_span] to emit one flat span record per completed span into the
   sink.  Contexts only matter when a sink is installed, so the common
   disabled path stays two atomic loads. *)
type ctx = { trace_id : string; parent : string }

let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_trace_id () =
  match Domain.DLS.get ctx_key with Some c -> Some c.trace_id | None -> None

let current_context () = Domain.DLS.get ctx_key
let set_context c = Domain.DLS.set ctx_key c

(* One completed span, flattened for cross-process merging: the
   Chrome-style B/E pairing is an in-process convenience; processes
   exchange (trace, parent, name, start, duration) records instead. *)
type span_record = {
  sr_trace : string;
  sr_parent : string; (* "" at the root of this process's subtree *)
  sr_name : string;
  sr_cat : string;
  sr_start_ns : int;
  sr_dur_ns : int;
  sr_pid : int;
  sr_dom : int;
  sr_proc : string; (* logical process label, e.g. "shard-0/worker" *)
}

let sink : (span_record -> unit) option Atomic.t = Atomic.make None

let set_sink f = Atomic.set sink (Some f)
let clear_sink () = Atomic.set sink None
let sink_active () = Atomic.get sink <> None

(* Emit one span record directly (used by the single-domain fleet
   supervisor, which measures spans by hand rather than nesting
   [with_span]).  A no-op without a sink. *)
let record_span ~trace_id ?(parent = "") ?(cat = "") ~name ~start_ns ~dur_ns ()
    =
  match Atomic.get sink with
  | None -> ()
  | Some f ->
    f
      {
        sr_trace = trace_id;
        sr_parent = parent;
        sr_name = name;
        sr_cat = cat;
        sr_start_ns = start_ns;
        sr_dur_ns = dur_ns;
        sr_pid = Unix.getpid ();
        sr_dom = (Domain.self () :> int);
        sr_proc = effective_label ();
      }

(* Run [f] with [trace_id] installed as this domain's trace context;
   spans recorded inside land in the sink stamped with the id.
   [parent] names the caller's span in another process (from the
   request envelope's [parent_span]) so merged traces link across the
   process boundary. *)
let with_context ~trace_id ?(parent = "") f =
  let old = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (Some { trace_id; parent });
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key old) f

(* Event kinds, Chrome "ph" phases: B(egin), E(nd), C(ounter),
   I(nstant). *)
type kind = Begin | End | Counter | Instant

type buf = {
  dom : int;
  mutable kinds : kind array;
  mutable names : string array;
  mutable cats : string array;
  mutable ts : int array; (* ns *)
  mutable values : float array; (* counter payloads *)
  mutable n : int;
  mutable dropped : int;
}

(* Hard cap on events per domain buffer; beyond it spans are dropped
   (counted in [dropped]) rather than growing without bound. *)
let capacity = Atomic.make 1_000_000
let set_capacity c = Atomic.set capacity (max 1024 c)

let buffers : buf list ref = ref []
let buffers_lock = Mutex.create ()

let new_buf () =
  let b =
    {
      dom = (Domain.self () :> int);
      kinds = Array.make 1024 Instant;
      names = Array.make 1024 "";
      cats = Array.make 1024 "";
      ts = Array.make 1024 0;
      values = Array.make 1024 0.;
      n = 0;
      dropped = 0;
    }
  in
  Mutex.protect buffers_lock (fun () -> buffers := b :: !buffers);
  b

let key : buf Domain.DLS.key = Domain.DLS.new_key new_buf

let my_buf () = Domain.DLS.get key

let grow b =
  let cap = Array.length b.kinds in
  let cap' = cap * 2 in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  b.kinds <- extend b.kinds Instant;
  b.names <- extend b.names "";
  b.cats <- extend b.cats "";
  b.ts <- extend b.ts 0;
  b.values <- extend b.values 0.

(* Append one event; [force] bypasses the capacity check (used for the
   "E" of an already-recorded "B", bounded by the open-span depth). *)
let append b ~force kind name cat ts value =
  if (not force) && b.n >= Atomic.get capacity then begin
    b.dropped <- b.dropped + 1;
    false
  end
  else begin
    if b.n >= Array.length b.kinds then grow b;
    let i = b.n in
    b.kinds.(i) <- kind;
    b.names.(i) <- name;
    b.cats.(i) <- cat;
    b.ts.(i) <- ts;
    b.values.(i) <- value;
    b.n <- i + 1;
    true
  end

(* ----- recording API ----- *)

(* [with_span "compile" f] brackets [f] with a B/E pair on the calling
   domain's buffer; a no-op (two atomic loads) when both tracing and
   the span sink are off.  With a sink and a trace context installed,
   the completed span is additionally emitted as a flat record with the
   enclosing span as its parent. *)
let with_span ?(cat = "") name f =
  let enabled = Atomic.get enabled_flag in
  let ctx =
    match Atomic.get sink with None -> None | Some _ -> Domain.DLS.get ctx_key
  in
  if (not enabled) && ctx = None then f ()
  else begin
    let t0 = Clock.now_ns () in
    let b = if enabled then Some (my_buf ()) else None in
    let recorded =
      match b with
      | Some b -> append b ~force:false Begin name cat t0 0.
      | None -> false
    in
    (* Children opened inside [f] see this span as their parent. *)
    (match ctx with
    | Some c -> Domain.DLS.set ctx_key (Some { c with parent = name })
    | None -> ());
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        (match b with
        | Some b when recorded -> ignore (append b ~force:true End name cat t1 0.)
        | _ -> ());
        match ctx with
        | Some c ->
          Domain.DLS.set ctx_key ctx;
          record_span ~trace_id:c.trace_id ~parent:c.parent ~cat ~name
            ~start_ns:t0 ~dur_ns:(t1 - t0) ()
        | None -> ())
      f
  end

(* Counter sample: one point on a Chrome counter track ("C" event). *)
let counter ?(cat = "") name v =
  if Atomic.get enabled_flag then
    ignore (append (my_buf ()) ~force:false Counter name cat (Clock.now_ns ()) v)

let instant ?(cat = "") name =
  if Atomic.get enabled_flag then
    ignore (append (my_buf ()) ~force:false Instant name cat (Clock.now_ns ()) 0.)

(* Drop every recorded event (buffers stay registered). *)
let clear () =
  Mutex.protect buffers_lock (fun () ->
      List.iter
        (fun b ->
          b.n <- 0;
          b.dropped <- 0)
        !buffers)

let event_count () =
  Mutex.protect buffers_lock (fun () ->
      List.fold_left (fun acc b -> acc + b.n) 0 !buffers)

let dropped_count () =
  Mutex.protect buffers_lock (fun () ->
      List.fold_left (fun acc b -> acc + b.dropped) 0 !buffers)

(* ----- Chrome trace-event export ----- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ----- NDJSON span-record sink (`advisor serve --trace-dir`) ----- *)

(* Each process of a fleet appends its span records to its own
   [spans-<pid>.ndjson] under a shared directory; `advisor trace-merge`
   joins them afterwards.  One line per record, flushed immediately so
   records survive a shard being killed; writes serialize on a mutex
   (a request emits a handful of spans, each tens of bytes). *)
let dir_sink_mutex = Mutex.create ()
let dir_sink_oc : out_channel option ref = ref None

let span_record_to_json r =
  Printf.sprintf
    "{\"trace\":\"%s\",\"parent\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"dom\":%d,\"proc\":\"%s\"}"
    (escape r.sr_trace) (escape r.sr_parent) (escape r.sr_name)
    (escape r.sr_cat) r.sr_start_ns r.sr_dur_ns r.sr_pid r.sr_dom
    (escape r.sr_proc)

let open_dir_sink dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file =
    Filename.concat dir (Printf.sprintf "spans-%d.ndjson" (Unix.getpid ()))
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  Mutex.protect dir_sink_mutex (fun () -> dir_sink_oc := Some oc);
  set_sink (fun r ->
      Mutex.protect dir_sink_mutex (fun () ->
          match !dir_sink_oc with
          | Some oc ->
            output_string oc (span_record_to_json r);
            output_char oc '\n';
            flush oc
          | None -> ()))

let close_dir_sink () =
  clear_sink ();
  Mutex.protect dir_sink_mutex (fun () ->
      match !dir_sink_oc with
      | Some oc ->
        dir_sink_oc := None;
        close_out_noerr oc
      | None -> ())

let write_event out ~pid b i =
  let ph =
    match b.kinds.(i) with
    | Begin -> "B"
    | End -> "E"
    | Counter -> "C"
    | Instant -> "i"
  in
  (* Chrome wants microseconds; keep ns resolution as fractional us *)
  let ts_us = float_of_int b.ts.(i) /. 1e3 in
  Printf.bprintf out "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
    (escape b.names.(i)) ph pid b.dom ts_us;
  if b.cats.(i) <> "" then Printf.bprintf out ",\"cat\":\"%s\"" (escape b.cats.(i));
  (match b.kinds.(i) with
  | Counter -> Printf.bprintf out ",\"args\":{\"value\":%.6g}" b.values.(i)
  | Instant -> Buffer.add_string out ",\"s\":\"t\""
  | Begin | End -> ());
  Buffer.add_char out '}'

(* The whole recorded trace as a Chrome trace-event JSON array.  Spans
   still open at export time are closed with a synthetic "E" at the
   current clock so the output always has matched B/E pairs. *)
let export_chrome () =
  let bufs = Mutex.protect buffers_lock (fun () -> !buffers) in
  let bufs = List.sort (fun a b -> compare a.dom b.dom) bufs in
  let now = Clock.now_ns () in
  let pid = Unix.getpid () in
  let out = Buffer.create 65536 in
  Buffer.add_char out '[';
  let first = ref true in
  let emit f =
    if !first then first := false else Buffer.add_string out ",\n";
    f ()
  in
  (* Name metadata ("ph":"M") so about:tracing shows the process role
     and domain numbers instead of bare ids. *)
  emit (fun () ->
      Printf.bprintf out
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
        pid (escape (effective_label ())));
  List.iter
    (fun b ->
      emit (fun () ->
          Printf.bprintf out
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
            pid b.dom b.dom);
      let open_spans = ref [] in
      for i = 0 to b.n - 1 do
        (match b.kinds.(i) with
        | Begin -> open_spans := (b.names.(i), b.cats.(i)) :: !open_spans
        | End -> (
          match !open_spans with _ :: rest -> open_spans := rest | [] -> ())
        | Counter | Instant -> ());
        emit (fun () -> write_event out ~pid b i)
      done;
      (* close still-open spans, innermost first *)
      List.iter
        (fun (name, cat) ->
          emit (fun () ->
              let ts_us = float_of_int now /. 1e3 in
              Printf.bprintf out
                "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f%s}"
                (escape name) pid b.dom ts_us
                (if cat = "" then "" else Printf.sprintf ",\"cat\":\"%s\"" (escape cat))))
        !open_spans)
    bufs;
  Buffer.add_string out "]\n";
  Buffer.contents out

let export_chrome_to_file file =
  let oc = open_out file in
  output_string oc (export_chrome ());
  close_out oc

(* ----- pretty text tree ----- *)

let pp_duration ns =
  let f = float_of_int ns in
  if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.1fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fus" (f /. 1e3)
  else Printf.sprintf "%dns" ns

(* Per-domain span tree with durations; counters and instants are shown
   inline at their nesting depth. *)
let to_text () =
  let bufs = Mutex.protect buffers_lock (fun () -> !buffers) in
  let bufs = List.sort (fun a b -> compare a.dom b.dom) bufs in
  let out = Buffer.create 4096 in
  List.iter
    (fun b ->
      if b.n > 0 then begin
        Printf.bprintf out "domain %d (%d events%s)\n" b.dom b.n
          (if b.dropped > 0 then Printf.sprintf ", %d dropped" b.dropped else "");
        (* stack of (name, begin ts, begin index) *)
        let stack = ref [] in
        let indent () = String.make (2 * (1 + List.length !stack)) ' ' in
        for i = 0 to b.n - 1 do
          match b.kinds.(i) with
          | Begin -> stack := (b.names.(i), b.ts.(i)) :: !stack
          | End -> (
            match !stack with
            | (name, t0) :: rest ->
              stack := rest;
              Printf.bprintf out "%s%-40s %s\n" (indent ()) name
                (pp_duration (b.ts.(i) - t0))
            | [] -> ())
          | Counter ->
            Printf.bprintf out "%s%s = %.6g\n" (indent ()) b.names.(i) b.values.(i)
          | Instant -> Printf.bprintf out "%s@ %s\n" (indent ()) b.names.(i)
        done;
        List.iter
          (fun (name, _) -> Printf.bprintf out "  %s (still open)\n" name)
          !stack
      end)
    bufs;
  Buffer.contents out
