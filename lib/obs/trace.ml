(* Nestable spans and counter samples recorded into per-domain buffers,
   exported as Chrome trace-event JSON (loadable in chrome://tracing or
   https://ui.perfetto.dev) or as a pretty text tree.

   Tracing is globally off by default and every recording entry point
   first reads one atomic flag, so the disabled path costs a load and a
   branch — nothing is allocated and no clock is read.  Hot loops that
   cannot afford even that (the simulator event loop) hoist the flag
   read out of the loop.

   Each domain appends to its own buffer (struct-of-arrays, grown
   geometrically up to [set_capacity]), so recording never takes a
   lock; the buffer is registered in a global list on the domain's
   first event, and the exporter snapshots that list under a mutex.
   Span begin/end pairs are produced only by [with_span], whose
   [Fun.protect] guarantees every recorded "B" event gets its "E" even
   on exceptions — matched pairs are structural, not best-effort.  When
   a buffer hits capacity new spans are dropped (and counted), but
   close events of already-recorded spans are still appended so the
   B/E matching survives truncation. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* Event kinds, Chrome "ph" phases: B(egin), E(nd), C(ounter),
   I(nstant). *)
type kind = Begin | End | Counter | Instant

type buf = {
  dom : int;
  mutable kinds : kind array;
  mutable names : string array;
  mutable cats : string array;
  mutable ts : int array; (* ns *)
  mutable values : float array; (* counter payloads *)
  mutable n : int;
  mutable dropped : int;
}

(* Hard cap on events per domain buffer; beyond it spans are dropped
   (counted in [dropped]) rather than growing without bound. *)
let capacity = Atomic.make 1_000_000
let set_capacity c = Atomic.set capacity (max 1024 c)

let buffers : buf list ref = ref []
let buffers_lock = Mutex.create ()

let new_buf () =
  let b =
    {
      dom = (Domain.self () :> int);
      kinds = Array.make 1024 Instant;
      names = Array.make 1024 "";
      cats = Array.make 1024 "";
      ts = Array.make 1024 0;
      values = Array.make 1024 0.;
      n = 0;
      dropped = 0;
    }
  in
  Mutex.protect buffers_lock (fun () -> buffers := b :: !buffers);
  b

let key : buf Domain.DLS.key = Domain.DLS.new_key new_buf

let my_buf () = Domain.DLS.get key

let grow b =
  let cap = Array.length b.kinds in
  let cap' = cap * 2 in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  b.kinds <- extend b.kinds Instant;
  b.names <- extend b.names "";
  b.cats <- extend b.cats "";
  b.ts <- extend b.ts 0;
  b.values <- extend b.values 0.

(* Append one event; [force] bypasses the capacity check (used for the
   "E" of an already-recorded "B", bounded by the open-span depth). *)
let append b ~force kind name cat ts value =
  if (not force) && b.n >= Atomic.get capacity then begin
    b.dropped <- b.dropped + 1;
    false
  end
  else begin
    if b.n >= Array.length b.kinds then grow b;
    let i = b.n in
    b.kinds.(i) <- kind;
    b.names.(i) <- name;
    b.cats.(i) <- cat;
    b.ts.(i) <- ts;
    b.values.(i) <- value;
    b.n <- i + 1;
    true
  end

(* ----- recording API ----- *)

(* [with_span "compile" f] brackets [f] with a B/E pair on the calling
   domain's buffer; a no-op (just the flag check) when disabled. *)
let with_span ?(cat = "") name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = my_buf () in
    let recorded = append b ~force:false Begin name cat (Clock.now_ns ()) 0. in
    Fun.protect
      ~finally:(fun () ->
        if recorded then
          ignore (append b ~force:true End name cat (Clock.now_ns ()) 0.))
      f
  end

(* Counter sample: one point on a Chrome counter track ("C" event). *)
let counter ?(cat = "") name v =
  if Atomic.get enabled_flag then
    ignore (append (my_buf ()) ~force:false Counter name cat (Clock.now_ns ()) v)

let instant ?(cat = "") name =
  if Atomic.get enabled_flag then
    ignore (append (my_buf ()) ~force:false Instant name cat (Clock.now_ns ()) 0.)

(* Drop every recorded event (buffers stay registered). *)
let clear () =
  Mutex.protect buffers_lock (fun () ->
      List.iter
        (fun b ->
          b.n <- 0;
          b.dropped <- 0)
        !buffers)

let event_count () =
  Mutex.protect buffers_lock (fun () ->
      List.fold_left (fun acc b -> acc + b.n) 0 !buffers)

let dropped_count () =
  Mutex.protect buffers_lock (fun () ->
      List.fold_left (fun acc b -> acc + b.dropped) 0 !buffers)

(* ----- Chrome trace-event export ----- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_event out b i =
  let ph =
    match b.kinds.(i) with
    | Begin -> "B"
    | End -> "E"
    | Counter -> "C"
    | Instant -> "i"
  in
  (* Chrome wants microseconds; keep ns resolution as fractional us *)
  let ts_us = float_of_int b.ts.(i) /. 1e3 in
  Printf.bprintf out "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
    (escape b.names.(i)) ph b.dom ts_us;
  if b.cats.(i) <> "" then Printf.bprintf out ",\"cat\":\"%s\"" (escape b.cats.(i));
  (match b.kinds.(i) with
  | Counter -> Printf.bprintf out ",\"args\":{\"value\":%.6g}" b.values.(i)
  | Instant -> Buffer.add_string out ",\"s\":\"t\""
  | Begin | End -> ());
  Buffer.add_char out '}'

(* The whole recorded trace as a Chrome trace-event JSON array.  Spans
   still open at export time are closed with a synthetic "E" at the
   current clock so the output always has matched B/E pairs. *)
let export_chrome () =
  let bufs = Mutex.protect buffers_lock (fun () -> !buffers) in
  let bufs = List.sort (fun a b -> compare a.dom b.dom) bufs in
  let now = Clock.now_ns () in
  let out = Buffer.create 65536 in
  Buffer.add_char out '[';
  let first = ref true in
  let emit f =
    if !first then first := false else Buffer.add_string out ",\n";
    f ()
  in
  List.iter
    (fun b ->
      emit (fun () ->
          Printf.bprintf out
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
            b.dom b.dom);
      let open_spans = ref [] in
      for i = 0 to b.n - 1 do
        (match b.kinds.(i) with
        | Begin -> open_spans := (b.names.(i), b.cats.(i)) :: !open_spans
        | End -> (
          match !open_spans with _ :: rest -> open_spans := rest | [] -> ())
        | Counter | Instant -> ());
        emit (fun () -> write_event out b i)
      done;
      (* close still-open spans, innermost first *)
      List.iter
        (fun (name, cat) ->
          emit (fun () ->
              let ts_us = float_of_int now /. 1e3 in
              Printf.bprintf out
                "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f%s}"
                (escape name) b.dom ts_us
                (if cat = "" then "" else Printf.sprintf ",\"cat\":\"%s\"" (escape cat))))
        !open_spans)
    bufs;
  Buffer.add_string out "]\n";
  Buffer.contents out

let export_chrome_to_file file =
  let oc = open_out file in
  output_string oc (export_chrome ());
  close_out oc

(* ----- pretty text tree ----- *)

let pp_duration ns =
  let f = float_of_int ns in
  if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.1fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fus" (f /. 1e3)
  else Printf.sprintf "%dns" ns

(* Per-domain span tree with durations; counters and instants are shown
   inline at their nesting depth. *)
let to_text () =
  let bufs = Mutex.protect buffers_lock (fun () -> !buffers) in
  let bufs = List.sort (fun a b -> compare a.dom b.dom) bufs in
  let out = Buffer.create 4096 in
  List.iter
    (fun b ->
      if b.n > 0 then begin
        Printf.bprintf out "domain %d (%d events%s)\n" b.dom b.n
          (if b.dropped > 0 then Printf.sprintf ", %d dropped" b.dropped else "");
        (* stack of (name, begin ts, begin index) *)
        let stack = ref [] in
        let indent () = String.make (2 * (1 + List.length !stack)) ' ' in
        for i = 0 to b.n - 1 do
          match b.kinds.(i) with
          | Begin -> stack := (b.names.(i), b.ts.(i)) :: !stack
          | End -> (
            match !stack with
            | (name, t0) :: rest ->
              stack := rest;
              Printf.bprintf out "%s%-40s %s\n" (indent ()) name
                (pp_duration (b.ts.(i) - t0))
            | [] -> ())
          | Counter ->
            Printf.bprintf out "%s%s = %.6g\n" (indent ()) b.names.(i) b.values.(i)
          | Instant -> Printf.bprintf out "%s@ %s\n" (indent ()) b.names.(i)
        done;
        List.iter
          (fun (name, _) -> Printf.bprintf out "  %s (still open)\n" name)
          !stack
      end)
    bufs;
  Buffer.contents out
