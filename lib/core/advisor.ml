(* CUDAAdvisor's front door: the three-component pipeline of Figure 1
   (instrumentation engine -> profiler -> analyzer), wired end to end.

   - [instrument_source] runs the engine: MiniCUDA -> bitcode ->
     instrumented bitcode -> PTX (Figure 2);
   - [profile] runs a workload under the profiler and returns a session
     holding the raw profiles;
   - the analysis accessors produce the metrics of Section 4.2. *)

type compiled = {
  modul : Bitc.Irmod.t;
  manifest : Passes.Manifest.t option; (* None when uninstrumented *)
  prog : Ptx.Isa.prog;
}

(* Compile device source; when [instrument] is set, run the engine with
   the given optional-instrumentation selection. *)
let compile_uncached ?instrument ~file src =
  Obs.Trace.with_span ~cat:"compile" "compile" @@ fun () ->
  let modul =
    Obs.Trace.with_span ~cat:"compile" "frontend" (fun () ->
        Minicuda.Frontend.compile ~file src)
  in
  let manifest =
    match instrument with
    | None -> None
    | Some options ->
      Obs.Trace.with_span ~cat:"compile" "instrument" (fun () ->
          let r = Passes.Instrument.run ~options modul in
          Some r.Passes.Instrument.manifest)
  in
  let prog =
    Obs.Trace.with_span ~cat:"compile" "codegen" (fun () ->
        Ptx.Codegen.gen_module modul)
  in
  { modul; manifest; prog }

(* Experiments recompile the same workload dozens of times (a bypass
   sweep is ~15 otherwise-identical runs), so compilation memoizes on
   (file, source, instrumentation options).  The cache key carries the
   full option set because [Passes.Instrument.run] rewrites the module
   in place: each distinct instrumentation of a source is compiled
   fresh, then shared.  Everything in [compiled] is read-only after
   construction — the PTX program in particular is safe to simulate
   from several domains at once.

   Concurrency: the lock protects only the table, never a compilation.
   A cold key is published as [In_flight] first, then compiled *outside*
   the lock, then published as [Ready] — so distinct keys compile
   concurrently (parallel sweeps and serve requests used to serialize
   every cold compile on this one mutex), while duplicate keys wait on
   the condition variable for the first compiler instead of compiling
   twice.  If the compile raises, the slot is removed and waiters are
   woken so one of them can claim the key and surface the same error. *)
type cache_slot = Ready of compiled | In_flight

let compile_cache :
    (string * string * Passes.Instrument.options option, cache_slot) Hashtbl.t =
  Hashtbl.create 16

let compile_cache_lock = Mutex.create ()
let compile_cache_cond = Condition.create ()

(* Hit/miss counts live in the Obs metrics registry
   ("advisor.compile_cache.*"); [compile_cache_stats] remains as the
   legacy accessor over the same counters.  A "wait" is a request that
   found its key in flight and blocked for the first compiler (it
   counts as a hit once the result arrives). *)
let compile_cache_hits = Obs.Metrics.counter "advisor.compile_cache.hits"
let compile_cache_misses = Obs.Metrics.counter "advisor.compile_cache.misses"
let compile_cache_waits = Obs.Metrics.counter "advisor.compile_cache.waits"

let compile_source ?instrument ~file src =
  let key = (file, src, instrument) in
  (* Under the lock: either hand back a ready result, claim the key for
     this domain, or wait for the in-flight compiler and re-check. *)
  let claim () =
    Mutex.lock compile_cache_lock;
    let rec go ~waited =
      match Hashtbl.find_opt compile_cache key with
      | Some (Ready compiled) ->
        Obs.Metrics.incr compile_cache_hits;
        Mutex.unlock compile_cache_lock;
        `Done compiled
      | Some In_flight ->
        if not waited then Obs.Metrics.incr compile_cache_waits;
        Condition.wait compile_cache_cond compile_cache_lock;
        go ~waited:true
      | None ->
        Obs.Metrics.incr compile_cache_misses;
        Hashtbl.replace compile_cache key In_flight;
        Mutex.unlock compile_cache_lock;
        `Compile
    in
    go ~waited:false
  in
  let publish slot =
    Mutex.protect compile_cache_lock (fun () ->
        (match slot with
        | Some compiled -> Hashtbl.replace compile_cache key (Ready compiled)
        | None -> Hashtbl.remove compile_cache key);
        Condition.broadcast compile_cache_cond)
  in
  match claim () with
  | `Done compiled -> compiled
  | `Compile -> (
    match compile_uncached ?instrument ~file src with
    | compiled ->
      publish (Some compiled);
      compiled
    | exception e ->
      publish None;
      raise e)

let compile_cache_stats () =
  ( Obs.Metrics.counter_value compile_cache_hits,
    Obs.Metrics.counter_value compile_cache_misses )

(* ----- canonical result keys (content-addressed result caching) ----- *)

(* Whitespace normalization for cache-key purposes only (the compiler
   always sees the original text): CRLF -> LF, trailing whitespace
   stripped from every line, trailing blank lines dropped.  None of
   these can change the line or column of any token, so two sources
   with equal canonical forms compile to identical programs and produce
   byte-identical reports. *)
let canonical_source src =
  let strip_line line =
    let n = String.length line in
    let n = if n > 0 && line.[n - 1] = '\r' then n - 1 else n in
    let rec keep i =
      if i > 0 && (line.[i - 1] = ' ' || line.[i - 1] = '\t') then keep (i - 1)
      else i
    in
    String.sub line 0 (keep n)
  in
  let lines = List.map strip_line (String.split_on_char '\n' src) in
  let rec drop_blank = function "" :: rest -> drop_blank rest | l -> l in
  String.concat "\n" (List.rev (drop_blank (List.rev lines)))

(* The content-addressed identity of one result: a digest over a
   canonical field list — sorted keys, defaults already filled in by
   the caller, source reduced to the digest of its canonical form.
   Anything that can change the result bytes must be in here; anything
   that cannot (request ids, timeouts, fan-out width) must not be, or
   identical requests would stop sharing an entry. *)
let result_key ~op ~app ~arch_name ~scale ?(extra = []) ~source () =
  let fields =
    ("app", app) :: ("arch", arch_name) :: ("op", op)
    :: ("scale", string_of_int scale)
    :: ("source", Digest.to_hex (Digest.string (canonical_source source)))
    :: extra
  in
  let fields =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields
  in
  let canon =
    String.concat "&"
      (List.map (fun (k, v) -> k ^ "=" ^ String.escaped v) fields)
  in
  Digest.to_hex (Digest.string canon)

let instrument_source ?(options = Passes.Instrument.all) ~file src =
  compile_source ~instrument:options ~file src

(* ----- profiling sessions ----- *)

type session = {
  workload : Workloads.Common.t;
  arch : Gpusim.Arch.t;
  profiler : Profiler.Profile.t;
  host : Hostrt.Host.t;
  scale : int;
}

(* Default instrumentation for profiling sessions: memory + control
   flow, as in the paper's case studies (arithmetic hooks are opt-in). *)
let default_options =
  { Passes.Instrument.memory = true; control_flow = true; arithmetic = false; sharing = false }

(* Run [workload] fully instrumented under the profiler.  [block_x]
   forces the CTA width on every launch (the block-size tuning knob of
   `advisor evaluate`), grid-rescaled by the host runtime.  [bankmodel]
   opts every launch into charging shared-memory bank-conflict replays
   as issue cycles; conflict *records* are collected either way. *)
let profile ?(options = default_options) ?(keep_mem_events = true)
    ?(bankmodel = false) ?scale ?block_x ~arch (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("profile:" ^ workload.name) @@ fun () ->
  let scale = Option.value scale ~default:workload.default_scale in
  let compiled =
    compile_source ~instrument:options ~file:workload.source_file workload.source
  in
  let manifest = Option.get compiled.manifest in
  let profiler = Profiler.Profile.create ~keep_mem_events ~manifest () in
  let host =
    Hostrt.Host.create ~profiler ~bankmodel ?block_x_override:block_x ~arch
      ~prog:compiled.prog ()
  in
  Obs.Trace.with_span ~cat:"advisor" ("run:" ^ workload.name) (fun () ->
      workload.run host ~scale);
  { workload; arch; profiler; host; scale }

(* Run [workload] natively (no instrumentation, no profiler); returns
   total kernel cycles — the baseline of the overhead study (Fig. 10)
   and of the bypassing experiments (Figs. 6/7). *)
let run_native ?(l1_enabled = true) ?(bankmodel = false) ?(transform = fun p -> p)
    ?scale ?block_x ~arch (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("native:" ^ workload.name) @@ fun () ->
  let scale = Option.value scale ~default:workload.default_scale in
  let compiled = compile_source ~file:workload.source_file workload.source in
  let prog = transform compiled.prog in
  let host =
    Hostrt.Host.create ~l1_enabled ~bankmodel ?block_x_override:block_x ~arch
      ~prog ()
  in
  workload.run host ~scale;
  (Hostrt.Host.total_kernel_cycles host, host)

(* ----- analyzer accessors (Section 4.2) ----- *)

let instances session = Profiler.Profile.instances session.profiler

let reuse_distance ?granularity session =
  Obs.Trace.with_span ~cat:"analysis" "analysis.reuse_distance" @@ fun () ->
  Analysis.Reuse_distance.merge
    (List.map (Analysis.Reuse_distance.of_instance ?granularity) (instances session))

let mem_divergence ?line_size session =
  Obs.Trace.with_span ~cat:"analysis" "analysis.mem_divergence" @@ fun () ->
  let line_size = Option.value line_size ~default:session.arch.Gpusim.Arch.line_size in
  Analysis.Mem_divergence.merge
    (List.map (Analysis.Mem_divergence.of_instance ~line_size) (instances session))

let branch_divergence session =
  Obs.Trace.with_span ~cat:"analysis" "analysis.branch_divergence" @@ fun () ->
  Analysis.Branch_divergence.of_instances (instances session)

let bank_conflict session =
  Obs.Trace.with_span ~cat:"analysis" "analysis.bank_conflict" @@ fun () ->
  Analysis.Bank_conflict.of_profile ~arch:session.arch session.profiler

(* ----- the static fast path (`profile --tier static`) ----- *)

(* IR-only estimate of the profiling metrics: compile uninstrumented
   (memoized — warm requests skip straight to the pass) and run the
   static estimator with the workload's launch geometry and the
   architecture's cache-line size.  No simulator, no host run: this is
   the sub-millisecond tier the serve daemon answers from its intake
   domain. *)
let estimate ~arch (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("estimate:" ^ workload.name) @@ fun () ->
  let compiled = compile_source ~file:workload.source_file workload.source in
  Passes.Estimate.run ~block:workload.block_dims
    ~banks:arch.Gpusim.Arch.shared_banks
    ~bank_width:arch.Gpusim.Arch.shared_bank_width
    ~line_size:arch.Gpusim.Arch.line_size compiled.modul

let estimate_json ~arch (workload : Workloads.Common.t) =
  Analysis.Report.estimate_json ~app:workload.name
    ~arch_name:arch.Gpusim.Arch.name
    (estimate ~arch workload)

(* ----- correctness checking (`advisor check`) ----- *)

type check_report = {
  checked_app : string;
  static_findings : Passes.Check_static.finding list;
  races : Analysis.Race.result;
}

(* Instrumentation used by the dynamic race detector: only the
   correctness hooks, so the run stays cheap and the profiling hook mix
   (and its golden metrics) is untouched. *)
let check_options =
  { Passes.Instrument.memory = false;
    control_flow = false;
    arithmetic = false;
    sharing = true }

(* Run both halves of the checker on a workload: the static pass over
   the pristine (uninstrumented) module, then a run with sharing
   instrumentation feeding the barrier-epoch race detector. *)
let check ?scale ~arch (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("check:" ^ workload.name) @@ fun () ->
  let pristine = compile_source ~file:workload.source_file workload.source in
  let static_findings =
    Obs.Trace.with_span ~cat:"analysis" "check.static" (fun () ->
        Passes.Check_static.run pristine.modul)
  in
  let session =
    profile ~options:check_options ~keep_mem_events:false ?scale ~arch workload
  in
  let races =
    Obs.Trace.with_span ~cat:"analysis" "check.races" (fun () ->
        Analysis.Race.of_profile session.profiler)
  in
  { checked_app = workload.name; static_findings; races }

(* Definite problems only — redundant-barrier advice does not count. *)
let check_error_count r =
  List.length r.static_findings + List.length r.races.Analysis.Race.races

let check_report_json r =
  Analysis.Report.check_json ~app:r.checked_app ~static:r.static_findings
    r.races

(* ----- the bypassing study (Section 4.2-(D)) ----- *)

type bypass_experiment = {
  app : string;
  arch_name : string;
  warps_per_cta : int;
  baseline_cycles : int; (* no bypassing: every warp uses L1 *)
  (* (warps allowed to cache, cycles) for every setting tried *)
  sweep : (int * int) list;
  oracle_warps : int;
  oracle_cycles : int;
  predicted_warps : int; (* from Eq. (1) *)
  predicted_cycles : int;
}

let rewrite_all_kernels prog ~warps_to_cache =
  List.fold_left
    (fun p (name, f) ->
      if f.Ptx.Isa.is_kernel then
        Ptx.Bypass.rewrite_prog p ~kernel:name ~warps_to_cache
      else p)
    prog prog.Ptx.Isa.funcs

(* Run the full study for one app on one architecture: a profiled run
   feeds Eq. (1); the oracle exhaustively sweeps the number of caching
   warps like [31] does in its sampling phase. *)
let bypass_study ?scale ?domains ~arch (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("bypass_study:" ^ workload.name) @@ fun () ->
  let session = profile ?scale ~arch workload in
  (* Eq. (1) multiplies R.D. by the cache-line size, i.e. the reuse
     footprint is counted in cache lines: use the line-based RD model. *)
  let rd =
    reuse_distance
      ~granularity:(Analysis.Reuse_distance.Cache_line arch.Gpusim.Arch.line_size)
      session
  in
  let md = mem_divergence session in
  let warps_per_cta = workload.warps_per_cta in
  (* CTAs resident per SM: the occupancy limit capped by how many CTAs
     the application's launches actually put on each SM *)
  let occupancy = Gpusim.Gpu.occupancy_limit arch ~warps_per_cta ~shared_bytes:0 in
  let num_sms = arch.Gpusim.Arch.num_sms in
  let ctas_per_sm =
    List.fold_left
      (fun acc (_, (r : Gpusim.Gpu.result)) ->
        max acc (min occupancy ((r.ctas + num_sms - 1) / num_sms)))
      1
      (Hostrt.Host.launches session.host)
  in
  let inputs =
    Analysis.Bypass_model.inputs_of ~arch ~rd ~md ~ctas_per_sm ~warps_per_cta
  in
  let predicted_warps = Analysis.Bypass_model.optimal_warps inputs in
  let run_with n =
    let transform prog = rewrite_all_kernels prog ~warps_to_cache:n in
    fst (run_native ?scale ~arch ~transform workload)
  in
  (* exhaustive up to 8 warps, stride 2 beyond (the curve is smooth) *)
  let points =
    List.init (warps_per_cta + 1) Fun.id
    |> List.filter (fun n -> n <= 8 || n mod 2 = 0)
  in
  (* every run is an independent simulation on its own device state, so
     the baseline and the sweep points fan out across domains *)
  let cycles =
    Pool.map ?domains
      (function None -> fst (run_native ?scale ~arch workload) | Some n -> run_with n)
      (None :: List.map Option.some points)
  in
  let baseline_cycles, sweep =
    match cycles with
    | baseline :: sweep_cycles -> (baseline, List.combine points sweep_cycles)
    | [] -> assert false
  in
  let oracle_warps, oracle_cycles =
    List.fold_left
      (fun (bn, bc) (n, c) -> if c < bc then (n, c) else (bn, bc))
      (warps_per_cta, baseline_cycles)
      sweep
  in
  let predicted_cycles =
    if predicted_warps >= warps_per_cta then baseline_cycles
    else
      match List.assoc_opt predicted_warps sweep with
      | Some c -> c
      | None -> run_with predicted_warps
  in
  {
    app = workload.name;
    arch_name = arch.Gpusim.Arch.name;
    warps_per_cta;
    baseline_cycles;
    sweep;
    oracle_warps;
    oracle_cycles;
    predicted_warps;
    predicted_cycles;
  }

(* ----- vertical bypassing (the alternative scheme of Section 4.2-(D)) ----- *)

type vertical_experiment = {
  v_app : string;
  v_baseline_cycles : int;
  v_cycles : int; (* with low-reuse load sites bypassed for every warp *)
  v_sites_bypassed : int;
  v_sites_total : int;
}

(* Profile, find the load sites with (almost) no L1-visible reuse, flip
   them to ld.cg for every warp, and re-run. *)
let vertical_bypass_study ?(threshold = 0.15) ?scale ~arch
    (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("vertical_bypass:" ^ workload.name)
  @@ fun () ->
  let session = profile ?scale ~arch workload in
  let line_size = arch.Gpusim.Arch.line_size in
  let traces =
    List.map
      (fun (i : Profiler.Profile.instance) -> i.trace)
      (instances session)
  in
  let sites = Analysis.Site_reuse.of_traces ~line_size traces in
  let candidates = Analysis.Site_reuse.candidates_of_sites ~threshold sites in
  let should_bypass loc = List.exists (Bitc.Loc.equal loc) candidates in
  let transform prog = Ptx.Bypass.rewrite_prog_vertical prog ~should_bypass in
  let baseline = fst (run_native ?scale ~arch workload) in
  let rewritten = fst (run_native ?scale ~arch ~transform workload) in
  {
    v_app = workload.name;
    v_baseline_cycles = baseline;
    v_cycles = rewritten;
    v_sites_bypassed = List.length candidates;
    v_sites_total = List.length sites;
  }

(* ----- the overhead study (Section 5, Figure 10) ----- *)

type overhead = {
  oh_app : string;
  oh_arch : string;
  native_cycles : int;
  instrumented_cycles : int;
  slowdown : float;
}

(* Memory + control-flow instrumentation, as in Figure 10. *)
let overhead_study ?scale ~arch (workload : Workloads.Common.t) =
  Obs.Trace.with_span ~cat:"advisor" ("overhead_study:" ^ workload.name)
  @@ fun () ->
  let native_cycles = fst (run_native ?scale ~arch workload) in
  let options =
    { Passes.Instrument.memory = true; control_flow = true; arithmetic = false; sharing = false }
  in
  let session = profile ~options ~keep_mem_events:false ?scale ~arch workload in
  let instrumented_cycles = Hostrt.Host.total_kernel_cycles session.host in
  {
    oh_app = workload.name;
    oh_arch = arch.Gpusim.Arch.name;
    native_cycles;
    instrumented_cycles;
    slowdown = float_of_int instrumented_cycles /. float_of_int (max 1 native_cycles);
  }
