(** CUDAAdvisor's front door: the three-component pipeline of the
    paper's Figure 1 — instrumentation engine, profiler and analyzer —
    wired end to end.

    Typical use:
    {[
      let arch = Gpusim.Arch.kepler_k40c () in
      let session = Advisor.profile ~arch (Workloads.Registry.find "bfs") in
      let rd = Advisor.reuse_distance session in
      let md = Advisor.mem_divergence session in
      ...
    ]} *)

(** A compiled device module: IR, optional instrumentation manifest and
    generated PTX. *)
type compiled = {
  modul : Bitc.Irmod.t;
  manifest : Passes.Manifest.t option;  (** [None] when uninstrumented *)
  prog : Ptx.Isa.prog;
}

(** Compile MiniCUDA device source, optionally running the
    instrumentation engine with the given option set.  Memoized on
    (file, source, options): experiment sweeps recompiling the same
    workload share one read-only [compiled].  Domain-safe, with per-key
    in-flight tracking: concurrent cold compiles of distinct keys
    overlap, concurrent compiles of the same key block for the first
    one instead of compiling twice. *)
val compile_source :
  ?instrument:Passes.Instrument.options -> file:string -> string -> compiled

(** (hits, misses) of the compile memo table since process start. *)
val compile_cache_stats : unit -> int * int

(** Whitespace-normalize device source for cache-key purposes: CRLF →
    LF, trailing whitespace stripped per line, trailing blank lines
    dropped.  Never changes the line/column of any token, so equal
    canonical forms imply byte-identical reports. *)
val canonical_source : string -> string

(** Content-addressed identity of one advisor result: a stable hex
    digest of (op, app, arch, scale, canonicalized source, extras),
    independent of field order.  Callers fill defaults in before
    keying; [extra] carries op-specific options as (name, value)
    pairs.  Everything that can change the result bytes belongs in the
    key; nothing else does. *)
val result_key :
  op:string ->
  app:string ->
  arch_name:string ->
  scale:int ->
  ?extra:(string * string) list ->
  source:string ->
  unit ->
  string

(** [compile_source] with instrumentation always on (defaults to all
    three optional categories). *)
val instrument_source :
  ?options:Passes.Instrument.options -> file:string -> string -> compiled

(** Default instrumentation for profiling sessions: memory +
    control-flow, as in the paper's case studies. *)
val default_options : Passes.Instrument.options

(** A completed profiling run of one workload: the profiler holds the
    raw traces, the host the launch results. *)
type session = {
  workload : Workloads.Common.t;
  arch : Gpusim.Arch.t;
  profiler : Profiler.Profile.t;
  host : Hostrt.Host.t;
  scale : int;
}

(** Instrument [workload], run it on the simulated [arch] under the
    profiler, and return the session.  [keep_mem_events:false] drops the
    raw memory trace (for overhead-only runs).  [bankmodel] charges
    shared-memory bank-conflict replays as issue cycles (conflict
    records are collected regardless; see {!Gpusim.Gpu.launch}).
    [block_x] forces the CTA width on every launch (grid-rescaled; see
    {!Hostrt.Host.create}). *)
val profile :
  ?options:Passes.Instrument.options ->
  ?keep_mem_events:bool ->
  ?bankmodel:bool ->
  ?scale:int ->
  ?block_x:int ->
  arch:Gpusim.Arch.t ->
  Workloads.Common.t ->
  session

(** Run [workload] without instrumentation.  [transform] rewrites the
    PTX before execution (e.g. bypassing); [bankmodel] charges
    shared-memory bank-conflict replay cycles (see {!profile}); returns
    total kernel cycles and the host. *)
val run_native :
  ?l1_enabled:bool ->
  ?bankmodel:bool ->
  ?transform:(Ptx.Isa.prog -> Ptx.Isa.prog) ->
  ?scale:int ->
  ?block_x:int ->
  arch:Gpusim.Arch.t ->
  Workloads.Common.t ->
  int * Hostrt.Host.t

(** Kernel instances of the session, in launch order. *)
val instances : session -> Profiler.Profile.instance list

(** Whole-application reuse-distance result (Section 4.2-(A)), merged
    over all kernel instances. *)
val reuse_distance :
  ?granularity:Analysis.Reuse_distance.granularity ->
  session ->
  Analysis.Reuse_distance.result

(** Whole-application memory-divergence distribution (Section 4.2-(B)).
    [line_size] defaults to the session architecture's. *)
val mem_divergence : ?line_size:int -> session -> Analysis.Mem_divergence.result

(** Whole-application branch divergence (Section 4.2-(C), Table 3). *)
val branch_divergence : session -> Analysis.Branch_divergence.result

(** Shared-memory bank-conflict aggregation over the session's conflict
    records, attributed to source lines and CCT device paths. *)
val bank_conflict : session -> Analysis.Bank_conflict.result

(** {2 The static fast path — [profile --tier static]} *)

(** IR-only estimate of the profiling metrics (coalescing degree,
    branch uniformity, reuse-distance histogram), each tagged with a
    confidence tier.  Compiles uninstrumented through the memoized
    compile cache and never touches the simulator. *)
val estimate : arch:Gpusim.Arch.t -> Workloads.Common.t -> Passes.Estimate.t

(** [estimate] rendered as the machine-readable report served for
    [profile_fast] / [profile --tier static]. *)
val estimate_json : arch:Gpusim.Arch.t -> Workloads.Common.t -> Analysis.Json.t

(** {2 Correctness checking — [advisor check]} *)

type check_report = {
  checked_app : string;
  static_findings : Passes.Check_static.finding list;
  races : Analysis.Race.result;
}

(** The instrumentation selection the dynamic detector runs under
    (sharing hooks only). *)
val check_options : Passes.Instrument.options

(** Run the static pass (divergent barriers, constant out-of-bounds
    GEPs) over the pristine module, then the workload under sharing
    instrumentation feeding the barrier-epoch race detector. *)
val check :
  ?scale:int -> arch:Gpusim.Arch.t -> Workloads.Common.t -> check_report

(** Definite problems (static findings + races); redundant-barrier
    advice does not count. *)
val check_error_count : check_report -> int

val check_report_json : check_report -> Analysis.Json.t

(** One row of Figures 6/7: baseline vs exhaustive-oracle vs Eq.-(1)
    prediction for horizontal cache bypassing. *)
type bypass_experiment = {
  app : string;
  arch_name : string;
  warps_per_cta : int;
  baseline_cycles : int;
  sweep : (int * int) list;  (** (caching warps per CTA, cycles) *)
  oracle_warps : int;
  oracle_cycles : int;
  predicted_warps : int;
  predicted_cycles : int;
}

(** Rewrite every kernel of [prog] for horizontal bypassing with the
    given number of caching warps (Listing 5). *)
val rewrite_all_kernels : Ptx.Isa.prog -> warps_to_cache:int -> Ptx.Isa.prog

(** The full bypassing study of Section 4.2-(D): profile, predict with
    Eq. (1), sweep the warp counts exhaustively for the oracle.  The
    baseline and sweep-point simulations are independent and fan out
    over [domains] domains (see {!Pool.map}); the result does not
    depend on the domain count. *)
val bypass_study :
  ?scale:int ->
  ?domains:int ->
  arch:Gpusim.Arch.t ->
  Workloads.Common.t ->
  bypass_experiment

(** Vertical bypassing (the alternative scheme contrasted in Section
    4.2-(D)): load *sites* with an L1-visible reuse fraction below
    [threshold] are flipped to [ld.cg] for every warp. *)
type vertical_experiment = {
  v_app : string;
  v_baseline_cycles : int;
  v_cycles : int;
  v_sites_bypassed : int;
  v_sites_total : int;
}

val vertical_bypass_study :
  ?threshold:float ->
  ?scale:int ->
  arch:Gpusim.Arch.t ->
  Workloads.Common.t ->
  vertical_experiment

(** Instrumentation overhead (Section 5, Figure 10): instrumented vs
    native cycles under memory + control-flow instrumentation. *)
type overhead = {
  oh_app : string;
  oh_arch : string;
  native_cycles : int;
  instrumented_cycles : int;
  slowdown : float;
}

val overhead_study :
  ?scale:int -> arch:Gpusim.Arch.t -> Workloads.Common.t -> overhead
