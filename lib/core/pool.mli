(** A tiny stdlib-only domain pool: experiment sweeps (independent full
    simulations spread over OCaml 5 domains) and long-lived worker
    groups for the serve daemon.

    A process-global budget caps the extra domains live at once, so
    nested [map] calls and worker groups degrade to fewer domains —
    down to sequential execution — instead of exceeding the runtime's
    domain limit. *)

(** [map ?domains f xs] is [List.map f xs] with the applications spread
    over up to [domains] domains, the calling domain included.
    [domains] defaults to the [POOL_DOMAINS] environment variable
    (malformed values warn through [Obs.Log] and are ignored), else
    [Domain.recommended_domain_count ()].  Results keep input order and
    are independent of the domain count (for deterministic [f]); if
    applications raise, the first exception in input order is re-raised
    after all workers finish.  Reserved domain budget is always
    released and spawned workers always joined, even when a spawn fails
    partway through. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit

(** {2 Domain budget}

    The global extra-domain budget shared by [map] and worker groups.
    Exposed so long-lived embedders can account their own domains
    against it. *)

(** Take up to [n] domains from the budget; returns how many were
    actually granted (possibly 0). *)
val reserve : int -> int

(** Return [n] domains to the budget. *)
val release : int -> unit

(** Domains currently available to [reserve]. *)
val available : unit -> int

(** {2 Long-lived worker groups} *)

(** A set of domains all running the same loop (e.g. draining a job
    queue) until it returns. *)
type group

(** Spawn up to [want] workers running [work]; the actual count
    (see {!group_size}) is bounded by the budget and by spawn success,
    and may be 0. *)
val spawn_group : want:int -> (unit -> unit) -> group

val group_size : group -> int

(** Join every worker and release their budget.  Call exactly once. *)
val join_group : group -> unit

(**/**)

(** Test-only fault injection: substitute [Domain.spawn]. *)
module Private : sig
  val set_spawn : ((unit -> unit) -> unit Domain.t) -> unit
  val reset_spawn : unit -> unit
end
