(** A tiny stdlib-only domain pool for experiment sweeps: independent
    full simulations (bypass sweep points, per-app bench sections)
    spread over OCaml 5 domains.

    A process-global budget caps the extra domains live at once, so
    nested [map] calls degrade to sequential execution instead of
    exceeding the runtime's domain limit. *)

(** [map ?domains f xs] is [List.map f xs] with the applications spread
    over up to [domains] domains, the calling domain included.
    [domains] defaults to the [POOL_DOMAINS] environment variable, else
    [Domain.recommended_domain_count ()].  Results keep input order and
    are independent of the domain count (for deterministic [f]); if
    applications raise, the first exception in input order is re-raised
    after all workers finish. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
