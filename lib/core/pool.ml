(* A tiny stdlib-only domain pool for experiment sweeps and the serve
   daemon's workers.

   Experiments (bypass sweep points, per-app bench sections) are
   independent full simulations, so they parallelize across OCaml 5
   domains with no shared mutable state beyond the compile cache (which
   deduplicates in-flight compiles per key).  domainslib is deliberately
   not used: the work units are seconds long and few, so a work-stealing
   deque buys nothing over one atomic counter.

   A process-global budget caps the total number of extra domains ever
   live at once: nested [map] calls (apps in parallel, each sweeping
   points in parallel) and long-lived worker groups (`advisor serve`)
   degrade gracefully to fewer domains — down to sequential execution —
   instead of tripping the runtime's domain limit. *)

(* Extra domains beyond the callers themselves; the OCaml runtime caps
   total domains at 128, so leave headroom for the main domain and any
   nesting. *)
let budget = Atomic.make 120

let reserve want =
  if want <= 0 then 0
  else
    let rec go () =
      let avail = Atomic.get budget in
      let take = min want avail in
      if take = 0 then 0
      else if Atomic.compare_and_set budget avail (avail - take) then take
      else go ()
    in
    go ()

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget n)

let available () = Atomic.get budget

(* Worker count when the caller does not pass [~domains]: the
   [POOL_DOMAINS] environment variable, else the runtime's
   recommendation for this machine.  A malformed value warns and falls
   back (it must not abort a long-lived daemon). *)
let default_domains () =
  Obs.Env.positive_int "POOL_DOMAINS" ~default:Domain.recommended_domain_count

(* Every task reports how long it sat in the queue (submission of the
   batch to a worker picking it up) and how long it ran; the sweeps are
   seconds-long simulations, so two clock reads per task are noise. *)
let m_tasks = Obs.Metrics.counter "pool.tasks"
let m_wait = Obs.Metrics.histogram "pool.task.wait_ns"
let m_run = Obs.Metrics.histogram "pool.task.run_ns"

(* [Domain.spawn], indirected so tests can inject spawn failures (the
   runtime only fails a spawn when the process nears its domain limit,
   which a test cannot trigger cheaply). *)
let spawn_fn : ((unit -> unit) -> unit Domain.t) ref = ref Domain.spawn

(* Spawn up to [extra] workers running [work].  A failed spawn is not
   fatal: the budget the worker would have used is released, a warning
   is logged, and the caller proceeds with the workers that did start
   (possibly none — the calling domain always works too). *)
let spawn_workers extra work =
  let workers = ref [] in
  (try
     for _ = 1 to extra do
       workers := !spawn_fn work :: !workers
     done
   with e ->
     let started = List.length !workers in
     release (extra - started);
     Obs.Log.warn "pool"
       "Domain.spawn failed after %d of %d workers (%s); continuing with fewer"
       started extra (Printexc.to_string e));
  !workers

(* [map ?domains f xs] is [List.map f xs] with the applications spread
   over [domains] domains (the caller works too).  Results keep input
   order and do not depend on the domain count; if any application
   raises, the first exception in input order is re-raised after all
   workers finish.  The reserved domain budget is always released and
   spawned workers always joined, even if a spawn fails partway or the
   caller's own share of the work raises. *)
let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let want =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    let extra = reserve (min want n - 1) in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let submitted = Obs.Clock.now_ns () in
    (* Distributed-trace context is per-domain; capture the caller's so
       spans recorded inside worker domains keep the request's id. *)
    let ctx = Obs.Trace.current_context () in
    let work () =
      if ctx <> None && Obs.Trace.current_context () = None then
        Obs.Trace.set_context ctx;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let picked = Obs.Clock.now_ns () in
          Obs.Metrics.incr m_tasks;
          Obs.Metrics.observe m_wait (picked - submitted);
          (match Obs.Trace.with_span ~cat:"pool" "pool.task" (fun () -> f items.(i)) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          Obs.Metrics.observe m_run (Obs.Clock.now_ns () - picked);
          loop ()
        end
      in
      loop ()
    in
    (* Spawn failures release their own share of the budget inside
       [spawn_workers]; the [finally] joins whoever did start and
       releases exactly their share, so the budget balances on every
       path (clean, partial spawn, or an exception out of [work]). *)
    let workers = ref [] in
    Fun.protect
      ~finally:(fun () ->
        List.iter Domain.join !workers;
        release (List.length !workers))
      (fun () ->
        workers := spawn_workers extra work;
        work ());
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list (Array.map Option.get results)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)

(* ----- long-lived worker groups (the serve daemon) ----- *)

(* A group of worker domains all running the same loop until it returns
   (e.g. pulling jobs from a queue until it is closed).  The workers
   are accounted against the same global budget as [map], so
   simulations running *inside* a served request still degrade
   gracefully when they try to fan out. *)
type group = { domains : unit Domain.t list; count : int }

(* Ask for [want] workers; get between 0 and [want] depending on the
   budget and on spawn success.  [group_size] tells the caller how many
   actually run. *)
let spawn_group ~want work =
  let got = reserve (max 0 want) in
  let domains = spawn_workers got work in
  { domains; count = List.length domains }

let group_size g = g.count

(* Join every worker and return their budget.  Idempotence is the
   caller's problem (a group is joined exactly once). *)
let join_group g =
  List.iter Domain.join g.domains;
  release g.count

(* ----- test-only fault injection ----- *)

module Private = struct
  let set_spawn f = spawn_fn := f
  let reset_spawn () = spawn_fn := Domain.spawn
end
