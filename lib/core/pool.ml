(* A tiny stdlib-only domain pool for experiment sweeps.

   Experiments (bypass sweep points, per-app bench sections) are
   independent full simulations, so they parallelize across OCaml 5
   domains with no shared mutable state beyond the compile cache (which
   serializes on its own lock).  domainslib is deliberately not used:
   the work units are seconds long and few, so a work-stealing deque
   buys nothing over one atomic counter.

   A process-global budget caps the total number of extra domains ever
   live at once: nested [map] calls (apps in parallel, each sweeping
   points in parallel) degrade gracefully to sequential execution
   instead of tripping the runtime's domain limit. *)

(* Extra domains beyond the callers themselves; the OCaml runtime caps
   total domains at 128, so leave headroom for the main domain and any
   nesting. *)
let budget = Atomic.make 120

let reserve want =
  if want <= 0 then 0
  else
    let rec go () =
      let avail = Atomic.get budget in
      let take = min want avail in
      if take = 0 then 0
      else if Atomic.compare_and_set budget avail (avail - take) then take
      else go ()
    in
    go ()

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget n)

(* Worker count when the caller does not pass [~domains]: the
   [POOL_DOMAINS] environment variable, else the runtime's
   recommendation for this machine. *)
let default_domains () =
  match Sys.getenv_opt "POOL_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg (Printf.sprintf "POOL_DOMAINS=%S is not a positive integer" s))
  | None -> Domain.recommended_domain_count ()

(* Every task reports how long it sat in the queue (submission of the
   batch to a worker picking it up) and how long it ran; the sweeps are
   seconds-long simulations, so two clock reads per task are noise. *)
let m_tasks = Obs.Metrics.counter "pool.tasks"
let m_wait = Obs.Metrics.histogram "pool.task.wait_ns"
let m_run = Obs.Metrics.histogram "pool.task.run_ns"

(* [map ?domains f xs] is [List.map f xs] with the applications spread
   over [domains] domains (the caller works too).  Results keep input
   order and do not depend on the domain count; if any application
   raises, the first exception in input order is re-raised after all
   workers finish. *)
let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let want =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    let extra = reserve (min want n - 1) in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let submitted = Obs.Clock.now_ns () in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let picked = Obs.Clock.now_ns () in
          Obs.Metrics.incr m_tasks;
          Obs.Metrics.observe m_wait (picked - submitted);
          (match Obs.Trace.with_span ~cat:"pool" "pool.task" (fun () -> f items.(i)) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          Obs.Metrics.observe m_run (Obs.Clock.now_ns () - picked);
          loop ()
        end
      in
      loop ()
    in
    let workers = Array.init extra (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join workers;
    release extra;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list (Array.map Option.get results)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)
