(** The CUDAAdvisor profiler (paper Section 3.2): collects
    instrumentation events during each kernel instance and performs the
    code-centric (shadow stacks -> calling-context tree) and
    data-centric (allocation maps) attribution.  Metric computation is
    the analyzer's job. *)

type bb_stat = { mutable execs : int; mutable divergent : int }

(** One executed kernel instance with its raw traces. *)
type instance = {
  kernel : string;
  launch_index : int;
  host_path : Records.host_frame list;  (** CPU call path at launch *)
  trace : Tracebuf.t;
      (** packed warp-level memory events with their CCT node, in
          execution order *)
  shared : Tracebuf.Shared.t;
      (** shared-memory access + barrier-epoch rows for [advisor check];
          empty unless the module carries [sharing] instrumentation *)
  conflicts : Tracebuf.Conflict.t;
      (** bank-conflict rows: one per shared access whose lanes
          serialized on a bank (the simulator filters conflict-free
          accesses) *)
  mutable mem_count : int;
  bb_stats : (int, bb_stat) Hashtbl.t;  (** per manifest block id *)
  arith_stats : (Bitc.Loc.t * int, int ref) Hashtbl.t;
  mutable result : Gpusim.Gpu.result option;
}

type t = {
  manifest : Passes.Manifest.t;
  cct : Cct.t;
  mutable kernel_keys : (string * int) list;
  mutable instances_rev : instance list;  (** most recent first *)
  mutable instances_fwd : instance list option;  (** cached launch order *)
  mutable next_launch : int;
  mutable allocs : Records.alloc list;
  mutable transfers : Records.transfer list;
  mutable next_alloc : int;
  keep_mem_events : bool;
}

val create : ?keep_mem_events:bool -> manifest:Passes.Manifest.t -> unit -> t

(** {2 Host-side mandatory instrumentation} *)

val record_alloc :
  t ->
  side:Records.side ->
  base:int ->
  size:int ->
  label:string ->
  path:Records.host_frame list ->
  Records.alloc

val record_transfer :
  t ->
  direction:Records.direction ->
  src:int ->
  dst:int ->
  bytes:int ->
  path:Records.host_frame list ->
  unit

(** {2 Device-side profiling} *)

(** Open a kernel instance; returns it and the event sink to pass to the
    launch.  The sink maintains per-thread device shadow stacks and
    attributes every memory event to its calling context on the fly. *)
val begin_instance :
  t -> kernel:string -> host_path:Records.host_frame list ->
  instance * Gpusim.Hookev.sink

(** Close the instance at kernel exit (the data-marshaling point). *)
val finish_instance : instance -> Gpusim.Gpu.result -> unit

(** {2 Accessors} *)

val instances : t -> instance list
val instances_of : t -> string -> instance list
val allocations : t -> Records.alloc list
val transfers : t -> Records.transfer list

(** Memory events of an instance in execution order, decoded from the
    packed trace.  Allocates one record per event — prefer iterating
    [instance.trace] with {!Tracebuf.iter}/{!Tracebuf.fold}. *)
val mem_events : instance -> (Gpusim.Hookev.mem * int) list

(** Expand a CCT node into the device call path: (function, call-site
    location) frames from the kernel entry downward. *)
val device_path : t -> instance -> int -> (string * Bitc.Loc.t) list
