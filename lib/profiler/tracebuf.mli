(** Packed warp-level memory-event trace (paper Section 3.2): a
    growable struct-of-arrays buffer with flat int columns per record
    field plus a shared lane/address arena, mirroring the paper's
    fixed-size device trace records.  Appending allocates no per-event
    list or tuple; iteration is a single pass over the columns in
    execution order.  Kernel names and source locations are interned
    in side tables. *)

type t

val create : unit -> t

(** Number of events recorded. *)
val length : t -> int

(** Append one warp-level memory event with its CCT node. *)
val push : t -> node:int -> Gpusim.Hookev.mem -> unit

(** {2 Zero-copy column accessors (event index in [0, length))} *)

val kernel : t -> int -> string
val cta : t -> int -> int
val warp : t -> int -> int
val loc : t -> int -> Bitc.Loc.t
val loc_id : t -> int -> int
val bits : t -> int -> int
val kind : t -> int -> int
val node : t -> int -> int

(** Number of active lanes of event [i]. *)
val acc_len : t -> int -> int

(** Offset of event [i]'s first slot in the access arena. *)
val acc_off : t -> int -> int

(** Lane id / byte address of the [j]-th active lane of event [i]. *)
val lane : t -> int -> int -> int

val addr : t -> int -> int -> int

(** The shared address arena; the slice
    [acc_off t i, acc_off t i + acc_len t i) holds event [i]'s
    addresses.  Invalidated by the next [push] that grows the arena. *)
val addr_arena : t -> int array

val iter_accesses : t -> int -> (lane:int -> addr:int -> unit) -> unit

(** {2 Interning tables} *)

(** Number of distinct source locations seen. *)
val num_locs : t -> int

val loc_of_id : t -> int -> Bitc.Loc.t

(** {2 Whole-trace iteration (execution order)} *)

val iter : t -> (int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** {2 Decode — compatibility and round-trip testing} *)

(** Materialize event [i] as the unpacked event record. *)
val event : t -> int -> Gpusim.Hookev.mem * int

val of_events : (Gpusim.Hookev.mem * int) list -> t
val to_events : t -> (Gpusim.Hookev.mem * int) list

(** Packed channel for the [advisor check] race detector: one row per
    warp-level shared-memory access or per-warp barrier passage, in
    execution order.  Barrier rows reuse the width column for the
    manifest barrier id.  Shared addresses are CTA-local; comparisons
    are only meaningful within one CTA. *)
module Shared : sig
  (** Row tags. *)
  val tag_read : int

  val tag_write : int
  val tag_barrier : int
  val tag_atomic : int

  type t

  val create : unit -> t
  val length : t -> int

  (** Append one shared-memory access row; [accesses] are the
      (lane, CTA-local byte address) pairs of the active lanes. *)
  val push_access :
    t ->
    cta:int ->
    warp:int ->
    epoch:int ->
    tag:int ->
    bits:int ->
    loc:Bitc.Loc.t ->
    node:int ->
    (int * int) array ->
    unit

  (** Append one barrier-passage row for a warp: the barrier ends
      [epoch] for that warp. *)
  val push_barrier :
    t -> cta:int -> warp:int -> epoch:int -> bar_id:int -> loc:Bitc.Loc.t ->
    node:int -> unit

  (** {2 Zero-copy column accessors (row index in [0, length))} *)

  val cta : t -> int -> int
  val warp : t -> int -> int
  val epoch : t -> int -> int
  val tag : t -> int -> int
  val bits : t -> int -> int

  (** Barrier rows only: the manifest barrier id. *)
  val bar_id : t -> int -> int

  val loc : t -> int -> Bitc.Loc.t
  val loc_id : t -> int -> int
  val node : t -> int -> int
  val acc_len : t -> int -> int
  val addr : t -> int -> int -> int
  val num_locs : t -> int
  val loc_of_id : t -> int -> Bitc.Loc.t
  val iter_addrs : t -> int -> (int -> unit) -> unit
  val iter : t -> (int -> unit) -> unit
end

(** Packed channel for the bank-conflict analysis: one row per shared
    access whose active lanes serialized on a bank (conflict-free
    accesses never reach the sink).  The simulator has already reduced
    the lane addresses to (degree, replays, broadcast lanes), so rows
    carry no arena slice. *)
module Conflict : sig
  type t

  val create : unit -> t
  val length : t -> int

  (** Append one conflict row with its CCT node. *)
  val push : t -> node:int -> Gpusim.Hookev.conflict -> unit

  (** {2 Zero-copy column accessors (row index in [0, length))} *)

  val cta : t -> int -> int
  val warp : t -> int -> int
  val loc : t -> int -> Bitc.Loc.t
  val loc_id : t -> int -> int
  val node : t -> int -> int

  (** Hooks.mem_kind_load or _store. *)
  val kind : t -> int -> int

  (** Serialized passes through the worst bank, [>= 2]. *)
  val degree : t -> int -> int

  (** [degree - 1] extra issues. *)
  val replays : t -> int -> int

  (** Active lanes whose word another lane also touched. *)
  val broadcast : t -> int -> int

  (** Active lanes at the access. *)
  val active : t -> int -> int

  val num_locs : t -> int
  val loc_of_id : t -> int -> Bitc.Loc.t
  val iter : t -> (int -> unit) -> unit
end
