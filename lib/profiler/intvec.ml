(* Growable flat int array: the building block of the packed trace
   buffer and of the analyzers' per-CTA access streams.  Appending is
   amortized O(1) and never allocates per element — the storage is a
   plain [int array] doubled on demand. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len

let[@inline] get t i = t.data.(i)
let[@inline] set t i v = t.data.(i) <- v

let ensure t extra =
  let need = t.len + extra in
  if need > Array.length t.data then begin
    let cap = ref (Array.length t.data * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let[@inline] push t v =
  if t.len = Array.length t.data then ensure t 1;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let clear t = t.len <- 0

(* The backing store, valid in [0, length).  Exposed so single-pass
   consumers can index without a bounds-checked closure per element. *)
let unsafe_data t = t.data

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len
