(* Packed warp-level memory-event trace (paper Section 3.2).

   The paper's device pass appends fixed-size records to a packed
   device buffer and materializes analysis structures only at kernel
   exit.  This module is the host-side analogue: a growable
   struct-of-arrays buffer with one flat int column per record field
   (CTA, warp, interned source location, access width, kind, CCT node)
   plus a shared lane/address arena holding the per-lane effective
   addresses of every event back to back.  Appending an event performs
   no per-event list allocation; iteration is a cache-friendly pass
   over the columns in execution order.

   Kernel names and [Bitc.Loc.t] values are interned in side tables so
   the columns stay flat ints; accessors translate back on demand. *)

type t = {
  (* per-event columns, all [len] long *)
  mutable len : int;
  mutable kernel_col : int array; (* interned kernel name *)
  mutable cta_col : int array;
  mutable warp_col : int array;
  mutable loc_col : int array; (* interned Bitc.Loc.t *)
  mutable bits_col : int array;
  mutable kind_col : int array;
  mutable node_col : int array; (* CCT node of the calling context *)
  mutable off_col : int array; (* first slot in the access arena *)
  mutable nacc_col : int array; (* number of active lanes *)
  (* shared access arena: slot j holds lane [lane_arena.(j)] touching
     byte address [addr_arena.(j)] *)
  mutable acc_len : int;
  mutable lane_arena : Bytes.t;
  mutable addr_arena : int array;
  (* interning side tables *)
  kernel_ids : (string, int) Hashtbl.t;
  mutable kernel_names : string array;
  mutable nkernels : int;
  loc_ids : (Bitc.Loc.t, int) Hashtbl.t;
  mutable loc_tbl : Bitc.Loc.t array;
  mutable nlocs : int;
}

let create () =
  {
    len = 0;
    kernel_col = Array.make 64 0;
    cta_col = Array.make 64 0;
    warp_col = Array.make 64 0;
    loc_col = Array.make 64 0;
    bits_col = Array.make 64 0;
    kind_col = Array.make 64 0;
    node_col = Array.make 64 0;
    off_col = Array.make 64 0;
    nacc_col = Array.make 64 0;
    acc_len = 0;
    lane_arena = Bytes.make 256 '\000';
    addr_arena = Array.make 256 0;
    kernel_ids = Hashtbl.create 8;
    kernel_names = Array.make 8 "";
    nkernels = 0;
    loc_ids = Hashtbl.create 64;
    loc_tbl = Array.make 64 Bitc.Loc.none;
    nlocs = 0;
  }

let length t = t.len

(* ----- interning ----- *)

let intern_kernel t name =
  match Hashtbl.find_opt t.kernel_ids name with
  | Some id -> id
  | None ->
    let id = t.nkernels in
    if id = Array.length t.kernel_names then begin
      let a = Array.make (2 * id) "" in
      Array.blit t.kernel_names 0 a 0 id;
      t.kernel_names <- a
    end;
    t.kernel_names.(id) <- name;
    t.nkernels <- id + 1;
    Hashtbl.add t.kernel_ids name id;
    id

let intern_loc t loc =
  match Hashtbl.find_opt t.loc_ids loc with
  | Some id -> id
  | None ->
    let id = t.nlocs in
    if id = Array.length t.loc_tbl then begin
      let a = Array.make (2 * id) Bitc.Loc.none in
      Array.blit t.loc_tbl 0 a 0 id;
      t.loc_tbl <- a
    end;
    t.loc_tbl.(id) <- loc;
    t.nlocs <- id + 1;
    Hashtbl.add t.loc_ids loc id;
    id

let num_locs t = t.nlocs
let loc_of_id t id = t.loc_tbl.(id)

(* ----- growth ----- *)

let grow_int_col col len =
  let a = Array.make (2 * len) 0 in
  Array.blit col 0 a 0 len;
  a

let ensure_event t =
  if t.len = Array.length t.cta_col then begin
    let n = t.len in
    t.kernel_col <- grow_int_col t.kernel_col n;
    t.cta_col <- grow_int_col t.cta_col n;
    t.warp_col <- grow_int_col t.warp_col n;
    t.loc_col <- grow_int_col t.loc_col n;
    t.bits_col <- grow_int_col t.bits_col n;
    t.kind_col <- grow_int_col t.kind_col n;
    t.node_col <- grow_int_col t.node_col n;
    t.off_col <- grow_int_col t.off_col n;
    t.nacc_col <- grow_int_col t.nacc_col n
  end

let ensure_arena t extra =
  let need = t.acc_len + extra in
  let cap = Array.length t.addr_arena in
  if need > cap then begin
    let cap' = ref (2 * cap) in
    while !cap' < need do
      cap' := !cap' * 2
    done;
    let addrs = Array.make !cap' 0 in
    Array.blit t.addr_arena 0 addrs 0 t.acc_len;
    t.addr_arena <- addrs;
    let lanes = Bytes.make !cap' '\000' in
    Bytes.blit t.lane_arena 0 lanes 0 t.acc_len;
    t.lane_arena <- lanes
  end

(* ----- appending ----- *)

let push t ~node (m : Gpusim.Hookev.mem) =
  ensure_event t;
  let i = t.len in
  t.len <- i + 1;
  t.kernel_col.(i) <- intern_kernel t m.kernel;
  t.cta_col.(i) <- m.cta;
  t.warp_col.(i) <- m.warp;
  t.loc_col.(i) <- intern_loc t m.loc;
  t.bits_col.(i) <- m.bits;
  t.kind_col.(i) <- m.kind;
  t.node_col.(i) <- node;
  let n = Array.length m.accesses in
  ensure_arena t n;
  t.off_col.(i) <- t.acc_len;
  t.nacc_col.(i) <- n;
  for j = 0 to n - 1 do
    let lane, addr = m.accesses.(j) in
    Bytes.unsafe_set t.lane_arena (t.acc_len + j) (Char.unsafe_chr (lane land 0xff));
    t.addr_arena.(t.acc_len + j) <- addr
  done;
  t.acc_len <- t.acc_len + n

(* ----- zero-copy accessors ----- *)

let[@inline] kernel t i = t.kernel_names.(t.kernel_col.(i))
let[@inline] cta t i = t.cta_col.(i)
let[@inline] warp t i = t.warp_col.(i)
let[@inline] loc_id t i = t.loc_col.(i)
let[@inline] loc t i = t.loc_tbl.(t.loc_col.(i))
let[@inline] bits t i = t.bits_col.(i)
let[@inline] kind t i = t.kind_col.(i)
let[@inline] node t i = t.node_col.(i)
let[@inline] acc_off t i = t.off_col.(i)
let[@inline] acc_len t i = t.nacc_col.(i)
let[@inline] lane t i j = Char.code (Bytes.unsafe_get t.lane_arena (t.off_col.(i) + j))
let[@inline] addr t i j = t.addr_arena.(t.off_col.(i) + j)

(* The arena itself, for batch consumers (coalescing over a slice). *)
let addr_arena t = t.addr_arena

let iter_accesses t i f =
  let off = t.off_col.(i) and n = t.nacc_col.(i) in
  for j = 0 to n - 1 do
    f ~lane:(Char.code (Bytes.unsafe_get t.lane_arena (off + j))) ~addr:t.addr_arena.(off + j)
  done

let iter t f =
  for i = 0 to t.len - 1 do
    f i
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc i
  done;
  !acc

(* ----- decode (compatibility and round-trip testing) ----- *)

let event t i : Gpusim.Hookev.mem * int =
  let n = acc_len t i in
  let accesses = Array.init n (fun j -> (lane t i j, addr t i j)) in
  ( { Gpusim.Hookev.kernel = kernel t i;
      cta = cta t i;
      warp = warp t i;
      loc = loc t i;
      bits = bits t i;
      kind = kind t i;
      accesses },
    node t i )

let of_events events =
  let t = create () in
  List.iter (fun (m, node) -> push t ~node m) events;
  t

let to_events t = List.init t.len (event t)

(* ----- shared-memory correctness channel ----- *)

(* Packed channel for the `advisor check` race detector: one row per
   warp-level shared-memory access or per-warp barrier passage, in
   execution order.  Same SoA layout as the main trace, specialized to
   the checker's needs: a barrier-epoch column replaces the kernel
   column (the channel lives inside one instance, so the kernel is
   known), and barrier rows reuse the width column for the manifest
   barrier id.  Shared addresses are CTA-local, so row comparisons are
   only meaningful within one CTA — which is all the detector does. *)
module Shared = struct
  let tag_read = 0
  let tag_write = 1
  let tag_barrier = 2
  let tag_atomic = 3

  type t = {
    mutable len : int;
    mutable cta_col : int array;
    mutable warp_col : int array;
    mutable epoch_col : int array; (* barriers this warp passed before the row *)
    mutable tag_col : int array; (* tag_read/_write/_atomic/_barrier *)
    mutable bits_col : int array; (* access width; barrier rows: barrier id *)
    mutable loc_col : int array; (* interned Bitc.Loc.t *)
    mutable node_col : int array; (* CCT node of the calling context *)
    mutable off_col : int array; (* first slot in the address arena *)
    mutable nacc_col : int array; (* number of active lanes *)
    mutable acc_len : int;
    mutable addr_arena : int array; (* per-lane CTA-local byte addresses *)
    loc_ids : (Bitc.Loc.t, int) Hashtbl.t;
    mutable loc_tbl : Bitc.Loc.t array;
    mutable nlocs : int;
  }

  let create () =
    {
      len = 0;
      cta_col = Array.make 64 0;
      warp_col = Array.make 64 0;
      epoch_col = Array.make 64 0;
      tag_col = Array.make 64 0;
      bits_col = Array.make 64 0;
      loc_col = Array.make 64 0;
      node_col = Array.make 64 0;
      off_col = Array.make 64 0;
      nacc_col = Array.make 64 0;
      acc_len = 0;
      addr_arena = Array.make 256 0;
      loc_ids = Hashtbl.create 64;
      loc_tbl = Array.make 64 Bitc.Loc.none;
      nlocs = 0;
    }

  let length t = t.len

  let intern_loc t loc =
    match Hashtbl.find_opt t.loc_ids loc with
    | Some id -> id
    | None ->
      let id = t.nlocs in
      if id = Array.length t.loc_tbl then begin
        let a = Array.make (2 * id) Bitc.Loc.none in
        Array.blit t.loc_tbl 0 a 0 id;
        t.loc_tbl <- a
      end;
      t.loc_tbl.(id) <- loc;
      t.nlocs <- id + 1;
      Hashtbl.add t.loc_ids loc id;
      id

  let ensure_event t =
    if t.len = Array.length t.cta_col then begin
      let n = t.len in
      t.cta_col <- grow_int_col t.cta_col n;
      t.warp_col <- grow_int_col t.warp_col n;
      t.epoch_col <- grow_int_col t.epoch_col n;
      t.tag_col <- grow_int_col t.tag_col n;
      t.bits_col <- grow_int_col t.bits_col n;
      t.loc_col <- grow_int_col t.loc_col n;
      t.node_col <- grow_int_col t.node_col n;
      t.off_col <- grow_int_col t.off_col n;
      t.nacc_col <- grow_int_col t.nacc_col n
    end

  let ensure_arena t extra =
    let need = t.acc_len + extra in
    let cap = Array.length t.addr_arena in
    if need > cap then begin
      let cap' = ref (2 * cap) in
      while !cap' < need do
        cap' := !cap' * 2
      done;
      let addrs = Array.make !cap' 0 in
      Array.blit t.addr_arena 0 addrs 0 t.acc_len;
      t.addr_arena <- addrs
    end

  let push_row t ~cta ~warp ~epoch ~tag ~bits ~loc ~node =
    ensure_event t;
    let i = t.len in
    t.len <- i + 1;
    t.cta_col.(i) <- cta;
    t.warp_col.(i) <- warp;
    t.epoch_col.(i) <- epoch;
    t.tag_col.(i) <- tag;
    t.bits_col.(i) <- bits;
    t.loc_col.(i) <- intern_loc t loc;
    t.node_col.(i) <- node;
    t.off_col.(i) <- t.acc_len;
    t.nacc_col.(i) <- 0;
    i

  let push_access t ~cta ~warp ~epoch ~tag ~bits ~loc ~node
      (accesses : (int * int) array) =
    let i = push_row t ~cta ~warp ~epoch ~tag ~bits ~loc ~node in
    let n = Array.length accesses in
    ensure_arena t n;
    t.off_col.(i) <- t.acc_len;
    t.nacc_col.(i) <- n;
    for j = 0 to n - 1 do
      let _lane, addr = accesses.(j) in
      t.addr_arena.(t.acc_len + j) <- addr
    done;
    t.acc_len <- t.acc_len + n

  let push_barrier t ~cta ~warp ~epoch ~bar_id ~loc ~node =
    ignore (push_row t ~cta ~warp ~epoch ~tag:tag_barrier ~bits:bar_id ~loc ~node)

  let[@inline] cta t i = t.cta_col.(i)
  let[@inline] warp t i = t.warp_col.(i)
  let[@inline] epoch t i = t.epoch_col.(i)
  let[@inline] tag t i = t.tag_col.(i)
  let[@inline] bits t i = t.bits_col.(i)
  let[@inline] bar_id t i = t.bits_col.(i)
  let[@inline] loc_id t i = t.loc_col.(i)
  let[@inline] loc t i = t.loc_tbl.(t.loc_col.(i))
  let[@inline] node t i = t.node_col.(i)
  let[@inline] acc_len t i = t.nacc_col.(i)
  let[@inline] addr t i j = t.addr_arena.(t.off_col.(i) + j)
  let num_locs t = t.nlocs
  let loc_of_id t id = t.loc_tbl.(id)

  let iter_addrs t i f =
    let off = t.off_col.(i) and n = t.nacc_col.(i) in
    for j = 0 to n - 1 do
      f t.addr_arena.(off + j)
    done

  let iter t f =
    for i = 0 to t.len - 1 do
      f i
    done
end

(* ----- shared-memory bank-conflict channel ----- *)

(* Packed channel for the bank-conflict analysis: one row per shared
   access whose active lanes serialized on a bank.  Conflict-free
   accesses never reach the sink, so the channel stays tiny even on
   shared-heavy kernels; the per-access lane addresses are not needed —
   the simulator already reduced them to (degree, replays, broadcast). *)
module Conflict = struct
  type t = {
    mutable len : int;
    mutable cta_col : int array;
    mutable warp_col : int array;
    mutable loc_col : int array; (* interned Bitc.Loc.t *)
    mutable node_col : int array; (* CCT node of the calling context *)
    mutable kind_col : int array; (* Hooks.mem_kind_load / _store *)
    mutable degree_col : int array; (* serialized passes, >= 2 *)
    mutable replays_col : int array; (* degree - 1 *)
    mutable broadcast_col : int array; (* lanes sharing a word *)
    mutable active_col : int array; (* active lanes at the access *)
    loc_ids : (Bitc.Loc.t, int) Hashtbl.t;
    mutable loc_tbl : Bitc.Loc.t array;
    mutable nlocs : int;
  }

  let create () =
    {
      len = 0;
      cta_col = Array.make 64 0;
      warp_col = Array.make 64 0;
      loc_col = Array.make 64 0;
      node_col = Array.make 64 0;
      kind_col = Array.make 64 0;
      degree_col = Array.make 64 0;
      replays_col = Array.make 64 0;
      broadcast_col = Array.make 64 0;
      active_col = Array.make 64 0;
      loc_ids = Hashtbl.create 64;
      loc_tbl = Array.make 64 Bitc.Loc.none;
      nlocs = 0;
    }

  let length t = t.len

  let intern_loc t loc =
    match Hashtbl.find_opt t.loc_ids loc with
    | Some id -> id
    | None ->
      let id = t.nlocs in
      if id = Array.length t.loc_tbl then begin
        let a = Array.make (2 * id) Bitc.Loc.none in
        Array.blit t.loc_tbl 0 a 0 id;
        t.loc_tbl <- a
      end;
      t.loc_tbl.(id) <- loc;
      t.nlocs <- id + 1;
      Hashtbl.add t.loc_ids loc id;
      id

  let ensure_event t =
    if t.len = Array.length t.cta_col then begin
      let n = t.len in
      t.cta_col <- grow_int_col t.cta_col n;
      t.warp_col <- grow_int_col t.warp_col n;
      t.loc_col <- grow_int_col t.loc_col n;
      t.node_col <- grow_int_col t.node_col n;
      t.kind_col <- grow_int_col t.kind_col n;
      t.degree_col <- grow_int_col t.degree_col n;
      t.replays_col <- grow_int_col t.replays_col n;
      t.broadcast_col <- grow_int_col t.broadcast_col n;
      t.active_col <- grow_int_col t.active_col n
    end

  let push t ~node (c : Gpusim.Hookev.conflict) =
    ensure_event t;
    let i = t.len in
    t.len <- i + 1;
    t.cta_col.(i) <- c.cta;
    t.warp_col.(i) <- c.warp;
    t.loc_col.(i) <- intern_loc t c.loc;
    t.node_col.(i) <- node;
    t.kind_col.(i) <- c.kind;
    t.degree_col.(i) <- c.degree;
    t.replays_col.(i) <- c.replays;
    t.broadcast_col.(i) <- c.broadcast_lanes;
    t.active_col.(i) <- c.active_lanes

  let[@inline] cta t i = t.cta_col.(i)
  let[@inline] warp t i = t.warp_col.(i)
  let[@inline] loc_id t i = t.loc_col.(i)
  let[@inline] loc t i = t.loc_tbl.(t.loc_col.(i))
  let[@inline] node t i = t.node_col.(i)
  let[@inline] kind t i = t.kind_col.(i)
  let[@inline] degree t i = t.degree_col.(i)
  let[@inline] replays t i = t.replays_col.(i)
  let[@inline] broadcast t i = t.broadcast_col.(i)
  let[@inline] active t i = t.active_col.(i)
  let num_locs t = t.nlocs
  let loc_of_id t id = t.loc_tbl.(id)

  let iter t f =
    for i = 0 to t.len - 1 do
      f i
    done
end
