(* The CUDAAdvisor profiler (Section 3.2): collects instrumentation
   events during each kernel instance and performs the code-centric
   (shadow stacks -> CCT) and data-centric (allocation maps) attribution
   at kernel exit.  No metric computation happens here — that is the
   analyzer's job — matching the paper's separation (Section 3.2.3). *)

type bb_stat = { mutable execs : int; mutable divergent : int }

(* One executed kernel instance with its raw traces. *)
type instance = {
  kernel : string;
  launch_index : int;
  host_path : Records.host_frame list;
  (* packed warp-level memory events with the CCT node of their call
     path, in execution order *)
  trace : Tracebuf.t;
  (* packed shared-memory access + barrier-epoch rows for the checker;
     empty unless the module was instrumented with [sharing] hooks *)
  shared : Tracebuf.Shared.t;
  (* packed bank-conflict rows: one per shared access whose lanes
     serialized on a bank (the simulator filters conflict-free ones) *)
  conflicts : Tracebuf.Conflict.t;
  mutable mem_count : int;
  bb_stats : (int, bb_stat) Hashtbl.t;
  arith_stats : (Bitc.Loc.t * int, int ref) Hashtbl.t;
  mutable result : Gpusim.Gpu.result option;
}

type t = {
  manifest : Passes.Manifest.t;
  cct : Cct.t;
  mutable kernel_keys : (string * int) list; (* kernel name -> root key *)
  mutable instances_rev : instance list; (* most recent first *)
  (* launch-order view, rebuilt lazily after an append *)
  mutable instances_fwd : instance list option;
  mutable next_launch : int;
  mutable allocs : Records.alloc list;
  mutable transfers : Records.transfer list;
  mutable next_alloc : int;
  (* retain raw memory events? disable for overhead-only runs *)
  keep_mem_events : bool;
}

let create ?(keep_mem_events = true) ~manifest () =
  {
    manifest;
    cct = Cct.create ();
    kernel_keys = [];
    instances_rev = [];
    instances_fwd = None;
    next_launch = 0;
    allocs = [];
    transfers = [];
    next_alloc = 0;
    keep_mem_events;
  }

(* ----- host-side mandatory instrumentation entry points ----- *)

let record_alloc t ~side ~base ~size ~label ~path =
  let id = t.next_alloc in
  t.next_alloc <- id + 1;
  let a =
    { Records.alloc_id = id; side; base; size; label; alloc_path = path }
  in
  t.allocs <- a :: t.allocs;
  a

let record_transfer t ~direction ~src ~dst ~bytes ~path =
  t.transfers <-
    { Records.direction; src; dst; bytes; transfer_path = path } :: t.transfers

(* ----- device-side profiling of one kernel instance ----- *)

let kernel_key t kernel =
  match List.assoc_opt kernel t.kernel_keys with
  | Some k -> k
  | None ->
    let k = List.length t.kernel_keys in
    t.kernel_keys <- (kernel, k) :: t.kernel_keys;
    k

(* Returns the new instance and the event sink to pass to the launch.
   The sink maintains per-thread device shadow stacks (as CCT cursors)
   and attributes each memory event to its calling context on the fly. *)
let begin_instance t ~kernel ~host_path =
  let instance =
    {
      kernel;
      launch_index = t.next_launch;
      host_path;
      trace = Tracebuf.create ();
      shared = Tracebuf.Shared.create ();
      conflicts = Tracebuf.Conflict.create ();
      mem_count = 0;
      bb_stats = Hashtbl.create 64;
      arith_stats = Hashtbl.create 64;
      result = None;
    }
  in
  t.next_launch <- t.next_launch + 1;
  t.instances_rev <- instance :: t.instances_rev;
  t.instances_fwd <- None;
  let root = Cct.root t.cct ~key:(kernel_key t kernel) in
  (* shadow-stack cursor per thread: (cta, warp, lane) -> CCT node *)
  let cursors : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let thread_key ~cta ~warp ~lane = (((cta * 64) + warp) * 32) + lane in
  let cursor key = Option.value (Hashtbl.find_opt cursors key) ~default:root in
  let lanes_of_mask = Gpusim.Machine.lanes_of_mask in
  (* barrier-epoch counter per (cta, warp): how many barriers that warp
     has passed so far in this instance *)
  let epochs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let warp_key ~cta ~warp = (cta * 64) + warp in
  let epoch_of key = Option.value (Hashtbl.find_opt epochs key) ~default:0 in
  let sink (ev : Gpusim.Hookev.t) =
    match ev with
    | Gpusim.Hookev.Call { cta; warp; callsite; mask; push; _ } ->
      List.iter
        (fun lane ->
          let key = thread_key ~cta ~warp ~lane in
          let cur = cursor key in
          if push then Hashtbl.replace cursors key (Cct.child t.cct cur ~callsite)
          else
            let parent = Cct.parent t.cct cur in
            Hashtbl.replace cursors key (if parent < 0 then root else parent))
        (lanes_of_mask mask)
    | Gpusim.Hookev.Mem m ->
      instance.mem_count <- instance.mem_count + 1;
      if t.keep_mem_events then begin
        let node =
          match m.accesses with
          | [||] -> root
          | accesses ->
            let lane, _ = accesses.(0) in
            cursor (thread_key ~cta:m.cta ~warp:m.warp ~lane)
        in
        Tracebuf.push instance.trace ~node m
      end
    | Gpusim.Hookev.Bb b ->
      let stat =
        match Hashtbl.find_opt instance.bb_stats b.bb_id with
        | Some s -> s
        | None ->
          let s = { execs = 0; divergent = 0 } in
          Hashtbl.replace instance.bb_stats b.bb_id s;
          s
      in
      stat.execs <- stat.execs + 1;
      if b.active_mask <> b.live_mask then stat.divergent <- stat.divergent + 1
    | Gpusim.Hookev.Arith a ->
      let key = (a.loc, a.code) in
      (match Hashtbl.find_opt instance.arith_stats key with
      | Some r -> incr r
      | None -> Hashtbl.replace instance.arith_stats key (ref 1))
    | Gpusim.Hookev.Shared m ->
      let node =
        match m.accesses with
        | [||] -> root
        | accesses ->
          let lane, _ = accesses.(0) in
          cursor (thread_key ~cta:m.cta ~warp:m.warp ~lane)
      in
      let tag =
        if m.kind = Passes.Hooks.mem_kind_store then Tracebuf.Shared.tag_write
        else if m.kind = Passes.Hooks.mem_kind_atomic then
          Tracebuf.Shared.tag_atomic
        else Tracebuf.Shared.tag_read
      in
      Tracebuf.Shared.push_access instance.shared ~cta:m.cta ~warp:m.warp
        ~epoch:(epoch_of (warp_key ~cta:m.cta ~warp:m.warp))
        ~tag ~bits:m.bits ~loc:m.loc ~node m.accesses
    | Gpusim.Hookev.Barrier b ->
      let key = warp_key ~cta:b.cta ~warp:b.warp in
      let e = epoch_of key in
      let node =
        match lanes_of_mask b.mask with
        | lane :: _ -> cursor (thread_key ~cta:b.cta ~warp:b.warp ~lane)
        | [] -> root
      in
      Tracebuf.Shared.push_barrier instance.shared ~cta:b.cta ~warp:b.warp
        ~epoch:e ~bar_id:b.bar_id ~loc:b.loc ~node;
      Hashtbl.replace epochs key (e + 1)
    | Gpusim.Hookev.Conflict c ->
      (* the conflict is warp-wide: attribute it to the warp's first
         thread's calling context, like memory events *)
      let node =
        cursor (thread_key ~cta:c.cta ~warp:c.warp ~lane:0)
      in
      Tracebuf.Conflict.push instance.conflicts ~node c
  in
  (instance, sink)

(* Data marshaling point: the paper copies the device buffers back and
   finalizes attribution at the end of each kernel instance. *)
let finish_instance instance result = instance.result <- Some result

(* ----- accessors ----- *)

let instances t =
  match t.instances_fwd with
  | Some l -> l
  | None ->
    let l = List.rev t.instances_rev in
    t.instances_fwd <- Some l;
    l

let instances_of t kernel = List.filter (fun i -> i.kernel = kernel) (instances t)
let allocations t = List.rev t.allocs
let transfers t = List.rev t.transfers

(* Memory events of an instance, decoded from the packed trace in
   execution order.  Prefer folding over [instance.trace] directly. *)
let mem_events instance = Tracebuf.to_events instance.trace

(* Expand a CCT node into the device call path: list of (function,
   file:line) frames from the kernel entry downward. *)
let device_path t instance node =
  let callsites = Cct.path t.cct node in
  let frames =
    List.map
      (fun cs ->
        let c = Passes.Manifest.callsite t.manifest cs in
        (c.Passes.Manifest.callee, c.Passes.Manifest.call_loc))
      callsites
  in
  (instance.kernel, Bitc.Loc.none) :: frames
