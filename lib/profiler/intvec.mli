(** Growable flat int array: amortized O(1) append with no per-element
    allocation.  Building block of the packed trace buffer and of the
    analyzers' per-CTA access streams. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val clear : t -> unit

(** The backing store; indices [0, length) are valid.  Invalidated by
    the next [push] that grows the vector. *)
val unsafe_data : t -> int array

val iter : t -> (int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val to_array : t -> int array
