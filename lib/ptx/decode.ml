(* Predecode: lower [Isa.inst] arrays into the flat descriptor form the
   simulator interprets ([Isa.dinst]).  Each program is decoded once —
   the result is cached on the prog — so sweeps that relaunch the same
   kernels hundreds of times pay for operand splitting, call-target
   interning and reconvergence resolution a single time.

   Decoding also validates every register index against the function's
   register count, which is what licenses the interpreter's unchecked
   register-file accesses. *)

(* Cache hit/miss counts live in the Obs metrics registry
   ("ptx.decode_cache.*"); [cache_stats] remains as the legacy
   accessor over the same counters. *)
let cache_hits = Obs.Metrics.counter "ptx.decode_cache.hits"
let cache_misses = Obs.Metrics.counter "ptx.decode_cache.misses"

let cache_stats () =
  (Obs.Metrics.counter_value cache_hits, Obs.Metrics.counter_value cache_misses)

let bad_reg fname r nregs =
  invalid_arg
    (Printf.sprintf "Decode: register %%r%d out of range (%s has %d registers)" r
       fname nregs)

let decode_func ~dindex (name : string) (f : Isa.func) : Isa.dfunc =
  let nregs = max f.nregs 1 in
  let check_reg r = if r < 0 || r >= nregs then bad_reg name r nregs in
  (* float-immediate pool *)
  let fimms = ref [] in
  let nfimms = ref 0 in
  let intern_float v =
    let i = !nfimms in
    fimms := v :: !fimms;
    incr nfimms;
    i
  in
  let dop (o : Isa.operand) : Isa.dop =
    match o with
    | Isa.R r ->
      check_reg r;
      { okind = 0; onum = r }
    | Isa.I i -> { okind = 1; onum = i }
    | Isa.F v -> { okind = 2; onum = intern_float v }
  in
  let ddst r =
    check_reg r;
    r
  in
  (* register sources per pc, in the order [Exec.srcs_ready_at] read
     them (the scoreboard takes a max, so order is cosmetic) *)
  let no_srcs = [||] in
  let srcs_of (inst : Isa.inst) =
    let of_op acc (o : Isa.operand) =
      match o with Isa.R r -> r :: acc | Isa.I _ | Isa.F _ -> acc
    in
    let of_pred acc = function Some (r, _) -> r :: acc | None -> acc in
    let l =
      match inst with
      | Isa.Mov { src; _ } -> of_op [] src
      | Isa.Iop { a; b; _ } | Isa.Fop { a; b; _ } -> of_op (of_op [] a) b
      | Isa.Unop { a; _ } -> of_op [] a
      | Isa.Setp { a; b; _ } -> of_op (of_op [] a) b
      | Isa.Selp { cond; a; b; _ } -> of_op (of_op (of_op [] cond) a) b
      | Isa.Ld { addr; pred; _ } -> of_pred (of_op [] addr) pred
      | Isa.St { addr; src; pred; _ } -> of_pred (of_op (of_op [] addr) src) pred
      | Isa.Atom { addr; src; _ } -> of_op (of_op [] addr) src
      | Isa.Bra _ -> []
      | Isa.Cond_bra { pr; _ } -> [ pr ]
      | Isa.Call { args; _ } -> List.fold_left of_op [] args
      | Isa.Ret (Some op) -> of_op [] op
      | Isa.Ret None -> []
      | Isa.Bar -> []
      | Isa.Sreg _ -> []
      | Isa.Hook { args; _ } -> List.fold_left of_op [] args
    in
    List.iter check_reg l;
    if l = [] then no_srcs else Array.of_list l
  in
  let exit_pc = Array.length f.body in
  let dpred = function
    | None -> (-1, true)
    | Some (r, expect) ->
      check_reg r;
      (r, expect)
  in
  let dinst (inst : Isa.inst) : Isa.dinst =
    match inst with
    | Isa.Mov { dst; src } -> DMov { dst = ddst dst; src = dop src }
    | Isa.Iop { op; dst; a; b } -> DIop { op; dst = ddst dst; a = dop a; b = dop b }
    | Isa.Fop { op; dst; a; b } -> DFop { op; dst = ddst dst; a = dop a; b = dop b }
    | Isa.Unop { op; dst; a; fl } ->
      let sfu =
        match op with
        | Bitc.Instr.Sqrt | Bitc.Instr.Exp | Bitc.Instr.Log -> true
        | _ -> false
      in
      DUnop { op; dst = ddst dst; a = dop a; fl; sfu }
    | Isa.Setp { op; dst; a; b; fl } ->
      DSetp { op; dst = ddst dst; a = dop a; b = dop b; fl }
    | Isa.Selp { dst; cond; a; b } ->
      DSelp { dst = ddst dst; cond = dop cond; a = dop a; b = dop b }
    | Isa.Ld { dst; space; cop; addr; width; fl; pred } -> (
      let dst = ddst dst and addr = dop addr in
      let pr, pexpect = dpred pred in
      match space with
      | Isa.Local -> DLd_local { dst; addr; width; fl; pr; pexpect }
      | Isa.Shared -> DLd_shared { dst; addr; width; fl; pr; pexpect }
      | Isa.Global ->
        DLd_global { dst; cg = (cop = Isa.Cg); addr; width; fl; pr; pexpect })
    | Isa.St { space; cop = _; addr; src; width; fl; pred } -> (
      let addr = dop addr and src = dop src in
      let pr, pexpect = dpred pred in
      match space with
      | Isa.Local -> DSt_local { addr; src; width; fl; pr; pexpect }
      | Isa.Shared -> DSt_shared { addr; src; width; fl; pr; pexpect }
      | Isa.Global -> DSt_global { addr; src; width; fl; pr; pexpect })
    | Isa.Atom { dst; addr; src; width; fl } ->
      DAtom { dst = ddst dst; addr = dop addr; src = dop src; width; fl }
    | Isa.Bra { target } -> DBra { target }
    | Isa.Cond_bra { pr; if_true; if_false; reconv } ->
      check_reg pr;
      let rpc = match reconv with Some r -> r | None -> exit_pc in
      DCond_bra { pr; if_true; if_false; rpc }
    | Isa.Call { callee; args; dst } -> (
      (match dst with Some d -> ignore (ddst d) | None -> ());
      match Hashtbl.find_opt dindex callee with
      | Some idx ->
        DCall { callee = idx; args = Array.of_list (List.map dop args); ret_dst = dst }
      | None ->
        invalid_arg (Printf.sprintf "Isa.find_func: unknown function %s" callee))
    | Isa.Ret v -> DRet { v = Option.map dop v }
    | Isa.Bar -> DBar
    | Isa.Sreg { dst; which } -> DSreg { dst = ddst dst; which }
    | Isa.Hook { name = hname; args } ->
      let hook : Isa.dhook =
        match hname, List.map dop args with
        | "__ca_record_mem", [ addr; bits; _line; _col; kind ] ->
          DH_mem { addr; bits; kind }
        | "__ca_record_bb", [ bb_id; _line; _col ] -> DH_bb { bb_id }
        | ("__ca_record_arith_i" | "__ca_record_arith_f"), [ code; a; b; _line; _col ]
          ->
          DH_arith { code; a; b }
        | "__ca_push_call", [ callsite ] -> DH_call { callsite; push = true }
        | "__ca_pop_call", [ callsite ] -> DH_call { callsite; push = false }
        | "__ca_record_shared", [ addr; bits; _line; _col; kind ] ->
          DH_shared { addr; bits; kind }
        | "__ca_record_bar", [ bar_id; _line; _col ] -> DH_bar { bar_id }
        | _, _ -> DH_bad { hname }
      in
      DHook { hook }
  in
  let dbody = Array.map dinst f.body in
  let dsrcs = Array.map srcs_of f.body in
  let fimms = Array.of_list (List.rev !fimms) in
  { Isa.fsrc = f; dbody; dsrcs; fimms; dnregs = nregs }

let decode (p : Isa.prog) : Isa.decoded =
  let n = List.length p.funcs in
  let dnames = Array.make n "" in
  let dindex = Hashtbl.create (max 4 n) in
  List.iteri
    (fun i (name, _) ->
      dnames.(i) <- name;
      Hashtbl.replace dindex name i)
    p.funcs;
  let dfuncs =
    Array.of_list (List.map (fun (name, f) -> decode_func ~dindex name f) p.funcs)
  in
  { Isa.dfuncs; dnames; dindex }

(* Decode [p], caching the result on the prog itself. *)
let of_prog (p : Isa.prog) : Isa.decoded =
  match p.decoded with
  | Some d ->
    Obs.Metrics.incr cache_hits;
    d
  | None ->
    Obs.Metrics.incr cache_misses;
    let d = Obs.Trace.with_span ~cat:"compile" "decode" (fun () -> decode p) in
    p.decoded <- Some d;
    d

(* Index of [name] in [d.dfuncs]; raises like [Isa.find_func]. *)
let func_index (d : Isa.decoded) name =
  match Hashtbl.find_opt d.dindex name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Isa.find_func: unknown function %s" name)
