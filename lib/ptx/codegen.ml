(* Code generation from Bitc IR to the PTX-like ISA: the NVPTX-backend +
   ptxas stage of Figure 2.  Registers map one-to-one from IR virtual
   registers; allocas become per-thread frame offsets; shared allocas
   become static per-CTA offsets; conditional branches are annotated
   with their reconvergence pc (immediate post-dominator). *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let operand_of_value : Bitc.Value.t -> Isa.operand = function
  | Bitc.Value.Reg r -> Isa.R r
  | Bitc.Value.Int i -> Isa.I i
  | Bitc.Value.Float f -> Isa.F f
  | Bitc.Value.Bool b -> Isa.I (if b then 1 else 0)
  | Bitc.Value.Null -> Isa.I 0

let space_of = function
  | Bitc.Types.Global -> Isa.Global
  | Bitc.Types.Shared -> Isa.Shared
  | Bitc.Types.Local -> Isa.Local
  | Bitc.Types.Generic -> fail "Codegen: load/store through generic pointer"

let align offset size = (offset + size - 1) / size * size

type state = {
  bfunc : Bitc.Func.t;
  mutable next_reg : int;
  buf : Isa.inst option array ref; (* None marks a to-be-patched branch slot *)
  mutable len : int;
  mutable locs : Bitc.Loc.t list; (* reversed *)
  mutable blocks_of : string list; (* reversed *)
  mutable patches : (int * patch) list;
  mutable local_off : int;
  mutable shared_off : int;
  shared_base : int; (* module-wide shared offset at which this fn starts *)
}

and patch =
  | P_bra of string
  | P_cond of { pr : int; t : string; f : string; reconv : string option }

let fresh st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

let emit st ~loc ~block inst =
  let buf = !(st.buf) in
  let buf =
    if st.len >= Array.length buf then begin
      let bigger = Array.make (2 * Array.length buf + 8) None in
      Array.blit buf 0 bigger 0 st.len;
      st.buf := bigger;
      bigger
    end
    else buf
  in
  buf.(st.len) <- inst;
  st.len <- st.len + 1;
  st.locs <- loc :: st.locs;
  st.blocks_of <- block :: st.blocks_of

let value_width (ty : Bitc.Types.ty) = Bitc.Types.size_of ty

let gen_instr st ~block (i : Bitc.Instr.t) =
  let f = st.bfunc in
  let v = operand_of_value in
  let emit = emit st ~loc:i.loc ~block in
  let dst () =
    match i.result with
    | Some r -> r
    | None -> fail "Codegen: instruction missing result register"
  in
  match i.kind with
  | Bitc.Instr.Alloca (ty, n) ->
    let size = Bitc.Types.size_of ty in
    st.local_off <- align st.local_off size;
    let off = st.local_off in
    st.local_off <- st.local_off + (size * n);
    emit (Some (Isa.Mov { dst = dst (); src = Isa.I off }))
  | Bitc.Instr.Shared_alloca (ty, n) ->
    let size = Bitc.Types.size_of ty in
    st.shared_off <- align st.shared_off size;
    let off = st.shared_base + st.shared_off in
    st.shared_off <- st.shared_off + (size * n);
    emit (Some (Isa.Mov { dst = dst (); src = Isa.I off }))
  | Bitc.Instr.Load ptr ->
    let pty = Bitc.Func.value_ty f ptr in
    let space = space_of (match pty with Bitc.Types.Ptr (_, s) -> s | _ -> fail "load") in
    emit
      (Some
         (Isa.Ld
            { dst = dst (); space; cop = Isa.Ca; addr = v ptr;
              width = value_width i.ty; fl = Bitc.Types.is_float i.ty; pred = None }))
  | Bitc.Instr.Store { ptr; value; value_ty } ->
    let pty = Bitc.Func.value_ty f ptr in
    let space = space_of (match pty with Bitc.Types.Ptr (_, s) -> s | _ -> fail "store") in
    emit
      (Some
         (Isa.St
            { space; cop = Isa.Ca; addr = v ptr; src = v value;
              width = value_width value_ty; fl = Bitc.Types.is_float value_ty;
              pred = None }))
  | Bitc.Instr.Gep { base; index; elem } ->
    let size = Bitc.Types.size_of elem in
    if size = 1 then
      emit (Some (Isa.Iop { op = Bitc.Instr.Add; dst = dst (); a = v base; b = v index }))
    else begin
      let tmp = fresh st in
      emit (Some (Isa.Iop { op = Bitc.Instr.Mul; dst = tmp; a = v index; b = Isa.I size }));
      emit (Some (Isa.Iop { op = Bitc.Instr.Add; dst = dst (); a = v base; b = Isa.R tmp }))
    end
  | Bitc.Instr.Binop (op, ty, a, b) ->
    if Bitc.Types.is_float ty then
      emit (Some (Isa.Fop { op; dst = dst (); a = v a; b = v b }))
    else emit (Some (Isa.Iop { op; dst = dst (); a = v a; b = v b }))
  | Bitc.Instr.Unop (op, a) ->
    let fl = Bitc.Types.is_float (Bitc.Func.value_ty f a) in
    emit (Some (Isa.Unop { op; dst = dst (); a = v a; fl }))
  | Bitc.Instr.Cmp (op, ty, a, b) ->
    emit
      (Some (Isa.Setp { op; dst = dst (); a = v a; b = v b; fl = Bitc.Types.is_float ty }))
  | Bitc.Instr.Select (c, a, b) ->
    emit (Some (Isa.Selp { dst = dst (); cond = v c; a = v a; b = v b }))
  | Bitc.Instr.Call { callee; args } ->
    if Passes.Hooks.is_hook callee then
      emit (Some (Isa.Hook { name = callee; args = List.map v args }))
    else emit (Some (Isa.Call { callee; args = List.map v args; dst = i.result }))
  | Bitc.Instr.Special which -> emit (Some (Isa.Sreg { dst = dst (); which }))
  | Bitc.Instr.Sync -> emit (Some Isa.Bar)
  | Bitc.Instr.Atomic_add { ptr; value; value_ty } ->
    emit
      (Some
         (Isa.Atom
            { dst = dst (); addr = v ptr; src = v value;
              width = value_width value_ty; fl = Bitc.Types.is_float value_ty }))
  | Bitc.Instr.Ptr_cast p -> emit (Some (Isa.Mov { dst = dst (); src = v p }))

let gen_func ~shared_base (bfunc : Bitc.Func.t) : Isa.func * int =
  let st =
    {
      bfunc;
      next_reg = bfunc.next_reg;
      buf = ref (Array.make 64 None);
      len = 0;
      locs = [];
      blocks_of = [];
      patches = [];
      local_off = 0;
      shared_off = 0;
      shared_base;
    }
  in
  let cfg = Bitc.Cfg.build bfunc in
  let ipdom = Bitc.Cfg.post_dominators cfg in
  let block_start = Hashtbl.create 16 in
  List.iter
    (fun (b : Bitc.Block.t) ->
      Hashtbl.replace block_start b.name st.len;
      List.iter (gen_instr st ~block:b.name) b.instrs;
      let term_loc =
        match List.rev b.instrs with i :: _ -> i.Bitc.Instr.loc | [] -> Bitc.Loc.none
      in
      let emit_patch p =
        st.patches <- (st.len, p) :: st.patches;
        emit st ~loc:term_loc ~block:b.name None
      in
      match Bitc.Block.terminator b with
      | Bitc.Instr.Br target -> emit_patch (P_bra target)
      | Bitc.Instr.Cond_br (c, t, f) -> (
        let reconv = Bitc.Cfg.reconvergence_point cfg ipdom b.name in
        match c with
        | Bitc.Value.Reg pr -> emit_patch (P_cond { pr; t; f; reconv })
        | Bitc.Value.Bool cv -> emit_patch (P_bra (if cv then t else f))
        | _ -> fail "Codegen: conditional branch on non-boolean")
      | Bitc.Instr.Ret vopt ->
        emit st ~loc:term_loc ~block:b.name
          (Some (Isa.Ret (Option.map operand_of_value vopt))))
    bfunc.blocks;
  (* Patch branch targets now that all block start pcs are known. *)
  let resolve label =
    match Hashtbl.find_opt block_start label with
    | Some pc -> pc
    | None -> fail "Codegen: unresolved label %s in %s" label bfunc.name
  in
  let buf = !(st.buf) in
  List.iter
    (fun (pc, patch) ->
      buf.(pc) <-
        (match patch with
        | P_bra target -> Some (Isa.Bra { target = resolve target })
        | P_cond { pr; t; f; reconv } ->
          Some
            (Isa.Cond_bra
               { pr; if_true = resolve t; if_false = resolve f;
                 reconv = Option.map resolve reconv })))
    st.patches;
  let body =
    Array.init st.len (fun i ->
        match buf.(i) with
        | Some inst -> inst
        | None -> fail "Codegen: unpatched instruction at pc %d" i)
  in
  let locs = Array.of_list (List.rev st.locs) in
  let block_of_pc = Array.of_list (List.rev st.blocks_of) in
  ( {
      Isa.name = bfunc.name;
      arity = Bitc.Func.arity bfunc;
      nregs = st.next_reg;
      body;
      locs;
      block_of_pc;
      local_bytes = align st.local_off 8;
      shared_bytes = align st.shared_off 8;
      is_kernel = Bitc.Func.is_kernel bfunc;
    },
    st.shared_off )

(* Lower a whole device module.  Host functions are not device code and
   are skipped (they are modeled by the host runtime). *)
let gen_module (m : Bitc.Irmod.t) : Isa.prog =
  let shared_base = ref 0 in
  let funcs =
    List.filter_map
      (fun (f : Bitc.Func.t) ->
        match f.fkind with
        | Bitc.Func.Host -> None
        | Bitc.Func.Kernel | Bitc.Func.Device ->
          let pf, shared_used = gen_func ~shared_base:!shared_base f in
          shared_base := !shared_base + align shared_used 8;
          Some (f.name, pf))
      m.funcs
  in
  Isa.make_prog ~module_name:m.name funcs
