(* The PTX-like target ISA.  It is a linear, register-based instruction
   set with explicit memory spaces and cache operators (ld.ca / ld.cg),
   which is the level at which the paper's horizontal cache bypassing
   (Listing 5) operates.  Branches carry their SIMT reconvergence point,
   computed from the IR's immediate post-dominators at code generation
   time — the same policy real hardware implements with its divergence
   stack. *)

type operand =
  | R of int (* virtual register *)
  | I of int (* integer immediate *)
  | F of float (* float immediate *)

type space =
  | Global
  | Shared (* per-CTA scratchpad; not L1/L2 traffic *)
  | Local (* per-thread frame; register-file cost, not traced *)

(* PTX cache operators on global loads: [Ca] caches at L1 (default),
   [Cg] bypasses L1 and caches at L2. *)
type cache_op = Ca | Cg

(* [pred] guards execution per thread: [Some (r, b)] runs the instruction
   only in threads where register [r] (0/1) equals [b]. *)
type pred = (int * bool) option

type inst =
  | Mov of { dst : int; src : operand }
  | Iop of { op : Bitc.Instr.binop; dst : int; a : operand; b : operand }
  | Fop of { op : Bitc.Instr.binop; dst : int; a : operand; b : operand }
  | Unop of { op : Bitc.Instr.unop; dst : int; a : operand; fl : bool }
  | Setp of { op : Bitc.Instr.cmp; dst : int; a : operand; b : operand; fl : bool }
  | Selp of { dst : int; cond : operand; a : operand; b : operand }
  | Ld of {
      dst : int;
      space : space;
      cop : cache_op;
      addr : operand;
      width : int; (* bytes: 1, 4 or 8 *)
      fl : bool; (* float-typed destination *)
      pred : pred;
    }
  | St of {
      space : space;
      cop : cache_op;
      addr : operand;
      src : operand;
      width : int;
      fl : bool;
      pred : pred;
    }
  | Atom of { dst : int; addr : operand; src : operand; width : int; fl : bool }
  | Bra of { target : int } (* unconditional *)
  | Cond_bra of {
      pr : int; (* predicate register *)
      if_true : int;
      if_false : int;
      reconv : int option; (* immediate post-dominator pc *)
    }
  | Call of { callee : string; args : operand list; dst : int option }
  | Ret of operand option
  | Bar (* CTA-wide barrier *)
  | Sreg of { dst : int; which : Bitc.Instr.special }
  | Hook of { name : string; args : operand list } (* profiler hook call *)

(* Debug location per instruction, parallel to the body array. *)
type func = {
  name : string;
  arity : int; (* parameters arrive in registers 0..arity-1 *)
  nregs : int;
  body : inst array;
  locs : Bitc.Loc.t array;
  block_of_pc : string array; (* enclosing IR block name, for reporting *)
  local_bytes : int; (* per-thread frame size *)
  shared_bytes : int; (* per-CTA static shared memory this fn declares *)
  is_kernel : bool;
}

(* ----- predecoded form -----

   The simulator never interprets [inst] directly: [Decode] lowers each
   function once into flat descriptor arrays whose operands are
   pre-split (register index vs. immediate), whose call targets are
   interned as indices into the program's function table, and whose
   reconvergence points are resolved.  The types live here so the
   decoded program can be cached on the [prog] itself. *)

(* Decoded operand: [okind] selects a register (0, index in [onum]),
   an integer immediate (1, value in [onum]) or a float immediate
   (2, [onum] indexes the function's float-immediate pool — floats are
   pooled so this record stays all-int and unboxed). *)
type dop = { okind : int; onum : int }

(* Decoded instrumentation hook: the hook name's string match happens
   once at decode time, not per dynamic event. *)
type dhook =
  | DH_mem of { addr : dop; bits : dop; kind : dop }
  | DH_bb of { bb_id : dop }
  | DH_arith of { code : dop; a : dop; b : dop }
  | DH_call of { callsite : dop; push : bool }
  | DH_shared of { addr : dop; bits : dop; kind : dop }
  | DH_bar of { bar_id : dop }
  | DH_bad of { hname : string } (* unknown hook: traps when executed *)

(* Decoded instruction, parallel to [inst] pc-for-pc.  Memory spaces are
   split into distinct constructors, predicates are unpacked ([pr] < 0
   means unpredicated), [rpc] carries the resolved reconvergence pc and
   [callee] indexes the decoded function table. *)
type dinst =
  | DMov of { dst : int; src : dop }
  | DIop of { op : Bitc.Instr.binop; dst : int; a : dop; b : dop }
  | DFop of { op : Bitc.Instr.binop; dst : int; a : dop; b : dop }
  | DUnop of { op : Bitc.Instr.unop; dst : int; a : dop; fl : bool; sfu : bool }
  | DSetp of { op : Bitc.Instr.cmp; dst : int; a : dop; b : dop; fl : bool }
  | DSelp of { dst : int; cond : dop; a : dop; b : dop }
  | DLd_local of { dst : int; addr : dop; width : int; fl : bool; pr : int; pexpect : bool }
  | DLd_shared of { dst : int; addr : dop; width : int; fl : bool; pr : int; pexpect : bool }
  | DLd_global of {
      dst : int;
      cg : bool; (* bypass L1 *)
      addr : dop;
      width : int;
      fl : bool;
      pr : int;
      pexpect : bool;
    }
  | DSt_local of { addr : dop; src : dop; width : int; fl : bool; pr : int; pexpect : bool }
  | DSt_shared of { addr : dop; src : dop; width : int; fl : bool; pr : int; pexpect : bool }
  | DSt_global of { addr : dop; src : dop; width : int; fl : bool; pr : int; pexpect : bool }
  | DAtom of { dst : int; addr : dop; src : dop; width : int; fl : bool }
  | DBra of { target : int }
  | DCond_bra of { pr : int; if_true : int; if_false : int; rpc : int }
  | DCall of { callee : int; args : dop array; ret_dst : int option }
  | DRet of { v : dop option }
  | DBar
  | DSreg of { dst : int; which : Bitc.Instr.special }
  | DHook of { hook : dhook }

type dfunc = {
  fsrc : func; (* metadata (name, locs, …) stays on the source func *)
  dbody : dinst array;
  (* register sources read per pc, for the issue scoreboard; the empty
     array is shared *)
  dsrcs : int array array;
  fimms : float array; (* float-immediate pool *)
  dnregs : int; (* frame register count, >= 1 *)
}

type decoded = {
  dfuncs : dfunc array;
  dnames : string array;
  dindex : (string, int) Hashtbl.t;
}

type prog = {
  module_name : string;
  funcs : (string * func) list;
  (* name -> func index; [find_func] on the launch and call paths must
     not scan the association list *)
  index : (string, func) Hashtbl.t;
  (* decode cache, filled by [Decode.of_prog] on first launch.  The
     decoded value is immutable, so the benign race when two domains
     decode the same prog concurrently only duplicates work. *)
  mutable decoded : decoded option;
}

(* The only constructor: every rewrite (codegen, bypass transforms)
   must rebuild the index and drop any stale decode. *)
let make_prog ~module_name funcs =
  let index = Hashtbl.create (max 4 (List.length funcs)) in
  List.iter (fun (name, f) -> Hashtbl.replace index name f) funcs;
  { module_name; funcs; index; decoded = None }

let find_func prog name =
  match Hashtbl.find_opt prog.index name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Isa.find_func: unknown function %s" name)

let kernels prog = List.filter (fun (_, f) -> f.is_kernel) prog.funcs

(* Total static shared memory a launch of [kernel] needs: its own
   declarations plus those of every function in the module it may call
   (conservative, resolved statically). *)
let shared_bytes_for_launch prog _kernel =
  List.fold_left (fun acc (_, f) -> acc + f.shared_bytes) 0 prog.funcs

let operand_to_string = function
  | R r -> Printf.sprintf "%%r%d" r
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%h" f

let space_to_string = function Global -> "global" | Shared -> "shared" | Local -> "local"
let cop_to_string = function Ca -> "ca" | Cg -> "cg"
