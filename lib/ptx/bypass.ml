(* Horizontal cache bypassing at PTX level (Section 4.2-(D), Listing 5).

   The transformation prepends a small prologue to the kernel that
   computes the warp id within the CTA and a predicate
   [warp_id < num_warps_to_cache], then splits every global [ld.ca] into
   a pair of complementarily-predicated loads:

       @%p  ld.global.ca  %r, [addr];
       @!%p ld.global.cg  %r, [addr];

   Because the warp id is uniform across a warp, exactly one of the two
   issues real transactions per warp; the other is fully masked.  Warps
   beyond the threshold bypass L1 and go straight to L2, which is the
   paper's mechanism for relieving L1 thrashing and MSHR congestion. *)

let warp_size = 32

(* Rewrite one kernel so that only warps with id < [warps_to_cache]
   access the L1 cache.  Functions it calls are left untouched: the
   paper's horizontal scheme works at per-kernel granularity; the
   overwhelming share of global loads sits in the kernel body. *)
let rewrite_kernel (f : Isa.func) ~warps_to_cache : Isa.func =
  if not f.is_kernel then invalid_arg "Bypass.rewrite_kernel: not a kernel";
  let r_warp = f.nregs in
  let r_pred = f.nregs + 1 in
  let nregs = f.nregs + 2 in
  let prologue =
    [|
      Isa.Sreg { dst = r_warp; which = Bitc.Instr.Warpid };
      Isa.Setp
        { op = Bitc.Instr.Lt; dst = r_pred; a = Isa.R r_warp;
          b = Isa.I warps_to_cache; fl = false };
    |]
  in
  let shift = Array.length prologue in
  let adjust_target t = t + shift in
  let rewritten =
    Array.to_list f.body
    |> List.concat_map (fun inst ->
           match inst with
           | Isa.Ld ({ space = Isa.Global; cop = Isa.Ca; pred = None; _ } as ld) ->
             [ Isa.Ld { ld with pred = Some (r_pred, true) };
               Isa.Ld { ld with cop = Isa.Cg; pred = Some (r_pred, false) } ]
           | inst -> [ inst ])
  in
  (* Splitting loads moves pcs; build the old-pc -> new-pc map, then fix
     every branch target. *)
  let old_len = Array.length f.body in
  let new_pc = Array.make (old_len + 1) 0 in
  let counted = ref 0 in
  Array.iteri
    (fun old_pc inst ->
      new_pc.(old_pc) <- !counted;
      match inst with
      | Isa.Ld { space = Isa.Global; cop = Isa.Ca; pred = None; _ } ->
        counted := !counted + 2
      | _ -> incr counted)
    f.body;
  new_pc.(old_len) <- !counted;
  let body =
    List.map
      (fun inst ->
        match inst with
        | Isa.Bra { target } -> Isa.Bra { target = adjust_target new_pc.(target) }
        | Isa.Cond_bra { pr; if_true; if_false; reconv } ->
          Isa.Cond_bra
            { pr;
              if_true = adjust_target new_pc.(if_true);
              if_false = adjust_target new_pc.(if_false);
              reconv = Option.map (fun r -> adjust_target new_pc.(r)) reconv }
        | inst -> inst)
      rewritten
  in
  let body = Array.append prologue (Array.of_list body) in
  (* Metadata arrays expand in lock-step with the body. *)
  let expand : 'a. 'a array -> 'a -> 'a array =
   fun arr fill ->
    let out = Array.make (Array.length body) fill in
    let j = ref shift in
    Array.iteri
      (fun old_pc inst ->
        match inst with
        | Isa.Ld { space = Isa.Global; cop = Isa.Ca; pred = None; _ } ->
          out.(!j) <- arr.(old_pc);
          out.(!j + 1) <- arr.(old_pc);
          j := !j + 2
        | _ ->
          out.(!j) <- arr.(old_pc);
          incr j)
      f.body;
    out
  in
  {
    f with
    nregs;
    body;
    locs = expand f.locs Bitc.Loc.none;
    block_of_pc = expand f.block_of_pc "bypass.prologue";
  }

(* Vertical bypassing (Xie et al. [55], Section 4.2-(D)): flip chosen
   load *sites* from ld.ca to ld.cg for every warp.  [should_bypass]
   selects sites by their source location (as produced by the
   per-site reuse analysis). *)
let rewrite_kernel_vertical (f : Isa.func) ~should_bypass : Isa.func =
  let body =
    Array.mapi
      (fun pc inst ->
        match inst with
        | Isa.Ld ({ space = Isa.Global; cop = Isa.Ca; _ } as ld)
          when should_bypass f.locs.(pc) ->
          Isa.Ld { ld with cop = Isa.Cg }
        | inst -> inst)
      f.body
  in
  { f with body }

let rewrite_prog_vertical (p : Isa.prog) ~should_bypass : Isa.prog =
  Isa.make_prog ~module_name:p.module_name
    (List.map
       (fun (name, f) ->
         if f.Isa.is_kernel then (name, rewrite_kernel_vertical f ~should_bypass)
         else (name, f))
       p.funcs)

(* Apply the rewrite to one kernel of a program. *)
let rewrite_prog (p : Isa.prog) ~kernel ~warps_to_cache : Isa.prog =
  let found = ref false in
  let funcs =
    List.map
      (fun (name, f) ->
        if name = kernel then begin
          found := true;
          (name, rewrite_kernel f ~warps_to_cache)
        end
        else (name, f))
      p.funcs
  in
  if not !found then invalid_arg (Printf.sprintf "Bypass.rewrite_prog: no kernel %s" kernel);
  Isa.make_prog ~module_name:p.module_name funcs
