(* Conservative source-to-source loop unrolling for MiniCUDA — the
   unroll-factor knob of the tuning sweeps (`advisor evaluate` /
   `lib/tune`).

   Only the innermost loops of the exact shape

     for (int K = INIT; K < BOUND; K = K + 1) { BODY }

   are rewritten, and only when BODY is simple enough that duplicating
   it is obviously meaning-preserving: no nested [for], no local
   declarations (duplication would re-declare), no control keywords
   that could leave the loop, and no other assignment to K.  The
   rewrite keeps the original loop structure and handles any remainder
   inline with guarded copies, so it is exact for every trip count:

     for (int K = INIT; K < BOUND; K = K + 1) {
       BODY
       if (K + 1 < BOUND) { K = K + 1;
         BODY
         ... (factor - 1 guarded copies) ...
       }
     }

   Working on source text (rather than the AST) is deliberate: the
   transformed variant is submitted through the same front door as any
   user-supplied kernel source, exercising the full compile path, and
   the variant text itself is the content-addressed cache identity. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws src i =
  let n = String.length src in
  let rec go i = if i < n && is_space src.[i] then go (i + 1) else i in
  go i

(* [src.[i..]] starts the token [word] (not a prefix of a longer
   identifier on either side). *)
let token_at src i word =
  let n = String.length src and w = String.length word in
  i + w <= n
  && String.sub src i w = word
  && (i = 0 || not (is_ident_char src.[i - 1]))
  && (i + w >= n || not (is_ident_char src.[i + w]))

let contains_token src word =
  let n = String.length src in
  let rec go i = i < n && (token_at src i word || go (i + 1)) in
  go 0

(* Span of a balanced [(...)] or [{...}] starting at [i]; returns the
   index one past the closing delimiter, or None when unbalanced. *)
let balanced_span src i ~open_c ~close_c =
  let n = String.length src in
  let rec go i depth =
    if i >= n then None
    else if src.[i] = open_c then go (i + 1) (depth + 1)
    else if src.[i] = close_c then
      if depth = 1 then Some (i + 1) else go (i + 1) (depth - 1)
    else go (i + 1) depth
  in
  if i < n && src.[i] = open_c then go i 0 else None

(* Split a for-header body (the text between the parens) on its two
   top-level semicolons. *)
let split_header h =
  let n = String.length h in
  let rec go i depth acc cur =
    if i >= n then List.rev (String.concat "" (List.rev cur) :: acc)
    else
      let c = h.[i] in
      if c = '(' || c = '[' then go (i + 1) (depth + 1) acc (String.make 1 c :: cur)
      else if c = ')' || c = ']' then go (i + 1) (depth - 1) acc (String.make 1 c :: cur)
      else if c = ';' && depth = 0 then
        go (i + 1) depth (String.concat "" (List.rev cur) :: acc) []
      else go (i + 1) depth acc (String.make 1 c :: cur)
  in
  go 0 0 [] []

let trim = String.trim

(* "int K = INIT" -> Some (K, INIT) *)
let parse_init s =
  let s = trim s in
  if not (token_at s 0 "int") then None
  else
    let i = skip_ws s 3 in
    let n = String.length s in
    let rec ident_end j = if j < n && is_ident_char s.[j] then ident_end (j + 1) else j in
    let e = ident_end i in
    if e = i then None
    else
      let var = String.sub s i (e - i) in
      let j = skip_ws s e in
      if j < n && s.[j] = '=' && (j + 1 >= n || s.[j + 1] <> '=') then
        Some (var, trim (String.sub s (j + 1) (n - j - 1)))
      else None

(* "K < BOUND" -> Some BOUND (strict <, matching [var] only) *)
let parse_cond ~var s =
  let s = trim s in
  let v = String.length var in
  if not (token_at s 0 var) then None
  else
    let j = skip_ws s v in
    let n = String.length s in
    if j < n && s.[j] = '<' && (j + 1 >= n || (s.[j + 1] <> '=' && s.[j + 1] <> '<'))
    then Some (trim (String.sub s (j + 1) (n - j - 1)))
    else None

(* normalized-whitespace equality with "K = K + 1" *)
let is_incr ~var s =
  let squash s =
    String.concat " "
      (List.filter (fun w -> w <> "")
         (String.split_on_char ' '
            (String.map (fun c -> if is_space c then ' ' else c) s)))
  in
  squash s = Printf.sprintf "%s = %s + 1" var var

(* A body copy is safe when it cannot leave the loop, declares nothing,
   contains no nested loop and never writes the induction variable. *)
let body_safe ~var body =
  let bad =
    [ "for"; "while"; "return"; "break"; "continue"; "int"; "float"; "__syncthreads" ]
  in
  (not (List.exists (contains_token body) bad))
  &&
  (* no assignment to [var]: find each token occurrence and reject when
     followed by '=' (but not '==') *)
  let n = String.length body in
  let rec ok i =
    if i >= n then true
    else if token_at body i var then begin
      let j = skip_ws body (i + String.length var) in
      if j < n && body.[j] = '=' && (j + 1 >= n || body.[j + 1] <> '=') then false
      else ok (i + String.length var)
    end
    else ok (i + 1)
  in
  ok 0

(* The guarded-copy expansion of one matched loop. *)
let expand ~factor ~var ~init ~bound ~body =
  let buf = Buffer.create (String.length body * factor + 256) in
  Buffer.add_string buf
    (Printf.sprintf "for (int %s = %s; %s < %s; %s = %s + 1) {" var init var
       bound var var);
  Buffer.add_string buf body;
  for _ = 2 to factor do
    Buffer.add_string buf
      (Printf.sprintf "\nif (%s + 1 < %s) { %s = %s + 1;" var bound var var);
    Buffer.add_string buf body
  done;
  for _ = 2 to factor do
    Buffer.add_string buf "}"
  done;
  Buffer.add_string buf "\n}";
  Buffer.contents buf

(* Unroll every innermost matching loop of [src] by [factor].  Returns
   the rewritten source and how many loops were rewritten (0 = returned
   unchanged).  Raises [Invalid_argument] when [factor < 2]. *)
let unroll ~factor src =
  if factor < 2 then invalid_arg "Unroll.unroll: factor must be >= 2";
  let n = String.length src in
  let out = Buffer.create (n * 2) in
  let count = ref 0 in
  let ( let* ) o f = match o with Some v -> f v | None -> None in
  let rec go i =
    if i >= n then ()
    else if token_at src i "for" then begin
      match
        let p = skip_ws src (i + 3) in
        let* close = balanced_span src p ~open_c:'(' ~close_c:')' in
        let header = String.sub src (p + 1) (close - p - 2) in
        let* init_s, cond_s, step_s =
          match split_header header with
          | [ a; b; c ] -> Some (a, b, c)
          | _ -> None
        in
        let* var, init = parse_init init_s in
        let* bound = parse_cond ~var cond_s in
        let* () = if is_incr ~var step_s then Some () else None in
        let b = skip_ws src close in
        let* bend = balanced_span src b ~open_c:'{' ~close_c:'}' in
        let body = String.sub src (b + 1) (bend - b - 2) in
        let* () = if body_safe ~var body then Some () else None in
        Some (bend, expand ~factor ~var ~init ~bound ~body)
      with
      | Some (next, text) ->
        incr count;
        Buffer.add_string out text;
        go next
      | None ->
        Buffer.add_string out "for";
        go (i + 3)
    end
    else begin
      Buffer.add_char out src.[i];
      go (i + 1)
    end
  in
  go 0;
  (Buffer.contents out, !count)
