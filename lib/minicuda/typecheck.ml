(* MiniCUDA typechecker: elaborates the raw AST into the typed AST,
   resolving builtins and intrinsics, inserting implicit int->float
   promotions, and rejecting ill-typed programs with positioned
   errors. *)

exception Error of { file : string; pos : Ast.pos; msg : string }

type binding =
  | Local of Ast.ty (* alloca-backed: parameters and declared locals *)
  | Shared of Ast.ty (* __shared__ array of this element type *)

type env = {
  file : string;
  funcs : (string, Ast.ty list * Ast.ty) Hashtbl.t;
  mutable scopes : (string, binding) Hashtbl.t list;
}

let err env pos fmt =
  Printf.ksprintf (fun msg -> raise (Error { file = env.file; pos; msg })) fmt

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> invalid_arg "Typecheck.pop_scope: empty"

let lookup env name =
  List.find_map (fun scope -> Hashtbl.find_opt scope name) env.scopes

(* Shadowing an outer binding is legal but almost always an accident in
   kernel code; it used to pass silently — now it is counted and
   reported through the leveled logger. *)
let m_warnings = Obs.Metrics.counter "frontend.warnings"

let bind env pos name binding =
  match env.scopes with
  | scope :: outer ->
    if Hashtbl.mem scope name then err env pos "redeclaration of %s" name;
    if List.exists (fun s -> Hashtbl.mem s name) outer then begin
      Obs.Metrics.incr m_warnings;
      Obs.Log.warn "minicuda" "%s:%d:%d: declaration of %s shadows an outer binding"
        env.file pos.Ast.line pos.Ast.col name
    end;
    Hashtbl.replace scope name binding
  | [] -> invalid_arg "Typecheck.bind: no scope"

let special_of_builtin env pos obj field : Bitc.Instr.special =
  match obj, field with
  | "threadIdx", "x" -> Tid_x
  | "threadIdx", "y" -> Tid_y
  | "blockIdx", "x" -> Ctaid_x
  | "blockIdx", "y" -> Ctaid_y
  | "blockDim", "x" -> Ntid_x
  | "blockDim", "y" -> Ntid_y
  | "gridDim", "x" -> Nctaid_x
  | "gridDim", "y" -> Nctaid_y
  | _ -> err env pos "unknown builtin %s.%s" obj field

let is_numeric = function Ast.Int | Ast.Float -> true | _ -> false

(* Implicit promotion: int -> float only. *)
let coerce env (e : Tast.expr) target =
  if e.ty = target then e
  else
    match e.ty, target with
    | Ast.Int, Ast.Float -> { Tast.e = Tast.Cast (Ast.Float, e); ty = Ast.Float; pos = e.pos }
    | _ ->
      err env e.pos "type mismatch: expected %s, found %s" (Ast.ty_to_string target)
        (Ast.ty_to_string e.ty)

(* Unify two numeric operands, promoting int to float when mixed. *)
let unify_numeric env pos a b =
  match a.Tast.ty, b.Tast.ty with
  | x, y when x = y -> (a, b, x)
  | Ast.Int, Ast.Float -> (coerce env a Ast.Float, b, Ast.Float)
  | Ast.Float, Ast.Int -> (a, coerce env b Ast.Float, Ast.Float)
  | x, y ->
    err env pos "operands have incompatible types %s and %s" (Ast.ty_to_string x)
      (Ast.ty_to_string y)

let rec check_expr env (e : Ast.expr) : Tast.expr =
  let pos = e.pos in
  match e.e with
  | Ast.Int_lit i -> { e = Tast.Int_lit i; ty = Ast.Int; pos }
  | Ast.Float_lit f -> { e = Tast.Float_lit f; ty = Ast.Float; pos }
  | Ast.Bool_lit b -> { e = Tast.Bool_lit b; ty = Ast.Bool; pos }
  | Ast.Builtin (obj, field) ->
    { e = Tast.Builtin (special_of_builtin env pos obj field); ty = Ast.Int; pos }
  | Ast.Var name -> (
    match lookup env name with
    | Some (Local ty) ->
      { e = Tast.Rvalue { l = Tast.Lvar name; lty = ty; lpos = pos }; ty; pos }
    | Some (Shared ty) -> { e = Tast.Shared_ref name; ty = Ast.Ptr ty; pos }
    | None -> err env pos "unbound variable %s" name)
  | Ast.Index (base, idx) ->
    let lv = check_index env pos base idx in
    { e = Tast.Rvalue lv; ty = lv.lty; pos }
  | Ast.Deref p ->
    let lv = check_deref env pos p in
    { e = Tast.Rvalue lv; ty = lv.lty; pos }
  | Ast.Unop (Ast.Neg, a) ->
    let a = check_expr env a in
    if not (is_numeric a.ty) then err env pos "unary - requires int or float";
    { e = Tast.Unop (`Neg, a); ty = a.ty; pos }
  | Ast.Unop (Ast.LNot, a) ->
    let a = check_expr env a in
    if a.ty <> Ast.Bool then err env pos "! requires bool";
    { e = Tast.Unop (`LNot, a); ty = Ast.Bool; pos }
  | Ast.Unop (Ast.AddrOf, inner) -> (
    match inner.e with
    | Ast.Var name -> (
      match lookup env name with
      | Some (Local ty) ->
        { e = Tast.Addr_of { l = Tast.Lvar name; lty = ty; lpos = pos };
          ty = Ast.Ptr ty; pos }
      | Some (Shared ty) -> { e = Tast.Shared_ref name; ty = Ast.Ptr ty; pos }
      | None -> err env pos "unbound variable %s" name)
    | Ast.Index (base, idx) ->
      let lv = check_index env pos base idx in
      { e = Tast.Addr_of lv; ty = Ast.Ptr lv.lty; pos }
    | Ast.Deref p -> check_expr env p
    | _ -> err env pos "& requires an lvalue")
  | Ast.Binop ((Ast.LAnd | Ast.LOr) as op, a, b) ->
    let a = check_expr env a and b = check_expr env b in
    if a.ty <> Ast.Bool || b.ty <> Ast.Bool then
      err env pos "&&/|| require bool operands";
    let which = if op = Ast.LAnd then `And else `Or in
    { e = Tast.Short_circuit (which, a, b); ty = Ast.Bool; pos }
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, a, b) ->
    let a = check_expr env a and b = check_expr env b in
    let a, b, _ = unify_numeric env pos a b in
    { e = Tast.Cmp (op, a, b); ty = Ast.Bool; pos }
  | Ast.Binop ((Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr | Ast.Rem) as op, a, b)
    ->
    let a = check_expr env a and b = check_expr env b in
    if a.ty <> Ast.Int || b.ty <> Ast.Int then
      err env pos "%s requires int operands"
        (match op with
        | Ast.BAnd -> "&"
        | Ast.BOr -> "|"
        | Ast.BXor -> "^"
        | Ast.Shl -> "<<"
        | Ast.Shr -> ">>"
        | _ -> "%");
    { e = Tast.Binop (op, a, b); ty = Ast.Int; pos }
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) -> (
    let a = check_expr env a and b = check_expr env b in
    (* Pointer arithmetic: ptr + int / ptr - int. *)
    match a.ty, op with
    | Ast.Ptr _, (Ast.Add | Ast.Sub) when b.ty = Ast.Int ->
      { e = Tast.Binop (op, a, b); ty = a.ty; pos }
    | _ ->
      let a, b, ty = unify_numeric env pos a b in
      { e = Tast.Binop (op, a, b); ty; pos })
  | Ast.Ternary (c, a, b) ->
    let c = check_expr env c in
    if c.ty <> Ast.Bool then err env pos "ternary condition must be bool";
    let a = check_expr env a and b = check_expr env b in
    let a, b, ty = unify_numeric env pos a b in
    { e = Tast.Ternary (c, a, b); ty; pos }
  | Ast.Cast (ty, a) -> (
    let a = check_expr env a in
    match ty, a.ty with
    | t, u when t = u -> a
    | Ast.Float, Ast.Int | Ast.Int, Ast.Float | Ast.Int, Ast.Bool ->
      { e = Tast.Cast (ty, a); ty; pos }
    | Ast.Ptr _, Ast.Ptr _ -> { e = Tast.Cast (ty, a); ty; pos }
    | _ ->
      err env pos "cannot cast %s to %s" (Ast.ty_to_string a.ty) (Ast.ty_to_string ty))
  | Ast.Call (name, args) -> check_call env pos name args

and check_index env pos base idx : Tast.lvalue =
  let base = check_expr env base in
  let idx = check_expr env idx in
  (match base.ty with
  | Ast.Ptr _ -> ()
  | t -> err env pos "cannot index a value of type %s" (Ast.ty_to_string t));
  if idx.ty <> Ast.Int then err env pos "array index must be int";
  let elem = match base.ty with Ast.Ptr t -> t | _ -> assert false in
  { l = Tast.Lindex (base, idx); lty = elem; lpos = pos }

and check_deref env pos p : Tast.lvalue =
  let p = check_expr env p in
  match p.ty with
  | Ast.Ptr elem -> { l = Tast.Lderef p; lty = elem; lpos = pos }
  | t -> err env pos "cannot dereference a value of type %s" (Ast.ty_to_string t)

and check_call env pos name args : Tast.expr =
  let args = List.map (check_expr env) args in
  let float_intrinsic intr =
    match args with
    | [ a ] ->
      let a = coerce env a Ast.Float in
      { Tast.e = Tast.Intrinsic (intr, [ a ]); ty = Ast.Float; pos }
    | _ -> err env pos "%s expects one argument" name
  in
  match name, args with
  | "sqrtf", _ -> float_intrinsic Tast.Sqrtf
  | "expf", _ -> float_intrinsic Tast.Expf
  | "logf", _ -> float_intrinsic Tast.Logf
  | "fabsf", _ -> float_intrinsic Tast.Fabsf
  | ("min" | "max"), [ a; b ] ->
    let a, b, ty = unify_numeric env pos a b in
    let intr = if name = "min" then Tast.Min ty else Tast.Max ty in
    { e = Tast.Intrinsic (intr, [ a; b ]); ty; pos }
  | "atomicAdd", [ p; v ] -> (
    match p.ty with
    | Ast.Ptr elem when is_numeric elem ->
      let v = coerce env v elem in
      { e = Tast.Intrinsic (Tast.Atomic_add, [ p; v ]); ty = elem; pos }
    | _ -> err env pos "atomicAdd expects (T*, T) with numeric T")
  | "__syncthreads", [] ->
    { e = Tast.Intrinsic (Tast.Syncthreads, []); ty = Ast.Void; pos }
  | _ -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> err env pos "call to undefined function %s" name
    | Some (param_tys, ret) ->
      if List.length param_tys <> List.length args then
        err env pos "%s expects %d arguments, got %d" name (List.length param_tys)
          (List.length args);
      let args = List.map2 (fun ty a -> coerce env a ty) param_tys args in
      { e = Tast.Call (name, args); ty = ret; pos })

let check_lvalue env (e : Ast.expr) : Tast.lvalue =
  match e.e with
  | Ast.Var name -> (
    match lookup env name with
    | Some (Local ty) -> { l = Tast.Lvar name; lty = ty; lpos = e.pos }
    | Some (Shared _) -> err env e.pos "cannot assign to shared array %s" name
    | None -> err env e.pos "unbound variable %s" name)
  | Ast.Index (base, idx) -> check_index env e.pos base idx
  | Ast.Deref p -> check_deref env e.pos p
  | _ -> err env e.pos "expression is not assignable"

let rec check_stmt env ~ret (st : Ast.stmt) : Tast.stmt =
  let pos = st.spos in
  match st.s with
  | Ast.Decl (ty, name, init) ->
    if ty = Ast.Void then err env pos "cannot declare a void variable";
    let init = Option.map (fun e -> coerce env (check_expr env e) ty) init in
    bind env pos name (Local ty);
    { s = Tast.Decl (ty, name, init); spos = pos }
  | Ast.Shared_decl (ty, name, size) ->
    if size <= 0 then err env pos "shared array %s must have positive size" name;
    bind env pos name (Shared ty);
    { s = Tast.Shared_decl (ty, name, size); spos = pos }
  | Ast.Assign (lhs, rhs) ->
    let lv = check_lvalue env lhs in
    let rhs = coerce env (check_expr env rhs) lv.lty in
    { s = Tast.Assign (lv, rhs); spos = pos }
  | Ast.If (cond, then_b, else_b) ->
    let cond = check_expr env cond in
    if cond.ty <> Ast.Bool then err env pos "if condition must be bool";
    { s = Tast.If (cond, check_block env ~ret then_b, check_block env ~ret else_b);
      spos = pos }
  | Ast.While (cond, body) ->
    let cond = check_expr env cond in
    if cond.ty <> Ast.Bool then err env pos "while condition must be bool";
    { s = Tast.While (cond, check_block env ~ret body); spos = pos }
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    let init = Option.map (check_stmt env ~ret) init in
    let cond =
      Option.map
        (fun c ->
          let c = check_expr env c in
          if c.ty <> Ast.Bool then err env pos "for condition must be bool";
          c)
        cond
    in
    let step = Option.map (check_stmt env ~ret) step in
    let body = check_block env ~ret body in
    pop_scope env;
    { s = Tast.For (init, cond, step, body); spos = pos }
  | Ast.Return None ->
    if ret <> Ast.Void then err env pos "return without a value";
    { s = Tast.Return None; spos = pos }
  | Ast.Return (Some e) ->
    if ret = Ast.Void then err env pos "void function cannot return a value";
    let e = coerce env (check_expr env e) ret in
    { s = Tast.Return (Some e); spos = pos }
  | Ast.Expr_stmt e ->
    let e = check_expr env e in
    { s = Tast.Expr_stmt e; spos = pos }
  | Ast.Block body ->
    { s = Tast.Block (check_block env ~ret body); spos = pos }

and check_block env ~ret body =
  push_scope env;
  let body = List.map (check_stmt env ~ret) body in
  pop_scope env;
  body

let check_func env (f : Ast.func) : Tast.func =
  if f.fkind = Bitc.Func.Kernel && f.ret <> Ast.Void then
    err env f.fpos "__global__ kernel %s must return void" f.name;
  push_scope env;
  List.iter
    (fun (ty, name) ->
      if ty = Ast.Void then err env f.fpos "parameter %s has type void" name;
      bind env f.fpos name (Local ty))
    f.params;
  let body = List.map (check_stmt env ~ret:f.ret) f.body in
  pop_scope env;
  { Tast.fkind = f.fkind; ret = f.ret; name = f.name; params = f.params; body;
    fpos = f.fpos }

let check_program (p : Ast.program) : Tast.program =
  let env = { file = p.file; funcs = Hashtbl.create 16; scopes = [] } in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem env.funcs f.name then
        err env f.fpos "duplicate function %s" f.name;
      Hashtbl.replace env.funcs f.name (List.map fst f.params, f.ret))
    p.funcs;
  { Tast.file = p.file; funcs = List.map (check_func env) p.funcs }
