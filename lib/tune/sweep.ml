(* Canned tuning sweeps: for one workload, generate the standard
   variant tournament over the three knobs the advisor can act on —
   horizontal-bypass fraction (Section 4.2-(D)), CTA width, and
   unroll factor — and run it through {!Evaluate.run_batch}.

   The generated variants deliberately reuse the public knobs (source
   rewrite, [block_x], [bypass_warps]) rather than private hooks, so a
   sweep's per-variant results share cache entries with identical
   variants submitted by hand, and the unrolled sources double as the
   registry's stress workloads. *)

module Common = Workloads.Common

let baseline_name = Evaluate.baseline_spec.Evaluate.sp_name

(* CTA-width candidates: double and halve the app's width, keeping at
   least a quarter-warp and at most the simulator's 1024-thread CTA. *)
let block_candidates (w : Common.t) =
  let bx, by = w.Common.block_dims in
  List.filter
    (fun nbx -> nbx >= 8 && nbx <> bx && nbx * by <= 1024)
    [ bx * 2; bx / 2 ]

let specs_for (w : Common.t) =
  let open Evaluate in
  let blocks =
    List.map
      (fun nbx ->
        { baseline_spec with
          sp_name = Printf.sprintf "block%d" nbx;
          sp_block_x = Some nbx })
      (block_candidates w)
  in
  let bypass =
    let caching = w.Common.warps_per_cta / 2 in
    if caching >= 1 && caching < w.Common.warps_per_cta then
      [ { baseline_spec with
          sp_name = Printf.sprintf "bypass%d" caching;
          sp_bypass_warps = Some caching } ]
    else []
  in
  let unrolled =
    match Minicuda.Unroll.unroll ~factor:4 w.Common.source with
    | _, 0 -> [] (* no loop of the unrollable shape *)
    | src, _ -> [ { baseline_spec with sp_name = "unroll4"; sp_source = Some src } ]
  in
  (baseline_spec :: blocks) @ bypass @ unrolled

(* Run the standard sweep for one workload.  Same result shape as any
   evaluate batch: variants + ranking vs the pristine baseline. *)
let run ?domains ?lookup ?store ?scale ~arch (w : Common.t) =
  Evaluate.run_batch ?domains ?lookup ?store ?scale ~baseline:baseline_name
    ~arch w (specs_for w)
