(* Batch variant evaluation — the tournament backend of `advisor
   evaluate` and the serve daemon's `evaluate` op.

   A batch submits N variants of one application's kernel source (plus
   two non-source knobs: a forced CTA width and horizontal-bypass warp
   count), and gets back per variant: compiled-ok, check-clean (static
   findings + shared-memory races), native cycles, L1 hit rate and the
   memory-divergence degree, plus a ranking of every variant against a
   declared baseline.

   Determinism contract: a variant's result object depends only on
   (app, arch, scale, variant source, knobs) — never on the variant's
   position in the batch, its name, or the other variants.  That makes
   each per-variant result independently content-addressable
   ({!variant_key}), so a resubmitted variant is a cache hit with zero
   simulator launches, and lets the ranking be recomputed from raw
   result bytes regardless of which entries were cached.

   Cost per cold variant: one uninstrumented run (cycles, L1 hit rate)
   plus one instrumented run under memory + control-flow + sharing
   hooks (divergence degree, branch divergence, races).  The bypass
   knob rewrites PTX for the native run only: bypassing changes cache
   behaviour, not divergence or races. *)

module Json = Analysis.Json
module Jsonv = Obs.Jsonv

type spec = {
  sp_name : string; (* stable variant id, unique within a batch *)
  sp_source : string option; (* None = the app's pristine source *)
  sp_block_x : int option; (* forced CTA width (grid-rescaled) *)
  sp_bypass_warps : int option; (* caching warps/CTA, Listing 5 rewrite *)
}

let baseline_spec =
  { sp_name = "base"; sp_source = None; sp_block_x = None; sp_bypass_warps = None }

let resolved_source (w : Workloads.Common.t) spec =
  Option.value spec.sp_source ~default:w.Workloads.Common.source

(* The content-addressed identity of one variant's result: everything
   that can change the result bytes (app, arch, scale, source, knobs) —
   and nothing else.  Names are deliberately excluded: they live in the
   batch envelope, so renaming a variant still hits. *)
let variant_key ~(w : Workloads.Common.t) ~(arch : Gpusim.Arch.t) ~scale spec =
  let knob name v =
    (name, match v with None -> "" | Some n -> string_of_int n)
  in
  Advisor.result_key ~op:"evaluate.variant" ~app:w.Workloads.Common.name
    ~arch_name:arch.Gpusim.Arch.short_name ~scale
    ~extra:[ knob "block_x" spec.sp_block_x; knob "bypass_warps" spec.sp_bypass_warps ]
    ~source:(resolved_source w spec) ()

(* ----- evaluating one variant ----- *)

type outcome = {
  o_status : string; (* "ok" | "compile_failed" | "run_failed" | "deadline" *)
  o_error : string option; (* message when status <> ok *)
  o_compiled : bool;
  o_cycles : int option;
  o_l1_hit_rate : float option;
  o_divergence : float option;
  o_branch_pct : float option;
  o_check_errors : int option;
}

let failed ~status ?(compiled = false) msg =
  {
    o_status = status;
    o_error = Some msg;
    o_compiled = compiled;
    o_cycles = None;
    o_l1_hit_rate = None;
    o_divergence = None;
    o_branch_pct = None;
    o_check_errors = None;
  }

(* The instrumented pass measures divergence and feeds the race
   detector in one simulation: profiling hooks + sharing hooks. *)
let eval_options =
  { Passes.Instrument.memory = true;
    control_flow = true;
    arithmetic = false;
    sharing = true }

let eval_variant ~(arch : Gpusim.Arch.t) ~scale (w : Workloads.Common.t) spec =
  let wv = { w with Workloads.Common.source = resolved_source w spec } in
  let block_x = spec.sp_block_x in
  match
    Advisor.compile_source ~file:wv.Workloads.Common.source_file
      wv.Workloads.Common.source
  with
  | exception Gpusim.Gpu.Cancelled reason -> failed ~status:"deadline" reason
  | exception Minicuda.Frontend.Error e ->
    failed ~status:"compile_failed" (Minicuda.Frontend.error_to_string e)
  | exception e -> failed ~status:"compile_failed" (Printexc.to_string e)
  | pristine -> (
    match
      let transform =
        Option.map
          (fun n prog -> Advisor.rewrite_all_kernels prog ~warps_to_cache:n)
          spec.sp_bypass_warps
      in
      let cycles, host = Advisor.run_native ?transform ~scale ?block_x ~arch wv in
      let l1 =
        List.fold_left
          (fun acc (_, (r : Gpusim.Gpu.result)) ->
            Gpusim.Cache.add_stats acc r.Gpusim.Gpu.l1_stats)
          (Gpusim.Cache.empty_stats ())
          (Hostrt.Host.launches host)
      in
      let session =
        Advisor.profile ~options:eval_options ~scale ?block_x ~arch wv
      in
      let md = Advisor.mem_divergence session in
      let bd = Advisor.branch_divergence session in
      let static = Passes.Check_static.run pristine.Advisor.modul in
      let races = Analysis.Race.of_profile session.Advisor.profiler in
      let errors = List.length static + List.length races.Analysis.Race.races in
      {
        o_status = "ok";
        o_error = None;
        o_compiled = true;
        o_cycles = Some cycles;
        o_l1_hit_rate = Some (Gpusim.Cache.hit_rate l1);
        o_divergence = Some md.Analysis.Mem_divergence.degree;
        o_branch_pct = Some (Analysis.Branch_divergence.percent bd);
        o_check_errors = Some errors;
      }
    with
    | outcome -> outcome
    | exception Gpusim.Gpu.Cancelled reason ->
      failed ~status:"deadline" ~compiled:true reason
    | exception Gpusim.Gpu.Launch_error msg ->
      failed ~status:"run_failed" ~compiled:true ("launch aborted: " ^ msg)
    | exception e ->
      failed ~status:"run_failed" ~compiled:true (Printexc.to_string e))

(* The cacheable per-variant result object.  Field set and order are
   fixed (absent values are [null]) so equal evaluations produce equal
   bytes; the variant's name is deliberately not part of it. *)
let outcome_json ~(w : Workloads.Common.t) spec (o : outcome) =
  let opt f = function None -> Json.Null | Some v -> f v in
  let knob = opt (fun n -> Json.Int n) in
  Json.Obj
    ([ ("status", Json.String o.o_status);
       ("compiled_ok", Json.Bool o.o_compiled);
       ( "check_clean",
         opt (fun n -> Json.Bool (n = 0)) o.o_check_errors );
       ("check_errors", opt (fun n -> Json.Int n) o.o_check_errors);
       ("cycles", opt (fun n -> Json.Int n) o.o_cycles);
       ("l1_hit_rate", opt (fun f -> Json.Float f) o.o_l1_hit_rate);
       ("divergence_degree", opt (fun f -> Json.Float f) o.o_divergence);
       ("branch_divergence_percent", opt (fun f -> Json.Float f) o.o_branch_pct);
       ( "knobs",
         Json.Obj
           [ ("block_x", knob spec.sp_block_x);
             ("bypass_warps", knob spec.sp_bypass_warps) ] );
       ( "source_digest",
         Json.String
           (Digest.to_hex
              (Digest.string (Advisor.canonical_source (resolved_source w spec))))
       ) ]
    @
    match o.o_error with
    | None -> []
    | Some msg -> [ ("error", Json.String msg) ])

(* ----- ranking (recomputed from raw result bytes) ----- *)

(* (status, cycles) of a serialized result object.  Ranking reads the
   bytes rather than the in-memory outcome so cached and fresh entries
   go through the identical path. *)
let ranked_info_of_raw raw =
  match Jsonv.parse raw with
  | Error _ -> ("run_failed", None)
  | Ok v ->
    let status =
      match Jsonv.member "status" v with Some (Jsonv.Str s) -> s | _ -> "run_failed"
    in
    let cycles =
      match Jsonv.member "cycles" v with
      | Some (Jsonv.Num f) -> Some (int_of_float f)
      | _ -> None
    in
    (status, cycles)

(* Rank variants best-first: simulated variants by ascending cycles,
   then the failures, both tie-broken by name — a total order on
   (cycles, unique name), so the ranking is invariant under submission
   order by construction. *)
let ranking ~baseline entries =
  let info =
    List.map (fun (name, raw) -> (name, ranked_info_of_raw raw)) entries
  in
  let baseline_cycles =
    match List.assoc_opt baseline info with
    | Some (_, cycles) -> cycles
    | None -> None
  in
  let sorted =
    List.sort
      (fun (na, (_, ca)) (nb, (_, cb)) ->
        match (ca, cb) with
        | Some a, Some b ->
          if a <> b then compare a b else String.compare na nb
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> String.compare na nb)
      info
  in
  List.mapi
    (fun i (name, (status, cycles)) ->
      let speedup =
        match (baseline_cycles, cycles) with
        | Some b, Some c when c > 0 -> Json.Float (float_of_int b /. float_of_int c)
        | _ -> Json.Null
      in
      Json.Obj
        [ ("rank", Json.Int (i + 1)); ("name", Json.String name);
          ("status", Json.String status);
          ("cycles", match cycles with Some c -> Json.Int c | None -> Json.Null);
          ("speedup_vs_baseline", speedup);
          ("baseline", Json.Bool (name = baseline)) ])
    sorted

(* ----- the batch ----- *)

(* Evaluate [specs] (unique names; [baseline] must name one) and
   assemble the full tournament report.

   [lookup]/[store] plug in a content-addressed result cache keyed by
   {!variant_key}: hits skip both simulations entirely, and fresh
   results are stored *unless* they carry a "deadline" status (a
   deadline is a property of this request, not of the variant).

   Deadline budget: the caller's {!Gpusim.Gpu} cancel check — installed
   by the serve worker for the whole request — is treated as a
   whole-batch budget.  It is re-installed on every Pool domain the
   batch fans out to, each variant polls it on entry, and a fired
   deadline turns the current and remaining variants into per-variant
   "deadline" errors while completed variants keep their results: the
   response always carries every submitted variant, never a silent
   truncation. *)
let run_batch ?(domains = 1) ?lookup ?store ?scale ~baseline
    ~(arch : Gpusim.Arch.t) (w : Workloads.Common.t) (specs : spec list) =
  let scale = Option.value scale ~default:w.Workloads.Common.default_scale in
  let budget_check = Gpusim.Gpu.current_cancel_check () in
  let eval_one spec =
    (* worker domains start with no cancel check: propagate the
       request's deadline, restoring whatever was installed before *)
    let prev = Gpusim.Gpu.current_cancel_check () in
    Gpusim.Gpu.set_cancel_check budget_check;
    Fun.protect ~finally:(fun () -> Gpusim.Gpu.set_cancel_check prev)
    @@ fun () ->
    let key = variant_key ~w ~arch ~scale spec in
    match Option.bind lookup (fun f -> f key) with
    | Some raw -> (spec.sp_name, raw)
    | None ->
      let outcome =
        match Gpusim.Gpu.poll_cancel () with
        | () -> eval_variant ~arch ~scale w spec
        | exception Gpusim.Gpu.Cancelled reason -> failed ~status:"deadline" reason
      in
      let raw = Json.to_string (outcome_json ~w spec outcome) in
      if outcome.o_status <> "deadline" then
        Option.iter (fun f -> f key raw) store;
      (spec.sp_name, raw)
  in
  let entries = Pool.map ~domains eval_one specs in
  Json.Obj
    [ ("app", Json.String w.Workloads.Common.name);
      ("arch", Json.String arch.Gpusim.Arch.name);
      ("scale", Json.Int scale);
      ("baseline", Json.String baseline);
      ( "variants",
        Json.List
          (List.map
             (fun (name, raw) ->
               Json.Obj [ ("name", Json.String name); ("result", Json.Raw raw) ])
             entries) );
      ("ranking", Json.List (ranking ~baseline entries)) ]
