(* Bounded symbolic polynomials over the quantities a static GPU-kernel
   estimator can name: special registers (thread/block ids and
   dimensions), kernel parameters, and loop induction variables.  The
   -O0-style IR the frontend emits computes every address as integer
   arithmetic over these, so a small polynomial algebra recovers the
   access pattern of most GEPs exactly.

   Everything is normalized eagerly: each monomial keeps its symbol
   list sorted, the monomial list is sorted and merged, and zero
   coefficients are dropped — so structural equality is semantic
   equality.  Products are bounded (degree and term count) and collapse
   to [Unknown] past the caps, keeping evaluation linear in practice
   even on adversarial inputs. *)

type sym =
  | Tid_x
  | Tid_y
  | Ctaid_x
  | Ctaid_y
  | Ntid_x
  | Ntid_y
  | Nctaid_x
  | Nctaid_y
  | Warpid
  | Param of int (* function parameter, by register index *)
  | Loop of int (* induction variable of the loop headed by block index *)

(* [syms] is sorted; [] is the constant term. *)
type mono = { coeff : int; syms : sym list }

type t =
  | Poly of mono list (* sorted by [syms]; no zero coefficients *)
  | Unknown

let max_degree = 4
let max_terms = 64

let compare_syms = compare

let normalize monos =
  let monos = List.filter (fun m -> m.coeff <> 0) monos in
  let sorted =
    List.sort (fun a b -> compare_syms a.syms b.syms)
      (List.map (fun m -> { m with syms = List.sort compare m.syms }) monos)
  in
  let rec merge = function
    | a :: b :: rest when a.syms = b.syms ->
      merge ({ a with coeff = a.coeff + b.coeff } :: rest)
    | a :: rest -> if a.coeff = 0 then merge rest else a :: merge rest
    | [] -> []
  in
  merge sorted

let poly monos =
  let monos = normalize monos in
  if
    List.length monos > max_terms
    || List.exists (fun m -> List.length m.syms > max_degree) monos
  then Unknown
  else Poly monos

let const c = Poly (if c = 0 then [] else [ { coeff = c; syms = [] } ])
let sym s = Poly [ { coeff = 1; syms = [ s ] } ]
let unknown = Unknown
let zero = const 0

let add a b =
  match a, b with
  | Poly xs, Poly ys -> poly (xs @ ys)
  | _ -> Unknown

let neg = function
  | Poly xs -> Poly (List.map (fun m -> { m with coeff = -m.coeff }) xs)
  | Unknown -> Unknown

let sub a b = add a (neg b)

let mul a b =
  match a, b with
  | Poly xs, Poly ys ->
    poly
      (List.concat_map
         (fun x ->
           List.map
             (fun y -> { coeff = x.coeff * y.coeff; syms = x.syms @ y.syms })
             ys)
         xs)
  | _ -> Unknown

let mul_const c t = mul (const c) t

let equal a b =
  match a, b with
  | Poly xs, Poly ys -> xs = ys (* both normalized *)
  | Unknown, Unknown -> true
  | _ -> false

let is_known = function Poly _ -> true | Unknown -> false

let to_const = function
  | Poly [] -> Some 0
  | Poly [ { coeff; syms = [] } ] -> Some coeff
  | _ -> None

(* Constant term of a known polynomial (0 when absent). *)
let const_part = function
  | Poly monos -> (
    match List.find_opt (fun m -> m.syms = []) monos with
    | Some m -> m.coeff
    | None -> 0)
  | Unknown -> 0

let mentions pred = function
  | Poly monos -> List.exists (fun m -> List.exists pred m.syms) monos
  | Unknown -> false

let lane_varying_sym = function
  | Tid_x | Tid_y | Warpid -> true
  | Ctaid_x | Ctaid_y | Ntid_x | Ntid_y | Nctaid_x | Nctaid_y | Param _
  | Loop _ ->
    false

(* Does the value vary across the lanes of one warp?  [Warpid] is
   constant within a warp, so only the thread-id symbols count. *)
let intra_warp_sym = function Tid_x | Tid_y -> true | _ -> false

let mentions_loop t = mentions (function Loop _ -> true | _ -> false) t
let mentions_loop_of h = mentions (function Loop l -> l = h | _ -> false)

(* Substitute an integer for every occurrence of [s]. *)
let subst s value = function
  | Unknown -> Unknown
  | Poly monos ->
    poly
      (List.map
         (fun m ->
           let hits, rest = List.partition (fun x -> x = s) m.syms in
           let scale =
             List.fold_left (fun acc _ -> acc * value) 1 hits
           in
           { coeff = m.coeff * scale; syms = rest })
         monos)

(* Coefficient of the pure degree-1 monomial of [s]. *)
let coeff_of t s =
  match t with
  | Poly monos -> (
    match List.find_opt (fun m -> m.syms = [ s ]) monos with
    | Some m -> m.coeff
    | None -> 0)
  | Unknown -> 0

(* Drop the pure degree-1 monomial of [s]; used to peel an induction
   variable out of a loop-exit condition. *)
let without_sym t s =
  match t with
  | Poly monos -> Poly (List.filter (fun m -> m.syms <> [ s ]) monos)
  | Unknown -> Unknown

(* The intra-warp shape of a value: either it is warp-uniform, or it is
   the affine form [cx*tid.x + cy*tid.y + uniform], or a thread-id
   symbol appears inside a product we cannot enumerate (a symbolic
   stride like [tid.x * n]). *)
type lane_pattern =
  | Uniform
  | Strided of { cx : int; cy : int }
  | Symbolic

let lane_pattern = function
  | Unknown -> Symbolic
  | Poly monos as t ->
    let mixed =
      List.exists
        (fun m ->
          List.exists intra_warp_sym m.syms
          && m.syms <> [ Tid_x ] && m.syms <> [ Tid_y ])
        monos
    in
    if mixed then Symbolic
    else
      let cx = coeff_of t Tid_x and cy = coeff_of t Tid_y in
      if cx = 0 && cy = 0 then Uniform else Strided { cx; cy }

let sym_to_string = function
  | Tid_x -> "tid.x"
  | Tid_y -> "tid.y"
  | Ctaid_x -> "ctaid.x"
  | Ctaid_y -> "ctaid.y"
  | Ntid_x -> "ntid.x"
  | Ntid_y -> "ntid.y"
  | Nctaid_x -> "nctaid.x"
  | Nctaid_y -> "nctaid.y"
  | Warpid -> "warpid"
  | Param i -> Printf.sprintf "p%d" i
  | Loop h -> Printf.sprintf "iv%d" h

let to_string = function
  | Unknown -> "unknown"
  | Poly [] -> "0"
  | Poly monos ->
    String.concat " + "
      (List.map
         (fun m ->
           match m.syms with
           | [] -> string_of_int m.coeff
           | syms ->
             let factors = String.concat "*" (List.map sym_to_string syms) in
             if m.coeff = 1 then factors
             else Printf.sprintf "%d*%s" m.coeff factors)
         monos)
