(* Natural-loop detection over a {!Cfg}.  The frontend emits reducible
   control flow (structured for/while/if), so every loop is a natural
   loop: a back edge [u -> h] where [h] dominates [u], with the body
   being every block that can reach [u] without passing through [h].

   Dominators are computed with the same small-CFG boolean-set dataflow
   as {!Cfg.post_dominators}; kernels have a handful of blocks. *)

type loop = {
  header : int; (* block index of the loop header *)
  body : bool array; (* indexed by block; includes the header *)
}

let dominators (cfg : Cfg.t) =
  let n = Cfg.size cfg in
  let dom = Array.init n (fun _ -> Array.make n true) in
  if n > 0 then begin
    let entry = Array.make n false in
    entry.(0) <- true;
    dom.(0) <- entry
  end;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter = Array.make n true in
      (match cfg.Cfg.pred.(i) with
      | [] -> Array.fill inter 0 n false (* unreachable *)
      | first :: rest ->
        Array.blit dom.(first) 0 inter 0 n;
        List.iter
          (fun j -> Array.iteri (fun k v -> inter.(k) <- v && dom.(j).(k)) inter)
          rest);
      inter.(i) <- true;
      if inter <> dom.(i) then begin
        dom.(i) <- inter;
        changed := true
      end
    done
  done;
  dom

(* All natural loops of [cfg]; loops sharing a header are merged. *)
let find (cfg : Cfg.t) =
  let n = Cfg.size cfg in
  let dom = dominators cfg in
  let loops : (int, bool array) Hashtbl.t = Hashtbl.create 8 in
  for u = 0 to n - 1 do
    List.iter
      (fun h ->
        if dom.(u).(h) then begin
          (* back edge u -> h: collect the natural loop body *)
          let body =
            match Hashtbl.find_opt loops h with
            | Some b -> b
            | None ->
              let b = Array.make n false in
              b.(h) <- true;
              Hashtbl.replace loops h b;
              b
          in
          let rec up i =
            if not body.(i) then begin
              body.(i) <- true;
              List.iter up cfg.Cfg.pred.(i)
            end
          in
          up u
        end)
      cfg.Cfg.succ.(u)
  done;
  Hashtbl.fold (fun header body acc -> { header; body } :: acc) loops []
  |> List.sort (fun a b -> compare a.header b.header)

(* Loops containing block [i], innermost (smallest body) first. *)
let containing loops i =
  List.filter (fun l -> i < Array.length l.body && l.body.(i)) loops
  |> List.sort (fun a b ->
         compare
           (Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 a.body)
           (Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 b.body))

let innermost loops i =
  match containing loops i with [] -> None | l :: _ -> Some l

(* Is the edge [u -> v] a back edge of one of [loops]? *)
let is_back_edge loops ~u ~v =
  List.exists (fun l -> l.header = v && u < Array.length l.body && l.body.(u)) loops
