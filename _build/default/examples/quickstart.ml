(* Quickstart: profile your own kernel in five steps.

     dune exec examples/quickstart.exe

   1. write a MiniCUDA kernel;
   2. compile + instrument it (the engine of Figure 2);
   3. set up a device and a host program (allocations + transfers);
   4. launch under the profiler;
   5. read the analyses. *)

let kernel_source =
  {|
__global__ void saxpy(float* x, float* y, float a, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    y[tid] = a * x[tid] + y[tid];
  }
}
|}

let () =
  (* 1-2: source -> verified IR -> instrumented IR -> PTX *)
  let compiled = Advisor.instrument_source ~file:"saxpy.cu" kernel_source in
  let manifest = Option.get compiled.manifest in

  (* 3: a simulated Tesla K40c and a host program *)
  let k40 = Gpusim.Arch.kepler_k40c () in
  let profiler = Profiler.Profile.create ~manifest () in
  let host = Hostrt.Host.create ~profiler ~arch:k40 ~prog:compiled.prog () in
  let open Hostrt.Host in
  let n = 4096 in
  in_function host ~func:"main" ~file:"saxpy.cu" ~line:1 (fun () ->
      let h_x = malloc host ~label:"h_x" (4 * n) in
      let h_y = malloc host ~label:"h_y" (4 * n) in
      let hm = host_mem host in
      Gpusim.Devmem.write_f32_array hm h_x (Array.init n float_of_int);
      Gpusim.Devmem.write_f32_array hm h_y (Array.make n 1.0);
      let d_x = cuda_malloc host ~label:"d_x" (4 * n) in
      let d_y = cuda_malloc host ~label:"d_y" (4 * n) in
      memcpy_h2d host ~dst:d_x ~src:h_x ~bytes:(4 * n);
      memcpy_h2d host ~dst:d_y ~src:h_y ~bytes:(4 * n);

      (* 4: launch 16 CTAs of 256 threads *)
      let result =
        launch_kernel host ~kernel:"saxpy" ~grid:(16, 1) ~block:(256, 1)
          ~args:[ iarg d_x; iarg d_y; farg 2.0; iarg n ]
      in
      Printf.printf "kernel ran in %d simulated cycles (%d warp instructions)\n"
        result.cycles result.stats.warp_insts;

      (* verify the computation like any CUDA host program would *)
      memcpy_d2h host ~dst:h_y ~src:d_y ~bytes:(4 * n);
      let y = Gpusim.Devmem.read_f32_array hm h_y n in
      assert (y.(100) = (2.0 *. 100.) +. 1.0);
      Printf.printf "result verified: y[100] = %g\n" y.(100));

  (* 5: the analyses of Section 4.2 *)
  let instance = List.hd (Profiler.Profile.instances profiler) in
  let rd = Analysis.Reuse_distance.of_instance instance in
  let md = Analysis.Mem_divergence.of_instance ~line_size:k40.line_size instance in
  let bd = Analysis.Branch_divergence.of_instance instance in
  Printf.printf "\nreuse distance: %.1f%% of accesses are never reused (streaming)\n"
    (100. *. Analysis.Reuse_distance.no_reuse_fraction rd);
  Printf.printf "memory divergence degree: %.2f unique lines per warp access\n"
    md.degree;
  Printf.printf "branch divergence: %.2f%% of dynamic blocks\n"
    (Analysis.Branch_divergence.percent bd)
