(* Horizontal cache bypassing guided by CUDAAdvisor (Section 4.2-(D)).

     dune exec examples/bypass_tuning.exe

   Profiles an application, feeds its average reuse distance and memory
   divergence into the optimal-warp model of Eq. (1), rewrites the PTX
   as in Listing 5, and compares the predicted configuration against the
   no-bypassing baseline and the exhaustive oracle. *)

let () =
  (* few SMs: keep per-SM occupancy at the paper's level for the scaled
     input (see DESIGN.md) *)
  let arch = Gpusim.Arch.kepler_k40c ~num_sms:5 ~l1_kb:16 () in
  let app = Workloads.Registry.find "syr2k" in
  Printf.printf "bypassing study for %s on %s\n%!" app.name arch.name;

  (* profile: the model inputs come from the tool, not from search *)
  let session = Advisor.profile ~arch app in
  let rd =
    Advisor.reuse_distance
      ~granularity:(Analysis.Reuse_distance.Cache_line arch.line_size) session
  in
  let md = Advisor.mem_divergence session in
  Printf.printf "measured: mean line-reuse-distance %.1f, divergence degree %.2f\n%!"
    rd.mean_finite_distance md.degree;

  let study = Advisor.bypass_study ~arch app in
  Printf.printf "\n%-28s %10s %8s\n" "configuration" "cycles" "speedup";
  let row label cycles =
    Printf.printf "%-28s %10d %7.2fx\n" label cycles
      (float_of_int study.baseline_cycles /. float_of_int cycles)
  in
  row "baseline (all warps cache)" study.baseline_cycles;
  List.iter
    (fun (n, c) -> row (Printf.sprintf "  %d caching warps per CTA" n) c)
    study.sweep;
  row
    (Printf.sprintf "oracle (N=%d)" study.oracle_warps)
    study.oracle_cycles;
  row
    (Printf.sprintf "Eq.(1) prediction (N=%d)" study.predicted_warps)
    study.predicted_cycles;
  Printf.printf
    "\nprediction is within %.1f%% of the oracle (paper: 4.3-6.7%% on Kepler)\n"
    (100.
    *. (float_of_int study.predicted_cycles /. float_of_int study.oracle_cycles
       -. 1.))
