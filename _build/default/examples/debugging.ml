(* Code- and data-centric debugging (Section 4.2-(E), Figures 8/9).

     dune exec examples/debugging.exe

   Profiles BFS and reconstructs, for its most memory-divergent
   accesses, the concatenated CPU+GPU calling context and the provenance
   of the data objects involved — the paper's d_graph_visited
   walkthrough. *)

let () =
  let arch = Gpusim.Arch.kepler_k40c () in
  let bfs = Workloads.Registry.find "bfs" in
  Printf.printf "profiling %s (%s)...\n%!" bfs.name bfs.description;
  let session = Advisor.profile ~arch bfs in

  (* BFS launches Kernel once per frontier sweep; pick the instance with
     the most memory traffic (the widest frontier). *)
  let busiest =
    List.fold_left
      (fun acc (i : Profiler.Profile.instance) ->
        match acc with
        | Some (b : Profiler.Profile.instance) when b.mem_count >= i.mem_count -> acc
        | _ -> Some i)
      None (Advisor.instances session)
    |> Option.get
  in
  Printf.printf "inspecting launch #%d of %s (%d memory events)\n\n"
    busiest.launch_index busiest.kernel busiest.mem_count;

  (* Figure 8: where does the divergence come from? *)
  print_string
    (Analysis.Views.divergent_sites_report session.profiler busiest
       ~line_size:arch.line_size ~top:3);

  (* Figure 9: which data objects does it touch, and where do they come
     from on the host? *)
  print_newline ();
  print_string
    (Analysis.Views.data_centric_report session.profiler busiest
       ~line_size:arch.line_size ~top:3);

  (* The offline statistics view (Section 3.3): merge the instances of
     each kernel in the same calling context. *)
  Printf.printf "\nPer-context kernel statistics (cycles across instances):\n";
  List.iter
    (fun (ctx, s) ->
      Printf.printf "  %s\n    %s\n" ctx
        (Format.asprintf "%a" Analysis.Statistics.pp_summary s))
    (Analysis.Statistics.by_context (Advisor.instances session)
       ~metric:Analysis.Statistics.cycles)
