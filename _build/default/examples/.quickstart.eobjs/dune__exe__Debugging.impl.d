examples/debugging.ml: Advisor Analysis Format Gpusim List Option Printf Profiler Workloads
