examples/custom_analysis.mli:
