examples/debugging.mli:
