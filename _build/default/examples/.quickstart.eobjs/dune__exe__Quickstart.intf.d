examples/quickstart.mli:
