examples/quickstart.ml: Advisor Analysis Array Gpusim Hostrt List Option Printf Profiler
