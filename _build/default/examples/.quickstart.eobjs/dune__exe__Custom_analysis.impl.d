examples/custom_analysis.ml: Advisor Array Gpusim Hashtbl List Passes Printf
