examples/bypass_tuning.ml: Advisor Analysis Gpusim List Printf Workloads
