examples/bypass_tuning.mli:
