(* Building a custom analysis on the instrumentation engine.

     dune exec examples/custom_analysis.exe

   The paper contrasts CUDAAdvisor's open instrumentation engine with
   the closed-source SASSI: tool developers can add capabilities.  This
   example enables the *arithmetic* instrumentation category (operator +
   dynamic operand values) and builds a small value profiler on top: a
   census of floating-point operations and a detector of numerically
   suspicious operands (zeros fed to divisions, negative sqrt inputs). *)

let kernel_source =
  {|
__global__ void normalize_rows(float* m, float* norms, int rows, int cols) {
  int row = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < rows) {
    float sum = 0.0f;
    for (int c = 0; c < cols; c = c + 1) {
      float v = m[row * cols + c];
      sum = sum + v * v;
    }
    float norm = sqrtf(sum);
    norms[row] = norm;
    for (int c = 0; c < cols; c = c + 1) {
      m[row * cols + c] = m[row * cols + c] / norm;
    }
  }
}
|}

let () =
  (* enable all three optional categories, including arithmetic *)
  let compiled =
    Advisor.instrument_source ~options:Passes.Instrument.all ~file:"norm.cu"
      kernel_source
  in
  let arch = Gpusim.Arch.kepler_k40c () in
  let dev = Gpusim.Gpu.create_device arch in
  let rows = 256 and cols = 64 in
  let d_m = Gpusim.Devmem.malloc dev.devmem (4 * rows * cols) in
  let d_norms = Gpusim.Devmem.malloc dev.devmem (4 * rows) in
  (* one all-zero row: the custom analysis should flag the division *)
  for i = 0 to (rows * cols) - 1 do
    let v = if i / cols = 17 then 0.0 else float_of_int (i mod 19) -. 9.0 in
    Gpusim.Devmem.write_f32 dev.devmem (d_m + (4 * i)) v
  done;

  (* the custom analysis: a sink over arithmetic events *)
  let census : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let zero_divides = ref 0 in
  let sink (ev : Gpusim.Hookev.t) =
    match ev with
    | Gpusim.Hookev.Arith a ->
      let name = Passes.Hooks.arith_code_to_string a.code in
      (match Hashtbl.find_opt census name with
      | Some r -> r := !r + Array.length a.operands
      | None -> Hashtbl.replace census name (ref (Array.length a.operands)));
      if name = "div" then
        Array.iter
          (fun (_lane, _a, b) -> if b = 0.0 then incr zero_divides)
          a.operands
    | _ -> ()
  in
  let result =
    Gpusim.Gpu.launch dev ~sink ~prog:compiled.prog ~kernel:"normalize_rows"
      ~grid:(1, 1) ~block:(256, 1)
      ~args:[ Gpusim.Value.I d_m; Gpusim.Value.I d_norms; Gpusim.Value.I rows;
              Gpusim.Value.I cols ]
      ()
  in
  Printf.printf "simulated %d cycles, %d hook events\n\n" result.cycles
    result.stats.hook_calls;
  Printf.printf "floating-point / integer operation census (thread-level):\n";
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) census []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (name, count) -> Printf.printf "  %-8s %8d\n" name count);
  Printf.printf "\nnumerical hazards: %d divisions by exactly 0.0 " !zero_divides;
  Printf.printf "(row 17 is all zeros -> its norm is 0)\n"
