(* A basic block: a label, a straight-line instruction list, and a
   terminator.  Blocks under construction have [term = None]; the
   verifier rejects unterminated blocks. *)

type t = {
  name : string;
  mutable instrs : Instr.t list; (* stored in execution order *)
  mutable term : Instr.terminator option;
}

let create name = { name; instrs = []; term = None }

let terminator t =
  match t.term with
  | Some term -> term
  | None -> invalid_arg (Printf.sprintf "Block.terminator: %s unterminated" t.name)

let successors t = Instr.successors (terminator t)

(* Insert [instr] immediately before the instruction satisfying [before].
   Used by instrumentation passes to place hooks ahead of the monitored
   instruction, as in Listing 1 of the paper. *)
let insert_before t ~before instr =
  let rec go = function
    | [] -> [ instr ]
    | x :: rest when before x -> instr :: x :: rest
    | x :: rest -> x :: go rest
  in
  t.instrs <- go t.instrs

let prepend t instr = t.instrs <- instr :: t.instrs
let append t instr = t.instrs <- t.instrs @ [ instr ]
