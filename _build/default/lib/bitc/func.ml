(* Functions of a Bitc module.  Parameters occupy registers
   [0 .. arity-1].  [reg_tys] tracks the type of every virtual register,
   which the verifier and the PTX code generator rely on. *)

type fkind =
  | Kernel (* __global__: launchable from the host *)
  | Device (* __device__: callable from device code *)
  | Host (* host-side function *)

type t = {
  name : string;
  params : (string * Types.ty) list;
  ret : Types.ty;
  fkind : fkind;
  mutable blocks : Block.t list; (* entry block first *)
  mutable next_reg : int;
  reg_tys : (int, Types.ty) Hashtbl.t;
}

let create ~name ~params ~ret ~fkind =
  let t =
    {
      name;
      params;
      ret;
      fkind;
      blocks = [];
      next_reg = 0;
      reg_tys = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (_, ty) ->
      Hashtbl.replace t.reg_tys t.next_reg ty;
      t.next_reg <- t.next_reg + 1)
    params;
  t

let arity t = List.length t.params

let fresh_reg t ty =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  Hashtbl.replace t.reg_tys r ty;
  r

let reg_ty t r =
  match Hashtbl.find_opt t.reg_tys r with
  | Some ty -> ty
  | None -> invalid_arg (Printf.sprintf "Func.reg_ty: %%%d unknown in %s" r t.name)

let entry t =
  match t.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" t.name)

let find_block t name = List.find_opt (fun (b : Block.t) -> b.name = name) t.blocks

let find_block_exn t name =
  match find_block t name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.find_block: %s has no block %s" t.name name)

let add_block t block = t.blocks <- t.blocks @ [ block ]

let value_ty t = function
  | Value.Reg r -> reg_ty t r
  | Value.Int _ -> Types.I32
  | Value.Float _ -> Types.F32
  | Value.Bool _ -> Types.I1
  | Value.Null -> Types.Ptr (Types.I32, Types.Global)

let iter_instrs t f =
  List.iter (fun (b : Block.t) -> List.iter (f b) b.instrs) t.blocks

let fold_instrs t init f =
  List.fold_left
    (fun acc (b : Block.t) -> List.fold_left (fun acc i -> f acc b i) acc b.instrs)
    init t.blocks

let is_kernel t = t.fkind = Kernel
