(* Bitc instructions.  The set matches what the MiniCUDA frontend emits
   and what the instrumentation passes of the paper operate on: memory
   operations (Listing 1), arithmetic operations, and control flow
   (basic-block structure, Listing 3). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Min
  | Max

type unop =
  | Neg
  | Not (* bitwise/logical complement *)
  | Int_to_float
  | Float_to_int (* truncation *)
  | Sqrt
  | Exp
  | Log
  | Fabs

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(* GPU special registers readable by device code. *)
type special =
  | Tid_x
  | Tid_y
  | Ctaid_x
  | Ctaid_y
  | Ntid_x
  | Ntid_y
  | Nctaid_x
  | Nctaid_y
  | Warpid (* %warpid: the warp's index within its CTA *)

type kind =
  | Alloca of Types.ty * int (* per-thread local array of [n] elements *)
  | Shared_alloca of Types.ty * int (* per-CTA shared array *)
  | Load of Value.t (* pointer operand; result type is [ty] *)
  | Store of { ptr : Value.t; value : Value.t; value_ty : Types.ty }
  | Gep of { base : Value.t; index : Value.t; elem : Types.ty }
  | Binop of binop * Types.ty * Value.t * Value.t
  | Unop of unop * Value.t
  | Cmp of cmp * Types.ty * Value.t * Value.t
  | Select of Value.t * Value.t * Value.t
  | Call of { callee : string; args : Value.t list }
  | Special of special
  | Sync (* __syncthreads *)
  | Atomic_add of { ptr : Value.t; value : Value.t; value_ty : Types.ty }
  | Ptr_cast of Value.t (* bitcast to i8* (generic); used by instrumentation *)

type terminator =
  | Br of string
  | Cond_br of Value.t * string * string
  | Ret of Value.t option

type t = {
  result : int option; (* destination register, if any *)
  ty : Types.ty; (* type of the result ([Void] if none) *)
  kind : kind;
  loc : Loc.t;
}

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Min -> "min"
  | Max -> "max"

let unop_to_string = function
  | Neg -> "neg"
  | Not -> "not"
  | Int_to_float -> "sitofp"
  | Float_to_int -> "fptosi"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Fabs -> "fabs"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let special_to_string = function
  | Tid_x -> "tid.x"
  | Tid_y -> "tid.y"
  | Ctaid_x -> "ctaid.x"
  | Ctaid_y -> "ctaid.y"
  | Ntid_x -> "ntid.x"
  | Ntid_y -> "ntid.y"
  | Nctaid_x -> "nctaid.x"
  | Nctaid_y -> "nctaid.y"
  | Warpid -> "warpid"

(* Registers read by an instruction, for the verifier and for liveness. *)
let operands t =
  match t.kind with
  | Alloca _ | Shared_alloca _ | Special _ | Sync -> []
  | Load ptr -> [ ptr ]
  | Store { ptr; value; _ } -> [ ptr; value ]
  | Gep { base; index; _ } -> [ base; index ]
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> [ a; b ]
  | Unop (_, a) -> [ a ]
  | Select (c, a, b) -> [ c; a; b ]
  | Call { args; _ } -> args
  | Atomic_add { ptr; value; _ } -> [ ptr; value ]
  | Ptr_cast v -> [ v ]

let terminator_operands = function
  | Br _ -> []
  | Cond_br (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

let successors = function
  | Br l -> [ l ]
  | Cond_br (_, t, f) -> [ t; f ]
  | Ret _ -> []

let is_memory_access t =
  match t.kind with
  | Load _ | Store _ | Atomic_add _ -> true
  | Alloca _ | Shared_alloca _ | Gep _ | Binop _ | Unop _ | Cmp _ | Select _
  | Call _ | Special _ | Sync | Ptr_cast _ ->
    false

let is_arithmetic t =
  match t.kind with
  | Binop _ | Unop _ | Cmp _ -> true
  | Alloca _ | Shared_alloca _ | Load _ | Store _ | Gep _ | Select _ | Call _
  | Special _ | Sync | Atomic_add _ | Ptr_cast _ ->
    false
