(* Module verifier: structural and type well-formedness checks run after
   the frontend and after every instrumentation pass.  Mirrors the role
   of LLVM's verifier in the paper's toolchain. *)

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_value (m : Irmod.t) (f : Func.t) ctx expected v =
  let actual = Func.value_ty f v in
  (* [Null] compares equal to any pointer type. *)
  let ok =
    match v, expected with
    | Value.Null, Types.Ptr _ -> true
    | _ -> Types.equal actual expected
  in
  if not ok then
    fail "%s: in %s.%s, operand %s has type %s, expected %s" m.name f.name ctx
      (Value.to_string v) (Types.to_string actual) (Types.to_string expected)

let check_instr (m : Irmod.t) (f : Func.t) (b : Block.t) (i : Instr.t) =
  let ctx = b.name in
  let check = check_value m f ctx in
  let ptr_check v =
    let ty = Func.value_ty f v in
    if not (Types.is_pointer ty) then
      fail "%s: in %s.%s, %s used as pointer but has type %s" m.name f.name ctx
        (Value.to_string v) (Types.to_string ty)
  in
  (match i.kind with
  | Alloca (_, n) | Shared_alloca (_, n) ->
    if n <= 0 then fail "%s: %s.%s alloca with count %d" m.name f.name ctx n
  | Load ptr ->
    ptr_check ptr;
    if not (Types.equal (Types.pointee (Func.value_ty f ptr)) i.ty) then
      fail "%s: %s.%s load type mismatch" m.name f.name ctx
  | Store { ptr; value; value_ty } ->
    ptr_check ptr;
    check value_ty value;
    if not (Types.equal (Types.pointee (Func.value_ty f ptr)) value_ty) then
      fail "%s: %s.%s store type mismatch" m.name f.name ctx
  | Gep { base; index; elem } ->
    ptr_check base;
    check Types.I32 index;
    if not (Types.equal (Types.pointee (Func.value_ty f base)) elem) then
      fail "%s: %s.%s gep element type mismatch" m.name f.name ctx
  | Binop (_, ty, a, bv) ->
    check ty a;
    check ty bv
  | Unop (op, a) -> (
    match op with
    | Instr.Int_to_float -> check Types.I32 a
    | Instr.Float_to_int | Instr.Sqrt | Instr.Exp | Instr.Log | Instr.Fabs ->
      check Types.F32 a
    | Instr.Neg | Instr.Not -> ())
  | Cmp (_, ty, a, bv) ->
    check ty a;
    check ty bv
  | Select (c, a, bv) ->
    check Types.I1 c;
    check (Func.value_ty f a) bv
  | Call { callee; args } -> (
    let signature =
      match Irmod.find_func m callee with
      | Some g -> Some (List.map snd g.Func.params, g.Func.ret)
      | None -> Irmod.find_declare m callee
    in
    match signature with
    | None -> fail "%s: %s.%s calls undeclared function %s" m.name f.name ctx callee
    | Some (params, ret) ->
      if List.length params <> List.length args then
        fail "%s: %s.%s call to %s: arity %d vs %d" m.name f.name ctx callee
          (List.length params) (List.length args);
      List.iter2 check params args;
      if not (Types.equal ret i.ty) then
        fail "%s: %s.%s call to %s: result type mismatch" m.name f.name ctx callee)
  | Special _ | Sync -> ()
  | Atomic_add { ptr; value; value_ty } ->
    ptr_check ptr;
    check value_ty value
  | Ptr_cast p -> ptr_check p);
  match i.result with
  | None -> ()
  | Some r ->
    if not (Types.equal (Func.reg_ty f r) i.ty) then
      fail "%s: %s.%s result %%%d type mismatch" m.name f.name ctx r

let check_func (m : Irmod.t) (f : Func.t) =
  if f.blocks = [] then fail "%s: function %s has no blocks" m.name f.name;
  (* Unique block names, all terminated, branch targets exist. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if Hashtbl.mem seen b.name then
        fail "%s: %s has duplicate block %s" m.name f.name b.name;
      Hashtbl.replace seen b.name ();
      match b.term with
      | None -> fail "%s: %s.%s is unterminated" m.name f.name b.name
      | Some term ->
        List.iter
          (fun target ->
            if Func.find_block f target = None then
              fail "%s: %s.%s branches to unknown block %s" m.name f.name b.name
                target)
          (Instr.successors term);
        (match term with
        | Instr.Ret None ->
          if not (Types.equal f.ret Types.Void) then
            fail "%s: %s returns void but declared %s" m.name f.name
              (Types.to_string f.ret)
        | Instr.Ret (Some v) -> check_value m f b.name f.ret v
        | Instr.Cond_br (c, _, _) -> check_value m f b.name Types.I1 c
        | Instr.Br _ -> ()))
    f.blocks;
  (* Each register assigned at most once (params + instruction results). *)
  let assigned = Hashtbl.create 64 in
  List.iteri (fun i _ -> Hashtbl.replace assigned i ()) f.params;
  Func.iter_instrs f (fun b i ->
      ignore b;
      match i.Instr.result with
      | None -> ()
      | Some r ->
        if Hashtbl.mem assigned r then
          fail "%s: %s assigns %%%d twice" m.name f.name r;
        Hashtbl.replace assigned r ());
  (* Every used register is assigned somewhere (flow-insensitive; the
     frontend's alloca discipline guarantees dominance). *)
  let check_uses vs =
    List.iter
      (function
        | Value.Reg r when not (Hashtbl.mem assigned r) ->
          fail "%s: %s uses undefined register %%%d" m.name f.name r
        | Value.Reg _ | Value.Int _ | Value.Float _ | Value.Bool _ | Value.Null -> ())
      vs
  in
  Func.iter_instrs f (fun _ i -> check_uses (Instr.operands i));
  List.iter
    (fun (b : Block.t) ->
      match b.term with
      | Some t -> check_uses (Instr.terminator_operands t)
      | None -> ())
    f.blocks;
  (* Instruction-level type checks. *)
  Func.iter_instrs f (fun b i -> check_instr m f b i)

let run (m : Irmod.t) = List.iter (check_func m) m.funcs

let run_exn = run

let check m =
  match run m with
  | () -> Ok ()
  | exception Invalid msg -> Error msg
  (* structural lookups (e.g. a register that was never allocated) raise
     Invalid_argument from the accessors; report them as verification
     failures rather than crashing *)
  | exception Invalid_argument msg -> Error msg
