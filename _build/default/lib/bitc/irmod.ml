(* A Bitc module: the unit the instrumentation engine operates on.  A
   CUDA translation unit yields one device module (kernels + device
   functions) which, after instrumentation, is linked with the analysis
   device functions and lowered to PTX. *)

type t = {
  name : string;
  mutable funcs : Func.t list;
  (* External declarations, e.g. the profiler's device-side analysis
     functions ([Record], [passBasicBlock], ...). *)
  mutable declares : (string * Types.ty list * Types.ty) list;
}

let create name = { name; funcs = []; declares = [] }

let add_func t f =
  if List.exists (fun (g : Func.t) -> g.name = f.Func.name) t.funcs then
    invalid_arg (Printf.sprintf "Irmod.add_func: duplicate %s" f.Func.name);
  t.funcs <- t.funcs @ [ f ]

let declare t name ~params ~ret =
  if not (List.mem_assoc name (List.map (fun (n, p, r) -> (n, (p, r))) t.declares))
  then t.declares <- t.declares @ [ (name, params, ret) ]

let find_func t name = List.find_opt (fun (f : Func.t) -> f.name = name) t.funcs

let find_func_exn t name =
  match find_func t name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Irmod.find_func: no function %s" name)

let kernels t = List.filter Func.is_kernel t.funcs

let find_declare t name =
  List.find_map
    (fun (n, params, ret) -> if n = name then Some (params, ret) else None)
    t.declares
