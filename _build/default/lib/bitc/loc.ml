(* Source locations attached to IR instructions, mirroring LLVM's !dbg
   metadata.  The instrumentation engine forwards these to the analysis
   hooks so every profiled event carries file/line/column attribution. *)

type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let none = { file = "<unknown>"; line = 0; col = 0 }
let is_none t = t.line = 0 && t.col = 0
let equal a b = String.equal a.file b.file && a.line = b.line && a.col = b.col

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let to_string t =
  if is_none t then "?" else Printf.sprintf "%s:%d:%d" t.file t.line t.col

let pp fmt t = Format.pp_print_string fmt (to_string t)
