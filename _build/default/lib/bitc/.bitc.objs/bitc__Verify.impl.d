lib/bitc/verify.ml: Block Func Hashtbl Instr Irmod List Printf Types Value
