lib/bitc/types.ml: Format Printf
