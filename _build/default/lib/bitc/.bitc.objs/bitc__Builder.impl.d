lib/bitc/builder.ml: Block Func Instr Loc Printf Types Value
