lib/bitc/printer.ml: Block Buffer Func Instr Irmod List Loc Printf String Types Value
