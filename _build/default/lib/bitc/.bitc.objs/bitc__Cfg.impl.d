lib/bitc/cfg.ml: Array Block Fun Func Hashtbl List Printf
