lib/bitc/value.ml: Float Format Printf
