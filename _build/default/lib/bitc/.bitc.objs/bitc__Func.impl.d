lib/bitc/func.ml: Block Hashtbl List Printf Types Value
