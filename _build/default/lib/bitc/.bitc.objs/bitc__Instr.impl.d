lib/bitc/instr.ml: Loc Types Value
