lib/bitc/irmod.ml: Func List Printf Types
