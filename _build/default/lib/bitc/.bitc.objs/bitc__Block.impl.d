lib/bitc/block.ml: Instr Printf
