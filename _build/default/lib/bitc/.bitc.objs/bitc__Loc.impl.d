lib/bitc/loc.ml: Format Int Printf String
