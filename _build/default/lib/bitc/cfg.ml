(* Control-flow graph utilities over a [Func.t]: successor/predecessor
   maps, reverse postorder, and post-dominators.  The immediate
   post-dominator of a divergent branch is the SIMT reconvergence point
   the GPU simulator uses, matching how real hardware (and GPGPU-Sim)
   reconverges warps. *)

type t = {
  func : Func.t;
  blocks : Block.t array;
  index : (string, int) Hashtbl.t; (* block name -> array index *)
  succ : int list array;
  pred : int list array;
}

let build (func : Func.t) =
  let blocks = Array.of_list func.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i (b : Block.t) -> Hashtbl.replace index b.name i) blocks;
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let targets = Block.successors b in
      succ.(i) <-
        List.map
          (fun name ->
            match Hashtbl.find_opt index name with
            | Some j -> j
            | None ->
              invalid_arg
                (Printf.sprintf "Cfg.build: %s branches to unknown block %s"
                   func.name name))
          targets)
    blocks;
  Array.iteri (fun i _ -> List.iter (fun j -> pred.(j) <- i :: pred.(j)) succ.(i)) blocks;
  { func; blocks; index; succ; pred }

let size t = Array.length t.blocks
let block t i = t.blocks.(i)
let index_of t name = Hashtbl.find t.index name

(* Reverse postorder from the entry block.  Unreachable blocks are
   appended at the end so every block gets an order. *)
let reverse_postorder t =
  let n = size t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succ.(i);
      order := i :: !order
    end
  in
  if n > 0 then dfs 0;
  for i = 0 to n - 1 do
    if not visited.(i) then order := !order @ [ i ]
  done;
  Array.of_list !order

(* Iterative dataflow post-dominator computation on the reverse graph.
   Exit nodes (returns) post-dominate themselves; a virtual exit joins
   all of them.  [ipdom.(i)] is the immediate post-dominator index of
   block [i], or [-1] for exit blocks (their reconvergence is the
   function return). *)
let post_dominators t =
  let n = size t in
  let exit_nodes =
    Array.to_list
      (Array.mapi (fun i b -> (i, Block.successors b = [])) t.blocks)
    |> List.filter snd |> List.map fst
  in
  (* Sets as sorted int lists would be slow for big CFGs; our kernels are
     small, so use boolean arrays: pdom.(i) = set of post-dominators. *)
  let pdom = Array.init n (fun _ -> Array.make n true) in
  List.iter
    (fun e ->
      let s = Array.make n false in
      s.(e) <- true;
      pdom.(e) <- s)
    exit_nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      if not (List.mem i exit_nodes) then begin
        let inter = Array.make n true in
        (match t.succ.(i) with
        | [] -> ()
        | first :: rest ->
          Array.blit pdom.(first) 0 inter 0 n;
          List.iter (fun j -> Array.iteri (fun k v -> inter.(k) <- v && pdom.(j).(k)) inter) rest);
        inter.(i) <- true;
        if inter <> pdom.(i) then begin
          pdom.(i) <- inter;
          changed := true
        end
      end
    done
  done;
  (* Immediate post-dominator: the strict post-dominator nearest to the
     block, i.e. the one post-dominated by every other strict
     post-dominator — equivalently, the strict pdom with the largest
     post-dominator set. *)
  let ipdom = Array.make n (-1) in
  for i = 0 to n - 1 do
    let strict =
      List.filter (fun j -> j <> i && pdom.(i).(j)) (List.init n Fun.id)
    in
    let count j = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 pdom.(j) in
    match strict with
    | [] -> ipdom.(i) <- -1
    | first :: rest ->
      let best =
        List.fold_left (fun b j -> if count j > count b then j else b) first rest
      in
      ipdom.(i) <- best
  done;
  ipdom

(* Name of the reconvergence block for a conditional branch placed at the
   end of [block_name], or [None] when control reconverges only at the
   function exit. *)
let reconvergence_point t ipdom block_name =
  let i = index_of t block_name in
  match ipdom.(i) with
  | -1 -> None
  | j -> Some (block t j).Block.name
