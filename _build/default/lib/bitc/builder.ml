(* IRBuilder in the style of LLVM's: tracks a current insertion block and
   a current source location, allocates fresh registers, and offers one
   constructor per instruction. *)

type t = {
  func : Func.t;
  mutable block : Block.t;
  mutable loc : Loc.t;
}

let create func =
  let entry =
    match func.Func.blocks with
    | b :: _ -> b
    | [] ->
      let b = Block.create "entry" in
      Func.add_block func b;
      b
  in
  { func; block = entry; loc = Loc.none }

let set_block t block = t.block <- block
let set_loc t loc = t.loc <- loc
let current_block t = t.block

let new_block t name =
  let base = name in
  let rec unique i =
    let candidate = if i = 0 then base else Printf.sprintf "%s.%d" base i in
    if Func.find_block t.func candidate = None then candidate else unique (i + 1)
  in
  let b = Block.create (unique 0) in
  Func.add_block t.func b;
  b

let emit t ?result ~ty kind =
  let instr = { Instr.result; ty; kind; loc = t.loc } in
  Block.append t.block instr;
  instr

let emit_value t ~ty kind =
  let r = Func.fresh_reg t.func ty in
  ignore (emit t ~result:r ~ty kind);
  Value.Reg r

let alloca t ty n = emit_value t ~ty:(Types.Ptr (ty, Types.Local)) (Instr.Alloca (ty, n))

let shared_alloca t ty n =
  emit_value t ~ty:(Types.Ptr (ty, Types.Shared)) (Instr.Shared_alloca (ty, n))

let load t ptr =
  let ty = Types.pointee (Func.value_ty t.func ptr) in
  emit_value t ~ty (Instr.Load ptr)

let store t ~ptr ~value =
  let value_ty = Func.value_ty t.func value in
  ignore (emit t ~ty:Types.Void (Instr.Store { ptr; value; value_ty }))

let gep t ~base ~index =
  let ptr_ty = Func.value_ty t.func base in
  let elem = Types.pointee ptr_ty in
  emit_value t ~ty:ptr_ty (Instr.Gep { base; index; elem })

let binop t op a b =
  let ty = Func.value_ty t.func a in
  emit_value t ~ty (Instr.Binop (op, ty, a, b))

let unop t op a =
  let ty =
    match op with
    | Instr.Int_to_float | Instr.Sqrt | Instr.Exp | Instr.Log | Instr.Fabs ->
      Types.F32
    | Instr.Float_to_int -> Types.I32
    | Instr.Neg -> Func.value_ty t.func a
    | Instr.Not -> Func.value_ty t.func a
  in
  emit_value t ~ty (Instr.Unop (op, a))

let cmp t op a b =
  let operand_ty = Func.value_ty t.func a in
  emit_value t ~ty:Types.I1 (Instr.Cmp (op, operand_ty, a, b))

let select t c a b =
  let ty = Func.value_ty t.func a in
  emit_value t ~ty (Instr.Select (c, a, b))

let call t ~callee ~args ~ret =
  match ret with
  | Types.Void ->
    ignore (emit t ~ty:Types.Void (Instr.Call { callee; args }));
    None
  | ty -> Some (emit_value t ~ty (Instr.Call { callee; args }))

let special t s = emit_value t ~ty:Types.I32 (Instr.Special s)
let sync t = ignore (emit t ~ty:Types.Void Instr.Sync)

(* The i8* "generic byte pointer" type used by instrumentation hooks. *)
let byte_ptr_ty = Types.Ptr (Types.I1, Types.Generic)

let ptr_cast t v = emit_value t ~ty:byte_ptr_ty (Instr.Ptr_cast v)

let atomic_add t ~ptr ~value =
  let value_ty = Func.value_ty t.func value in
  emit_value t ~ty:value_ty (Instr.Atomic_add { ptr; value; value_ty })

let terminate t term =
  match t.block.Block.term with
  | Some _ -> () (* ignore unreachable extra terminators after returns *)
  | None -> t.block.Block.term <- Some term

let br t target = terminate t (Instr.Br target.Block.name)

let cond_br t cond ~then_:bt ~else_:bf =
  terminate t (Instr.Cond_br (cond, bt.Block.name, bf.Block.name))

let ret t v = terminate t (Instr.Ret v)
let is_terminated t = t.block.Block.term <> None
