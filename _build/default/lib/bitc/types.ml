(* First-order types of the Bitc IR.  The IR is deliberately close to the
   LLVM subset that clang emits for CUDA kernels at -O0: scalars, pointers
   tagged with an address space, and function types for declarations. *)

type space =
  | Generic
  | Global (* device global memory *)
  | Shared (* per-CTA scratchpad *)
  | Local (* per-thread stack (alloca) *)

type ty =
  | I1 (* booleans; one byte in memory *)
  | I32
  | F32
  | Ptr of ty * space
  | Void

let rec equal a b =
  match a, b with
  | I1, I1 | I32, I32 | F32, F32 | Void, Void -> true
  | Ptr (ta, sa), Ptr (tb, sb) -> equal ta tb && sa = sb
  | (I1 | I32 | F32 | Ptr _ | Void), _ -> false

(* Size of a value of this type in device memory, in bytes. *)
let size_of = function
  | I1 -> 1
  | I32 | F32 -> 4
  | Ptr _ -> 8
  | Void -> 0

let is_pointer = function Ptr _ -> true | I1 | I32 | F32 | Void -> false
let is_float = function F32 -> true | I1 | I32 | Ptr _ | Void -> false

let pointee = function
  | Ptr (ty, _) -> ty
  | (I1 | I32 | F32 | Void) as ty ->
    invalid_arg (Printf.sprintf "Types.pointee: not a pointer (%d)" (size_of ty))

let space_to_string = function
  | Generic -> "generic"
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"

let rec to_string = function
  | I1 -> "i1"
  | I32 -> "i32"
  | F32 -> "f32"
  | Void -> "void"
  | Ptr (ty, Generic) -> to_string ty ^ "*"
  | Ptr (ty, space) ->
    Printf.sprintf "%s addrspace(%s)*" (to_string ty) (space_to_string space)

let pp fmt ty = Format.pp_print_string fmt (to_string ty)
