(* Textual rendering of Bitc modules, in an LLVM-flavoured syntax.  Used
   by tests, by the [advisor dump-ir] command, and when reporting
   verifier failures. *)

let instr_to_string (f : Func.t) (i : Instr.t) =
  let v = Value.to_string in
  let body =
    match i.kind with
    | Alloca (ty, n) -> Printf.sprintf "alloca %s, %d" (Types.to_string ty) n
    | Shared_alloca (ty, n) ->
      Printf.sprintf "alloca.shared %s, %d" (Types.to_string ty) n
    | Load ptr ->
      Printf.sprintf "load %s, %s %s" (Types.to_string i.ty)
        (Types.to_string (Func.value_ty f ptr))
        (v ptr)
    | Store { ptr; value; value_ty } ->
      Printf.sprintf "store %s %s, %s" (Types.to_string value_ty) (v value) (v ptr)
    | Gep { base; index; elem } ->
      Printf.sprintf "getelementptr %s, %s, %s" (Types.to_string elem) (v base)
        (v index)
    | Binop (op, ty, a, b) ->
      Printf.sprintf "%s%s %s %s, %s"
        (if Types.is_float ty then "f" else "")
        (Instr.binop_to_string op) (Types.to_string ty) (v a) (v b)
    | Unop (op, a) -> Printf.sprintf "%s %s" (Instr.unop_to_string op) (v a)
    | Cmp (op, ty, a, b) ->
      Printf.sprintf "%s %s %s %s, %s"
        (if Types.is_float ty then "fcmp" else "icmp")
        (Instr.cmp_to_string op) (Types.to_string ty) (v a) (v b)
    | Select (c, a, b) -> Printf.sprintf "select %s, %s, %s" (v c) (v a) (v b)
    | Call { callee; args } ->
      Printf.sprintf "call %s @%s(%s)" (Types.to_string i.ty) callee
        (String.concat ", " (List.map v args))
    | Special s -> Printf.sprintf "read.sreg.%s" (Instr.special_to_string s)
    | Sync -> "barrier.sync"
    | Atomic_add { ptr; value; _ } ->
      Printf.sprintf "atomicrmw add %s, %s" (v ptr) (v value)
    | Ptr_cast p ->
      Printf.sprintf "bitcast %s %s to i8*" (Types.to_string (Func.value_ty f p)) (v p)
  in
  let lhs = match i.result with Some r -> Printf.sprintf "%%%d = " r | None -> "" in
  let dbg = if Loc.is_none i.loc then "" else ", !dbg " ^ Loc.to_string i.loc in
  "  " ^ lhs ^ body ^ dbg

let terminator_to_string = function
  | Instr.Br l -> Printf.sprintf "  br label %%%s" l
  | Instr.Cond_br (c, t, f) ->
    Printf.sprintf "  br i1 %s, label %%%s, label %%%s" (Value.to_string c) t f
  | Instr.Ret None -> "  ret void"
  | Instr.Ret (Some value) -> Printf.sprintf "  ret %s" (Value.to_string value)

let block_to_string f (b : Block.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (b.name ^ ":\n");
  List.iter
    (fun i ->
      Buffer.add_string buf (instr_to_string f i);
      Buffer.add_char buf '\n')
    b.instrs;
  (match b.term with
  | Some t ->
    Buffer.add_string buf (terminator_to_string t);
    Buffer.add_char buf '\n'
  | None -> Buffer.add_string buf "  <unterminated>\n");
  Buffer.contents buf

let fkind_to_string = function
  | Func.Kernel -> "kernel"
  | Func.Device -> "device"
  | Func.Host -> "host"

let func_to_string (f : Func.t) =
  let buf = Buffer.create 1024 in
  let params =
    List.mapi
      (fun idx (name, ty) -> Printf.sprintf "%s %%%d /*%s*/" (Types.to_string ty) idx name)
      f.params
  in
  Buffer.add_string buf
    (Printf.sprintf "define %s %s @%s(%s) {\n" (fkind_to_string f.fkind)
       (Types.to_string f.ret) f.name
       (String.concat ", " params));
  List.iter (fun b -> Buffer.add_string buf (block_to_string f b)) f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let module_to_string (m : Irmod.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "; module %s\n" m.name);
  List.iter
    (fun (name, params, ret) ->
      Buffer.add_string buf
        (Printf.sprintf "declare %s @%s(%s)\n" (Types.to_string ret) name
           (String.concat ", " (List.map Types.to_string params))))
    m.declares;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (func_to_string f))
    m.funcs;
  Buffer.contents buf
