(* Operands of Bitc instructions.  Registers are virtual and unbounded;
   function parameters occupy the first registers of a function. *)

type t =
  | Reg of int
  | Int of int (* i32 immediate *)
  | Float of float (* f32 immediate *)
  | Bool of bool (* i1 immediate *)
  | Null (* null pointer *)

let equal a b =
  match a, b with
  | Reg x, Reg y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> x = y
  | Null, Null -> true
  | (Reg _ | Int _ | Float _ | Bool _ | Null), _ -> false

let is_const = function
  | Int _ | Float _ | Bool _ | Null -> true
  | Reg _ -> false

let to_string = function
  | Reg r -> Printf.sprintf "%%%d" r
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%h" f
  | Bool true -> "true"
  | Bool false -> "false"
  | Null -> "null"

let pp fmt v = Format.pp_print_string fmt (to_string v)
