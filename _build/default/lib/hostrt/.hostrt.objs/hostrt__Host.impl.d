lib/hostrt/host.ml: Fun Gpusim List Option Profiler Ptx
