lib/hostrt/host.mli: Gpusim Profiler Ptx
