lib/analysis/views.ml: Array Bitc Buffer Gpusim List Mem_divergence Printf Profiler String
