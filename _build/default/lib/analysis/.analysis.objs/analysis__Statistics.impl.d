lib/analysis/statistics.ml: Float Format Gpusim Hashtbl List Profiler String
