lib/analysis/json.ml: Buffer Char Float List Printf String
