lib/analysis/bypass_model.ml: Float Gpusim Mem_divergence Reuse_distance
