lib/analysis/site_reuse.ml: Array Bitc Gpusim Hashtbl List Passes
