lib/analysis/branch_divergence.mli: Passes Profiler
