lib/analysis/reuse_distance.mli: Format Gpusim Profiler
