lib/analysis/site_reuse.mli: Bitc Gpusim
