lib/analysis/fenwick.ml: Array Printf
