lib/analysis/bypass_model.mli: Gpusim Mem_divergence Reuse_distance
