lib/analysis/branch_divergence.ml: Hashtbl List Passes Profiler
