lib/analysis/mem_divergence.mli: Bitc Format Gpusim Profiler
