lib/analysis/reuse_distance.ml: Array Fenwick Format Gpusim Hashtbl List Option Passes Profiler
