lib/analysis/views.mli: Bitc Profiler
