lib/analysis/report.ml: Array Bitc Branch_divergence Json List Mem_divergence Profiler Reuse_distance Statistics
