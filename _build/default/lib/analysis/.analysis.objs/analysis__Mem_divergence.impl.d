lib/analysis/mem_divergence.ml: Array Bitc Format Gpusim Hashtbl List Profiler
