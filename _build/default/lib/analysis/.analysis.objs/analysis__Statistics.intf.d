lib/analysis/statistics.mli: Format Profiler
