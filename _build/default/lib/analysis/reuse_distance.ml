(* Reuse-distance analysis (Section 4.2-(A)).

   Definitions follow the paper: the trace is regrouped by CTA; within a
   CTA, the reuse distance of a use is the number of distinct elements
   accessed between it and the previous use of the same element.
   Because the GPU L1 is write-evict / write-no-allocate, a write to an
   address restarts its counting: the pending forward reuse of the old
   value is recorded as infinite, mirroring the paper's definition of
   the infinity bucket ("never reused during execution or before the
   next write to the address").

   Two models are offered: memory-element based (granularity = access
   width) and cache-line based. *)

type granularity = Element | Cache_line of int

(* Histogram buckets of Figure 4. *)
type bucket = B0 | B1_2 | B3_8 | B9_32 | B33_128 | B129_512 | B_gt512 | B_inf

let buckets = [ B0; B1_2; B3_8; B9_32; B33_128; B129_512; B_gt512; B_inf ]

let bucket_of_distance = function
  | 0 -> B0
  | d when d <= 2 -> B1_2
  | d when d <= 8 -> B3_8
  | d when d <= 32 -> B9_32
  | d when d <= 128 -> B33_128
  | d when d <= 512 -> B129_512
  | _ -> B_gt512

let bucket_label = function
  | B0 -> "0"
  | B1_2 -> "1-2"
  | B3_8 -> "3-8"
  | B9_32 -> "9-32"
  | B33_128 -> "33-128"
  | B129_512 -> "129-512"
  | B_gt512 -> ">512"
  | B_inf -> "inf"

type result = {
  granularity : granularity;
  samples : int; (* total use samples (finite + infinite) *)
  histogram : (bucket * int) list;
  finite_reuses : int;
  infinite_reuses : int; (* streaming / no-reuse accesses *)
  mean_finite_distance : float; (* R.D. input of the bypass model, Eq. 1 *)
  max_finite_distance : int;
}

let fraction result bucket =
  if result.samples = 0 then 0.
  else
    float_of_int (List.assoc bucket result.histogram) /. float_of_int result.samples

let no_reuse_fraction result =
  if result.samples = 0 then 0.
  else float_of_int result.infinite_reuses /. float_of_int result.samples

(* One CTA's access stream: (element, is_write) in execution order. *)
let analyze_stream accesses =
  let n = Array.length accesses in
  let bit = Fenwick.create (max n 1) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let hist = Hashtbl.create 8 in
  let bump bucket = Hashtbl.replace hist bucket (1 + Option.value (Hashtbl.find_opt hist bucket) ~default:0) in
  let finite = ref 0 and infinite = ref 0 in
  let sum = ref 0 and maxd = ref 0 in
  Array.iteri
    (fun i (elem, is_write) ->
      let pos = i + 1 in
      if is_write then (
        (* write-evict: pending forward reuse of the old value dies *)
        match Hashtbl.find_opt last elem with
        | Some q ->
          bump B_inf;
          incr infinite;
          Fenwick.add bit q (-1);
          Hashtbl.remove last elem
        | None -> ())
      else begin
        (match Hashtbl.find_opt last elem with
        | Some q ->
          let d = Fenwick.between bit ~lo:q ~hi:pos in
          bump (bucket_of_distance d);
          incr finite;
          sum := !sum + d;
          if d > !maxd then maxd := d;
          Fenwick.add bit q (-1)
        | None -> ());
        Hashtbl.replace last elem pos;
        Fenwick.add bit pos 1
      end)
    accesses;
  (* accesses still pending at the end were never reused *)
  Hashtbl.iter
    (fun _ _ ->
      bump B_inf;
      incr infinite)
    last;
  (hist, !finite, !infinite, !sum, !maxd)

(* Element id of one lane access under the chosen granularity. *)
let element_of ~granularity ~bits addr =
  match granularity with
  | Element -> addr / max 1 (bits / 8)
  | Cache_line line -> addr / line

(* Analyze the memory events of one kernel instance (in execution
   order), regrouped per CTA as in the paper. *)
let of_events ?(granularity = Element) events =
  let per_cta : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((m : Gpusim.Hookev.mem), _node) ->
      let stream =
        match Hashtbl.find_opt per_cta m.cta with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace per_cta m.cta r;
          r
      in
      let is_write = m.kind = Passes.Hooks.mem_kind_store in
      Array.iter
        (fun (_lane, addr) ->
          stream := (element_of ~granularity ~bits:m.bits addr, is_write) :: !stream)
        m.accesses)
    events;
  let hist_total = Hashtbl.create 8 in
  let finite = ref 0 and infinite = ref 0 and sum = ref 0 and maxd = ref 0 in
  Hashtbl.iter
    (fun _cta stream ->
      let accesses = Array.of_list (List.rev !stream) in
      let hist, f, inf, s, m = analyze_stream accesses in
      Hashtbl.iter
        (fun b c ->
          Hashtbl.replace hist_total b
            (c + Option.value (Hashtbl.find_opt hist_total b) ~default:0))
        hist;
      finite := !finite + f;
      infinite := !infinite + inf;
      sum := !sum + s;
      maxd := max !maxd m)
    per_cta;
  let histogram =
    List.map
      (fun b -> (b, Option.value (Hashtbl.find_opt hist_total b) ~default:0))
      buckets
  in
  {
    granularity;
    samples = !finite + !infinite;
    histogram;
    finite_reuses = !finite;
    infinite_reuses = !infinite;
    mean_finite_distance =
      (if !finite = 0 then 0. else float_of_int !sum /. float_of_int !finite);
    max_finite_distance = !maxd;
  }

let of_instance ?granularity (instance : Profiler.Profile.instance) =
  of_events ?granularity (Profiler.Profile.mem_events instance)

(* Merge results of independent kernel instances into the whole-
   application view of Figure 4 (reuse is per CTA per instance, so
   merging is summing histograms and weighting the means). *)
let merge = function
  | [] -> invalid_arg "Reuse_distance.merge: empty"
  | first :: _ as results ->
    let histogram =
      List.map
        (fun b ->
          (b, List.fold_left (fun acc r -> acc + List.assoc b r.histogram) 0 results))
        buckets
    in
    let finite = List.fold_left (fun acc r -> acc + r.finite_reuses) 0 results in
    let infinite = List.fold_left (fun acc r -> acc + r.infinite_reuses) 0 results in
    let weighted_sum =
      List.fold_left
        (fun acc r -> acc +. (r.mean_finite_distance *. float_of_int r.finite_reuses))
        0. results
    in
    {
      granularity = first.granularity;
      samples = finite + infinite;
      histogram;
      finite_reuses = finite;
      infinite_reuses = infinite;
      mean_finite_distance =
        (if finite = 0 then 0. else weighted_sum /. float_of_int finite);
      max_finite_distance =
        List.fold_left (fun acc r -> max acc r.max_finite_distance) 0 results;
    }

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (b, c) ->
      Format.fprintf fmt "%-8s %6.2f%% (%d)@ " (bucket_label b)
        (100. *. fraction r b) c)
    r.histogram;
  Format.fprintf fmt "mean finite RD: %.2f, samples: %d@]" r.mean_finite_distance
    r.samples
