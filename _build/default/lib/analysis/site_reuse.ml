(* Per-instruction (source-site) reuse statistics: the input of
   *vertical* cache bypassing (Xie et al. [55], discussed in Section
   4.2-(D) of the paper), which bypasses individual load instructions
   with little reuse for every warp.

   For each load site we measure how often the data it touches is
   reused by a later access of the same CTA before being written: sites
   that are almost pure streaming gain nothing from the L1 and are
   bypass candidates. *)

type site_stat = {
  loc : Bitc.Loc.t;
  accesses : int; (* thread-level accesses issued by the site *)
  reused_later : int; (* of those, how many were reused afterwards *)
}

let reuse_fraction s =
  if s.accesses = 0 then 0. else float_of_int s.reused_later /. float_of_int s.accesses

(* Streams of (line, is_write, site-loc, event id) per CTA, at
   cache-line granularity (the reuse that matters to the L1).  The
   event id distinguishes lanes of one warp instruction: lanes sharing a
   line within a single access are one coalesced transaction, not an L1
   reuse. *)
let of_events ~line_size events =
  let per_cta : (int, (int * bool * Bitc.Loc.t * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun event_id ((m : Gpusim.Hookev.mem), _node) ->
      let stream =
        match Hashtbl.find_opt per_cta m.cta with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace per_cta m.cta r;
          r
      in
      let is_write = m.kind = Passes.Hooks.mem_kind_store in
      Array.iter
        (fun (_lane, addr) ->
          stream := (addr / line_size, is_write, m.loc, event_id) :: !stream)
        m.accesses)
    events;
  let stats : (Bitc.Loc.t, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let stat loc =
    match Hashtbl.find_opt stats loc with
    | Some s -> s
    | None ->
      let s = (ref 0, ref 0) in
      Hashtbl.replace stats loc s;
      s
  in
  Hashtbl.iter
    (fun _cta stream ->
      let accesses = Array.of_list (List.rev !stream) in
      (* for each load, was its line touched again by a *later* warp
         instruction before a write? *)
      let pending : (int, (Bitc.Loc.t * int) list ref) Hashtbl.t =
        Hashtbl.create 256
      in
      let credit line event_id =
        match Hashtbl.find_opt pending line with
        | Some sites ->
          let later, same =
            List.partition (fun (_, ev) -> ev <> event_id) !sites
          in
          List.iter
            (fun (loc, _) ->
              let _, reused = stat loc in
              incr reused)
            later;
          sites := same
        | None -> ()
      in
      Array.iter
        (fun (line, is_write, loc, event_id) ->
          if is_write then (
            (* write-evict: outstanding loads of this line are never
               L1-reused *)
            match Hashtbl.find_opt pending line with
            | Some sites -> sites := []
            | None -> ())
          else begin
            (* this access is a reuse for pendings from earlier events *)
            credit line event_id;
            let count, _ = stat loc in
            incr count;
            let sites =
              match Hashtbl.find_opt pending line with
              | Some s -> s
              | None ->
                let s = ref [] in
                Hashtbl.replace pending line s;
                s
            in
            sites := (loc, event_id) :: !sites
          end)
        accesses)
    per_cta;
  Hashtbl.fold
    (fun loc (count, reused) acc ->
      { loc; accesses = !count; reused_later = !reused } :: acc)
    stats []
  |> List.sort (fun a b -> Bitc.Loc.compare a.loc b.loc)

(* Load sites whose reuse fraction falls below [threshold]: the
   candidates vertical bypassing sends straight to the L2. *)
let bypass_candidates ?(threshold = 0.15) ~line_size events =
  of_events ~line_size events
  |> List.filter (fun s -> reuse_fraction s < threshold && s.accesses > 0)
  |> List.map (fun s -> s.loc)
