(* The optimal-warp estimation model for horizontal cache bypassing,
   Eq. (1) of the paper:

       Opt_Num_Warps =
         floor( L1_Cache_Size /
                (R.D. * Cacheline_Size * M.D. * #CTAs/SM) )

   R.D. is the application's average reuse distance and M.D. its average
   memory divergence degree, both taken from CUDAAdvisor's profiles.
   The paper uses plain averages (outliers included) as a conservative
   estimate; so do we. *)

type inputs = {
  l1_cache_size : int;
  cacheline_size : int;
  reuse_distance : float; (* mean finite reuse distance *)
  mem_divergence : float; (* mean unique lines per warp access *)
  ctas_per_sm : int;
  warps_per_cta : int;
}

(* Number of warps per CTA that should keep accessing L1; the remaining
   warps bypass.  Clamped to [0, warps_per_cta]: a prediction above the
   CTA's warp count means "cache everything" (no bypassing), and 0 means
   "bypass everything". *)
let optimal_warps inp =
  let denom =
    Float.max 1e-9
      (inp.reuse_distance
      *. float_of_int inp.cacheline_size
      *. inp.mem_divergence
      *. float_of_int (max 1 inp.ctas_per_sm))
  in
  let raw = float_of_int inp.l1_cache_size /. denom in
  let n = int_of_float (Float.floor raw) in
  max 0 (min inp.warps_per_cta n)

(* Convenience: build the inputs from analyzer results. *)
let inputs_of ~(arch : Gpusim.Arch.t) ~(rd : Reuse_distance.result)
    ~(md : Mem_divergence.result) ~ctas_per_sm ~warps_per_cta =
  {
    l1_cache_size = arch.l1_size;
    cacheline_size = arch.line_size;
    reuse_distance = Float.max 1. rd.mean_finite_distance;
    mem_divergence = Float.max 1. md.degree;
    ctas_per_sm;
    warps_per_cta;
  }
