(* The analyzer's offline component (Section 3.3): merges the results of
   kernel instances sharing a calling context and reports aggregate
   statistics (mean, min, max, standard deviation) — the per-kernel
   performance-variation view. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

let summarize = function
  | [] -> { count = 0; mean = 0.; min = 0.; max = 0.; stddev = 0. }
  | values ->
    let n = List.length values in
    let fn = float_of_int n in
    let sum = List.fold_left ( +. ) 0. values in
    let mean = sum /. fn in
    let var =
      List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values /. fn
    in
    {
      count = n;
      mean;
      min = List.fold_left Float.min infinity values;
      max = List.fold_left Float.max neg_infinity values;
      stddev = sqrt var;
    }

(* Group key of an instance: kernel name + its host calling context. *)
let context_key (i : Profiler.Profile.instance) =
  i.kernel
  ^ " <- "
  ^ String.concat " <- " (List.map Profiler.Records.frame_to_string i.host_path)

(* Merge instances by calling context and summarize [metric] over each
   group.  Returns (context, summary) pairs. *)
let by_context instances ~metric =
  let groups : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key = context_key i in
      let cell =
        match Hashtbl.find_opt groups key with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace groups key r;
          r
      in
      cell := metric i :: !cell)
    instances;
  Hashtbl.fold (fun key values acc -> (key, summarize !values) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Common metrics. *)
let cycles (i : Profiler.Profile.instance) =
  match i.result with Some r -> float_of_int r.Gpusim.Gpu.cycles | None -> 0.

let warp_instructions (i : Profiler.Profile.instance) =
  match i.result with
  | Some r -> float_of_int r.Gpusim.Gpu.stats.Gpusim.Stats.warp_insts
  | None -> 0.

let memory_events (i : Profiler.Profile.instance) = float_of_int i.mem_count

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.1f min=%.1f max=%.1f stddev=%.1f" s.count s.mean
    s.min s.max s.stddev
