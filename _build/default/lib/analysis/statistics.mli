(** The analyzer's offline component (paper Section 3.3): merges kernel
    instances that share a calling context and reports aggregate
    statistics — the per-kernel performance-variation view. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

val summarize : float list -> summary

(** Group key of an instance: kernel name + host calling context. *)
val context_key : Profiler.Profile.instance -> string

(** Group instances by calling context and summarize [metric] per
    group. *)
val by_context :
  Profiler.Profile.instance list ->
  metric:(Profiler.Profile.instance -> float) ->
  (string * summary) list

(** {2 Common metrics} *)

val cycles : Profiler.Profile.instance -> float
val warp_instructions : Profiler.Profile.instance -> float
val memory_events : Profiler.Profile.instance -> float
val pp_summary : Format.formatter -> summary -> unit
