(** Code- and data-centric debugging views (paper Section 4.2-(E),
    Figures 8 and 9): render the host+device calling context of
    divergent memory accesses and the provenance of the data objects
    they touch. *)

(** Figure 8: one concatenated CPU+GPU calling context ending at a
    monitored instruction. *)
val code_centric_path :
  Profiler.Profile.t ->
  Profiler.Profile.instance ->
  node:int ->
  loc:Bitc.Loc.t ->
  string

(** The most memory-divergent sites of an instance with their full
    calling contexts. *)
val divergent_sites_report :
  Profiler.Profile.t ->
  Profiler.Profile.instance ->
  line_size:int ->
  top:int ->
  string

(** Figure 9: the data objects behind the most divergent accesses —
    device allocation site, host counterpart and transfers. *)
val data_centric_report :
  Profiler.Profile.t ->
  Profiler.Profile.instance ->
  line_size:int ->
  top:int ->
  string
