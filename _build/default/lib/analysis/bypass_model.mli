(** The optimal-warp estimation model for horizontal cache bypassing,
    Eq. (1) of the paper:

    {v Opt_Num_Warps = floor(L1_Cache_Size /
        (R.D. * Cacheline_Size * M.D. * #CTAs/SM)) v}

    R.D. and M.D. come from CUDAAdvisor's reuse-distance and
    memory-divergence profiles; the paper uses plain averages as a
    conservative estimate. *)

type inputs = {
  l1_cache_size : int;
  cacheline_size : int;
  reuse_distance : float;  (** mean finite reuse distance *)
  mem_divergence : float;  (** mean unique lines per warp access *)
  ctas_per_sm : int;
  warps_per_cta : int;
}

(** Number of warps per CTA that should keep using the L1, clamped to
    [0, warps_per_cta] (above the CTA's warp count means "no
    bypassing"; 0 means "bypass everything"). *)
val optimal_warps : inputs -> int

(** Build the inputs from analyzer results. *)
val inputs_of :
  arch:Gpusim.Arch.t ->
  rd:Reuse_distance.result ->
  md:Mem_divergence.result ->
  ctas_per_sm:int ->
  warps_per_cta:int ->
  inputs
