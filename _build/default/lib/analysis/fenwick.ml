(* Fenwick (binary indexed) tree over positions 1..n, used by the
   reuse-distance analyzer to count distinct elements between two
   accesses in O(log n). *)

type t = { n : int; tree : int array }

let create n = { n; tree = Array.make (n + 1) 0 }

let add t i delta =
  if i < 1 || i > t.n then invalid_arg (Printf.sprintf "Fenwick.add: index %d" i);
  let i = ref i in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Sum of values at positions 1..i. *)
let prefix t i =
  let i = ref (min i t.n) in
  let acc = ref 0 in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

(* Sum over the open interval (lo, hi). *)
let between t ~lo ~hi = if hi <= lo + 1 then 0 else prefix t (hi - 1) - prefix t lo
