(** Per-instruction (source-site) reuse statistics: the input of
    *vertical* cache bypassing (Xie et al., contrasted in Section
    4.2-(D) of the paper), which bypasses individual load sites with
    little reuse for every warp. *)

type site_stat = {
  loc : Bitc.Loc.t;
  accesses : int;  (** thread-level accesses issued by the site *)
  reused_later : int;
      (** of those, how many had their cache line touched again by a
          later instruction of the same CTA before a write *)
}

val reuse_fraction : site_stat -> float

(** Per-site statistics over warp-level memory events, at cache-line
    granularity (the reuse that matters to the L1). *)
val of_events :
  line_size:int -> (Gpusim.Hookev.mem * int) list -> site_stat list

(** Load sites whose reuse fraction is below [threshold] (default
    0.15): the candidates vertical bypassing flips to [ld.cg]. *)
val bypass_candidates :
  ?threshold:float ->
  line_size:int ->
  (Gpusim.Hookev.mem * int) list ->
  Bitc.Loc.t list
