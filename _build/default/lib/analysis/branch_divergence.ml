(* Branch-divergence analysis (Section 4.2-(C)): every basic-block entry
   is instrumented; a dynamic block execution is divergent when the
   warp entered it with a partial active mask.  Table 3 reports the
   number of divergent block executions over the total. *)

type result = {
  divergent_blocks : int; (* dynamic, warp-level *)
  total_blocks : int;
  (* static view: per block id, (executions, divergent executions) *)
  per_block : (int * int * int) list;
}

let percent r =
  if r.total_blocks = 0 then 0.
  else 100. *. float_of_int r.divergent_blocks /. float_of_int r.total_blocks

let of_instance (instance : Profiler.Profile.instance) =
  let divergent = ref 0 and total = ref 0 in
  let per_block = ref [] in
  Hashtbl.iter
    (fun bb_id (s : Profiler.Profile.bb_stat) ->
      divergent := !divergent + s.divergent;
      total := !total + s.execs;
      per_block := (bb_id, s.execs, s.divergent) :: !per_block)
    instance.bb_stats;
  {
    divergent_blocks = !divergent;
    total_blocks = !total;
    per_block = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !per_block;
  }

(* Merge across all instances of an application run. *)
let of_instances instances =
  List.fold_left
    (fun acc i ->
      let r = of_instance i in
      {
        divergent_blocks = acc.divergent_blocks + r.divergent_blocks;
        total_blocks = acc.total_blocks + r.total_blocks;
        per_block = acc.per_block @ r.per_block;
      })
    { divergent_blocks = 0; total_blocks = 0; per_block = [] }
    instances

(* The block ids whose executions diverge most often, resolved through
   the manifest for reporting. *)
let hottest_blocks ~manifest r ~top =
  r.per_block
  |> List.filter (fun (_, _, div) -> div > 0)
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top)
  |> List.map (fun (bb_id, execs, div) ->
         let info = Passes.Manifest.block manifest bb_id in
         (info, execs, div))
