(** Branch-divergence analysis (paper Section 4.2-(C), Table 3): every
    basic-block entry is instrumented; a dynamic block execution is
    divergent when the warp entered it under a partial active mask. *)

type result = {
  divergent_blocks : int;  (** dynamic, warp-level *)
  total_blocks : int;
  per_block : (int * int * int) list;
      (** (block id, executions, divergent executions) *)
}

(** Percentage of divergent dynamic blocks, Table 3's last column. *)
val percent : result -> float

val of_instance : Profiler.Profile.instance -> result

(** Merge across all kernel instances of an application run. *)
val of_instances : Profiler.Profile.instance list -> result

(** The most-divergent blocks resolved to function/block/source through
    the manifest: (block info, executions, divergent executions). *)
val hottest_blocks :
  manifest:Passes.Manifest.t ->
  result ->
  top:int ->
  (Passes.Manifest.block_info * int * int) list
