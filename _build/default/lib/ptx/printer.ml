(* Textual PTX-flavoured rendering, for dumps and tests. *)

let pred_prefix = function
  | None -> ""
  | Some (r, true) -> Printf.sprintf "@%%p%d " r
  | Some (r, false) -> Printf.sprintf "@!%%p%d " r

let inst_to_string (i : Isa.inst) =
  let op = Isa.operand_to_string in
  match i with
  | Isa.Mov { dst; src } -> Printf.sprintf "mov %%r%d, %s" dst (op src)
  | Isa.Iop { op = o; dst; a; b } ->
    Printf.sprintf "%s.s32 %%r%d, %s, %s" (Bitc.Instr.binop_to_string o) dst (op a) (op b)
  | Isa.Fop { op = o; dst; a; b } ->
    Printf.sprintf "%s.f32 %%r%d, %s, %s" (Bitc.Instr.binop_to_string o) dst (op a) (op b)
  | Isa.Unop { op = o; dst; a; fl } ->
    Printf.sprintf "%s.%s %%r%d, %s" (Bitc.Instr.unop_to_string o)
      (if fl then "f32" else "s32") dst (op a)
  | Isa.Setp { op = o; dst; a; b; fl } ->
    Printf.sprintf "setp.%s.%s %%p%d, %s, %s" (Bitc.Instr.cmp_to_string o)
      (if fl then "f32" else "s32") dst (op a) (op b)
  | Isa.Selp { dst; cond; a; b } ->
    Printf.sprintf "selp %%r%d, %s, %s, %s" dst (op a) (op b) (op cond)
  | Isa.Ld { dst; space; cop; addr; width; fl; pred } ->
    Printf.sprintf "%sld.%s.%s.%s%d %%r%d, [%s]" (pred_prefix pred)
      (Isa.space_to_string space) (Isa.cop_to_string cop)
      (if fl then "f" else "u") (8 * width) dst (op addr)
  | Isa.St { space; cop; addr; src; width; fl; pred } ->
    Printf.sprintf "%sst.%s.%s.%s%d [%s], %s" (pred_prefix pred)
      (Isa.space_to_string space) (Isa.cop_to_string cop)
      (if fl then "f" else "u") (8 * width) (op addr) (op src)
  | Isa.Atom { dst; addr; src; width; fl } ->
    Printf.sprintf "atom.global.add.%s%d %%r%d, [%s], %s"
      (if fl then "f" else "u") (8 * width) dst (op addr) (op src)
  | Isa.Bra { target } -> Printf.sprintf "bra L%d" target
  | Isa.Cond_bra { pr; if_true; if_false; reconv } ->
    Printf.sprintf "@%%p%d bra L%d, L%d%s" pr if_true if_false
      (match reconv with Some r -> Printf.sprintf " ; reconv L%d" r | None -> "")
  | Isa.Call { callee; args; dst } ->
    Printf.sprintf "call%s %s(%s)"
      (match dst with Some d -> Printf.sprintf " %%r%d," d | None -> "")
      callee
      (String.concat ", " (List.map op args))
  | Isa.Ret None -> "ret"
  | Isa.Ret (Some v) -> Printf.sprintf "ret %s" (op v)
  | Isa.Bar -> "bar.sync 0"
  | Isa.Sreg { dst; which } ->
    Printf.sprintf "mov %%r%d, %%%s" dst (Bitc.Instr.special_to_string which)
  | Isa.Hook { name; args } ->
    Printf.sprintf "call.hook %s(%s)" name (String.concat ", " (List.map op args))

let func_to_string (f : Isa.func) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf ".%s %s (arity %d, %d regs, %dB local, %dB shared)\n"
       (if f.is_kernel then "entry" else "func")
       f.name f.arity f.nregs f.local_bytes f.shared_bytes);
  Array.iteri
    (fun pc inst ->
      Buffer.add_string buf
        (Printf.sprintf "L%-4d %s ; %s @ %s\n" pc (inst_to_string inst)
           f.block_of_pc.(pc)
           (Bitc.Loc.to_string f.locs.(pc))))
    f.body;
  Buffer.contents buf

let prog_to_string (p : Isa.prog) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "// ptx module %s\n" p.module_name);
  List.iter
    (fun (_, f) ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (func_to_string f))
    p.funcs;
  Buffer.contents buf
