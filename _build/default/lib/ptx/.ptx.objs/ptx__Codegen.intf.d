lib/ptx/codegen.mli: Bitc Isa
