lib/ptx/bypass.ml: Array Bitc Isa List Option Printf
