lib/ptx/codegen.ml: Array Bitc Hashtbl Isa List Option Passes Printf
