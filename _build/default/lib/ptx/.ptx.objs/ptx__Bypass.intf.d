lib/ptx/bypass.mli: Bitc Isa
