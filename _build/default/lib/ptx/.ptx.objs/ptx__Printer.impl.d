lib/ptx/printer.ml: Array Bitc Buffer Isa List Printf String
