lib/ptx/isa.ml: Bitc List Printf
