(** Code generation from Bitc IR to the PTX-like ISA — the
    NVPTX-backend + ptxas stage of the paper's Figure 2.  Registers map
    one-to-one from IR virtual registers; allocas become per-thread
    frame offsets; shared allocas become static per-CTA offsets;
    conditional branches carry their reconvergence pc (the immediate
    post-dominator). *)

exception Error of string

(** Lower one function.  [shared_base] is the module-wide shared-memory
    offset this function's declarations start at; returns the lowered
    function and the shared bytes it consumed. *)
val gen_func : shared_base:int -> Bitc.Func.t -> Isa.func * int

(** Lower a whole device module (host functions are skipped — they are
    modeled by the host runtime). *)
val gen_module : Bitc.Irmod.t -> Isa.prog
