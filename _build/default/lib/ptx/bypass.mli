(** Horizontal cache bypassing at PTX level (paper Section 4.2-(D),
    Listing 5): a prologue computes the warp id and a predicate
    [warp_id < warps_to_cache]; every global [ld.ca] is split into a
    pair of complementarily-predicated [ld.ca]/[ld.cg], so warps beyond
    the threshold bypass the L1. *)

val warp_size : int

(** Rewrite one kernel; raises [Invalid_argument] on non-kernels. *)
val rewrite_kernel : Isa.func -> warps_to_cache:int -> Isa.func

(** Rewrite the named kernel of a program; raises [Invalid_argument] if
    it does not exist. *)
val rewrite_prog : Isa.prog -> kernel:string -> warps_to_cache:int -> Isa.prog

(** {2 Vertical bypassing}

    The alternative scheme the paper contrasts with (Xie et al.):
    individual load sites with little reuse become [ld.cg] for every
    warp.  [should_bypass] selects sites by source location. *)

val rewrite_kernel_vertical :
  Isa.func -> should_bypass:(Bitc.Loc.t -> bool) -> Isa.func

val rewrite_prog_vertical :
  Isa.prog -> should_bypass:(Bitc.Loc.t -> bool) -> Isa.prog
