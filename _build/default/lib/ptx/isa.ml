(* The PTX-like target ISA.  It is a linear, register-based instruction
   set with explicit memory spaces and cache operators (ld.ca / ld.cg),
   which is the level at which the paper's horizontal cache bypassing
   (Listing 5) operates.  Branches carry their SIMT reconvergence point,
   computed from the IR's immediate post-dominators at code generation
   time — the same policy real hardware implements with its divergence
   stack. *)

type operand =
  | R of int (* virtual register *)
  | I of int (* integer immediate *)
  | F of float (* float immediate *)

type space =
  | Global
  | Shared (* per-CTA scratchpad; not L1/L2 traffic *)
  | Local (* per-thread frame; register-file cost, not traced *)

(* PTX cache operators on global loads: [Ca] caches at L1 (default),
   [Cg] bypasses L1 and caches at L2. *)
type cache_op = Ca | Cg

(* [pred] guards execution per thread: [Some (r, b)] runs the instruction
   only in threads where register [r] (0/1) equals [b]. *)
type pred = (int * bool) option

type inst =
  | Mov of { dst : int; src : operand }
  | Iop of { op : Bitc.Instr.binop; dst : int; a : operand; b : operand }
  | Fop of { op : Bitc.Instr.binop; dst : int; a : operand; b : operand }
  | Unop of { op : Bitc.Instr.unop; dst : int; a : operand; fl : bool }
  | Setp of { op : Bitc.Instr.cmp; dst : int; a : operand; b : operand; fl : bool }
  | Selp of { dst : int; cond : operand; a : operand; b : operand }
  | Ld of {
      dst : int;
      space : space;
      cop : cache_op;
      addr : operand;
      width : int; (* bytes: 1, 4 or 8 *)
      fl : bool; (* float-typed destination *)
      pred : pred;
    }
  | St of {
      space : space;
      cop : cache_op;
      addr : operand;
      src : operand;
      width : int;
      fl : bool;
      pred : pred;
    }
  | Atom of { dst : int; addr : operand; src : operand; width : int; fl : bool }
  | Bra of { target : int } (* unconditional *)
  | Cond_bra of {
      pr : int; (* predicate register *)
      if_true : int;
      if_false : int;
      reconv : int option; (* immediate post-dominator pc *)
    }
  | Call of { callee : string; args : operand list; dst : int option }
  | Ret of operand option
  | Bar (* CTA-wide barrier *)
  | Sreg of { dst : int; which : Bitc.Instr.special }
  | Hook of { name : string; args : operand list } (* profiler hook call *)

(* Debug location per instruction, parallel to the body array. *)
type func = {
  name : string;
  arity : int; (* parameters arrive in registers 0..arity-1 *)
  nregs : int;
  body : inst array;
  locs : Bitc.Loc.t array;
  block_of_pc : string array; (* enclosing IR block name, for reporting *)
  local_bytes : int; (* per-thread frame size *)
  shared_bytes : int; (* per-CTA static shared memory this fn declares *)
  is_kernel : bool;
}

type prog = {
  module_name : string;
  funcs : (string * func) list;
}

let find_func prog name =
  match List.assoc_opt name prog.funcs with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Isa.find_func: unknown function %s" name)

let kernels prog = List.filter (fun (_, f) -> f.is_kernel) prog.funcs

(* Total static shared memory a launch of [kernel] needs: its own
   declarations plus those of every function in the module it may call
   (conservative, resolved statically). *)
let shared_bytes_for_launch prog _kernel =
  List.fold_left (fun acc (_, f) -> acc + f.shared_bytes) 0 prog.funcs

let operand_to_string = function
  | R r -> Printf.sprintf "%%r%d" r
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%h" f

let space_to_string = function Global -> "global" | Shared -> "shared" | Local -> "local"
let cop_to_string = function Ca -> "ca" | Cg -> "cg"
