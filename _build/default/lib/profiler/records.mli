(** Host-side records produced by the mandatory instrumentation of the
    CPU code (paper Sections 3.1-(I) and 3.2.2): call frames,
    allocations and transfers, which the data-centric analyzer
    correlates with device memory accesses. *)

type host_frame = {
  frame_func : string;
  frame_file : string;
  frame_line : int;
}

type side = Host_side | Device_side

type alloc = {
  alloc_id : int;
  side : side;
  base : int;  (** address in the host or device space *)
  size : int;
  label : string;  (** variable name, e.g. ["d_graph_visited"] *)
  alloc_path : host_frame list;  (** CPU call path at the allocation *)
}

type direction = Host_to_device | Device_to_host

type transfer = {
  direction : direction;
  src : int;
  dst : int;
  bytes : int;
  transfer_path : host_frame list;
}

val frame_to_string : host_frame -> string
val side_to_string : side -> string
val direction_to_string : direction -> string

(** Does [addr] fall inside the allocation? *)
val contains : alloc -> int -> bool
