(** Calling-context tree: device shadow stacks are interned into nodes
    so each monitored instruction carries one integer that expands to
    its full device call path (paper Section 3.2.1). *)

type node = {
  id : int;
  parent : int;  (** [-1] for roots *)
  callsite : int;  (** manifest call-site id; negative for roots *)
}

type t

val create : unit -> t

(** The root node for kernel [key] (one per kernel). *)
val root : t -> key:int -> int

(** The child of [parent] through [callsite], interned. *)
val child : t -> int -> callsite:int -> int

val node : t -> int -> node
val parent : t -> int -> int

(** Call-site ids from the root (exclusive) down to the node. *)
val path : t -> int -> int list

val size : t -> int
