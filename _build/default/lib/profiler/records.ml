(* Host-side records produced by the mandatory instrumentation of the
   CPU code: call frames, allocations and transfers (Section 3.2.2,
   Figure 3).  The host runtime produces these; the data-centric
   analyzer correlates them with device memory accesses. *)

type host_frame = {
  frame_func : string;
  frame_file : string;
  frame_line : int;
}

type side = Host_side | Device_side

type alloc = {
  alloc_id : int;
  side : side;
  base : int; (* address in the host or device space *)
  size : int;
  label : string; (* variable name, e.g. "d_graph_visited" *)
  alloc_path : host_frame list; (* CPU call path at the allocation *)
}

type direction = Host_to_device | Device_to_host

type transfer = {
  direction : direction;
  src : int;
  dst : int;
  bytes : int;
  transfer_path : host_frame list;
}

let frame_to_string f = Printf.sprintf "%s():: %s: %d" f.frame_func f.frame_file f.frame_line

let side_to_string = function Host_side -> "host" | Device_side -> "device"

let direction_to_string = function
  | Host_to_device -> "cudaMemcpyHostToDevice"
  | Device_to_host -> "cudaMemcpyDeviceToHost"

(* Does [addr] fall inside allocation [a]? *)
let contains a addr = addr >= a.base && addr < a.base + a.size
