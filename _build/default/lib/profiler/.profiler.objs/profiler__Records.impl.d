lib/profiler/records.ml: Printf
