lib/profiler/cct.mli:
