lib/profiler/cct.ml: Array Hashtbl Printf
