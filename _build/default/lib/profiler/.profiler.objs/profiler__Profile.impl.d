lib/profiler/profile.ml: Array Bitc Cct Gpusim Hashtbl List Option Passes Records
