lib/profiler/profile.mli: Bitc Cct Gpusim Hashtbl Passes Records
