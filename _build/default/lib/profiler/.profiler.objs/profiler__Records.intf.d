lib/profiler/records.mli:
