lib/profiler/data_centric.ml: List Profile Records
