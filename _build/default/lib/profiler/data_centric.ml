(* Data-centric attribution primitives (Section 3.2.2, Figure 3): map a
   device address back to the data object it belongs to, and reconstruct
   the object's flow from its host-side origin through cudaMemcpy. *)

(* The device allocation containing [addr], if any. *)
let find_device_alloc (p : Profile.t) addr =
  List.find_opt
    (fun (a : Records.alloc) -> a.side = Records.Device_side && Records.contains a addr)
    (Profile.allocations p)

let find_host_alloc (p : Profile.t) addr =
  List.find_opt
    (fun (a : Records.alloc) -> a.side = Records.Host_side && Records.contains a addr)
    (Profile.allocations p)

(* Transfers that wrote into device allocation [a]. *)
let transfers_into (p : Profile.t) (a : Records.alloc) =
  List.filter
    (fun (t : Records.transfer) ->
      t.direction = Records.Host_to_device
      && t.dst < a.base + a.size
      && t.dst + t.bytes > a.base)
    (Profile.transfers p)

(* Transfers that read out of device allocation [a]. *)
let transfers_out_of (p : Profile.t) (a : Records.alloc) =
  List.filter
    (fun (t : Records.transfer) ->
      t.direction = Records.Device_to_host
      && t.src < a.base + a.size
      && t.src + t.bytes > a.base)
    (Profile.transfers p)

(* The host-side counterpart object of a device allocation: the host
   allocation from which data was last copied into it. *)
let host_counterpart (p : Profile.t) (a : Records.alloc) =
  match transfers_into p a with
  | [] -> None
  | ts ->
    let last = List.nth ts (List.length ts - 1) in
    find_host_alloc p last.Records.src

(* Full data flow of one device object, as (host object option,
   inbound transfers, outbound transfers). *)
type flow = {
  device_object : Records.alloc;
  host_object : Records.alloc option;
  inbound : Records.transfer list;
  outbound : Records.transfer list;
}

let flow_of (p : Profile.t) (a : Records.alloc) =
  {
    device_object = a;
    host_object = host_counterpart p a;
    inbound = transfers_into p a;
    outbound = transfers_out_of p a;
  }
