(* Calling-context tree.  Device shadow stacks are interned into CCT
   nodes so each monitored instruction carries a single integer that
   expands to its full device call path; the host call path is
   concatenated in front at reporting time (Section 3.2.1). *)

type node = {
  id : int;
  parent : int; (* -1 for roots *)
  callsite : int; (* manifest callsite id; -1 for roots (kernel entry) *)
}

type t = {
  mutable nodes : node array;
  mutable len : int;
  children : (int * int, int) Hashtbl.t; (* (parent, callsite) -> id *)
}

let create () = { nodes = Array.make 64 { id = 0; parent = -1; callsite = -1 }; len = 0; children = Hashtbl.create 64 }

let add t ~parent ~callsite =
  if t.len = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.len) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.len;
    t.nodes <- bigger
  end;
  let id = t.len in
  t.nodes.(id) <- { id; parent; callsite };
  t.len <- t.len + 1;
  Hashtbl.replace t.children (parent, callsite) id;
  id

(* A root node represents a kernel entry; [key] distinguishes kernels. *)
let root t ~key =
  match Hashtbl.find_opt t.children (-1, -key - 2) with
  | Some id -> id
  | None -> add t ~parent:(-1) ~callsite:(-key - 2)

let child t parent ~callsite =
  match Hashtbl.find_opt t.children (parent, callsite) with
  | Some id -> id
  | None -> add t ~parent ~callsite

let node t id =
  if id < 0 || id >= t.len then invalid_arg (Printf.sprintf "Cct.node: bad id %d" id);
  t.nodes.(id)

let parent t id = (node t id).parent

(* Call-site ids from the root (exclusive) down to [id]. *)
let path t id =
  let rec go id acc =
    if id < 0 then acc
    else
      let n = node t id in
      if n.callsite < 0 then acc else go n.parent (n.callsite :: acc)
  in
  go id []

let size t = t.len
