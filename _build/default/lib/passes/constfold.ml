(* Constant folding: evaluates instructions whose operands are all
   immediates and propagates the results.  Together with [Dce] this
   demonstrates that the engine is an ordinary compiler pass pipeline
   that tool developers can extend (the paper's "expansibility" claim
   versus the closed-source SASSI). *)

let fold_binop op ty (a : Bitc.Value.t) (b : Bitc.Value.t) : Bitc.Value.t option =
  match ty, a, b with
  | Bitc.Types.I32, Bitc.Value.Int x, Bitc.Value.Int y -> (
    let open Bitc.Instr in
    match op with
    | Add -> Some (Bitc.Value.Int (x + y))
    | Sub -> Some (Bitc.Value.Int (x - y))
    | Mul -> Some (Bitc.Value.Int (x * y))
    | Div -> if y = 0 then None else Some (Bitc.Value.Int (x / y))
    | Rem -> if y = 0 then None else Some (Bitc.Value.Int (x mod y))
    | And -> Some (Bitc.Value.Int (x land y))
    | Or -> Some (Bitc.Value.Int (x lor y))
    | Xor -> Some (Bitc.Value.Int (x lxor y))
    | Shl -> Some (Bitc.Value.Int (x lsl (y land 31)))
    | Lshr -> Some (Bitc.Value.Int (x lsr (y land 31)))
    | Min -> Some (Bitc.Value.Int (min x y))
    | Max -> Some (Bitc.Value.Int (max x y)))
  | Bitc.Types.F32, Bitc.Value.Float x, Bitc.Value.Float y -> (
    let open Bitc.Instr in
    match op with
    | Add -> Some (Bitc.Value.Float (x +. y))
    | Sub -> Some (Bitc.Value.Float (x -. y))
    | Mul -> Some (Bitc.Value.Float (x *. y))
    | Div -> Some (Bitc.Value.Float (x /. y))
    | Min -> Some (Bitc.Value.Float (Float.min x y))
    | Max -> Some (Bitc.Value.Float (Float.max x y))
    | Rem | And | Or | Xor | Shl | Lshr -> None)
  | _ -> None

let fold_cmp op (a : Bitc.Value.t) (b : Bitc.Value.t) : Bitc.Value.t option =
  let decide c =
    let open Bitc.Instr in
    Some
      (Bitc.Value.Bool
         (match op with
         | Eq -> c = 0
         | Ne -> c <> 0
         | Lt -> c < 0
         | Le -> c <= 0
         | Gt -> c > 0
         | Ge -> c >= 0))
  in
  match a, b with
  | Bitc.Value.Int x, Bitc.Value.Int y -> decide (compare x y)
  | Bitc.Value.Float x, Bitc.Value.Float y -> decide (compare x y)
  | _ -> None

let fold_unop op (a : Bitc.Value.t) : Bitc.Value.t option =
  let open Bitc.Instr in
  match op, a with
  | Neg, Bitc.Value.Int x -> Some (Bitc.Value.Int (-x))
  | Neg, Bitc.Value.Float x -> Some (Bitc.Value.Float (-.x))
  | Not, Bitc.Value.Bool x -> Some (Bitc.Value.Bool (not x))
  | Not, Bitc.Value.Int x -> Some (Bitc.Value.Int (lnot x))
  | Int_to_float, Bitc.Value.Int x -> Some (Bitc.Value.Float (float_of_int x))
  | Float_to_int, Bitc.Value.Float x -> Some (Bitc.Value.Int (int_of_float x))
  | Sqrt, Bitc.Value.Float x when x >= 0. -> Some (Bitc.Value.Float (sqrt x))
  | Fabs, Bitc.Value.Float x -> Some (Bitc.Value.Float (Float.abs x))
  | Exp, Bitc.Value.Float x -> Some (Bitc.Value.Float (exp x))
  | Log, Bitc.Value.Float x when x > 0. -> Some (Bitc.Value.Float (log x))
  | _ -> None

let run_func (f : Bitc.Func.t) =
  let consts : (int, Bitc.Value.t) Hashtbl.t = Hashtbl.create 32 in
  let subst (v : Bitc.Value.t) =
    match v with
    | Bitc.Value.Reg r -> (
      match Hashtbl.find_opt consts r with Some c -> c | None -> v)
    | _ -> v
  in
  let folded = ref 0 in
  let fold_instr (i : Bitc.Instr.t) : Bitc.Instr.t option =
    let kind =
      match i.kind with
      | Bitc.Instr.Binop (op, ty, a, b) -> Bitc.Instr.Binop (op, ty, subst a, subst b)
      | Bitc.Instr.Cmp (op, ty, a, b) -> Bitc.Instr.Cmp (op, ty, subst a, subst b)
      | Bitc.Instr.Unop (op, a) -> Bitc.Instr.Unop (op, subst a)
      | Bitc.Instr.Select (c, a, b) -> Bitc.Instr.Select (subst c, subst a, subst b)
      | Bitc.Instr.Load p -> Bitc.Instr.Load (subst p)
      | Bitc.Instr.Store s ->
        Bitc.Instr.Store { s with ptr = subst s.ptr; value = subst s.value }
      | Bitc.Instr.Gep g ->
        Bitc.Instr.Gep { g with base = subst g.base; index = subst g.index }
      | Bitc.Instr.Call c ->
        Bitc.Instr.Call { c with args = List.map subst c.args }
      | Bitc.Instr.Atomic_add a ->
        Bitc.Instr.Atomic_add { a with ptr = subst a.ptr; value = subst a.value }
      | Bitc.Instr.Ptr_cast p -> Bitc.Instr.Ptr_cast (subst p)
      | (Bitc.Instr.Alloca _ | Bitc.Instr.Shared_alloca _ | Bitc.Instr.Special _
        | Bitc.Instr.Sync) as k ->
        k
    in
    let i = { i with kind } in
    let try_const =
      match i.kind, i.result with
      | Bitc.Instr.Binop (op, ty, a, b), Some _ -> fold_binop op ty a b
      | Bitc.Instr.Cmp (op, _, a, b), Some _ -> fold_cmp op a b
      | Bitc.Instr.Unop (op, a), Some _ -> fold_unop op a
      | Bitc.Instr.Select (Bitc.Value.Bool c, a, b), Some _ ->
        Some (if c then a else b)
      | _ -> None
    in
    match try_const, i.result with
    | Some c, Some r ->
      Hashtbl.replace consts r c;
      incr folded;
      None
    | _ -> Some i
  in
  List.iter
    (fun (b : Bitc.Block.t) ->
      b.instrs <- List.filter_map fold_instr b.instrs;
      b.term <-
        Option.map
          (fun t ->
            match t with
            | Bitc.Instr.Cond_br (c, bt, bf) -> (
              match subst c with
              | Bitc.Value.Bool true -> Bitc.Instr.Br bt
              | Bitc.Value.Bool false -> Bitc.Instr.Br bf
              | c -> Bitc.Instr.Cond_br (c, bt, bf))
            | Bitc.Instr.Ret (Some v) -> Bitc.Instr.Ret (Some (subst v))
            | Bitc.Instr.Br _ | Bitc.Instr.Ret None -> t)
          b.term)
    f.blocks;
  !folded

let run (m : Bitc.Irmod.t) = List.fold_left (fun acc f -> acc + run_func f) 0 m.funcs
let pass = Pass.make ~name:"constfold" (fun m -> ignore (run m))
