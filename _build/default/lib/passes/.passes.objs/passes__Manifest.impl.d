lib/passes/manifest.ml: Bitc List Printf
