lib/passes/instrument.mli: Bitc Manifest Pass
