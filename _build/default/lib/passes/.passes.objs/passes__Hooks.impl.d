lib/passes/hooks.ml: Bitc Printf String
