lib/passes/manifest.mli: Bitc
