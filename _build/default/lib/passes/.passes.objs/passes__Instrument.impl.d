lib/passes/instrument.ml: Bitc Hooks List Manifest Option Pass
