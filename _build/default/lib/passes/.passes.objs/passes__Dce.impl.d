lib/passes/dce.ml: Bitc Hashtbl List Pass
