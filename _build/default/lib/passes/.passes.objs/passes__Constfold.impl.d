lib/passes/constfold.ml: Bitc Float Hashtbl List Option Pass
