lib/passes/pass.ml: Bitc List
