(* A minimal pass manager in the spirit of LLVM's legacy PM: named
   module transforms run in sequence, with the verifier checked after
   each pass so a broken transform is caught at its source. *)

type t = { name : string; run : Bitc.Irmod.t -> unit }

exception Pass_error of { pass : string; msg : string }

let make ~name run = { name; run }

let run_all ?(verify = true) passes (m : Bitc.Irmod.t) =
  List.iter
    (fun pass ->
      pass.run m;
      if verify then
        match Bitc.Verify.check m with
        | Ok () -> ()
        | Error msg -> raise (Pass_error { pass = pass.name; msg }))
    passes
