(* Dead-code elimination: removes side-effect-free instructions whose
   results are never read.  Loads are deliberately kept — removing them
   would change the memory profile the tool exists to measure — so this
   pass is safe to run before instrumentation. *)

let is_pure (i : Bitc.Instr.t) =
  match i.kind with
  | Bitc.Instr.Binop _ | Bitc.Instr.Unop _ | Bitc.Instr.Cmp _
  | Bitc.Instr.Select _ | Bitc.Instr.Gep _ | Bitc.Instr.Special _
  | Bitc.Instr.Ptr_cast _ ->
    true
  | Bitc.Instr.Alloca _ | Bitc.Instr.Shared_alloca _ | Bitc.Instr.Load _
  | Bitc.Instr.Store _ | Bitc.Instr.Call _ | Bitc.Instr.Sync
  | Bitc.Instr.Atomic_add _ ->
    false

let used_regs (f : Bitc.Func.t) =
  let used = Hashtbl.create 64 in
  let mark = function
    | Bitc.Value.Reg r -> Hashtbl.replace used r ()
    | Bitc.Value.Int _ | Bitc.Value.Float _ | Bitc.Value.Bool _ | Bitc.Value.Null ->
      ()
  in
  Bitc.Func.iter_instrs f (fun _ i -> List.iter mark (Bitc.Instr.operands i));
  List.iter
    (fun (b : Bitc.Block.t) ->
      match b.term with
      | Some t -> List.iter mark (Bitc.Instr.terminator_operands t)
      | None -> ())
    f.blocks;
  used

(* One sweep; returns the number of removed instructions. *)
let sweep_func (f : Bitc.Func.t) =
  let used = used_regs f in
  let removed = ref 0 in
  List.iter
    (fun (b : Bitc.Block.t) ->
      b.instrs <-
        List.filter
          (fun (i : Bitc.Instr.t) ->
            match i.result with
            | Some r when is_pure i && not (Hashtbl.mem used r) ->
              incr removed;
              false
            | _ -> true)
          b.instrs)
    f.blocks;
  !removed

let run_func f =
  let total = ref 0 in
  let rec fixpoint () =
    let n = sweep_func f in
    total := !total + n;
    if n > 0 then fixpoint ()
  in
  fixpoint ();
  !total

let run (m : Bitc.Irmod.t) = List.fold_left (fun acc f -> acc + run_func f) 0 m.funcs
let pass = Pass.make ~name:"dce" (fun m -> ignore (run m))
