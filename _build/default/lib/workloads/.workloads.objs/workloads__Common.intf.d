lib/workloads/common.mli: Bitc Hostrt
