lib/workloads/bicg.ml: Array Common Gpusim Hostrt Rng
