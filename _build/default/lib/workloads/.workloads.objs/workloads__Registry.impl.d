lib/workloads/registry.ml: Backprop Bfs Bicg Common Hotspot Lavamd List Nn Nw Srad_v2 Syr2k Syrk
