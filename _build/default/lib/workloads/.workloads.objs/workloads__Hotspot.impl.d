lib/workloads/hotspot.ml: Array Common Gpusim Hostrt Rng
