lib/workloads/backprop.ml: Array Common Gpusim Hostrt Rng
