lib/workloads/rng.ml:
