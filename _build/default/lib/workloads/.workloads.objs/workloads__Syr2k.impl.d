lib/workloads/syr2k.ml: Array Common Gpusim Hostrt Rng
