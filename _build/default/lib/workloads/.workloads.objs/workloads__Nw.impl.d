lib/workloads/nw.ml: Array Common Gpusim Hostrt Rng
