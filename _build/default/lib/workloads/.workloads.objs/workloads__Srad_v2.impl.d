lib/workloads/srad_v2.ml: Array Common Gpusim Hostrt Rng
