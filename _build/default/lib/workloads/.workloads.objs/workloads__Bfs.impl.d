lib/workloads/bfs.ml: Array Common Gpusim Hostrt Rng
