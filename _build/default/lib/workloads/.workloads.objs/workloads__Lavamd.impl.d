lib/workloads/lavamd.ml: Array Common Gpusim Hostrt Rng
