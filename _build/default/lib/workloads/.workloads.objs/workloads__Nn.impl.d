lib/workloads/nn.ml: Array Common Gpusim Hostrt Rng
