lib/workloads/syrk.ml: Array Common Gpusim Hostrt Rng
