lib/workloads/registry.mli: Common
