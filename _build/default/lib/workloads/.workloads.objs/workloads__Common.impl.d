lib/workloads/common.ml: Hostrt List Minicuda Printf
