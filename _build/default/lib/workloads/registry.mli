(** The benchmark registry: the ten applications of the paper's
    Table 2. *)

val all : Common.t list
val names : string list

(** Find by name; raises [Invalid_argument] on unknown names. *)
val find : string -> Common.t
