(* The benchmark registry: the ten applications of Table 2. *)

let all : Common.t list =
  [
    Backprop.workload;
    Bfs.workload;
    Hotspot.workload;
    Lavamd.workload;
    Nn.workload;
    Nw.workload;
    Srad_v2.workload;
    Bicg.workload;
    Syrk.workload;
    Syr2k.workload;
  ]

let names = List.map (fun (w : Common.t) -> w.name) all
let find name = Common.find all name
