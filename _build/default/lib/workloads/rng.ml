(* Deterministic xorshift PRNG for input generation, so every run of
   every experiment sees identical inputs. *)

type t = { mutable state : int }

let create ?(seed = 0x9e3779b9) () = { state = (if seed = 0 then 1 else seed) }

let next t =
  let x = t.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  t.state <- (if x = 0 then 1 else x);
  t.state

(* Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  next t mod bound

(* Uniform float in [0, 1). *)
let float t = float_of_int (next t land 0xFFFFFF) /. 16777216.0

let float_range t lo hi = lo +. ((hi -. lo) *. float t)
