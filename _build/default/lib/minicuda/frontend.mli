(** Frontend driver: MiniCUDA source text to a verified Bitc module.
    Plays the role of clang's CUDA frontend (gpucc) in the paper's
    Figure 2. *)

type error = { file : string; line : int; col : int; msg : string }

exception Error of error

val error_to_string : error -> string

(** Lex, parse, typecheck, lower and verify [src].  Raises {!Error} with
    a source position on any failure. *)
val compile : file:string -> string -> Bitc.Irmod.t

val compile_exn : file:string -> string -> Bitc.Irmod.t

(** Like {!compile} but returning a printable error instead of raising. *)
val compile_result : file:string -> string -> (Bitc.Irmod.t, string) result
