(* Recursive-descent parser for MiniCUDA with precedence climbing for
   expressions.  Menhir is not vendored in this environment, and the
   grammar is small enough that a hand-written parser keeps the frontend
   dependency-free (see DESIGN.md). *)

exception Error of { file : string; line : int; col : int; msg : string }

type state = {
  file : string;
  mutable toks : Lexer.spanned list;
}

let error st msg =
  let line, col =
    match st.toks with sp :: _ -> (sp.Lexer.line, sp.Lexer.col) | [] -> (0, 0)
  in
  raise (Error { file = st.file; line; col; msg })

let peek st = match st.toks with sp :: _ -> sp.Lexer.tok | [] -> Token.Eof

let peek_snd st =
  match st.toks with _ :: sp :: _ -> sp.Lexer.tok | _ -> Token.Eof

let pos st : Ast.pos =
  match st.toks with
  | sp :: _ -> { line = sp.Lexer.line; col = sp.Lexer.col }
  | [] -> { line = 0; col = 0 }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

(* type := ("void"|"int"|"float"|"bool") "*"*  *)
let parse_base_ty st =
  match peek st with
  | Token.Kw_void ->
    advance st;
    Ast.Void
  | Token.Kw_int ->
    advance st;
    Ast.Int
  | Token.Kw_float ->
    advance st;
    Ast.Float
  | Token.Kw_bool ->
    advance st;
    Ast.Bool
  | t -> error st (Printf.sprintf "expected a type, found %s" (Token.to_string t))

let parse_ty st =
  let base = parse_base_ty st in
  let rec stars ty =
    if Token.equal (peek st) Token.Star then (
      advance st;
      stars (Ast.Ptr ty))
    else ty
  in
  stars base

let starts_type = function
  | Token.Kw_void | Token.Kw_int | Token.Kw_float | Token.Kw_bool -> true
  | _ -> false

let builtin_objects = [ "threadIdx"; "blockIdx"; "blockDim"; "gridDim" ]

(* Binary operator precedence, loosest first; C-compatible ordering. *)
let binop_of_token = function
  | Token.Pipe_pipe -> Some (Ast.LOr, 1)
  | Token.Amp_amp -> Some (Ast.LAnd, 2)
  | Token.Pipe -> Some (Ast.BOr, 3)
  | Token.Caret -> Some (Ast.BXor, 4)
  | Token.Amp -> Some (Ast.BAnd, 5)
  | Token.Eq_eq -> Some (Ast.Eq, 6)
  | Token.Bang_eq -> Some (Ast.Ne, 6)
  | Token.Lt -> Some (Ast.Lt, 7)
  | Token.Le -> Some (Ast.Le, 7)
  | Token.Gt -> Some (Ast.Gt, 7)
  | Token.Ge -> Some (Ast.Ge, 7)
  | Token.Shl -> Some (Ast.Shl, 8)
  | Token.Shr -> Some (Ast.Shr, 8)
  | Token.Plus -> Some (Ast.Add, 9)
  | Token.Minus -> Some (Ast.Sub, 9)
  | Token.Star -> Some (Ast.Mul, 10)
  | Token.Slash -> Some (Ast.Div, 10)
  | Token.Percent -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let cond = parse_binary st 1 in
  if Token.equal (peek st) Token.Question then begin
    let p = pos st in
    advance st;
    let then_e = parse_expr st in
    expect st Token.Colon;
    let else_e = parse_ternary st in
    { Ast.e = Ast.Ternary (cond, then_e, else_e); pos = p }
  end
  else cond

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      let p = pos st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop { Ast.e = Ast.Binop (op, lhs, rhs); pos = p }
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  let p = pos st in
  match peek st with
  | Token.Minus ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Neg, parse_unary st); pos = p }
  | Token.Bang ->
    advance st;
    { Ast.e = Ast.Unop (Ast.LNot, parse_unary st); pos = p }
  | Token.Amp ->
    advance st;
    { Ast.e = Ast.Unop (Ast.AddrOf, parse_unary st); pos = p }
  | Token.Star ->
    advance st;
    { Ast.e = Ast.Deref (parse_unary st); pos = p }
  | Token.Lparen when starts_type (peek_snd st) ->
    advance st;
    let ty = parse_ty st in
    expect st Token.Rparen;
    { Ast.e = Ast.Cast (ty, parse_unary st); pos = p }
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec loop e =
    match peek st with
    | Token.Lbracket ->
      let p = pos st in
      advance st;
      let idx = parse_expr st in
      expect st Token.Rbracket;
      loop { Ast.e = Ast.Index (e, idx); pos = p }
    | _ -> e
  in
  loop base

and parse_primary st =
  let p = pos st in
  match peek st with
  | Token.Int_lit i ->
    advance st;
    { Ast.e = Ast.Int_lit i; pos = p }
  | Token.Float_lit f ->
    advance st;
    { Ast.e = Ast.Float_lit f; pos = p }
  | Token.Kw_true ->
    advance st;
    { Ast.e = Ast.Bool_lit true; pos = p }
  | Token.Kw_false ->
    advance st;
    { Ast.e = Ast.Bool_lit false; pos = p }
  | Token.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Token.Rparen;
    e
  | Token.Ident name when List.mem name builtin_objects ->
    advance st;
    expect st Token.Dot;
    let field = expect_ident st in
    if field <> "x" && field <> "y" then
      error st (Printf.sprintf "unknown builtin field %s.%s" name field);
    { Ast.e = Ast.Builtin (name, field); pos = p }
  | Token.Ident name when Token.equal (peek_snd st) Token.Lparen ->
    advance st;
    advance st;
    let rec args acc =
      if Token.equal (peek st) Token.Rparen then List.rev acc
      else
        let a = parse_expr st in
        if Token.equal (peek st) Token.Comma then (
          advance st;
          args (a :: acc))
        else List.rev (a :: acc)
    in
    let actuals = args [] in
    expect st Token.Rparen;
    { Ast.e = Ast.Call (name, actuals); pos = p }
  | Token.Ident name ->
    advance st;
    { Ast.e = Ast.Var name; pos = p }
  | t -> error st (Printf.sprintf "unexpected token %s in expression" (Token.to_string t))

let rec parse_stmt st : Ast.stmt =
  let p = pos st in
  match peek st with
  | Token.Kw_shared ->
    advance st;
    let ty = parse_ty st in
    let name = expect_ident st in
    expect st Token.Lbracket;
    let size =
      match peek st with
      | Token.Int_lit n ->
        advance st;
        n
      | t -> error st (Printf.sprintf "expected array size, found %s" (Token.to_string t))
    in
    expect st Token.Rbracket;
    expect st Token.Semi;
    { Ast.s = Ast.Shared_decl (ty, name, size); spos = p }
  | t when starts_type t ->
    let ty = parse_ty st in
    let name = expect_ident st in
    let init =
      if Token.equal (peek st) Token.Assign then (
        advance st;
        Some (parse_expr st))
      else None
    in
    expect st Token.Semi;
    { Ast.s = Ast.Decl (ty, name, init); spos = p }
  | Token.Kw_if ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    let then_body = parse_body st in
    let else_body =
      if Token.equal (peek st) Token.Kw_else then (
        advance st;
        parse_body st)
      else []
    in
    { Ast.s = Ast.If (cond, then_body, else_body); spos = p }
  | Token.Kw_while ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    let body = parse_body st in
    { Ast.s = Ast.While (cond, body); spos = p }
  | Token.Kw_for ->
    advance st;
    expect st Token.Lparen;
    let init =
      if Token.equal (peek st) Token.Semi then (
        advance st;
        None)
      else Some (parse_stmt st) (* consumes the ';' for decl/assign *)
    in
    let cond =
      if Token.equal (peek st) Token.Semi then None else Some (parse_expr st)
    in
    expect st Token.Semi;
    let step =
      if Token.equal (peek st) Token.Rparen then None
      else Some (parse_simple_stmt st)
    in
    expect st Token.Rparen;
    let body = parse_body st in
    { Ast.s = Ast.For (init, cond, step, body); spos = p }
  | Token.Kw_return ->
    advance st;
    let v =
      if Token.equal (peek st) Token.Semi then None else Some (parse_expr st)
    in
    expect st Token.Semi;
    { Ast.s = Ast.Return v; spos = p }
  | Token.Lbrace -> { Ast.s = Ast.Block (parse_body st); spos = p }
  | _ ->
    let s = parse_simple_stmt st in
    expect st Token.Semi;
    s

(* assignment or expression statement, without trailing ';' (shared with
   the for-step position). *)
and parse_simple_stmt st : Ast.stmt =
  let p = pos st in
  let lhs = parse_expr st in
  if Token.equal (peek st) Token.Assign then begin
    advance st;
    let rhs = parse_expr st in
    { Ast.s = Ast.Assign (lhs, rhs); spos = p }
  end
  else { Ast.s = Ast.Expr_stmt lhs; spos = p }

and parse_body st : Ast.stmt list =
  if Token.equal (peek st) Token.Lbrace then begin
    advance st;
    let rec go acc =
      if Token.equal (peek st) Token.Rbrace then (
        advance st;
        List.rev acc)
      else go (parse_stmt st :: acc)
    in
    go []
  end
  else [ parse_stmt st ]

let parse_func st : Ast.func =
  let p = pos st in
  let fkind =
    match peek st with
    | Token.Kw_global ->
      advance st;
      Bitc.Func.Kernel
    | Token.Kw_device ->
      advance st;
      Bitc.Func.Device
    | t ->
      error st
        (Printf.sprintf "expected __global__ or __device__, found %s"
           (Token.to_string t))
  in
  let ret = parse_ty st in
  let name = expect_ident st in
  expect st Token.Lparen;
  let rec params acc =
    if Token.equal (peek st) Token.Rparen then List.rev acc
    else
      let ty = parse_ty st in
      let pname = expect_ident st in
      let acc = (ty, pname) :: acc in
      if Token.equal (peek st) Token.Comma then (
        advance st;
        params acc)
      else List.rev acc
  in
  let params = params [] in
  expect st Token.Rparen;
  expect st Token.Lbrace;
  let rec body acc =
    if Token.equal (peek st) Token.Rbrace then (
      advance st;
      List.rev acc)
    else body (parse_stmt st :: acc)
  in
  let body = body [] in
  { Ast.fkind; ret; name; params; body; fpos = p }

let parse_program ~file src : Ast.program =
  let st = { file; toks = Lexer.tokenize ~file src } in
  let rec go acc =
    if Token.equal (peek st) Token.Eof then List.rev acc
    else go (parse_func st :: acc)
  in
  { Ast.file; funcs = go [] }
