lib/minicuda/frontend.ml: Bitc Lexer Lower Parser Printf Typecheck
