lib/minicuda/lower.ml: Ast Bitc List Option Printf Tast
