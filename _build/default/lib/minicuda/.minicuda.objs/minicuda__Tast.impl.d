lib/minicuda/tast.ml: Ast Bitc
