lib/minicuda/ast.ml: Bitc
