lib/minicuda/parser.ml: Ast Bitc Lexer List Printf Token
