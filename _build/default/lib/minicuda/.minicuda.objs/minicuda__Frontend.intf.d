lib/minicuda/frontend.mli: Bitc
