lib/minicuda/typecheck.ml: Ast Bitc Hashtbl List Option Printf Tast
