lib/minicuda/token.ml:
