lib/minicuda/lexer.ml: List Printf String Token
