(* Raw abstract syntax of MiniCUDA, produced by the parser.  Every node
   carries the source position that becomes !dbg metadata in the IR. *)

type pos = { line : int; col : int }

type ty =
  | Void
  | Int
  | Float
  | Bool
  | Ptr of ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LAnd (* short-circuit *)
  | LOr (* short-circuit *)

type unop = Neg | LNot | AddrOf

type expr = { e : expr_kind; pos : pos }

and expr_kind =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Builtin of string * string (* threadIdx.x, blockDim.y, ... *)
  | Index of expr * expr (* a[i] *)
  | Deref of expr (* *p *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Ternary of expr * expr * expr
  | Cast of ty * expr
  | Call of string * expr list

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Decl of ty * string * expr option
  | Shared_decl of ty * string * int (* __shared__ float tile[256]; *)
  | Assign of expr * expr (* lvalue = rvalue *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Expr_stmt of expr (* calls for effect, e.g. __syncthreads() *)
  | Block of stmt list

type func = {
  fkind : Bitc.Func.fkind;
  ret : ty;
  name : string;
  params : (ty * string) list;
  body : stmt list;
  fpos : pos;
}

type program = { file : string; funcs : func list }

let rec ty_to_string = function
  | Void -> "void"
  | Int -> "int"
  | Float -> "float"
  | Bool -> "bool"
  | Ptr t -> ty_to_string t ^ "*"
