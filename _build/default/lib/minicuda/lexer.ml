(* Hand-written lexer for MiniCUDA.  Tracks line and column so every
   token — and hence every IR instruction — carries the debug location
   that the instrumentation engine forwards to the profiler. *)

exception Error of { file : string; line : int; col : int; msg : string }

type spanned = { tok : Token.t; line : int; col : int }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make ~file src = { src; file; pos = 0; line = 1; col = 1 }

let error st msg = raise (Error { file = st.file; line = st.line; col = st.col; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "__global__" -> Some Token.Kw_global
  | "__device__" -> Some Token.Kw_device
  | "__shared__" -> Some Token.Kw_shared
  | "void" -> Some Token.Kw_void
  | "int" -> Some Token.Kw_int
  | "float" -> Some Token.Kw_float
  | "bool" -> Some Token.Kw_bool
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "for" -> Some Token.Kw_for
  | "while" -> Some Token.Kw_while
  | "return" -> Some Token.Kw_return
  | "true" -> Some Token.Kw_true
  | "false" -> Some Token.Kw_false
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec to_close () =
      match peek st, peek2 st with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        to_close ()
      | None, _ -> error st "unterminated block comment"
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek st with
    | Some '.' when (match peek2 st with Some c -> is_digit c | _ -> false) ->
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | Some '.' ->
      advance st;
      true
    | _ -> false
  in
  (* Exponent part, e.g. 1.0e-3. *)
  let is_float =
    match peek st with
    | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | _ -> is_float
  in
  let text = String.sub st.src start (st.pos - start) in
  (* Consume an optional 'f' suffix; it forces a float literal. *)
  let is_float =
    match peek st with
    | Some ('f' | 'F') ->
      advance st;
      true
    | _ -> is_float
  in
  if is_float then Token.Float_lit (float_of_string text)
  else Token.Int_lit (int_of_string text)

let next st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Token.Eof
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c ->
      let start = st.pos in
      while (match peek st with Some c -> is_ident_char c | None -> false) do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      (match keyword text with Some kw -> kw | None -> Token.Ident text)
    | Some c ->
      let two target a b =
        advance st;
        if peek st = Some b then (
          advance st;
          target)
        else a
      in
      (match c with
      | '(' ->
        advance st;
        Token.Lparen
      | ')' ->
        advance st;
        Token.Rparen
      | '{' ->
        advance st;
        Token.Lbrace
      | '}' ->
        advance st;
        Token.Rbrace
      | '[' ->
        advance st;
        Token.Lbracket
      | ']' ->
        advance st;
        Token.Rbracket
      | ',' ->
        advance st;
        Token.Comma
      | ';' ->
        advance st;
        Token.Semi
      | '.' ->
        advance st;
        Token.Dot
      | '+' ->
        advance st;
        Token.Plus
      | '-' ->
        advance st;
        Token.Minus
      | '*' ->
        advance st;
        Token.Star
      | '/' ->
        advance st;
        Token.Slash
      | '%' ->
        advance st;
        Token.Percent
      | '^' ->
        advance st;
        Token.Caret
      | '?' ->
        advance st;
        Token.Question
      | ':' ->
        advance st;
        Token.Colon
      | '&' -> two Token.Amp_amp Token.Amp '&'
      | '|' -> two Token.Pipe_pipe Token.Pipe '|'
      | '<' -> (
        advance st;
        match peek st with
        | Some '=' ->
          advance st;
          Token.Le
        | Some '<' ->
          advance st;
          Token.Shl
        | _ -> Token.Lt)
      | '>' -> (
        advance st;
        match peek st with
        | Some '=' ->
          advance st;
          Token.Ge
        | Some '>' ->
          advance st;
          Token.Shr
        | _ -> Token.Gt)
      | '=' -> two Token.Eq_eq Token.Assign '='
      | '!' -> two Token.Bang_eq Token.Bang '='
      | c -> error st (Printf.sprintf "unexpected character %C" c))
  in
  { tok; line; col }

(* Lex the whole input eagerly; kernels are small so this is simplest for
   the recursive-descent parser's lookahead. *)
let tokenize ~file src =
  let st = make ~file src in
  let rec go acc =
    let sp = next st in
    if sp.tok = Token.Eof then List.rev (sp :: acc) else go (sp :: acc)
  in
  go []
