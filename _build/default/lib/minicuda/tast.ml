(* Typed abstract syntax: output of the typechecker, input of IR
   lowering.  Reads of variables/array cells are explicit [Rvalue]
   nodes, implicit int->float promotions are explicit [Cast] nodes, and
   short-circuit operators are distinguished from bitwise ones because
   they lower to control flow. *)

type intrinsic =
  | Sqrtf
  | Expf
  | Logf
  | Fabsf
  | Min of Ast.ty (* Int or Float *)
  | Max of Ast.ty
  | Atomic_add (* atomicAdd(ptr, v) *)
  | Syncthreads

type lvalue = { l : lvalue_kind; lty : Ast.ty; lpos : Ast.pos }

and lvalue_kind =
  | Lvar of string (* alloca-backed local or parameter *)
  | Lindex of expr * expr (* base pointer expression, element index *)
  | Lderef of expr

and expr = { e : expr_kind; ty : Ast.ty; pos : Ast.pos }

and expr_kind =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Rvalue of lvalue
  | Shared_ref of string (* the pointer value of a __shared__ array *)
  | Builtin of Bitc.Instr.special
  | Binop of Ast.binop * expr * expr (* arithmetic/bitwise, unified types *)
  | Cmp of Ast.binop * expr * expr (* result is Bool *)
  | Short_circuit of [ `And | `Or ] * expr * expr
  | Unop of [ `Neg | `LNot ] * expr
  | Addr_of of lvalue
  | Ternary of expr * expr * expr
  | Cast of Ast.ty * expr
  | Call of string * expr list
  | Intrinsic of intrinsic * expr list

type stmt = { s : stmt_kind; spos : Ast.pos }

and stmt_kind =
  | Decl of Ast.ty * string * expr option
  | Shared_decl of Ast.ty * string * int
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Expr_stmt of expr
  | Block of stmt list

type func = {
  fkind : Bitc.Func.fkind;
  ret : Ast.ty;
  name : string;
  params : (Ast.ty * string) list;
  body : stmt list;
  fpos : Ast.pos;
}

type program = { file : string; funcs : func list }
