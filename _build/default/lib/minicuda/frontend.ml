(* Frontend driver: source text -> verified Bitc module.  Plays the role
   of clang's CUDA frontend (gpucc) in Figure 2 of the paper. *)

type error = { file : string; line : int; col : int; msg : string }

exception Error of error

let error_to_string e = Printf.sprintf "%s:%d:%d: %s" e.file e.line e.col e.msg

let compile ~file src : Bitc.Irmod.t =
  let reraise ~line ~col msg = raise (Error { file; line; col; msg }) in
  try
    let ast = Parser.parse_program ~file src in
    let tast = Typecheck.check_program ast in
    let m = Lower.lower_program tast in
    Bitc.Verify.run m;
    m
  with
  | Lexer.Error { line; col; msg; _ } -> reraise ~line ~col ("lex error: " ^ msg)
  | Parser.Error { line; col; msg; _ } -> reraise ~line ~col ("parse error: " ^ msg)
  | Typecheck.Error { pos; msg; _ } ->
    reraise ~line:pos.line ~col:pos.col ("type error: " ^ msg)
  | Lower.Error msg -> reraise ~line:0 ~col:0 ("lowering error: " ^ msg)
  | Bitc.Verify.Invalid msg -> reraise ~line:0 ~col:0 ("verifier error: " ^ msg)

let compile_exn = compile

let compile_result ~file src =
  match compile ~file src with
  | m -> Ok m
  | exception Error e -> Error (error_to_string e)
