(* Tokens of the MiniCUDA language: the C subset in which the evaluation
   kernels (Table 2 of the paper) are written. *)

type t =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Kw_global (* __global__ *)
  | Kw_device (* __device__ *)
  | Kw_shared (* __shared__ *)
  | Kw_void
  | Kw_int
  | Kw_float
  | Kw_bool
  | Kw_if
  | Kw_else
  | Kw_for
  | Kw_while
  | Kw_return
  | Kw_true
  | Kw_false
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Dot
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Pipe_pipe
  | Bang
  | Assign
  | Question
  | Colon
  | Eof

let to_string = function
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Ident s -> s
  | Kw_global -> "__global__"
  | Kw_device -> "__device__"
  | Kw_shared -> "__shared__"
  | Kw_void -> "void"
  | Kw_int -> "int"
  | Kw_float -> "float"
  | Kw_bool -> "bool"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_for -> "for"
  | Kw_while -> "while"
  | Kw_return -> "return"
  | Kw_true -> "true"
  | Kw_false -> "false"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semi -> ";"
  | Dot -> "."
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Bang -> "!"
  | Assign -> "="
  | Question -> "?"
  | Colon -> ":"
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b
