(* Lowering from the typed AST to Bitc IR.  The scheme matches clang at
   -O0, which is what the paper instruments: every local variable
   (including parameters) lives in an alloca; reads and writes become
   load/store; short-circuit operators and ternaries become control
   flow.  This keeps all memory operations visible to the
   instrumentation engine. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let rec lower_ty = function
  | Ast.Void -> Bitc.Types.Void
  | Ast.Int -> Bitc.Types.I32
  | Ast.Float -> Bitc.Types.F32
  | Ast.Bool -> Bitc.Types.I1
  | Ast.Ptr t -> Bitc.Types.Ptr (lower_ty t, Bitc.Types.Global)

type env = {
  file : string;
  builder : Bitc.Builder.t;
  func : Bitc.Func.t;
  (* Variable name -> address of its alloca slot. *)
  mutable vars : (string * Bitc.Value.t) list;
  (* __shared__ array name -> its base pointer value. *)
  mutable shared : (string * Bitc.Value.t) list;
}

let loc_of env (pos : Ast.pos) =
  Bitc.Loc.make ~file:env.file ~line:pos.line ~col:pos.col

let set_loc env pos = Bitc.Builder.set_loc env.builder (loc_of env pos)

let lookup_var env name =
  match List.assoc_opt name env.vars with
  | Some v -> v
  | None -> fail "Lower: unbound variable %s" name

let lookup_shared env name =
  match List.assoc_opt name env.shared with
  | Some v -> v
  | None -> fail "Lower: unbound shared array %s" name

let binop_instr ~float_ok op =
  ignore float_ok;
  match op with
  | Ast.Add -> Bitc.Instr.Add
  | Ast.Sub -> Bitc.Instr.Sub
  | Ast.Mul -> Bitc.Instr.Mul
  | Ast.Div -> Bitc.Instr.Div
  | Ast.Rem -> Bitc.Instr.Rem
  | Ast.BAnd -> Bitc.Instr.And
  | Ast.BOr -> Bitc.Instr.Or
  | Ast.BXor -> Bitc.Instr.Xor
  | Ast.Shl -> Bitc.Instr.Shl
  | Ast.Shr -> Bitc.Instr.Lshr
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.LAnd | Ast.LOr ->
    fail "Lower: not an arithmetic operator"

let cmp_instr = function
  | Ast.Lt -> Bitc.Instr.Lt
  | Ast.Le -> Bitc.Instr.Le
  | Ast.Gt -> Bitc.Instr.Gt
  | Ast.Ge -> Bitc.Instr.Ge
  | Ast.Eq -> Bitc.Instr.Eq
  | Ast.Ne -> Bitc.Instr.Ne
  | _ -> fail "Lower: not a comparison operator"

let rec lower_expr env (e : Tast.expr) : Bitc.Value.t =
  let b = env.builder in
  set_loc env e.pos;
  match e.e with
  | Tast.Int_lit i -> Bitc.Value.Int i
  | Tast.Float_lit f -> Bitc.Value.Float f
  | Tast.Bool_lit v -> Bitc.Value.Bool v
  | Tast.Rvalue lv ->
    let addr = lower_lvalue env lv in
    set_loc env lv.lpos;
    Bitc.Builder.load b addr
  | Tast.Shared_ref name -> lookup_shared env name
  | Tast.Builtin s -> Bitc.Builder.special b s
  | Tast.Binop (op, lhs, rhs) -> (
    let vl = lower_expr env lhs and vr = lower_expr env rhs in
    set_loc env e.pos;
    match lhs.ty, op with
    | Ast.Ptr _, Ast.Add -> Bitc.Builder.gep b ~base:vl ~index:vr
    | Ast.Ptr _, Ast.Sub ->
      let neg = Bitc.Builder.binop b Bitc.Instr.Sub (Bitc.Value.Int 0) vr in
      Bitc.Builder.gep b ~base:vl ~index:neg
    | _ -> Bitc.Builder.binop b (binop_instr ~float_ok:true op) vl vr)
  | Tast.Cmp (op, lhs, rhs) ->
    let vl = lower_expr env lhs and vr = lower_expr env rhs in
    set_loc env e.pos;
    Bitc.Builder.cmp b (cmp_instr op) vl vr
  | Tast.Short_circuit (which, lhs, rhs) ->
    let tmp = Bitc.Builder.alloca b Bitc.Types.I1 1 in
    let vl = lower_expr env lhs in
    Bitc.Builder.store b ~ptr:tmp ~value:vl;
    let rhs_block = Bitc.Builder.new_block b "sc.rhs" in
    let merge = Bitc.Builder.new_block b "sc.end" in
    (match which with
    | `And -> Bitc.Builder.cond_br b vl ~then_:rhs_block ~else_:merge
    | `Or -> Bitc.Builder.cond_br b vl ~then_:merge ~else_:rhs_block);
    Bitc.Builder.set_block b rhs_block;
    let vr = lower_expr env rhs in
    Bitc.Builder.store b ~ptr:tmp ~value:vr;
    Bitc.Builder.br b merge;
    Bitc.Builder.set_block b merge;
    Bitc.Builder.load b tmp
  | Tast.Unop (`Neg, a) ->
    let v = lower_expr env a in
    set_loc env e.pos;
    Bitc.Builder.unop b Bitc.Instr.Neg v
  | Tast.Unop (`LNot, a) ->
    let v = lower_expr env a in
    set_loc env e.pos;
    Bitc.Builder.unop b Bitc.Instr.Not v
  | Tast.Addr_of lv -> lower_lvalue env lv
  | Tast.Ternary (c, a, other) ->
    let ty = lower_ty e.ty in
    let tmp = Bitc.Builder.alloca b ty 1 in
    let vc = lower_expr env c in
    let then_block = Bitc.Builder.new_block b "sel.then" in
    let else_block = Bitc.Builder.new_block b "sel.else" in
    let merge = Bitc.Builder.new_block b "sel.end" in
    Bitc.Builder.cond_br b vc ~then_:then_block ~else_:else_block;
    Bitc.Builder.set_block b then_block;
    let va = lower_expr env a in
    Bitc.Builder.store b ~ptr:tmp ~value:va;
    Bitc.Builder.br b merge;
    Bitc.Builder.set_block b else_block;
    let vo = lower_expr env other in
    Bitc.Builder.store b ~ptr:tmp ~value:vo;
    Bitc.Builder.br b merge;
    Bitc.Builder.set_block b merge;
    Bitc.Builder.load b tmp
  | Tast.Cast (target, a) -> (
    let v = lower_expr env a in
    set_loc env e.pos;
    match a.ty, target with
    | Ast.Int, Ast.Float -> Bitc.Builder.unop b Bitc.Instr.Int_to_float v
    | Ast.Float, Ast.Int -> Bitc.Builder.unop b Bitc.Instr.Float_to_int v
    | Ast.Bool, Ast.Int ->
      Bitc.Builder.select b v (Bitc.Value.Int 1) (Bitc.Value.Int 0)
    | from, to_ ->
      fail "Lower: unsupported cast %s -> %s" (Ast.ty_to_string from)
        (Ast.ty_to_string to_))
  | Tast.Call (callee, args) -> (
    let vargs = List.map (lower_expr env) args in
    set_loc env e.pos;
    let ret = lower_ty e.ty in
    match Bitc.Builder.call b ~callee ~args:vargs ~ret with
    | Some v -> v
    | None -> Bitc.Value.Int 0 (* void call used as expression: unreachable *))
  | Tast.Intrinsic (intr, args) -> (
    let vargs = List.map (lower_expr env) args in
    set_loc env e.pos;
    match intr, vargs with
    | Tast.Sqrtf, [ v ] -> Bitc.Builder.unop b Bitc.Instr.Sqrt v
    | Tast.Expf, [ v ] -> Bitc.Builder.unop b Bitc.Instr.Exp v
    | Tast.Logf, [ v ] -> Bitc.Builder.unop b Bitc.Instr.Log v
    | Tast.Fabsf, [ v ] -> Bitc.Builder.unop b Bitc.Instr.Fabs v
    | Tast.Min _, [ x; y ] -> Bitc.Builder.binop b Bitc.Instr.Min x y
    | Tast.Max _, [ x; y ] -> Bitc.Builder.binop b Bitc.Instr.Max x y
    | Tast.Atomic_add, [ ptr; v ] -> Bitc.Builder.atomic_add b ~ptr ~value:v
    | Tast.Syncthreads, [] ->
      Bitc.Builder.sync b;
      Bitc.Value.Int 0
    | _ -> fail "Lower: malformed intrinsic application")

and lower_lvalue env (lv : Tast.lvalue) : Bitc.Value.t =
  match lv.l with
  | Tast.Lvar name -> lookup_var env name
  | Tast.Lindex (base, idx) ->
    let vb = lower_expr env base in
    let vi = lower_expr env idx in
    set_loc env lv.lpos;
    Bitc.Builder.gep env.builder ~base:vb ~index:vi
  | Tast.Lderef p -> lower_expr env p

let rec lower_stmt env (st : Tast.stmt) : unit =
  let b = env.builder in
  set_loc env st.spos;
  match st.s with
  | Tast.Decl (ty, name, init) ->
    let slot = Bitc.Builder.alloca b (lower_ty ty) 1 in
    env.vars <- (name, slot) :: env.vars;
    Option.iter
      (fun e ->
        let v = lower_expr env e in
        set_loc env st.spos;
        Bitc.Builder.store b ~ptr:slot ~value:v)
      init
  | Tast.Shared_decl (ty, name, size) ->
    let base = Bitc.Builder.shared_alloca b (lower_ty ty) size in
    env.shared <- (name, base) :: env.shared
  | Tast.Assign (lv, rhs) ->
    let addr = lower_lvalue env lv in
    let v = lower_expr env rhs in
    set_loc env st.spos;
    Bitc.Builder.store b ~ptr:addr ~value:v
  | Tast.If (cond, then_b, else_b) ->
    let vc = lower_expr env cond in
    let then_block = Bitc.Builder.new_block b "if.then" in
    let merge = Bitc.Builder.new_block b "if.end" in
    let else_block =
      if else_b = [] then merge else Bitc.Builder.new_block b "if.else"
    in
    Bitc.Builder.cond_br b vc ~then_:then_block ~else_:else_block;
    Bitc.Builder.set_block b then_block;
    lower_block env then_b;
    Bitc.Builder.br b merge;
    if else_b <> [] then begin
      Bitc.Builder.set_block b else_block;
      lower_block env else_b;
      Bitc.Builder.br b merge
    end;
    Bitc.Builder.set_block b merge
  | Tast.While (cond, body) ->
    let cond_block = Bitc.Builder.new_block b "while.cond" in
    let body_block = Bitc.Builder.new_block b "while.body" in
    let exit_block = Bitc.Builder.new_block b "while.end" in
    Bitc.Builder.br b cond_block;
    Bitc.Builder.set_block b cond_block;
    let vc = lower_expr env cond in
    Bitc.Builder.cond_br b vc ~then_:body_block ~else_:exit_block;
    Bitc.Builder.set_block b body_block;
    lower_block env body;
    Bitc.Builder.br b cond_block;
    Bitc.Builder.set_block b exit_block
  | Tast.For (init, cond, step, body) ->
    let saved = env.vars in
    Option.iter (lower_stmt env) init;
    let cond_block = Bitc.Builder.new_block b "for.cond" in
    let body_block = Bitc.Builder.new_block b "for.body" in
    let exit_block = Bitc.Builder.new_block b "for.end" in
    Bitc.Builder.br b cond_block;
    Bitc.Builder.set_block b cond_block;
    (match cond with
    | Some c ->
      let vc = lower_expr env c in
      Bitc.Builder.cond_br b vc ~then_:body_block ~else_:exit_block
    | None -> Bitc.Builder.br b body_block);
    Bitc.Builder.set_block b body_block;
    lower_block env body;
    Option.iter (lower_stmt env) step;
    Bitc.Builder.br b cond_block;
    Bitc.Builder.set_block b exit_block;
    env.vars <- saved
  | Tast.Return v ->
    let value = Option.map (lower_expr env) v in
    Bitc.Builder.ret b value;
    (* Statements after a return are dead; emit them into an unreachable
       block so the current block keeps a single terminator. *)
    let dead = Bitc.Builder.new_block b "dead" in
    Bitc.Builder.set_block b dead
  | Tast.Expr_stmt e -> ignore (lower_expr env e)
  | Tast.Block body -> lower_block env body

and lower_block env stmts =
  let saved = env.vars in
  List.iter (lower_stmt env) stmts;
  env.vars <- saved

let default_return (f : Bitc.Func.t) =
  match f.ret with
  | Bitc.Types.Void -> None
  | Bitc.Types.I32 -> Some (Bitc.Value.Int 0)
  | Bitc.Types.F32 -> Some (Bitc.Value.Float 0.)
  | Bitc.Types.I1 -> Some (Bitc.Value.Bool false)
  | Bitc.Types.Ptr _ -> Some Bitc.Value.Null

let lower_func ~file (m : Bitc.Irmod.t) (f : Tast.func) : Bitc.Func.t =
  let params = List.map (fun (ty, name) -> (name, lower_ty ty)) f.params in
  let func =
    Bitc.Func.create ~name:f.name ~params ~ret:(lower_ty f.ret) ~fkind:f.fkind
  in
  Bitc.Irmod.add_func m func;
  let builder = Bitc.Builder.create func in
  let env = { file; builder; func; vars = []; shared = [] } in
  set_loc env f.fpos;
  (* Spill parameters to allocas, clang -O0 style. *)
  List.iteri
    (fun i (name, ty) ->
      let slot = Bitc.Builder.alloca builder ty 1 in
      Bitc.Builder.store builder ~ptr:slot ~value:(Bitc.Value.Reg i);
      env.vars <- (name, slot) :: env.vars)
    params;
  lower_block env f.body;
  (* Terminate any fall-through or dead blocks. *)
  List.iter
    (fun (blk : Bitc.Block.t) ->
      if blk.term = None then blk.term <- Some (Bitc.Instr.Ret (default_return func)))
    func.blocks;
  func

let lower_program (p : Tast.program) : Bitc.Irmod.t =
  let m = Bitc.Irmod.create p.file in
  List.iter (fun f -> ignore (lower_func ~file:p.file m f)) p.funcs;
  m
