(* Miss-status holding registers for an SM's L1.  A bounded pool of
   in-flight misses: a primary miss takes an entry until its fill
   completes; secondary misses to the same line merge with the pending
   entry.  When the pool is full a new miss stalls until the earliest
   completion — the "MSHR allocation failure" congestion the paper's
   bypassing case study (Section 4.2-(D)) relieves. *)

type entry = { line : int; completes_at : int }

type t = {
  capacity : int;
  mutable entries : entry list;
  mutable stall_cycles : int; (* accumulated, for reporting *)
  mutable merges : int;
}

let create capacity = { capacity; entries = []; stall_cycles = 0; merges = 0 }

let purge t ~now = t.entries <- List.filter (fun e -> e.completes_at > now) t.entries

(* Reserve an entry for a miss on [line] issued at [now]; [latency] maps
   the time the entry is actually acquired to the fill duration (it
   traverses the L2/DRAM bandwidth queues from that point, not from the
   request time).  Returns the time at which the data arrives,
   accounting for merging and for stalls when the pool is full. *)
let acquire t ~line ~now ~latency =
  purge t ~now;
  match List.find_opt (fun e -> e.line = line) t.entries with
  | Some e ->
    t.merges <- t.merges + 1;
    e.completes_at
  | None ->
    let start =
      if List.length t.entries < t.capacity then now
      else begin
        let earliest =
          List.fold_left (fun acc e -> min acc e.completes_at) max_int t.entries
        in
        t.stall_cycles <- t.stall_cycles + (earliest - now);
        (* the earliest entry retires at [earliest]; drop it *)
        t.entries <- List.filter (fun e -> e.completes_at > earliest) t.entries;
        earliest
      end
    in
    let completes_at = start + latency start in
    t.entries <- { line; completes_at } :: t.entries;
    completes_at

let in_flight t = List.length t.entries
let reset t = t.entries <- []
