(** Set-associative LRU cache model with the GPU L1 write policy of the
    paper (Section 4.2-(A)): write-through, write-no-allocate,
    write-evict.  The set index XOR-hashes the upper line bits, as GPU
    caches do, so power-of-two strides don't alias.  Also models the
    shared L2. *)

type stats = {
  mutable reads : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable writes : int;
  mutable write_evictions : int;
}

val empty_stats : unit -> stats
val add_stats : stats -> stats -> stats
val hit_rate : stats -> float

type t = {
  sets : int;
  assoc : int;
  line : int;
  tags : int array;
  stamps : int array;
  mutable tick : int;
  stats : stats;
}

(** [size] must be divisible by [assoc * line]. *)
val create : size:int -> assoc:int -> line:int -> t

val line_of : t -> int -> int
val set_of : t -> int -> int

(** Read access: true on hit; a miss allocates the line (LRU victim). *)
val access_read : t -> int -> bool

(** Write under write-evict: invalidates the line if present. *)
val access_write : t -> int -> unit

(** Probe without side effects. *)
val contains : t -> int -> bool

val clear : t -> unit
