(** Miss-status holding registers for an SM's L1: a bounded pool of
    in-flight misses.  Secondary misses to a pending line merge; when
    the pool is full a new miss stalls until the earliest completion —
    the "MSHR allocation failure" congestion the paper's bypassing case
    study relieves (Section 4.2-(D)). *)

type t = {
  capacity : int;
  mutable entries : entry list;
  mutable stall_cycles : int;
  mutable merges : int;
}

and entry = { line : int; completes_at : int }

val create : int -> t

(** Reserve an entry for a miss on [line] issued at [now].  [latency]
    maps the acquisition time to the fill duration (it traverses the
    bandwidth queues from that point).  Returns the data-arrival
    time. *)
val acquire : t -> line:int -> now:int -> latency:(int -> int) -> int

val in_flight : t -> int
val reset : t -> unit
