(** Simulated device (or host) memory: a flat, byte-addressable space
    with a bump allocator (cudaMalloc) and bounds-checked access, so
    out-of-range kernel accesses fault loudly. *)

exception Fault of { addr : int; size : int; msg : string }

type t

(** Address 0 stays unmapped so null dereferences fault. *)
val base_addr : int

val create : ?capacity:int -> unit -> t

(** cudaMalloc: [size] fresh bytes, 256-byte aligned.  Faults on
    non-positive sizes. *)
val malloc : t -> int -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_i32 : t -> int -> int
val write_i32 : t -> int -> int -> unit
val read_f32 : t -> int -> float
val write_f32 : t -> int -> float -> unit
val read_i64 : t -> int -> int
val write_i64 : t -> int -> int -> unit

(** Typed accessors used by the simulator's ld/st paths
    (width 1, 4 or 8 bytes; [fl] selects float interpretation). *)
val read : t -> addr:int -> width:int -> fl:bool -> Value.t

val write : t -> addr:int -> width:int -> fl:bool -> Value.t -> unit

(** Bulk copy between two spaces (cudaMemcpy's data movement). *)
val blit : src:t -> src_addr:int -> dst:t -> dst_addr:int -> bytes:int -> unit

val write_f32_array : t -> int -> float array -> unit
val read_f32_array : t -> int -> int -> float array
val write_i32_array : t -> int -> int array -> unit
val read_i32_array : t -> int -> int -> int array
val write_bool_array : t -> int -> bool array -> unit
val read_bool_array : t -> int -> int -> bool array

(** (base, size) of every allocation, most recent first. *)
val allocations : t -> (int * int) list

val used_bytes : t -> int
