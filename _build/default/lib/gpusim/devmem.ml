(* Simulated device global memory: a flat, byte-addressable space with a
   bump allocator (cudaMalloc).  Reads and writes are bounds-checked so
   out-of-range kernel accesses fault loudly instead of corrupting the
   simulation. *)

exception Fault of { addr : int; size : int; msg : string }

type t = {
  mutable data : Bytes.t;
  mutable brk : int; (* next free byte *)
  mutable allocs : (int * int) list; (* (base, size), most recent first *)
}

(* Address 0 stays unmapped so null-pointer dereferences fault. *)
let base_addr = 256

let create ?(capacity = 1 lsl 22) () =
  { data = Bytes.make capacity '\000'; brk = base_addr; allocs = [] }

let ensure t size =
  if size > Bytes.length t.data then begin
    let cap = max size (2 * Bytes.length t.data) in
    let bigger = Bytes.make cap '\000' in
    Bytes.blit t.data 0 bigger 0 (Bytes.length t.data);
    t.data <- bigger
  end

let align_up v a = (v + a - 1) / a * a

(* cudaMalloc: returns the device address of [size] fresh bytes, aligned
   to 256 bytes like the CUDA allocator guarantees. *)
let malloc t size =
  if size <= 0 then raise (Fault { addr = t.brk; size; msg = "malloc of size <= 0" });
  let addr = align_up t.brk 256 in
  ensure t (addr + size);
  t.brk <- addr + size;
  t.allocs <- (addr, size) :: t.allocs;
  addr

let check t addr size =
  if addr < base_addr || addr + size > t.brk then
    raise
      (Fault { addr; size; msg = Printf.sprintf "access outside allocations (brk=%d)" t.brk })

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let write_u8 t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xff))

let read_i32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr)

let write_i32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let read_f32 t addr =
  check t addr 4;
  Int32.float_of_bits (Bytes.get_int32_le t.data addr)

let write_f32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.bits_of_float v)

let read_i64 t addr =
  check t addr 8;
  Int64.to_int (Bytes.get_int64_le t.data addr)

let write_i64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr (Int64.of_int v)

(* Typed accessors shared by the simulator's ld/st paths. *)
let read t ~addr ~width ~fl : Value.t =
  match width, fl with
  | 1, false -> Value.I (read_u8 t addr)
  | 4, false -> Value.I (read_i32 t addr)
  | 4, true -> Value.F (read_f32 t addr)
  | 8, false -> Value.I (read_i64 t addr)
  | _ -> raise (Fault { addr; size = width; msg = "unsupported access width" })

let write t ~addr ~width ~fl (v : Value.t) =
  match width, fl with
  | 1, false -> write_u8 t addr (Value.to_int v land 0xff)
  | 4, false -> write_i32 t addr (Value.to_int v)
  | 4, true -> write_f32 t addr (Value.to_float v)
  | 8, false -> write_i64 t addr (Value.to_int v)
  | _ -> raise (Fault { addr; size = width; msg = "unsupported access width" })

(* Bulk copy between two memory spaces (cudaMemcpy's data movement). *)
let blit ~src ~src_addr ~dst ~dst_addr ~bytes =
  check src src_addr bytes;
  check dst dst_addr bytes;
  Bytes.blit src.data src_addr dst.data dst_addr bytes

(* Typed array helpers used by host drivers and tests. *)
let write_f32_array t addr values =
  Array.iteri (fun i v -> write_f32 t (addr + (4 * i)) v) values

let read_f32_array t addr n = Array.init n (fun i -> read_f32 t (addr + (4 * i)))

let write_i32_array t addr values =
  Array.iteri (fun i v -> write_i32 t (addr + (4 * i)) v) values

let read_i32_array t addr n = Array.init n (fun i -> read_i32 t (addr + (4 * i)))

let write_bool_array t addr values =
  Array.iteri (fun i v -> write_u8 t (addr + i) (if v then 1 else 0)) values

let read_bool_array t addr n = Array.init n (fun i -> read_u8 t (addr + i) <> 0)

let allocations t = t.allocs
let used_bytes t = t.brk - base_addr
