(* Set-associative LRU cache model with the GPU L1 write policy of the
   paper (Section 4.2-(A)): write-through, write-no-allocate, and
   write-evict — a store invalidates any cached copy of its line.  The
   same structure models the L2 (with allocate-on-write disabled there
   too, which is a close-enough approximation for read-dominated
   kernels). *)

type stats = {
  mutable reads : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable writes : int;
  mutable write_evictions : int;
}

let empty_stats () =
  { reads = 0; read_hits = 0; read_misses = 0; writes = 0; write_evictions = 0 }

let add_stats a b =
  {
    reads = a.reads + b.reads;
    read_hits = a.read_hits + b.read_hits;
    read_misses = a.read_misses + b.read_misses;
    writes = a.writes + b.writes;
    write_evictions = a.write_evictions + b.write_evictions;
  }

let hit_rate s = if s.reads = 0 then 0. else float_of_int s.read_hits /. float_of_int s.reads

type t = {
  sets : int;
  assoc : int;
  line : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable tick : int;
  stats : stats;
}

let create ~size ~assoc ~line =
  if size mod (assoc * line) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc*line";
  let sets = size / (assoc * line) in
  {
    sets;
    assoc;
    line;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    tick = 0;
    stats = empty_stats ();
  }

let line_of t addr = addr / t.line

(* Set index with XOR hashing of the upper line bits, as GPU caches do:
   power-of-two strides (matrix rows) would otherwise alias into a
   handful of sets. *)
let set_of t line = (line lxor (line / t.sets) lxor (line / (t.sets * t.sets))) mod t.sets

let find_way t set line =
  let base = set * t.assoc in
  let rec go w = if w = t.assoc then None else if t.tags.(base + w) = line then Some w else go (w + 1) in
  go 0

(* Read access: returns [true] on hit.  A miss allocates the line,
   evicting the LRU way. *)
let access_read t addr =
  t.tick <- t.tick + 1;
  t.stats.reads <- t.stats.reads + 1;
  let line = line_of t addr in
  let set = set_of t line in
  let base = set * t.assoc in
  match find_way t set line with
  | Some w ->
    t.stamps.(base + w) <- t.tick;
    t.stats.read_hits <- t.stats.read_hits + 1;
    true
  | None ->
    t.stats.read_misses <- t.stats.read_misses + 1;
    (* victim: invalid way if any, else LRU *)
    let victim = ref 0 in
    (try
       for w = 0 to t.assoc - 1 do
         if t.tags.(base + w) = -1 then begin
           victim := w;
           raise Exit
         end;
         if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
       done
     with Exit -> ());
    t.tags.(base + !victim) <- line;
    t.stamps.(base + !victim) <- t.tick;
    false

(* Write access under write-evict: invalidate the line if present. *)
let access_write t addr =
  t.tick <- t.tick + 1;
  t.stats.writes <- t.stats.writes + 1;
  let line = line_of t addr in
  let set = set_of t line in
  match find_way t set line with
  | Some w ->
    t.tags.((set * t.assoc) + w) <- -1;
    t.stats.write_evictions <- t.stats.write_evictions + 1
  | None -> ()

(* Probe without side effects (used by tests). *)
let contains t addr = find_way t (set_of t (line_of t addr)) (line_of t addr) <> None

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0
