(* The memory coalescing unit: combines the per-lane addresses of one
   warp memory instruction into transactions of cache-line granularity
   (128 B on Kepler, 32 B sectors on Pascal).  The number of unique
   lines touched is exactly the paper's per-instruction memory
   divergence measure (Figure 5). *)

(* Unique cache lines touched by [addrs] (each access [width] bytes
   wide, so an access may straddle two lines).  Returns the sorted list
   of line ids. *)
let unique_lines ~line_size ~width addrs =
  let lines =
    List.concat_map
      (fun addr ->
        let first = addr / line_size in
        let last = (addr + width - 1) / line_size in
        if first = last then [ first ] else [ first; last ])
      addrs
  in
  List.sort_uniq compare lines

let transactions ~line_size ~width addrs =
  List.length (unique_lines ~line_size ~width addrs)
