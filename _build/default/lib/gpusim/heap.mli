(** Binary min-heap keyed by integer priority: the simulator's event
    queue of ready warps. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> int -> 'a -> unit

(** Pop the minimum-key element. *)
val pop : 'a t -> (int * 'a) option
