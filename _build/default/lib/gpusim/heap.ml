(* Binary min-heap keyed by integer priority, used by the simulator's
   event loop to pick the next ready warp. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a option array;
  mutable size : int;
}

let create () = { keys = Array.make 64 max_int; vals = Array.make 64 None; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) max_int in
  let vals = Array.make (2 * n) None in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- Some v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    t.keys.(0) <- t.keys.(t.size);
    t.vals.(0) <- t.vals.(t.size);
    t.vals.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    match v with Some v -> Some (key, v) | None -> assert false
  end
