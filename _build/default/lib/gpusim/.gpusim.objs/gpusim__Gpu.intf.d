lib/gpusim/gpu.mli: Arch Cache Devmem Hookev Ptx Stats Value
