lib/gpusim/machine.ml: Array Bytes Cache Hashtbl Mshr Ptx Value
