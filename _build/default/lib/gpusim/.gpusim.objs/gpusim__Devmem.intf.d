lib/gpusim/devmem.mli: Value
