lib/gpusim/heap.mli:
