lib/gpusim/coalesce.mli:
