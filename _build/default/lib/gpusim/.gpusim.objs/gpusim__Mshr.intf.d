lib/gpusim/mshr.mli:
