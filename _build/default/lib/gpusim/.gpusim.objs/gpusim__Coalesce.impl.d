lib/gpusim/coalesce.ml: List
