lib/gpusim/stats.ml: Format
