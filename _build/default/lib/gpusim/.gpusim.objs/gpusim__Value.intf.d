lib/gpusim/value.mli:
