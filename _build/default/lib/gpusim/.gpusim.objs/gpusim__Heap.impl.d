lib/gpusim/heap.ml: Array
