lib/gpusim/arch.ml: Printf
