lib/gpusim/mshr.ml: List
