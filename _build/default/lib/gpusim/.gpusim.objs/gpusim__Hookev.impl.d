lib/gpusim/hookev.ml: Bitc
