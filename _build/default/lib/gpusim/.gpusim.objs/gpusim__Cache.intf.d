lib/gpusim/cache.mli:
