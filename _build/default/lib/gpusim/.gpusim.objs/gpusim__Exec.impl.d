lib/gpusim/exec.ml: Arch Array Bitc Bytes Cache Char Coalesce Devmem Float Hookev Int32 Int64 List Machine Mshr Option Printf Ptx Stats Value
