lib/gpusim/devmem.ml: Array Bytes Char Int32 Int64 Printf Value
