lib/gpusim/value.ml: Float Printf
