lib/gpusim/gpu.ml: Arch Array Bytes Cache Devmem Exec Heap Hookev Lazy List Machine Mshr Printf Ptx Stats
