(* Mutable machine state of a kernel launch: warps with their SIMT
   divergence stacks and call frames, CTAs with their shared memory and
   barrier state, and SMs with their L1 caches and MSHRs. *)

(* One entry of the post-dominator SIMT reconvergence stack (Fung et
   al.; the scheme GPGPU-Sim and real hardware implement).  [rpc] is the
   pc at which this entry's lanes rejoin their parent; the function exit
   is represented by [rpc = Array.length body]. *)
type simt_entry = {
  mutable pc : int;
  mutable mask : int;
  rpc : int;
}

type frame = {
  func : Ptx.Isa.func;
  (* regs.(lane).(reg) *)
  regs : Value.t array array;
  (* scoreboard: cycle at which each register's value arrives.  Loads
     write their functional value immediately but mark the destination
     ready only when the fill lands, so independent instructions issue
     in the shadow of outstanding misses (memory-level parallelism). *)
  reg_ready : int array;
  (* per-lane local frame for allocas *)
  local : Bytes.t array;
  mutable stack : simt_entry list; (* top first *)
  init_mask : int; (* lanes that entered this call *)
  ret_dst : int option; (* caller register receiving the return value *)
  retvals : Value.t array; (* per lane *)
}

type warp_status = Ready | At_barrier | Finished

type warp = {
  warp_id : int; (* within its CTA *)
  live_mask : int; (* lanes backed by real threads *)
  cta : cta;
  mutable frames : frame list; (* top first *)
  mutable ready_at : int;
  mutable status : warp_status;
  mutable barrier_arrival : int; (* time it reached the current barrier *)
  mutable insts : int; (* warp-level instructions issued *)
}

and cta = {
  cta_x : int;
  cta_y : int;
  cta_linear : int;
  shared : Bytes.t;
  mutable warps : warp array;
  mutable at_barrier : int;
  mutable finished_warps : int;
  sm_id : int;
}

type sm = {
  sm_id' : int;
  l1 : Cache.t;
  mshr : Mshr.t;
  mutable next_issue : int;
  (* single L1 tag port: each L1 transaction (lookup or write-probe)
     occupies it for one cycle, so divergent accesses contend *)
  mutable l1_port_free : int;
  mutable resident_ctas : int;
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* Lane lists per mask, memoized: the interpreter asks for the same few
   masks millions of times per launch. *)
let lanes_memo : (int, int list) Hashtbl.t = Hashtbl.create 256

let lanes_of_mask mask =
  match Hashtbl.find_opt lanes_memo mask with
  | Some lanes -> lanes
  | None ->
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
    in
    let lanes = go 31 [] in
    Hashtbl.replace lanes_memo mask lanes;
    lanes

let full_mask n = if n >= 63 then invalid_arg "full_mask" else (1 lsl n) - 1

let exit_pc (f : Ptx.Isa.func) = Array.length f.body

let make_frame (func : Ptx.Isa.func) ~init_mask ~ret_dst =
  {
    func;
    regs = Array.init 32 (fun _ -> Array.make (max func.nregs 1) Value.zero);
    reg_ready = Array.make (max func.nregs 1) 0;
    local = Array.init 32 (fun _ -> Bytes.make (max func.local_bytes 1) '\000');
    stack = [ { pc = 0; mask = init_mask; rpc = exit_pc func } ];
    init_mask;
    ret_dst;
    retvals = Array.make 32 Value.zero;
  }
