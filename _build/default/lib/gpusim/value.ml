(* Runtime values held in simulated registers.  Integers double as
   device pointers (byte addresses). *)

type t = I of int | F of float

let zero = I 0

let to_int = function
  | I i -> i
  | F f -> invalid_arg (Printf.sprintf "Value.to_int: float %g" f)

let to_float = function F f -> f | I i -> float_of_int i

let to_string = function I i -> string_of_int i | F f -> Printf.sprintf "%g" f

let equal a b =
  match a, b with
  | I x, I y -> x = y
  | F x, F y -> Float.equal x y
  | I _, F _ | F _, I _ -> false
