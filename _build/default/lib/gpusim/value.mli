(** Runtime values held in simulated registers; integers double as
    device pointers (byte addresses). *)

type t = I of int | F of float

val zero : t

(** Raises [Invalid_argument] on floats. *)
val to_int : t -> int

(** Converts integers implicitly. *)
val to_float : t -> float

val to_string : t -> string
val equal : t -> t -> bool
