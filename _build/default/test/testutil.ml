(* Shared helpers for the test suites. *)

(* Substring search (no external string library needed). *)
let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else
    let rec go i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else go (i + 1)
    in
    go 0

(* Compile MiniCUDA source and return (module, ptx program). *)
let compile ?(file = "test.cu") src =
  let m = Minicuda.Frontend.compile ~file src in
  (m, Ptx.Codegen.gen_module m)

(* Compile, optionally instrument, and launch one kernel on a fresh
   device; returns (device, launch result). *)
let run_kernel ?(arch = Gpusim.Arch.kepler_k40c ()) ?(instrument = false)
    ?(sink = Gpusim.Hookev.null_sink) ?(grid = (1, 1)) ?(block = (32, 1)) ~kernel
    ~setup src =
  let m = Minicuda.Frontend.compile ~file:"test.cu" src in
  let manifest =
    if instrument then Some (Passes.Instrument.run m).Passes.Instrument.manifest
    else None
  in
  let prog = Ptx.Codegen.gen_module m in
  let dev = Gpusim.Gpu.create_device arch in
  let args = setup dev in
  let result = Gpusim.Gpu.launch dev ~sink ~prog ~kernel ~grid ~block ~args () in
  (dev, result, manifest)

let f32s dev addr n = Gpusim.Devmem.read_f32_array dev.Gpusim.Gpu.devmem addr n
let i32s dev addr n = Gpusim.Devmem.read_i32_array dev.Gpusim.Gpu.devmem addr n
