test/test_ptx.ml: Alcotest Array Gpusim List Minicuda Printf Ptx Testutil
