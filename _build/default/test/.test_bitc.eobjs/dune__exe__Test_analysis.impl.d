test/test_analysis.ml: Alcotest Analysis Array Bitc Float Fun Gpusim List Passes Profiler QCheck2 QCheck_alcotest Testutil
