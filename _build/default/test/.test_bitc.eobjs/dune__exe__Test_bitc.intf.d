test/test_bitc.mli:
