test/test_gpusim.ml: Alcotest Array Fun Gpusim List Minicuda Ptx QCheck2 QCheck_alcotest Testutil
