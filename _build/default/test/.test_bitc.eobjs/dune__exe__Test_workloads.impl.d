test/test_workloads.ml: Advisor Alcotest Array Bitc Gpusim Hostrt Int32 List Passes Printf Profiler Ptx Queue Result Workloads
