test/test_passes.ml: Alcotest Bitc Gpusim List Minicuda Passes Ptx Result String Testutil
