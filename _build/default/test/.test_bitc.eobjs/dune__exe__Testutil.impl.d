test/testutil.ml: Gpusim Minicuda Passes Ptx String
