test/test_bitc.ml: Alcotest Array Bitc List Printf QCheck2 QCheck_alcotest Result Testutil
