test/test_minicuda.ml: Alcotest Bitc Gpusim List Minicuda Printf QCheck2 QCheck_alcotest Testutil
