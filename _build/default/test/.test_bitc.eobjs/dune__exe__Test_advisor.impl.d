test/test_advisor.ml: Advisor Alcotest Analysis Array Gpusim Hashtbl List Passes Ptx Workloads
