test/test_minicuda.mli:
