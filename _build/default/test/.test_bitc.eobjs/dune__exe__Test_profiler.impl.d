test/test_profiler.ml: Alcotest Analysis Array Gpusim Hashtbl Hostrt List Minicuda Passes Profiler Ptx
