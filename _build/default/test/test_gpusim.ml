(* Tests for the GPU simulator: caches, MSHRs, coalescing, device
   memory, the SIMT execution engine, barriers, atomics, 2D grids and
   the timing queues. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- cache ----- *)

let test_cache_hit_after_fill () =
  let c = Gpusim.Cache.create ~size:1024 ~assoc:2 ~line:64 in
  check "first access misses" false (Gpusim.Cache.access_read c 0);
  check "second access hits" true (Gpusim.Cache.access_read c 0);
  check "same line hits" true (Gpusim.Cache.access_read c 63);
  check "next line misses" false (Gpusim.Cache.access_read c 64)

let test_cache_write_evict () =
  let c = Gpusim.Cache.create ~size:1024 ~assoc:2 ~line:64 in
  ignore (Gpusim.Cache.access_read c 0);
  check "cached" true (Gpusim.Cache.contains c 0);
  Gpusim.Cache.access_write c 0;
  check "evicted by write" false (Gpusim.Cache.contains c 0);
  check "write-no-allocate" false (Gpusim.Cache.access_read c 0);
  check_int "eviction counted" 1 c.stats.write_evictions

let test_cache_lru () =
  (* 2-way set: touch three lines of the same set; the LRU one leaves *)
  let c = Gpusim.Cache.create ~size:128 ~assoc:2 ~line:64 in
  (* 1 set, 2 ways: lines 0 and 1 map to set 0 *)
  ignore (Gpusim.Cache.access_read c 0);
  ignore (Gpusim.Cache.access_read c 64);
  ignore (Gpusim.Cache.access_read c 0) (* refresh line 0 *);
  ignore (Gpusim.Cache.access_read c 128) (* evicts line 1 (LRU) *);
  check "line 0 survives" true (Gpusim.Cache.contains c 0);
  check "line 1 evicted" false (Gpusim.Cache.contains c 64)

let test_cache_stats_consistency () =
  let c = Gpusim.Cache.create ~size:4096 ~assoc:4 ~line:64 in
  for i = 0 to 999 do
    ignore (Gpusim.Cache.access_read c ((i * 96) mod 16384))
  done;
  check_int "hits+misses=reads" c.stats.reads
    (c.stats.read_hits + c.stats.read_misses)

let qcheck_bigger_cache_no_more_misses =
  QCheck2.Test.make ~name:"bigger fully-assoc cache never misses more" ~count:50
    QCheck2.Gen.(list_size (int_range 1 300) (int_range 0 63))
    (fun lines ->
      (* fully-associative LRU caches have the stack property *)
      let run size_lines =
        let c =
          Gpusim.Cache.create ~size:(size_lines * 64) ~assoc:size_lines ~line:64
        in
        List.iter (fun l -> ignore (Gpusim.Cache.access_read c (l * 64))) lines;
        c.stats.read_misses
      in
      run 8 >= run 16)

(* ----- mshr ----- *)

let test_mshr_merge () =
  let m = Gpusim.Mshr.create 4 in
  let t1 = Gpusim.Mshr.acquire m ~line:7 ~now:0 ~latency:(fun _ -> 100) in
  let t2 = Gpusim.Mshr.acquire m ~line:7 ~now:10 ~latency:(fun _ -> 100) in
  check_int "primary" 100 t1;
  check_int "secondary merges to same completion" 100 t2;
  check_int "one merge recorded" 1 m.merges

let test_mshr_stall_when_full () =
  let m = Gpusim.Mshr.create 2 in
  ignore (Gpusim.Mshr.acquire m ~line:1 ~now:0 ~latency:(fun _ -> 100));
  ignore (Gpusim.Mshr.acquire m ~line:2 ~now:0 ~latency:(fun _ -> 200));
  (* pool full: the next miss waits for the earliest completion (100) *)
  let t = Gpusim.Mshr.acquire m ~line:3 ~now:10 ~latency:(fun _ -> 50) in
  check "stalled past earliest completion" true (t >= 150);
  check "stall cycles recorded" true (m.stall_cycles >= 90)

let test_mshr_drains () =
  let m = Gpusim.Mshr.create 2 in
  ignore (Gpusim.Mshr.acquire m ~line:1 ~now:0 ~latency:(fun _ -> 10));
  ignore (Gpusim.Mshr.acquire m ~line:2 ~now:0 ~latency:(fun _ -> 10));
  (* by t=50 both retired: no stall *)
  let t = Gpusim.Mshr.acquire m ~line:3 ~now:50 ~latency:(fun _ -> 10) in
  check_int "no stall after drain" 60 t

(* ----- coalescer ----- *)

let test_coalesce_fully_coalesced () =
  let addrs = List.init 32 (fun i -> 4096 + (4 * i)) in
  check_int "one 128B txn" 1
    (Gpusim.Coalesce.transactions ~line_size:128 ~width:4 addrs);
  check_int "four 32B txns" 4
    (Gpusim.Coalesce.transactions ~line_size:32 ~width:4 addrs)

let test_coalesce_fully_divergent () =
  let addrs = List.init 32 (fun i -> 4096 + (1024 * i)) in
  check_int "32 txns" 32 (Gpusim.Coalesce.transactions ~line_size:128 ~width:4 addrs)

let test_coalesce_same_address () =
  let addrs = List.init 32 (fun _ -> 4096) in
  check_int "broadcast is one txn" 1
    (Gpusim.Coalesce.transactions ~line_size:128 ~width:4 addrs)

let test_coalesce_straddle () =
  (* a 4-byte access spanning a line boundary touches two lines *)
  check_int "straddle" 2 (Gpusim.Coalesce.transactions ~line_size:32 ~width:4 [ 30 ])

let qcheck_coalesce_bounds =
  QCheck2.Test.make ~name:"1 <= txns <= lanes+straddles" ~count:200
    QCheck2.Gen.(list_size (int_range 1 32) (int_range 0 100_000))
    (fun addrs ->
      let addrs = List.map (fun a -> a * 4) addrs in
      let t = Gpusim.Coalesce.transactions ~line_size:128 ~width:4 addrs in
      t >= 1 && t <= 2 * List.length addrs)

(* ----- heap ----- *)

let qcheck_heap_sorted =
  QCheck2.Test.make ~name:"heap pops in key order" ~count:100
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 1000))
    (fun keys ->
      let h = Gpusim.Heap.create () in
      List.iter (fun k -> Gpusim.Heap.push h k k) keys;
      let rec drain acc =
        match Gpusim.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort compare keys)

(* ----- devmem ----- *)

let test_devmem_rw () =
  let d = Gpusim.Devmem.create () in
  let a = Gpusim.Devmem.malloc d 64 in
  Gpusim.Devmem.write_f32 d a 3.25;
  check "f32 roundtrip" true (Gpusim.Devmem.read_f32 d a = 3.25);
  Gpusim.Devmem.write_i32 d (a + 4) (-7);
  check_int "i32 roundtrip" (-7) (Gpusim.Devmem.read_i32 d (a + 4));
  Gpusim.Devmem.write_u8 d (a + 8) 200;
  check_int "u8 roundtrip" 200 (Gpusim.Devmem.read_u8 d (a + 8))

let test_devmem_alignment () =
  let d = Gpusim.Devmem.create () in
  let a = Gpusim.Devmem.malloc d 3 in
  let b = Gpusim.Devmem.malloc d 3 in
  check_int "256B aligned" 0 (a mod 256);
  check_int "no overlap" 0 (b mod 256);
  check "distinct" true (a <> b)

let test_devmem_faults () =
  let d = Gpusim.Devmem.create () in
  let a = Gpusim.Devmem.malloc d 16 in
  check "oob faults" true
    (match Gpusim.Devmem.read_i32 d (a + 1024) with
    | _ -> false
    | exception Gpusim.Devmem.Fault _ -> true);
  check "null faults" true
    (match Gpusim.Devmem.read_i32 d 0 with
    | _ -> false
    | exception Gpusim.Devmem.Fault _ -> true);
  check "zero-size malloc rejected" true
    (match Gpusim.Devmem.malloc d 0 with
    | _ -> false
    | exception Gpusim.Devmem.Fault _ -> true)

let test_devmem_blit () =
  let a = Gpusim.Devmem.create () and b = Gpusim.Devmem.create () in
  let pa = Gpusim.Devmem.malloc a 64 and pb = Gpusim.Devmem.malloc b 64 in
  Gpusim.Devmem.write_f32_array a pa [| 1.; 2.; 3. |];
  Gpusim.Devmem.blit ~src:a ~src_addr:pa ~dst:b ~dst_addr:pb ~bytes:12;
  check "blit copies" true (Gpusim.Devmem.read_f32_array b pb 3 = [| 1.; 2.; 3. |])

(* ----- execution engine ----- *)

let test_divergent_execution () =
  let src =
    {|
__global__ void k(int* out) {
  int tid = threadIdx.x;
  if (tid % 2 == 0) { out[tid] = 100 + tid; }
  else { out[tid] = 200 + tid; }
}
|}
  in
  let out = ref 0 in
  let dev, result, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(64, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  let v = Testutil.i32s dev !out 64 in
  check "even lanes" true (v.(0) = 100 && v.(2) = 102);
  check "odd lanes" true (v.(1) = 201 && v.(3) = 203);
  check "divergence recorded" true (result.stats.divergent_branches > 0)

let test_barrier_reduction () =
  (* tree reduction over shared memory: wrong barrier handling would
     produce a wrong sum *)
  let src =
    {|
__global__ void k(int* out, int* data) {
  __shared__ int tile[64];
  int tid = threadIdx.x;
  tile[tid] = data[tid];
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (tid < s) { tile[tid] = tile[tid] + tile[tid + s]; }
    __syncthreads();
  }
  if (tid == 0) { out[0] = tile[0]; }
}
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(64, 1)
      ~setup:(fun dev ->
        let o = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 64 in
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
        out := o;
        Gpusim.Devmem.write_i32_array dev.Gpusim.Gpu.devmem d (Array.init 64 Fun.id);
        [ Gpusim.Value.I o; Gpusim.Value.I d ])
      src
  in
  check_int "sum 0..63" 2016 (Gpusim.Devmem.read_i32 dev.Gpusim.Gpu.devmem !out)

let test_atomics () =
  let src =
    {|
__global__ void k(int* counter) {
  int old = atomicAdd(&counter[0], 1);
  counter[1 + old] = 1;
}
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~grid:(2, 1) ~block:(64, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 256) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  check_int "128 increments" 128 (Gpusim.Devmem.read_i32 dev.Gpusim.Gpu.devmem !out);
  (* every thread observed a unique old value *)
  let marks = Testutil.i32s dev (!out + 4) 128 in
  check "all slots marked" true (Array.for_all (fun v -> v = 1) marks)

let test_2d_grid () =
  let src =
    {|
__global__ void k(int* out, int w) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  out[y * w + x] = 10 * y + x;
}
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~grid:(2, 2) ~block:(4, 4)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
        out := d;
        [ Gpusim.Value.I d; Gpusim.Value.I 8 ])
      src
  in
  let v = Testutil.i32s dev !out 64 in
  check_int "(0,0)" 0 v.(0);
  check_int "(x=7,y=0)" 7 v.(7);
  check_int "(x=3,y=5)" 53 v.((5 * 8) + 3);
  check_int "(x=7,y=7)" 77 v.(63)

let test_partial_warp () =
  let src = "__global__ void k(int* out) { out[threadIdx.x] = 1 + threadIdx.x; }" in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(40, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  let v = Testutil.i32s dev !out 64 in
  check_int "lane 39 wrote" 40 v.(39);
  check_int "lane 40 untouched" 0 v.(40)

let test_many_ctas_schedule () =
  (* more CTAs than SM slots: the CTA scheduler must run them all *)
  let src = "__global__ void k(int* out) { int g = blockIdx.x * blockDim.x + threadIdx.x; out[g] = g; }" in
  let out = ref 0 in
  let dev, result, _ =
    Testutil.run_kernel ~kernel:"k" ~grid:(400, 1) ~block:(32, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 400 * 32) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  check_int "all ctas ran" 400 result.ctas;
  let v = Testutil.i32s dev !out (400 * 32) in
  check "all threads wrote" true (Array.for_all2 ( = ) v (Array.init (400 * 32) Fun.id))

let test_division_by_zero_traps () =
  let src = "__global__ void k(int* out, int n) { out[0] = 10 / n; }" in
  check "trap" true
    (match
       Testutil.run_kernel ~kernel:"k" ~block:(1, 1)
         ~setup:(fun dev ->
           let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 64 in
           [ Gpusim.Value.I d; Gpusim.Value.I 0 ])
         src
     with
    | _ -> false
    | exception Gpusim.Exec.Trap _ -> true)

let test_launch_argument_check () =
  let src = "__global__ void k(int* out) { out[0] = 1; }" in
  check "arity mismatch rejected" true
    (match
       Testutil.run_kernel ~kernel:"k" ~block:(1, 1) ~setup:(fun _ -> []) src
     with
    | _ -> false
    | exception Gpusim.Gpu.Launch_error _ -> true)

let test_timing_monotonic_with_work () =
  let run n =
    let src =
      "__global__ void k(float* a, int n) { int t = threadIdx.x; float s = 0.0f; for (int i = 0; i < n; i = i + 1) { s = s + a[t]; } a[t] = s; }"
    in
    let _, result, _ =
      Testutil.run_kernel ~kernel:"k" ~block:(32, 1)
        ~setup:(fun dev ->
          let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 32) in
          [ Gpusim.Value.I d; Gpusim.Value.I n ])
        src
    in
    result.cycles
  in
  check "more iterations cost more cycles" true (run 100 > run 10)

let test_l1_disabled_more_l2_traffic () =
  let src =
    "__global__ void k(float* a) { float s = 0.0f; for (int i = 0; i < 64; i = i + 1) { s = s + a[threadIdx.x]; } a[threadIdx.x] = s; }"
  in
  let run l1_enabled =
    let m = Minicuda.Frontend.compile ~file:"t.cu" src in
    let prog = Ptx.Codegen.gen_module m in
    let dev = Gpusim.Gpu.create_device (Gpusim.Arch.kepler_k40c ()) in
    let d = Gpusim.Devmem.malloc dev.devmem (4 * 32) in
    let r =
      Gpusim.Gpu.launch ~l1_enabled dev ~prog ~kernel:"k" ~grid:(1, 1) ~block:(32, 1)
        ~args:[ Gpusim.Value.I d ] ()
    in
    r.l2_stats.reads
  in
  check "disabling L1 sends reads to L2" true (run false > run true)


let test_math_intrinsics () =
  let src =
    {|
__global__ void k(float* out, float x) {
  out[0] = sqrtf(x);
  out[1] = expf(0.0f);
  out[2] = logf(1.0f);
  out[3] = fabsf(0.0f - x);
}
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(1, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 64 in
        out := d;
        [ Gpusim.Value.I d; Gpusim.Value.F 9.0 ])
      src
  in
  let v = Testutil.f32s dev !out 4 in
  check "sqrt" true (abs_float (v.(0) -. 3.0) < 1e-6);
  check "exp" true (abs_float (v.(1) -. 1.0) < 1e-6);
  check "log" true (abs_float v.(2) < 1e-6);
  check "fabs" true (abs_float (v.(3) -. 9.0) < 1e-6)

let test_early_return_in_divergent_loop () =
  (* threads exit the loop at data-dependent iterations; later code must
     still run for the surviving lanes and masks must be restored *)
  let src =
    {|
__global__ void k(int* out) {
  int tid = threadIdx.x;
  int i = 0;
  while (i < 100) {
    if (i == tid) { out[tid] = 1000 + tid; return; }
    i = i + 1;
  }
  out[tid] = -1;
}
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(64, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  let v = Testutil.i32s dev !out 64 in
  check "every lane returned its value" true
    (Array.for_all2 (fun got tid -> got = 1000 + tid) v (Array.init 64 Fun.id))

let test_device_call_under_divergence () =
  (* a device function invoked by half the warp must not disturb the
     other half *)
  let src =
    {|
__device__ int bump(int x) {
  if (x > 30) { return x + 100; }
  return x + 1;
}
__global__ void k(int* out) {
  int tid = threadIdx.x;
  if (tid % 2 == 0) { out[tid] = bump(tid); }
  else { out[tid] = -tid; }
}
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(64, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  let v = Testutil.i32s dev !out 64 in
  let expect tid =
    if tid mod 2 = 0 then (if tid > 30 then tid + 100 else tid + 1) else -tid
  in
  check "divergent call correct" true
    (Array.for_all2 (fun got tid -> got = expect tid) v (Array.init 64 Fun.id))

let test_warpid_sreg () =
  (* the %warpid register used by the bypass prologue *)
  let m = Minicuda.Frontend.compile ~file:"t.cu" "__global__ void k(int* out) { out[threadIdx.x] = threadIdx.x; }" in
  let prog = Ptx.Codegen.gen_module m in
  let prog = Ptx.Bypass.rewrite_prog prog ~kernel:"k" ~warps_to_cache:1 in
  let dev = Gpusim.Gpu.create_device (Gpusim.Arch.kepler_k40c ()) in
  let d = Gpusim.Devmem.malloc dev.devmem (4 * 96) in
  ignore
    (Gpusim.Gpu.launch dev ~prog ~kernel:"k" ~grid:(1, 1) ~block:(96, 1)
       ~args:[ Gpusim.Value.I d ] ());
  check "rewritten kernel still correct" true
    (Gpusim.Devmem.read_i32_array dev.devmem d 96 = Array.init 96 Fun.id)

let () =
  Alcotest.run "gpusim"
    [
      ( "cache",
        [ Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "write-evict" `Quick test_cache_write_evict;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "stats consistent" `Quick test_cache_stats_consistency;
          QCheck_alcotest.to_alcotest qcheck_bigger_cache_no_more_misses ] );
      ( "mshr",
        [ Alcotest.test_case "merge" `Quick test_mshr_merge;
          Alcotest.test_case "stall when full" `Quick test_mshr_stall_when_full;
          Alcotest.test_case "drains" `Quick test_mshr_drains ] );
      ( "coalesce",
        [ Alcotest.test_case "coalesced" `Quick test_coalesce_fully_coalesced;
          Alcotest.test_case "divergent" `Quick test_coalesce_fully_divergent;
          Alcotest.test_case "broadcast" `Quick test_coalesce_same_address;
          Alcotest.test_case "straddle" `Quick test_coalesce_straddle;
          QCheck_alcotest.to_alcotest qcheck_coalesce_bounds ] );
      ("heap", [ QCheck_alcotest.to_alcotest qcheck_heap_sorted ]);
      ( "devmem",
        [ Alcotest.test_case "roundtrip" `Quick test_devmem_rw;
          Alcotest.test_case "alignment" `Quick test_devmem_alignment;
          Alcotest.test_case "faults" `Quick test_devmem_faults;
          Alcotest.test_case "blit" `Quick test_devmem_blit ] );
      ( "execution",
        [ Alcotest.test_case "divergence" `Quick test_divergent_execution;
          Alcotest.test_case "barrier reduction" `Quick test_barrier_reduction;
          Alcotest.test_case "atomics" `Quick test_atomics;
          Alcotest.test_case "2d grid" `Quick test_2d_grid;
          Alcotest.test_case "partial warp" `Quick test_partial_warp;
          Alcotest.test_case "cta scheduler" `Quick test_many_ctas_schedule;
          Alcotest.test_case "div-by-zero trap" `Quick test_division_by_zero_traps;
          Alcotest.test_case "argument check" `Quick test_launch_argument_check;
          Alcotest.test_case "math intrinsics" `Quick test_math_intrinsics;
          Alcotest.test_case "early return in loop" `Quick test_early_return_in_divergent_loop;
          Alcotest.test_case "divergent device call" `Quick test_device_call_under_divergence;
          Alcotest.test_case "warpid sreg" `Quick test_warpid_sreg ] );
      ( "timing",
        [ Alcotest.test_case "monotonic in work" `Quick test_timing_monotonic_with_work;
          Alcotest.test_case "l1 toggle" `Quick test_l1_disabled_more_l2_traffic ] );
    ]
