(* Tests for the ten Table-2 applications: every kernel compiles,
   verifies and instruments; every app runs end-to-end on the simulator;
   and for nn, bfs and nw the device results are checked against direct
   OCaml reference implementations. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_all_compile_and_verify () =
  List.iter
    (fun (w : Workloads.Common.t) ->
      let m = Workloads.Common.compile w in
      check (w.name ^ " verifies") true (Result.is_ok (Bitc.Verify.check m));
      (* all declared kernels exist *)
      List.iter
        (fun k ->
          check
            (Printf.sprintf "%s has kernel %s" w.name k)
            true
            (match Bitc.Irmod.find_func m k with
            | Some f -> Bitc.Func.is_kernel f
            | None -> false))
        w.kernels)
    Workloads.Registry.all

let test_all_instrument () =
  List.iter
    (fun (w : Workloads.Common.t) ->
      let m = Workloads.Common.compile w in
      ignore (Passes.Instrument.run m);
      check (w.name ^ " instrumented verifies") true
        (Result.is_ok (Bitc.Verify.check m));
      (* and still lowers to PTX *)
      ignore (Ptx.Codegen.gen_module m))
    Workloads.Registry.all

let test_registry () =
  check_int "ten applications" 10 (List.length Workloads.Registry.all);
  check "find works" true ((Workloads.Registry.find "bfs").name = "bfs");
  check "unknown raises" true
    (match Workloads.Registry.find "nope" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* run one workload natively; return the host for result inspection *)
let run_app ?(profiled = false) name =
  let w = Workloads.Registry.find name in
  let arch = Gpusim.Arch.kepler_k40c () in
  if profiled then
    let session = Advisor.profile ~arch w in
    session.host
  else snd (Advisor.run_native ~arch w)

(* find a labeled host allocation recorded by the profiler *)
let host_alloc profiler label : Profiler.Records.alloc =
  match
    List.find_opt
      (fun (a : Profiler.Records.alloc) ->
        a.label = label && a.side = Profiler.Records.Host_side)
      (Profiler.Profile.allocations profiler)
  with
  | Some a -> a
  | None -> Alcotest.failf "no host allocation %s" label

let session_of name =
  let w = Workloads.Registry.find name in
  Advisor.profile ~arch:(Gpusim.Arch.kepler_k40c ()) w

(* ----- nn: distances match an OCaml reference ----- *)

let test_nn_reference () =
  let s = session_of "nn" in
  let hm = Hostrt.Host.host_mem s.host in
  let p = s.profiler in
  let find label = host_alloc p label in
  let lat = find "h_locations_lat" in
  let lng = find "h_locations_lng" in
  let dist = find "h_distances" in
  let n = lat.Profiler.Records.size / 4 in
  let lats = Gpusim.Devmem.read_f32_array hm lat.base n in
  let lngs = Gpusim.Devmem.read_f32_array hm lng.base n in
  let dists = Gpusim.Devmem.read_f32_array hm dist.base n in
  let f32 x = Int32.float_of_bits (Int32.bits_of_float x) in
  let ok = ref true in
  for i = 0 to n - 1 do
    let dlat = f32 (30. -. lats.(i)) and dlng = f32 (90. -. lngs.(i)) in
    let expect = f32 (sqrt (f32 ((dlat *. dlat) +. (dlng *. dlng)))) in
    if abs_float (dists.(i) -. expect) > 1e-3 *. (1. +. abs_float expect) then
      ok := false
  done;
  check "all distances match reference" true !ok

(* ----- bfs: levels match an OCaml BFS ----- *)

let test_bfs_reference () =
  let s = session_of "bfs" in
  let hm = Hostrt.Host.host_mem s.host in
  let p = s.profiler in
  let find label = host_alloc p label in
  let starts_a = find "h_nodes_start" in
  let counts_a = find "h_nodes_edges" in
  let edges_a = find "h_edges" in
  let cost_a = find "h_cost" in
  let n = starts_a.Profiler.Records.size / 4 in
  let starts = Gpusim.Devmem.read_i32_array hm starts_a.base n in
  let counts = Gpusim.Devmem.read_i32_array hm counts_a.base n in
  let edges =
    Gpusim.Devmem.read_i32_array hm edges_a.base (edges_a.Profiler.Records.size / 4)
  in
  let cost = Gpusim.Devmem.read_i32_array hm cost_a.base n in
  (* reference BFS from node 0 *)
  let expect = Array.make n (-1) in
  expect.(0) <- 0;
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for e = starts.(u) to starts.(u) + counts.(u) - 1 do
      let v = edges.(e) in
      if expect.(v) = -1 then begin
        expect.(v) <- expect.(u) + 1;
        Queue.add v q
      end
    done
  done;
  check "bfs levels match reference" true (cost = expect)

(* ----- nw: DP table matches an OCaml reference ----- *)

let test_nw_reference () =
  let s = session_of "nw" in
  let hm = Hostrt.Host.host_mem s.host in
  let p = s.profiler in
  let find label = host_alloc p label in
  let ref_a = find "referrence" in
  let mat_a = find "input_itemsets" in
  let cells = ref_a.Profiler.Records.size / 4 in
  let cols = int_of_float (sqrt (float_of_int cells)) in
  let reference = Gpusim.Devmem.read_i32_array hm ref_a.base cells in
  let got = Gpusim.Devmem.read_i32_array hm mat_a.base cells in
  let penalty = 10 in
  let dp = Array.make cells 0 in
  for i = 0 to cols - 1 do
    dp.(i) <- -i * penalty;
    dp.(i * cols) <- -i * penalty
  done;
  for r = 1 to cols - 1 do
    for c = 1 to cols - 1 do
      let idx = (r * cols) + c in
      dp.(idx) <-
        max
          (max
             (dp.(((r - 1) * cols) + c - 1) + reference.(idx))
             (dp.((r * cols) + c - 1) - penalty))
          (dp.(((r - 1) * cols) + c) - penalty)
    done
  done;
  check "needleman-wunsch table matches reference" true (got = dp)

(* ----- all applications run end-to-end without faulting ----- *)

let smoke name () =
  let host = run_app name in
  check (name ^ " launched kernels") true (Hostrt.Host.launches host <> []);
  check (name ^ " consumed cycles") true (Hostrt.Host.total_kernel_cycles host > 0)

let () =
  Alcotest.run "workloads"
    [
      ( "static",
        [ Alcotest.test_case "compile+verify" `Quick test_all_compile_and_verify;
          Alcotest.test_case "instrument" `Quick test_all_instrument;
          Alcotest.test_case "registry" `Quick test_registry ] );
      ( "references",
        [ Alcotest.test_case "nn distances" `Slow test_nn_reference;
          Alcotest.test_case "bfs levels" `Slow test_bfs_reference;
          Alcotest.test_case "nw alignment" `Slow test_nw_reference ] );
      ( "smoke",
        List.map
          (fun name -> Alcotest.test_case name `Slow (smoke name))
          [ "backprop"; "hotspot"; "srad_v2"; "bicg"; "syrk"; "syr2k"; "lavaMD" ] );
    ]
