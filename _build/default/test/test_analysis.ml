(* Tests for the analyzers: reuse distance (including the paper's own
   worked example), memory divergence, branch divergence, statistics and
   the bypass model. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Build a synthetic warp-level memory event. *)
let mem_event ?(cta = 0) ?(warp = 0) ?(kind = Passes.Hooks.mem_kind_load)
    ?(bits = 32) addrs =
  ( { Gpusim.Hookev.kernel = "k";
      cta;
      warp;
      loc = Bitc.Loc.none;
      bits;
      kind;
      accesses = Array.of_list (List.mapi (fun lane a -> (lane, a)) addrs) },
    0 )

(* single-lane access stream helper: element index -> byte address *)
let stream ?(kind = Passes.Hooks.mem_kind_load) elems =
  List.map (fun e -> mem_event ~kind [ e * 4 ]) elems

(* ----- fenwick ----- *)

let qcheck_fenwick_matches_naive =
  QCheck2.Test.make ~name:"fenwick prefix sums match naive" ~count:100
    QCheck2.Gen.(list_size (int_range 1 50) (pair (int_range 1 40) (int_range (-3) 3)))
    (fun updates ->
      let t = Analysis.Fenwick.create 40 in
      let naive = Array.make 41 0 in
      List.iter
        (fun (i, d) ->
          Analysis.Fenwick.add t i d;
          naive.(i) <- naive.(i) + d)
        updates;
      let ok = ref true in
      for i = 0 to 40 do
        let expect = Array.fold_left ( + ) 0 (Array.sub naive 0 (i + 1)) in
        if Analysis.Fenwick.prefix t i <> expect then ok := false
      done;
      !ok)

(* ----- reuse distance ----- *)

(* The paper's example: sequence ABCCDEFAAAB — "the reuse distance of B
   is 5" (distinct elements between the two uses of B). *)
let test_rd_paper_example () =
  let seq = [ 0; 1; 2; 2; 3; 4; 5; 0; 0; 0; 1 ] (* A B C C D E F A A A B *) in
  let r = Analysis.Reuse_distance.of_events (stream seq) in
  (* distances: C->C:0, A->A:5, A->A:0, A->A:0, B->B:5 => finite = 5 *)
  check_int "finite reuses" 5 r.finite_reuses;
  check_int "rd0 count" 3 (List.assoc Analysis.Reuse_distance.B0 r.histogram);
  (* B's reuse at distance 5 falls in bucket 3-8; so does A's first *)
  check_int "rd 3-8 count" 2 (List.assoc Analysis.Reuse_distance.B3_8 r.histogram);
  (* 6 distinct elements never reused again -> infinite *)
  check_int "no-reuse" 6 r.infinite_reuses;
  check_int "samples" 11 r.samples

let test_rd_streaming_is_all_infinite () =
  let r = Analysis.Reuse_distance.of_events (stream [ 0; 1; 2; 3; 4; 5 ]) in
  check_int "no finite reuse" 0 r.finite_reuses;
  check "all infinite" true (Analysis.Reuse_distance.no_reuse_fraction r = 1.0)

let test_rd_write_restarts () =
  (* read A, write A, read A: the write kills the pending reuse *)
  let events =
    [ mem_event [ 0 ]; mem_event ~kind:Passes.Hooks.mem_kind_store [ 0 ];
      mem_event [ 0 ] ]
  in
  let r = Analysis.Reuse_distance.of_events events in
  check_int "no finite reuse across a write" 0 r.finite_reuses;
  (* first read -> inf (killed by write); second read pending at end -> inf *)
  check_int "two no-reuse samples" 2 r.infinite_reuses

let test_rd_read_read_is_finite () =
  let r = Analysis.Reuse_distance.of_events (stream [ 0; 1; 0 ]) in
  check_int "one finite reuse" 1 r.finite_reuses;
  check_int "distance 1 bucket" 1
    (List.assoc Analysis.Reuse_distance.B1_2 r.histogram)

let test_rd_per_cta_separation () =
  (* same element touched by two CTAs: no cross-CTA reuse *)
  let events = [ mem_event ~cta:0 [ 0 ]; mem_event ~cta:1 [ 0 ] ] in
  let r = Analysis.Reuse_distance.of_events events in
  check_int "no cross-CTA reuse" 0 r.finite_reuses

let test_rd_cache_line_granularity () =
  (* adjacent words share a 128-byte line: reuse at line granularity only *)
  let events = [ mem_event [ 0 ]; mem_event [ 4 ] ] in
  let elem = Analysis.Reuse_distance.of_events events in
  let line =
    Analysis.Reuse_distance.of_events
      ~granularity:(Analysis.Reuse_distance.Cache_line 128) events
  in
  check_int "element: no reuse" 0 elem.finite_reuses;
  check_int "line: one reuse at 0" 1 line.finite_reuses

let test_rd_merge () =
  let a = Analysis.Reuse_distance.of_events (stream [ 0; 0 ]) in
  let b = Analysis.Reuse_distance.of_events (stream [ 1; 2; 1 ]) in
  let m = Analysis.Reuse_distance.merge [ a; b ] in
  check_int "samples add" (a.samples + b.samples) m.samples;
  check_int "finite add" (a.finite_reuses + b.finite_reuses) m.finite_reuses

let test_rd_buckets () =
  let open Analysis.Reuse_distance in
  check "bucket 0" true (bucket_of_distance 0 = B0);
  check "bucket 2" true (bucket_of_distance 2 = B1_2);
  check "bucket 8" true (bucket_of_distance 8 = B3_8);
  check "bucket 32" true (bucket_of_distance 32 = B9_32);
  check "bucket 128" true (bucket_of_distance 128 = B33_128);
  check "bucket 512" true (bucket_of_distance 512 = B129_512);
  check "bucket 513" true (bucket_of_distance 513 = B_gt512)

let qcheck_rd_sample_conservation =
  (* every read access yields exactly one sample (finite or infinite) *)
  QCheck2.Test.make ~name:"reuse-distance samples = read accesses" ~count:100
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 10))
    (fun elems ->
      let r = Analysis.Reuse_distance.of_events (stream elems) in
      r.samples = List.length elems && r.finite_reuses + r.infinite_reuses = r.samples)

let qcheck_rd_write_only_no_samples_finite =
  QCheck2.Test.make ~name:"write-only streams have no finite reuse" ~count:50
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 10))
    (fun elems ->
      let events =
        List.map (fun e -> mem_event ~kind:Passes.Hooks.mem_kind_store [ e * 4 ]) elems
      in
      (Analysis.Reuse_distance.of_events events).finite_reuses = 0)

(* ----- memory divergence ----- *)

let test_md_coalesced () =
  let ev = mem_event (List.init 32 (fun i -> 4 * i)) in
  let r = Analysis.Mem_divergence.of_events ~line_size:128 [ ev ] in
  check_int "one line" 1 r.distribution.(1);
  check "degree 1" true (r.degree = 1.

)

let test_md_divergent () =
  let ev = mem_event (List.init 32 (fun i -> 1024 * i)) in
  let r = Analysis.Mem_divergence.of_events ~line_size:128 [ ev ] in
  check_int "32 lines" 1 r.distribution.(32);
  check "degree 32" true (r.degree = 32.)

let test_md_line_size_matters () =
  (* 32 consecutive floats: one 128B line but four 32B sectors *)
  let ev = mem_event (List.init 32 (fun i -> 4 * i)) in
  let kepler = Analysis.Mem_divergence.of_events ~line_size:128 [ ev ] in
  let pascal = Analysis.Mem_divergence.of_events ~line_size:32 [ ev ] in
  check "kepler 1 line" true (kepler.degree = 1.);
  check "pascal 4 lines" true (pascal.degree = 4.)

let test_md_byte_accesses () =
  (* 32 consecutive bools: one 32B sector on Pascal *)
  let ev = mem_event ~bits:8 (List.init 32 Fun.id) in
  let r = Analysis.Mem_divergence.of_events ~line_size:32 [ ev ] in
  check "one sector" true (r.degree = 1.)

let test_md_sites_ranking () =
  let loc1 = Bitc.Loc.make ~file:"a.cu" ~line:1 ~col:1 in
  let loc2 = Bitc.Loc.make ~file:"a.cu" ~line:2 ~col:1 in
  let ev loc addrs =
    ( { Gpusim.Hookev.kernel = "k"; cta = 0; warp = 0; loc; bits = 32;
        kind = Passes.Hooks.mem_kind_load;
        accesses = Array.of_list (List.mapi (fun l a -> (l, a)) addrs) },
      0 )
  in
  let events =
    [ ev loc1 (List.init 32 (fun i -> 4 * i)); ev loc2 (List.init 32 (fun i -> 512 * i)) ]
  in
  let sites = Analysis.Mem_divergence.sites ~line_size:128 events in
  check_int "two sites" 2 (List.length sites);
  check "worst first" true
    ((List.hd sites).site_loc.Bitc.Loc.line = 2)

let qcheck_md_degree_bounds =
  QCheck2.Test.make ~name:"divergence degree in [1, 32]" ~count:100
    QCheck2.Gen.(list_size (int_range 1 32) (int_range 0 100000))
    (fun addrs ->
      let ev = mem_event (List.map (fun a -> a * 4) addrs) in
      let r = Analysis.Mem_divergence.of_events ~line_size:128 [ ev ] in
      r.degree >= 1. && r.degree <= 32.)


(* ----- per-site reuse (vertical bypassing input) ----- *)

let site_ev ?(kind = Passes.Hooks.mem_kind_load) ~line ~col addrs =
  ( { Gpusim.Hookev.kernel = "k"; cta = 0; warp = 0;
      loc = Bitc.Loc.make ~file:"a.cu" ~line ~col; bits = 32; kind;
      accesses = Array.of_list (List.mapi (fun l a -> (l, a)) addrs) },
    0 )

let test_site_reuse_streaming_site () =
  (* site at line 1 streams; site at line 2 re-reads what line 1 read *)
  let events =
    [ site_ev ~line:1 ~col:1 [ 0 ]; site_ev ~line:2 ~col:1 [ 0 ];
      site_ev ~line:1 ~col:1 [ 1024 ] ]
  in
  let sites = Analysis.Site_reuse.of_events ~line_size:128 events in
  let s1 = List.find (fun (s : Analysis.Site_reuse.site_stat) -> s.loc.line = 1) sites in
  (* line-1's first access was reused by line-2; its second never *)
  check_int "site1 accesses" 2 s1.accesses;
  check_int "site1 reused" 1 s1.reused_later

let test_site_reuse_intra_instruction_not_reuse () =
  (* 32 lanes on one line in a single instruction: no self-credit *)
  let events = [ site_ev ~line:3 ~col:1 (List.init 32 (fun i -> 4 * i)) ] in
  let sites = Analysis.Site_reuse.of_events ~line_size:128 events in
  let s = List.hd sites in
  check_int "no intra-instruction reuse" 0 s.reused_later

let test_site_reuse_write_kills () =
  let events =
    [ site_ev ~line:4 ~col:1 [ 0 ];
      site_ev ~kind:Passes.Hooks.mem_kind_store ~line:5 ~col:1 [ 0 ];
      site_ev ~line:6 ~col:1 [ 0 ] ]
  in
  let sites = Analysis.Site_reuse.of_events ~line_size:128 events in
  let s4 = List.find (fun (s : Analysis.Site_reuse.site_stat) -> s.loc.line = 4) sites in
  check_int "write killed the reuse" 0 s4.reused_later

let test_site_reuse_candidates () =
  let events =
    [ site_ev ~line:1 ~col:1 [ 0 ]; site_ev ~line:1 ~col:1 [ 1024 ];
      (* line 2 has full reuse of what it reads *)
      site_ev ~line:2 ~col:1 [ 4096 ]; site_ev ~line:2 ~col:1 [ 4096 ] ]
  in
  let cands = Analysis.Site_reuse.bypass_candidates ~threshold:0.4 ~line_size:128 events in
  check_int "one streaming candidate" 1 (List.length cands);
  check_int "it is line 1" 1 (List.hd cands).line

(* ----- bypass model ----- *)

let test_bypass_model_clamps () =
  let inp =
    { Analysis.Bypass_model.l1_cache_size = 16384;
      cacheline_size = 128;
      reuse_distance = 1.;
      mem_divergence = 1.;
      ctas_per_sm = 1;
      warps_per_cta = 8 }
  in
  (* 16384 / 128 = 128 -> clamp to 8 *)
  check_int "clamp to warps_per_cta" 8 (Analysis.Bypass_model.optimal_warps inp);
  let heavy = { inp with reuse_distance = 1000.; mem_divergence = 32. } in
  check_int "heavy pressure -> 0" 0 (Analysis.Bypass_model.optimal_warps heavy)

let test_bypass_model_formula () =
  (* 16384 / (4 * 128 * 2 * 4) = 4 *)
  let inp =
    { Analysis.Bypass_model.l1_cache_size = 16384;
      cacheline_size = 128;
      reuse_distance = 4.;
      mem_divergence = 2.;
      ctas_per_sm = 4;
      warps_per_cta = 8 }
  in
  check_int "Eq.(1)" 4 (Analysis.Bypass_model.optimal_warps inp)

let qcheck_bypass_model_monotone =
  QCheck2.Test.make ~name:"more pressure never means more caching warps" ~count:100
    QCheck2.Gen.(pair (float_range 1. 100.) (float_range 1. 100.))
    (fun (rd, rd') ->
      let mk rd =
        { Analysis.Bypass_model.l1_cache_size = 16384;
          cacheline_size = 128;
          reuse_distance = rd;
          mem_divergence = 4.;
          ctas_per_sm = 2;
          warps_per_cta = 16 }
      in
      let lo = Float.min rd rd' and hi = Float.max rd rd' in
      Analysis.Bypass_model.optimal_warps (mk hi)
      <= Analysis.Bypass_model.optimal_warps (mk lo))


(* ----- json / report ----- *)

let test_json_emitter () =
  let j =
    Analysis.Json.(
      Obj
        [ ("a", Int 1); ("b", Float 2.5); ("s", String "x\"y\n");
          ("l", List [ Bool true; Null ]) ])
  in
  Alcotest.(check string) "rendering"
    "{\"a\":1,\"b\":2.5,\"s\":\"x\\\"y\\n\",\"l\":[true,null]}"
    (Analysis.Json.to_string j)

let test_report_structure () =
  (* a report over an empty profile still has all sections *)
  let manifest = Passes.Manifest.create () in
  let profiler = Profiler.Profile.create ~manifest () in
  let r =
    Analysis.Report.to_string
      (Analysis.Report.of_profile ~app:"x" ~arch_name:"a" ~line_size:128 profiler)
  in
  List.iter
    (fun key -> check ("has " ^ key) true (Testutil.contains r key))
    [ "reuse_distance"; "memory_divergence"; "branch_divergence"; "contexts" ]

(* ----- statistics ----- *)

let test_statistics_summary () =
  let s = Analysis.Statistics.summarize [ 1.; 2.; 3.; 4. ] in
  check_int "count" 4 s.count;
  check "mean" true (s.mean = 2.5);
  check "min" true (s.min = 1.);
  check "max" true (s.max = 4.);
  check "stddev" true (abs_float (s.stddev -. sqrt 1.25) < 1e-9)

let test_statistics_empty () =
  let s = Analysis.Statistics.summarize [] in
  check_int "count" 0 s.count;
  check "mean 0" true (s.mean = 0.)

let () =
  Alcotest.run "analysis"
    [
      ("fenwick", [ QCheck_alcotest.to_alcotest qcheck_fenwick_matches_naive ]);
      ( "reuse distance",
        [ Alcotest.test_case "paper example ABCCDEFAAAB" `Quick test_rd_paper_example;
          Alcotest.test_case "streaming" `Quick test_rd_streaming_is_all_infinite;
          Alcotest.test_case "write restarts" `Quick test_rd_write_restarts;
          Alcotest.test_case "read-read finite" `Quick test_rd_read_read_is_finite;
          Alcotest.test_case "per-CTA separation" `Quick test_rd_per_cta_separation;
          Alcotest.test_case "line granularity" `Quick test_rd_cache_line_granularity;
          Alcotest.test_case "merge" `Quick test_rd_merge;
          Alcotest.test_case "buckets" `Quick test_rd_buckets;
          QCheck_alcotest.to_alcotest qcheck_rd_sample_conservation;
          QCheck_alcotest.to_alcotest qcheck_rd_write_only_no_samples_finite ] );
      ( "memory divergence",
        [ Alcotest.test_case "coalesced" `Quick test_md_coalesced;
          Alcotest.test_case "divergent" `Quick test_md_divergent;
          Alcotest.test_case "line size" `Quick test_md_line_size_matters;
          Alcotest.test_case "byte accesses" `Quick test_md_byte_accesses;
          Alcotest.test_case "site ranking" `Quick test_md_sites_ranking;
          QCheck_alcotest.to_alcotest qcheck_md_degree_bounds ] );
      ( "site reuse",
        [ Alcotest.test_case "streaming site" `Quick test_site_reuse_streaming_site;
          Alcotest.test_case "intra-instruction" `Quick test_site_reuse_intra_instruction_not_reuse;
          Alcotest.test_case "write kills" `Quick test_site_reuse_write_kills;
          Alcotest.test_case "candidates" `Quick test_site_reuse_candidates ] );
      ( "bypass model",
        [ Alcotest.test_case "clamps" `Quick test_bypass_model_clamps;
          Alcotest.test_case "formula" `Quick test_bypass_model_formula;
          QCheck_alcotest.to_alcotest qcheck_bypass_model_monotone ] );
      ( "report",
        [ Alcotest.test_case "json emitter" `Quick test_json_emitter;
          Alcotest.test_case "report structure" `Quick test_report_structure ] );
      ( "statistics",
        [ Alcotest.test_case "summary" `Quick test_statistics_summary;
          Alcotest.test_case "empty" `Quick test_statistics_empty ] );
    ]
