(* End-to-end tests of the Advisor facade: profiling sessions, the
   overhead study and the bypassing study. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()

let test_instrument_source () =
  let c =
    Advisor.instrument_source ~file:"k.cu"
      "__global__ void k(float* a) { a[threadIdx.x] = 1.0f; }"
  in
  check "manifest present" true (c.manifest <> None);
  check "prog has kernel" true
    (List.exists (fun (n, _) -> n = "k") c.prog.Ptx.Isa.funcs)

let test_profile_session () =
  let w = Workloads.Registry.find "nn" in
  let s = Advisor.profile ~arch w in
  check "instances recorded" true (Advisor.instances s <> []);
  let rd = Advisor.reuse_distance s in
  check "nn is streaming" true (Analysis.Reuse_distance.no_reuse_fraction rd > 0.99);
  let md = Advisor.mem_divergence s in
  check "nn coalesced" true (md.degree < 1.1);
  let bd = Advisor.branch_divergence s in
  check "nn near-zero divergence" true (Analysis.Branch_divergence.percent bd < 2.)

let test_profile_options_respected () =
  let w = Workloads.Registry.find "nn" in
  let s =
    Advisor.profile
      ~options:
        { Passes.Instrument.memory = false; control_flow = true; arithmetic = false }
      ~arch w
  in
  let i = List.hd (Advisor.instances s) in
  check_int "no memory events without memory hooks" 0 i.mem_count;
  check "blocks still recorded" true (Hashtbl.length i.bb_stats > 0)

let test_run_native_deterministic () =
  let w = Workloads.Registry.find "nn" in
  let a = fst (Advisor.run_native ~arch w) in
  let b = fst (Advisor.run_native ~arch w) in
  check_int "same cycles across runs" a b

let test_overhead_positive () =
  let w = Workloads.Registry.find "nn" in
  let o = Advisor.overhead_study ~arch w in
  check "instrumented slower" true (o.slowdown > 1.5);
  check "paper band (<= 500x)" true (o.slowdown < 500.)

let test_bypass_study_shape () =
  let w = Workloads.Registry.find "bicg" in
  let b = Advisor.bypass_study ~arch:(Gpusim.Arch.kepler_k40c ~num_sms:5 ~l1_kb:16 ()) w in
  check_int "sweep covers 0..warps" (b.warps_per_cta + 1) (List.length b.sweep);
  check "oracle no worse than baseline" true (b.oracle_cycles <= b.baseline_cycles);
  check "oracle no worse than prediction" true (b.oracle_cycles <= b.predicted_cycles);
  (* full caching must behave like the baseline (modulo the prologue) *)
  let full = List.assoc b.warps_per_cta b.sweep in
  let ratio = float_of_int full /. float_of_int b.baseline_cycles in
  check "N=warps == baseline within 10%" true (ratio > 0.9 && ratio < 1.1);
  check "prediction in range" true
    (b.predicted_warps >= 0 && b.predicted_warps <= b.warps_per_cta)

let test_rewrite_all_kernels () =
  let c =
    Advisor.instrument_source ~file:"k.cu"
      "__global__ void k1(float* a) { a[0] = a[1]; }\n__global__ void k2(float* a) { a[2] = a[3]; }"
  in
  let rewritten = Advisor.rewrite_all_kernels c.prog ~warps_to_cache:1 in
  let has_cg name =
    let f = Ptx.Isa.find_func rewritten name in
    Array.exists
      (function Ptx.Isa.Ld { cop = Ptx.Isa.Cg; _ } -> true | _ -> false)
      f.Ptx.Isa.body
  in
  check "k1 rewritten" true (has_cg "k1");
  check "k2 rewritten" true (has_cg "k2")

let () =
  Alcotest.run "advisor"
    [
      ( "pipeline",
        [ Alcotest.test_case "instrument_source" `Quick test_instrument_source;
          Alcotest.test_case "profile session" `Slow test_profile_session;
          Alcotest.test_case "options respected" `Slow test_profile_options_respected;
          Alcotest.test_case "determinism" `Slow test_run_native_deterministic ] );
      ( "studies",
        [ Alcotest.test_case "overhead" `Slow test_overhead_positive;
          Alcotest.test_case "bypass shape" `Slow test_bypass_study_shape;
          Alcotest.test_case "rewrite all kernels" `Quick test_rewrite_all_kernels ] );
    ]
