(* Tests for the MiniCUDA frontend: lexer, parser, typechecker and
   lowering — including a differential property test that compiles
   random integer expressions and compares the simulator's result with a
   direct OCaml evaluation. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- lexer ----- *)

let toks src =
  List.map (fun (sp : Minicuda.Lexer.spanned) -> sp.tok) (Minicuda.Lexer.tokenize ~file:"t.cu" src)

let test_lex_basic () =
  Alcotest.(check int) "count" 6 (List.length (toks "int x = 1 ;"));
  check "kw" true (List.hd (toks "__global__ void") = Minicuda.Token.Kw_global);
  check "ident" true (toks "foo" = [ Minicuda.Token.Ident "foo"; Minicuda.Token.Eof ])

let test_lex_numbers () =
  check "int" true (toks "42" = [ Minicuda.Token.Int_lit 42; Minicuda.Token.Eof ]);
  check "float" true (toks "1.5" = [ Minicuda.Token.Float_lit 1.5; Minicuda.Token.Eof ]);
  check "f suffix" true (toks "2f" = [ Minicuda.Token.Float_lit 2.0; Minicuda.Token.Eof ]);
  check "suffixed decimal" true
    (toks "0.5f" = [ Minicuda.Token.Float_lit 0.5; Minicuda.Token.Eof ]);
  check "exponent" true
    (toks "1e3" = [ Minicuda.Token.Float_lit 1000.0; Minicuda.Token.Eof ]);
  check "neg exponent" true
    (toks "2.5e-1" = [ Minicuda.Token.Float_lit 0.25; Minicuda.Token.Eof ])

let test_lex_operators () =
  check "shift" true
    (toks "a << 2 >> b"
    = Minicuda.Token.[ Ident "a"; Shl; Int_lit 2; Shr; Ident "b"; Eof ]);
  check "cmp" true
    (toks "<= >= == != && || !"
    = Minicuda.Token.[ Le; Ge; Eq_eq; Bang_eq; Amp_amp; Pipe_pipe; Bang; Eof ])

let test_lex_comments () =
  check "line comment" true (toks "a // comment\nb" = Minicuda.Token.[ Ident "a"; Ident "b"; Eof ]);
  check "block comment" true (toks "a /* x\ny */ b" = Minicuda.Token.[ Ident "a"; Ident "b"; Eof ])

let test_lex_positions () =
  let sps = Minicuda.Lexer.tokenize ~file:"t.cu" "a\n  b" in
  match sps with
  | [ a; b; _eof ] ->
    check_int "a line" 1 a.line;
    check_int "b line" 2 b.line;
    check_int "b col" 3 b.col
  | _ -> Alcotest.fail "token count"

let test_lex_errors () =
  check "bad char" true
    (match toks "$" with
    | exception Minicuda.Lexer.Error _ -> true
    | _ -> false);
  check "unterminated comment" true
    (match toks "/* oops" with
    | exception Minicuda.Lexer.Error _ -> true
    | _ -> false)

(* ----- parser / typechecker negative cases ----- *)

let compiles src =
  match Minicuda.Frontend.compile ~file:"t.cu" src with
  | _ -> true
  | exception Minicuda.Frontend.Error _ -> false

let wrap body = Printf.sprintf "__global__ void k(float* a, int n) { %s }" body

let test_reject_cases () =
  let bad =
    [ ("unbound var", wrap "x = 1;");
      ("bool arithmetic", wrap "int x = (n > 0) + 1;");
      ("if on int", wrap "if (n) { a[0] = 1.0f; }");
      ("call unknown", wrap "foo(n);");
      ("assign to shared array name", "__global__ void k() { __shared__ float t[4]; t = 0.0f; }");
      ("index non-pointer", wrap "int x = n[0];");
      ("void variable", wrap "void v = n;");
      ("redeclaration", wrap "int x = 1; int x = 2;");
      ("kernel returns value", "__global__ int k() { return 1; }");
      ("wrong arity", "__device__ int f(int x) { return x; } __global__ void k() { int y = f(1, 2); }");
      ("float shift", wrap "int x = 1 << 2.0f;");
      ("missing semicolon", wrap "int x = 1");
      ("unclosed brace", "__global__ void k() { if (1 > 0) {");
      ("duplicate function", "__device__ int f() { return 1; } __device__ int f() { return 2; }");
      ("return value from void", wrap "return n;");
      ("bad builtin field", wrap "int x = threadIdx.z;") ]
  in
  List.iter (fun (name, src) -> check name false (compiles src)) bad

let test_accept_cases () =
  let good =
    [ ("empty kernel", "__global__ void k() { }");
      ("implicit int->float", wrap "a[0] = n;");
      ("ternary", wrap "a[0] = n > 0 ? 1.0f : 2.0f;");
      ("nested loops", wrap "for (int i = 0; i < n; i = i + 1) { for (int j = 0; j < i; j = j + 1) { a[i] = a[j]; } }");
      ("while", wrap "int i = 0; while (i < n) { i = i + 1; }");
      ("device call", "__device__ float sq(float x) { return x * x; } __global__ void k(float* a) { a[0] = sq(a[1]); }");
      ("address-of", wrap "float old = atomicAdd(&a[0], 1.0f);");
      ("scoped shadowing", wrap "int i = 1; { int j = i + 1; a[j] = 0.0f; }");
      ("pointer arithmetic", wrap "float* p = a + n; p[0] = 1.0f;");
      ("bool var", wrap "bool flag = n > 2; if (flag) { a[0] = 1.0f; }") ]
  in
  List.iter (fun (name, src) -> check name true (compiles src)) good

(* ----- functional end-to-end checks through the simulator ----- *)

let run_scalar_kernel body =
  let src = Printf.sprintf "__global__ void k(int* out, int n) { %s }" body in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(1, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 400004 in
        out := d;
        [ Gpusim.Value.I d; Gpusim.Value.I 10 ])
      src
  in
  Gpusim.Devmem.read_i32 dev.Gpusim.Gpu.devmem !out

let test_exec_arith () =
  check_int "precedence" (1 + (2 * 10)) (run_scalar_kernel "out[0] = 1 + 2 * n;");
  check_int "parens" ((1 + 2) * 10) (run_scalar_kernel "out[0] = (1 + 2) * n;");
  check_int "rem" 1 (run_scalar_kernel "out[0] = n % 3;");
  check_int "shift" 40 (run_scalar_kernel "out[0] = n << 2;");
  check_int "bitand" 2 (run_scalar_kernel "out[0] = n & 6;");
  check_int "neg" (-10) (run_scalar_kernel "out[0] = -n;");
  check_int "min" 3 (run_scalar_kernel "out[0] = min(n, 3);");
  check_int "max" 10 (run_scalar_kernel "out[0] = max(n, 3);")

let test_exec_control_flow () =
  check_int "if taken" 1 (run_scalar_kernel "if (n > 5) { out[0] = 1; } else { out[0] = 2; }");
  check_int "if not taken" 2 (run_scalar_kernel "if (n > 50) { out[0] = 1; } else { out[0] = 2; }");
  check_int "for sum" 45 (run_scalar_kernel "int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } out[0] = s;");
  check_int "while" 16 (run_scalar_kernel "int x = 1; while (x < n) { x = x * 2; } out[0] = x;");
  check_int "early return" 7
    (run_scalar_kernel "out[0] = 7; if (n > 0) { return; } out[0] = 8;");
  check_int "short-circuit and skips rhs" 5
    (run_scalar_kernel "if (n < 0 && out[1000000000] > 0) { out[0] = 1; } else { out[0] = 5; }");
  check_int "short-circuit or skips rhs" 6
    (run_scalar_kernel "if (n > 0 || out[1000000000] > 0) { out[0] = 6; } else { out[0] = 1; }");
  check_int "ternary" 3 (run_scalar_kernel "out[0] = n > 5 ? 3 : 4;")

let test_exec_casts () =
  check_int "float to int truncates" 3 (run_scalar_kernel "float f = 3.9f; out[0] = (int)f;");
  check_int "int to float and back" 10 (run_scalar_kernel "float f = (float)n; out[0] = (int)f;");
  check_int "bool to int" 1 (run_scalar_kernel "out[0] = (int)(n > 5);")

let test_exec_device_call () =
  check_int "recursive factorial on device" 120
    (run_scalar_kernel
       "out[0] = 0; if (n > 0) { out[0] = 120; }"
       (* recursion exercised separately below *));
  let src =
    {|
__device__ int fact(int n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
__global__ void k(int* out, int n) { out[0] = fact(5); }
|}
  in
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(1, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 64 in
        out := d;
        [ Gpusim.Value.I d; Gpusim.Value.I 0 ])
      src
  in
  check_int "fact(5)" 120 (Gpusim.Devmem.read_i32 dev.Gpusim.Gpu.devmem !out)

let test_debug_locations () =
  let m =
    Minicuda.Frontend.compile ~file:"t.cu"
      "__global__ void k(float* a) {\n  a[0] = 1.0f;\n}"
  in
  let f = Bitc.Irmod.find_func_exn m "k" in
  let found = ref false in
  Bitc.Func.iter_instrs f (fun _ i ->
      if Bitc.Instr.is_memory_access i && i.loc.Bitc.Loc.line = 2 then found := true);
  check "store attributed to line 2" true !found

(* ----- differential property test ----- *)

type e = Lit of int | Var | Add of e * e | Sub of e * e | Mul of e * e
       | Min of e * e | Max of e * e

let rec render = function
  | Lit i -> Printf.sprintf "(%d)" i
  | Var -> "n"
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)
  | Min (a, b) -> Printf.sprintf "min(%s, %s)" (render a) (render b)
  | Max (a, b) -> Printf.sprintf "max(%s, %s)" (render a) (render b)

let rec eval n = function
  | Lit i -> i
  | Var -> n
  | Add (a, b) -> eval n a + eval n b
  | Sub (a, b) -> eval n a - eval n b
  | Mul (a, b) -> eval n a * eval n b
  | Min (a, b) -> min (eval n a) (eval n b)
  | Max (a, b) -> max (eval n a) (eval n b)

let gen_expr =
  QCheck2.Gen.(
    let node =
      fix (fun self size ->
          if size <= 1 then
            oneof [ map (fun i -> Lit i) (int_range (-20) 20); return Var ]
          else
            let sub = self (size / 2) in
            oneof
              [ map2 (fun a b -> Add (a, b)) sub sub;
                map2 (fun a b -> Sub (a, b)) sub sub;
                map2 (fun a b -> Mul (a, b)) sub sub;
                map2 (fun a b -> Min (a, b)) sub sub;
                map2 (fun a b -> Max (a, b)) sub sub ])
    in
    int_range 1 24 >>= node)

let qcheck_expr_differential =
  QCheck2.Test.make ~name:"simulator matches OCaml on random expressions" ~count:60
    QCheck2.Gen.(pair gen_expr (int_range (-5) 15))
    (fun (e, n) ->
      let src =
        Printf.sprintf "__global__ void k(int* out, int n) { out[0] = %s; }" (render e)
      in
      let out = ref 0 in
      let dev, _, _ =
        Testutil.run_kernel ~kernel:"k" ~block:(1, 1)
          ~setup:(fun dev ->
            let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 64 in
            out := d;
            [ Gpusim.Value.I d; Gpusim.Value.I n ])
          src
      in
      Gpusim.Devmem.read_i32 dev.Gpusim.Gpu.devmem !out = eval n e)

let () =
  Alcotest.run "minicuda"
    [
      ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "errors" `Quick test_lex_errors ] );
      ( "typecheck",
        [ Alcotest.test_case "rejections" `Quick test_reject_cases;
          Alcotest.test_case "acceptances" `Quick test_accept_cases ] );
      ( "execution",
        [ Alcotest.test_case "arithmetic" `Quick test_exec_arith;
          Alcotest.test_case "control flow" `Quick test_exec_control_flow;
          Alcotest.test_case "casts" `Quick test_exec_casts;
          Alcotest.test_case "device calls + recursion" `Quick test_exec_device_call;
          Alcotest.test_case "debug locations" `Quick test_debug_locations ] );
      ( "properties", [ QCheck_alcotest.to_alcotest qcheck_expr_differential ] );
    ]
