(* Tests for PTX code generation and the horizontal-bypass rewriter. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample =
  {|
__global__ void k(float* a, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    a[tid] = a[tid] * 2.0f;
  }
}
|}

let test_codegen_structure () =
  let _, prog = Testutil.compile sample in
  let f = Ptx.Isa.find_func prog "k" in
  check "is kernel" true f.is_kernel;
  check_int "arity" 2 f.arity;
  check "has instructions" true (Array.length f.body > 0);
  check "locs parallel to body" true (Array.length f.locs = Array.length f.body);
  check "blocks parallel to body" true
    (Array.length f.block_of_pc = Array.length f.body)

let test_codegen_branch_targets_valid () =
  let _, prog = Testutil.compile sample in
  let f = Ptx.Isa.find_func prog "k" in
  let len = Array.length f.body in
  Array.iter
    (fun inst ->
      match inst with
      | Ptx.Isa.Bra { target } -> check "bra in range" true (target >= 0 && target < len)
      | Ptx.Isa.Cond_bra { if_true; if_false; reconv; _ } ->
        check "true in range" true (if_true >= 0 && if_true < len);
        check "false in range" true (if_false >= 0 && if_false < len);
        (match reconv with
        | Some r -> check "reconv in range" true (r >= 0 && r < len)
        | None -> ())
      | _ -> ())
    f.body

let test_codegen_reconv_matches_merge_block () =
  let _, prog = Testutil.compile sample in
  let f = Ptx.Isa.find_func prog "k" in
  (* the tid<n branch must reconverge at the start of if.end *)
  Array.iter
    (fun inst ->
      match inst with
      | Ptx.Isa.Cond_bra { reconv = Some r; _ } ->
        check "reconv is a block start" true
          (r = 0 || f.block_of_pc.(r) <> f.block_of_pc.(r - 1))
      | _ -> ())
    f.body

let test_shared_offsets_disjoint () =
  let src =
    {|
__global__ void k(float* a) {
  __shared__ float x[8];
  __shared__ int y[4];
  x[threadIdx.x] = 1.0f;
  y[threadIdx.x] = 2;
  a[threadIdx.x] = x[threadIdx.x] + (float)y[threadIdx.x];
}
|}
  in
  let m, prog = Testutil.compile src in
  ignore m;
  let f = Ptx.Isa.find_func prog "k" in
  check "shared size covers both arrays" true (f.shared_bytes >= (8 * 4) + (4 * 4));
  (* run it: if offsets overlapped the sum would be wrong *)
  let out = ref 0 in
  let dev, _, _ =
    Testutil.run_kernel ~kernel:"k" ~block:(4, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 4) in
        out := d;
        [ Gpusim.Value.I d ])
      src
  in
  check "x+y correct" true (Testutil.f32s dev !out 4 = [| 3.; 3.; 3.; 3. |])

let test_printer_mentions_cache_ops () =
  let _, prog = Testutil.compile sample in
  let prog = Ptx.Bypass.rewrite_prog prog ~kernel:"k" ~warps_to_cache:1 in
  let text = Ptx.Printer.prog_to_string prog in
  check "has ld.global.ca" true (Testutil.contains text "ld.global.ca");
  check "has ld.global.cg" true (Testutil.contains text "ld.global.cg")

(* ----- bypass rewriter ----- *)

let run_k ?(transform = fun p -> p) n_threads =
  let m = Minicuda.Frontend.compile ~file:"t.cu" sample in
  let prog = transform (Ptx.Codegen.gen_module m) in
  let dev = Gpusim.Gpu.create_device (Gpusim.Arch.kepler_k40c ()) in
  let d = Gpusim.Devmem.malloc dev.devmem (4 * n_threads) in
  for i = 0 to n_threads - 1 do
    Gpusim.Devmem.write_f32 dev.devmem (d + (4 * i)) (float_of_int i)
  done;
  ignore
    (Gpusim.Gpu.launch dev ~prog ~kernel:"k" ~grid:(2, 1)
       ~block:(n_threads / 2, 1)
       ~args:[ Gpusim.Value.I d; Gpusim.Value.I n_threads ] ());
  Gpusim.Devmem.read_f32_array dev.devmem d n_threads

let test_bypass_preserves_results () =
  let native = run_k 128 in
  List.iter
    (fun n ->
      let rewritten =
        run_k ~transform:(fun p -> Ptx.Bypass.rewrite_prog p ~kernel:"k" ~warps_to_cache:n) 128
      in
      check (Printf.sprintf "N=%d same results" n) true (native = rewritten))
    [ 0; 1; 2; 4 ]

let test_bypass_splits_loads () =
  let _, prog = Testutil.compile sample in
  let count_loads cop p =
    let f = Ptx.Isa.find_func p "k" in
    Array.fold_left
      (fun acc inst ->
        match inst with
        | Ptx.Isa.Ld { space = Ptx.Isa.Global; cop = c; _ } when c = cop -> acc + 1
        | _ -> acc)
      0 f.body
  in
  let before_ca = count_loads Ptx.Isa.Ca prog in
  let rewritten = Ptx.Bypass.rewrite_prog prog ~kernel:"k" ~warps_to_cache:2 in
  check_int "each ca load gets a cg twin" before_ca (count_loads Ptx.Isa.Cg rewritten);
  check_int "ca loads preserved" before_ca (count_loads Ptx.Isa.Ca rewritten)

let test_bypass_rejects_unknown_kernel () =
  let _, prog = Testutil.compile sample in
  check "unknown kernel" true
    (match Ptx.Bypass.rewrite_prog prog ~kernel:"nope" ~warps_to_cache:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_shared_bytes_for_launch () =
  let src =
    "__global__ void k() { __shared__ float t[16]; t[0] = 1.0f; }"
  in
  let _, prog = Testutil.compile src in
  check "launch shared covers declaration" true
    (Ptx.Isa.shared_bytes_for_launch prog "k" >= 64)

let () =
  Alcotest.run "ptx"
    [
      ( "codegen",
        [ Alcotest.test_case "structure" `Quick test_codegen_structure;
          Alcotest.test_case "branch targets" `Quick test_codegen_branch_targets_valid;
          Alcotest.test_case "reconvergence points" `Quick test_codegen_reconv_matches_merge_block;
          Alcotest.test_case "shared offsets" `Quick test_shared_offsets_disjoint;
          Alcotest.test_case "shared for launch" `Quick test_shared_bytes_for_launch;
          Alcotest.test_case "printer" `Quick test_printer_mentions_cache_ops ] );
      ( "bypass",
        [ Alcotest.test_case "results preserved" `Quick test_bypass_preserves_results;
          Alcotest.test_case "loads split" `Quick test_bypass_splits_loads;
          Alcotest.test_case "unknown kernel" `Quick test_bypass_rejects_unknown_kernel ] );
    ]
