(* Unit and property tests for the Bitc IR: types, builder, verifier,
   printer and CFG analyses. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ----- types ----- *)

let test_type_sizes () =
  check_int "i1" 1 (Bitc.Types.size_of Bitc.Types.I1);
  check_int "i32" 4 (Bitc.Types.size_of Bitc.Types.I32);
  check_int "f32" 4 (Bitc.Types.size_of Bitc.Types.F32);
  check_int "ptr" 8 (Bitc.Types.size_of (Bitc.Types.Ptr (Bitc.Types.F32, Bitc.Types.Global)));
  check_int "void" 0 (Bitc.Types.size_of Bitc.Types.Void)

let test_type_equal () =
  let p s = Bitc.Types.Ptr (Bitc.Types.F32, s) in
  check "same" true (Bitc.Types.equal (p Bitc.Types.Global) (p Bitc.Types.Global));
  check "space differs" false (Bitc.Types.equal (p Bitc.Types.Global) (p Bitc.Types.Shared));
  check "scalar vs ptr" false (Bitc.Types.equal Bitc.Types.F32 (p Bitc.Types.Global));
  check "i32 vs f32" false (Bitc.Types.equal Bitc.Types.I32 Bitc.Types.F32)

let test_pointee () =
  check "pointee" true
    (Bitc.Types.equal Bitc.Types.I32
       (Bitc.Types.pointee (Bitc.Types.Ptr (Bitc.Types.I32, Bitc.Types.Local))));
  Alcotest.check_raises "pointee of scalar" (Invalid_argument "Types.pointee: not a pointer (4)")
    (fun () -> ignore (Bitc.Types.pointee Bitc.Types.I32))

let test_type_strings () =
  check_str "i32" "i32" (Bitc.Types.to_string Bitc.Types.I32);
  check_str "generic ptr" "f32*"
    (Bitc.Types.to_string (Bitc.Types.Ptr (Bitc.Types.F32, Bitc.Types.Generic)));
  check_str "global ptr" "f32 addrspace(global)*"
    (Bitc.Types.to_string (Bitc.Types.Ptr (Bitc.Types.F32, Bitc.Types.Global)))

(* ----- locations ----- *)

let test_loc () =
  let l = Bitc.Loc.make ~file:"a.cu" ~line:3 ~col:7 in
  check_str "to_string" "a.cu:3:7" (Bitc.Loc.to_string l);
  check "none" true (Bitc.Loc.is_none Bitc.Loc.none);
  check "not none" false (Bitc.Loc.is_none l);
  check "equal" true (Bitc.Loc.equal l (Bitc.Loc.make ~file:"a.cu" ~line:3 ~col:7));
  check "compare" true (Bitc.Loc.compare l (Bitc.Loc.make ~file:"a.cu" ~line:4 ~col:0) < 0)

(* ----- values ----- *)

let test_values () =
  check "reg eq" true (Bitc.Value.equal (Bitc.Value.Reg 3) (Bitc.Value.Reg 3));
  check "reg neq" false (Bitc.Value.equal (Bitc.Value.Reg 3) (Bitc.Value.Reg 4));
  check "const" true (Bitc.Value.is_const (Bitc.Value.Int 1));
  check "reg not const" false (Bitc.Value.is_const (Bitc.Value.Reg 1));
  check_str "print reg" "%5" (Bitc.Value.to_string (Bitc.Value.Reg 5));
  check_str "print true" "true" (Bitc.Value.to_string (Bitc.Value.Bool true))

(* ----- builder + verifier ----- *)

(* Build: kernel f(p: f32*, n: i32) { if (n > 0) p[0] = 1.0; } *)
let build_simple_kernel () =
  let m = Bitc.Irmod.create "t" in
  let f =
    Bitc.Func.create ~name:"k"
      ~params:
        [ ("p", Bitc.Types.Ptr (Bitc.Types.F32, Bitc.Types.Global));
          ("n", Bitc.Types.I32) ]
      ~ret:Bitc.Types.Void ~fkind:Bitc.Func.Kernel
  in
  Bitc.Irmod.add_func m f;
  let b = Bitc.Builder.create f in
  let cond = Bitc.Builder.cmp b Bitc.Instr.Gt (Bitc.Value.Reg 1) (Bitc.Value.Int 0) in
  let then_b = Bitc.Builder.new_block b "then" in
  let end_b = Bitc.Builder.new_block b "end" in
  Bitc.Builder.cond_br b cond ~then_:then_b ~else_:end_b;
  Bitc.Builder.set_block b then_b;
  Bitc.Builder.store b ~ptr:(Bitc.Value.Reg 0) ~value:(Bitc.Value.Float 1.0);
  Bitc.Builder.br b end_b;
  Bitc.Builder.set_block b end_b;
  Bitc.Builder.ret b None;
  (m, f)

let test_builder_simple () =
  let m, f = build_simple_kernel () in
  Bitc.Verify.run m;
  check_int "blocks" 3 (List.length f.blocks);
  check "entry terminated" true
    (match (Bitc.Func.entry f).term with
    | Some (Bitc.Instr.Cond_br _) -> true
    | _ -> false)

let test_block_names_unique () =
  let m, f = build_simple_kernel () in
  ignore m;
  let b = Bitc.Builder.create f in
  let extra = Bitc.Builder.new_block b "then" in
  check "renamed" true (extra.Bitc.Block.name <> "then")

let test_verifier_rejects_unterminated () =
  let m = Bitc.Irmod.create "t" in
  let f =
    Bitc.Func.create ~name:"k" ~params:[] ~ret:Bitc.Types.Void ~fkind:Bitc.Func.Kernel
  in
  Bitc.Irmod.add_func m f;
  Bitc.Func.add_block f (Bitc.Block.create "entry");
  check "unterminated rejected" true (Result.is_error (Bitc.Verify.check m))

let test_verifier_rejects_bad_branch_target () =
  let m, f = build_simple_kernel () in
  (Bitc.Func.entry f).term <- Some (Bitc.Instr.Br "nowhere");
  check "bad target rejected" true (Result.is_error (Bitc.Verify.check m))

let test_verifier_rejects_type_mismatch () =
  let m, f = build_simple_kernel () in
  (* store an i32 through an f32 pointer *)
  let blk = Bitc.Func.find_block_exn f "then" in
  blk.instrs <-
    [ { Bitc.Instr.result = None;
        ty = Bitc.Types.Void;
        kind =
          Bitc.Instr.Store
            { ptr = Bitc.Value.Reg 0; value = Bitc.Value.Int 1; value_ty = Bitc.Types.I32 };
        loc = Bitc.Loc.none } ];
  check "type mismatch rejected" true (Result.is_error (Bitc.Verify.check m))

let test_verifier_rejects_undefined_reg () =
  let m, f = build_simple_kernel () in
  let blk = Bitc.Func.find_block_exn f "then" in
  blk.term <- Some (Bitc.Instr.Cond_br (Bitc.Value.Reg 99, "then", "end"));
  ignore (Bitc.Func.fresh_reg f Bitc.Types.I1);
  check "undefined reg rejected" true (Result.is_error (Bitc.Verify.check m))

let test_verifier_rejects_double_assign () =
  let m, f = build_simple_kernel () in
  let blk = Bitc.Func.find_block_exn f "then" in
  let dup =
    { Bitc.Instr.result = Some 2;
      ty = Bitc.Types.I1;
      kind = Bitc.Instr.Cmp (Bitc.Instr.Eq, Bitc.Types.I32, Bitc.Value.Int 0, Bitc.Value.Int 0);
      loc = Bitc.Loc.none }
  in
  Bitc.Block.prepend blk dup;
  check "double assign rejected" true (Result.is_error (Bitc.Verify.check m))

let test_verifier_rejects_undeclared_call () =
  let m, f = build_simple_kernel () in
  let blk = Bitc.Func.find_block_exn f "then" in
  Bitc.Block.prepend blk
    { Bitc.Instr.result = None;
      ty = Bitc.Types.Void;
      kind = Bitc.Instr.Call { callee = "missing"; args = [] };
      loc = Bitc.Loc.none };
  check "undeclared call rejected" true (Result.is_error (Bitc.Verify.check m))

let test_printer_contains () =
  let m, _ = build_simple_kernel () in
  let text = Bitc.Printer.module_to_string m in
  check "has define" true
    (Testutil.contains text "define kernel void @k");
  check "has icmp" true (Testutil.contains text "icmp gt");
  check "has store" true (Testutil.contains text "store f32")

(* ----- CFG ----- *)

(* diamond: entry -> (a|b) -> join -> exit(ret) *)
let build_diamond () =
  let m = Bitc.Irmod.create "t" in
  let f =
    Bitc.Func.create ~name:"d" ~params:[ ("c", Bitc.Types.I1) ] ~ret:Bitc.Types.Void
      ~fkind:Bitc.Func.Device
  in
  Bitc.Irmod.add_func m f;
  let b = Bitc.Builder.create f in
  let a = Bitc.Builder.new_block b "a" in
  let bb = Bitc.Builder.new_block b "b" in
  let join = Bitc.Builder.new_block b "join" in
  Bitc.Builder.cond_br b (Bitc.Value.Reg 0) ~then_:a ~else_:bb;
  Bitc.Builder.set_block b a;
  Bitc.Builder.br b join;
  Bitc.Builder.set_block b bb;
  Bitc.Builder.br b join;
  Bitc.Builder.set_block b join;
  Bitc.Builder.ret b None;
  (m, f)

let test_cfg_diamond_ipdom () =
  let _, f = build_diamond () in
  let cfg = Bitc.Cfg.build f in
  let ipdom = Bitc.Cfg.post_dominators cfg in
  Alcotest.(check (option string))
    "entry reconverges at join" (Some "join")
    (Bitc.Cfg.reconvergence_point cfg ipdom "entry")

let test_cfg_loop_ipdom () =
  (* entry -> cond; cond -> (body|exit); body -> cond *)
  let m = Bitc.Irmod.create "t" in
  let f =
    Bitc.Func.create ~name:"l" ~params:[ ("c", Bitc.Types.I1) ] ~ret:Bitc.Types.Void
      ~fkind:Bitc.Func.Device
  in
  Bitc.Irmod.add_func m f;
  let b = Bitc.Builder.create f in
  let cond = Bitc.Builder.new_block b "cond" in
  let body = Bitc.Builder.new_block b "body" in
  let exit_b = Bitc.Builder.new_block b "exit" in
  Bitc.Builder.br b cond;
  Bitc.Builder.set_block b cond;
  Bitc.Builder.cond_br b (Bitc.Value.Reg 0) ~then_:body ~else_:exit_b;
  Bitc.Builder.set_block b body;
  Bitc.Builder.br b cond;
  Bitc.Builder.set_block b exit_b;
  Bitc.Builder.ret b None;
  Bitc.Verify.run m;
  let cfg = Bitc.Cfg.build f in
  let ipdom = Bitc.Cfg.post_dominators cfg in
  Alcotest.(check (option string))
    "loop branch reconverges at exit" (Some "exit")
    (Bitc.Cfg.reconvergence_point cfg ipdom "cond")

let test_cfg_nested_if_ipdom () =
  (* if (c) { if (c) {x} y } z  — inner reconverges at y, outer at z *)
  let m = Bitc.Irmod.create "t" in
  let f =
    Bitc.Func.create ~name:"n" ~params:[ ("c", Bitc.Types.I1) ] ~ret:Bitc.Types.Void
      ~fkind:Bitc.Func.Device
  in
  Bitc.Irmod.add_func m f;
  let b = Bitc.Builder.create f in
  let outer_then = Bitc.Builder.new_block b "outer.then" in
  let inner_then = Bitc.Builder.new_block b "inner.then" in
  let inner_end = Bitc.Builder.new_block b "inner.end" in
  let outer_end = Bitc.Builder.new_block b "outer.end" in
  Bitc.Builder.cond_br b (Bitc.Value.Reg 0) ~then_:outer_then ~else_:outer_end;
  Bitc.Builder.set_block b outer_then;
  Bitc.Builder.cond_br b (Bitc.Value.Reg 0) ~then_:inner_then ~else_:inner_end;
  Bitc.Builder.set_block b inner_then;
  Bitc.Builder.br b inner_end;
  Bitc.Builder.set_block b inner_end;
  Bitc.Builder.br b outer_end;
  Bitc.Builder.set_block b outer_end;
  Bitc.Builder.ret b None;
  Bitc.Verify.run m;
  let cfg = Bitc.Cfg.build f in
  let ipdom = Bitc.Cfg.post_dominators cfg in
  Alcotest.(check (option string))
    "inner" (Some "inner.end")
    (Bitc.Cfg.reconvergence_point cfg ipdom "outer.then");
  Alcotest.(check (option string))
    "outer" (Some "outer.end")
    (Bitc.Cfg.reconvergence_point cfg ipdom "entry")

let test_cfg_early_return () =
  (* if (c) ret; rest — reconvergence only at function exit *)
  let m = Bitc.Irmod.create "t" in
  let f =
    Bitc.Func.create ~name:"e" ~params:[ ("c", Bitc.Types.I1) ] ~ret:Bitc.Types.Void
      ~fkind:Bitc.Func.Device
  in
  Bitc.Irmod.add_func m f;
  let b = Bitc.Builder.create f in
  let ret_b = Bitc.Builder.new_block b "early" in
  let rest = Bitc.Builder.new_block b "rest" in
  Bitc.Builder.cond_br b (Bitc.Value.Reg 0) ~then_:ret_b ~else_:rest;
  Bitc.Builder.set_block b ret_b;
  Bitc.Builder.ret b None;
  Bitc.Builder.set_block b rest;
  Bitc.Builder.ret b None;
  Bitc.Verify.run m;
  let cfg = Bitc.Cfg.build f in
  let ipdom = Bitc.Cfg.post_dominators cfg in
  Alcotest.(check (option string))
    "no reconvergence before exit" None
    (Bitc.Cfg.reconvergence_point cfg ipdom "entry")

let test_cfg_rpo () =
  let _, f = build_diamond () in
  let cfg = Bitc.Cfg.build f in
  let rpo = Bitc.Cfg.reverse_postorder cfg in
  check_int "rpo covers all blocks" 4 (Array.length rpo);
  check_int "entry first" 0 rpo.(0)

(* ----- qcheck properties ----- *)

let qcheck_straightline_verifies =
  (* arbitrary straight-line arithmetic over two i32 params always
     passes the verifier when built through the Builder *)
  QCheck2.Test.make ~name:"builder output always verifies" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 0 5))
    (fun ops ->
      let m = Bitc.Irmod.create "q" in
      let f =
        Bitc.Func.create ~name:"f"
          ~params:[ ("a", Bitc.Types.I32); ("b", Bitc.Types.I32) ]
          ~ret:Bitc.Types.I32 ~fkind:Bitc.Func.Device
      in
      Bitc.Irmod.add_func m f;
      let b = Bitc.Builder.create f in
      let acc = ref (Bitc.Value.Reg 0) in
      List.iter
        (fun op ->
          let binop =
            match op with
            | 0 -> Bitc.Instr.Add
            | 1 -> Bitc.Instr.Sub
            | 2 -> Bitc.Instr.Mul
            | 3 -> Bitc.Instr.And
            | 4 -> Bitc.Instr.Min
            | _ -> Bitc.Instr.Max
          in
          acc := Bitc.Builder.binop b binop !acc (Bitc.Value.Reg 1))
        ops;
      Bitc.Builder.ret b (Some !acc);
      Result.is_ok (Bitc.Verify.check m))

let qcheck_ipdom_of_chain =
  (* in a linear chain every block's ipdom is its successor *)
  QCheck2.Test.make ~name:"linear chain ipdom" ~count:50
    QCheck2.Gen.(int_range 2 12)
    (fun n ->
      let m = Bitc.Irmod.create "q" in
      let f =
        Bitc.Func.create ~name:"f" ~params:[] ~ret:Bitc.Types.Void
          ~fkind:Bitc.Func.Device
      in
      Bitc.Irmod.add_func m f;
      let b = Bitc.Builder.create f in
      let blocks =
        List.init (n - 1) (fun i -> Bitc.Builder.new_block b (Printf.sprintf "b%d" i))
      in
      List.iter
        (fun blk ->
          Bitc.Builder.br b blk;
          Bitc.Builder.set_block b blk)
        blocks;
      Bitc.Builder.ret b None;
      let cfg = Bitc.Cfg.build f in
      let ipdom = Bitc.Cfg.post_dominators cfg in
      (* block i's ipdom is block i+1 for all but the last *)
      let ok = ref true in
      for i = 0 to Bitc.Cfg.size cfg - 2 do
        if ipdom.(i) <> i + 1 then ok := false
      done;
      !ok && ipdom.(Bitc.Cfg.size cfg - 1) = -1)

let () =
  Alcotest.run "bitc"
    [
      ( "types",
        [ Alcotest.test_case "sizes" `Quick test_type_sizes;
          Alcotest.test_case "equality" `Quick test_type_equal;
          Alcotest.test_case "pointee" `Quick test_pointee;
          Alcotest.test_case "to_string" `Quick test_type_strings ] );
      ( "loc+value",
        [ Alcotest.test_case "loc" `Quick test_loc;
          Alcotest.test_case "values" `Quick test_values ] );
      ( "builder+verify",
        [ Alcotest.test_case "simple kernel" `Quick test_builder_simple;
          Alcotest.test_case "unique block names" `Quick test_block_names_unique;
          Alcotest.test_case "rejects unterminated" `Quick test_verifier_rejects_unterminated;
          Alcotest.test_case "rejects bad branch" `Quick test_verifier_rejects_bad_branch_target;
          Alcotest.test_case "rejects type mismatch" `Quick test_verifier_rejects_type_mismatch;
          Alcotest.test_case "rejects undefined reg" `Quick test_verifier_rejects_undefined_reg;
          Alcotest.test_case "rejects double assign" `Quick test_verifier_rejects_double_assign;
          Alcotest.test_case "rejects undeclared call" `Quick test_verifier_rejects_undeclared_call;
          Alcotest.test_case "printer" `Quick test_printer_contains ] );
      ( "cfg",
        [ Alcotest.test_case "diamond ipdom" `Quick test_cfg_diamond_ipdom;
          Alcotest.test_case "loop ipdom" `Quick test_cfg_loop_ipdom;
          Alcotest.test_case "nested if ipdom" `Quick test_cfg_nested_if_ipdom;
          Alcotest.test_case "early return" `Quick test_cfg_early_return;
          Alcotest.test_case "reverse postorder" `Quick test_cfg_rpo ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_straightline_verifies;
          QCheck_alcotest.to_alcotest qcheck_ipdom_of_chain ] );
    ]
