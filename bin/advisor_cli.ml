(* cudaadvisor — command-line front end.

   Mirrors the artifact workflow of the paper (Appendix A): build an
   instrumented binary of a benchmark, run it under the profiler, and
   print the analyses (RD_mode / MD_mode / BD_mode directories of the
   original artifact become the `--analysis` flag here). *)

open Cmdliner

let arch_conv =
  let parse s =
    match Gpusim.Arch.of_name s with
    | Some arch -> Ok arch
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown architecture %s (expected one of %s)" s
             (String.concat ", " Gpusim.Arch.known_names)))
  in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt a.Gpusim.Arch.short_name)

let arch_arg =
  Arg.(
    value
    & opt arch_conv (Gpusim.Arch.kepler_k40c ~l1_kb:16 ())
    & info [ "arch" ] ~docv:"ARCH"
        ~doc:"Target architecture: kepler, kepler-32k, kepler-48k or pascal.")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ] ~docv:"N" ~doc:"Input scale factor (default: per-app).")

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Benchmark name (see `cudaadvisor list`).")

let find_app name =
  match Workloads.Registry.find_opt name with
  | Some w -> `Ok w
  | None ->
    `Error
      (false, Printf.sprintf "unknown application %s (try `cudaadvisor list`)" name)

(* ----- observability flags (shared by every subcommand) ----- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Enable self-profiling and write a Chrome trace-event JSON file to \
              $(docv) on exit (load it in chrome://tracing or ui.perfetto.dev).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Dump the self-profiling metrics registry on exit.")

let log_arg =
  let level_conv =
    Arg.enum
      [ ("debug", Obs.Log.Debug); ("info", Obs.Log.Info); ("warn", Obs.Log.Warn);
        ("error", Obs.Log.Error); ("quiet", Obs.Log.Quiet) ]
  in
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "log" ] ~docv:"LEVEL"
        ~doc:"Log level: debug, info, warn, error or quiet (default: \
              $(b,OBS_LOG) environment variable, else warn).")

let max_warp_instrs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-warp-instrs" ] ~docv:"N"
        ~doc:"Per-warp executed-instruction limit before a launch is aborted as \
              runaway (default: $(b,CUDAADVISOR_MAX_WARP_INSTRS) environment \
              variable, else the built-in limit).")

(* Applies the flags as a side effect of term evaluation (so tracing is
   on before the command body runs) and hands the command a finalizer
   to run once its work is done. *)
let obs_term =
  let make trace_file metrics log_level max_warp =
    (match log_level with Some l -> Obs.Log.set_level l | None -> ());
    (match max_warp with Some n -> Gpusim.Gpu.set_max_warp_insts n | None -> ());
    if trace_file <> None then Obs.Trace.enable ();
    fun () ->
      (match trace_file with
      | Some f ->
        Obs.Trace.export_chrome_to_file f;
        Printf.eprintf "wrote Chrome trace to %s\n%!" f
      | None -> ());
      if metrics then print_string (Obs.Metrics.to_text ())
  in
  Term.(const make $ trace_arg $ metrics_flag $ log_arg $ max_warp_instrs_arg)

(* ----- list ----- *)

let list_cmd =
  let run finish =
    List.iter
      (fun (w : Workloads.Common.t) ->
        Printf.printf "%-10s %-40s (%s)\n" w.name w.description w.input_desc)
      Workloads.Registry.all;
    Printf.printf "\nSeeded-bug variants (for `cudaadvisor check`):\n";
    List.iter
      (fun (w : Workloads.Common.t) ->
        Printf.printf "%-22s %-40s (%s)\n" w.name w.description w.input_desc)
      Workloads.Registry.seeded;
    finish ()
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmark applications.")
    Term.(const run $ obs_term)

(* ----- profile ----- *)

let profile_run finish app arch scale analysis json tier bankmodel =
  match find_app app with
  | `Error _ as e -> e
  | `Ok _ when tier = `Static && bankmodel ->
    `Error (false, "--bankmodel needs the exact tier (it charges simulated cycles)")
  | `Ok w when tier = `Static && json ->
    print_endline
      (Analysis.Report.to_string (Advisor.estimate_json ~arch w));
    finish ();
    `Ok ()
  | `Ok w when tier = `Static ->
    let e = Advisor.estimate ~arch w in
    let module E = Passes.Estimate in
    Printf.printf "== Static estimate (no simulation; line size %d B) ==\n"
      e.E.line_size;
    Printf.printf "memory divergence: %.2f lines/access [%s]\n" e.E.degree
      (E.confidence_label e.E.degree_confidence);
    Printf.printf "branch divergence: %.2f%% [%s]\n" e.E.branch_percent
      (E.confidence_label e.E.branch_confidence);
    Printf.printf "no-reuse fraction: %.2f [%s]\n" e.E.no_reuse_fraction
      (E.confidence_label e.E.reuse_confidence);
    Printf.printf "global-memory sites:\n";
    List.iter
      (fun (s : E.site) ->
        Printf.printf "  %-24s %-6s %-8s %6.2f lines [%s]\n"
          (Bitc.Loc.to_string s.E.site_loc)
          s.E.site_kind s.E.pattern s.E.lines
          (E.confidence_label s.E.lines_confidence))
      e.E.sites;
    if e.E.shared_sites <> [] then begin
      Printf.printf
        "shared-memory sites (%d banks x %d B, predicted worst degree %d):\n"
        e.E.banks e.E.bank_width e.E.bank_degree;
      List.iter
        (fun (s : E.shared_site) ->
          Printf.printf "  %-24s %-6s %-8s degree %2d%s [%s]\n"
            (Bitc.Loc.to_string s.E.sh_loc)
            s.E.sh_kind s.E.sh_pattern s.E.sh_degree
            (if s.E.sh_broadcast then " (broadcast)" else "")
            (E.confidence_label s.E.sh_confidence))
        e.E.shared_sites
    end;
    finish ();
    `Ok ()
  | `Ok w when json ->
    let session = Advisor.profile ~bankmodel ~arch ?scale w in
    let bank_conflict =
      if bankmodel then Some (Advisor.bank_conflict session) else None
    in
    print_endline
      (Analysis.Report.to_string
         (Analysis.Report.of_profile ?bank_conflict ~app:w.name
            ~arch_name:arch.Gpusim.Arch.name
            ~line_size:arch.Gpusim.Arch.line_size session.profiler));
    finish ();
    `Ok ()
  | `Ok w ->
    let session = Advisor.profile ~bankmodel ~arch ?scale w in
    let line_size = arch.Gpusim.Arch.line_size in
    if List.mem `Rd analysis then begin
      Printf.printf "== Reuse distance (per CTA, element-based) ==\n";
      Format.printf "%a@." Analysis.Reuse_distance.pp (Advisor.reuse_distance session)
    end;
    if List.mem `Md analysis then begin
      Printf.printf "== Memory divergence (line size %d B) ==\n" line_size;
      Format.printf "%a@." Analysis.Mem_divergence.pp
        (Advisor.mem_divergence session)
    end;
    if List.mem `Bd analysis then begin
      let bd = Advisor.branch_divergence session in
      Printf.printf "== Branch divergence ==\n%d divergent of %d blocks (%.2f%%)\n"
        bd.divergent_blocks bd.total_blocks
        (Analysis.Branch_divergence.percent bd)
    end;
    if bankmodel then begin
      Printf.printf "== Shared-memory bank conflicts ==\n";
      Format.printf "%a@." Analysis.Bank_conflict.pp (Advisor.bank_conflict session)
    end;
    Printf.printf "== Kernel instances (merged by calling context) ==\n";
    List.iter
      (fun (ctx, s) ->
        Format.printf "%s@   cycles: %a@." ctx Analysis.Statistics.pp_summary s)
      (Analysis.Statistics.by_context (Advisor.instances session)
         ~metric:Analysis.Statistics.cycles);
    finish ();
    `Ok ()

let analysis_arg =
  let kind = Arg.enum [ ("rd", `Rd); ("md", `Md); ("bd", `Bd) ] in
  Arg.(
    value
    & opt_all kind [ `Rd; `Md; `Bd ]
    & info [ "analysis" ] ~docv:"KIND"
        ~doc:"Analyses to report: rd (reuse distance), md (memory divergence), \
              bd (branch divergence).  Repeatable.")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let tier_arg =
  let tier = Arg.enum [ ("exact", `Exact); ("static", `Static) ] in
  Arg.(
    value
    & opt tier `Exact
    & info [ "tier" ] ~docv:"TIER"
        ~doc:"Answer tier: exact (instrument and simulate, the default) or \
              static (IR-only estimate, no simulator launch).")

let bankmodel_flag =
  Arg.(
    value & flag
    & info [ "bankmodel" ]
        ~doc:"Charge shared-memory bank-conflict replays as issue cycles and \
              report the per-line conflict breakdown.  Off by default so \
              cycle totals match earlier releases.")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Instrument an application, run it under the profiler, print analyses.")
    Term.(
      ret
        (const profile_run $ obs_term $ app_arg $ arch_arg $ scale_arg
        $ analysis_arg $ json_flag $ tier_arg $ bankmodel_flag))

(* ----- report (Figures 8/9) ----- *)

let report_run finish app arch scale =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    let session = Advisor.profile ~arch ?scale w in
    let line_size = arch.Gpusim.Arch.line_size in
    let busiest =
      List.fold_left
        (fun acc (i : Profiler.Profile.instance) ->
          match acc with
          | Some (b : Profiler.Profile.instance) when b.mem_count >= i.mem_count -> acc
          | _ -> Some i)
        None (Advisor.instances session)
    in
    (match busiest with
    | None -> Printf.printf "no kernel instances recorded\n"
    | Some instance ->
      print_string
        (Analysis.Views.divergent_sites_report session.profiler instance ~line_size
           ~top:3);
      print_newline ();
      print_string
        (Analysis.Views.data_centric_report session.profiler instance ~line_size
           ~top:3));
    finish ();
    `Ok ()

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Code- and data-centric debugging views of the most divergent accesses.")
    Term.(ret (const report_run $ obs_term $ app_arg $ arch_arg $ scale_arg))

(* ----- check ----- *)

let pp_device_path path =
  String.concat " <- "
    (List.map
       (fun (fn, loc) ->
         if Bitc.Loc.is_none loc then fn
         else Printf.sprintf "%s (%s)" fn (Bitc.Loc.to_string loc))
       path)

let check_run finish app arch scale json =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    match Advisor.check ~arch ?scale w with
    | exception Gpusim.Gpu.Launch_error msg ->
      `Error (false, Printf.sprintf "launch aborted: %s" msg)
    | r ->
    let errors = Advisor.check_error_count r in
    if json then
      print_endline (Analysis.Json.to_string (Advisor.check_report_json r))
    else begin
      List.iter
        (fun (f : Passes.Check_static.finding) ->
          Printf.printf "error: [%s] %s in %s: %s\n" f.rule
            (Bitc.Loc.to_string f.loc) f.in_func f.message)
        r.static_findings;
      List.iter
        (fun (race : Analysis.Race.race) ->
          Printf.printf
            "error: [%s] shared-memory race between %s and %s (%d conflicting \
             cells; e.g. cta %d, barrier interval %d, shared byte %d)\n"
            race.race_kind
            (Bitc.Loc.to_string race.a_loc)
            (Bitc.Loc.to_string race.b_loc)
            race.conflicts race.sample_cta race.sample_epoch race.sample_addr;
          Printf.printf "  site A: %s\n  site B: %s\n"
            (pp_device_path race.a_path) (pp_device_path race.b_path))
        r.races.Analysis.Race.races;
      List.iter
        (fun (a : Analysis.Race.barrier_advice) ->
          Printf.printf
            "advice: __syncthreads at %s in %s separated no conflicting \
             accesses in any of its %d dynamic instances; it may be redundant\n"
            (Bitc.Loc.to_string a.advice_loc)
            a.advice_func a.boundaries)
        r.races.Analysis.Race.redundant_barriers;
      Printf.printf "%s: %d error(s), %d advice\n" w.name errors
        (List.length r.races.Analysis.Race.redundant_barriers)
    end;
    finish ();
    if errors > 0 then exit 1;
    `Ok ()

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Correctness checks: static divergent-barrier and out-of-bounds \
             analysis plus the dynamic shared-memory race detector.  Exits \
             non-zero if any error is found.")
    Term.(
      ret (const check_run $ obs_term $ app_arg $ arch_arg $ scale_arg
          $ json_flag))

(* ----- bypass ----- *)

let bypass_run finish app arch scale =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    let b = Advisor.bypass_study ~arch ?scale w in
    Printf.printf "baseline (no bypassing): %d cycles\n" b.baseline_cycles;
    List.iter
      (fun (n, c) ->
        Printf.printf "  %2d caching warps/CTA: %9d cycles (%.3f)\n" n c
          (float_of_int c /. float_of_int b.baseline_cycles))
      b.sweep;
    Printf.printf "oracle:     N=%d (%d cycles)\n" b.oracle_warps b.oracle_cycles;
    Printf.printf "prediction: N=%d (%d cycles)  [Eq. (1)]\n" b.predicted_warps
      b.predicted_cycles;
    finish ();
    `Ok ()

let bypass_cmd =
  Cmd.v
    (Cmd.info "bypass"
       ~doc:"Horizontal cache-bypassing study: oracle sweep vs the Eq.-(1) model.")
    Term.(ret (const bypass_run $ obs_term $ app_arg $ arch_arg $ scale_arg))

(* ----- evaluate (variant tournament) ----- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Manifest: {"baseline": "name", "variants": [{"name": ...,
   "source_file": ... | "source": ..., "block_x": ...,
   "bypass_warps": ...}, ...]}.  Relative source_file paths resolve
   against the manifest's directory. *)
let parse_manifest path =
  let module Jsonv = Obs.Jsonv in
  let ( let* ) = Result.bind in
  let* doc =
    match Jsonv.parse (read_file path) with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg)
    | exception Sys_error msg -> Error msg
  in
  let str_of = function Some (Jsonv.Str s) -> Some s | _ -> None in
  let int_of = function
    | Some (Jsonv.Num f) when Float.is_integer f -> Some (int_of_float f)
    | _ -> None
  in
  let* items =
    match Jsonv.member "variants" doc with
    | Some (Jsonv.Arr items) when items <> [] -> Ok items
    | _ -> Error (Printf.sprintf "%s: needs a non-empty \"variants\" array" path)
  in
  let* specs =
    List.fold_left
      (fun acc (i, v) ->
        let* acc = acc in
        match v with
        | Jsonv.Obj _ ->
          let* source =
            match (str_of (Jsonv.member "source" v),
                   str_of (Jsonv.member "source_file" v)) with
            | Some s, None -> Ok (Some s)
            | None, Some f -> (
              let f =
                if Filename.is_relative f then
                  Filename.concat (Filename.dirname path) f
                else f
              in
              match read_file f with
              | s -> Ok (Some s)
              | exception Sys_error msg -> Error msg)
            | None, None -> Ok None
            | Some _, Some _ ->
              Error
                (Printf.sprintf
                   "%s: variants[%d] has both \"source\" and \"source_file\""
                   path i)
          in
          Ok
            ({ Tune.Evaluate.sp_name =
                 Option.value
                   (str_of (Jsonv.member "name" v))
                   ~default:(Printf.sprintf "v%d" i);
               sp_source = source;
               sp_block_x = int_of (Jsonv.member "block_x" v);
               sp_bypass_warps = int_of (Jsonv.member "bypass_warps" v) }
            :: acc)
        | _ ->
          Error (Printf.sprintf "%s: variants[%d] must be an object" path i))
      (Ok [])
      (List.mapi (fun i v -> (i, v)) items)
  in
  Ok (List.rev specs, str_of (Jsonv.member "baseline" doc))

let evaluate_run finish app arch scale files manifest baseline sweep domains
    json =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w -> (
    let plan =
      let ( let* ) = Result.bind in
      let* specs, manifest_baseline =
        match (sweep, manifest, files) with
        | true, None, [] -> Ok (Tune.Sweep.specs_for w, None)
        | false, Some path, [] -> parse_manifest path
        | false, None, (_ :: _ as files) -> (
          (* one variant per file, named by basename; the pristine
             kernel rides along as the "base" baseline *)
          match
            List.map
              (fun f ->
                { Tune.Evaluate.sp_name =
                    Filename.remove_extension (Filename.basename f);
                  sp_source = Some (read_file f);
                  sp_block_x = None;
                  sp_bypass_warps = None })
              files
          with
          | specs -> Ok (Tune.Evaluate.baseline_spec :: specs, None)
          | exception Sys_error msg -> Error msg)
        | false, None, [] ->
          Error "need variant FILEs, --manifest or --sweep"
        | _ ->
          Error "FILEs, --manifest and --sweep are mutually exclusive"
      in
      let names = List.map (fun (s : Tune.Evaluate.spec) -> s.sp_name) specs in
      let* () =
        match
          List.find_opt
            (fun n -> List.length (List.filter (String.equal n) names) > 1)
            names
        with
        | Some n -> Error (Printf.sprintf "duplicate variant name %S" n)
        | None -> Ok ()
      in
      let baseline =
        match (baseline, manifest_baseline) with
        | Some b, _ -> b
        | None, Some b -> b
        | None, None -> List.hd names
      in
      if List.mem baseline names then Ok (specs, baseline)
      else
        Error
          (Printf.sprintf "baseline %S does not name a variant (have: %s)"
             baseline (String.concat ", " names))
    in
    match plan with
    | Error msg -> `Error (false, msg)
    | Ok (specs, baseline) ->
      let result =
        Tune.Evaluate.run_batch ~domains ?scale ~baseline ~arch w specs
      in
      if json then print_endline (Analysis.Json.to_string result)
      else begin
        let module Jsonv = Obs.Jsonv in
        let doc =
          match Jsonv.parse (Analysis.Json.to_string result) with
          | Ok v -> v
          | Error _ -> Jsonv.Null
        in
        let results_by_name =
          match Jsonv.member "variants" doc with
          | Some (Jsonv.Arr vs) ->
            List.filter_map
              (fun v ->
                match
                  (Option.bind (Jsonv.member "name" v) Jsonv.to_string_opt,
                   Jsonv.member "result" v)
                with
                | Some n, Some r -> Some (n, r)
                | _ -> None)
              vs
          | _ -> []
        in
        let fnum r k =
          match Option.bind (Jsonv.member k r) Jsonv.to_float_opt with
          | Some f -> Printf.sprintf "%.3f" f
          | None -> "-"
        in
        Printf.printf "%s on %s (scale %s, baseline %s):\n"
          w.Workloads.Common.name arch.Gpusim.Arch.name
          (match Jsonv.member "scale" doc with
          | Some (Jsonv.Num f) -> string_of_int (int_of_float f)
          | _ -> "?")
          baseline;
        Printf.printf "%4s  %-16s %-14s %10s  %8s  %7s  %6s  %s\n" "rank"
          "name" "status" "cycles" "speedup" "l1-hit" "m.div" "check";
        (match Jsonv.member "ranking" doc with
        | Some (Jsonv.Arr rows) ->
          List.iter
            (fun row ->
              let name =
                Option.value
                  (Option.bind (Jsonv.member "name" row) Jsonv.to_string_opt)
                  ~default:"?"
              in
              let r = List.assoc_opt name results_by_name in
              let status =
                Option.value
                  (Option.bind (Jsonv.member "status" row) Jsonv.to_string_opt)
                  ~default:"?"
              in
              let num k =
                match Option.bind (Jsonv.member k row) Jsonv.to_float_opt with
                | Some f -> f
                | None -> Float.nan
              in
              Printf.printf "%4.0f  %-16s %-14s %10s  %8s  %7s  %6s  %s\n"
                (num "rank") name status
                (match Jsonv.member "cycles" row with
                | Some (Jsonv.Num f) -> string_of_int (int_of_float f)
                | _ -> "-")
                (match Jsonv.member "speedup_vs_baseline" row with
                | Some (Jsonv.Num f) -> Printf.sprintf "%.3f" f
                | _ -> "-")
                (match r with Some r -> fnum r "l1_hit_rate" | None -> "-")
                (match r with
                | Some r -> fnum r "divergence_degree"
                | None -> "-")
                (match Option.bind r (fun r -> Jsonv.member "check_clean" r) with
                | Some (Jsonv.Bool true) -> "clean"
                | Some (Jsonv.Bool false) -> "DIRTY"
                | _ -> "-"))
            rows
        | _ -> ());
        List.iter
          (fun (n, r) ->
            match
              Option.bind (Jsonv.member "error" r) Jsonv.to_string_opt
            with
            | Some msg -> Printf.printf "  %s: %s\n" n msg
            | None -> ())
          results_by_name
      end;
      finish ();
      `Ok ())

let evaluate_cmd =
  let files_arg =
    Arg.(
      value
      & pos_right 0 file []
      & info [] ~docv:"FILE"
          ~doc:"Kernel-source variant files; each becomes one variant named \
                after its basename, competing against the pristine kernel \
                (variant \"base\").")
  in
  let manifest_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:"JSON manifest: {\"baseline\": NAME, \"variants\": [{\"name\", \
                \"source_file\" or \"source\", \"block_x\", \
                \"bypass_warps\"}, ...]}.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"NAME"
          ~doc:"Variant every other variant is ranked against (default: the \
                manifest's baseline, else the first variant).")
  in
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Generate the standard tuning sweep instead of reading variant \
                files: pristine baseline, CTA-width double/halve, \
                half-bypassed warps, and 4x-unrolled inner loops.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Evaluate up to $(docv) variants concurrently.")
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Batch-evaluate kernel variants of one application: per-variant \
             compile status, correctness check, cycles, L1 hit rate and \
             divergence, plus a ranking against a baseline variant.  The \
             same tournament is served by `cudaadvisor serve` as the \
             \"evaluate\" op.")
    Term.(
      ret
        (const evaluate_run $ obs_term $ app_arg $ arch_arg $ scale_arg
        $ files_arg $ manifest_arg $ baseline_arg $ sweep_flag $ domains_arg
        $ json_flag))

(* ----- overhead ----- *)

let overhead_run finish app arch scale =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    let o = Advisor.overhead_study ~arch ?scale w in
    Printf.printf "native:       %9d cycles\ninstrumented: %9d cycles\nslowdown: %.1fx\n"
      o.native_cycles o.instrumented_cycles o.slowdown;
    finish ();
    `Ok ()

let overhead_cmd =
  Cmd.v
    (Cmd.info "overhead" ~doc:"Instrumentation overhead (Figure 10 methodology).")
    Term.(ret (const overhead_run $ obs_term $ app_arg $ arch_arg $ scale_arg))

(* ----- dump-ir / dump-ptx ----- *)

let instrument_flag =
  Arg.(value & flag & info [ "instrument" ] ~doc:"Run the instrumentation engine first.")

let dump_ir_run finish app instrument =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    let m = Workloads.Common.compile w in
    if instrument then ignore (Passes.Instrument.run m);
    print_string (Bitc.Printer.module_to_string m);
    finish ();
    `Ok ()

let dump_ir_cmd =
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print the (optionally instrumented) Bitc IR.")
    Term.(ret (const dump_ir_run $ obs_term $ app_arg $ instrument_flag))

let dump_ptx_run finish app instrument =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    let m = Workloads.Common.compile w in
    if instrument then ignore (Passes.Instrument.run m);
    print_string (Ptx.Printer.prog_to_string (Ptx.Codegen.gen_module m));
    finish ();
    `Ok ()

let dump_ptx_cmd =
  Cmd.v
    (Cmd.info "dump-ptx" ~doc:"Print the generated PTX-like code.")
    Term.(ret (const dump_ptx_run $ obs_term $ app_arg $ instrument_flag))

(* ----- trace (profile the profiler itself) ----- *)

let trace_run app arch scale trace_file metrics log_level =
  match find_app app with
  | `Error _ as e -> e
  | `Ok w ->
    (match log_level with Some l -> Obs.Log.set_level l | None -> ());
    Obs.Trace.enable ();
    let session = Advisor.profile ~arch ?scale w in
    ignore (Advisor.reuse_distance session);
    ignore (Advisor.mem_divergence session);
    ignore (Advisor.branch_divergence session);
    let out = Option.value trace_file ~default:(w.name ^ "-trace.json") in
    Obs.Trace.export_chrome_to_file out;
    print_string (Obs.Trace.to_text ());
    if metrics then print_string (Obs.Metrics.to_text ());
    Printf.printf "wrote Chrome trace to %s (load it in chrome://tracing or ui.perfetto.dev)\n"
      out;
    `Ok ()

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a profiling session with self-profiling enabled: print the span \
             tree and export a Chrome trace of the pipeline itself.")
    Term.(
      ret
        (const trace_run $ app_arg $ arch_arg $ scale_arg $ trace_arg
        $ metrics_flag $ log_arg))

(* ----- serve (long-lived batch-profiling daemon) ----- *)

let serve_run finish socket stdio workers queue_cap timeout_ms shards no_cache
    cache_entries cache_mb cache_dir trace_dir metrics_addr access_log
    access_log_sample =
  let cache =
    if no_cache then None
    else
      Some
        {
          Serve.Rescache.max_entries = cache_entries;
          max_bytes = cache_mb * 1024 * 1024;
          dir = cache_dir;
        }
  in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      (* no socket means the daemon would otherwise serve nothing *)
      stdio = stdio || socket = None;
      workers;
      queue_cap;
      default_timeout_ms = (if timeout_ms <= 0 then None else Some timeout_ms);
      cache;
      label = "serve";
      trace_dir;
      metrics_addr;
      access_log;
      access_log_sample;
    }
  in
  match
    if shards <= 1 then begin
      let srv = Serve.Server.create cfg in
      let stop _ = Serve.Server.request_shutdown srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Serve.Server.run srv
    end
    else
      match socket with
      | None ->
        failwith "--shards requires --socket (the fleet has no stdio mode)"
      | Some path ->
        let fleet =
          Serve.Fleet.create
            {
              Serve.Fleet.socket_path = path;
              shards;
              shard_base = { cfg with socket_path = None; stdio = false };
            }
        in
        let stop _ = Serve.Fleet.request_shutdown fleet in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sighup
          (Sys.Signal_handle
             (fun _ -> Serve.Fleet.request_rolling_restart fleet));
        Serve.Fleet.run fleet
  with
  | () ->
    finish ();
    `Ok ()
  | exception Failure msg -> `Error (false, msg)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Also listen for clients on a Unix-domain socket at $(docv) \
                (removed again on shutdown).")
  in
  let stdio_flag =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve newline-delimited JSON on stdin/stdout (the default when \
                no $(b,--socket) is given; EOF on stdin drains and exits).")
  in
  let workers_arg =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing requests concurrently.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.queue_cap
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded job-queue capacity; further requests are rejected with \
                an \"overloaded\" error until the queue drains.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt int
          (Option.value
             Serve.Server.default_config.Serve.Server.default_timeout_ms
             ~default:0)
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-request wall-clock timeout (requests may override \
                with a \"timeout_ms\" field; 0 disables).  A timed-out job \
                aborts its own simulation only.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Run a fleet of $(docv) daemon shards behind one supervisor on \
                the $(b,--socket) path.  Requests are routed to shards by a \
                consistent hash of their result-cache key, so repeated \
                requests hit the same shard's warm caches.  SIGHUP triggers a \
                rolling restart that drains one shard at a time.")
  in
  let no_cache_flag =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the content-addressed result cache (every request \
                recomputes).")
  in
  let cache_entries_arg =
    Arg.(
      value
      & opt int Serve.Rescache.default_config.Serve.Rescache.max_entries
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Result-cache capacity in entries (least-recently-used \
                eviction).")
  in
  let cache_mb_arg =
    Arg.(
      value
      & opt int
          (Serve.Rescache.default_config.Serve.Rescache.max_bytes
          / (1024 * 1024))
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"Result-cache capacity in megabytes of serialized results.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist the result cache to $(docv) so it survives daemon \
                restarts; reloaded (newest first, within the configured \
                bounds) on startup.  With $(b,--shards), each shard uses \
                $(docv)/shard-<i>.")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Write one span record per traced request phase to \
                $(docv)/spans-<pid>.ndjson (created if missing).  Each \
                supervisor, shard and worker appends to its own file; \
                $(b,advisor trace-merge) $(docv) joins them into a single \
                Chrome trace.")
  in
  let metrics_addr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"[HOST:]PORT"
          ~doc:"Serve a Prometheus text exposition of the metrics registry \
                over HTTP on $(docv) (host defaults to 127.0.0.1).  With \
                $(b,--shards), the supervisor answers each scrape with a \
                fresh fleet-wide aggregation.")
  in
  let access_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH"
          ~doc:"Append one NDJSON line per finished request (op, tier, cache \
                disposition, queue wait, latency, outcome) to $(docv).  With \
                $(b,--shards), each shard logs to $(docv).shard-<i>.")
  in
  let access_log_sample_arg =
    Arg.(
      value & opt int 1
      & info [ "access-log-sample" ] ~docv:"N"
          ~doc:"Write every $(docv)-th access-log entry (1 = all); skipped \
                entries are counted in serve.access_log.sampled_out.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived batch-profiling daemon: accepts newline-delimited JSON \
             requests (profile, check, bypass, trace, compile, ...) over \
             stdin/stdout and an optional Unix-domain socket, runs them \
             concurrently on a bounded queue, and answers with JSON responses \
             carrying the request id.  Deterministic results are served from a \
             two-tier content-addressed cache.  Shuts down gracefully on \
             SIGINT/SIGTERM.")
    Term.(
      ret
        (const serve_run $ obs_term $ socket_arg $ stdio_flag $ workers_arg
        $ queue_arg $ timeout_arg $ shards_arg $ no_cache_flag
        $ cache_entries_arg $ cache_mb_arg $ cache_dir_arg $ trace_dir_arg
        $ metrics_addr_arg $ access_log_arg $ access_log_sample_arg))

(* ----- trace-merge (join per-process span files into one Chrome trace) ----- *)

let trace_merge_run dir out trace_id =
  match Obs.Tracemerge.merge ?trace_id ~dir () with
  | exception Sys_error msg -> `Error (false, msg)
  | m ->
    let out =
      Option.value out ~default:(Filename.concat dir "trace-merged.json")
    in
    let oc = open_out out in
    output_string oc m.Obs.Tracemerge.json;
    close_out oc;
    Printf.printf
      "merged %d span(s) from %d file(s) across %d process group(s) into %s\n"
      m.Obs.Tracemerge.records m.Obs.Tracemerge.files
      (List.length m.Obs.Tracemerge.procs)
      out;
    if m.Obs.Tracemerge.skipped > 0 then
      Printf.printf "skipped %d malformed or filtered line(s)\n"
        m.Obs.Tracemerge.skipped;
    List.iter (fun p -> Printf.printf "  process: %s\n" p)
      m.Obs.Tracemerge.procs;
    `Ok ()

let trace_merge_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Span directory written by $(b,advisor serve --trace-dir).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Output file (default: $(i,DIR)/trace-merged.json).")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"TRACE_ID"
          ~doc:"Keep only spans belonging to this trace id (default: all).")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:"Merge the per-process span files under a $(b,--trace-dir) \
             directory into a single Chrome trace (chrome://tracing, \
             ui.perfetto.dev) with one process group per supervisor, shard \
             and worker, linked by trace id.")
    Term.(ret (const trace_merge_run $ dir_arg $ out_arg $ id_arg))

(* ----- top (live fleet dashboard) ----- *)

let top_run socket interval_ms frames once =
  let frames = if once then Some 1 else frames in
  match Serve.Top.run ~socket_path:socket ~interval_ms ~frames with
  | () -> `Ok ()
  | exception Failure msg -> `Error (false, msg)

let top_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the daemon or fleet supervisor to watch.")
  in
  let interval_arg =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:"Refresh interval between samples (minimum 50).")
  in
  let frames_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N"
          ~doc:"Draw $(docv) frames, then exit (default: run until \
                interrupted).")
  in
  let once_flag =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single dashboard frame without clearing the screen \
                and exit (shorthand for $(b,--frames) 1).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal dashboard over a running serve daemon or fleet: \
             request throughput, cache hit ratio, queue pressure, shard \
             health counters and per-op latency percentiles with SLO burn, \
             refreshed from the aggregated metrics registry.")
    Term.(ret (const top_run $ socket_arg $ interval_arg $ frames_arg $ once_flag))

let () =
  let info =
    Cmd.info "cudaadvisor" ~version:"1.0.0"
      ~doc:"LLVM-style runtime profiling for a simulated modern GPU (CGO'18 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; profile_cmd; report_cmd; check_cmd; bypass_cmd;
            evaluate_cmd; overhead_cmd; trace_cmd; dump_ir_cmd; dump_ptx_cmd;
            serve_cmd; trace_merge_cmd; top_cmd ]))
