(* Golden-determinism guard for the simulator's event ordering.

   The timing model's cycle counts — and through them the profiler's
   golden metrics — depend on the exact pop order of the launch event
   queue, *including* arrangement-dependent tie-breaks among equal
   timestamps (see DESIGN.md "Event ordering is part of the contract").
   Optimizations to the interpreter, the scheduler or the superstep
   loop must therefore be bit-identical, not merely statistically
   close.  These tests pin per-launch cycle counts and cache statistics
   for nn and bfs, native and profiled, to the values of the original
   one-instruction-per-pop heap loop.

   The second half checks the calendar-queue scheduler ([Calq]): it
   must dequeue in exactly the same *key* order as the heap (ties may
   reorder payloads), and launches driven by it must be functionally
   identical to the default scheduler. *)

let check_int = Alcotest.(check int)

let arch () = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()

let launches_of host =
  List.map snd (Hostrt.Host.launches host)

let native name =
  let _, host = Advisor.run_native ~arch:(arch ()) (Workloads.Registry.find name) in
  launches_of host

let profiled name =
  let s = Advisor.profile ~arch:(arch ()) (Workloads.Registry.find name) in
  launches_of s.Advisor.host

let check_launch ~what (r : Gpusim.Gpu.result)
    (cycles, warp_insts, thread_insts, l1, l2, mshr) =
  check_int (what ^ " cycles") cycles r.cycles;
  check_int (what ^ " warp_insts") warp_insts r.stats.Gpusim.Stats.warp_insts;
  check_int (what ^ " thread_insts") thread_insts r.stats.Gpusim.Stats.thread_insts;
  let l1r, l1h, l1m, l1w, l1e = l1 in
  check_int (what ^ " l1 reads") l1r r.l1_stats.Gpusim.Cache.reads;
  check_int (what ^ " l1 hits") l1h r.l1_stats.Gpusim.Cache.read_hits;
  check_int (what ^ " l1 misses") l1m r.l1_stats.Gpusim.Cache.read_misses;
  check_int (what ^ " l1 writes") l1w r.l1_stats.Gpusim.Cache.writes;
  check_int (what ^ " l1 evictions") l1e r.l1_stats.Gpusim.Cache.write_evictions;
  let l2r, l2h, l2m, l2w, l2e = l2 in
  check_int (what ^ " l2 reads") l2r r.l2_stats.Gpusim.Cache.reads;
  check_int (what ^ " l2 hits") l2h r.l2_stats.Gpusim.Cache.read_hits;
  check_int (what ^ " l2 misses") l2m r.l2_stats.Gpusim.Cache.read_misses;
  check_int (what ^ " l2 writes") l2w r.l2_stats.Gpusim.Cache.writes;
  check_int (what ^ " l2 evictions") l2e r.l2_stats.Gpusim.Cache.write_evictions;
  let stalls, merges = mshr in
  check_int (what ^ " mshr stalls") stalls r.mshr_stalls;
  check_int (what ^ " mshr merges") merges r.mshr_merges

(* Values recorded from the seed implementation (event loop popping one
   instruction per heap event, lane-major register file, no pooling). *)

let test_nn_native () =
  match native "nn" with
  | [ r ] ->
    check_launch ~what:"nn native" r
      (5725, 20428, 653436, (510, 0, 510, 255, 0), (510, 0, 510, 255, 0), (0, 0))
  | rs -> Alcotest.failf "nn native: expected 1 launch, got %d" (List.length rs)

let test_nn_profiled () =
  match profiled "nn" with
  | [ r ] ->
    (* hook timing rides the same event order: pins the overhead model *)
    check_launch ~what:"nn profiled" r
      (250031, 23490, 751370, (510, 0, 510, 255, 0), (510, 0, 510, 255, 0), (0, 0))
  | rs -> Alcotest.failf "nn profiled: expected 1 launch, got %d" (List.length rs)

(* bfs: 9 frontier iterations x (Kernel, Kernel2); per-launch cycles
   pin the tie-break-sensitive interleaving (the 11th launch's
   mshr-stall pileup is the sharpest canary), and the two heaviest
   launches are pinned in full. *)

let bfs_native_cycles =
  [ 8432; 3381; 7937; 3358; 8166; 3514; 16338; 4784; 51138; 5132; 85342; 5132;
    22354; 4959; 7071; 3345; 5861; 3266 ]

let test_bfs_native () =
  let rs = native "bfs" in
  check_int "bfs native launches" 18 (List.length rs);
  List.iteri
    (fun i (r : Gpusim.Gpu.result) ->
      check_int (Printf.sprintf "bfs native launch %d cycles" i)
        (List.nth bfs_native_cycles i) r.cycles)
    rs;
  check_launch ~what:"bfs native launch 8" (List.nth rs 8)
    ( 51138, 85573, 653058,
      (12670, 7961, 4709, 9995, 834),
      (4708, 2545, 2163, 9995, 1099),
      (11030, 1) );
  check_launch ~what:"bfs native launch 10" (List.nth rs 10)
    ( 85342, 94261, 1178514,
      (27689, 16661, 11028, 18545, 1301),
      (11023, 8343, 2680, 18545, 1702),
      (1207757, 5) )

let test_bfs_profiled_total () =
  let total =
    List.fold_left
      (fun acc (r : Gpusim.Gpu.result) -> acc + r.cycles)
      0 (profiled "bfs")
  in
  check_int "bfs profiled total kernel cycles" 5488491 total

(* ----- calendar queue vs heap ----- *)

(* Near-monotonic random streams shaped like the event loop's: keys
   wander forward with occasional far-future spikes (out-of-window ->
   heap fallback) and pops interleaved with pushes. *)
let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 400)
      (oneof
         [
           (* push with a small forward delta *)
           map (fun d -> `Push d) (int_range 0 300);
           (* push far ahead of the window *)
           map (fun d -> `Push d) (int_range 3000 100_000);
           return `Pop;
         ]))

let run_stream ops =
  let h = Gpusim.Heap.create () in
  let q = Gpusim.Calq.create ~window:2048 () in
  let heap_keys = ref [] and calq_keys = ref [] in
  let base = ref 0 in
  List.iter
    (fun op ->
      match op with
      | `Push d ->
        let key = !base + d in
        (* drift the base like advancing simulation time *)
        if d < 300 then base := !base + (d / 8);
        Gpusim.Heap.push h key key;
        Gpusim.Calq.push q key key
      | `Pop -> (
        match (Gpusim.Heap.pop h, Gpusim.Calq.pop q) with
        | Some (hk, _), Some (qk, _) ->
          heap_keys := hk :: !heap_keys;
          calq_keys := qk :: !calq_keys
        | None, None -> ()
        | _ -> Alcotest.fail "heap and calq disagree on emptiness"))
    ops;
  (* drain both *)
  let rec drain () =
    match (Gpusim.Heap.pop h, Gpusim.Calq.pop q) with
    | Some (hk, _), Some (qk, _) ->
      heap_keys := hk :: !heap_keys;
      calq_keys := qk :: !calq_keys;
      drain ()
    | None, None -> ()
    | _ -> Alcotest.fail "heap and calq disagree on emptiness"
  in
  drain ();
  (List.rev !heap_keys, List.rev !calq_keys)

let qcheck_calq_heap_key_order =
  QCheck2.Test.make ~name:"calendar queue pops the heap's key order" ~count:200
    ops_gen
    (fun ops ->
      let hk, qk = run_stream ops in
      hk = qk)

let qcheck_calq_run_ahead =
  QCheck2.Test.make
    ~name:"calq run_ahead_ok implies push+pop is an identity" ~count:200 ops_gen
    (fun ops ->
      let q = Gpusim.Calq.create ~window:2048 () in
      let ok = ref true in
      let base = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Push d ->
            let key = !base + d in
            if d < 300 then base := !base + (d / 8);
            if Gpusim.Calq.run_ahead_ok q key then begin
              (* the contract: the element would come straight back *)
              Gpusim.Calq.push q key (-key - 1);
              match Gpusim.Calq.pop q with
              | Some (k, v) when k = key && v = -key - 1 -> ()
              | _ -> ok := false
            end
            else Gpusim.Calq.push q key key
          | `Pop -> ignore (Gpusim.Calq.pop q))
        ops;
      !ok)

(* A launch driven by the calendar queue must compute the same values
   (tie order may shift cycles, never results). *)
let test_calendar_launch_functional () =
  let src =
    {|
__global__ void k(int* out, float* f, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float s = 0.0f;
    for (int j = 0; j < 8; j = j + 1) { s = s + f[(i + j) % n]; }
    if (i % 3 == 0) { s = s * 2.0f; }
    out[i] = i + (int)(s);
  }
}
|}
  in
  let run sched =
    let m = Minicuda.Frontend.compile ~file:"t.cu" src in
    let prog = Ptx.Codegen.gen_module m in
    let dev = Gpusim.Gpu.create_device (arch ()) in
    let n = 500 in
    let out = Gpusim.Devmem.malloc dev.devmem (4 * n) in
    let f = Gpusim.Devmem.malloc dev.devmem (4 * n) in
    Gpusim.Devmem.write_f32_array dev.devmem f
      (Array.init n (fun i -> float_of_int (i mod 17) *. 0.5));
    let r =
      Gpusim.Gpu.launch ~sched dev ~prog ~kernel:"k" ~grid:(4, 1) ~block:(128, 1)
        ~args:[ Gpusim.Value.I out; Gpusim.Value.I f; Gpusim.Value.I n ] ()
    in
    (Gpusim.Devmem.read_i32_array dev.devmem out n, r.stats.Gpusim.Stats.thread_insts)
  in
  let exact, exact_insts = run Gpusim.Gpu.Exact_heap in
  let cal, cal_insts = run Gpusim.Gpu.Calendar in
  Alcotest.(check (array int)) "same output values" exact cal;
  check_int "same thread instructions" exact_insts cal_insts

let () =
  Alcotest.run "determinism"
    [
      ( "golden launches",
        [
          Alcotest.test_case "nn native" `Quick test_nn_native;
          Alcotest.test_case "nn profiled" `Quick test_nn_profiled;
          Alcotest.test_case "bfs native" `Quick test_bfs_native;
          Alcotest.test_case "bfs profiled total" `Quick test_bfs_profiled_total;
        ] );
      ( "schedulers",
        [
          QCheck_alcotest.to_alcotest qcheck_calq_heap_key_order;
          QCheck_alcotest.to_alcotest qcheck_calq_run_ahead;
          Alcotest.test_case "calendar launch functional" `Quick
            test_calendar_launch_functional;
        ] );
    ]
