(* The self-profiling layer: histogram bucket arithmetic, registry
   behavior, span nesting under domain parallelism, Chrome-trace
   export validity, and the contract that observation never changes
   what is observed (golden metrics identical with tracing on/off). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ----- histogram buckets ----- *)

(* bucket_lo b <= v <= bucket_hi b  iff  bucket_index v = b *)
let qcheck_bucket_bounds =
  QCheck2.Test.make ~name:"bucket bounds characterize bucket_index" ~count:500
    QCheck2.Gen.(
      oneof
        [ int_range (-4096) 4096; map abs int;
          map (fun b -> 1 lsl abs (b mod 62)) int ])
    (fun v ->
      let b = Obs.Metrics.bucket_index v in
      b >= 0
      && b < Obs.Metrics.num_buckets
      && Obs.Metrics.bucket_lo b <= v
      && v <= Obs.Metrics.bucket_hi b)

(* Both endpoints of every bucket map back to that bucket, and the
   buckets tile the int range without overlap. *)
let test_bucket_endpoints () =
  for b = 0 to Obs.Metrics.num_buckets - 1 do
    check_int "lo endpoint" b (Obs.Metrics.bucket_index (Obs.Metrics.bucket_lo b));
    check_int "hi endpoint" b (Obs.Metrics.bucket_index (Obs.Metrics.bucket_hi b));
    if b > 0 then
      check_int "buckets are adjacent"
        (Obs.Metrics.bucket_hi (b - 1) + 1)
        (Obs.Metrics.bucket_lo b)
  done

let test_histogram_aggregates () =
  let h = Obs.Metrics.histogram "test.obs.hist" in
  let values = [ 0; 1; 1; 3; 100; 7; 65_536; -5 ] in
  List.iter (Obs.Metrics.observe h) values;
  let s =
    match List.assoc "test.obs.hist" (Obs.Metrics.snapshot ()) with
    | Obs.Metrics.Histogram s -> s
    | _ -> Alcotest.fail "test.obs.hist is not a histogram"
  in
  check_int "count" (List.length values) s.count;
  check_int "sum" (List.fold_left ( + ) 0 values) s.sum;
  check_int "max" 65_536 s.max_value;
  check_int "bucket of 1 holds both 1s"
    2
    (List.assoc (Obs.Metrics.bucket_index 1) s.filled);
  check_int "v<=0 shares bucket 0" 2 (List.assoc 0 s.filled)

(* ----- registry ----- *)

let test_registry () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.add c 41;
  Obs.Metrics.incr c;
  check_int "counter accumulates" 42 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c';
  check_int "same name interns to same cell" 43 (Obs.Metrics.counter_value c);
  Obs.Metrics.register_probe "test.obs.probe" (fun () -> 2.5);
  (match List.assoc "test.obs.probe" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Gauge v -> Alcotest.(check (float 0.)) "probe polled" 2.5 v
  | _ -> Alcotest.fail "probe missing from snapshot");
  (* names are kind-stable *)
  check_bool "kind mismatch rejected" true
    (match Obs.Metrics.gauge "test.obs.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* snapshot is sorted by name *)
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  check_bool "snapshot sorted" true (List.sort String.compare names = names)

(* ----- spans under domain parallelism ----- *)

(* Walk a parsed Chrome trace and check per-tid stack discipline:
   every E matches the innermost open B of its tid, and nothing stays
   open.  Returns the number of B/E pairs seen. *)
let check_chrome_pairs json =
  let events =
    match Obs.Jsonv.to_list json with
    | Some l -> l
    | None -> Alcotest.fail "trace is not a JSON array"
  in
  let str e k = Option.bind (Obs.Jsonv.member k e) Obs.Jsonv.to_string_opt in
  let num e k = Option.bind (Obs.Jsonv.member k e) Obs.Jsonv.to_float_opt in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let pairs = ref 0 in
  List.iter
    (fun e ->
      let tid = int_of_float (Option.value ~default:(-1.) (num e "tid")) in
      let name = Option.value ~default:"?" (str e "name") in
      match str e "ph" with
      | Some "B" ->
        let st = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
        Hashtbl.replace stacks tid (name :: st)
      | Some "E" -> (
        match Hashtbl.find_opt stacks tid with
        | Some (top :: rest) ->
          Alcotest.(check string) "E closes innermost B" top name;
          incr pairs;
          Hashtbl.replace stacks tid rest
        | _ -> Alcotest.fail (Printf.sprintf "unmatched E %S on tid %d" name tid))
      | Some ("C" | "i" | "M") -> ()
      | ph ->
        Alcotest.fail
          (Printf.sprintf "unknown phase %S" (Option.value ~default:"" ph)))
    events;
  Hashtbl.iter
    (fun tid st ->
      if st <> [] then
        Alcotest.fail (Printf.sprintf "tid %d left %d spans open" tid (List.length st)))
    stacks;
  !pairs

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Trace.enable ();
  Fun.protect ~finally:(fun () -> Obs.Trace.disable ()) f

let test_span_nesting_parallel () =
  with_tracing @@ fun () ->
  let items = List.init 16 Fun.id in
  let out =
    Pool.map ~domains:4
      (fun i ->
        Obs.Trace.with_span ~cat:"test" "outer" (fun () ->
            Obs.Trace.with_span ~cat:"test" "inner" (fun () ->
                Obs.Trace.counter "test.progress" (float_of_int i);
                i * i)))
      items
  in
  Alcotest.(check (list int)) "map result unchanged" (List.map (fun i -> i * i) items) out;
  let json =
    match Obs.Jsonv.parse (Obs.Trace.export_chrome ()) with
    | Ok j -> j
    | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  in
  let pairs = check_chrome_pairs json in
  (* pool.task > outer > inner: three nested spans per item *)
  check_int "three span pairs per item" (3 * List.length items) pairs;
  (* the text tree renders without raising and mentions both spans *)
  let text = Obs.Trace.to_text () in
  check_bool "text tree has outer" true
    (String.length text > 0 && contains text "outer" && contains text "inner")

(* spans survive exceptions: the E is still recorded *)
let test_span_exception_safety () =
  with_tracing @@ fun () ->
  (try
     Obs.Trace.with_span "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  let json =
    match Obs.Jsonv.parse (Obs.Trace.export_chrome ()) with
    | Ok j -> j
    | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  in
  check_int "B/E pair despite exception" 1 (check_chrome_pairs json)

(* truncation: buffers stop recording at capacity but never break B/E
   matching *)
let test_capacity_truncation () =
  Fun.protect ~finally:(fun () -> Obs.Trace.set_capacity 1_000_000)
  @@ fun () ->
  Obs.Trace.set_capacity 1024;
  with_tracing @@ fun () ->
  for _ = 1 to 3000 do
    Obs.Trace.with_span "spam" Fun.id
  done;
  check_bool "events were dropped" true (Obs.Trace.dropped_count () > 0);
  let json =
    match Obs.Jsonv.parse (Obs.Trace.export_chrome ()) with
    | Ok j -> j
    | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  in
  ignore (check_chrome_pairs json)

(* ----- observation must not perturb the simulation ----- *)

let nn () = Workloads.Registry.find "nn"
let arch () = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()

type fingerprint = {
  fp_cycles : int;
  fp_rd_mean : float;
  fp_md_degree : float;
  fp_bd : int * int;
}

let fingerprint () =
  let session = Advisor.profile ~arch:(arch ()) (nn ()) in
  let rd = Advisor.reuse_distance session in
  let md = Advisor.mem_divergence session in
  let bd = Advisor.branch_divergence session in
  {
    fp_cycles = Hostrt.Host.total_kernel_cycles session.host;
    fp_rd_mean = rd.mean_finite_distance;
    fp_md_degree = md.Analysis.Mem_divergence.degree;
    fp_bd = (bd.divergent_blocks, bd.total_blocks);
  }

let test_tracing_is_invisible () =
  Obs.Trace.disable ();
  let off = fingerprint () in
  let on_ = with_tracing fingerprint in
  check_int "cycles identical" off.fp_cycles on_.fp_cycles;
  check_bool "rd mean bit-identical" true (off.fp_rd_mean = on_.fp_rd_mean);
  check_bool "md degree bit-identical" true (off.fp_md_degree = on_.fp_md_degree);
  check_bool "bd identical" true (off.fp_bd = on_.fp_bd)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          QCheck_alcotest.to_alcotest qcheck_bucket_bounds;
          Alcotest.test_case "bucket endpoints" `Quick test_bucket_endpoints;
          Alcotest.test_case "histogram aggregates" `Quick test_histogram_aggregates;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting across domains" `Quick
            test_span_nesting_parallel;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "capacity truncation" `Quick test_capacity_truncation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "tracing on = tracing off" `Quick
            test_tracing_is_invisible;
        ] );
    ]
